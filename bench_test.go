// Benchmark harness: one testing.B benchmark per figure panel of the
// paper's evaluation (§5, Figures 5(a)–(f) and 6(g)–(o)). Each sub-
// benchmark measures steady-state throughput of one (structure, policy,
// threads, size, update%) point; structures are prefilled once and cached
// across b.N iterations. Run:
//
//	go test -bench=Fig5a -benchmem        # one panel
//	go test -bench=. -benchmem            # everything
//
// For the full-scale paper grids (bigger structures, longer measurements,
// full thread sweeps, CSV output) use cmd/nvbench instead.
package nvtraverse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/list"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// benchOpts keeps `go test -bench=.` to a few minutes on a laptop: sizes
// divided by 64 relative to the paper, thread sweeps capped, 40ms per
// measurement iteration.
var benchOpts = bench.PanelOptions{
	SizeScale: 64,
	ThreadCap: 4,
	Duration:  40 * time.Millisecond,
}

type benchEntry struct {
	target bench.Target
	mem    *pmem.Memory
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchEntry{}
)

func cachedTarget(b *testing.B, cfg bench.Config) *benchEntry {
	b.Helper()
	key := fmt.Sprintf("%s|%s|%s|%d|%d", cfg.Kind, cfg.Policy, cfg.Profile.Name,
		cfg.Threads, cfg.Range)
	benchMu.Lock()
	defer benchMu.Unlock()
	if e, ok := benchCache[key]; ok {
		return e
	}
	target, mem, err := bench.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	bench.Prefill(target, mem, cfg)
	e := &benchEntry{target: target, mem: mem}
	benchCache[key] = e
	return e
}

func runPanel(b *testing.B, id string) {
	p, err := bench.PanelByID(benchOpts, id)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range p.Configs {
		cfg := cfg
		name := fmt.Sprintf("%s/%s/t%d/r%d/u%d",
			cfg.Kind, cfg.Policy, cfg.Threads, cfg.Range, cfg.UpdatePct)
		b.Run(name, func(b *testing.B) {
			e := cachedTarget(b, cfg)
			b.ResetTimer()
			var last bench.Result
			for i := 0; i < b.N; i++ {
				last = bench.Measure(e.target, e.mem, cfg)
			}
			b.ReportMetric(last.Mops, "Mops/s")
			b.ReportMetric(last.FlushPerOp, "flush/op")
			b.ReportMetric(last.FencePerOp, "fence/op")
		})
	}
}

// Figure 5 — NVRAM machine (Optane-like persistence costs).

// BenchmarkFig5a is Figure 5(a): list throughput vs thread count.
func BenchmarkFig5a(b *testing.B) { runPanel(b, "5a") }

// BenchmarkFig5b is Figure 5(b): list throughput vs list size.
func BenchmarkFig5b(b *testing.B) { runPanel(b, "5b") }

// BenchmarkFig5c is Figure 5(c): list throughput vs update percentage.
func BenchmarkFig5c(b *testing.B) { runPanel(b, "5c") }

// BenchmarkFig5d is Figure 5(d): hash table vs update percentage.
func BenchmarkFig5d(b *testing.B) { runPanel(b, "5d") }

// BenchmarkFig5e is Figure 5(e): both BSTs vs update percentage.
func BenchmarkFig5e(b *testing.B) { runPanel(b, "5e") }

// BenchmarkFig5f is Figure 5(f): skiplist vs update percentage.
func BenchmarkFig5f(b *testing.B) { runPanel(b, "5f") }

// Figure 6 — DRAM machine (cheaper persistence; includes log-free).

// BenchmarkFig6g is Figure 6(g): list throughput vs thread count.
func BenchmarkFig6g(b *testing.B) { runPanel(b, "6g") }

// BenchmarkFig6h is Figure 6(h): list vs update percentage.
func BenchmarkFig6h(b *testing.B) { runPanel(b, "6h") }

// BenchmarkFig6i is Figure 6(i): list vs size.
func BenchmarkFig6i(b *testing.B) { runPanel(b, "6i") }

// BenchmarkFig6j is Figure 6(j): hash table vs thread count.
func BenchmarkFig6j(b *testing.B) { runPanel(b, "6j") }

// BenchmarkFig6k is Figure 6(k): hash table vs update percentage.
func BenchmarkFig6k(b *testing.B) { runPanel(b, "6k") }

// BenchmarkFig6l is Figure 6(l): hash table vs size.
func BenchmarkFig6l(b *testing.B) { runPanel(b, "6l") }

// BenchmarkFig6m is Figure 6(m): both BSTs vs update percentage.
func BenchmarkFig6m(b *testing.B) { runPanel(b, "6m") }

// BenchmarkFig6n is Figure 6(n): skiplist vs thread count.
func BenchmarkFig6n(b *testing.B) { runPanel(b, "6n") }

// BenchmarkFig6o is Figure 6(o): skiplist vs update percentage.
func BenchmarkFig6o(b *testing.B) { runPanel(b, "6o") }

// BenchmarkAblationEnsureReachable compares the two ensureReachable
// mechanisms of §4.1 / Supplement 2 on the Harris list: the current-parent
// optimization (no extra field) vs the originalParent field (extra word
// per node, one recorded store per insert). The paper predicts nearly
// identical flush counts — the mechanisms differ in space, not flushes.
func BenchmarkAblationEnsureReachable(b *testing.B) {
	cfg := bench.Config{
		Kind: "list", Policy: "nvtraverse", Profile: pmem.ProfileNVRAM,
		Threads: 2, Range: 1024, UpdatePct: 20, Duration: 40 * time.Millisecond,
	}
	b.Run("current-parent-optimization", func(b *testing.B) {
		e := cachedTarget(b, cfg)
		b.ResetTimer()
		var last bench.Result
		for i := 0; i < b.N; i++ {
			last = bench.Measure(e.target, e.mem, cfg)
		}
		b.ReportMetric(last.Mops, "Mops/s")
		b.ReportMetric(last.FlushPerOp, "flush/op")
	})
	b.Run("original-parent-field", func(b *testing.B) {
		mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: cfg.Profile,
			MaxThreads: cfg.Threads + 10})
		l := list.NewWithOriginalParent(mem, persist.NVTraverse{})
		bench.Prefill(l, mem, cfg)
		b.ResetTimer()
		var last bench.Result
		for i := 0; i < b.N; i++ {
			last = bench.Measure(l, mem, cfg)
		}
		b.ReportMetric(last.Mops, "Mops/s")
		b.ReportMetric(last.FlushPerOp, "flush/op")
	})
}

// BenchmarkZipfianSkew is the skew extension: hot keys concentrate flushes
// on few cache lines, which is where link-and-persist's tag elision shines
// and where the uniform-key panels understate it.
func BenchmarkZipfianSkew(b *testing.B) {
	for _, pol := range []string{"nvtraverse", "logfree"} {
		cfg := bench.Config{
			Kind: "skiplist", Policy: pol, Profile: pmem.ProfileNVRAM,
			Threads: 2, Range: 1 << 14, UpdatePct: 10, Duration: 40 * time.Millisecond,
		}
		b.Run(pol, func(b *testing.B) {
			e := cachedTarget(b, cfg)
			z := bench.NewZipf(cfg.Range, 0.99)
			th := e.mem.NewThread()
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 1024; j++ {
					k := z.Next(th.Rand())
					r := int(th.Rand() % 100)
					switch {
					case r < cfg.UpdatePct/2:
						e.target.Insert(th, k, k)
					case r < cfg.UpdatePct:
						e.target.Delete(th, k)
					default:
						e.target.Find(th, k)
					}
					ops++
				}
			}
			st := th.StatsSnapshot()
			b.ReportMetric(float64(st.Flushes)/float64(ops), "flush/op")
		})
	}
}

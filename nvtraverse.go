// Package nvtraverse is the public facade of the NVTraverse reproduction:
// durably linearizable lock-free sets, maps and queues for (simulated)
// non-volatile memory, produced by the automatic transformation of
// Friedman, Ben-David, Wei, Blelloch and Petrank, "NVTraverse: In NVRAM
// Data Structures, the Destination is More Important than the Journey"
// (PLDI 2020).
//
// Quick start (Store API v2):
//
//	st, _ := nvtraverse.Open(nvtraverse.Skiplist)
//	h := st.NewSession()           // one per goroutine
//	h.Put(42, 420)
//	v, ok := h.Get(42)
//	h.Update(42, func(old uint64) uint64 { return old + 1 })
//	h.Scan(1, 100, func(k, v uint64) bool { return true })
//
// Open takes functional options — WithPolicy, WithProfile, WithSizeHint,
// WithShards, WithTracked — and returns a Store: the same interface over a
// bare structure and over the hash-sharded engine, so the handle works
// identically whether the store has one shard or sixty-four. NewMap wraps
// a handle in a typed Map[K, V] with pluggable codecs.
//
// After a (simulated) crash — see pmem.Memory's tracked mode — call
// Store.Recover (or Set.Recover) before issuing new operations.
//
// The v1 surface (NewSet/NewSetSized on a caller-owned Memory, NewEngine)
// remains available below as thin wrappers; new code should use Open.
//
// Everything here delegates to the internal packages; see DESIGN.md for
// the system inventory and internal/persist for the transformation itself.
package nvtraverse

import (
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/shard"
)

// Re-exported structure kinds.
const (
	List     = core.KindList
	HashMap  = core.KindHash
	EllenBST = core.KindEllenBST
	NMBST    = core.KindNMBST
	Skiplist = core.KindSkiplist
)

// Re-exported persistence policies. PolicyNVTraverse is the paper's
// transformation; the others are the baselines it is evaluated against.
var (
	PolicyNone        persist.Policy = persist.None{}
	PolicyNVTraverse  persist.Policy = persist.NVTraverse{}
	PolicyIzraelevitz persist.Policy = persist.Izraelevitz{}
	PolicyLogFree     persist.Policy = persist.LinkAndPersist{}
)

// Memory profiles for the simulated persistence-instruction costs.
var (
	NVRAM = pmem.ProfileNVRAM
	DRAM  = pmem.ProfileDRAM
)

// Set is a durable map from uint64 keys (in [1, 2^61)) to uint64 values.
type Set = core.Set

// Thread is a per-goroutine operation context.
type Thread = pmem.Thread

// Memory is a simulated persistent-memory domain.
type Memory = pmem.Memory

// NewMemory creates a fast-mode memory with the given latency profile
// (use pmem.NewTracked directly for crash testing).
func NewMemory(profile pmem.Profile) *Memory {
	return pmem.NewFast(profile)
}

// NewSet builds a durable set of the given kind with the given policy.
//
// Deprecated: use Open(kind, WithPolicy(pol), ...), which owns its memory
// and returns the unified Store surface (scans, RMW, sessions). NewSet
// remains for callers that manage the Memory themselves — structures it
// returns now carry the v2 operations (Update, GetOrInsert, RangeScan)
// too, since they are part of the Set contract.
func NewSet(kind core.Kind, mem *Memory, pol persist.Policy) (Set, error) {
	return core.NewSet(kind, mem, pol, core.Params{})
}

// NewSetSized builds a durable set with a size hint (hash bucket count).
//
// Deprecated: use Open(kind, WithPolicy(pol), WithSizeHint(n)).
func NewSetSized(kind core.Kind, mem *Memory, pol persist.Policy, sizeHint int) (Set, error) {
	return core.NewSet(kind, mem, pol, core.Params{SizeHint: sizeHint})
}

// Queue is the durable Michael–Scott queue in traversal form.
type Queue = queue.Queue

// NewQueue builds a durable queue with the given policy.
func NewQueue(mem *Memory, pol persist.Policy) *Queue {
	return queue.New(mem, pol)
}

// Engine is the hash-sharded durable key-value engine: N independent
// (memory, structure) shards behind Get/Put/Delete plus batched operations
// that pay one commit fence per shard group, whole-engine crash/recovery
// (shards recover in parallel), and per-shard statistics.
type Engine = shard.Engine

// EngineConfig configures NewEngine (shard count, structure kind, policy,
// latency profile, tracked mode for crash testing).
type EngineConfig = shard.Config

// Session is a per-goroutine handle on an Engine (one per worker).
type Session = shard.Session

// Op and OpResult form Session.Apply's batched operation surface.
type (
	Op       = shard.Op
	OpResult = shard.OpResult
)

// Batched operation kinds for Session.Apply and StoreSession.Apply.
// OpUpdate is the atomic read-modify-write (Op.Fn, or conditional
// overwrite with Op.Value when Fn is nil); OpScan counts the keys of
// [Op.Key, Op.Hi].
const (
	OpGet    = shard.OpGet
	OpPut    = shard.OpPut
	OpInsert = shard.OpInsert
	OpDelete = shard.OpDelete
	OpUpdate = shard.OpUpdate
	OpScan   = shard.OpScan
)

// NewEngine builds a sharded durable KV engine.
//
// Deprecated: use Open(kind, WithShards(n), ...), which returns the same
// engine behind the unified Store surface. NewEngine remains for callers
// that want the concrete *Engine (per-shard inspection, crash testing).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return shard.New(cfg)
}

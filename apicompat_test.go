package nvtraverse

// This file is the API-compatibility guard the CI `apicheck` target runs:
// compile-time assertions that the v1 facade symbols still exist with
// their v1 signatures. It is the in-repo equivalent of an apidiff gate —
// removing or re-signing any v1 symbol breaks this file before it breaks a
// downstream caller. The v2 surface (Open, Store, Map) is asserted below
// too, so the next redesign extends rather than replaces it.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/store"
)

// v1 construction surface.
var (
	_ func(pmem.Profile) *Memory                                 = NewMemory
	_ func(core.Kind, *Memory, persist.Policy) (Set, error)      = NewSet
	_ func(core.Kind, *Memory, persist.Policy, int) (Set, error) = NewSetSized
	_ func(*Memory, persist.Policy) *Queue                       = NewQueue
	_ func(EngineConfig) (*Engine, error)                        = NewEngine
)

// v1 policy and profile values.
var (
	_ persist.Policy = PolicyNone
	_ persist.Policy = PolicyNVTraverse
	_ persist.Policy = PolicyIzraelevitz
	_ persist.Policy = PolicyLogFree
	_ pmem.Profile   = NVRAM
	_ pmem.Profile   = DRAM
)

// v1 kind constants and op kinds.
var (
	_ = []core.Kind{List, HashMap, EllenBST, NMBST, Skiplist}
	_ = []Op{{Kind: OpGet}, {Kind: OpPut}, {Kind: OpInsert}, {Kind: OpDelete}}
)

// v2 surface: options-based construction, unified store, typed map.
var (
	_ func(Kind, ...Option) (Store, error) = Open
	_                                      = []Option{
		WithPolicy(PolicyNVTraverse), WithProfile(NVRAM), WithSizeHint(1),
		WithBuckets(1), WithTracked(), WithShards(1), WithMaxSessions(1),
	}
	_ = []Op{{Kind: OpUpdate}, {Kind: OpScan}}
)

// The v1 Set alias must keep satisfying the v2 contract so old callers
// gain the new operations without a type change.
var _ interface {
	Insert(t *Thread, key, value uint64) bool
	Delete(t *Thread, key uint64) bool
	Find(t *Thread, key uint64) (uint64, bool)
	Update(t *Thread, key uint64, fn func(old uint64) uint64) (uint64, bool)
	GetOrInsert(t *Thread, key, value uint64) (uint64, bool)
	RangeScan(t *Thread, lo, hi uint64, fn func(key, value uint64) bool) error
	Recover(t *Thread)
	Contents(t *Thread) []uint64
} = Set(nil)

// v3 surface: replication options on the facade, the replication view on
// the store, and the single-constructor client Dial.
var (
	_ = []Option{WithReplicaOf("unix:/x"), WithWaitReplicas(1)}
	_ interface {
		Repl() store.ReplStats
		Boot() uint64
	} = Store(nil)
)

// The redesigned client constructor and its options.
var (
	_ func(string, ...server.DialOption) (*server.Client, error) = server.Dial
	_                                                            = []server.DialOption{
		server.WithBinaryProto(),
		server.WithDialTimeout(time.Second),
		server.WithReadFrom(server.ReadPrimary),
		server.WithReadFrom(server.ReadReplica),
		server.WithReadFrom(server.ReadNearest),
		server.WithReplicaAddrs("unix:/x"),
	}
	_ func() error      = (*server.Client)(nil).Promote
	_ error             = server.ErrWait
	_ error             = server.ErrReplica
	_ store.ReplRole    = store.RoleNone
	_ []store.ReplStats = nil
)

// The deprecated v2 Dial variants must keep compiling with their original
// signatures (and plain Dial("addr") calls still compile against the new
// variadic form): old callers get the new client without a source change.
var (
	_ func(string) (*server.Client, error)                = server.DialBin
	_ func(string, time.Duration) (*server.Client, error) = server.DialTimeout
	_ func(string, time.Duration) (*server.Client, error) = server.DialBinTimeout
)

// TestV1FacadeSymbols exists so `go test -run TestV1Facade` has a named
// anchor; the real checking is the compile of this file.
func TestV1FacadeSymbols(t *testing.T) {
	if _, err := Open(Skiplist); err != nil {
		t.Fatal(err)
	}
}

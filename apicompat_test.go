package nvtraverse

// This file is the API-compatibility guard the CI `apicheck` target runs:
// compile-time assertions that the v1 facade symbols still exist with
// their v1 signatures. It is the in-repo equivalent of an apidiff gate —
// removing or re-signing any v1 symbol breaks this file before it breaks a
// downstream caller. The v2 surface (Open, Store, Map) is asserted below
// too, so the next redesign extends rather than replaces it.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// v1 construction surface.
var (
	_ func(pmem.Profile) *Memory                                 = NewMemory
	_ func(core.Kind, *Memory, persist.Policy) (Set, error)      = NewSet
	_ func(core.Kind, *Memory, persist.Policy, int) (Set, error) = NewSetSized
	_ func(*Memory, persist.Policy) *Queue                       = NewQueue
	_ func(EngineConfig) (*Engine, error)                        = NewEngine
)

// v1 policy and profile values.
var (
	_ persist.Policy = PolicyNone
	_ persist.Policy = PolicyNVTraverse
	_ persist.Policy = PolicyIzraelevitz
	_ persist.Policy = PolicyLogFree
	_ pmem.Profile   = NVRAM
	_ pmem.Profile   = DRAM
)

// v1 kind constants and op kinds.
var (
	_ = []core.Kind{List, HashMap, EllenBST, NMBST, Skiplist}
	_ = []Op{{Kind: OpGet}, {Kind: OpPut}, {Kind: OpInsert}, {Kind: OpDelete}}
)

// v2 surface: options-based construction, unified store, typed map.
var (
	_ func(Kind, ...Option) (Store, error) = Open
	_                                      = []Option{
		WithPolicy(PolicyNVTraverse), WithProfile(NVRAM), WithSizeHint(1),
		WithBuckets(1), WithTracked(), WithShards(1), WithMaxSessions(1),
	}
	_ = []Op{{Kind: OpUpdate}, {Kind: OpScan}}
)

// The v1 Set alias must keep satisfying the v2 contract so old callers
// gain the new operations without a type change.
var _ interface {
	Insert(t *Thread, key, value uint64) bool
	Delete(t *Thread, key uint64) bool
	Find(t *Thread, key uint64) (uint64, bool)
	Update(t *Thread, key uint64, fn func(old uint64) uint64) (uint64, bool)
	GetOrInsert(t *Thread, key, value uint64) (uint64, bool)
	RangeScan(t *Thread, lo, hi uint64, fn func(key, value uint64) bool) error
	Recover(t *Thread)
	Contents(t *Thread) []uint64
} = Set(nil)

// TestV1FacadeSymbols exists so `go test -run TestV1Facade` has a named
// anchor; the real checking is the compile of this file.
func TestV1FacadeSymbols(t *testing.T) {
	if _, err := Open(Skiplist); err != nil {
		t.Fatal(err)
	}
}

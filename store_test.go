package nvtraverse

import (
	"errors"
	"sync"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	st, err := Open(Skiplist)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind() != Skiplist || st.Shards() != 0 || !st.Ordered() {
		t.Fatalf("defaults: kind=%s shards=%d ordered=%v", st.Kind(), st.Shards(), st.Ordered())
	}
	h := st.NewSession()
	h.Put(1, 10)
	if v, ok := h.Get(1); !ok || v != 10 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
}

func TestOpenOptions(t *testing.T) {
	st, err := Open(NMBST,
		WithPolicy(PolicyLogFree),
		WithProfile(DRAM),
		WithShards(4),
		WithSizeHint(1<<12),
		WithMaxSessions(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 4 {
		t.Fatalf("Shards() = %d", st.Shards())
	}
	h := st.NewSession()
	for k := uint64(1); k <= 200; k++ {
		h.Insert(k, k)
	}
	// The engine scan merges 4 per-shard NM-BST scans into one ordered
	// stream.
	last := uint64(0)
	n := 0
	if err := h.Scan(1, 200, func(k, v uint64) bool {
		if k <= last {
			t.Fatalf("merged scan out of order: %d after %d", k, last)
		}
		last = k
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("scan saw %d keys, want 200", n)
	}
}

func TestOpenUnorderedScan(t *testing.T) {
	st, err := Open(HashMap, WithSizeHint(64))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ordered() {
		t.Fatal("hash store claims an order")
	}
	err = st.NewSession().Scan(1, 10, func(uint64, uint64) bool { return true })
	if !errors.Is(err, ErrUnordered) {
		t.Fatalf("Scan err = %v, want ErrUnordered", err)
	}
}

func TestMapTypedFacade(t *testing.T) {
	st, err := Open(Skiplist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMap[int, uint64](st.NewSession(), IntCodec{}, Uint64Codec{})
	for i := 0; i < 50; i++ {
		m.Put(i, uint64(i)*7)
	}
	if v, ok := m.Get(21); !ok || v != 147 {
		t.Fatalf("Get(21) = %d,%v", v, ok)
	}
	if nv, ok := m.Update(21, func(old uint64) uint64 { return old + 3 }); !ok || nv != 150 {
		t.Fatalf("Update = %d,%v", nv, ok)
	}
	if v, ins := m.GetOrInsert(21, 1); ins || v != 150 {
		t.Fatalf("GetOrInsert present = %d,%v", v, ins)
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) failed — IntCodec must make int key 0 legal")
	}
	var got []int
	if err := m.Scan(10, 19, func(k int, v uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("typed Scan = %v", got)
	}
}

// TestMapMissReturnsZeroValue: a miss yields V's zero value, not a decode
// of the store's raw 0 (IntCodec.Decode(0) would be -1).
func TestMapMissReturnsZeroValue(t *testing.T) {
	st, err := Open(Skiplist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMap[uint64, int](st.NewSession(), Uint64Codec{}, IntCodec{})
	if v, ok := m.Get(9); ok || v != 0 {
		t.Fatalf("Get miss = %d,%v, want 0,false", v, ok)
	}
	if v, ok := m.Update(9, func(old int) int { return old + 1 }); ok || v != 0 {
		t.Fatalf("Update miss = %d,%v, want 0,false", v, ok)
	}
}

// TestMapAtomicAcrossGoroutines: the typed Update composes codecs with the
// structure-level atomicity.
func TestMapAtomicAcrossGoroutines(t *testing.T) {
	st, err := Open(List)
	if err != nil {
		t.Fatal(err)
	}
	seed := st.NewSession()
	seed.Insert(IntCodec{}.Encode(1), 0)
	const workers, rounds = 4, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		m := NewMap[int, uint64](st.NewSession(), IntCodec{}, Uint64Codec{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.Update(1, func(old uint64) uint64 { return old + 1 })
			}
		}()
	}
	wg.Wait()
	m := NewMap[int, uint64](st.NewSession(), IntCodec{}, Uint64Codec{})
	if v, ok := m.Get(1); !ok || v != workers*rounds {
		t.Fatalf("counter = %d,%v want %d", v, ok, workers*rounds)
	}
}

package nvtraverse

// Map is the typed facade over the uint64 store core: a Map[K, V] wraps a
// StoreSession with a pair of codecs, so callers work in their own key and
// value types while every operation — including atomic read-modify-write
// and ordered scans — is executed by the underlying durable structure.
//
// Like the session it wraps, a Map is a per-goroutine handle: build one
// Map per worker over that worker's session.
type Map[K any, V any] struct {
	h  StoreSession
	kc Codec[K]
	vc Codec[V]
}

// Codec converts between a user type and the store's uint64 words.
// Key codecs must be injective, and — for Scan to iterate in the caller's
// order — monotone: a < b must imply Encode(a) < Encode(b). Encoded keys
// must lie in [1, 2^61); values may use all 64 bits.
type Codec[T any] interface {
	Encode(T) uint64
	Decode(uint64) T
}

// NewMap builds a typed view over a store session.
func NewMap[K any, V any](h StoreSession, kc Codec[K], vc Codec[V]) *Map[K, V] {
	return &Map[K, V]{h: h, kc: kc, vc: vc}
}

// Get looks up a key; on a miss the value is V's zero value (never a
// decode of the store's raw 0, which some codecs map elsewhere).
func (m *Map[K, V]) Get(key K) (V, bool) {
	w, ok := m.h.Get(m.kc.Encode(key))
	if !ok {
		var zero V
		return zero, false
	}
	return m.vc.Decode(w), true
}

// Put upserts atomically: afterwards the key maps to value.
func (m *Map[K, V]) Put(key K, value V) {
	m.h.Put(m.kc.Encode(key), m.vc.Encode(value))
}

// Insert adds key with value; false if the key is already present.
func (m *Map[K, V]) Insert(key K, value V) bool {
	return m.h.Insert(m.kc.Encode(key), m.vc.Encode(value))
}

// Delete removes a key; false if absent.
func (m *Map[K, V]) Delete(key K) bool {
	return m.h.Delete(m.kc.Encode(key))
}

// Update atomically read-modify-writes key's value in place, returning the
// installed value, or the zero value and false if key is absent. fn may be
// called several times under contention and must be pure.
func (m *Map[K, V]) Update(key K, fn func(old V) V) (V, bool) {
	w, ok := m.h.Update(m.kc.Encode(key), func(old uint64) uint64 {
		return m.vc.Encode(fn(m.vc.Decode(old)))
	})
	if !ok {
		var zero V
		return zero, false
	}
	return m.vc.Decode(w), true
}

// GetOrInsert atomically returns the present value (inserted=false) or
// inserts value and returns it (inserted=true).
func (m *Map[K, V]) GetOrInsert(key K, value V) (v V, inserted bool) {
	w, ins := m.h.GetOrInsert(m.kc.Encode(key), m.vc.Encode(value))
	return m.vc.Decode(w), ins
}

// Scan visits every present key in [lo, hi] in ascending encoded order,
// calling fn until it returns false or the range is exhausted. Requires an
// ordered kind (ErrUnordered otherwise) and a monotone key codec. See
// core.Set.RangeScan for the consistency contract.
func (m *Map[K, V]) Scan(lo, hi K, fn func(key K, value V) bool) error {
	return m.h.Scan(m.kc.Encode(lo), m.kc.Encode(hi), func(k, v uint64) bool {
		return fn(m.kc.Decode(k), m.vc.Decode(v))
	})
}

// Session exposes the wrapped untyped handle.
func (m *Map[K, V]) Session() StoreSession { return m.h }

// Uint64Codec is the identity codec. As a key codec it requires keys in
// [1, 2^61); as a value codec it is unrestricted.
type Uint64Codec struct{}

func (Uint64Codec) Encode(v uint64) uint64 { return v }
func (Uint64Codec) Decode(w uint64) uint64 { return w }

// IntCodec maps non-negative ints with a +1 shift, so 0 is a legal,
// scannable key. Keys must lie in [0, 2^61-2); the mapping is monotone.
type IntCodec struct{}

func (IntCodec) Encode(v int) uint64 { return uint64(v) + 1 }
func (IntCodec) Decode(w uint64) int { return int(w - 1) }

package nvtraverse

import (
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// Store is the unified durable-store surface (Store API v2): one interface
// satisfied by both a bare traversal structure and the sharded engine.
// Open is the constructor; StoreSession is the per-goroutine handle.
type Store = store.Store

// StoreSession is the per-goroutine operation handle of a Store: point
// ops, atomic read-modify-write (Update, GetOrInsert, atomic Put), ordered
// range scans (Scan), and batched Apply/MultiGet. A bare structure and an
// engine hand out the same handle type, so callers never need to know
// which they hold.
type StoreSession = store.Session

// ErrUnordered is returned by Scan/RangeScan on kinds without a key order
// (the hash table).
var ErrUnordered = core.ErrUnordered

// Option configures Open.
type Option func(*store.Config)

// WithPolicy selects the persistence transformation (default
// PolicyNVTraverse).
func WithPolicy(pol persist.Policy) Option {
	return func(c *store.Config) { c.Policy = pol }
}

// WithProfile selects the simulated latency profile (default NVRAM).
func WithProfile(p pmem.Profile) Option {
	return func(c *store.Config) { c.Profile = p }
}

// WithSizeHint declares the expected key-range size (hash bucket sizing,
// shard sizing).
func WithSizeHint(n int) Option {
	return func(c *store.Config) { c.SizeHint = n }
}

// WithBuckets overrides the hash bucket count (hash kind only).
func WithBuckets(n int) Option {
	return func(c *store.Config) { c.Buckets = n }
}

// WithTracked builds the store on tracked memories for crash testing
// (slower; supports Crash/FinishCrash via the backend accessors).
func WithTracked() Option {
	return func(c *store.Config) { c.Tracked = true }
}

// WithShards opens the hash-sharded engine with n shards instead of a bare
// structure. Scans merge the per-shard ordered streams.
func WithShards(n int) Option {
	return func(c *store.Config) { c.Shards = n }
}

// WithMaxSessions bounds NewSession calls (default 64).
func WithMaxSessions(n int) Option {
	return func(c *store.Config) { c.MaxSessions = n }
}

// WithDir backs the store with the durable file backend: every commit
// fence journals its line set into a WAL under dir (one subdirectory per
// shard), Open replays the files before returning, and Close/Checkpoint
// manage the log. A store reopened on the same directory sees every
// previously acknowledged operation, even after SIGKILL.
func WithDir(dir string) Option {
	return func(c *store.Config) { c.Dir = dir }
}

// WithSyncFence makes every commit fence fsync the WAL — durability
// against power loss rather than just process death. Only meaningful
// together with WithDir.
func WithSyncFence() Option {
	return func(c *store.Config) { c.SyncFence = true }
}

// Open builds a durable store of the given structure kind.
//
//	st, _ := nvtraverse.Open(nvtraverse.Skiplist,
//	        nvtraverse.WithPolicy(nvtraverse.PolicyNVTraverse),
//	        nvtraverse.WithShards(8),
//	        nvtraverse.WithSizeHint(1<<20))
//	h := st.NewSession() // one per goroutine
//	h.Put(42, 420)
//	h.Scan(1, 100, func(k, v uint64) bool { ...; return true })
//
// With no options the store is a bare NVTraverse structure on a fast
// NVRAM-profile memory. Open replaces the positional constructors NewSet,
// NewSetSized and NewEngine, which remain as deprecated wrappers.
func Open(kind Kind, opts ...Option) (Store, error) {
	cfg := store.Config{Kind: kind}
	for _, o := range opts {
		o(&cfg)
	}
	return store.Open(cfg)
}

// Kind names a structure kind (see the re-exported constants List,
// HashMap, EllenBST, NMBST, Skiplist).
type Kind = core.Kind

// Ordered reports whether a kind supports range scans.
func Ordered(kind Kind) bool { return core.Ordered(kind) }

package nvtraverse

import (
	"path/filepath"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/repl"
	"repro/internal/store"
)

// Store is the unified durable-store surface (Store API v2): one interface
// satisfied by both a bare traversal structure and the sharded engine.
// Open is the constructor; StoreSession is the per-goroutine handle.
type Store = store.Store

// StoreSession is the per-goroutine operation handle of a Store: point
// ops, atomic read-modify-write (Update, GetOrInsert, atomic Put), ordered
// range scans (Scan), and batched Apply/MultiGet. A bare structure and an
// engine hand out the same handle type, so callers never need to know
// which they hold.
type StoreSession = store.Session

// ErrUnordered is returned by Scan/RangeScan on kinds without a key order
// (the hash table).
var ErrUnordered = core.ErrUnordered

// openConfig is the full Open configuration: the store.Config core plus
// facade-level concerns (replication attachment) the store layer never
// sees.
type openConfig struct {
	cfg       store.Config
	replicaOf string
}

// Option configures Open.
type Option func(*openConfig)

// WithPolicy selects the persistence transformation (default
// PolicyNVTraverse).
func WithPolicy(pol persist.Policy) Option {
	return func(c *openConfig) { c.cfg.Policy = pol }
}

// WithProfile selects the simulated latency profile (default NVRAM).
func WithProfile(p pmem.Profile) Option {
	return func(c *openConfig) { c.cfg.Profile = p }
}

// WithSizeHint declares the expected key-range size (hash bucket sizing,
// shard sizing).
func WithSizeHint(n int) Option {
	return func(c *openConfig) { c.cfg.SizeHint = n }
}

// WithBuckets overrides the hash bucket count (hash kind only).
func WithBuckets(n int) Option {
	return func(c *openConfig) { c.cfg.Buckets = n }
}

// WithTracked builds the store on tracked memories for crash testing
// (slower; supports Crash/FinishCrash via the backend accessors).
func WithTracked() Option {
	return func(c *openConfig) { c.cfg.Tracked = true }
}

// WithShards opens the hash-sharded engine with n shards instead of a bare
// structure. Scans merge the per-shard ordered streams.
func WithShards(n int) Option {
	return func(c *openConfig) { c.cfg.Shards = n }
}

// WithMaxSessions bounds NewSession calls (default 64).
func WithMaxSessions(n int) Option {
	return func(c *openConfig) { c.cfg.MaxSessions = n }
}

// WithDir backs the store with the durable file backend: every commit
// fence journals its line set into a WAL under dir (one subdirectory per
// shard), Open replays the files before returning, and Close/Checkpoint
// manage the log. A store reopened on the same directory sees every
// previously acknowledged operation, even after SIGKILL.
func WithDir(dir string) Option {
	return func(c *openConfig) { c.cfg.Dir = dir }
}

// WithSyncFence makes every commit fence fsync the WAL — durability
// against power loss rather than just process death. Only meaningful
// together with WithDir.
func WithSyncFence() Option {
	return func(c *openConfig) { c.cfg.SyncFence = true }
}

// WithReplicaOf attaches the opened store to a replication primary at addr
// ("unix:/path" or "host:port", an nvserver wire-protocol listener). The
// store bootstraps from the primary's snapshot, then applies its committed
// fence groups continuously; Repl() reports the link and Close detaches
// it. Reads see the replicated data with bounded staleness (the stream is
// asynchronous); local writes through sessions are NOT forwarded to the
// primary and can be overwritten by the stream — a replica handle is for
// reading. With WithDir, the stream position survives reopen (the replica
// resumes tailing instead of re-copying the snapshot).
func WithReplicaOf(addr string) Option {
	return func(c *openConfig) { c.replicaOf = addr }
}

// WithWaitReplicas declares the write quorum K the serving layer enforces
// on this store: a WAIT-mode write is acknowledged only after K replicas
// confirmed the fence group containing it. The store itself does not gate
// on it — nvserver's replication primary does — but recording it here lets
// one Open call express the full durability contract, and Repl() surfaces
// it.
func WithWaitReplicas(k int) Option {
	return func(c *openConfig) { c.cfg.WaitReplicas = k }
}

// Open builds a durable store of the given structure kind.
//
//	st, _ := nvtraverse.Open(nvtraverse.Skiplist,
//	        nvtraverse.WithPolicy(nvtraverse.PolicyNVTraverse),
//	        nvtraverse.WithShards(8),
//	        nvtraverse.WithSizeHint(1<<20))
//	h := st.NewSession() // one per goroutine
//	h.Put(42, 420)
//	h.Scan(1, 100, func(k, v uint64) bool { ...; return true })
//
// With no options the store is a bare NVTraverse structure on a fast
// NVRAM-profile memory. Open replaces the positional constructors NewSet,
// NewSetSized and NewEngine, which remain as deprecated wrappers.
func Open(kind Kind, opts ...Option) (Store, error) {
	oc := openConfig{cfg: store.Config{Kind: kind}}
	for _, o := range opts {
		o(&oc)
	}
	st, err := store.Open(oc.cfg)
	if err != nil {
		return nil, err
	}
	if oc.replicaOf == "" {
		return st, nil
	}
	// Replica attachment: a durable replica persists its stream position
	// next to the WAL so reopening resumes the tail instead of re-copying
	// the primary's snapshot.
	wm := ""
	if oc.cfg.Dir != "" {
		wm = filepath.Join(oc.cfg.Dir, "repl.watermark")
	}
	rep, err := repl.StartReplica(st, repl.ReplicaConfig{
		Primary:       oc.replicaOf,
		WatermarkPath: wm,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	return &replicaStore{Store: st, rep: rep}, nil
}

// replicaStore wraps a replica-attached store so Close detaches the
// stream (persisting the watermark) before closing the backend.
type replicaStore struct {
	Store
	rep *repl.Replica
}

func (r *replicaStore) Close() error {
	r.rep.Close()
	return r.Store.Close()
}

// Kind names a structure kind (see the re-exported constants List,
// HashMap, EllenBST, NMBST, Skiplist).
type Kind = core.Kind

// Ordered reports whether a kind supports range scans.
func Ordered(kind Kind) bool { return core.Ordered(kind) }

package nvtraverse

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// TestOpenWithReplicaOf attaches a facade-opened store to a live nvserver
// primary: the snapshot bootstraps it, the stream keeps it fresh, and
// Repl() reports the replica role.
func TestOpenWithReplicaOf(t *testing.T) {
	pst, err := Open(HashMap, WithShards(2), WithMaxSessions(16))
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	srv := server.New(pst, server.Config{MaxConns: 4})
	addr := "unix:" + filepath.Join(t.TempDir(), "p.sock")
	ln, err := server.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for k := uint64(1); k <= 50; k++ {
		if err := cl.Put(k, k+100); err != nil {
			t.Fatal(err)
		}
	}

	rst, err := Open(HashMap, WithShards(2), WithMaxSessions(16), WithReplicaOf(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	if r := rst.Repl(); r.Role != store.RoleReplica {
		t.Fatalf("replica role = %v", r.Role)
	}

	h := rst.NewSession()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := h.Get(50); ok && v == 150 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Live stream after bootstrap.
	if err := cl.Put(99, 999); err != nil {
		t.Fatal(err)
	}
	for {
		if v, ok := h.Get(99); ok && v == 999 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("streamed write never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOpenWithWaitReplicas pins that the facade option lands in the
// replication view even before any serving layer is attached.
func TestOpenWithWaitReplicas(t *testing.T) {
	st, err := Open(HashMap, WithWaitReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if r := st.Repl(); r.WaitReplicas != 2 || r.Role != store.RoleNone {
		t.Fatalf("repl view = %+v", r)
	}
}

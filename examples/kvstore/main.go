// kvstore: a durable key-value store on the NVTraverse skiplist, with a
// simulated power failure in the middle of a concurrent workload. The
// tracked memory stops every worker mid-instruction, rolls back all
// unpersisted writes, and the store recovers — keeping every acknowledged
// write, exactly what durable linearizability promises. Because the
// skiplist is ordered, the post-recovery state is verified twice: per key
// (Find) and wholesale (a RangeScan that must report every acknowledged
// key in order).
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
)

func main() {
	mem := pmem.NewTracked()
	store, err := core.NewSet(core.KindSkiplist, mem, persist.NVTraverse{},
		core.Params{SizeHint: 1024})
	if err != nil {
		panic(err)
	}

	// Phase 1: a concurrent write burst; each worker records which writes
	// were acknowledged (i.e. the operation returned).
	const workers = 4
	acked := make([][]uint64, workers)
	var done atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := mem.NewThread()
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w*10000 + 1)
			for k := base; ; k++ {
				crashed := pmem.RunOp(func() {
					if store.Insert(th, k, k*7) {
						acked[w] = append(acked[w], k)
						done.Add(1)
					}
				})
				if crashed {
					// The last attempt was interrupted mid-operation:
					// it was never acknowledged, so it may land either
					// way. Drop it from the acknowledged list.
					return
				}
			}
		}()
	}

	// Crash after a few hundred acknowledged writes.
	for done.Load() < 400 {
		runtime.Gosched()
	}
	fmt.Printf("power failure after %d acknowledged writes...\n", done.Load())
	mem.Crash()
	wg.Wait()
	mem.FinishCrash(0.25, 42) // a quarter of dirty cache lines evict on their own
	mem.Restart()

	// Phase 2: recovery, then verify every acknowledged write survived.
	rec := mem.NewThread()
	store.Recover(rec)
	lost := 0
	total := 0
	for w := range acked {
		for _, k := range acked[w] {
			total++
			if v, ok := store.Find(rec, k); !ok || v != k*7 {
				lost++
			}
		}
	}
	fmt.Printf("recovered: %d/%d acknowledged writes intact, %d lost\n",
		total-lost, total, lost)
	if lost > 0 {
		panic("durable linearizability violated")
	}

	// The scan view must agree: every acknowledged key shows up in the
	// ordered full-range scan, in ascending order.
	inScan := map[uint64]bool{}
	last := uint64(0)
	if err := store.RangeScan(rec, 1, 1<<61-1, func(k, v uint64) bool {
		if k <= last {
			panic("scan out of order")
		}
		last = k
		inScan[k] = true
		return true
	}); err != nil {
		panic(err)
	}
	for w := range acked {
		for _, k := range acked[w] {
			if !inScan[k] {
				panic(fmt.Sprintf("acknowledged key %d missing from post-recovery scan", k))
			}
		}
	}
	fmt.Printf("post-recovery scan: %d keys, ordered, every acknowledged write present\n", len(inScan))

	// The store keeps working after recovery.
	store.Insert(rec, 999999, 1)
	if _, ok := store.Find(rec, 999999); !ok {
		panic("post-recovery insert failed")
	}
	fmt.Println("post-recovery operations OK")
}

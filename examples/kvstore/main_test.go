package main

import "testing"

// TestMainRuns smoke-tests the kvstore crash/recover example end to end.
func TestMainRuns(t *testing.T) {
	main()
}

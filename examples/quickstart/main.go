// Quickstart: build a durable skiplist with the NVTraverse transformation,
// use it from several goroutines, and inspect the persistence-instruction
// counts that make the transformation cheap.
package main

import (
	"fmt"
	"sync"

	"repro"
)

func main() {
	mem := nvtraverse.NewMemory(nvtraverse.NVRAM)
	set, err := nvtraverse.NewSet(nvtraverse.Skiplist, mem, nvtraverse.PolicyNVTraverse)
	if err != nil {
		panic(err)
	}

	// One Thread per goroutine: it carries the worker's statistics, flush
	// set and epoch slot.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := mem.NewThread()
		base := uint64(w*1000 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := base; k < base+1000; k++ {
				set.Insert(th, k, k*2)
			}
			for k := base; k < base+1000; k += 2 {
				set.Delete(th, k)
			}
		}()
	}
	wg.Wait()

	th := mem.NewThread()
	if v, ok := set.Find(th, 1002); ok {
		fmt.Printf("Find(1002) = %d\n", v)
	}
	fmt.Printf("size = %d\n", len(set.Contents(th)))

	st := mem.Stats()
	fmt.Printf("ops=%d flushes=%d fences=%d (%.2f flushes/op — constant, not per-node)\n",
		st.Ops, st.Flushes, st.Fences, float64(st.Flushes)/float64(st.Ops))
}

// Quickstart: open a durable skiplist store with the NVTraverse
// transformation, use it from several goroutines through per-goroutine
// session handles — point ops, atomic read-modify-write, an ordered range
// scan — and inspect the persistence-instruction counts that make the
// transformation cheap. The same handles would work unchanged against the
// sharded engine (add nvtraverse.WithShards(8) to Open).
package main

import (
	"fmt"
	"sync"

	"repro"
)

func main() {
	st, err := nvtraverse.Open(nvtraverse.Skiplist,
		nvtraverse.WithPolicy(nvtraverse.PolicyNVTraverse),
		nvtraverse.WithProfile(nvtraverse.NVRAM))
	if err != nil {
		panic(err)
	}

	// One session per goroutine: it carries the worker's statistics, flush
	// set and epoch slot.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		h := st.NewSession()
		base := uint64(w*1000 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := base; k < base+1000; k++ {
				h.Insert(k, k*2)
			}
			for k := base; k < base+1000; k += 2 {
				h.Delete(k)
			}
			// Atomic read-modify-write in the structure's critical section.
			for k := base + 1; k < base+100; k += 2 {
				h.Update(k, func(old uint64) uint64 { return old + 1 })
			}
		}()
	}
	wg.Wait()

	h := st.NewSession()
	if v, ok := h.Get(1002); ok {
		fmt.Printf("Get(1002) = %d\n", v)
	}
	// An ordered range scan: no flushes during the walk under NVTraverse,
	// one persistence batch at the destination.
	sum, count := uint64(0), 0
	h.Scan(1, 2000, func(k, v uint64) bool {
		sum += v
		count++
		return true
	})
	fmt.Printf("scan [1,2000]: %d keys, value sum %d\n", count, sum)
	fmt.Printf("size = %d\n", len(st.Contents()))

	stats := st.Stats()
	fmt.Printf("ops=%d flushes=%d fences=%d (%.2f flushes/op — constant, not per-node)\n",
		stats.Ops, stats.Flushes, stats.Fences, float64(stats.Flushes)/float64(stats.Ops))
}

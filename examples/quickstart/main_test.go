package main

import "testing"

// TestMainRuns smoke-tests the quickstart example end to end.
func TestMainRuns(t *testing.T) {
	main()
}

// durablequeue: a producer/consumer pipeline on the traversal-form durable
// queue, crashed mid-flight and recovered. Demonstrates that the queue's
// persistent core (the node chain and anchor) survives while its auxiliary
// tail hint is recomputed, and compares against Friedman et al.'s
// hand-tuned DurableQueue with its exactly-once result slots.
package main

import (
	"fmt"

	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/queue"
)

func main() {
	mem := pmem.NewTracked()
	q := queue.New(mem, persist.NVTraverse{})
	th := mem.NewThread()

	for v := uint64(1); v <= 100; v++ {
		q.Enqueue(th, v)
	}
	for i := 0; i < 40; i++ {
		q.Dequeue(th)
	}
	fmt.Printf("before crash: %d items queued\n", q.Len(th))

	mem.Crash()
	mem.FinishCrash(0, 7)
	mem.Restart()
	rec := mem.NewThread()
	q.Recover(rec)
	fmt.Printf("after recovery: %d items, head value %d (expected 60 items, head 41)\n",
		q.Len(rec), peek(q, rec))

	// Friedman et al.'s DurableQueue: the per-thread result slot makes the
	// last dequeue recoverable exactly-once.
	dmem := pmem.NewTracked()
	dq := queue.NewDurable(dmem)
	dth := dmem.NewThread()
	for v := uint64(1); v <= 10; v++ {
		dq.Enqueue(dth, v)
	}
	v, _ := dq.Dequeue(dth)
	dmem.Crash()
	dmem.FinishCrash(0, 7)
	dmem.Restart()
	drec := dmem.NewThread()
	dq.Recover(drec)
	fmt.Printf("DurableQueue: dequeued %d before crash; result slot after crash = %d\n",
		v, dq.Returned(drec, dth.ID))
}

func peek(q *queue.Queue, t *pmem.Thread) uint64 {
	c := q.Contents(t)
	if len(c) == 0 {
		return 0
	}
	return c[0]
}

package main

import "testing"

// TestMainRuns smoke-tests the durable-queue crash example end to end.
func TestMainRuns(t *testing.T) {
	main()
}

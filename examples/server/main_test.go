package main

import "testing"

// TestMainRuns smoke-tests the server example end to end.
func TestMainRuns(t *testing.T) {
	main()
}

// Example: serving the durable store over a Unix socket and talking to it
// with the pipelining client. An embedded server over a 4-shard skiplist
// engine handles point ops, a pipelined write burst (one group commit for
// many PUTs), and an ordered range scan — then reports how far the
// group-commit batcher amortized the commit fences.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	st, err := store.Open(store.Config{
		Kind:        core.KindSkiplist,
		Profile:     pmem.ProfileZero,
		Shards:      4,
		SizeHint:    1 << 12,
		MaxSessions: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "nvserver-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	addr := "unix:" + filepath.Join(dir, "nv.sock")

	srv := server.New(st, server.Config{MaxConns: 8})
	ln, err := server.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	cl, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}

	// Point operations, request/response.
	if err := cl.Put(42, 4200); err != nil {
		log.Fatal(err)
	}
	v, ok, err := cl.Get(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET 42 -> %d (found=%v)\n", v, ok)

	// A pipelined burst: 100 PUTs hit the wire together, and the server's
	// group-commit batcher folds their 100 commit fences into a handful of
	// shard-group fences.
	for k := uint64(1); k <= 100; k++ {
		if err := cl.SendPut(k, k*k); err != nil {
			log.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		log.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		if _, err := cl.ReadReply(); err != nil {
			log.Fatal(err)
		}
	}

	// Ordered range scan across the sharded engine (k-way merged).
	keys, vals, err := cl.Scan(10, 20, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SCAN [10,20] -> %d keys", len(keys))
	if len(keys) > 0 {
		fmt.Printf(" (first %d=%d, last %d=%d)",
			keys[0], vals[0], keys[len(keys)-1], vals[len(vals)-1])
	}
	fmt.Println()

	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group commit: %d write ops in %d flushes (%d shard-group fences)\n",
		stats["batch_ops"], stats["batch_flushes"], stats["batch_groups"])

	if err := cl.Quit(); err != nil {
		log.Fatal(err)
	}
	srv.Close()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server shut down cleanly")
}

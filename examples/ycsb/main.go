// ycsb: run YCSB-style workloads A (50% updates), B (5% updates) and C
// (read-only) over every data structure and persistence policy of the
// paper's evaluation, printing a compact comparison table — a miniature of
// Figure 5 on one machine profile.
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	workloads := []struct {
		name    string
		updates int
	}{
		{"YCSB-A", 50},
		{"YCSB-B", 5},
		{"YCSB-C", 0},
	}
	policies := []string{"none", "nvtraverse", "izraelevitz", "logfree"}

	fmt.Println(bench.Header())
	for _, wl := range workloads {
		fmt.Printf("-- %s --\n", wl.name)
		for _, kind := range []core.Kind{core.KindHash, core.KindSkiplist, core.KindNMBST} {
			for _, pol := range policies {
				res, err := bench.Run(bench.Config{
					Kind:      kind,
					Policy:    pol,
					Profile:   pmem.ProfileNVRAM,
					Threads:   4,
					Range:     1 << 16,
					UpdatePct: wl.updates,
					Duration:  80 * time.Millisecond,
				})
				if err != nil {
					panic(err)
				}
				fmt.Println(res.Row())
			}
		}
	}
}

// ycsb: run the YCSB-style workload suite (A: 50/50 read-update, B: 95/5,
// C: read-only, D: read-latest, E: range scans, F: read-modify-write,
// U: atomic in-place RMW; zipf-skewed keys) against a single NVTraverse
// structure and against the sharded durable KV engine at several shard
// counts, then show what read batching does to the fence count. Workload
// E needs a key order, so its rows run on the skiplist while the rest use
// the hash table. Set NVBENCH_DUR to change the per-point measurement
// time (the default keeps the whole run to a few seconds).
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	base := bench.Config{
		Kind:     core.KindHash,
		Policy:   "nvtraverse",
		Profile:  pmem.ProfileNVRAM,
		Threads:  4,
		Range:    1 << 14,
		Duration: 40 * time.Millisecond,
	}

	fmt.Println("YCSB suite: single structure vs sharded engine (hash, nvtraverse)")
	fmt.Println(bench.Header())
	for _, wl := range bench.Workloads() {
		for _, shards := range []int{0, 1, 4, 16} {
			cfg := base
			cfg.Workload = wl.Name
			cfg.Shards = shards
			if wl.ScanPct > 0 {
				cfg.Kind = core.KindSkiplist // scans need an ordered kind
			}
			res, err := bench.Run(cfg)
			if err != nil {
				panic(err)
			}
			fmt.Println(res.Row())
		}
	}

	fmt.Println("\nRead batching on the engine (YCSB-C): one commit fence per shard batch")
	fmt.Println(bench.Header())
	for _, batch := range []int{0, 8, 64} {
		cfg := base
		cfg.Workload = "C"
		cfg.Shards = 8
		cfg.BatchSize = batch
		res, err := bench.Run(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Row())
	}
}

package main

import "testing"

// TestMainRuns smoke-tests the example end to end with tiny measurement
// durations so it stays CI-friendly.
func TestMainRuns(t *testing.T) {
	t.Setenv("NVBENCH_DUR", "3ms")
	main()
}

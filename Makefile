GO ?= go

.PHONY: build test short race fmt vet bench-smoke bench-ci ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short test pass with tiny benchmark durations: what CI runs.
short:
	NVBENCH_DUR=10ms $(GO) test -short ./...

# Race pass over the concurrency-heavy packages only, kept short.
race:
	NVBENCH_DUR=10ms $(GO) test -race -short ./internal/list ./internal/skiplist ./internal/queue ./internal/stack ./internal/shard ./internal/crashtest

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Exercise both CLIs end to end with tiny workloads so they cannot rot.
bench-smoke:
	$(GO) run ./cmd/nvbench -list
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -panel sA -threads 2 -scale 256
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -ycsb A -shards 4 -threads 2 -range 512 -profile zero
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -flushstats -threads 2 -scale 1024
	$(GO) run ./cmd/nvcrash -rounds 2 -ops 150 -workers 2 -keys 64
	$(GO) run ./cmd/nvcrash -kind queue -rounds 2 -ops 150 -workers 2
	$(GO) run ./cmd/nvcrash -kind stack -rounds 2 -ops 150 -workers 2
	$(GO) run ./cmd/nvcrash -shards 4 -batch 4 -rounds 2 -ops 200 -workers 2 -kind hash

# Run the Go benchmarks once (panels + flush accounting smoke).
bench-ci:
	NVBENCH_DUR=5ms $(GO) test -run=NONE -bench=. -benchtime=1x ./internal/bench/...

ci: fmt vet build short race bench-smoke bench-ci

GO ?= go

.PHONY: build test short race fmt vet staticcheck nvlint lint apicheck server-smoke crash-smoke repl-smoke fault-smoke bench-smoke bench-ci bench-gate bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short test pass with tiny benchmark durations: what CI runs.
short:
	NVBENCH_DUR=10ms $(GO) test -short ./...

# Race pass over the concurrency-heavy packages only, kept short. pmem is
# in the list for the striped-model stress tests; epoch for the
# registration high-water mark.
race:
	NVBENCH_DUR=10ms $(GO) test -race -short ./internal/pmem ./internal/epoch ./internal/core ./internal/store ./internal/list ./internal/skiplist ./internal/queue ./internal/stack ./internal/shard ./internal/crashtest ./internal/batcher ./internal/server ./internal/repl

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The container image does not ship
# staticcheck, so the target degrades to a notice locally; the CI job
# installs the pinned version and fails properly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Protocol linter: the four nvcheck rules (traversepure, fencereturn,
# writehook, linelayout) enforce the NVTraverse persistence discipline over
# every package. Self-contained (stdlib only), so it runs anywhere the go
# toolchain does. Violations are suppressed inline only with a justified
# `//nvcheck:ignore <rule> -- <reason>` directive.
nvlint:
	$(GO) run ./cmd/nvlint ./...

# Umbrella for every static check.
lint: fmt vet staticcheck nvlint

# API-compatibility gate: apicompat_test.go pins the v1 facade symbols and
# signatures at compile time — a missing or re-signed symbol fails the
# compile, an apidiff in spirit with no external tooling.
apicheck:
	$(GO) test -run TestV1FacadeSymbols .

# Serve-and-load smoke over a Unix socket: the whole wire stack (listener,
# protocol sniffing, pipelining, shard-affine group commit) runs a few
# thousand ops and must finish with zero errors and a clean shutdown. One
# round per protocol (text, binary) plus an open-loop rate-paced round.
server-smoke:
	$(GO) run ./cmd/nvserver -selftest -conns 4 -pipeline 8 -ops 5000 -range 4096 -shards 4
	$(GO) run ./cmd/nvserver -selftest -bin -conns 4 -pipeline 8 -ops 5000 -range 4096 -shards 4
	$(GO) run ./cmd/nvserver -selftest -bin -rate 20000 -poisson -dur 250ms -conns 2 -range 4096 -shards 4
	$(GO) run ./cmd/nvserver -selftest -kind skiplist -shards 2 -workload E -prefill -conns 2 -pipeline 4 -ops 2000 -range 2048

# SIGKILL-restart recovery smoke: spawn a file-backed nvserver child, kill
# -9 it mid-load, restart it on the same data directory, and fail unless
# the durable-linearizability checker passes with every acknowledged write
# present. A second round SIGTERMs the restarted server (checkpoint path)
# and re-verifies. The third invocation sets a checkpoint threshold and
# enough traffic that the child must checkpoint on its own before the kill:
# the orchestrator fails unless the restart loaded automatic-checkpoint
# bytes AND replayed only a threshold-bounded WAL tail. CRASH_SMOKE_DATA
# pins the data dir (CI points it at a workspace path so the WAL/checkpoint
# files can be uploaded on failure).
CRASH_SMOKE_DATA ?=
crash-smoke:
	$(GO) run ./cmd/nvserver -crashsmoke $(if $(CRASH_SMOKE_DATA),-data $(CRASH_SMOKE_DATA)) \
		-shards 4 -conns 4 -smoke-acks 4000
	$(GO) run ./cmd/nvserver -crashsmoke -kind skiplist -shards 2 -conns 2 -smoke-acks 2000
	$(GO) run ./cmd/nvserver -crashsmoke -shards 4 -conns 4 -smoke-acks 12000 -ckpt-bytes 16384

# Replication failover smoke: a durable primary with -wait 2 and two
# -replica-of children on Unix sockets, pipelined WAIT load, SIGKILL the
# primary mid-stream, PROMOTE one replica over the wire, and fail unless
# the durable-linearizability checker finds every quorum-acknowledged
# write on the promoted replica (the second replica must keep serving
# stale reads and refusing writes). REPL_SMOKE_DATA pins the primary's
# data dir for CI artifact upload on failure.
REPL_SMOKE_DATA ?=
repl-smoke:
	$(GO) run ./cmd/nvserver -replsmoke $(if $(REPL_SMOKE_DATA),-data $(REPL_SMOKE_DATA)) \
		-shards 4 -smoke-acks 2000

# The deterministic disk-fault matrix: every errfs schedule the fault
# tests script — fsync EIO, ENOSPC, short writes, checkpoint faults at
# each pre-commit-point step, mid-log corruption — plus the degraded-mode
# serving paths (batcher refusals, wire-level ERR DEGRADED, STATS) and the
# fault-schedule crash tortures. Seeded schedules, no timing dependence.
fault-smoke:
	$(GO) test -count=1 -run 'TestFault' ./internal/pmem/ ./internal/crashtest/
	$(GO) test -count=1 ./internal/pmem/vfs/
	$(GO) test -count=1 -run 'DegradedOnFsync' ./internal/batcher/
	$(GO) test -count=1 -run 'TestServerDegraded|TestServerIdleTimeout|TestClientTimeout' ./internal/server/

# Exercise both CLIs end to end with tiny workloads so they cannot rot.
# server-smoke rides along so the serving layer cannot rot locally either.
bench-smoke: server-smoke
	$(GO) run ./cmd/nvbench -list
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -panel sA -threads 2 -scale 256
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -ycsb A -shards 4 -threads 2 -range 512 -profile zero
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -ycsb E -kind skiplist -threads 2 -range 2048 -profile zero
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -ycsb U -kind list -shards 2 -threads 2 -range 512 -profile zero
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -flushstats -threads 2 -scale 1024
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -json /tmp/nvbench-smoke.json -label smoke
	$(GO) run ./cmd/nvbench -verifyjson /tmp/nvbench-smoke.json
	$(GO) run ./cmd/nvcrash -rounds 2 -ops 150 -workers 2 -keys 64
	$(GO) run ./cmd/nvcrash -kind queue -rounds 2 -ops 150 -workers 2
	$(GO) run ./cmd/nvcrash -kind stack -rounds 2 -ops 150 -workers 2
	$(GO) run ./cmd/nvcrash -shards 4 -batch 4 -rounds 2 -ops 200 -workers 2 -kind hash

# Run the Go benchmarks once (panels + flush accounting smoke), then the
# YCSB-E panel once end to end: every ordered kind x durable policy,
# single structure + 4-shard engine, real rows or a hard failure.
bench-ci:
	NVBENCH_DUR=5ms $(GO) test -run=NONE -bench=. -benchtime=1x ./internal/bench/...
	NVBENCH_DUR=5ms $(GO) run ./cmd/nvbench -panel yE -threads 2 -scale 256

# Regression gate: capture the baseline suite (with latency percentiles,
# the server rows and the recovery-replay row) and compare against the
# committed BENCH_8.json, failing on a >35% throughput drop on any
# zero-profile panel. CI uploads the capture as the next BENCH_N artifact.
BENCH_GATE_OUT ?= BENCH_9-capture.json
BENCH_GATE_DUR ?= 1s
bench-gate:
	$(GO) run ./cmd/nvbench -dur $(BENCH_GATE_DUR) -json $(BENCH_GATE_OUT) \
		-cmp BENCH_8.json -tolerance 0.35 $(if $(BENCH_LABEL),-label "$(BENCH_LABEL)")
	$(GO) run ./cmd/nvbench -verifyjson $(BENCH_GATE_OUT)

# Run the JSON baseline suite (fast-mode panels, the tracked-mode torture
# throughput proxy, the server rows — text, file-backed, binary, the
# replica read-scaling rows srv-repl-r1/r2/r4 and the WAIT-1 write row,
# with open-loop percentiles — and the recovery-replay row) and write
# BENCH_9.json. Compare against a prior capture with:
# make bench-json BENCH_CMP=path/to/old.json. The committed BENCH_9.json
# was produced at PR 10 with -dur 1s.
BENCH_JSON ?= BENCH_9.json
BENCH_DUR  ?= 500ms
bench-json:
	$(GO) run ./cmd/nvbench -dur $(BENCH_DUR) -json $(BENCH_JSON) \
		$(if $(BENCH_CMP),-cmp $(BENCH_CMP)) $(if $(BENCH_LABEL),-label "$(BENCH_LABEL)")
	$(GO) run ./cmd/nvbench -verifyjson $(BENCH_JSON)

ci: fmt vet build nvlint short race apicheck bench-smoke crash-smoke repl-smoke fault-smoke bench-ci bench-gate

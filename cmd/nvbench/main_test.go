package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestListPanels(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"5a", "6o", "sA", "sB", "sC"} {
		if !strings.Contains(out, id) {
			t.Fatalf("panel %s missing from -list output:\n%s", id, out)
		}
	}
}

func TestRunTinyPanel(t *testing.T) {
	t.Setenv("NVBENCH_DUR", "5ms")
	var sb strings.Builder
	err := run([]string{"-panel", "5a", "-threads", "2", "-scale", "64", "-dur", "5ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nvtraverse") {
		t.Fatalf("panel output incomplete:\n%s", sb.String())
	}
}

func TestRunYCSBEnginePoint(t *testing.T) {
	t.Setenv("NVBENCH_DUR", "5ms")
	var sb strings.Builder
	err := run([]string{"-ycsb", "A", "-shards", "4", "-threads", "2",
		"-range", "512", "-profile", "zero", "-csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ",A,4,") {
		t.Fatalf("csv lacks workload/shard columns:\n%s", sb.String())
	}
}

func TestJSONCaptureCompareVerify(t *testing.T) {
	t.Setenv("NVBENCH_DUR", "5ms")
	dir := t.TempDir()
	base := dir + "/base.json"
	next := dir + "/next.json"
	var sb strings.Builder
	if err := run([]string{"-json", base, "-label", "base"}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verifyjson", base}, &sb); err != nil {
		t.Fatalf("fresh capture fails verification: %v", err)
	}
	sb.Reset()
	if err := run([]string{"-json", next, "-cmp", base, "-label", "next"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "x\n") || !strings.Contains(out, "tracked-4t") {
		t.Fatalf("comparison output lacks speedup rows:\n%s", out)
	}
	sb.Reset()
	if err := run([]string{"-verifyjson", next}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedups") {
		t.Fatalf("verify of compared doc does not report speedups:\n%s", sb.String())
	}
	if err := run([]string{"-verifyjson", dir + "/missing.json"}, &sb); err == nil {
		t.Fatal("verify of missing file succeeded")
	}
}

// TestToleranceGate: comparing against itself passes the gate; comparing
// against an inflated baseline fails it, but still writes the capture.
func TestToleranceGate(t *testing.T) {
	t.Setenv("NVBENCH_DUR", "5ms")
	dir := t.TempDir()
	base := dir + "/base.json"
	var sb strings.Builder
	if err := run([]string{"-json", base, "-noserver"}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-json", dir + "/same.json", "-noserver", "-cmp", base,
		"-tolerance", "0.99"}, &sb); err != nil {
		t.Fatalf("self-comparison failed a 99%% tolerance gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "regression gate: ok") {
		t.Fatalf("gate did not report:\n%s", sb.String())
	}
	// Inflate the baseline's zero-profile rows 1000x: everything now looks
	// like a massive regression.
	doc, err := bench.LoadBenchDoc(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range doc.Rows {
		if doc.Rows[i].Profile == "zero" {
			doc.Rows[i].OpsPerSec *= 1000
		}
	}
	inflated := dir + "/inflated.json"
	if err := doc.WriteFile(inflated); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	capture := dir + "/gated.json"
	if err := run([]string{"-json", capture, "-noserver", "-cmp", inflated,
		"-tolerance", "0.35"}, &sb); err == nil {
		t.Fatalf("1000x regression passed the gate:\n%s", sb.String())
	}
	if err := run([]string{"-verifyjson", capture}, &sb); err != nil {
		t.Fatalf("capture missing after gate failure: %v", err)
	}
}

func TestBadArgs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("no mode selected but run succeeded")
	}
	if err := run([]string{"-panel", "9z"}, &sb); err == nil {
		t.Fatal("unknown panel accepted")
	}
	if err := run([]string{"-ycsb", "Z"}, &sb); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-ycsb", "A", "-profile", "bogus"}, &sb); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

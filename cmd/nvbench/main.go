// Command nvbench regenerates the paper's evaluation figures (§5) on the
// simulated persistent-memory substrate.
//
// Usage:
//
//	nvbench -panel 5a                 # one figure panel
//	nvbench -all                      # every panel (Figure 5 and Figure 6)
//	nvbench -panel 5c -csv            # CSV for plotting
//	nvbench -list                     # list the panels
//	nvbench -scale 4 -threads 16 -dur 500ms -panel 6g
//
// The -scale flag divides the paper's structure sizes (all competitors
// share the substrate, so relative ordering is preserved); -threads caps
// the thread sweeps; -dur sets the measurement time per point.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		panelID = flag.String("panel", "", "figure panel to run (e.g. 5a, 6k)")
		all     = flag.Bool("all", false, "run every panel")
		list    = flag.Bool("list", false, "list available panels")
		csv     = flag.Bool("csv", false, "emit CSV instead of a table")
		scale   = flag.Int("scale", 16, "divide the paper's structure sizes by this factor")
		threads = flag.Int("threads", 8, "cap thread sweeps at this count")
		dur     = flag.Duration("dur", 150*time.Millisecond, "measurement duration per point")
	)
	flag.Parse()

	opts := bench.PanelOptions{SizeScale: *scale, ThreadCap: *threads, Duration: *dur}

	if *list {
		for _, p := range bench.Panels(opts) {
			fmt.Printf("%-3s %s (%d points)\n", p.ID, p.Title, len(p.Configs))
		}
		return
	}

	var panels []bench.Panel
	switch {
	case *all:
		panels = bench.Panels(opts)
	case *panelID != "":
		p, err := bench.PanelByID(opts, *panelID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		panels = []bench.Panel{p}
	default:
		fmt.Fprintln(os.Stderr, "nvbench: need -panel <id>, -all or -list")
		os.Exit(2)
	}

	if *csv {
		fmt.Println(bench.CSVHeader())
	}
	for _, p := range panels {
		if !*csv {
			fmt.Printf("\n== Panel %s: %s ==\n%s\n", p.ID, p.Title, bench.Header())
		}
		for _, cfg := range p.Configs {
			res, err := bench.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "panel %s: %v\n", p.ID, err)
				os.Exit(1)
			}
			if *csv {
				fmt.Println(res.CSV())
			} else {
				fmt.Println(res.Row())
			}
		}
	}
}

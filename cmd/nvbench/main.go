// Command nvbench regenerates the paper's evaluation figures (§5) on the
// simulated persistent-memory substrate, and runs the YCSB suite against
// the sharded durable KV engine.
//
// Usage:
//
//	nvbench -panel 5a                 # one figure panel
//	nvbench -all                      # every panel (Figures 5 and 6 + shard panels)
//	nvbench -panel 5c -csv            # CSV for plotting
//	nvbench -list                     # list the panels
//	nvbench -scale 4 -threads 16 -dur 500ms -panel 6g
//	nvbench -ycsb A -shards 8         # one YCSB point against the engine
//	nvbench -ycsb C -shards 8 -batch 32
//	nvbench -ycsb E -kind skiplist    # range scans (ordered kinds only)
//	nvbench -ycsb U -kind list        # atomic in-place RMW workload
//	nvbench -panel yE                 # YCSB-E panel: ordered kinds x policies,
//	                                  # single structure + 4-shard engine
//	nvbench -flushstats               # flushes/op per structure, NVTraverse
//	                                  # vs flush-everything, YCSB A/B/C
//
// The -scale flag divides the paper's structure sizes (all competitors
// share the substrate, so relative ordering is preserved); -threads caps
// the thread sweeps; -dur sets the measurement time per point (the
// NVBENCH_DUR environment variable overrides every duration). For -ycsb
// runs, -kind/-policy/-range/-threads/-shards/-batch pick the target.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nvbench", flag.ContinueOnError)
	var (
		panelID = fs.String("panel", "", "figure panel to run (e.g. 5a, 6k, sA)")
		all     = fs.Bool("all", false, "run every panel")
		list    = fs.Bool("list", false, "list available panels")
		csv     = fs.Bool("csv", false, "emit CSV instead of a table")
		scale   = fs.Int("scale", 16, "divide the paper's structure sizes by this factor")
		threads = fs.Int("threads", 8, "cap thread sweeps (or thread count for -ycsb)")
		dur     = fs.Duration("dur", 150*time.Millisecond, "measurement duration per point")

		jsonOut    = fs.String("json", "", "run the baseline suite and write a BenchDoc JSON to this path")
		jsonCmp    = fs.String("cmp", "", "baseline BenchDoc to compare against (embeds rows + speedups into -json output)")
		jsonLabel  = fs.String("label", "", "label recorded in the -json document")
		jsonVerify = fs.String("verifyjson", "", "parse a BenchDoc JSON and assert every row has nonzero ops/s")
		tolerance  = fs.Float64("tolerance", 0, "with -cmp: fail when a zero-profile panel regressed beyond this fraction (0.35 = fail below 0.65x; 0 disables the gate)")
		noServer   = fs.Bool("noserver", false, "with -json: skip the server (wire protocol) baseline row")

		flushes = fs.Bool("flushstats", false, "run the flush-accounting ablation (panels fA/fB/fC) and summarize flushes/op")
		ycsb    = fs.String("ycsb", "", "run one YCSB workload (A, B, C, D, E, F, U) instead of a panel")
		shards  = fs.Int("shards", 0, "shard count for -ycsb (0 = single structure)")
		batch   = fs.Int("batch", 0, "read batch size for -ycsb engine runs")
		kind    = fs.String("kind", "hash", "structure kind for -ycsb")
		policy  = fs.String("policy", "nvtraverse", "persistence policy for -ycsb")
		keys    = fs.Uint64("range", 1<<16, "key range for -ycsb")
		profile = fs.String("profile", "nvram", "latency profile for -ycsb: nvram, dram, zero")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *scale < 1 || *threads < 1 {
		return fmt.Errorf("-scale and -threads must be >= 1")
	}

	opts := bench.PanelOptions{SizeScale: *scale, ThreadCap: *threads, Duration: *dur}

	if *jsonVerify != "" {
		doc, err := bench.LoadBenchDoc(*jsonVerify)
		if err != nil {
			return err
		}
		if err := doc.Verify(); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: ok (%d rows", *jsonVerify, len(doc.Rows))
		if len(doc.Speedups) > 0 {
			fmt.Fprintf(out, ", %d speedups", len(doc.Speedups))
		}
		fmt.Fprintln(out, ")")
		return nil
	}

	if *jsonOut != "" {
		rows, err := bench.RunBaseline(*dur, func(line string) { fmt.Fprintln(out, line) })
		if err != nil {
			return err
		}
		if !*noServer {
			// The wire-protocol rows: serve-and-load over a Unix socket, so
			// the capture carries network-path throughput and latency
			// percentiles next to the in-process panels. The -file variant
			// runs the same workload on the durable file backend (the delta
			// is the serving-path cost of real durability); the -bin variant
			// drives the binary frame protocol (the delta is what text
			// parsing costs). Throughput comes from a closed-loop capacity
			// pass, the percentiles from an open-loop pass at 70% of it.
			for _, sb := range []struct {
				panel string
				run   func(time.Duration) (bench.Result, error)
			}{
				{"srv-unix4", server.Bench},
				{"srv-unix4-file", server.BenchFile},
				{"srv-unix4-bin", server.BenchBin},
				// Read scaling over replicas: one primary, N caught-up
				// replicas, the same per-replica offered read rate — the
				// rows' throughput must grow with N. srv-wait1 prices the
				// WAIT-1 replication round trip into the write path.
				{"srv-repl-r1", server.BenchRepl(1)},
				{"srv-repl-r2", server.BenchRepl(2)},
				{"srv-repl-r4", server.BenchRepl(4)},
				{"srv-wait1", server.BenchWait1},
			} {
				res, err := sb.run(*dur)
				if err != nil {
					return fmt.Errorf("server baseline row %s: %w", sb.panel, err)
				}
				row := bench.RowFromResult(sb.panel, res)
				rows = append(rows, row)
				fmt.Fprintf(out, "%-12s %10.0f ops/s  flush/op %.2f  elide/op %.2f  fence/op %.2f  open-loop @%.0f/s p50 %.1fµs  p99 %.1fµs\n",
					row.Panel, row.OpsPerSec, row.FlushPerOp, row.ElidePerOp, row.FencePerOp, row.OfferedOpsPerSec, row.P50us, row.P99us)
			}
		}
		doc := bench.NewBenchDoc(*jsonLabel, rows)
		if *jsonCmp != "" {
			base, err := bench.LoadBenchDoc(*jsonCmp)
			if err != nil {
				return err
			}
			doc.Compare(base)
			for _, s := range doc.Speedups {
				fmt.Fprintf(out, "%-12s %10.0f -> %10.0f ops/s  %.2fx\n",
					s.Panel, s.BaseOpsPerSec, s.NewOpsPerSec, s.Speedup)
			}
			if warn := doc.MachineMismatch(); warn != "" {
				fmt.Fprintf(out, "warning: %s\n", warn)
			}
		}
		if err := doc.WriteFile(*jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		// Gate after writing: the capture exists as an artifact even when a
		// regression fails the run.
		if *jsonCmp != "" && *tolerance > 0 {
			if err := doc.GateRegressions(*tolerance); err != nil {
				return err
			}
			fmt.Fprintf(out, "regression gate: ok (zero-profile panels within %.0f%% of %s)\n",
				*tolerance*100, *jsonCmp)
		}
		return nil
	}

	if *list {
		for _, p := range bench.Panels(opts) {
			fmt.Fprintf(out, "%-3s %s (%d points)\n", p.ID, p.Title, len(p.Configs))
		}
		return nil
	}

	if *ycsb != "" {
		prof, err := profileByName(*profile)
		if err != nil {
			return err
		}
		cfg := bench.Config{
			Kind: core.Kind(*kind), Policy: *policy, Profile: prof,
			Threads: *threads, Range: *keys, Duration: *dur,
			Workload: *ycsb, Shards: *shards, BatchSize: *batch,
		}
		res, err := bench.Run(cfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprintln(out, bench.CSVHeader())
			fmt.Fprintln(out, res.CSV())
		} else {
			fmt.Fprintln(out, bench.Header())
			fmt.Fprintln(out, res.Row())
		}
		return nil
	}

	if *flushes {
		for _, p := range bench.FlushStatPanels(opts) {
			fmt.Fprintf(out, "\n== Panel %s: %s ==\n%s\n", p.ID, p.Title, bench.Header())
			var rs []bench.Result
			for _, cfg := range p.Configs {
				res, err := bench.Run(cfg)
				if err != nil {
					return fmt.Errorf("panel %s: %w", p.ID, err)
				}
				rs = append(rs, res)
				fmt.Fprintln(out, res.Row())
			}
			fmt.Fprintln(out)
			for _, line := range bench.FlushStatSummary(rs) {
				fmt.Fprintln(out, line)
			}
		}
		return nil
	}

	var panels []bench.Panel
	switch {
	case *all:
		panels = bench.Panels(opts)
	case *panelID != "":
		p, err := bench.PanelByID(opts, *panelID)
		if err != nil {
			return err
		}
		panels = []bench.Panel{p}
	default:
		return fmt.Errorf("need -panel <id>, -all, -list or -ycsb <wl>")
	}

	if *csv {
		fmt.Fprintln(out, bench.CSVHeader())
	}
	for _, p := range panels {
		if !*csv {
			fmt.Fprintf(out, "\n== Panel %s: %s ==\n%s\n", p.ID, p.Title, bench.Header())
		}
		for _, cfg := range p.Configs {
			res, err := bench.Run(cfg)
			if err != nil {
				return fmt.Errorf("panel %s: %w", p.ID, err)
			}
			if *csv {
				fmt.Fprintln(out, res.CSV())
			} else {
				fmt.Fprintln(out, res.Row())
			}
		}
	}
	return nil
}

func profileByName(name string) (pmem.Profile, error) {
	switch name {
	case "nvram":
		return pmem.ProfileNVRAM, nil
	case "dram":
		return pmem.ProfileDRAM, nil
	case "zero":
		return pmem.ProfileZero, nil
	}
	return pmem.Profile{}, fmt.Errorf("unknown profile %q", name)
}

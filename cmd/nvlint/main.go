// Command nvlint statically checks the repository against the NVTraverse
// persistence discipline: the four nvcheck rules (traversepure,
// fencereturn, writehook, linelayout — see internal/analysis/nvcheck) run
// over every package of the module and any violation fails the build. The
// protocol that used to live in comments and be policed after the fact by
// crash-torture runs is enforced at the call site, the moment it is
// written.
//
// Usage:
//
//	nvlint [-rules rule1,rule2] [-v] [packages]
//
// Packages default to ./... relative to the enclosing module. Deliberate
// violations are suppressed inline with a justified directive:
//
//	//nvcheck:ignore <rule> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/nvcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("nvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "all", "comma-separated rule names to run (traversepure,fencereturn,writehook,linelayout)")
	verbose := fs.Bool("v", false, "print per-package progress and the suppression count")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := nvcheck.ByName(strings.Split(*rules, ",")...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "nvlint:", err)
		return 2
	}
	root, err := nvcheck.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "nvlint:", err)
		return 2
	}

	res, err := nvcheck.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "nvlint:", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stdout, "nvlint: %d packages, %d rules\n", len(res.Packages), len(analyzers))
	}

	out := nvcheck.Run(res.Packages, analyzers)
	if *verbose && out.Suppressed > 0 {
		fmt.Fprintf(stdout, "nvlint: %d finding(s) suppressed by nvcheck:ignore directives\n", out.Suppressed)
	}
	if len(out.Diagnostics) > 0 {
		fmt.Fprint(stdout, nvcheck.Format(out.Diagnostics))
		fmt.Fprintf(stderr, "nvlint: %d violation(s)\n", len(out.Diagnostics))
		return 1
	}
	if *verbose {
		fmt.Fprintf(stdout, "nvlint: clean\n")
	}
	return 0
}

package main

import (
	"os"
	"testing"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCleanRepo runs the real linter over the module it lives in: the tree
// must stay protocol-clean, and the exit code contract (0 = clean) holds.
func TestCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	null := devNull(t)
	if code := run([]string{"./..."}, null, null); code != 0 {
		t.Fatalf("nvlint over the repository exited %d, want 0", code)
	}
}

func TestBadRuleName(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-rules", "nosuchrule", "./..."}, null, null); code != 2 {
		t.Fatalf("nvlint -rules nosuchrule exited %d, want 2 (usage error)", code)
	}
}

func TestBadFlag(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-nosuchflag"}, null, null); code != 2 {
		t.Fatalf("nvlint -nosuchflag exited %d, want 2 (usage error)", code)
	}
}

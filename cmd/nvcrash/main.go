// Command nvcrash tortures a structure/policy combination with simulated
// crashes and checks durable linearizability after each recovery (the
// property Theorem 4.2 proves for NVTraverse structures).
//
// Usage:
//
//	nvcrash -kind list -policy nvtraverse -rounds 20
//	nvcrash -kind skiplist -policy none        # watch the checker catch it
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
)

func main() {
	var (
		kind    = flag.String("kind", "list", "structure: list, hash, ellenbst, nmbst, skiplist")
		policy  = flag.String("policy", "nvtraverse", "persistence policy: none, nvtraverse, izraelevitz, logfree")
		rounds  = flag.Int("rounds", 10, "crash rounds")
		workers = flag.Int("workers", 4, "concurrent workers")
		keys    = flag.Uint64("keys", 128, "key range")
		ops     = flag.Uint64("ops", 500, "operations before the crash")
		evict   = flag.Float64("evict", 0.25, "probability an unpersisted line survives (cache eviction)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	pol, ok := persist.ByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "nvcrash: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	k := core.Kind(*kind)
	factory := func(mem *pmem.Memory) crashtest.Set {
		s, err := core.NewSet(k, mem, pol, core.Params{SizeHint: int(*keys)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvcrash:", err)
			os.Exit(2)
		}
		return s
	}

	bad := 0
	for r := 0; r < *rounds; r++ {
		res := crashtest.Run(crashtest.Options{
			Workers:        *workers,
			Keys:           *keys,
			PrefillEvery:   2,
			OpsBeforeCrash: *ops,
			UpdateRatio:    80,
			EvictProb:      *evict,
			Seed:           *seed + int64(r),
		}, factory)
		status := "OK"
		if len(res.Violations) > 0 {
			status = "VIOLATED"
			bad++
		}
		fmt.Printf("round %2d: %-8s completed=%d in-flight=%d survivors=%d violations=%d\n",
			r, status, res.Completed, res.InFlight, res.Survivors, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
	if bad > 0 {
		fmt.Printf("\n%d/%d rounds violated durable linearizability\n", bad, *rounds)
		os.Exit(1)
	}
	fmt.Printf("\nall %d rounds durably linearizable\n", *rounds)
}

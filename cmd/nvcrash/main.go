// Command nvcrash tortures a structure/policy combination with simulated
// crashes and checks durable linearizability after each recovery (the
// property Theorem 4.2 proves for NVTraverse structures). With -shards it
// tortures the whole sharded KV engine instead: every shard's memory
// crashes at once (mid-batch included), recovery runs in parallel, and the
// checker verifies every shard's surviving state. On ordered kinds the
// checker additionally cross-validates the post-recovery full-range scan
// (the engine's merged scan for -shards) against the recovered contents.
//
// The crash model is cache-line granular: whole 64-byte lines persist or
// vanish atomically, and the eviction lottery evicts whole lines.
//
// Usage:
//
//	nvcrash -kind list -policy nvtraverse -rounds 20
//	nvcrash -kind skiplist -policy none        # watch the checker catch it
//	nvcrash -kind queue                        # FIFO order torture
//	nvcrash -kind stack -policy izraelevitz    # LIFO order torture
//	nvcrash -kind dqueue                       # hand-tuned DurableQueue
//	nvcrash -shards 8 -batch 8 -rounds 10      # engine torture, batched ops
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/shard"
	"repro/internal/stack"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvcrash:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nvcrash", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "list", "structure: list, hash, ellenbst, nmbst, skiplist, queue, stack, dqueue")
		policy  = fs.String("policy", "nvtraverse", "persistence policy: none, nvtraverse, izraelevitz, logfree")
		rounds  = fs.Int("rounds", 10, "crash rounds")
		workers = fs.Int("workers", 4, "concurrent workers")
		keys    = fs.Uint64("keys", 128, "key range")
		ops     = fs.Uint64("ops", 500, "operations before the crash")
		evict   = fs.Float64("evict", 0.25, "probability an unpersisted line survives (cache eviction)")
		seed    = fs.Int64("seed", 1, "base RNG seed")
		shards  = fs.Int("shards", 0, "torture the sharded engine with this many shards (0 = single structure)")
		batch   = fs.Int("batch", 0, "ops per session batch in engine torture (0/1 = single ops)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	pol, ok := persist.ByName(*policy)
	if !ok {
		return fmt.Errorf("unknown policy %q", *policy)
	}
	k := core.Kind(*kind)
	ordered := *kind == "queue" || *kind == "stack" || *kind == "dqueue"
	valid := ordered
	for _, known := range core.Kinds() {
		valid = valid || known == k
	}
	if !valid {
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if ordered && *shards > 0 {
		return fmt.Errorf("-shards tortures the KV engine; %q is not a set structure", *kind)
	}
	// Reject flags a kind would silently ignore: a user running the
	// documented "-policy none" ablation against dqueue (whose flushes are
	// hand-placed, not policy-driven) must not read an OK verdict as "none
	// is durable here", and -keys only parameterizes the set structures.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *kind == "dqueue" && set["policy"] {
		return fmt.Errorf("-policy does not apply to dqueue: its flushes are hand-placed (PPoPP'18), not policy-driven")
	}
	if ordered && set["keys"] {
		return fmt.Errorf("-keys does not apply to %q: ordered containers have no key range", *kind)
	}

	round := func(r int) crashtest.Result {
		if ordered {
			opts := crashtest.OrderOptions{
				Workers:        *workers,
				OpsBeforeCrash: *ops,
				Prefill:        16,
				EvictProb:      *evict,
				Seed:           *seed + int64(r),
			}
			switch *kind {
			case "queue":
				return crashtest.RunQueue(opts, func(mem *pmem.Memory) crashtest.QueueTarget {
					return queue.New(mem, pol)
				})
			case "dqueue":
				return crashtest.RunQueue(opts, func(mem *pmem.Memory) crashtest.QueueTarget {
					return queue.NewDurable(mem)
				})
			default:
				return crashtest.RunStack(opts, func(mem *pmem.Memory) crashtest.StackTarget {
					return stack.New(mem, pol)
				})
			}
		}
		if *shards > 0 {
			return shard.Torture(shard.TortureOptions{
				Shards:         *shards,
				Kind:           k,
				Policy:         pol,
				Workers:        *workers,
				Keys:           *keys,
				PrefillEvery:   2,
				OpsBeforeCrash: *ops,
				BatchSize:      *batch,
				UpdateRatio:    80,
				EvictProb:      *evict,
				Seed:           *seed + int64(r),
			})
		}
		return crashtest.Run(crashtest.Options{
			Workers:        *workers,
			Keys:           *keys,
			PrefillEvery:   2,
			OpsBeforeCrash: *ops,
			UpdateRatio:    80,
			EvictProb:      *evict,
			Seed:           *seed + int64(r),
		}, func(mem *pmem.Memory) crashtest.Set {
			s, err := core.NewSet(k, mem, pol, core.Params{SizeHint: int(*keys)})
			if err != nil {
				panic(err)
			}
			return s
		})
	}

	bad := 0
	for r := 0; r < *rounds; r++ {
		res := round(r)
		status := "OK"
		if len(res.Violations) > 0 {
			status = "VIOLATED"
			bad++
		}
		fmt.Fprintf(out, "round %2d: %-8s completed=%d in-flight=%d survivors=%d violations=%d\n",
			r, status, res.Completed, res.InFlight, res.Survivors, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(out, "    %s\n", v)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d/%d rounds violated durable linearizability", bad, *rounds)
	}
	fmt.Fprintf(out, "\nall %d rounds durably linearizable\n", *rounds)
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestSingleStructureRounds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-kind", "list", "-rounds", "2", "-ops", "150",
		"-workers", "2", "-keys", "64"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "durably linearizable") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestEngineTortureRounds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-shards", "4", "-batch", "4", "-rounds", "2",
		"-ops", "200", "-workers", "2", "-kind", "hash"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all 2 rounds durably linearizable") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestNonDurablePolicyFails(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-policy", "none", "-kind", "hash", "-rounds", "2",
		"-ops", "300", "-evict", "0"}, &sb)
	if err == nil {
		t.Fatalf("policy none passed the checker:\n%s", sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-policy", "bogus"}, &sb); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-kind", "bogus"}, &sb); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestSingleStructureRounds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-kind", "list", "-rounds", "2", "-ops", "150",
		"-workers", "2", "-keys", "64"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "durably linearizable") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestEngineTortureRounds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-shards", "4", "-batch", "4", "-rounds", "2",
		"-ops", "200", "-workers", "2", "-kind", "hash"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all 2 rounds durably linearizable") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestOrderedTortureRounds(t *testing.T) {
	for _, kind := range []string{"queue", "stack", "dqueue"} {
		var sb strings.Builder
		err := run([]string{"-kind", kind, "-rounds", "2", "-ops", "150",
			"-workers", "2"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v\n%s", kind, err, sb.String())
		}
		if !strings.Contains(sb.String(), "all 2 rounds durably linearizable") {
			t.Fatalf("%s: unexpected output:\n%s", kind, sb.String())
		}
	}
}

func TestOrderedKindRejectsShards(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "queue", "-shards", "4"}, &sb); err == nil {
		t.Fatal("queue with -shards accepted")
	}
}

func TestOrderedKindRejectsInapplicableFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "dqueue", "-policy", "none"}, &sb); err == nil {
		t.Fatal("dqueue with explicit -policy accepted (flushes are hand-placed)")
	}
	if err := run([]string{"-kind", "stack", "-keys", "64"}, &sb); err == nil {
		t.Fatal("stack with -keys accepted")
	}
}

func TestNonDurablePolicyFails(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-policy", "none", "-kind", "hash", "-rounds", "2",
		"-ops", "300", "-evict", "0"}, &sb)
	if err == nil {
		t.Fatalf("policy none passed the checker:\n%s", sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-policy", "bogus"}, &sb); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-kind", "bogus"}, &sb); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

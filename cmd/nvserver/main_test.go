package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSelfTest runs the full serve+load self-test in-process.
func TestSelfTest(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-selftest", "-conns", "2", "-pipeline", "4",
		"-ops", "2000", "-range", "1024", "-shards", "4"}, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "selftest: ok") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

// TestSelfTestJSON writes the load result as a BenchDoc.
func TestSelfTestJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var sb strings.Builder
	err := run([]string{"-selftest", "-conns", "2", "-pipeline", "4",
		"-ops", "1000", "-range", "512", "-json", path, "-label", "test"}, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"srv-load"`, `"p99_us"`, `"label": "test"`} {
		if !strings.Contains(string(buf), want) {
			t.Fatalf("doc missing %s:\n%s", want, buf)
		}
	}
}

// TestServeAndLoad exercises the two-process shape in one process: serve
// mode with a time limit, load mode against it.
func TestServeAndLoad(t *testing.T) {
	addr := "unix:" + filepath.Join(t.TempDir(), "nv.sock")
	var serveOut strings.Builder
	var wg sync.WaitGroup
	wg.Add(1)
	serveErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		serveErr <- run([]string{"-listen", addr, "-serve-for", "2s",
			"-kind", "skiplist", "-shards", "2", "-size", "2048"}, &serveOut)
	}()
	// Wait for the socket to appear.
	sockPath := strings.TrimPrefix(addr, "unix:")
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := os.Stat(sockPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server socket never appeared\n%s", serveOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var loadOut strings.Builder
	if err := run([]string{"-load", "-connect", addr, "-conns", "2",
		"-pipeline", "4", "-ops", "1500", "-workload", "E", "-range", "1024",
		"-prefill"}, &loadOut); err != nil {
		t.Fatalf("load: %v\n%s", err, loadOut.String())
	}
	if !strings.Contains(loadOut.String(), "0 errors") {
		t.Fatalf("load output:\n%s", loadOut.String())
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
	if !strings.Contains(serveOut.String(), "shut down cleanly") {
		t.Fatalf("serve output:\n%s", serveOut.String())
	}
}

// TestBadFlags pins flag validation.
func TestBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-selftest", "-policy", "bogus"}, &sb); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-selftest", "-policy", "none", "-ops", "10"}, &sb); err == nil {
		t.Fatal("non-durable policy accepted for serving")
	}
	if err := run([]string{"-selftest", "-profile", "bogus"}, &sb); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run([]string{"-selftest", "-load"}, &sb); err == nil {
		t.Fatal("-selftest -load accepted")
	}
	if err := run([]string{"-selftest", "-kind", "bogus", "-ops", "10"}, &sb); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

package main

// The replication-failover smoke: the out-of-process proof that a write
// acknowledged under WAIT survives losing the primary. The orchestrator
// spawns a durable primary with -wait 2 and two replicas attached over
// -replica-of, drives pipelined inserts until enough are acknowledged —
// each acknowledgement meaning both replicas confirmed the fence group —
// then SIGKILLs the primary mid-load, promotes one replica over the wire,
// and runs the durable-linearizability checker against it: every
// acknowledged insert must be present with its exact value. WAIT-failed
// and unread replies count as in flight (durable on the primary, maybe
// not on the survivors — the contract makes no promise for them). The
// second replica must keep serving stale reads and refusing writes.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

type replSmokeConfig struct {
	kind   string
	policy string
	shards int
	size   int
	dir    string // primary's data directory ("" = private temp dir)
	acks   uint64 // acknowledged (= quorum-confirmed) inserts before the kill
}

func runReplSmoke(out io.Writer, cfg replSmokeConfig) error {
	if cfg.kind == "" {
		cfg.kind = "hash"
	}
	if cfg.policy == "" {
		cfg.policy = "nvtraverse"
	}
	if cfg.acks == 0 {
		cfg.acks = 2000
	}
	ownDir := cfg.dir == ""
	if ownDir {
		d, err := os.MkdirTemp("", "nvrepl-data")
		if err != nil {
			return err
		}
		cfg.dir = d
	}
	sockDir, err := os.MkdirTemp("", "nvrepl-sock")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sockDir)

	err = replSmokeRun(out, cfg, sockDir)
	if err != nil {
		fmt.Fprintf(out, "replsmoke: FAILED; primary data dir preserved at %s\n", cfg.dir)
		return err
	}
	if ownDir {
		os.RemoveAll(cfg.dir)
	}
	fmt.Fprintln(out, "replsmoke: ok (failover lost no acknowledged write; survivor kept serving)")
	return nil
}

func replSmokeRun(out io.Writer, cfg replSmokeConfig, sockDir string) error {
	psock := filepath.Join(sockDir, "p.sock")
	r1sock := filepath.Join(sockDir, "r1.sock")
	r2sock := filepath.Join(sockDir, "r2.sock")
	common := []string{
		"-kind", cfg.kind, "-policy", cfg.policy, "-profile", "zero",
		"-shards", strconv.Itoa(cfg.shards), "-size", strconv.Itoa(cfg.size),
		"-max-conns", "16",
	}

	// Quorum 2 of 2: an acknowledged write is on BOTH replicas, so
	// promoting either one preserves it. (With -wait 1 the ack could have
	// come from the replica we do not promote.)
	prim, err := startChildServer(psock, append([]string{
		"-data", cfg.dir, "-wait", "2", "-wait-timeout", "10s",
	}, common...))
	if err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	kill := func(s *smokeServer) {
		s.cmd.Process.Kill()
		s.cmd.Wait()
	}
	r1, err := startChildServer(r1sock, append([]string{"-replica-of", "unix:" + psock}, common...))
	if err != nil {
		kill(prim)
		return fmt.Errorf("replica 1: %w", err)
	}
	defer kill(r1)
	r2, err := startChildServer(r2sock, append([]string{"-replica-of", "unix:" + psock}, common...))
	if err != nil {
		kill(prim)
		return fmt.Errorf("replica 2: %w", err)
	}
	defer kill(r2)

	if err := waitForReplicas(psock, 2); err != nil {
		kill(prim)
		return err
	}
	fmt.Fprintln(out, "replsmoke: primary sees 2 replicas, loading under WAIT 2")

	records, err := replLoad(cfg, psock, prim)
	if err != nil {
		kill(prim)
		return err
	}
	var acked, inflight int
	for _, rs := range records {
		for _, r := range rs {
			if r.acked {
				acked++
			} else {
				inflight++
			}
		}
	}
	fmt.Fprintf(out, "replsmoke: killed primary with %d quorum-acked inserts, %d in flight\n", acked, inflight)

	// Failover: promote replica 1 over the wire.
	r1cl, err := server.Dial("unix:" + r1sock)
	if err != nil {
		return fmt.Errorf("dial replica 1: %w", err)
	}
	if err := r1cl.Promote(); err != nil {
		r1cl.Close()
		return fmt.Errorf("promote: %w", err)
	}
	// The promoted server accepts writes.
	if err := r1cl.Put(0xfa110ced, 1); err != nil {
		r1cl.Close()
		return fmt.Errorf("write after promote: %w", err)
	}
	r1cl.Close()

	// Every acknowledged insert must have survived onto the promoted
	// replica (smokeVerify shares the crashtest checker with crashsmoke).
	if err := smokeVerify(r1sock, records); err != nil {
		return fmt.Errorf("after failover: %w", err)
	}
	fmt.Fprintf(out, "replsmoke: failover verified (%d acked keys on the promoted replica)\n", acked)

	// The second replica lost its primary but keeps serving stale reads —
	// and keeps refusing writes, typed.
	r2cl, err := server.Dial("unix:" + r2sock)
	if err != nil {
		return fmt.Errorf("dial replica 2: %w", err)
	}
	defer r2cl.Close()
	if _, _, err := r2cl.Get(1); err != nil {
		return fmt.Errorf("survivor read: %w", err)
	}
	if err := r2cl.Put(1, 1); !errors.Is(err, server.ErrReplica) {
		return fmt.Errorf("survivor write: got %v, want ErrReplica", err)
	}
	return nil
}

// waitForReplicas polls STATS until the primary reports n attached
// replicas.
func waitForReplicas(sock string, n uint64) error {
	cl, err := server.Dial("unix:" + sock)
	if err != nil {
		return err
	}
	defer cl.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := cl.Stats()
		if err == nil && st["repl_replicas"] >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("primary never saw %d replicas (stats %v, err %v)", n, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// replLoad drives pipelined inserts from 4 connections (disjoint key
// partitions, unique key per attempt) until cfg.acks clean
// acknowledgements landed, then SIGKILLs the primary. Unlike smokeLoad,
// an ERR reply (a WAIT timeout) leaves the record in flight: the write is
// durable on the primary but unconfirmed, and the failover contract makes
// no promise for it.
func replLoad(cfg replSmokeConfig, sock string, prim *smokeServer) ([][]smokeRecord, error) {
	const conns, window = 4, 16
	var total atomic.Uint64
	records := make([][]smokeRecord, conns)
	errs := make([]error, conns)
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial("unix:" + sock)
			if err != nil {
				errs[c] = err
				return
			}
			defer cl.Close()
			base := (uint64(c) + 1) << 32
			seq := uint64(0)
			rng := uint64(0x9e3779b97f4a7c15 * uint64(c+1))
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			sent := 0
			for {
				for sent < window {
					seq++
					k, v := base+seq, next()|1
					if err := cl.SendInsert(k, v); err != nil {
						return // connection died: the kill
					}
					records[c] = append(records[c], smokeRecord{key: k, value: v})
					sent++
				}
				if err := cl.Flush(); err != nil {
					return
				}
				rep, err := cl.ReadReply()
				if err != nil {
					return // mid-kill: everything unread stays in flight
				}
				idx := len(records[c]) - sent
				if !rep.IsErr() {
					records[c][idx].acked = true
					records[c][idx].ok = rep.Int == 1
					total.Add(1)
				}
				sent--
				select {
				case <-killed:
					return
				default:
				}
			}
		}(c)
	}
	for total.Load() < cfg.acks {
		if prim.cmd.ProcessState != nil {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := prim.cmd.Process.Kill(); err != nil {
		return nil, err
	}
	close(killed)
	prim.cmd.Wait()
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("conn %d: %w", c, err)
		}
	}
	if total.Load() < cfg.acks {
		return nil, fmt.Errorf("only %d inserts quorum-acknowledged before the primary died (wanted %d):\n%s",
			total.Load(), cfg.acks, prim.out.String())
	}
	return records, nil
}

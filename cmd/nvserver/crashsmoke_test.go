package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the nvserver executable: the
// crashsmoke orchestrator spawns os.Executable(), which under `go test` is
// this binary, so NVSERVER_REEXEC=1 routes the child invocation straight
// into run() instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("NVSERVER_REEXEC") == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "nvserver:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCrashSmokeSIGKILL is the in-tree version of `make crash-smoke`: a
// real child process, a real SIGKILL, a real restart on the same data
// directory, and the durable-linearizability checker over the wire.
func TestCrashSmokeSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes; skipped in -short")
	}
	for _, tc := range []struct {
		name string
		cfg  smokeConfig
	}{
		{"hash-4shard", smokeConfig{kind: "hash", shards: 4, size: 1 << 14, conns: 4, acks: 2000}},
		{"skiplist-2shard", smokeConfig{kind: "skiplist", shards: 2, size: 1 << 14, conns: 2, acks: 1000}},
		{"hash-bare", smokeConfig{kind: "hash", shards: 0, size: 1 << 14, conns: 2, acks: 1000}},
		// The live-checkpoint round: enough acked traffic that the child's
		// automatic checkpointing must have run before the SIGKILL, and the
		// replayed WAL tail must be bounded by the threshold (asserted by
		// the orchestrator when ckptBytes is set).
		{"hash-4shard-ckpt", smokeConfig{kind: "hash", shards: 4, size: 1 << 14, conns: 4, acks: 12000, ckptBytes: 16 << 10}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.dir = t.TempDir()
			var out strings.Builder
			if err := runCrashSmoke(&out, cfg); err != nil {
				t.Fatalf("%v\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "crashsmoke: ok") {
				t.Fatalf("no ok line:\n%s", out.String())
			}
		})
	}
}

package main

import (
	"strings"
	"testing"
)

// TestReplSmokeFailover is the in-tree version of `make repl-smoke`: a
// real primary and two real replica processes on Unix sockets, WAIT-2
// load, a real SIGKILL of the primary, a PROMOTE over the wire, and the
// durable-linearizability checker against the promoted replica. Children
// re-enter run() through the NVSERVER_REEXEC hook in TestMain.
func TestReplSmokeFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes; skipped in -short")
	}
	cfg := replSmokeConfig{
		kind: "hash", shards: 4, size: 1 << 14, acks: 1500, dir: t.TempDir(),
	}
	var out strings.Builder
	if err := runReplSmoke(&out, cfg); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replsmoke: ok") {
		t.Fatalf("no ok line:\n%s", out.String())
	}
}

// TestReplicaFlagValidation pins the flag-combination guards around
// -replica-of.
func TestReplicaFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-replica-of", "unix:/x", "-wait", "1"},
		{"-replica-of", "unix:/x", "-load"},
		{"-replica-of", "unix:/x", "-selftest"},
		{"-replica-of", "unix:/x", "-crashsmoke"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

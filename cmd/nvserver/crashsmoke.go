package main

// The SIGKILL-restart smoke: the out-of-process proof that -data means
// durable. The orchestrator spawns a real nvserver child on a data
// directory, drives acknowledged inserts over the wire from several
// connections, kills the child with SIGKILL mid-load (no flush, no
// goodbye — the kernel reclaims the process), restarts it on the same
// directory, and runs the durable-linearizability checker over the
// recorded histories: every acknowledged insert must be present with its
// exact value; the handful of in-flight requests may land either way. A
// second round SIGTERMs the restarted server (exercising the
// checkpoint-on-shutdown path) and re-verifies after another restart.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/crashtest"
	"repro/internal/pmem"
	"repro/internal/server"
)

type smokeConfig struct {
	dir    string // data directory ("" = private temp dir, removed on success)
	kind   string
	policy string
	shards int
	size   int
	sync   bool
	conns  int
	acks   uint64 // acknowledged inserts before the kill
	// ckptBytes > 0 passes -ckpt-bytes to the child and asserts, after the
	// SIGKILL restart, that an automatic checkpoint ran mid-traffic and the
	// replayed WAL tail stayed bounded by the threshold.
	ckptBytes int64
}

// smokeRecord is one insert attempt of the load phase.
type smokeRecord struct {
	key, value uint64
	acked      bool
	ok         bool
}

// smokeServer is one child nvserver process.
type smokeServer struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func startSmokeServer(cfg smokeConfig, sock string) (*smokeServer, error) {
	args := []string{
		"-data", cfg.dir,
		"-kind", cfg.kind,
		"-policy", cfg.policy,
		"-profile", "zero",
		"-shards", strconv.Itoa(cfg.shards),
		"-size", strconv.Itoa(cfg.size),
		"-max-conns", strconv.Itoa(cfg.conns + 8),
	}
	if cfg.sync {
		args = append(args, "-sync")
	}
	if cfg.ckptBytes > 0 {
		args = append(args, "-ckpt-bytes", strconv.FormatInt(cfg.ckptBytes, 10))
	}
	return startChildServer(sock, args)
}

// startChildServer spawns one nvserver child listening on sock with the
// given extra flags and waits until it answers a ping.
func startChildServer(sock string, extra []string) (*smokeServer, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	args := append([]string{"-listen", "unix:" + sock}, extra...)
	s := &smokeServer{cmd: exec.Command(exe, args...), out: &bytes.Buffer{}}
	s.cmd.Stdout = s.out
	s.cmd.Stderr = s.out
	// NVSERVER_REEXEC routes the `go test` binary into run() (see
	// TestMain); the real nvserver binary ignores it.
	s.cmd.Env = append(os.Environ(), "NVSERVER_REEXEC=1")
	if err := s.cmd.Start(); err != nil {
		return nil, err
	}
	// Wait until the server answers a ping.
	deadline := time.Now().Add(15 * time.Second)
	for {
		cl, err := server.Dial("unix:" + sock)
		if err == nil {
			err = cl.Ping()
			cl.Close()
			if err == nil {
				return s, nil
			}
		}
		if time.Now().After(deadline) {
			s.cmd.Process.Kill()
			s.cmd.Wait()
			return nil, fmt.Errorf("server never came up:\n%s", s.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func runCrashSmoke(out io.Writer, cfg smokeConfig) error {
	if cfg.kind == "" {
		cfg.kind = "hash"
	}
	if cfg.policy == "" {
		cfg.policy = "nvtraverse"
	}
	if cfg.conns <= 0 {
		cfg.conns = 4
	}
	if cfg.acks == 0 {
		cfg.acks = 4000
	}
	ownDir := cfg.dir == ""
	if ownDir {
		d, err := os.MkdirTemp("", "nvsmoke")
		if err != nil {
			return err
		}
		cfg.dir = d
	}
	// The socket lives outside the data dir: the data dir must hold only
	// WAL/checkpoint state (it is uploaded as a CI artifact on failure).
	sockDir, err := os.MkdirTemp("", "nvsmoke-sock")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sockDir)
	sock := filepath.Join(sockDir, "nv.sock")

	err = crashSmokeRounds(out, cfg, sock)
	if err != nil {
		fmt.Fprintf(out, "crashsmoke: FAILED; data dir preserved at %s\n", cfg.dir)
		return err
	}
	if ownDir {
		os.RemoveAll(cfg.dir)
	}
	fmt.Fprintln(out, "crashsmoke: ok (SIGKILL recovery and clean-shutdown recovery both verified)")
	return nil
}

func crashSmokeRounds(out io.Writer, cfg smokeConfig, sock string) error {
	// Round 1: load, SIGKILL mid-stream.
	srv, err := startSmokeServer(cfg, sock)
	if err != nil {
		return err
	}
	records, err := smokeLoad(cfg, sock, srv)
	if err != nil {
		srv.cmd.Process.Kill()
		srv.cmd.Wait()
		return err
	}
	var acked, inflight int
	for _, rs := range records {
		for _, r := range rs {
			if r.acked {
				acked++
			} else {
				inflight++
			}
		}
	}
	fmt.Fprintf(out, "crashsmoke: killed server with %d acked inserts, %d in flight\n", acked, inflight)

	// Round 2: restart on the same directory; the replay must surface
	// every acknowledged write.
	srv2, err := startSmokeServer(cfg, sock)
	if err != nil {
		return fmt.Errorf("restart after SIGKILL: %w", err)
	}
	if err := smokeVerify(sock, records); err != nil {
		srv2.cmd.Process.Kill()
		srv2.cmd.Wait()
		return fmt.Errorf("after SIGKILL restart: %w", err)
	}
	fmt.Fprintf(out, "crashsmoke: SIGKILL recovery checked (%d keys)\n", acked)

	// With a checkpoint threshold set, the SIGKILLed server must have been
	// checkpointing on its own: the kill skipped the clean-shutdown
	// checkpoint, so any checkpoint bytes the restart loaded were taken
	// automatically under live traffic, and the WAL tail it replayed must
	// be bounded by the threshold (plus per-shard in-flight slack) rather
	// than growing with the whole run.
	if cfg.ckptBytes > 0 {
		walBytes, ckptBytes, ok := parseReplayLine(srv2.out.String())
		if !ok {
			srv2.cmd.Process.Kill()
			srv2.cmd.Wait()
			return fmt.Errorf("no replay accounting in restarted server output:\n%s", srv2.out.String())
		}
		if ckptBytes == 0 {
			srv2.cmd.Process.Kill()
			srv2.cmd.Wait()
			return fmt.Errorf("no automatic checkpoint ran before SIGKILL (threshold %d bytes, %d acked inserts): recovery replayed the full %d-byte WAL",
				cfg.ckptBytes, acked, walBytes)
		}
		const slack = 32 << 10 // checkpoint-in-progress overshoot per shard
		if limit := uint64(cfg.shards) * uint64(cfg.ckptBytes+slack); walBytes > limit {
			srv2.cmd.Process.Kill()
			srv2.cmd.Wait()
			return fmt.Errorf("replayed WAL tail %d bytes exceeds the checkpoint bound %d (%d shards × (%d threshold + %d slack))",
				walBytes, limit, cfg.shards, cfg.ckptBytes, slack)
		}
		fmt.Fprintf(out, "crashsmoke: live checkpointing verified (replayed %d-byte WAL tail + %d checkpoint bytes, threshold %d)\n",
			walBytes, ckptBytes, cfg.ckptBytes)
	}

	// Round 3: clean shutdown (SIGTERM checkpoints and closes), restart,
	// re-verify — the checkpoint must carry the same state as the log.
	if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv2.cmd.Wait(); err != nil {
		return fmt.Errorf("clean shutdown exited dirty: %v\n%s", err, srv2.out.String())
	}
	srv3, err := startSmokeServer(cfg, sock)
	if err != nil {
		return fmt.Errorf("restart after clean shutdown: %w", err)
	}
	verifyErr := smokeVerify(sock, records)
	srv3.cmd.Process.Signal(syscall.SIGTERM)
	if err := srv3.cmd.Wait(); err != nil && verifyErr == nil {
		verifyErr = fmt.Errorf("final shutdown exited dirty: %v\n%s", err, srv3.out.String())
	}
	if verifyErr != nil {
		return fmt.Errorf("after checkpoint restart: %w", verifyErr)
	}
	return nil
}

// parseReplayLine extracts the WAL and checkpoint byte counts from a
// restarted child's replay line ("replayed N records / N lines / N WAL
// bytes (+N checkpoint bytes) in ...").
func parseReplayLine(out string) (walBytes, ckptBytes uint64, ok bool) {
	i := strings.Index(out, "replayed ")
	if i < 0 {
		return 0, 0, false
	}
	var records, lines uint64
	n, err := fmt.Sscanf(out[i:], "replayed %d records / %d lines / %d WAL bytes (+%d checkpoint bytes)",
		&records, &lines, &walBytes, &ckptBytes)
	return walBytes, ckptBytes, err == nil && n == 4
}

// smokeLoad drives pipelined inserts from cfg.conns connections (disjoint
// key partitions, unique key per attempt) until cfg.acks acknowledgements
// landed, then SIGKILLs the server and returns every connection's attempt
// log. Records past the last-read reply stay unacked — they were in flight
// at the kill, whatever the server managed to do with them.
func smokeLoad(cfg smokeConfig, sock string, srv *smokeServer) ([][]smokeRecord, error) {
	const window = 16
	var total atomic.Uint64
	records := make([][]smokeRecord, cfg.conns)
	errs := make([]error, cfg.conns)
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial("unix:" + sock)
			if err != nil {
				errs[c] = err
				return
			}
			defer cl.Close()
			base := (uint64(c) + 1) << 32
			seq := uint64(0)
			rng := uint64(0x9e3779b97f4a7c15 * uint64(c+1))
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			sent := 0 // replies not yet read
			for {
				for sent < window {
					seq++
					k, v := base+seq, next()|1
					if err := cl.SendInsert(k, v); err != nil {
						return // connection died: the kill
					}
					records[c] = append(records[c], smokeRecord{key: k, value: v})
					sent++
				}
				if err := cl.Flush(); err != nil {
					return
				}
				rep, err := cl.ReadReply()
				if err != nil {
					return // mid-kill: everything unread stays in flight
				}
				idx := len(records[c]) - sent
				records[c][idx].acked = true
				records[c][idx].ok = !rep.IsErr() && rep.Int == 1
				sent--
				total.Add(1)
				select {
				case <-killed:
					return
				default:
				}
			}
		}(c)
	}
	for total.Load() < cfg.acks {
		if srv.cmd.ProcessState != nil {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := srv.cmd.Process.Kill(); err != nil {
		return nil, err
	}
	close(killed)
	srv.cmd.Wait()
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("conn %d: %w", c, err)
		}
	}
	if total.Load() < cfg.acks {
		return nil, fmt.Errorf("only %d inserts acknowledged before the server died (wanted %d):\n%s",
			total.Load(), cfg.acks, srv.out.String())
	}
	return records, nil
}

// remoteView adapts a wire connection to the crashtest.Set surface the
// checker consumes. Contents probes every attempted key with pipelined
// GETs — the server started empty and only attempted keys can exist, so
// the probe set is exhaustive. The *pmem.Thread parameters are unused
// (the structure lives in another process).
type remoteView struct {
	cl        *server.Client
	attempted []uint64
	err       error
}

func (r *remoteView) fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *remoteView) Find(_ *pmem.Thread, k uint64) (uint64, bool) {
	v, ok, err := r.cl.Get(k)
	r.fail(err)
	return v, ok
}

func (r *remoteView) Insert(_ *pmem.Thread, k, v uint64) bool {
	ok, err := r.cl.Insert(k, v)
	r.fail(err)
	return ok
}

func (r *remoteView) Delete(_ *pmem.Thread, k uint64) bool {
	ok, err := r.cl.Del(k)
	r.fail(err)
	return ok
}

func (r *remoteView) Recover(*pmem.Thread) {}

func (r *remoteView) Contents(*pmem.Thread) []uint64 {
	const window = 64
	var present []uint64
	for i := 0; i < len(r.attempted); i += window {
		end := i + window
		if end > len(r.attempted) {
			end = len(r.attempted)
		}
		for _, k := range r.attempted[i:end] {
			if err := r.cl.SendGet(k); err != nil {
				r.fail(err)
				return present
			}
		}
		if err := r.cl.Flush(); err != nil {
			r.fail(err)
			return present
		}
		for _, k := range r.attempted[i:end] {
			rep, err := r.cl.ReadReply()
			if err != nil {
				r.fail(err)
				return present
			}
			if !rep.IsErr() && rep.Found {
				present = append(present, k)
			}
		}
	}
	return present
}

// smokeVerify replays the recorded histories through the
// durable-linearizability checker against the restarted server.
func smokeVerify(sock string, records [][]smokeRecord) error {
	cl, err := server.Dial("unix:" + sock)
	if err != nil {
		return err
	}
	defer cl.Close()
	view := &remoteView{cl: cl}
	hists := make([]*crashtest.History, len(records))
	for c, rs := range records {
		h := &crashtest.History{}
		for _, r := range rs {
			view.attempted = append(view.attempted, r.key)
			if r.acked {
				h.Completed(crashtest.OpInsert, r.key, r.value, r.ok)
			} else {
				h.InFlight(crashtest.OpInsert, r.key, r.value)
			}
		}
		hists[c] = h
	}
	violations, present := crashtest.Check(view, nil, hists, crashtest.CheckConfig{CheckValues: true})
	if view.err != nil {
		return fmt.Errorf("wire error during check: %w", view.err)
	}
	if len(violations) > 0 {
		max := len(violations)
		if max > 10 {
			max = 10
		}
		msg := ""
		for _, v := range violations[:max] {
			msg += fmt.Sprintf("\n  %s", v)
		}
		return fmt.Errorf("%d durable-linearizability violations (%d keys present):%s",
			len(violations), present, msg)
	}
	return nil
}

// Command nvserver serves the durable key-value store over two wire
// protocols on the same listener — pipelined RESP-lite text and a
// length-prefixed binary frame protocol (negotiated by the connection's
// first byte) — with shard-affine workers group-committing one fence per
// shard group. It doubles as the load generator for those protocols.
//
// Serve:
//
//	nvserver -listen unix:/tmp/nv.sock -shards 8
//	nvserver -listen tcp:127.0.0.1:7420 -kind skiplist -profile nvram
//	nvserver -listen unix:/tmp/nv.sock -data /var/lib/nv -ckpt-bytes 4194304
//
// Load (against a running server; -bin drives the binary protocol, -rate
// switches to open-loop arrivals with coordinated-omission-free latency):
//
//	nvserver -load -connect unix:/tmp/nv.sock -conns 8 -pipeline 32 -dur 5s
//	nvserver -load -connect tcp:127.0.0.1:7420 -workload C -ops 100000
//	nvserver -load -connect unix:/tmp/nv.sock -bin -rate 200000 -poisson
//
// Self-test (serve + load in one process over a temp Unix socket; exits
// nonzero on any protocol error — the CI server-smoke gate):
//
//	nvserver -selftest -conns 4 -pipeline 8 -ops 5000
//
// The -json flag writes the load result as a BenchDoc row (same schema as
// nvbench -json), so server captures land in the same document format as
// the in-process panels.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/batcher"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvserver:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nvserver", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "unix:/tmp/nvserver.sock", "serve address: unix:/path or tcp:host:port")
		load     = fs.Bool("load", false, "run the load generator instead of serving")
		selftest = fs.Bool("selftest", false, "serve and load in one process over a temp unix socket")
		connect  = fs.String("connect", "unix:/tmp/nvserver.sock", "server address for -load")
		serveFor = fs.Duration("serve-for", 0, "stop serving after this long (0 = until SIGINT/SIGTERM)")

		kind     = fs.String("kind", "hash", "structure kind (hash, list, skiplist, ellenbst, nmbst)")
		policy   = fs.String("policy", "nvtraverse", "persistence policy")
		profile  = fs.String("profile", "zero", "latency profile: nvram, dram, zero")
		shards   = fs.Int("shards", 4, "shard count (0 = bare structure)")
		size     = fs.Int("size", 1<<16, "expected key-range size hint")
		maxConns = fs.Int("max-conns", 64, "maximum concurrent connections")
		dataDir  = fs.String("data", "", "durable data directory (WAL + checkpoints; empty = in-memory only)")
		syncWAL  = fs.Bool("sync", false, "fsync the WAL at every commit fence (needs -data)")
		ckptB    = fs.Int64("ckpt-bytes", 0, "take an automatic checkpoint when a shard's WAL reaches this many bytes (0 = only on clean shutdown; needs -data)")

		crashsmoke = fs.Bool("crashsmoke", false, "SIGKILL-restart smoke: spawn a -data server, kill it mid-load, restart, check every acked write")
		smokeAcks  = fs.Uint64("smoke-acks", 4000, "crashsmoke/replsmoke: acknowledged writes before the kill")
		replsmoke  = fs.Bool("replsmoke", false, "replication failover smoke: primary + 2 replicas, WAIT load, SIGKILL the primary, promote, check every acked write")

		replicaOf = fs.String("replica-of", "", "serve as a read-only replica of this primary (unix:/path or tcp:host:port)")
		waitK     = fs.Int("wait", 0, "write quorum: acknowledge a write only after this many replicas confirmed it (0 = never wait)")
		waitTO    = fs.Duration("wait-timeout", time.Second, "fail WAIT-gated writes after this long without quorum")

		maxBatch = fs.Int("maxbatch", 64, "group-commit: flush at this many pending writes")
		maxDelay = fs.Duration("maxdelay", 50*time.Microsecond, "group-commit: flush after the oldest write waited this long")
		idleTO   = fs.Duration("idle-timeout", 5*time.Minute, "close connections idle for this long (0 = never)")

		conns    = fs.Int("conns", 4, "load: concurrent connections")
		pipeline = fs.Int("pipeline", 16, "load: requests in flight per connection")
		ops      = fs.Uint64("ops", 0, "load: total operation budget (0 = run -dur)")
		dur      = fs.Duration("dur", time.Second, "load: duration when -ops is 0")
		workload = fs.String("workload", "A", "load: YCSB workload (A, B, C, D, E, F, U)")
		keys     = fs.Uint64("range", 1<<14, "load: key range")
		theta    = fs.Float64("theta", 0, "load: Zipf skew override (0 = workload default)")
		prefill  = fs.Bool("prefill", false, "load: insert every other key before measuring")
		rate     = fs.Float64("rate", 0, "load: open-loop offered rate in ops/sec across all connections (0 = closed loop)")
		poisson  = fs.Bool("poisson", false, "load: Poisson interarrival times (with -rate)")
		binProto = fs.Bool("bin", false, "load: drive the binary frame protocol instead of text")
		jsonOut  = fs.String("json", "", "load: write the result as a BenchDoc JSON row to this path")
		label    = fs.String("label", "", "load: label recorded in the -json document")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	loadCfg := server.LoadConfig{
		Conns: *conns, Pipeline: *pipeline, Ops: *ops,
		Duration: bench.EffectiveDuration(*dur), Workload: *workload,
		Range: *keys, Theta: *theta, Prefill: *prefill,
		Rate: *rate, Poisson: *poisson, Binary: *binProto,
	}

	if *syncWAL && *dataDir == "" && !*crashsmoke {
		return fmt.Errorf("-sync needs -data")
	}
	if *ckptB > 0 && *dataDir == "" && !*crashsmoke {
		return fmt.Errorf("-ckpt-bytes needs -data")
	}

	switch {
	case *selftest && *load:
		return fmt.Errorf("-selftest and -load are mutually exclusive")
	case *replicaOf != "" && (*waitK > 0 || *load || *selftest || *crashsmoke):
		return fmt.Errorf("-replica-of serves; it is incompatible with -wait, -load, -selftest and -crashsmoke")
	case *replsmoke:
		return runReplSmoke(out, replSmokeConfig{
			kind: *kind, policy: *policy, shards: *shards, size: *size,
			dir: *dataDir, acks: *smokeAcks,
		})
	case *crashsmoke:
		return runCrashSmoke(out, smokeConfig{
			dir: *dataDir, kind: *kind, policy: *policy, shards: *shards,
			size: *size, sync: *syncWAL, conns: *conns, acks: *smokeAcks,
			ckptBytes: *ckptB,
		})
	case *selftest:
		return runSelfTest(out, *kind, *policy, *profile, *shards, *size, *maxConns,
			batcher.Config{MaxBatch: *maxBatch, MaxDelay: *maxDelay}, loadCfg, *jsonOut, *label)
	case *load:
		loadCfg.Addr = *connect
		res, err := server.RunLoad(loadCfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res)
		if res.Errors > 0 {
			return fmt.Errorf("%d protocol errors", res.Errors)
		}
		return writeLoadDoc(*jsonOut, *label, loadCfg, res, out)
	default:
		return runServe(out, *listen, *serveFor, *kind, *policy, *profile, *shards, *size,
			*maxConns, *dataDir, *syncWAL, *ckptB, *idleTO,
			batcher.Config{MaxBatch: *maxBatch, MaxDelay: *maxDelay},
			*replicaOf, *waitK, *waitTO)
	}
}

// openStore builds the store behind the server. With a data directory the
// open replays any existing WAL/checkpoint, so a restarted server resumes
// exactly the acknowledged state of its predecessor. The session budget
// covers the connections plus the shard-affine pool workers (one per
// shard) and the admin session.
func openStore(kind, policy, profile string, shards, size, maxConns int, dataDir string, syncWAL bool, ckptBytes int64) (store.Store, error) {
	pol, ok := persist.ByName(policy)
	if !ok {
		return nil, fmt.Errorf("unknown policy %q", policy)
	}
	if !pol.Durable() {
		return nil, fmt.Errorf("policy %q is not durable; the server acknowledges writes as durable", policy)
	}
	prof, err := profileByName(profile)
	if err != nil {
		return nil, err
	}
	workers := shards
	if workers < 1 {
		workers = 1
	}
	return store.Open(store.Config{
		Kind:        core.Kind(kind),
		Policy:      pol,
		Profile:     prof,
		Shards:      shards,
		SizeHint:    size,
		MaxSessions: maxConns + workers + 4,
		Dir:         dataDir,
		SyncFence:   syncWAL,
		CkptBytes:   ckptBytes,
	})
}

func runServe(out io.Writer, listen string, serveFor time.Duration,
	kind, policy, profile string, shards, size, maxConns int,
	dataDir string, syncWAL bool, ckptBytes int64, idleTO time.Duration, bcfg batcher.Config,
	replicaOf string, waitK int, waitTO time.Duration) error {
	st, err := openStore(kind, policy, profile, shards, size, maxConns, dataDir, syncWAL, ckptBytes)
	if err != nil {
		return err
	}
	srv := server.New(st, server.Config{
		MaxConns: maxConns, Batch: bcfg, IdleTimeout: idleTO,
		WaitReplicas: waitK, WaitTimeout: waitTO,
	})
	if replicaOf != "" {
		// A durable replica keeps its stream position next to the WAL so a
		// restart resumes tailing instead of re-copying the snapshot.
		wm := ""
		if dataDir != "" {
			wm = filepath.Join(dataDir, "repl.watermark")
		}
		if err := srv.StartReplica(replicaOf, wm); err != nil {
			st.Close()
			return fmt.Errorf("replica attach: %w", err)
		}
	}
	ln, err := server.Listen(listen)
	if err != nil {
		return err
	}
	role := ""
	switch {
	case replicaOf != "":
		role = fmt.Sprintf(", replica of %s", replicaOf)
	case waitK > 0:
		role = fmt.Sprintf(", WAIT quorum %d", waitK)
	}
	fmt.Fprintf(out, "nvserver: serving %s/%d-shard (%s, %s) on %s%s\n",
		kind, shards, policy, profile, listen, role)
	if st.Durable() {
		rs := st.ReplayStats()
		fmt.Fprintf(out, "nvserver: data dir %s: replayed %d records / %d lines / %d WAL bytes (+%d checkpoint bytes) in %s%s\n",
			dataDir, rs.Records, rs.Lines, rs.Bytes, rs.CheckpointBytes, rs.Elapsed,
			map[bool]string{true: ", torn tail truncated", false: ""}[rs.Truncated])
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var after <-chan time.Time // nil (blocks forever) unless a duration was set
	if serveFor > 0 {
		after = time.After(serveFor)
	}
	select {
	case <-after:
	case <-stop:
	case err := <-done:
		return err
	}
	srv.Close()
	if err := <-done; err != nil {
		return err
	}
	// A run that degraded must exit nonzero even though the process kept
	// serving reads: every write since the latch was refused, and only a
	// restart + recovery (replaying the pre-damage log) clears the state.
	if err := srv.DegradedErr(); err != nil {
		st.Close()
		return fmt.Errorf("degraded: %w", err)
	}
	// A failed automatic checkpoint never lost data — the old generation
	// stayed live — but it means the WAL stopped being bounded, which only
	// the operator can judge; surface it as the run's error.
	if err := srv.CheckpointErr(); err != nil {
		return fmt.Errorf("automatic checkpoint: %w", err)
	}
	// Clean shutdown of a durable store: checkpoint (so the next open
	// replays a snapshot, not the whole log) and close the files.
	if st.Durable() {
		if err := st.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint on shutdown: %w", err)
		}
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Fprintln(out, "nvserver: shut down cleanly")
	return nil
}

// runSelfTest serves on a private Unix socket and immediately drives it
// with the load generator: the zero-to-working smoke of the whole wire
// stack. Any protocol error fails the run.
func runSelfTest(out io.Writer, kind, policy, profile string, shards, size, maxConns int,
	bcfg batcher.Config, loadCfg server.LoadConfig, jsonOut, label string) error {
	st, err := openStore(kind, policy, profile, shards, size, maxConns, "", false, 0)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "nvserver-selftest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addr := "unix:" + filepath.Join(dir, "nv.sock")
	srv := server.New(st, server.Config{MaxConns: maxConns, Batch: bcfg})
	ln, err := server.Listen(addr)
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	loadCfg.Addr = addr
	if loadCfg.Ops == 0 && loadCfg.Duration <= 0 {
		loadCfg.Ops = 5000
	}
	res, err := server.RunLoad(loadCfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	srv.Close()
	if err := <-done; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if res.Errors > 0 {
		return fmt.Errorf("selftest: %d protocol errors", res.Errors)
	}
	if res.Ops == 0 {
		return fmt.Errorf("selftest: no operations completed")
	}
	fmt.Fprintln(out, "selftest: ok (clean shutdown, zero errors)")
	return writeLoadDoc(jsonOut, label, loadCfg, res, out)
}

// writeLoadDoc lands a load result in the BenchDoc schema (nvbench -json
// compatible) under the "srv-load" panel.
func writeLoadDoc(path, label string, cfg server.LoadConfig, res server.LoadResult, out io.Writer) error {
	if path == "" {
		return nil
	}
	row := bench.RowFromResult("srv-load", bench.Result{
		Config: bench.Config{
			Kind: core.Kind("wire"), Policy: "server", Profile: pmem.Profile{Name: "-"},
			Threads: cfg.Conns, Range: cfg.Range, Workload: cfg.Workload,
		},
		Ops:     res.Ops,
		Mops:    res.OpsPerSec / 1e6,
		Elapsed: res.Elapsed,
		Lat:     res.Lat,
		Offered: res.Offered,
	})
	doc := bench.NewBenchDoc(label, []bench.JSONRow{row})
	if err := doc.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

func profileByName(name string) (pmem.Profile, error) {
	switch name {
	case "nvram":
		return pmem.ProfileNVRAM, nil
	case "dram":
		return pmem.ProfileDRAM, nil
	case "zero":
		return pmem.ProfileZero, nil
	}
	return pmem.Profile{}, fmt.Errorf("unknown profile %q", name)
}

package nvtraverse

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
)

func TestFacadeSetLifecycle(t *testing.T) {
	for _, kind := range []core.Kind{List, HashMap, EllenBST, NMBST, Skiplist} {
		mem := NewMemory(NVRAM)
		s, err := NewSetSized(kind, mem, PolicyNVTraverse, 128)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		th := mem.NewThread()
		if !s.Insert(th, 7, 70) {
			t.Fatalf("%s: insert failed", kind)
		}
		if v, ok := s.Find(th, 7); !ok || v != 70 {
			t.Fatalf("%s: Find = %d,%v", kind, v, ok)
		}
		if !s.Delete(th, 7) {
			t.Fatalf("%s: delete failed", kind)
		}
	}
}

func TestFacadeQueue(t *testing.T) {
	mem := NewMemory(DRAM)
	q := NewQueue(mem, PolicyNVTraverse)
	th := mem.NewThread()
	q.Enqueue(th, 1)
	q.Enqueue(th, 2)
	if v, ok := q.Dequeue(th); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
}

func TestFacadeCrashRoundTrip(t *testing.T) {
	mem := pmem.NewTracked()
	s, err := NewSet(Skiplist, mem, PolicyNVTraverse)
	if err != nil {
		t.Fatal(err)
	}
	th := mem.NewThread()
	for k := uint64(1); k <= 64; k++ {
		s.Insert(th, k, k)
	}
	mem.Crash()
	mem.FinishCrash(0, 3)
	mem.Restart()
	rec := mem.NewThread()
	s.Recover(rec)
	for k := uint64(1); k <= 64; k++ {
		if _, ok := s.Find(rec, k); !ok {
			t.Fatalf("key %d lost across crash", k)
		}
	}
}

func TestFacadeEngine(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Shards: 4, Kind: HashMap, Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession()
	for k := uint64(1); k <= 128; k++ {
		s.Put(k, k*3)
	}
	res := s.Apply([]Op{
		{Kind: OpGet, Key: 64},
		{Kind: OpDelete, Key: 64},
		{Kind: OpInsert, Key: 1000, Value: 1},
	}, nil)
	if !res[0].OK || res[0].Value != 192 || !res[1].OK || !res[2].OK {
		t.Fatalf("batch results wrong: %+v", res)
	}
	eng.Crash()
	eng.FinishCrash(0, 11)
	eng.Restart()
	rec := eng.NewSession()
	eng.Recover(rec)
	for k := uint64(1); k <= 128; k++ {
		if k == 64 {
			continue
		}
		if v, ok := rec.Get(k); !ok || v != k*3 {
			t.Fatalf("key %d lost across engine crash: %d,%v", k, v, ok)
		}
	}
	if _, ok := rec.Get(64); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, ok := rec.Get(1000); !ok || v != 1 {
		t.Fatal("acknowledged batched insert lost across crash")
	}
}

func TestFacadePolicies(t *testing.T) {
	if PolicyNone.Durable() || !PolicyNVTraverse.Durable() ||
		!PolicyIzraelevitz.Durable() || !PolicyLogFree.Durable() {
		t.Fatalf("policy durability flags wrong")
	}
}

package nvtraverse

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
)

func TestFacadeSetLifecycle(t *testing.T) {
	for _, kind := range []core.Kind{List, HashMap, EllenBST, NMBST, Skiplist} {
		mem := NewMemory(NVRAM)
		s, err := NewSetSized(kind, mem, PolicyNVTraverse, 128)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		th := mem.NewThread()
		if !s.Insert(th, 7, 70) {
			t.Fatalf("%s: insert failed", kind)
		}
		if v, ok := s.Find(th, 7); !ok || v != 70 {
			t.Fatalf("%s: Find = %d,%v", kind, v, ok)
		}
		if !s.Delete(th, 7) {
			t.Fatalf("%s: delete failed", kind)
		}
	}
}

func TestFacadeQueue(t *testing.T) {
	mem := NewMemory(DRAM)
	q := NewQueue(mem, PolicyNVTraverse)
	th := mem.NewThread()
	q.Enqueue(th, 1)
	q.Enqueue(th, 2)
	if v, ok := q.Dequeue(th); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
}

func TestFacadeCrashRoundTrip(t *testing.T) {
	mem := pmem.NewTracked()
	s, err := NewSet(Skiplist, mem, PolicyNVTraverse)
	if err != nil {
		t.Fatal(err)
	}
	th := mem.NewThread()
	for k := uint64(1); k <= 64; k++ {
		s.Insert(th, k, k)
	}
	mem.Crash()
	mem.FinishCrash(0, 3)
	mem.Restart()
	rec := mem.NewThread()
	s.Recover(rec)
	for k := uint64(1); k <= 64; k++ {
		if _, ok := s.Find(rec, k); !ok {
			t.Fatalf("key %d lost across crash", k)
		}
	}
}

func TestFacadePolicies(t *testing.T) {
	if PolicyNone.Durable() || !PolicyNVTraverse.Durable() ||
		!PolicyIzraelevitz.Durable() || !PolicyLogFree.Durable() {
		t.Fatalf("policy durability flags wrong")
	}
}

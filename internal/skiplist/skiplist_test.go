package skiplist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newSkip(pol persist.Policy) (*List, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	l := New(mem, pol)
	return l, mem.NewThread()
}

func TestBasicOps(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			l, th := newSkip(pol)
			if _, ok := l.Find(th, 10); ok {
				t.Fatalf("empty skiplist finds 10")
			}
			if !l.Insert(th, 10, 100) || l.Insert(th, 10, 101) {
				t.Fatalf("insert semantics broken")
			}
			if v, ok := l.Find(th, 10); !ok || v != 100 {
				t.Fatalf("Find(10) = %d,%v", v, ok)
			}
			if !l.Delete(th, 10) || l.Delete(th, 10) {
				t.Fatalf("delete semantics broken")
			}
			if _, ok := l.Find(th, 10); ok {
				t.Fatalf("deleted key found")
			}
		})
	}
}

func TestManyKeysSorted(t *testing.T) {
	l, th := newSkip(persist.NVTraverse{})
	rng := rand.New(rand.NewSource(11))
	keys := rng.Perm(2000)
	for _, k := range keys {
		if !l.Insert(th, uint64(k)+1, uint64(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	got := l.Contents(th)
	if len(got) != 2000 {
		t.Fatalf("size = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("unsorted at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if err := l.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			l, th := newSkip(pol)
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(300)) + 1
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64()
					_, exp := oracle[k]
					if l.Insert(th, k, v) == exp {
						t.Fatalf("op %d: Insert(%d) disagreed", i, k)
					}
					if !exp {
						oracle[k] = v
					}
				case 1:
					_, exp := oracle[k]
					if l.Delete(th, k) != exp {
						t.Fatalf("op %d: Delete(%d) disagreed", i, k)
					}
					delete(oracle, k)
				default:
					ev, exp := oracle[k]
					gv, ok := l.Find(th, k)
					if ok != exp || (ok && gv != ev) {
						t.Fatalf("op %d: Find(%d) disagreed", i, k)
					}
				}
			}
			if err := l.Validate(th); err != nil {
				t.Fatal(err)
			}
			if got := l.Contents(th); len(got) != len(oracle) {
				t.Fatalf("size %d, oracle %d", len(got), len(oracle))
			}
		})
	}
}

func TestQuickOracle(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		l, th := newSkip(persist.NVTraverse{})
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key%83) + 1
			switch o.Kind % 3 {
			case 0:
				if l.Insert(th, k, k) == oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if l.Delete(th, k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if _, ok := l.Find(th, k); ok != oracle[k] {
					return false
				}
			}
		}
		return l.Validate(th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, pol := range []persist.Policy{persist.None{}, persist.NVTraverse{}, persist.LinkAndPersist{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
			l := New(mem, pol)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				th := mem.NewThread()
				wg.Add(1)
				go func(th *pmem.Thread) {
					defer wg.Done()
					for j := 0; j < 4000; j++ {
						k := th.Rand()%256 + 1
						switch th.Rand() % 3 {
						case 0:
							l.Insert(th, k, k)
						case 1:
							l.Delete(th, k)
						default:
							l.Find(th, k)
						}
					}
				}(th)
			}
			wg.Wait()
			th := mem.NewThread()
			if err := l.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	l := New(mem, persist.NVTraverse{})
	const threads = 6
	var wg sync.WaitGroup
	fail := make(chan string, threads)
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		base := uint64(i*10000 + 1)
		wg.Add(1)
		go func(th *pmem.Thread, base uint64) {
			defer wg.Done()
			for k := base; k < base+300; k++ {
				if !l.Insert(th, k, k) {
					fail <- "insert failed"
					return
				}
			}
			for k := base; k < base+300; k += 2 {
				if !l.Delete(th, k) {
					fail <- "delete failed"
					return
				}
			}
			for k := base; k < base+300; k++ {
				_, ok := l.Find(th, k)
				if want := (k-base)%2 == 1; ok != want {
					fail <- "find wrong"
					return
				}
			}
		}(th, base)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	th := mem.NewThread()
	if err := l.Validate(th); err != nil {
		t.Fatal(err)
	}
	if got := len(l.Contents(th)); got != threads*150 {
		t.Fatalf("size %d, want %d", got, threads*150)
	}
}

func TestOnlyLevelZeroFlushed(t *testing.T) {
	// Property 2 in action: even with 4096 keys (towers ~12 high), an
	// NVTraverse lookup flushes O(1) cells — the index is never persisted.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 4096; k++ {
		l.Insert(th, k, k)
	}
	before := mem.Stats()
	l.Find(th, 4000)
	d := mem.Stats().Sub(before)
	if d.Flushes > 5 {
		t.Fatalf("skiplist lookup flushed %d cells", d.Flushes)
	}
	if d.Fences > 2 {
		t.Fatalf("skiplist lookup fenced %d times", d.Fences)
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	th := mem.NewThread()
	counts := make([]int, MaxLevel+1)
	const draws = 100000
	for i := 0; i < draws; i++ {
		lvl := randomLevel(th)
		if lvl < 1 || lvl > MaxLevel {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	if counts[1] < draws/3 || counts[1] > 2*draws/3 {
		t.Fatalf("P(level=1) = %f, want ~0.5", float64(counts[1])/draws)
	}
	if counts[2] < draws/8 || counts[2] > draws/2 {
		t.Fatalf("P(level=2) = %f, want ~0.25", float64(counts[2])/draws)
	}
}

func TestRecoverRebuildsTowers(t *testing.T) {
	mem := pmem.NewTracked()
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 200; k++ {
		l.Insert(th, k, k*7)
	}
	// Wreck the auxiliary index the way a crash would (it was volatile):
	// zero out every upper-level link.
	headN := l.node(l.head)
	for i := 1; i < MaxLevel; i++ {
		th.Store(&headN.Next[i], pmem.NilRef)
	}
	l.Recover(th)
	if err := l.Validate(th); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if v, ok := l.Find(th, k); !ok || v != k*7 {
			t.Fatalf("post-recovery Find(%d) = %d,%v", k, v, ok)
		}
	}
	// The rebuilt index must actually exist (not everything at level 1).
	if pmem.RefIndex(th.Load(&headN.Next[1])) == 0 {
		t.Fatalf("towers not rebuilt")
	}
}

func TestRecoverTrimsMarked(t *testing.T) {
	mem := pmem.NewTracked()
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 50; k++ {
		l.Insert(th, k, k)
	}
	// Mark some level-0 nodes by hand (lost physical deletions).
	markedKeys := []uint64{5, 25, 45}
	cur := pmem.RefIndex(th.Load(&l.node(l.head).Next[0]))
	for cur != 0 {
		n := l.node(cur)
		nx := th.Load(&n.Next[0])
		k := th.Load(&n.Key)
		for _, mk := range markedKeys {
			if k == mk {
				th.CAS(&n.Next[0], nx, pmem.WithMark(nx))
			}
		}
		cur = pmem.RefIndex(pmem.ClearTags(th.Load(&n.Next[0])))
	}
	if l.CountMarked(th) != 3 {
		t.Fatalf("marked = %d", l.CountMarked(th))
	}
	l.Recover(th)
	if l.CountMarked(th) != 0 {
		t.Fatalf("marks survived recovery")
	}
	if got := len(l.Contents(th)); got != 47 {
		t.Fatalf("size = %d, want 47", got)
	}
	if err := l.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryReclamation(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for i := 0; i < 20000; i++ {
		k := uint64(i%8) + 1
		l.Insert(th, k, k)
		l.Delete(th, k)
	}
	if hw := l.Arena().HighWater(); hw > 4096 {
		t.Fatalf("arena grew to %d handles over an 8-key churn", hw)
	}
}

func TestKeyRangePanics(t *testing.T) {
	l, th := newSkip(persist.None{})
	defer func() {
		if recover() == nil {
			t.Fatalf("key 0 accepted")
		}
	}()
	l.Insert(th, 0, 0)
}

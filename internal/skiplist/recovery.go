package skiplist

import (
	"fmt"

	"repro/internal/pmem"
)

// Recover implements the paper's recovery phase for a skiplist: run
// disconnect(root) on the core tree (the level-0 list), persisting each
// disconnection, then recompute the auxiliary structure — the index towers
// — from scratch, as Property 2 allows ("the other parts can be stored in
// volatile memory and recomputed following a crash"). Single-threaded.
func (l *List) Recover(t *pmem.Thread) {
	l.dom.Enter(t.ID)
	defer l.dom.Exit(t.ID)

	// 1. disconnect(root) on level 0.
	prev := l.head
	for {
		prevN := l.node(prev)
		pn := t.Load(&prevN.Next[0])
		cur := pmem.RefIndex(pn)
		if cur == 0 {
			break
		}
		cn := t.Load(&l.node(cur).Next[0])
		if !pmem.Marked(cn) {
			prev = cur
			continue
		}
		if t.CAS(&prevN.Next[0], pn, pmem.ClearTags(cn)) {
			t.Flush(&prevN.Next[0])
			t.Fence()
		}
	}

	// 2. Rebuild the towers: clear the index, then relink every surviving
	// node at its recorded height, keeping per-level tails.
	headN := l.node(l.head)
	var tails [MaxLevel]uint64
	for i := 1; i < MaxLevel; i++ {
		t.Store(&headN.Next[i], pmem.NilRef)
		tails[i] = l.head
	}
	cur := pmem.RefIndex(t.Load(&headN.Next[0]))
	for cur != 0 {
		n := l.node(cur)
		lvl := t.Load(&n.Level)
		if lvl < 1 || lvl > MaxLevel {
			lvl = 1 // defensive: height is volatile metadata
			t.Store(&n.Level, lvl)
		}
		for i := uint64(1); i < lvl; i++ {
			t.Store(&n.Next[i], pmem.NilRef)
			t.Store(&l.node(tails[i]).Next[i], pmem.MakeRef(cur))
			tails[i] = cur
		}
		cur = pmem.RefIndex(t.Load(&n.Next[0]))
	}
}

// Contents returns the unmarked level-0 keys in order (quiescent use).
func (l *List) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next[0]))
	for cur != 0 {
		n := l.node(cur)
		nx := t.Load(&n.Next[0])
		if !pmem.Marked(nx) {
			out = append(out, t.Load(&n.Key))
		}
		cur = pmem.RefIndex(nx)
	}
	return out
}

// CountMarked counts marked reachable level-0 nodes (quiescent use).
func (l *List) CountMarked(t *pmem.Thread) int {
	n := 0
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next[0]))
	for cur != 0 {
		nx := t.Load(&l.node(cur).Next[0])
		if pmem.Marked(nx) {
			n++
		}
		cur = pmem.RefIndex(nx)
	}
	return n
}

// Validate checks the level-0 order, cycle-freedom, and that every index
// edge connects nodes in key order and every indexed node is level-0
// reachable (quiescent use).
func (l *List) Validate(t *pmem.Thread) error {
	limit := 2 * l.ar.HighWater()
	reachable := map[uint64]bool{l.head: true}
	var steps uint64
	var last uint64
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next[0]))
	for cur != 0 {
		if steps++; steps > limit {
			return fmt.Errorf("skiplist: level-0 cycle suspected")
		}
		n := l.node(cur)
		nx := t.Load(&n.Next[0])
		k := t.Load(&n.Key)
		if !pmem.Marked(nx) {
			if k <= last {
				return fmt.Errorf("skiplist: level-0 keys out of order: %d after %d", k, last)
			}
			last = k
		}
		reachable[cur] = true
		cur = pmem.RefIndex(nx)
	}
	for i := 1; i < MaxLevel; i++ {
		steps = 0
		prevKey := uint64(0)
		cur = pmem.RefIndex(t.Load(&l.node(l.head).Next[i]))
		for cur != 0 {
			if steps++; steps > limit {
				return fmt.Errorf("skiplist: level-%d cycle suspected", i)
			}
			if !reachable[cur] {
				return fmt.Errorf("skiplist: level-%d indexes unreachable node %d", i, cur)
			}
			n := l.node(cur)
			nx := t.Load(&n.Next[i])
			k := t.Load(&n.Key)
			if !pmem.Marked(nx) && !pmem.Marked(t.Load(&n.Next[0])) {
				if k < prevKey {
					return fmt.Errorf("skiplist: level-%d keys out of order: %d after %d", i, k, prevKey)
				}
				prevKey = k
			}
			cur = pmem.RefIndex(nx)
		}
	}
	return nil
}

// LiveHandles adds every level-0 reachable handle (plus the sentinel) for
// the post-crash arena sweep.
func (l *List) LiveHandles(t *pmem.Thread, live map[uint64]bool) {
	cur := l.head
	for cur != 0 {
		live[cur] = true
		cur = pmem.RefIndex(t.Load(&l.node(cur).Next[0]))
	}
}

package skiplist

import (
	"repro/internal/kv"
	"repro/internal/pmem"
)

// Update atomically read-modify-writes the value of key in place with a CAS
// on the node's value word. Returns the installed value and true, or
// (0, false) if key is absent. See list.Update for the linearization and
// persistence argument; the skiplist variant is identical on level 0 and
// never touches the auxiliary levels (values are core-tree state).
func (l *List) Update(t *pmem.Thread, key uint64, fn func(old uint64) uint64) (uint64, bool) {
	checkKey(key)
	l.dom.Enter(t.ID)
	defer l.dom.Exit(t.ID)
	pol := l.pol
	tr := &l.trs[t.ID].tr
	for {
		entry := l.findEntry(t, key, tr)
		if !l.traverse(t, entry, key, tr) {
			continue
		}
		pol.PostTraverse(t, tr.cells)
		if tr.right == 0 || t.Load(&l.node(tr.right).Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		rightN := l.node(tr.right)
		for {
			nx := t.Load(&rightN.Next[0])
			pol.Read(t, &rightN.Next[0])
			if pmem.Marked(nx) {
				break // logically deleted under us: retraverse and re-decide
			}
			old := t.Load(&rightN.Value)
			pol.ReadData(t, &rightN.Value)
			newv := fn(old)
			pol.BeforeCAS(t)
			if t.CAS(&rightN.Value, old, newv) {
				pol.WroteData(t, &rightN.Value)
				pol.BeforeReturn(t)
				t.CountOp()
				return newv, true
			}
		}
		pol.BeforeReturn(t)
	}
}

// RangeScan visits every present key in [lo, hi] in ascending order,
// calling fn(key, value) until fn returns false or the range is exhausted.
// The index levels position the scan on lo (findEntry, volatile); the walk
// itself runs on the core tree — the level-0 list — with the same
// journey-free persistence as list.RangeScan: TraverseRead per link, one
// PostTraverse over the whole visited range, commit fence before return.
// See list.RangeScan for the consistency contract.
func (l *List) RangeScan(t *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error {
	lo, hi, ok := kv.ClampKeyRange(lo, hi)
	if !ok {
		return nil
	}
	l.dom.Enter(t.ID)
	defer l.dom.Exit(t.ID)
	pol := l.pol
	tr := &l.trs[t.ID].tr
	for {
		entry := l.findEntry(t, lo, tr)
		if !l.traverse(t, entry, lo, tr) {
			continue
		}
		break
	}
	cur := tr.right
	for cur != 0 {
		n := l.node(cur)
		k := t.Load(&n.Key)
		if k > hi {
			break
		}
		nx := t.Load(&n.Next[0])
		pol.TraverseRead(t, &n.Next[0])
		tr.cells = append(tr.cells, &n.Next[0])
		if !pmem.Marked(nx) {
			v := t.Load(&n.Value)
			pol.ReadData(t, &n.Value)
			if !fn(k, v) {
				break
			}
		}
		cur = pmem.RefIndex(nx)
	}
	pol.PostTraverse(t, tr.cells)
	pol.BeforeReturn(t)
	t.CountOp()
	return nil
}

// Package skiplist implements a lock-free skiplist (Michael, PODC'02 /
// Fraser's lists-of-lists formulation) in the traversal form of the
// NVTraverse paper.
//
// The paper's Property 2 observation drives the layout: the core tree is
// the bottom-level linked list, which alone holds all keys; the upper index
// levels are auxiliary entry points. Consequently only level-0 links are
// ever flushed or fenced, the upper levels live as ordinary volatile state,
// and recovery rebuilds the towers from the surviving level-0 list.
//
// Operation anatomy:
//
//	findEntry: descend the index levels (volatile reads, opportunistic
//	           volatile unlinking of marked towers) to the last level-1
//	           predecessor — an entry node with key < k.
//	traverse:  Harris-style walk of level 0 from the entry node.
//	critical:  level-0 insert/mark/unlink under Protocol 2, then volatile
//	           tower linking/unlinking (no persistence: auxiliary state).
//
// Deletion marks the tower top-down (volatile marks on levels >= 1, so
// index searches stop routing through the dying node) and only then marks
// level 0 under the persistence protocol; the level-0 mark is the logical
// deletion point. Tower unlinking is identity-based — it searches for the
// node handle, not its key — so a concurrent re-insert of the same key can
// never strand a dead tower in the index.
package skiplist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// MaxLevel is the tallest tower (level indices 0..MaxLevel-1).
const MaxLevel = 20

// Node is one skiplist node. Key and Level are immutable after
// initialization. Next[0] is core-tree state (persisted); Next[1..] are
// auxiliary. The level-0 mark bit is the logical deletion mark; upper
// levels carry their own volatile marks so index unlinking is safe.
type Node struct {
	Key   pmem.Cell
	Value pmem.Cell
	Level pmem.Cell // number of levels in this tower (1..MaxLevel)
	Next  [MaxLevel]pmem.Cell
	_     [8]byte // pad to whole 64-byte lines (line-granular persistence)
}

// List is the skiplist.
type List struct {
	mem  *pmem.Memory
	dom  *epoch.Domain
	ar   *arena.Arena[Node]
	pol  persist.Policy
	head uint64 // full-height sentinel with key 0

	trs []paddedTraversal
}

type paddedTraversal struct {
	tr traversal
	_  [64]byte
}

type traversal struct {
	// level-0 traversal results (same roles as the Harris list).
	parent   uint64
	left     uint64
	right    uint64
	leftNext uint64
	marked   []uint64
	cells    []*pmem.Cell
	// preds[i] is the level-i predecessor found by findEntry (i >= 1).
	preds [MaxLevel]uint64
}

// New creates an empty skiplist.
func New(mem *pmem.Memory, pol persist.Policy) *List {
	dom := epoch.New(mem.MaxThreads())
	l := &List{
		mem: mem,
		dom: dom,
		ar:  arena.New[Node](dom, mem.MaxThreads()),
		pol: pol,
		trs: make([]paddedTraversal, mem.MaxThreads()),
	}
	// The head sentinel tower is an arena node at a deterministic handle,
	// so registering the arena covers all persistent state.
	l.ar.Persist(mem.NewSpace())
	t := mem.NewThread()
	h := l.ar.Alloc(t.ID)
	n := l.ar.Get(h)
	t.Store(&n.Key, 0)
	t.Store(&n.Value, 0)
	t.Store(&n.Level, MaxLevel)
	for i := 0; i < MaxLevel; i++ {
		t.Store(&n.Next[i], pmem.NilRef)
	}
	// Only the core-tree part of the sentinel needs persisting.
	t.Flush(&n.Key)
	t.Flush(&n.Next[0])
	t.Fence()
	l.head = h
	return l
}

func (l *List) node(idx uint64) *Node { return l.ar.Get(idx) }

// Arena exposes the node pool (tests, recovery sweeps).
func (l *List) Arena() *arena.Arena[Node] { return l.ar }

// Head returns the sentinel handle (tests, recovery).
func (l *List) Head() uint64 { return l.head }

// randomLevel draws a geometric(1/2) tower height in [1, MaxLevel].
func randomLevel(t *pmem.Thread) uint64 {
	r := t.Rand()
	lvl := uint64(1)
	for r&1 == 1 && lvl < MaxLevel {
		lvl++
		r >>= 1
	}
	return lvl
}

// findEntry descends the auxiliary levels. It records the predecessor per
// level for the critical method's tower linking and returns the level-1
// predecessor as the level-0 entry point. Marked towers are unlinked
// opportunistically with volatile CASes — auxiliary maintenance, exempt
// from Protocol 2 (it never touches core-tree state).
func (l *List) findEntry(t *pmem.Thread, k uint64, tr *traversal) uint64 {
retry:
	pred := l.head
	for lvl := MaxLevel - 1; lvl >= 1; lvl-- {
		for {
			predN := l.node(pred)
			pn := t.Load(&predN.Next[lvl])
			if pmem.Marked(pn) {
				goto retry // pred is dying at this level: restart
			}
			cur := pmem.RefIndex(pn)
			if cur == 0 {
				break
			}
			curN := l.node(cur)
			cn := t.Load(&curN.Next[lvl])
			if pmem.Marked(cn) {
				// Unlink the marked tower at this level (volatile).
				t.CAS(&predN.Next[lvl], pn, pmem.ClearTags(cn))
				continue
			}
			if t.Load(&curN.Key) < k {
				pred = cur
				continue
			}
			break
		}
		tr.preds[lvl] = pred
	}
	return pred
}

// traverse is the Harris-list traverse on level 0 starting at entry. It
// returns false when the entry node itself turned out to be logically
// deleted, in which case the operation restarts from findEntry.
func (l *List) traverse(t *pmem.Thread, entry uint64, k uint64, tr *traversal) bool {
	pol := l.pol
	for {
		tr.marked = tr.marked[:0]
		leftParent := entry
		left := entry
		pred := entry
		curr := entry
		currN := l.node(curr)
		succ := t.Load(&currN.Next[0])
		pol.TraverseRead(t, &currN.Next[0])
		if entry != l.head && pmem.Marked(succ) {
			return false // stale entry point: re-derive it
		}
		leftNext := succ
		for pmem.Marked(succ) || t.Load(&currN.Key) < k {
			if !pmem.Marked(succ) {
				tr.marked = tr.marked[:0]
				leftParent = pred
				left = curr
				leftNext = succ
			} else {
				tr.marked = append(tr.marked, curr)
			}
			pred = curr
			curr = pmem.RefIndex(succ)
			if curr == 0 {
				break
			}
			currN = l.node(curr)
			succ = t.Load(&currN.Next[0])
			pol.TraverseRead(t, &currN.Next[0])
		}
		right := curr
		if right != 0 {
			rn := t.Load(&l.node(right).Next[0])
			pol.TraverseRead(t, &l.node(right).Next[0])
			if pmem.Marked(rn) {
				continue
			}
		}
		tr.parent, tr.left, tr.right, tr.leftNext = leftParent, left, right, leftNext
		tr.cells = tr.cells[:0]
		tr.cells = append(tr.cells, &l.node(leftParent).Next[0])
		tr.cells = append(tr.cells, &l.node(left).Next[0])
		for _, m := range tr.marked {
			tr.cells = append(tr.cells, &l.node(m).Next[0])
		}
		if right != 0 {
			tr.cells = append(tr.cells, &l.node(right).Next[0])
		}
		return true
	}
}

// trimMarked physically disconnects the marked level-0 nodes between left
// and right, with Protocol 2 persistence, and retires them once the
// disconnection is persistent.
func (l *List) trimMarked(t *pmem.Thread, tr *traversal) bool {
	pol := l.pol
	if len(tr.marked) == 0 {
		pol.BeforeReturn(t)
		return true
	}
	leftN := l.node(tr.left)
	newNext := pmem.Dirty(pmem.MakeRef(tr.right))
	pol.BeforeCAS(t)
	ok := t.CAS(&leftN.Next[0], tr.leftNext, newNext)
	pol.Wrote(t, &leftN.Next[0])
	if !ok {
		pol.BeforeReturn(t)
		return false
	}
	tr.leftNext = newNext
	rightClean := true
	if tr.right != 0 {
		rn := t.Load(&l.node(tr.right).Next[0])
		pol.Read(t, &l.node(tr.right).Next[0])
		rightClean = !pmem.Marked(rn)
	}
	pol.BeforeReturn(t)
	for _, m := range tr.marked {
		l.unlinkTower(t, m)
		l.ar.Retire(t.ID, m)
	}
	tr.marked = tr.marked[:0]
	return rightClean
}

// unlinkTower removes node idx from every index level it still occupies.
// The search is by node identity, not key: a concurrent re-insert of the
// same key must never shadow the dead tower and leak it into the index
// past its retirement. Volatile auxiliary maintenance — no persistence.
// The node's upper links are already marked (deletion marks top-down
// before the level-0 mark), so concurrent linkTower calls cannot re-link.
func (l *List) unlinkTower(t *pmem.Thread, idx uint64) {
	n := l.node(idx)
	lvl := t.Load(&n.Level)
	key := t.Load(&n.Key)
	for i := int(lvl) - 1; i >= 1; i-- {
		l.unlinkLevel(t, idx, key, i)
	}
}

// unlinkLevel removes node idx from index level i if it is linked there.
func (l *List) unlinkLevel(t *pmem.Thread, idx, key uint64, i int) {
	n := l.node(idx)
retryLevel:
	pred := l.head
	for {
		predN := l.node(pred)
		pn := t.Load(&predN.Next[i])
		cur := pmem.RefIndex(pn)
		if cur == 0 {
			return // not linked at this level
		}
		if cur == idx {
			nn := t.Load(&n.Next[i]) // marked
			// Preserve pred's own mark bit if it is dying too.
			repl := pmem.ClearTags(nn) | (pn & pmem.MarkBit)
			if !t.CAS(&predN.Next[i], pn, repl) {
				goto retryLevel
			}
			return
		}
		if t.Load(&l.node(cur).Key) > key {
			return // passed every node with this key: not linked
		}
		pred = cur
	}
}

// Insert adds key with value; false if present.
func (l *List) Insert(t *pmem.Thread, key, value uint64) bool {
	_, inserted := l.insertGet(t, key, value, false)
	return inserted
}

// GetOrInsert atomically returns the present value of key (inserted=false)
// or inserts value and returns it (inserted=true).
func (l *List) GetOrInsert(t *pmem.Thread, key, value uint64) (v uint64, inserted bool) {
	return l.insertGet(t, key, value, true)
}

// insertGet is the shared critical section of Insert and GetOrInsert; see
// list.insertGet for the wantValue contract.
func (l *List) insertGet(t *pmem.Thread, key, value uint64, wantValue bool) (uint64, bool) {
	checkKey(key)
	l.dom.Enter(t.ID)
	defer l.dom.Exit(t.ID)
	pol := l.pol
	tr := &l.trs[t.ID].tr
	for {
		entry := l.findEntry(t, key, tr)
		if !l.traverse(t, entry, key, tr) {
			continue
		}
		pol.PostTraverse(t, tr.cells)
		if !l.trimMarked(t, tr) {
			continue
		}
		if tr.right != 0 && t.Load(&l.node(tr.right).Key) == key {
			var v uint64
			if wantValue {
				rightN := l.node(tr.right)
				v = t.Load(&rightN.Value)
				pol.ReadData(t, &rightN.Value)
			}
			pol.BeforeReturn(t)
			t.CountOp()
			return v, false
		}
		lvl := randomLevel(t)
		idx := l.ar.Alloc(t.ID)
		n := l.node(idx)
		t.Store(&n.Key, key)
		t.Store(&n.Value, value)
		t.Store(&n.Level, lvl)
		t.Store(&n.Next[0], pmem.Dirty(pmem.MakeRef(tr.right)))
		for i := uint64(1); i < lvl; i++ {
			//nvcheck:ignore writehook -- upper tower levels are volatile index state: recovery rebuilds them from the durable Level field, so no hook or flush is wanted
			t.Store(&n.Next[i], pmem.NilRef)
		}
		// Core-tree fields participate in the protocol; Level is persisted
		// too because recovery rebuilds the towers from it. Upper Next
		// cells are auxiliary and stay unflushed.
		pol.InitWrite(t, &n.Key)
		pol.InitWrite(t, &n.Value)
		pol.InitWrite(t, &n.Level)
		pol.InitWrite(t, &n.Next[0])
		leftN := l.node(tr.left)
		pol.BeforeCAS(t)
		ok := t.CAS(&leftN.Next[0], tr.leftNext, pmem.Dirty(pmem.MakeRef(idx)))
		pol.Wrote(t, &leftN.Next[0])
		pol.BeforeReturn(t)
		if !ok {
			l.ar.Free(t.ID, idx)
			continue
		}
		// Linearized and persisted; now link the tower (volatile).
		l.linkTower(t, idx, lvl, key, tr)
		t.CountOp()
		return value, true
	}
}

// linkTower links node idx into levels 1..lvl-1. Both the node-side and
// the predecessor-side writes are CASes so a concurrent deletion's marks
// can never be overwritten; if the node gets marked, linking stops — the
// deleter's identity unlink handles whatever was already linked.
func (l *List) linkTower(t *pmem.Thread, idx, lvl, key uint64, tr *traversal) {
	n := l.node(idx)
	for i := uint64(1); i < lvl; i++ {
		for {
			if pmem.Marked(t.Load(&n.Next[0])) {
				return // deleted concurrently: stop linking
			}
			pred := tr.preds[i]
			predN := l.node(pred)
			pn := t.Load(&predN.Next[i])
			cur := pmem.RefIndex(pn)
			for !pmem.Marked(pn) && cur != 0 && cur != idx &&
				t.Load(&l.node(cur).Key) < key {
				pred = cur
				predN = l.node(pred)
				pn = t.Load(&predN.Next[i])
				cur = pmem.RefIndex(pn)
			}
			if pmem.Marked(pn) {
				// Predecessor dying: re-derive the level's preds.
				l.findEntry(t, key, tr)
				continue
			}
			if cur == idx {
				break // already linked (helped)
			}
			old := t.Load(&n.Next[i])
			if pmem.Marked(old) {
				return // deleter claimed the tower
			}
			if !t.CAS(&n.Next[i], old, pmem.MakeRef(cur)) {
				continue // marked or changed under us: re-examine
			}
			if t.CAS(&predN.Next[i], pn, pmem.MakeRef(idx)) {
				// A deletion that raced with this publish may already
				// have finished its own identity unlink; re-check and
				// clean up ourselves. We are still inside the epoch
				// critical section, so the node cannot be reused yet.
				if pmem.Marked(t.Load(&n.Next[0])) {
					l.unlinkLevel(t, idx, key, int(i))
				}
				break
			}
			l.findEntry(t, key, tr)
		}
	}
}

// Delete removes key; false if absent.
func (l *List) Delete(t *pmem.Thread, key uint64) bool {
	checkKey(key)
	l.dom.Enter(t.ID)
	defer l.dom.Exit(t.ID)
	pol := l.pol
	tr := &l.trs[t.ID].tr
	for {
		entry := l.findEntry(t, key, tr)
		if !l.traverse(t, entry, key, tr) {
			continue
		}
		pol.PostTraverse(t, tr.cells)
		if !l.trimMarked(t, tr) {
			continue
		}
		if tr.right == 0 || t.Load(&l.node(tr.right).Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return false
		}
		rightN := l.node(tr.right)
		// Mark the auxiliary levels top-down first (volatile) so index
		// searches stop routing through the dying tower.
		lvl := t.Load(&rightN.Level)
		for i := int(lvl) - 1; i >= 1; i-- {
			for {
				nx := t.Load(&rightN.Next[i])
				if pmem.Marked(nx) {
					break
				}
				//nvcheck:ignore writehook -- upper tower levels are volatile index state: recovery rebuilds them from the durable Level field, so no hook or flush is wanted
				if t.CAS(&rightN.Next[i], nx, pmem.WithMark(nx)) {
					break
				}
			}
		}
		// Core-tree logical deletion under Protocol 2.
		rNext := t.Load(&rightN.Next[0])
		pol.Read(t, &rightN.Next[0])
		if !pmem.Marked(rNext) {
			pol.BeforeCAS(t)
			ok := t.CAS(&rightN.Next[0], rNext, pmem.WithMark(pmem.Dirty(rNext)))
			pol.Wrote(t, &rightN.Next[0])
			pol.BeforeCAS(t)
			if ok {
				leftN := l.node(tr.left)
				phys := t.CAS(&leftN.Next[0], tr.leftNext, pmem.ClearTags(rNext))
				pol.Wrote(t, &leftN.Next[0])
				pol.BeforeReturn(t)
				if phys {
					l.unlinkTower(t, tr.right)
					l.ar.Retire(t.ID, tr.right)
				}
				t.CountOp()
				return true
			}
		}
		pol.BeforeReturn(t)
	}
}

// Find reports membership and value.
func (l *List) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	checkKey(key)
	l.dom.Enter(t.ID)
	defer l.dom.Exit(t.ID)
	pol := l.pol
	tr := &l.trs[t.ID].tr
	for {
		entry := l.findEntry(t, key, tr)
		if !l.traverse(t, entry, key, tr) {
			continue
		}
		pol.PostTraverse(t, tr.cells)
		if tr.right == 0 || t.Load(&l.node(tr.right).Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		v := t.Load(&l.node(tr.right).Value)
		pol.ReadData(t, &l.node(tr.right).Value)
		pol.BeforeReturn(t)
		t.CountOp()
		return v, true
	}
}

func checkKey(key uint64) {
	if key == 0 || key >= 1<<61 {
		panic(fmt.Sprintf("skiplist: key %d out of range [1, 2^61)", key))
	}
}

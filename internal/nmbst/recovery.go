package nmbst

import (
	"fmt"

	"repro/internal/pmem"
)

// Recover implements the paper's recovery phase: every flagged leaf is a
// marked node whose unique disconnection instruction is the ancestor swing;
// recovery completes all of them (Supplement 1's disconnect), persisting
// each repair, then clears any tag left over from an interrupted cleanup.
// Single-threaded.
//
//nvcheck:ignore fencereturn -- single-threaded recovery: each completed deletion and cleared tag fences where it happens, and repair-free paths have nothing to persist, so no trailing fence is wanted
func (tr *Tree) Recover(t *pmem.Thread) {
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	// Repeatedly sweep for flagged leaves and complete their deletions.
	// Each completed deletion removes at least one flagged leaf, so this
	// terminates; the defensive cap turns an unexpected stuck state into a
	// leftover flag (which online helping also tolerates) rather than an
	// unbounded recovery.
	for rounds := 0; rounds < 1<<20; rounds++ {
		key, found := tr.findFlagged(t, tr.rootR)
		if !found {
			break
		}
		sr := &tr.trs[t.ID].sr
		tr.traverse(t, key, sr)
		if t.Load(&tr.node(sr.leaf).Key) != key || !pmem.Marked(sr.leafEdge) {
			break // should be unreachable single-threaded
		}
		tr.cleanup(t, key, sr)
		t.Fence()
	}
	// Clear stray tags (an interrupted cleanup may have tagged a sibling
	// edge whose swing never happened; with no flag left, the tag would
	// freeze the edge forever).
	tr.clearTags(t, tr.rootR)
}

// findFlagged returns the key of some reachable flagged leaf.
func (tr *Tree) findFlagged(t *pmem.Thread, idx uint64) (uint64, bool) {
	n := tr.node(idx)
	if t.Load(&n.Leaf) == 1 {
		return 0, false
	}
	for _, c := range []*pmem.Cell{&n.Left, &n.Right} {
		ev := t.Load(c)
		child := pmem.RefIndex(ev)
		if child == 0 {
			continue
		}
		if pmem.Marked(ev) && t.Load(&tr.node(child).Leaf) == 1 {
			return t.Load(&tr.node(child).Key), true
		}
		if k, ok := tr.findFlagged(t, child); ok {
			return k, ok
		}
	}
	return 0, false
}

func (tr *Tree) clearTags(t *pmem.Thread, idx uint64) {
	n := tr.node(idx)
	if t.Load(&n.Leaf) == 1 {
		return
	}
	for _, c := range []*pmem.Cell{&n.Left, &n.Right} {
		ev := t.Load(c)
		if pmem.Tagged(ev) {
			t.Store(c, pmem.Dirty(ev)&^pmem.TagBit)
			t.Flush(c)
			t.Fence()
			ev = t.Load(c)
		}
		if child := pmem.RefIndex(ev); child != 0 {
			tr.clearTags(t, child)
		}
	}
}

// Contents returns the user keys of unflagged leaves, in order (quiescent
// use only). Flagged leaves are logically present in NM until swung out,
// but recovery completes all pending deletions first, so post-recovery the
// distinction is moot; pre-recovery callers (tests) want the same view
// Find gives, which ignores flags — so flags are ignored here too.
func (tr *Tree) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	var walk func(idx uint64)
	walk = func(idx uint64) {
		n := tr.node(idx)
		if t.Load(&n.Leaf) == 1 {
			if k := t.Load(&n.Key); k < Inf0 {
				out = append(out, k)
			}
			return
		}
		if l := pmem.RefIndex(t.Load(&n.Left)); l != 0 {
			walk(l)
		}
		if r := pmem.RefIndex(t.Load(&n.Right)); r != 0 {
			walk(r)
		}
	}
	walk(tr.rootR)
	return out
}

// CountFlagged counts reachable flagged leaf edges (0 after recovery).
func (tr *Tree) CountFlagged(t *pmem.Thread) int {
	cnt := 0
	var walk func(idx uint64)
	walk = func(idx uint64) {
		n := tr.node(idx)
		if t.Load(&n.Leaf) == 1 {
			return
		}
		for _, c := range []*pmem.Cell{&n.Left, &n.Right} {
			ev := t.Load(c)
			if pmem.Marked(ev) {
				cnt++
			}
			if child := pmem.RefIndex(ev); child != 0 {
				walk(child)
			}
		}
	}
	walk(tr.rootR)
	return cnt
}

// Validate checks external-BST shape and key order (quiescent use only).
func (tr *Tree) Validate(t *pmem.Thread) error {
	var err error
	var count int
	var walk func(idx uint64, lo, hi uint64)
	walk = func(idx uint64, lo, hi uint64) {
		if err != nil {
			return
		}
		count++
		if count > 1<<22 {
			err = fmt.Errorf("nmbst: cycle suspected")
			return
		}
		n := tr.node(idx)
		k := t.Load(&n.Key)
		if t.Load(&n.Leaf) == 1 {
			if k < lo || k >= hi {
				err = fmt.Errorf("nmbst: leaf key %d outside [%d, %d)", k, lo, hi)
			}
			return
		}
		left := pmem.RefIndex(t.Load(&n.Left))
		right := pmem.RefIndex(t.Load(&n.Right))
		if left == 0 || right == 0 {
			err = fmt.Errorf("nmbst: internal node %d missing a child", idx)
			return
		}
		walk(left, lo, k)
		walk(right, k, hi)
	}
	walk(tr.rootR, 0, ^uint64(0))
	return err
}

// LiveHandles accumulates reachable handles for the post-crash sweep.
func (tr *Tree) LiveHandles(t *pmem.Thread, live map[uint64]bool) {
	var walk func(idx uint64)
	walk = func(idx uint64) {
		live[idx] = true
		n := tr.node(idx)
		if t.Load(&n.Leaf) == 1 {
			return
		}
		if l := pmem.RefIndex(t.Load(&n.Left)); l != 0 {
			walk(l)
		}
		if r := pmem.RefIndex(t.Load(&n.Right)); r != 0 {
			walk(r)
		}
	}
	walk(tr.rootR)
}

package nmbst

import (
	"repro/internal/kv"
	"repro/internal/pmem"
)

// Update atomically read-modify-writes the value of key in place with a CAS
// on the leaf's value word. Returns the installed value and true, or
// (0, false) if key is absent. Like Find, Update ignores edge flags: a
// flagged leaf is still logically present until the ancestor swing, and an
// update racing the swing overlaps the deletion and may be linearized
// before it (see ellenbst.Update; the value word plays no part in the
// edge-based coordination). Persistence follows Protocol 2 with WroteData
// flushing the new value before the commit fence.
func (tr *Tree) Update(t *pmem.Thread, key uint64, fn func(old uint64) uint64) (uint64, bool) {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	for {
		tr.traverse(t, key, sr)
		pol.PostTraverse(t, sr.cells)
		leafN := tr.node(sr.leaf)
		if t.Load(&leafN.Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		old := t.Load(&leafN.Value)
		pol.ReadData(t, &leafN.Value)
		newv := fn(old)
		pol.BeforeCAS(t)
		if t.CAS(&leafN.Value, old, newv) {
			pol.WroteData(t, &leafN.Value)
			pol.BeforeReturn(t)
			t.CountOp()
			return newv, true
		}
		pol.BeforeReturn(t) // lost a value race: retraverse and retry
	}
}

// RangeScan visits every present key in [lo, hi] in ascending order,
// calling fn(key, value) until fn returns false or the range is exhausted.
// The pruned in-order walk mirrors ellenbst.RangeScan (internal keys route
// left < key <= right); edges are followed through their flag/tag bits —
// like Find, the scan treats flagged leaves as present. Sentinel leaves
// (keys >= Inf0) are never in range. One PostTraverse persists the visited
// region's edges before the commit fence; see list.RangeScan for the
// consistency contract.
func (tr *Tree) RangeScan(t *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error {
	lo, hi, ok := kv.ClampKeyRange(lo, hi)
	if !ok {
		return nil
	}
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	sr.cells = sr.cells[:0]
	stopped := false
	var walk func(idx uint64)
	walk = func(idx uint64) {
		if stopped {
			return
		}
		n := tr.node(idx)
		if t.Load(&n.Leaf) == 1 {
			k := t.Load(&n.Key)
			if k >= lo && k <= hi {
				v := t.Load(&n.Value)
				pol.ReadData(t, &n.Value)
				if !fn(k, v) {
					stopped = true
				}
			}
			return
		}
		k := t.Load(&n.Key)
		if lo < k {
			child := t.Load(&n.Left)
			pol.TraverseRead(t, &n.Left)
			sr.cells = append(sr.cells, &n.Left)
			if c := pmem.RefIndex(child); c != 0 {
				walk(c)
			}
		}
		if hi >= k {
			child := t.Load(&n.Right)
			pol.TraverseRead(t, &n.Right)
			sr.cells = append(sr.cells, &n.Right)
			if c := pmem.RefIndex(child); c != 0 {
				walk(c)
			}
		}
	}
	walk(tr.rootR)
	pol.PostTraverse(t, sr.cells)
	pol.BeforeReturn(t)
	t.CountOp()
	return nil
}

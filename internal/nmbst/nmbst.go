// Package nmbst implements the lock-free external binary search tree of
// Natarajan and Mittal (PPoPP'14) in the traversal form of the NVTraverse
// paper.
//
// Unlike the Ellen et al. tree, coordination metadata lives on the edges:
// a FLAG bit (pmem.MarkBit) on the edge to a leaf marks that leaf for
// deletion, and a TAG bit (pmem.TagBit) freezes the sibling edge so the
// sibling subtree can be promoted. A deletion proceeds in two phases:
// injection (flag the leaf's incoming edge) and cleanup (tag the sibling
// edge, then swing the ancestor's child edge from the successor to the
// sibling, removing the whole chain of pending deletions in one CAS).
// Flagged and tagged edges are frozen, so the removed chain is immutable
// at swing time and the swinging thread can retire it deterministically.
//
// Traversal form: seek is the traverse method — it routes on immutable
// keys, reads one edge per step, and returns the seek record (ancestor,
// successor, parent, leaf) plus the edges read in those nodes, which is
// exactly Protocol 1's flush set. Injection and cleanup form the critical
// method under Protocol 2.
package nmbst

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Sentinel keys: every user key must be < Inf0.
const (
	Inf0 = uint64(1) << 61
	Inf1 = Inf0 + 1
	Inf2 = Inf0 + 2
)

// Node is a tree node; Key and Leaf are immutable after initialization.
type Node struct {
	Key   pmem.Cell
	Leaf  pmem.Cell // 1 = leaf
	Value pmem.Cell
	Left  pmem.Cell
	Right pmem.Cell
	_     [24]byte // pad to one 64-byte line (line-granular persistence)
}

// Tree is the set.
type Tree struct {
	mem   *pmem.Memory
	dom   *epoch.Domain
	nodes *arena.Arena[Node]
	pol   persist.Policy
	rootR uint64 // R: key Inf2
	rootS uint64 // S = R.left: key Inf1

	trs []paddedSeek
}

type paddedSeek struct {
	sr seek
	_  [64]byte
}

// seek is the traverse method's result: the seek record of Natarajan and
// Mittal plus the cells and raw edge values the critical method needs.
type seek struct {
	anc, succ, par, leaf uint64
	leafEdge             uint64 // raw value of the edge into leaf
	intoAnc              *pmem.Cell
	intoSucc             *pmem.Cell
	intoPar              *pmem.Cell
	intoLeaf             *pmem.Cell
	cells                []*pmem.Cell
}

// New creates the sentinel skeleton: R(Inf2){S, leaf Inf2}, S(Inf1){leaf
// Inf0, leaf Inf1}.
func New(mem *pmem.Memory, pol persist.Policy) *Tree {
	dom := epoch.New(mem.MaxThreads())
	tr := &Tree{
		mem:   mem,
		dom:   dom,
		nodes: arena.New[Node](dom, mem.MaxThreads()),
		pol:   pol,
		trs:   make([]paddedSeek, mem.MaxThreads()),
	}
	tr.nodes.Persist(mem.NewSpace())
	t := mem.NewThread()
	l0 := tr.newNode(t, Inf0, 1, 0, pmem.NilRef, pmem.NilRef)
	l1 := tr.newNode(t, Inf1, 1, 0, pmem.NilRef, pmem.NilRef)
	l2 := tr.newNode(t, Inf2, 1, 0, pmem.NilRef, pmem.NilRef)
	s := tr.newNode(t, Inf1, 0, 0, pmem.MakeRef(l0), pmem.MakeRef(l1))
	r := tr.newNode(t, Inf2, 0, 0, pmem.MakeRef(s), pmem.MakeRef(l2))
	t.Fence()
	tr.rootR, tr.rootS = r, s
	return tr
}

// newNode allocates and fully initializes a node, flushing every field
// (slots are recycled: unpersisted fields would roll back to the previous
// occupant's values on a crash).
func (tr *Tree) newNode(t *pmem.Thread, key, leaf, value, left, right uint64) uint64 {
	idx := tr.nodes.Alloc(t.ID)
	n := tr.nodes.Get(idx)
	t.Store(&n.Key, key)
	t.Store(&n.Leaf, leaf)
	t.Store(&n.Value, value)
	t.Store(&n.Left, left)
	t.Store(&n.Right, right)
	tr.pol.InitWrite(t, &n.Key)
	tr.pol.InitWrite(t, &n.Leaf)
	tr.pol.InitWrite(t, &n.Value)
	tr.pol.InitWrite(t, &n.Left)
	tr.pol.InitWrite(t, &n.Right)
	return idx
}

func (tr *Tree) node(idx uint64) *Node { return tr.nodes.Get(idx) }

// Nodes exposes the node arena (tests, recovery sweeps).
func (tr *Tree) Nodes() *arena.Arena[Node] { return tr.nodes }

// childCellToward returns n's child cell on the side where key routes.
func (tr *Tree) childCellToward(t *pmem.Thread, idx uint64, key uint64) *pmem.Cell {
	n := tr.node(idx)
	if key < t.Load(&n.Key) {
		return &n.Left
	}
	return &n.Right
}

// traverse is the seek of Natarajan–Mittal: descend by key, maintaining
// (ancestor, successor) as the endpoints of the last untagged edge on the
// path. Read-only.
func (tr *Tree) traverse(t *pmem.Thread, k uint64, sr *seek) {
	pol := tr.pol
	rN := tr.node(tr.rootR)
	anc, succ, par := tr.rootR, tr.rootS, tr.rootS
	var intoAnc *pmem.Cell
	intoSucc := &rN.Left
	intoPar := &rN.Left
	sN := tr.node(tr.rootS)
	cellIntoCur := &sN.Left
	if k >= t.Load(&sN.Key) {
		cellIntoCur = &sN.Right
	}
	ev := t.Load(cellIntoCur)
	pol.TraverseRead(t, cellIntoCur)
	cur := pmem.RefIndex(ev)
	for t.Load(&tr.node(cur).Leaf) != 1 {
		if !pmem.Tagged(ev) {
			anc, succ = par, cur
			intoAnc, intoSucc = intoPar, cellIntoCur
		}
		par = cur
		intoPar = cellIntoCur
		n := tr.node(cur)
		if k < t.Load(&n.Key) {
			cellIntoCur = &n.Left
		} else {
			cellIntoCur = &n.Right
		}
		ev = t.Load(cellIntoCur)
		pol.TraverseRead(t, cellIntoCur)
		cur = pmem.RefIndex(ev)
	}
	sr.anc, sr.succ, sr.par, sr.leaf = anc, succ, par, cur
	sr.leafEdge = ev
	sr.intoAnc, sr.intoSucc, sr.intoPar, sr.intoLeaf = intoAnc, intoSucc, intoPar, cellIntoCur
	// Protocol 1 flush set: the link into the topmost returned node
	// (ensureReachable) plus the edges read in the returned nodes.
	sr.cells = sr.cells[:0]
	if intoAnc != nil {
		sr.cells = append(sr.cells, intoAnc)
	}
	sr.cells = append(sr.cells, intoSucc, intoPar, cellIntoCur)
}

// cas2 tries a CAS whose expected value was constructed (see ellenbst):
// the link-and-persist policy may have set the persist tag concurrently.
func (tr *Tree) cas2(t *pmem.Thread, c *pmem.Cell, expected, newv uint64) bool {
	if t.CAS(c, expected, newv) {
		return true
	}
	return t.CAS(c, expected|pmem.PersistBit, newv)
}

// cleanup attempts to complete the deletion of the flagged leaf recorded in
// sr (which may belong to another thread — helping): tag the sibling edge,
// then swing the ancestor's child from successor to the sibling subtree.
// On success the removed chain is retired. Critical-method code.
func (tr *Tree) cleanup(t *pmem.Thread, k uint64, sr *seek) bool {
	pol := tr.pol
	parN := tr.node(sr.par)
	var childCell, sibCell *pmem.Cell
	if k < t.Load(&parN.Key) {
		childCell, sibCell = &parN.Left, &parN.Right
	} else {
		childCell, sibCell = &parN.Right, &parN.Left
	}
	cv := t.Load(childCell)
	pol.Read(t, childCell)
	if !pmem.Marked(cv) {
		// The flag is on the other side: we are helping a deletion whose
		// doomed leaf is the sibling.
		sibCell = childCell
	}
	// Freeze the sibling edge with the tag bit.
	for {
		sv := t.Load(sibCell)
		pol.Read(t, sibCell)
		if pmem.Tagged(sv) {
			break
		}
		pol.BeforeCAS(t)
		ok := t.CAS(sibCell, sv, pmem.WithTag(pmem.Dirty(sv)))
		pol.Wrote(t, sibCell)
		if ok {
			break
		}
	}
	sv := t.Load(sibCell)
	pol.Read(t, sibCell)
	surv := pmem.RefIndex(sv)
	// Swing the ancestor edge: successor out, sibling subtree in. The
	// sibling edge's FLAG travels with the promotion (the sibling may be a
	// leaf with its own pending deletion; dropping the flag would let that
	// deletion's cleanup later tag a clean edge and retire a live leaf).
	newEdge := pmem.MakeRef(surv) | (sv & pmem.MarkBit)
	ancCell := tr.childCellToward(t, sr.anc, k)
	pol.BeforeCAS(t)
	ok := tr.cas2(t, ancCell, pmem.MakeRef(sr.succ), newEdge)
	pol.Wrote(t, ancCell)
	pol.BeforeCAS(t) // persist the disconnection before retiring the chain
	if ok {
		tr.retireChain(t, sr.succ, surv)
	}
	return ok
}

// retireChain retires the frozen chain removed by a successful swing: the
// internal nodes from successor down to the parent (following tagged
// edges) and their flagged doomed leaves. The survivor subtree root is
// not touched. Only the swinging thread calls this, so no double retire.
func (tr *Tree) retireChain(t *pmem.Thread, succ, surv uint64) {
	x := succ
	for steps := 0; steps < 1<<20; steps++ {
		n := tr.node(x)
		left := t.Load(&n.Left)
		right := t.Load(&n.Right)
		var doomed, fwd uint64
		switch {
		case pmem.Tagged(right) && !pmem.Tagged(left):
			doomed, fwd = pmem.RefIndex(left), pmem.RefIndex(right)
		case pmem.Tagged(left) && !pmem.Tagged(right):
			doomed, fwd = pmem.RefIndex(right), pmem.RefIndex(left)
		default:
			// A chain node always has exactly one tagged (forward)
			// edge; anything else means a helper raced us here.
			// Leak rather than risk a double retire.
			return
		}
		if doomed != 0 {
			tr.nodes.Retire(t.ID, doomed)
		}
		tr.nodes.Retire(t.ID, x)
		if fwd == surv || fwd == 0 {
			return
		}
		x = fwd
	}
}

// Insert adds key with value; false if present.
func (tr *Tree) Insert(t *pmem.Thread, key, value uint64) bool {
	_, inserted := tr.insertGet(t, key, value, false)
	return inserted
}

// GetOrInsert atomically returns the present value of key (inserted=false)
// or inserts value and returns it (inserted=true).
func (tr *Tree) GetOrInsert(t *pmem.Thread, key, value uint64) (v uint64, inserted bool) {
	return tr.insertGet(t, key, value, true)
}

// insertGet is the shared critical section of Insert and GetOrInsert; see
// list.insertGet for the wantValue contract.
func (tr *Tree) insertGet(t *pmem.Thread, key, value uint64, wantValue bool) (uint64, bool) {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	for {
		tr.traverse(t, key, sr)
		pol.PostTraverse(t, sr.cells)
		leafN := tr.node(sr.leaf)
		if t.Load(&leafN.Key) == key {
			var v uint64
			if wantValue {
				v = t.Load(&leafN.Value)
				pol.ReadData(t, &leafN.Value)
			}
			pol.BeforeReturn(t)
			t.CountOp()
			return v, false
		}
		if pmem.Marked(sr.leafEdge) || pmem.Tagged(sr.leafEdge) {
			// The edge is frozen by a pending deletion: help it finish.
			tr.cleanup(t, key, sr)
			pol.BeforeReturn(t)
			continue
		}
		lKey := t.Load(&leafN.Key)
		newLeaf := tr.newNode(t, key, 1, value, pmem.NilRef, pmem.NilRef)
		maxKey, left, right := key, uint64(0), uint64(0)
		if key < lKey {
			maxKey, left, right = lKey, newLeaf, sr.leaf
		} else {
			left, right = sr.leaf, newLeaf
		}
		ni := tr.newNode(t, maxKey, 0, 0, pmem.MakeRef(left), pmem.MakeRef(right))
		pol.BeforeCAS(t)
		ok := t.CAS(sr.intoLeaf, sr.leafEdge, pmem.MakeRef(ni))
		pol.Wrote(t, sr.intoLeaf)
		pol.BeforeReturn(t)
		if ok {
			t.CountOp()
			return value, true
		}
		tr.nodes.Free(t.ID, newLeaf)
		tr.nodes.Free(t.ID, ni)
		ev := t.Load(sr.intoLeaf)
		pol.Read(t, sr.intoLeaf)
		if pmem.RefIndex(ev) == sr.leaf && (pmem.Marked(ev) || pmem.Tagged(ev)) {
			tr.cleanup(t, key, sr)
			pol.BeforeReturn(t)
		}
	}
}

// Delete removes key; false if absent. Injection flags the leaf's edge
// (the logical deletion, persisted before cleanup), then cleanup swings it
// out of the tree.
func (tr *Tree) Delete(t *pmem.Thread, key uint64) bool {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	injecting := true
	var target uint64
	for {
		tr.traverse(t, key, sr)
		pol.PostTraverse(t, sr.cells)
		if injecting {
			if t.Load(&tr.node(sr.leaf).Key) != key {
				pol.BeforeReturn(t)
				t.CountOp()
				return false
			}
			if pmem.Marked(sr.leafEdge) || pmem.Tagged(sr.leafEdge) {
				tr.cleanup(t, key, sr)
				pol.BeforeReturn(t)
				continue
			}
			pol.BeforeCAS(t)
			ok := t.CAS(sr.intoLeaf, sr.leafEdge, pmem.WithMark(pmem.Dirty(sr.leafEdge)))
			pol.Wrote(t, sr.intoLeaf)
			pol.BeforeCAS(t) // the flag (logical delete) is persistent now
			if !ok {
				ev := t.Load(sr.intoLeaf)
				pol.Read(t, sr.intoLeaf)
				if pmem.RefIndex(ev) == sr.leaf && (pmem.Marked(ev) || pmem.Tagged(ev)) {
					tr.cleanup(t, key, sr)
					pol.BeforeReturn(t)
				}
				continue
			}
			injecting = false
			target = sr.leaf
			if tr.cleanup(t, key, sr) {
				pol.BeforeReturn(t)
				t.CountOp()
				return true
			}
			continue
		}
		// Cleanup mode: done as soon as our flagged leaf left the tree.
		if sr.leaf != target {
			pol.BeforeReturn(t)
			t.CountOp()
			return true
		}
		if tr.cleanup(t, key, sr) {
			pol.BeforeReturn(t)
			t.CountOp()
			return true
		}
	}
}

// Find reports membership and value.
func (tr *Tree) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	tr.traverse(t, key, sr)
	pol.PostTraverse(t, sr.cells)
	leafN := tr.node(sr.leaf)
	// NM reads are wait-free and ignore edge flags: a flagged leaf is
	// still logically present — the deletion linearizes at the swing.
	if t.Load(&leafN.Key) != key {
		pol.BeforeReturn(t)
		t.CountOp()
		return 0, false
	}
	v := t.Load(&leafN.Value)
	pol.ReadData(t, &leafN.Value)
	pol.BeforeReturn(t)
	t.CountOp()
	return v, true
}

func checkKey(key uint64) {
	if key == 0 || key >= Inf0 {
		panic(fmt.Sprintf("nmbst: key %d out of range [1, 2^61)", key))
	}
}

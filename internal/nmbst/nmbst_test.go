package nmbst

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newTree(pol persist.Policy) (*Tree, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	tr := New(mem, pol)
	return tr, mem.NewThread()
}

func TestBasicOps(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			tr, th := newTree(pol)
			if _, ok := tr.Find(th, 10); ok {
				t.Fatalf("empty tree finds 10")
			}
			if !tr.Insert(th, 10, 100) || tr.Insert(th, 10, 101) {
				t.Fatalf("insert semantics broken")
			}
			if v, ok := tr.Find(th, 10); !ok || v != 100 {
				t.Fatalf("Find(10) = %d,%v", v, ok)
			}
			if !tr.Delete(th, 10) || tr.Delete(th, 10) {
				t.Fatalf("delete semantics broken")
			}
			if _, ok := tr.Find(th, 10); ok {
				t.Fatalf("deleted key found")
			}
			if err := tr.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInOrderContents(t *testing.T) {
	tr, th := newTree(persist.NVTraverse{})
	rng := rand.New(rand.NewSource(23))
	perm := rng.Perm(1000)
	for _, k := range perm {
		if !tr.Insert(th, uint64(k)+1, uint64(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	got := tr.Contents(th)
	if len(got) != 1000 {
		t.Fatalf("size = %d", len(got))
	}
	for i := range got {
		if got[i] != uint64(i)+1 {
			t.Fatalf("contents[%d] = %d", i, got[i])
		}
	}
	if err := tr.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			tr, th := newTree(pol)
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(29))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(300)) + 1
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64() & ((1 << 32) - 1)
					_, exp := oracle[k]
					if tr.Insert(th, k, v) == exp {
						t.Fatalf("op %d: Insert(%d) disagreed", i, k)
					}
					if !exp {
						oracle[k] = v
					}
				case 1:
					_, exp := oracle[k]
					if tr.Delete(th, k) != exp {
						t.Fatalf("op %d: Delete(%d) disagreed", i, k)
					}
					delete(oracle, k)
				default:
					ev, exp := oracle[k]
					gv, ok := tr.Find(th, k)
					if ok != exp || (ok && gv != ev) {
						t.Fatalf("op %d: Find(%d) = %d,%v disagreed", i, k, gv, ok)
					}
				}
			}
			if err := tr.Validate(th); err != nil {
				t.Fatal(err)
			}
			if got := tr.Contents(th); len(got) != len(oracle) {
				t.Fatalf("size %d, oracle %d", len(got), len(oracle))
			}
		})
	}
}

func TestQuickOracle(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		tr, th := newTree(persist.NVTraverse{})
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key%89) + 1
			switch o.Kind % 3 {
			case 0:
				if tr.Insert(th, k, k) == oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if tr.Delete(th, k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if _, ok := tr.Find(th, k); ok != oracle[k] {
					return false
				}
			}
		}
		return tr.Validate(th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, pol := range []persist.Policy{persist.None{}, persist.NVTraverse{}, persist.Izraelevitz{}, persist.LinkAndPersist{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
			tr := New(mem, pol)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				th := mem.NewThread()
				wg.Add(1)
				go func(th *pmem.Thread) {
					defer wg.Done()
					for j := 0; j < 4000; j++ {
						k := th.Rand()%256 + 1
						switch th.Rand() % 3 {
						case 0:
							tr.Insert(th, k, k)
						case 1:
							tr.Delete(th, k)
						default:
							tr.Find(th, k)
						}
					}
				}(th)
			}
			wg.Wait()
			th := mem.NewThread()
			if err := tr.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	tr := New(mem, persist.NVTraverse{})
	const threads = 6
	var wg sync.WaitGroup
	fail := make(chan string, threads)
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		base := uint64(i*10000 + 1)
		wg.Add(1)
		go func(th *pmem.Thread, base uint64) {
			defer wg.Done()
			for k := base; k < base+300; k++ {
				if !tr.Insert(th, k, k) {
					fail <- "insert failed"
					return
				}
			}
			for k := base; k < base+300; k += 2 {
				if !tr.Delete(th, k) {
					fail <- "delete failed"
					return
				}
			}
			for k := base; k < base+300; k++ {
				_, ok := tr.Find(th, k)
				if want := (k-base)%2 == 1; ok != want {
					fail <- "find wrong"
					return
				}
			}
		}(th, base)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	th := mem.NewThread()
	if err := tr.Validate(th); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Contents(th)); got != threads*150 {
		t.Fatalf("size %d, want %d", got, threads*150)
	}
}

func TestFlushesConstantPerOp(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 8192; k++ {
		tr.Insert(th, k, k)
	}
	before := mem.Stats()
	tr.Find(th, 8000)
	d := mem.Stats().Sub(before)
	if d.Flushes > 6 {
		t.Fatalf("find flushed %d cells, want <= 6", d.Flushes)
	}
}

func TestMemoryReclamation(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for i := 0; i < 20000; i++ {
		k := uint64(i%8) + 1
		tr.Insert(th, k, k)
		tr.Delete(th, k)
	}
	if hw := tr.Nodes().HighWater(); hw > 8192 {
		t.Fatalf("arena grew to %d handles over an 8-key churn", hw)
	}
}

func TestRecoverCompletesFlaggedDeletes(t *testing.T) {
	mem := pmem.NewTracked()
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for _, k := range []uint64{20, 40, 60, 80} {
		tr.Insert(th, k, k)
	}
	// Stage a delete of 40 interrupted right after injection: flag the
	// leaf's incoming edge by hand.
	sr := &tr.trs[th.ID].sr
	tr.traverse(th, 40, sr)
	if !th.CAS(sr.intoLeaf, sr.leafEdge, pmem.WithMark(pmem.Dirty(sr.leafEdge))) {
		t.Fatalf("staging flag failed")
	}
	mem.PersistAll()
	if tr.CountFlagged(th) != 1 {
		t.Fatalf("flagged = %d", tr.CountFlagged(th))
	}
	tr.Recover(th)
	if tr.CountFlagged(th) != 0 {
		t.Fatalf("flag survives recovery")
	}
	if _, ok := tr.Find(th, 40); ok {
		t.Fatalf("recovery did not complete the flagged delete")
	}
	for _, k := range []uint64{20, 60, 80} {
		if _, ok := tr.Find(th, k); !ok {
			t.Fatalf("recovery lost key %d", k)
		}
	}
	if err := tr.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverClearsStrayTags(t *testing.T) {
	mem := pmem.NewTracked()
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for _, k := range []uint64{20, 40} {
		tr.Insert(th, k, k)
	}
	// Stage an interrupted cleanup: tag an edge without any flag.
	sr := &tr.trs[th.ID].sr
	tr.traverse(th, 20, sr)
	parN := tr.node(sr.par)
	sv := th.Load(&parN.Right)
	th.CAS(&parN.Right, sv, pmem.WithTag(pmem.Dirty(sv)))
	mem.PersistAll()
	tr.Recover(th)
	if pmem.Tagged(th.Load(&parN.Right)) {
		t.Fatalf("stray tag survives recovery")
	}
	// The edge must be modifiable again.
	if !tr.Insert(th, 30, 30) {
		t.Fatalf("insert after recovery failed")
	}
	if err := tr.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRangePanics(t *testing.T) {
	tr, th := newTree(persist.None{})
	for _, bad := range []uint64{0, Inf0, Inf1, Inf2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("key %d accepted", bad)
				}
			}()
			tr.Insert(th, bad, 0)
		}()
	}
}

package stack_test

// Crash torture for the Treiber stack under the line-granular crash model:
// random concurrent pushes/pops, a crash at an arbitrary point (with random
// whole-line evictions), recovery, then the LIFO durable-linearizability
// check of crashtest.RunStack.

import (
	"testing"

	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/stack"
)

func tortureRounds(t *testing.T) int {
	if testing.Short() {
		return 3
	}
	return 8
}

func runStackTorture(t *testing.T, name string, pol persist.Policy) {
	t.Helper()
	for r := 0; r < tortureRounds(t); r++ {
		res := crashtest.RunStack(crashtest.OrderOptions{
			Workers:        4,
			OpsBeforeCrash: 300,
			AddRatio:       60,
			Prefill:        16,
			EvictProb:      0.25,
			Seed:           int64(r) + 1,
		}, func(mem *pmem.Memory) crashtest.StackTarget {
			return stack.New(mem, pol)
		})
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				t.Errorf("%s round %d: %s", name, r, v)
			}
			t.Fatalf("%s round %d: %d violations (completed=%d inflight=%d survivors=%d)",
				name, r, len(res.Violations), res.Completed, res.InFlight, res.Survivors)
		}
		if res.Completed < 300 {
			t.Fatalf("%s round %d: only %d ops completed", name, r, res.Completed)
		}
	}
}

// runStackTortureFile repeats the rounds against the WAL-backed file
// directory: the crash abandons the memory (SIGKILL semantics), and the
// checker runs on a stack reopened from the files.
func runStackTortureFile(t *testing.T, name string, pol persist.Policy) {
	t.Helper()
	for r := 0; r < tortureRounds(t); r++ {
		res := crashtest.RunStack(crashtest.OrderOptions{
			Workers:        4,
			OpsBeforeCrash: 300,
			AddRatio:       60,
			Prefill:        16,
			Seed:           int64(r) + 1,
			Dir:            t.TempDir(),
		}, func(mem *pmem.Memory) crashtest.StackTarget {
			return stack.New(mem, pol)
		})
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				t.Errorf("%s round %d: %s", name, r, v)
			}
			t.Fatalf("%s round %d: %d violations (completed=%d inflight=%d survivors=%d)",
				name, r, len(res.Violations), res.Completed, res.InFlight, res.Survivors)
		}
		if res.Completed < 300 {
			t.Fatalf("%s round %d: only %d ops completed", name, r, res.Completed)
		}
	}
}

func TestCrashTortureStack(t *testing.T) {
	runStackTorture(t, "nvtraverse", persist.NVTraverse{})
}

func TestCrashTortureStackFile(t *testing.T) {
	runStackTortureFile(t, "nvtraverse-file", persist.NVTraverse{})
}

func TestCrashTortureStackIzraelevitz(t *testing.T) {
	runStackTorture(t, "izraelevitz", persist.Izraelevitz{})
}

package stack

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newStack(pol persist.Policy) (*Stack, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	return New(mem, pol), mem.NewThread()
}

func TestLIFO(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			s, th := newStack(pol)
			if _, ok := s.Pop(th); ok {
				t.Fatalf("empty stack popped")
			}
			for v := uint64(1); v <= 50; v++ {
				s.Push(th, v)
			}
			for v := uint64(50); v >= 1; v-- {
				got, ok := s.Pop(th)
				if !ok || got != v {
					t.Fatalf("Pop = %d,%v want %d", got, ok, v)
				}
			}
			if _, ok := s.Pop(th); ok {
				t.Fatalf("drained stack popped")
			}
		})
	}
}

func TestQuickAgainstSlice(t *testing.T) {
	type op struct {
		Push bool
		Val  uint16
	}
	f := func(ops []op) bool {
		s, th := newStack(persist.NVTraverse{})
		var model []uint64
		for _, o := range ops {
			if o.Push {
				s.Push(th, uint64(o.Val)+1)
				model = append(model, uint64(o.Val)+1)
			} else {
				got, ok := s.Pop(th)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if !ok || got != want {
						return false
					}
				}
			}
		}
		return s.Len(th) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	s := New(mem, persist.NVTraverse{})
	const threads = 6
	var wg sync.WaitGroup
	var got sync.Map
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		wg.Add(1)
		go func(i int, th *pmem.Thread) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				s.Push(th, uint64(i*2000+j)+1)
				if v, ok := s.Pop(th); ok {
					if _, dup := got.LoadOrStore(v, i); dup {
						t.Errorf("value %d popped twice", v)
					}
				}
			}
		}(i, th)
	}
	wg.Wait()
	// Drain: everything left must be unique too.
	th := mem.NewThread()
	for {
		v, ok := s.Pop(th)
		if !ok {
			break
		}
		if _, dup := got.LoadOrStore(v, -1); dup {
			t.Fatalf("value %d popped twice at drain", v)
		}
	}
}

func TestCrashDurability(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 8})
		s := New(mem, persist.NVTraverse{})
		th := mem.NewThread()
		for v := uint64(1); v <= 30; v++ {
			s.Push(th, v)
		}
		for i := 0; i < 10; i++ {
			s.Pop(th)
		}
		mem.Crash()
		mem.FinishCrash(0, seed)
		mem.Restart()
		rec := mem.NewThread()
		s.Recover(rec)
		got := s.Contents(rec)
		if len(got) != 20 || got[0] != 20 {
			t.Fatalf("seed %d: after crash top=%v len=%d, want top=20 len=20",
				seed, got[0], len(got))
		}
		// Still operational.
		s.Push(rec, 99)
		if v, ok := s.Pop(rec); !ok || v != 99 {
			t.Fatalf("post-recovery push/pop broken")
		}
	}
}

func TestPopFlushCountConstant(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	s := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for v := uint64(1); v <= 100; v++ {
		s.Push(th, v)
	}
	before := mem.Stats()
	s.Pop(th)
	d := mem.Stats().Sub(before)
	if d.Flushes > 4 || d.Fences > 3 {
		t.Fatalf("pop cost: %d flushes %d fences", d.Flushes, d.Fences)
	}
}

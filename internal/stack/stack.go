// Package stack implements the Treiber stack (1986) in the traversal form
// of the NVTraverse paper, which lists stacks among the structures the
// class captures. The core tree is the chain of nodes under the top
// anchor; the traversal is degenerate (the anchor read is both findEntry
// and traverse, returning the top node), making the stack a minimal
// worked example of the transformation:
//
//	push: init node (flushed) → fence → CAS top → flush top → fence
//	pop:  read top + top.Next, flush both + fence (Protocol 1; the pop's
//	      CAS expectation and return value depend on them) → CAS top →
//	      flush top → fence
package stack

import (
	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Node is one stack node; Value is immutable after initialization. Padded
// to a full 64-byte line: the persistence model is line-granular, and
// nodes must not share their crash fate (see list.Node).
type Node struct {
	Value pmem.Cell
	Next  pmem.Cell
	_     [48]byte
}

// Stack is the durable Treiber stack.
type Stack struct {
	mem *pmem.Memory
	dom *epoch.Domain
	ar  *arena.Arena[Node]
	pol persist.Policy
	// top lives on a dedicated registered line so the durable backend can
	// address it on disk.
	top *pmem.Cell // persistent root: ref of the top node (0 when empty)
}

// New creates an empty stack.
func New(mem *pmem.Memory, pol persist.Policy) *Stack {
	dom := epoch.New(mem.MaxThreads())
	s := &Stack{
		mem: mem,
		dom: dom,
		ar:  arena.New[Node](dom, mem.MaxThreads()),
		pol: pol,
	}
	s.top = &mem.NewSpace().Lines(0, 1)[0][0]
	s.ar.Persist(mem.NewSpace())
	t := mem.NewThread()
	t.Store(s.top, pmem.NilRef)
	t.Flush(s.top)
	t.Fence()
	return s
}

func (s *Stack) node(idx uint64) *Node { return s.ar.Get(idx) }

// Push adds value on top.
func (s *Stack) Push(t *pmem.Thread, value uint64) {
	s.dom.Enter(t.ID)
	defer s.dom.Exit(t.ID)
	pol := s.pol
	idx := s.ar.Alloc(t.ID)
	n := s.node(idx)
	t.Store(&n.Value, value)
	pol.InitWrite(t, &n.Value)
	for {
		tv := t.Load(s.top)
		pol.TraverseRead(t, s.top)
		cells := [...]*pmem.Cell{s.top}
		pol.PostTraverse(t, cells[:])
		t.Store(&n.Next, pmem.ClearTags(tv))
		pol.InitWrite(t, &n.Next)
		pol.BeforeCAS(t)
		ok := t.CAS(s.top, tv, pmem.MakeRef(idx))
		pol.Wrote(t, s.top)
		pol.BeforeReturn(t)
		if ok {
			t.CountOp()
			return
		}
	}
}

// Pop removes and returns the top value; ok=false when empty.
func (s *Stack) Pop(t *pmem.Thread) (value uint64, ok bool) {
	s.dom.Enter(t.ID)
	defer s.dom.Exit(t.ID)
	pol := s.pol
	for {
		tv := t.Load(s.top)
		pol.TraverseRead(t, s.top)
		if pmem.IsNil(tv) {
			cells := [...]*pmem.Cell{s.top}
			pol.PostTraverse(t, cells[:])
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		topN := s.node(pmem.RefIndex(tv))
		next := t.Load(&topN.Next)
		pol.TraverseRead(t, &topN.Next)
		cells := [...]*pmem.Cell{s.top, &topN.Next}
		pol.PostTraverse(t, cells[:])
		v := t.Load(&topN.Value) // immutable after publication
		pol.BeforeCAS(t)
		swung := t.CAS(s.top, tv, pmem.ClearTags(next))
		pol.Wrote(t, s.top)
		pol.BeforeReturn(t)
		if swung {
			s.ar.Retire(t.ID, pmem.RefIndex(tv))
			t.CountOp()
			return v, true
		}
	}
}

// Recover is a no-op beyond validation: the stack's whole state is its
// core tree (top anchor plus chain), all persisted by the protocol.
func (s *Stack) Recover(t *pmem.Thread) {}

// Contents returns the values top to bottom (quiescent use only).
func (s *Stack) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	cur := pmem.RefIndex(t.Load(s.top))
	for cur != 0 {
		out = append(out, t.Load(&s.node(cur).Value))
		cur = pmem.RefIndex(t.Load(&s.node(cur).Next))
	}
	return out
}

// Len counts the stacked values (quiescent use only).
func (s *Stack) Len(t *pmem.Thread) int { return len(s.Contents(t)) }

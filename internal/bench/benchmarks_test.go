package bench

// Go benchmarks over the panel and flush-accounting machinery. CI runs
// them once per commit (`go test -run=NONE -bench=. -benchtime=1x` with a
// tiny NVBENCH_DUR), so the ablation panels and the flush/elide counters
// are exercised end to end on every change and cannot silently rot.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

func benchCfg(kind core.Kind, policy, wl string) Config {
	return Config{
		Kind: kind, Policy: policy, Profile: pmem.ProfileZero,
		Threads: 2, Range: 512, Workload: wl,
		Duration: 20 * time.Millisecond, // NVBENCH_DUR overrides
	}
}

// BenchmarkFlushAblationListA reports the paper's headline quantity —
// issued flushes per operation, NVTraverse vs flush-everything — for the
// traversal-heaviest structure on the write-heavy YCSB-A mix.
func BenchmarkFlushAblationListA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nv, err := Run(benchCfg(core.KindList, "nvtraverse", "A"))
		if err != nil {
			b.Fatal(err)
		}
		iz, err := Run(benchCfg(core.KindList, "izraelevitz", "A"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(nv.FlushPerOp, "nv-flush/op")
		b.ReportMetric(nv.ElidePerOp, "nv-elide/op")
		b.ReportMetric(iz.FlushPerOp, "iz-flush/op")
		if nv.FlushPerOp > 0 {
			b.ReportMetric(iz.FlushPerOp/nv.FlushPerOp, "iz/nv-ratio")
		}
	}
}

// BenchmarkFlushStatPanelRow runs one row of each flush-ablation panel so
// the panel plumbing itself stays executable.
func BenchmarkFlushStatPanelRow(b *testing.B) {
	o := PanelOptions{SizeScale: 1024, ThreadCap: 2, Duration: 10 * time.Millisecond}
	panels := FlushStatPanels(o)
	if len(panels) == 0 {
		b.Fatal("no flush-stat panels")
	}
	for i := 0; i < b.N; i++ {
		for _, p := range panels {
			res, err := Run(p.Configs[0])
			if err != nil {
				b.Fatalf("panel %s: %v", p.ID, err)
			}
			b.ReportMetric(res.FlushPerOp, p.ID+"-flush/op")
		}
	}
}

// BenchmarkEngineYCSBA drives the sharded engine through the YCSB runner,
// covering the engine-side flush accounting (Stats().Total aggregation).
func BenchmarkEngineYCSBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(core.KindHash, "nvtraverse", "A")
		cfg.Shards = 4
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlushPerOp, "flush/op")
		b.ReportMetric(res.ElidePerOp, "elide/op")
		b.ReportMetric(res.FencePerOp, "fence/op")
	}
}

// BenchmarkYCSBScanSkiplist runs YCSB-E on the skiplist, single structure
// vs 4-shard engine (merged scans), reporting the per-op flush cost of the
// destination-only scan persistence.
func BenchmarkYCSBScanSkiplist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single, err := Run(benchCfg(core.KindSkiplist, "nvtraverse", "E"))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg(core.KindSkiplist, "nvtraverse", "E")
		cfg.Shards = 4
		sharded, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(single.FlushPerOp, "single-flush/op")
		b.ReportMetric(sharded.FlushPerOp, "engine-flush/op")
	}
}

// BenchmarkYCSBAtomicRMW runs the RMW-heavy workload U through the atomic
// in-place Update path.
func BenchmarkYCSBAtomicRMW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(benchCfg(core.KindHash, "nvtraverse", "U"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlushPerOp, "flush/op")
		b.ReportMetric(res.FencePerOp, "fence/op")
	}
}

package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

func ycsbCfg(wl string, shards int) Config {
	return Config{
		Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
		Threads: 2, Range: 512, Duration: quickDur(15 * time.Millisecond),
		Workload: wl, Shards: shards,
	}
}

func TestWorkloadsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Workloads() {
		sum := w.ReadPct + w.UpdatePct + w.InsertPct + w.RMWPct + w.ScanPct + w.AtomicPct
		if sum != 100 {
			t.Fatalf("workload %s percentages sum to %d", w.Name, sum)
		}
		seen[w.Name] = true
	}
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "U"} {
		if !seen[name] {
			t.Fatalf("workload %s missing", name)
		}
	}
	if _, ok := WorkloadByName("ycsb-a"); !ok {
		t.Fatal("ycsb-a alias not resolved")
	}
	if _, ok := WorkloadByName("ycsb-e"); !ok {
		t.Fatal("ycsb-e alias not resolved")
	}
}

func TestRunYCSBSingleStructure(t *testing.T) {
	for _, w := range Workloads() {
		cfg := ycsbCfg(w.Name, 0)
		if w.ScanPct > 0 {
			cfg.Kind = core.KindSkiplist // scans need an ordered kind
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: zero ops", w.Name)
		}
		if res.FlushPerOp == 0 {
			t.Fatalf("%s: nvtraverse never flushed", w.Name)
		}
		if res.Workload != w.Name {
			t.Fatalf("result workload = %q, want %q", res.Workload, w.Name)
		}
	}
}

// TestRunYCSBScans: workload E runs on every ordered kind, single and
// sharded, under all three durable policies — and is rejected with a clear
// error on the unordered hash table and the onefile baseline.
func TestRunYCSBScans(t *testing.T) {
	for _, kind := range core.OrderedKinds() {
		for _, pol := range []string{"nvtraverse", "izraelevitz", "logfree"} {
			for _, shards := range []int{0, 4} {
				cfg := ycsbCfg("E", shards)
				cfg.Kind = kind
				cfg.Policy = pol
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", kind, pol, shards, err)
				}
				if res.Ops == 0 {
					t.Fatalf("%s/%s/%d: zero ops", kind, pol, shards)
				}
			}
		}
	}
	for _, shards := range []int{0, 4} {
		cfg := ycsbCfg("E", shards)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("shards=%d: YCSB E on hash accepted", shards)
		}
	}
	cfg := ycsbCfg("E", 0)
	cfg.Kind = core.KindList
	cfg.Policy = "onefile"
	if _, err := Run(cfg); err == nil {
		t.Fatal("YCSB E on onefile accepted")
	}
}

// TestRunYCSBAtomicRMW: workload U exercises the in-place Update path on
// every kind (hash included — RMW needs no order).
func TestRunYCSBAtomicRMW(t *testing.T) {
	for _, kind := range core.Kinds() {
		for _, shards := range []int{0, 2} {
			cfg := ycsbCfg("U", shards)
			cfg.Kind = kind
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, shards, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s/%d: zero ops", kind, shards)
			}
		}
	}
	cfg := ycsbCfg("U", 0)
	cfg.Kind = core.KindList
	cfg.Policy = "onefile"
	if _, err := Run(cfg); err == nil {
		t.Fatal("YCSB U on onefile accepted")
	}
}

func TestRunYCSBShardedEngine(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, wl := range []string{"A", "C", "D"} {
			res, err := Run(ycsbCfg(wl, shards))
			if err != nil {
				t.Fatalf("%s/%d: %v", wl, shards, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s/%d shards: zero ops", wl, shards)
			}
		}
	}
}

func TestRunYCSBUnknownWorkload(t *testing.T) {
	if _, err := Run(ycsbCfg("Z", 0)); err == nil {
		t.Fatal("bogus workload accepted")
	}
	// onefile has no policy object, so it cannot back the engine.
	cfg := ycsbCfg("A", 2)
	cfg.Policy = "onefile"
	if _, err := Run(cfg); err == nil {
		t.Fatal("onefile engine accepted")
	}
}

func TestEngineMixWithoutWorkload(t *testing.T) {
	cfg := ycsbCfg("", 4)
	cfg.UpdatePct = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("zero ops")
	}
	if res.Workload != "" || res.Shards != 4 {
		t.Fatalf("result mislabeled: wl=%q shards=%d", res.Workload, res.Shards)
	}
}

// TestBatchedReadsCutFences: with read batching on the engine, the commit
// fence is paid once per shard batch instead of once per read, so
// fence/op must drop measurably on a read-only workload.
func TestBatchedReadsCutFences(t *testing.T) {
	base := ycsbCfg("C", 4)
	base.Threads = 2
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.BatchSize = 32
	b, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Ops == 0 || b.Ops == 0 {
		t.Fatalf("zero ops: plain=%d batched=%d", plain.Ops, b.Ops)
	}
	if b.FencePerOp > plain.FencePerOp*0.7 {
		t.Fatalf("batching did not cut fences: %.3f/op vs %.3f/op",
			b.FencePerOp, plain.FencePerOp)
	}
}

func TestNVBenchDurOverride(t *testing.T) {
	t.Setenv("NVBENCH_DUR", "7ms")
	if got := EffectiveDuration(5 * time.Second); got != 7*time.Millisecond {
		t.Fatalf("EffectiveDuration = %v", got)
	}
	t.Setenv("NVBENCH_DUR", "garbage")
	if got := EffectiveDuration(time.Second); got != time.Second {
		t.Fatalf("garbage override applied: %v", got)
	}
}

func TestShardPanelsShape(t *testing.T) {
	o := DefaultPanelOptions()
	for _, id := range []string{"sA", "sB", "sC"} {
		p, err := PanelByID(o, id)
		if err != nil {
			t.Fatal(err)
		}
		shardCounts := map[int]bool{}
		for _, c := range p.Configs {
			if c.Workload != id[1:] {
				t.Fatalf("%s: config workload %q", id, c.Workload)
			}
			shardCounts[c.Shards] = true
		}
		for _, want := range []int{1, 4, 16} {
			if !shardCounts[want] {
				t.Fatalf("%s: shard count %d missing", id, want)
			}
		}
	}
}

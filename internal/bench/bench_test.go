package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

// quickDur shrinks measurement durations under -short (and every duration
// still honors the NVBENCH_DUR override via EffectiveDuration).
func quickDur(d time.Duration) time.Duration {
	if testing.Short() {
		return d / 4
	}
	return d
}

func quickCfg(kind core.Kind, policy string) Config {
	return Config{
		Kind: kind, Policy: policy, Profile: pmem.ProfileZero,
		Threads: 2, Range: 256, UpdatePct: 20,
		Duration: quickDur(20 * time.Millisecond),
	}
}

func TestRunAllKindsAllPolicies(t *testing.T) {
	for _, kind := range core.Kinds() {
		for _, pol := range []string{"none", "nvtraverse", "izraelevitz", "logfree"} {
			res, err := Run(quickCfg(kind, pol))
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, pol, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s/%s: zero ops", kind, pol)
			}
			if pol == "none" && res.FlushPerOp != 0 {
				t.Fatalf("%s/none flushed", kind)
			}
			if pol != "none" && res.FlushPerOp == 0 {
				t.Fatalf("%s/%s never flushed", kind, pol)
			}
		}
	}
}

func TestRunOneFile(t *testing.T) {
	for _, kind := range []core.Kind{core.KindList, core.KindEllenBST} {
		res, err := Run(quickCfg(kind, "onefile"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops == 0 {
			t.Fatalf("onefile %s: zero ops", kind)
		}
	}
	if _, err := Run(quickCfg(core.KindSkiplist, "onefile")); err == nil {
		t.Fatalf("onefile skiplist accepted")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := Run(quickCfg(core.KindList, "bogus")); err == nil {
		t.Fatalf("bogus policy accepted")
	}
}

func TestIzraelevitzFlushesFarMoreThanNVTraverse(t *testing.T) {
	// The paper's central quantitative claim, as a test: on a list whose
	// traversals are long, the general transformation flushes at least an
	// order of magnitude more than NVTraverse per operation.
	nv, err := Run(Config{Kind: core.KindList, Policy: "nvtraverse",
		Profile: pmem.ProfileZero, Threads: 2, Range: 2048, UpdatePct: 20,
		Duration: quickDur(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	iz, err := Run(Config{Kind: core.KindList, Policy: "izraelevitz",
		Profile: pmem.ProfileZero, Threads: 2, Range: 2048, UpdatePct: 20,
		Duration: quickDur(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if iz.FlushPerOp < 10*nv.FlushPerOp {
		t.Fatalf("flush/op: izraelevitz %.1f vs nvtraverse %.1f — ratio too small",
			iz.FlushPerOp, nv.FlushPerOp)
	}
}

func TestPanelsComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, p := range Panels(DefaultPanelOptions()) {
		if p.ID == "" || len(p.Configs) == 0 {
			t.Fatalf("panel %q empty", p.ID)
		}
		ids[p.ID] = true
	}
	for _, want := range []string{"5a", "5b", "5c", "5d", "5e", "5f",
		"6g", "6h", "6i", "6j", "6k", "6l", "6m", "6n", "6o",
		"sA", "sB", "sC"} {
		if !ids[want] {
			t.Fatalf("panel %s missing", want)
		}
	}
	if _, err := PanelByID(DefaultPanelOptions(), "5a"); err != nil {
		t.Fatal(err)
	}
	if _, err := PanelByID(DefaultPanelOptions(), "9z"); err == nil {
		t.Fatalf("unknown panel accepted")
	}
}

func TestRowAndCSVFormat(t *testing.T) {
	r := Result{Config: quickCfg(core.KindList, "nvtraverse"), Ops: 1000, Mops: 1.5}
	if !strings.Contains(r.Row(), "nvtraverse") || !strings.Contains(r.CSV(), "nvtraverse") {
		t.Fatalf("formatting lost the policy name")
	}
	if !strings.Contains(Header(), "flush/op") || !strings.Contains(CSVHeader(), "flush_per_op") {
		t.Fatalf("headers incomplete")
	}
	if !strings.Contains(Header(), "elide/op") || !strings.Contains(CSVHeader(), "elide_per_op") {
		t.Fatalf("headers missing the flush-coalescing column")
	}
	if len(strings.Split(r.CSV(), ",")) != len(strings.Split(CSVHeader(), ",")) {
		t.Fatalf("CSV row and header column counts differ")
	}
}

// TestFlushAblationNVTraverseWins pins the acceptance criterion of the
// flush-accounting work: on the skewed YCSB A/B/C workloads, the
// NVTraverse transformation issues measurably fewer clwbs per operation
// than the flush-everything transformation, for a traversal-heavy
// structure (list) and a tree (nmbst).
func TestFlushAblationNVTraverseWins(t *testing.T) {
	for _, kind := range []core.Kind{core.KindList, core.KindNMBST} {
		for _, wl := range []string{"A", "B", "C"} {
			run := func(policy string) Result {
				cfg := quickCfg(kind, policy)
				cfg.Workload = wl
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", kind, policy, wl, err)
				}
				if res.Ops == 0 {
					t.Fatalf("%s/%s/%s: no operations completed", kind, policy, wl)
				}
				return res
			}
			nv := run("nvtraverse")
			iz := run("izraelevitz")
			if iz.FlushPerOp < 1.5*nv.FlushPerOp {
				t.Errorf("%s YCSB-%s: izraelevitz %.2f flushes/op vs nvtraverse %.2f — not measurably fewer",
					kind, wl, iz.FlushPerOp, nv.FlushPerOp)
			}
			if iz.FencePerOp <= nv.FencePerOp {
				t.Errorf("%s YCSB-%s: izraelevitz %.2f fences/op vs nvtraverse %.2f",
					kind, wl, iz.FencePerOp, nv.FencePerOp)
			}
		}
	}
}

func TestFlushStatPanelsAndSummary(t *testing.T) {
	o := DefaultPanelOptions()
	panels := FlushStatPanels(o)
	if len(panels) != 3 {
		t.Fatalf("FlushStatPanels = %d panels, want 3 (fA, fB, fC)", len(panels))
	}
	for _, p := range panels {
		if len(p.Configs) == 0 {
			t.Fatalf("panel %s empty", p.ID)
		}
	}
	rs := []Result{
		{Config: Config{Kind: core.KindList, Policy: "nvtraverse", Workload: "A"}, FlushPerOp: 4, FencePerOp: 3},
		{Config: Config{Kind: core.KindList, Policy: "izraelevitz", Workload: "A"}, FlushPerOp: 80, FencePerOp: 81},
	}
	sum := FlushStatSummary(rs)
	if len(sum) != 1 || !strings.Contains(sum[0], "20.0x") {
		t.Fatalf("FlushStatSummary = %q", sum)
	}
	// A lone result without its counterpart produces no line.
	if got := FlushStatSummary(rs[:1]); len(got) != 0 {
		t.Fatalf("summary of unpaired result = %q", got)
	}
}

func TestDefaultThreads(t *testing.T) {
	got := DefaultThreads([]int{1, 2, 1 << 20})
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("DefaultThreads = %v", got)
	}
	for _, v := range got {
		if v == 1<<20 {
			t.Fatalf("absurd thread count survived")
		}
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(1000, 0.99)
	mem := pmem.NewFast(pmem.ProfileZero)
	th := mem.NewThread()
	counts := map[uint64]int{}
	for i := 0; i < 200000; i++ {
		k := z.Next(th.Rand())
		if k < 1 || k > 1000 {
			t.Fatalf("zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Skew: the hottest key must dominate; with theta=0.99 over 1000 keys
	// key 1 gets roughly 1/zeta(1000) ~ 13% of the draws.
	if counts[1] < 10000 {
		t.Fatalf("zipf not skewed: count[1] = %d", counts[1])
	}
	if counts[1] <= counts[500]*10 {
		t.Fatalf("zipf tail too heavy: head %d vs mid %d", counts[1], counts[500])
	}
}

func TestZipfLowSkewCoversRange(t *testing.T) {
	z := NewZipf(64, 0.01)
	mem := pmem.NewFast(pmem.ProfileZero)
	th := mem.NewThread()
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		seen[z.Next(th.Rand())] = true
	}
	if len(seen) < 60 {
		t.Fatalf("low-skew zipf only reached %d/64 keys", len(seen))
	}
}

func TestZipfLargeRangeConstruction(t *testing.T) {
	z := NewZipf(1<<24, 0.99) // exercises the Euler–Maclaurin tail
	if k := z.Next(123456789); k < 1 || k > 1<<24 {
		t.Fatalf("large-range zipf out of bounds: %d", k)
	}
}

package bench

import "math"

// Zipf is a Zipf(θ) key-distribution generator over [1, n], using the
// Gray et al. rejection-free inverse-CDF approximation that the YCSB core
// workloads use. The paper's evaluation draws keys uniformly; zipfian
// access is provided as an extension for skew studies (hot keys stress
// exactly the cache-line-invalidation behaviour the paper discusses for
// clwb).
//
// Zipf is not safe for concurrent use; give each worker its own (they are
// cheap and deterministic given the thread RNG).
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf builds a generator over [1, n] with skew theta in [0, 1).
// theta = 0 degenerates to (approximately) uniform; YCSB uses 0.99.
func NewZipf(n uint64, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// O(n) but cached per generator; benchmark ranges are modest. For very
	// large n an Euler–Maclaurin approximation keeps construction cheap.
	if n > 1<<22 {
		// ζ_n(θ) ≈ ζ_m(θ) + ∫_m^n x^-θ dx for a fixed prefix m.
		const m = 1 << 22
		s := zeta(m, theta)
		if theta == 1 {
			return s + math.Log(float64(n)/float64(m))
		}
		return s + (math.Pow(float64(n), 1-theta)-math.Pow(float64(m), 1-theta))/(1-theta)
	}
	s := 0.0
	for i := uint64(1); i <= n; i++ {
		s += 1.0 / math.Pow(float64(i), theta)
	}
	return s
}

// Next maps a uniform random u64 to a zipf-distributed key in [1, n].
func (z *Zipf) Next(r uint64) uint64 {
	u := float64(r>>11) / float64(1<<53) // uniform in [0,1)
	uz := u * z.zetan
	if uz < 1.0 {
		return 1
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 2
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 1 {
		k = 1
	}
	if k > z.n {
		k = z.n
	}
	return k
}

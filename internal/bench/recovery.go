// Recovery-time benchmark row: how fast a file-backed store comes back.
// The row writes a fixed batch of upserts through a 4-shard engine on a
// throwaway directory, closes it without a checkpoint (so the entire
// history sits in the WALs), reopens it, and reports the replay cost the
// open measured — records and bytes replayed, and records/s as the row's
// throughput (replay runs one goroutine per shard, so elapsed is the
// slowest shard's wall clock).
package bench

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// recoveryOps is the write count behind the recovery row. Fixed rather
// than duration-scaled: replay throughput is deterministic in the record
// count, so a fixed corpus gives comparable rows across captures.
const recoveryOps = 20000

// RecoveryRow builds, reopens and measures; see the package comment above.
func RecoveryRow(panel string) (JSONRow, error) {
	dir, err := os.MkdirTemp("", "nvbench-recovery")
	if err != nil {
		return JSONRow{}, err
	}
	defer os.RemoveAll(dir)
	cfg := store.Config{
		Kind:     core.KindHash,
		Policy:   persist.NVTraverse{},
		Profile:  pmem.ProfileZero,
		Shards:   4,
		SizeHint: recoveryOps,
		Dir:      dir,
	}
	st, err := store.Open(cfg)
	if err != nil {
		return JSONRow{}, err
	}
	s := st.NewSession()
	for k := uint64(1); k <= recoveryOps; k++ {
		s.Put(k, k^0xdecaf)
	}
	if err := st.Close(); err != nil {
		return JSONRow{}, err
	}

	// Reopen (replay is idempotent: the store is closed again without
	// writes, so the WAL is intact) and keep the fastest of three replays.
	// Elapsed is the slowest shard's wall clock across four goroutines; on
	// a small machine one GC cycle or a leftover background goroutine from
	// an earlier suite row can inflate a single measurement several-fold,
	// and the regression gate needs the row to reflect replay cost, not
	// scheduler luck.
	var rs pmem.ReplayStats
	for i := 0; i < 3; i++ {
		st2, err := store.Open(cfg)
		if err != nil {
			return JSONRow{}, err
		}
		cur := st2.ReplayStats()
		if err := st2.Close(); err != nil {
			return JSONRow{}, err
		}
		if cur.Records == 0 || cur.Elapsed <= 0 {
			return JSONRow{}, fmt.Errorf("recovery row replayed nothing (stats %+v)", cur)
		}
		if i == 0 || cur.Elapsed < rs.Elapsed {
			rs = cur
		}
	}
	return JSONRow{
		Panel:         panel,
		Kind:          string(cfg.Kind),
		Policy:        cfg.Policy.Name(),
		Profile:       cfg.Profile.Name,
		Threads:       cfg.Shards, // replay parallelism
		Shards:        cfg.Shards,
		Ops:           rs.Records,
		OpsPerSec:     float64(rs.Records) / rs.Elapsed.Seconds(),
		ReplayRecords: rs.Records,
		ReplayBytes:   rs.Bytes,
	}, nil
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

// Panel is one figure panel of the paper's evaluation: a sweep of
// configurations whose results form the panel's series.
type Panel struct {
	ID      string // e.g. "5a"
	Title   string
	Configs []Config
}

// PanelOptions scales the paper's grids to the host.
//
// SizeScale divides the paper's structure sizes (the paper prefills up to
// 8M keys on a 48-core Optane box; dividing sizes preserves the relative
// ordering of the competitors because every competitor shares the same
// substrate). ThreadCap truncates thread sweeps. Duration is per point.
type PanelOptions struct {
	SizeScale int
	ThreadCap int
	Duration  time.Duration
}

// DefaultPanelOptions are sized for a laptop-class host.
func DefaultPanelOptions() PanelOptions {
	return PanelOptions{SizeScale: 16, ThreadCap: 8, Duration: 120 * time.Millisecond}
}

func (o PanelOptions) size(paper uint64) uint64 {
	s := paper / uint64(o.SizeScale)
	if s < 64 {
		s = 64
	}
	return s
}

func (o PanelOptions) threads(paper []int) []int {
	var out []int
	for _, t := range paper {
		if t <= o.ThreadCap {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// standard competitor sets per panel, in the paper's order.
var (
	nvramPolicies = []string{"none", "nvtraverse", "izraelevitz", "onefile"}
	dramPolicies  = []string{"none", "nvtraverse", "izraelevitz", "logfree"}
)

// Panels returns every table/figure panel of the paper's evaluation. The
// per-panel comments give the paper's exact workload; sizes and threads
// are scaled by o.
func Panels(o PanelOptions) []Panel {
	var ps []Panel
	add := func(id, title string, cfgs []Config) {
		ps = append(ps, Panel{ID: id, Title: title, Configs: cfgs})
	}
	grid := func(kind core.Kind, profile pmem.Profile, policies []string,
		threads []int, sizes []uint64, updates []int) []Config {
		var cs []Config
		for _, pol := range policies {
			if pol == "onefile" && kind != core.KindList && kind != core.KindEllenBST && kind != core.KindNMBST {
				continue
			}
			for _, th := range threads {
				for _, sz := range sizes {
					for _, up := range updates {
						cs = append(cs, Config{
							Kind: kind, Policy: pol, Profile: profile,
							Threads: th, Range: sz, UpdatePct: up,
							Duration: o.Duration,
						})
					}
				}
			}
		}
		return cs
	}

	// --- Figure 5: NVRAM machine (Optane profile) ---
	// (a) Linked-List, varying threads, 80% lookups, 512 keys (range 1024).
	add("5a", "List scalability (NVRAM): 80% lookups, range 1024",
		grid(core.KindList, pmem.ProfileNVRAM, nvramPolicies,
			o.threads([]int{1, 2, 4, 8, 16, 24, 32, 48}), []uint64{1024}, []int{20}))
	// (b) Linked-List, varying size, 16 threads, 80% lookups.
	add("5b", "List size sweep (NVRAM): 16 threads, 80% lookups",
		grid(core.KindList, pmem.ProfileNVRAM, nvramPolicies,
			o.threads([]int{16}), []uint64{256, 512, 1024, 2048, 4096, 8192}, []int{20}))
	// (c) Linked-List, varying update pct, 16 threads, 500 nodes (range 1000).
	add("5c", "List update% sweep (NVRAM): 16 threads, range 1000",
		grid(core.KindList, pmem.ProfileNVRAM, nvramPolicies,
			o.threads([]int{16}), []uint64{1000}, []int{0, 5, 10, 20, 50, 100}))
	// (d) Hash-Table, varying update pct, 16 threads, 1M nodes (range 2M).
	add("5d", "Hash update% sweep (NVRAM): 16 threads, range 2M",
		grid(core.KindHash, pmem.ProfileNVRAM, []string{"none", "nvtraverse", "izraelevitz"},
			o.threads([]int{16}), []uint64{o.size(2 << 20)}, []int{0, 10, 20, 50, 100}))
	// (e) BST, varying update pct, 16 threads, 1M nodes: both BSTs + OneFile.
	add("5e", "BST update% sweep (NVRAM): 16 threads, range 2M",
		append(
			grid(core.KindNMBST, pmem.ProfileNVRAM, nvramPolicies,
				o.threads([]int{16}), []uint64{o.size(2 << 20)}, []int{0, 10, 20, 50, 100}),
			grid(core.KindEllenBST, pmem.ProfileNVRAM, []string{"none", "nvtraverse", "izraelevitz"},
				o.threads([]int{16}), []uint64{o.size(2 << 20)}, []int{0, 10, 20, 50, 100})...))
	// (f) Skip-List, varying update pct, 16 threads, 1M nodes.
	add("5f", "Skiplist update% sweep (NVRAM): 16 threads, range 2M",
		grid(core.KindSkiplist, pmem.ProfileNVRAM, []string{"none", "nvtraverse", "izraelevitz"},
			o.threads([]int{16}), []uint64{o.size(2 << 20)}, []int{0, 10, 20, 50, 100}))

	// --- Figure 6: DRAM machine (includes David et al. log-free) ---
	// (g) List, varying threads, 80% lookups, 8000 nodes (range 16384).
	add("6g", "List scalability (DRAM): 80% lookups, range 16384",
		grid(core.KindList, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{1, 2, 4, 8, 16, 32, 64}), []uint64{o.size(16384) * 4}, []int{20}))
	// (h) List, varying update pct, 64 threads, 8000 nodes.
	add("6h", "List update% sweep (DRAM): range 16384",
		grid(core.KindList, pmem.ProfileDRAM, append(dramPolicies, "onefile"),
			o.threads([]int{64, 8})[:1], []uint64{o.size(16384) * 4}, []int{0, 20, 50, 100}))
	// (i) List, varying size, 64 threads, 80% lookups.
	add("6i", "List size sweep (DRAM): 80% lookups",
		grid(core.KindList, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{64, 8})[:1], []uint64{512, 2048, 8192, 16384}, []int{20}))
	// (j) Hash, varying threads, 80% lookups, 8M nodes.
	add("6j", "Hash scalability (DRAM): 80% lookups, range 16M",
		grid(core.KindHash, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{1, 2, 4, 8, 16, 32, 64}), []uint64{o.size(16 << 20)}, []int{20}))
	// (k) Hash, varying update pct, 16 threads, 8M nodes.
	add("6k", "Hash update% sweep (DRAM): 16 threads, range 16M",
		grid(core.KindHash, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{16}), []uint64{o.size(16 << 20)}, []int{0, 10, 20, 50, 100}))
	// (l) Hash, varying size, 16 threads, 20% updates.
	add("6l", "Hash size sweep (DRAM): 16 threads, 20% updates",
		grid(core.KindHash, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{16}), []uint64{o.size(1 << 20), o.size(4 << 20), o.size(16 << 20)}, []int{20}))
	// (m) BST, varying update pct, 16 threads, 8M nodes: both BSTs.
	add("6m", "BST update% sweep (DRAM): 16 threads, range 16M",
		append(
			grid(core.KindNMBST, pmem.ProfileDRAM, dramPolicies,
				o.threads([]int{16}), []uint64{o.size(16 << 20)}, []int{0, 10, 20, 50, 100}),
			grid(core.KindEllenBST, pmem.ProfileDRAM, []string{"none", "nvtraverse", "izraelevitz"},
				o.threads([]int{16}), []uint64{o.size(16 << 20)}, []int{0, 10, 20, 50, 100})...))
	// (n) Skiplist, varying threads, 80% lookups, 8M nodes, 20% updates.
	add("6n", "Skiplist scalability (DRAM): 20% updates, range 16M",
		grid(core.KindSkiplist, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{1, 2, 4, 8, 16, 32, 64}), []uint64{o.size(16 << 20)}, []int{20}))
	// (o) Skiplist, varying update pct, 64 threads, 8M nodes.
	add("6o", "Skiplist update% sweep (DRAM): range 16M",
		grid(core.KindSkiplist, pmem.ProfileDRAM, dramPolicies,
			o.threads([]int{64, 8})[:1], []uint64{o.size(16 << 20)}, []int{0, 20, 50, 100}))

	// --- Sharded engine: YCSB shard-scaling (system extension beyond the
	// paper: zipf-skewed YCSB workloads against the hash-sharded engine,
	// sweeping shard count × threads; the shard-scaling curve is the
	// panel's series) ---
	for _, wl := range []string{"A", "B", "C"} {
		var cs []Config
		for _, sh := range []int{1, 4, 16} {
			for _, th := range o.threads([]int{1, 2, 4, 8, 16}) {
				cs = append(cs, Config{
					Kind: core.KindHash, Policy: "nvtraverse",
					Profile: pmem.ProfileNVRAM, Threads: th,
					Range: o.size(1 << 20), Duration: o.Duration,
					Workload: wl, Shards: sh,
				})
			}
		}
		add("s"+wl, "Sharded engine YCSB-"+wl+" scaling (NVRAM): shards 1/4/16 x threads", cs)
	}

	// --- Store API v2 workloads: YCSB E (range scans, the workload the
	// point-op surface could not express) over every ordered kind, single
	// structure and 4-shard engine (the engine merges per-shard ordered
	// scans), under the three durable policies ---
	{
		var cs []Config
		th := o.threads([]int{4})[0]
		for _, kind := range core.OrderedKinds() {
			for _, pol := range []string{"nvtraverse", "izraelevitz", "logfree"} {
				for _, sh := range []int{0, 4} {
					cs = append(cs, Config{
						Kind: kind, Policy: pol, Profile: pmem.ProfileNVRAM,
						Threads: th, Range: o.size(1 << 16), Duration: o.Duration,
						Workload: "E", Shards: sh,
					})
				}
			}
		}
		add("yE", "YCSB-E range scans: ordered kinds x durable policies, single + 4-shard engine", cs)
	}

	// --- RMW-heavy panel: workload U hammers the atomic in-place Update
	// path (with GetOrInsert seeding) on every kind, single + sharded ---
	{
		var cs []Config
		th := o.threads([]int{4})[0]
		for _, kind := range core.Kinds() {
			for _, pol := range []string{"nvtraverse", "logfree"} {
				for _, sh := range []int{0, 4} {
					cs = append(cs, Config{
						Kind: kind, Policy: pol, Profile: pmem.ProfileNVRAM,
						Threads: th, Range: o.size(1 << 16), Duration: o.Duration,
						Workload: "U", Shards: sh,
					})
				}
			}
		}
		add("yU", "YCSB-U atomic RMW: in-place Update across kinds, single + 4-shard engine", cs)
	}

	// --- Flush-accounting ablation: the paper's quantitative claim as a
	// panel. For every structure, NVTraverse vs the flush-everything
	// baseline (plus the hand-tuned link-and-persist) on YCSB A/B/C, zero
	// latency profile: the flush/op and elide/op columns are the
	// hardware-independent evidence, not throughput. ---
	for _, wl := range []string{"A", "B", "C"} {
		var cs []Config
		th := o.threads([]int{4})[0]
		for _, kind := range core.Kinds() {
			for _, pol := range []string{"nvtraverse", "izraelevitz", "logfree"} {
				cs = append(cs, Config{
					Kind: kind, Policy: pol, Profile: pmem.ProfileZero,
					Threads: th, Range: o.size(1 << 16), Duration: o.Duration,
					Workload: wl,
				})
			}
		}
		add("f"+wl, "Flush ablation YCSB-"+wl+": flushes/op, NVTraverse vs flush-everything", cs)
	}
	return ps
}

// FlushStatPanels returns the flush-accounting ablation panels (fA, fB,
// fC), the suite behind nvbench -flushstats.
func FlushStatPanels(o PanelOptions) []Panel {
	var out []Panel
	for _, p := range Panels(o) {
		if len(p.ID) == 2 && p.ID[0] == 'f' {
			out = append(out, p)
		}
	}
	return out
}

// FlushStatSummary condenses a flush-ablation panel's results into one
// line per structure: how many times more flushes the flush-everything
// transformation issues than NVTraverse on the same workload. Results
// whose counterpart is missing are skipped.
func FlushStatSummary(rs []Result) []string {
	type key struct {
		kind core.Kind
		wl   string
	}
	nv := map[key]Result{}
	iz := map[key]Result{}
	var order []key
	for _, r := range rs {
		k := key{r.Kind, r.Workload}
		switch r.Policy {
		case "nvtraverse":
			if _, seen := nv[k]; !seen {
				order = append(order, k)
			}
			nv[k] = r
		case "izraelevitz":
			iz[k] = r
		}
	}
	var out []string
	for _, k := range order {
		n, okN := nv[k]
		i, okI := iz[k]
		if !okN || !okI || n.FlushPerOp <= 0 {
			continue
		}
		out = append(out, fmt.Sprintf(
			"%-9s YCSB-%s: izraelevitz issues %6.1f flushes/op vs nvtraverse %5.1f (%5.1fx), fences %6.1f vs %4.1f",
			k.kind, k.wl, i.FlushPerOp, n.FlushPerOp, i.FlushPerOp/n.FlushPerOp,
			i.FencePerOp, n.FencePerOp))
	}
	return out
}

// PanelByID returns the panel with the given ID.
func PanelByID(o PanelOptions, id string) (Panel, error) {
	for _, p := range Panels(o) {
		if p.ID == id {
			return p, nil
		}
	}
	return Panel{}, fmt.Errorf("bench: unknown panel %q", id)
}

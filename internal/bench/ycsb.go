package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/shard"
)

// Workload is a YCSB-style operation mix over a skewed key distribution.
// The percentages sum to 100. Updates are atomic upserts (in-place Update
// with a GetOrInsert fallback); inserts create fresh, monotonically
// increasing keys (workload D); read-modify-write reads a key and upserts
// it back (workload F); scans visit a Zipf-distributed number of
// consecutive keys from a Zipf-chosen start (workload E); atomic RMW
// increments in place through the structure's Update critical section
// (workload U).
type Workload struct {
	Name       string
	ReadPct    int
	UpdatePct  int
	InsertPct  int
	RMWPct     int
	ScanPct    int     // range scans (workload E); needs an ordered kind
	AtomicPct  int     // in-place atomic Update/GetOrInsert (workload U)
	MaxScanLen int     // upper bound on scan lengths (default 100)
	ReadLatest bool    // reads target recently inserted keys (workload D)
	Theta      float64 // Zipf skew; 0 draws keys uniformly
}

// Workloads returns the YCSB core workloads this suite implements, in
// letter order, plus the RMW-heavy extension U. E (range scans) runs only
// on ordered kinds — list, skiplist, and both BSTs.
func Workloads() []Workload {
	return []Workload{
		{Name: "A", ReadPct: 50, UpdatePct: 50, Theta: 0.99},
		{Name: "B", ReadPct: 95, UpdatePct: 5, Theta: 0.99},
		{Name: "C", ReadPct: 100, Theta: 0.99},
		{Name: "D", ReadPct: 95, InsertPct: 5, ReadLatest: true, Theta: 0.99},
		{Name: "E", ScanPct: 95, InsertPct: 5, MaxScanLen: 100, Theta: 0.99},
		{Name: "F", ReadPct: 50, RMWPct: 50, Theta: 0.99},
		{Name: "U", ReadPct: 20, AtomicPct: 80, Theta: 0.99},
	}
}

// WorkloadByName resolves "A" or "ycsb-a" (case-insensitive).
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if strings.EqualFold(w.Name, name) || strings.EqualFold("ycsb-"+w.Name, name) {
			return w, true
		}
	}
	return Workload{}, false
}

// kvCtx is one worker's operation surface: either a thread on a single
// structure or a session on a sharded engine.
type kvCtx interface {
	get(k uint64) (uint64, bool)
	put(k, v uint64)
	insert(k, v uint64) bool
	// scan visits keys of [lo, hi] ascending, at most max, and reports how
	// many it saw. Only called when the workload has ScanPct > 0 (RunYCSB
	// rejects those configurations on scanless targets up front).
	scan(lo, hi uint64, max int) int
	// update atomically increments k in place; reports whether k existed.
	update(k uint64) bool
	getOrInsert(k, v uint64) (uint64, bool)
	multiGet(keys []uint64, dst []shard.OpResult) []shard.OpResult
	rand() uint64
}

// singleCtx drives a single structure. multiGet degenerates to a loop: a
// single structure has no per-shard fence batching to exploit. sc holds
// the full v2 surface when the target is a core structure; it is nil for
// onefile targets, which then only support the point-op workloads.
type singleCtx struct {
	s  Target
	sc core.Set
	th *pmem.Thread
}

func (c *singleCtx) get(k uint64) (uint64, bool) { return c.s.Find(c.th, k) }
func (c *singleCtx) insert(k, v uint64) bool     { return c.s.Insert(c.th, k, v) }
func (c *singleCtx) rand() uint64                { return c.th.Rand() }

func (c *singleCtx) put(k, v uint64) {
	if c.sc == nil {
		// OneFile target: no in-place update; upsert by delete+insert.
		for !c.s.Insert(c.th, k, v) {
			c.s.Delete(c.th, k)
		}
		return
	}
	core.Upsert(c.sc, c.th, k, v)
}

func (c *singleCtx) scan(lo, hi uint64, max int) int {
	n := 0
	c.sc.RangeScan(c.th, lo, hi, func(uint64, uint64) bool {
		n++
		return n < max
	})
	return n
}

func (c *singleCtx) update(k uint64) bool {
	_, ok := c.sc.Update(c.th, k, func(old uint64) uint64 { return old + 1 })
	return ok
}

func (c *singleCtx) getOrInsert(k, v uint64) (uint64, bool) {
	return c.sc.GetOrInsert(c.th, k, v)
}

func (c *singleCtx) multiGet(keys []uint64, dst []shard.OpResult) []shard.OpResult {
	if cap(dst) < len(keys) {
		dst = make([]shard.OpResult, len(keys))
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		v, ok := c.s.Find(c.th, k)
		dst[i] = shard.OpResult{Value: v, OK: ok}
	}
	return dst
}

// engineCtx drives a sharded engine through one session.
type engineCtx struct{ s *shard.Session }

func (c *engineCtx) get(k uint64) (uint64, bool) { return c.s.Get(k) }
func (c *engineCtx) put(k, v uint64)             { c.s.Put(k, v) }
func (c *engineCtx) insert(k, v uint64) bool     { return c.s.Insert(k, v) }
func (c *engineCtx) rand() uint64                { return c.s.Rand() }
func (c *engineCtx) multiGet(keys []uint64, dst []shard.OpResult) []shard.OpResult {
	return c.s.MultiGet(keys, dst)
}

func (c *engineCtx) scan(lo, hi uint64, max int) int {
	n := 0
	c.s.Scan(lo, hi, func(uint64, uint64) bool {
		n++
		return n < max
	})
	return n
}

func (c *engineCtx) update(k uint64) bool {
	_, ok := c.s.Update(k, func(old uint64) uint64 { return old + 1 })
	return ok
}

func (c *engineCtx) getOrInsert(k, v uint64) (uint64, bool) {
	return c.s.GetOrInsert(k, v)
}

// RunYCSB executes a YCSB-workload configuration against a single
// structure (cfg.Shards == 0) or a sharded engine. An empty cfg.Workload
// with cfg.Shards > 0 runs a uniform read/upsert mix with cfg.UpdatePct
// writes against the engine.
func RunYCSB(cfg Config) (Result, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	var wl Workload
	if cfg.Workload == "" {
		wl = Workload{Name: "", ReadPct: 100 - cfg.UpdatePct, UpdatePct: cfg.UpdatePct}
	} else {
		var ok bool
		wl, ok = WorkloadByName(cfg.Workload)
		if !ok {
			return Result{}, fmt.Errorf("bench: unknown YCSB workload %q", cfg.Workload)
		}
		cfg.Workload = wl.Name
	}
	if cfg.Theta > 0 {
		wl.Theta = cfg.Theta
	}
	// Report the write fraction of the workload in the update column.
	cfg.UpdatePct = wl.UpdatePct + wl.InsertPct + wl.RMWPct + wl.AtomicPct

	// Scans need a key order: reject unordered kinds (and the OneFile
	// baseline, which predates the v2 surface) with a clear error instead
	// of a silent zero row. The atomic-RMW workload needs the v2 surface
	// but no order.
	if wl.ScanPct > 0 {
		if !core.Ordered(cfg.Kind) {
			return Result{}, fmt.Errorf(
				"bench: YCSB %s needs range scans, but kind %q is unordered — pick one of %v",
				wl.Name, cfg.Kind, core.OrderedKinds())
		}
		if cfg.Policy == "onefile" {
			return Result{}, fmt.Errorf("bench: YCSB %s needs range scans, which the onefile baseline does not implement", wl.Name)
		}
	}
	if wl.AtomicPct > 0 && cfg.Policy == "onefile" {
		return Result{}, fmt.Errorf("bench: YCSB %s needs atomic in-place updates, which the onefile baseline does not implement", wl.Name)
	}

	if cfg.Shards <= 0 {
		s, mem, err := Build(cfg)
		if err != nil {
			return Result{}, err
		}
		Prefill(s, mem, cfg)
		threads := mem.Threads()
		sc, _ := s.(core.Set)
		ctxs := make([]kvCtx, cfg.Threads)
		for i := range ctxs {
			var th *pmem.Thread
			if i < len(threads) {
				th = threads[i]
			} else {
				th = mem.NewThread()
			}
			ctxs[i] = &singleCtx{s: s, sc: sc, th: th}
		}
		mem.ResetStats()
		return measureWorkload(cfg, wl, ctxs, mem.Stats), nil
	}

	pol, ok := persist.ByName(cfg.Policy)
	if !ok {
		return Result{}, fmt.Errorf("bench: engine runs need a persist policy, got %q", cfg.Policy)
	}
	eng, err := shard.New(shard.Config{
		Shards:      cfg.Shards,
		Kind:        cfg.Kind,
		Policy:      pol,
		Profile:     cfg.Profile,
		MaxSessions: cfg.Threads + 2,
		Params:      core.Params{SizeHint: int(cfg.Range)},
	})
	if err != nil {
		return Result{}, err
	}
	sessions := make([]*shard.Session, cfg.Threads)
	for i := range sessions {
		sessions[i] = eng.NewSession()
	}
	prefillEngine(sessions, cfg)
	ctxs := make([]kvCtx, cfg.Threads)
	for i := range ctxs {
		ctxs[i] = &engineCtx{s: sessions[i]}
	}
	eng.ResetStats()
	return measureWorkload(cfg, wl, ctxs, func() pmem.Stats { return eng.Stats().Total }), nil
}

// prefillEngine inserts every other key of [1, Range] through up to eight
// sessions in parallel, shuffled per worker (see Prefill for why order
// matters).
func prefillEngine(sessions []*shard.Session, cfg Config) {
	workers := len(sessions)
	if workers > 8 {
		workers = 8
	}
	prefillShuffled(cfg.Range, workers,
		func(w int) uint64 { return sessions[w].Rand() },
		func(w int, k uint64) { sessions[w].Insert(k, k) })
}

// measureWorkload runs the timed phase of a YCSB configuration over the
// per-worker contexts and assembles the result from the stats snapshot.
func measureWorkload(cfg Config, wl Workload, ctxs []kvCtx, stats func() pmem.Stats) Result {
	dur := EffectiveDuration(cfg.Duration)
	var stop atomic.Bool
	var total atomic.Uint64
	// latest tracks the newest inserted key for the read-latest
	// distribution; workload D's inserts advance it.
	var latest atomic.Uint64
	latest.Store(cfg.Range)
	hists := make([]*Histogram, len(ctxs))
	var wg sync.WaitGroup
	start := time.Now()
	for ci, c := range ctxs {
		hists[ci] = &Histogram{}
		wg.Add(1)
		go func(c kvCtx, h *Histogram) {
			defer wg.Done()
			var z *Zipf
			if wl.Theta > 0 {
				z = NewZipf(cfg.Range, wl.Theta)
			}
			key := func() uint64 {
				r := c.rand()
				var k uint64
				if z != nil {
					k = z.Next(r)
				} else {
					k = r%cfg.Range + 1
				}
				if wl.ReadLatest {
					// k is a recency offset: 1 = the newest key.
					max := latest.Load()
					if k > max {
						k = max
					}
					k = max - k + 1
				}
				return k
			}
			// Scan lengths draw from their own Zipf (YCSB E: most scans
			// short, occasional long ones).
			var zscan *Zipf
			if wl.ScanPct > 0 {
				maxLen := wl.MaxScanLen
				if maxLen <= 0 {
					maxLen = 100
				}
				zscan = NewZipf(uint64(maxLen), 0.99)
			}
			batch := cfg.BatchSize
			var rkeys []uint64
			var rres []shard.OpResult
			var ops uint64
			// Do-while (see Measure): every worker contributes at least one
			// block even when the stop flag wins the first-schedule race.
			for {
				n := 32
				if batch > 1 {
					n = batch
				}
				rkeys = rkeys[:0]
				for j := 0; j < n; j++ {
					r := int(c.rand() % 100)
					// Sample one in latSampleMask+1 operations into the
					// latency histogram. Batched reads are deferred into one
					// MultiGet below, so their per-op latency is not
					// attributable here and they go unsampled.
					sample := ops&latSampleMask == 0 && batch <= 1
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					switch {
					case r < wl.ReadPct:
						if batch > 1 {
							rkeys = append(rkeys, key())
						} else {
							c.get(key())
						}
					case r < wl.ReadPct+wl.UpdatePct:
						c.put(key(), c.rand())
					case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct:
						c.insert(latest.Add(1), c.rand())
					case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct+wl.RMWPct:
						// Read-modify-write, YCSB F style: a read followed
						// by an upsert of the modified value.
						k := key()
						v, _ := c.get(k)
						c.put(k, v+1)
					case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct+wl.RMWPct+wl.ScanPct:
						// Range scan, YCSB E style: zipf start key, zipf
						// item count; the key-space bound assumes the
						// prefill's every-other-key density, and the scan
						// stops early once it has seen its item count.
						lo := key()
						want := int(zscan.Next(c.rand()))
						c.scan(lo, lo+4*uint64(want), want)
					default:
						// Atomic RMW (workload U): an in-place increment
						// through the structure's critical section, seeding
						// absent keys with GetOrInsert.
						k := key()
						if !c.update(k) {
							c.getOrInsert(k, c.rand())
						}
					}
					if sample {
						h.Record(time.Since(t0))
					}
					ops++
				}
				if len(rkeys) > 0 {
					rres = c.multiGet(rkeys, rres)
				}
				if stop.Load() {
					break
				}
			}
			total.Add(ops)
		}(c, hists[ci])
	}
	timer := time.NewTimer(dur)
	<-timer.C
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	st := stats()
	ops := total.Load()
	lat := &Histogram{}
	for _, h := range hists {
		lat.Merge(h)
	}
	res := Result{
		Config:  cfg,
		Ops:     ops,
		Mops:    float64(ops) / elapsed.Seconds() / 1e6,
		Elapsed: elapsed,
		Lat:     lat,
	}
	if ops > 0 {
		res.FlushPerOp = float64(st.Flushes) / float64(ops)
		res.ElidePerOp = float64(st.FlushesElided) / float64(ops)
		res.FencePerOp = float64(st.Fences) / float64(ops)
	}
	return res
}

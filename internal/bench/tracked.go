package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

// TrackedThroughput is the tracked-mode torture throughput proxy: the same
// Store/CAS/Flush/Fence instruction mix a crash-torture worker issues, on a
// ModeTracked memory, without the crash/recovery phases — so it measures
// exactly the cost of the tracked write-back model (stripe locking, line
// bookkeeping, snapshot capture), which is what bounds how many schedules a
// crash-fuzz run can explore per second.
//
// Each worker owns privateLines 64-byte lines and shares sharedLines with
// everyone. One "op" is: two stores to a private line, a flush of it, a CAS
// increment on a random shared line, a flush of that, and one fence — a
// typical durable-insert footprint (write node, flush node, publish link,
// flush link, commit fence).
func TrackedThroughput(threads int, dur time.Duration) Result {
	const (
		privateLines = 4
		sharedLines  = 8
	)
	if threads < 1 {
		threads = 1
	}
	mem := pmem.New(pmem.Config{
		Mode:       pmem.ModeTracked,
		Profile:    pmem.ProfileZero,
		MaxThreads: threads + 2,
	})
	private := make([][][]pmem.Cell, threads)
	for i := range private {
		private[i] = pmem.AllocLines(privateLines)
	}
	shared := pmem.AllocLines(sharedLines)
	mem.PersistAll()

	dur = EffectiveDuration(dur)
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		mine := private[i]
		wg.Add(1)
		go func(th *pmem.Thread) {
			defer wg.Done()
			var ops uint64
			for !stop.Load() {
				for j := 0; j < 16; j++ {
					r := th.Rand()
					ln := mine[r%privateLines]
					a := &ln[r%pmem.CellsPerLine]
					b := &ln[(r>>8)%pmem.CellsPerLine]
					th.Store(a, r)
					th.Store(b, r^0xff)
					th.Flush(a)
					sc := &shared[(r>>16)%sharedLines][(r>>24)%pmem.CellsPerLine]
					old := th.Load(sc)
					th.CAS(sc, old, old+1)
					th.Flush(sc)
					th.Fence()
					th.CountOp()
					ops++
				}
			}
			total.Add(ops)
		}(th)
	}
	timer := time.NewTimer(dur)
	<-timer.C
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	st := mem.Stats()
	ops := total.Load()
	res := Result{
		Config: Config{
			Kind:    core.Kind("tracked"),
			Policy:  "model",
			Profile: pmem.ProfileZero,
			Threads: threads,
		},
		Ops:     ops,
		Mops:    float64(ops) / elapsed.Seconds() / 1e6,
		Elapsed: elapsed,
	}
	if ops > 0 {
		res.FlushPerOp = float64(st.Flushes) / float64(ops)
		res.ElidePerOp = float64(st.FlushesElided) / float64(ops)
		res.FencePerOp = float64(st.Fences) / float64(ops)
	}
	return res
}

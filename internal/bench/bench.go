// Package bench is the throughput harness that regenerates the paper's
// evaluation (§5): prefill a structure to half its key range, run T worker
// threads issuing a YCSB-style uniform-key mix of lookups, inserts and
// deletes for a fixed duration, and report throughput plus the per-
// operation flush and fence counts (the hardware-independent quantity the
// NVTraverse transformation controls).
package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/onefile"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Config is one benchmark run.
type Config struct {
	Kind      core.Kind
	Policy    string // a persist.ByName name, or "onefile"
	Profile   pmem.Profile
	Threads   int
	Range     uint64 // keys drawn from [1, Range]; prefill Range/2
	UpdatePct int    // percent updates (split evenly insert/delete)
	Duration  time.Duration

	// Workload selects a YCSB-style workload (see Workloads); empty runs
	// the paper's uniform lookup/insert/delete mix above.
	Workload string
	// Theta overrides the workload's Zipf skew when > 0.
	Theta float64
	// Shards > 0 runs the configuration against a shard.Engine with that
	// many shards instead of a single structure.
	Shards int
	// BatchSize > 1 groups reads into MultiGet batches of this size
	// (engine runs amortize one commit fence per shard group).
	BatchSize int
}

// Result is one benchmark outcome. FlushPerOp counts clwb instructions
// actually issued per operation; ElidePerOp counts Flush calls the line
// model coalesced away (see pmem.Stats.FlushesElided) — their sum is the
// number of Flush calls the persistence policy made. Lat, when non-nil,
// holds sampled per-operation latencies (every latSampleMask+1-th
// operation; the timer cost is kept off the other operations).
type Result struct {
	Config
	Ops        uint64
	Mops       float64 // million operations per second
	FlushPerOp float64
	ElidePerOp float64
	FencePerOp float64
	Elapsed    time.Duration
	Lat        *Histogram
	// Offered is the open-loop offered rate behind Lat's percentiles, when
	// the harness ran one (server rows); 0 for in-process panels, whose
	// histogram samples closed-loop operation latency.
	Offered float64
}

// latSampleMask selects which operations get timed: ops with
// (count & latSampleMask) == 0, i.e. one in latSampleMask+1. Sampling keeps
// the two time.Now calls off 31 of 32 operations, which matters on the
// zero-profile panels where an operation is tens of nanoseconds — measured
// overhead at 1/32 is under 2% on the fastest panel, and a 100ms run still
// collects thousands of samples.
const latSampleMask = 31

// Target is the operation surface the harness drives.
type Target interface {
	Insert(t *pmem.Thread, key, value uint64) bool
	Delete(t *pmem.Thread, key uint64) bool
	Find(t *pmem.Thread, key uint64) (uint64, bool)
}

// Build constructs the structure for cfg on a fresh fast-mode memory and
// returns it with the memory.
func Build(cfg Config) (Target, *pmem.Memory, error) {
	mem := pmem.New(pmem.Config{
		Mode:       pmem.ModeFast,
		Profile:    cfg.Profile,
		MaxThreads: cfg.Threads + 10,
	})
	if cfg.Policy == "onefile" {
		switch cfg.Kind {
		case core.KindList:
			return onefile.NewListSet(mem), mem, nil
		case core.KindEllenBST, core.KindNMBST:
			return onefile.NewBSTSet(mem), mem, nil
		default:
			return nil, nil, fmt.Errorf("bench: onefile supports list and bst only (paper §5)")
		}
	}
	pol, ok := persist.ByName(cfg.Policy)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown policy %q", cfg.Policy)
	}
	s, err := core.NewSet(cfg.Kind, mem, pol, core.Params{SizeHint: int(cfg.Range)})
	if err != nil {
		return nil, nil, err
	}
	return s, mem, nil
}

// Prefill inserts every other key in [1, Range] (Range/2 keys), in
// parallel and in *shuffled* order, mirroring the paper's uniform-random
// prefill. Order matters beyond fidelity: the external BSTs are
// unbalanced, so an ascending prefill would degenerate them into
// Range/2-deep paths and poison every measurement on them.
func Prefill(s Target, mem *pmem.Memory, cfg Config) {
	workers := cfg.Threads
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	ths := make([]*pmem.Thread, workers)
	for i := range ths {
		ths[i] = mem.NewThread()
	}
	prefillShuffled(cfg.Range, workers,
		func(w int) uint64 { return ths[w].Rand() },
		func(w int, k uint64) { s.Insert(ths[w], k, k) })
}

// prefillShuffled is the partition-and-shuffle core shared by the
// single-structure and engine prefills: worker w owns every workers-th
// odd key of [1, rangeMax] and inserts its share in Fisher–Yates order.
// rnd and insert are only called from worker w's goroutine.
func prefillShuffled(rangeMax uint64, workers int, rnd func(w int) uint64, insert func(w int, k uint64)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]uint64, 0, rangeMax/(2*uint64(workers))+1)
			for k := 1 + 2*uint64(w); k <= rangeMax; k += 2 * uint64(workers) {
				keys = append(keys, k)
			}
			for i := len(keys) - 1; i > 0; i-- { // Fisher–Yates
				j := rnd(w) % uint64(i+1)
				keys[i], keys[j] = keys[j], keys[i]
			}
			for _, k := range keys {
				insert(w, k)
			}
		}(w)
	}
	wg.Wait()
}

// EffectiveDuration applies the NVBENCH_DUR environment override: when the
// variable holds a parseable duration it replaces every configured
// measurement duration. CI and the smoke targets use it to keep the
// calibrated spin loops from burning wall-clock.
func EffectiveDuration(d time.Duration) time.Duration {
	if s := os.Getenv("NVBENCH_DUR"); s != "" {
		if o, err := time.ParseDuration(s); err == nil && o > 0 {
			return o
		}
	}
	return d
}

// Run executes one benchmark configuration, dispatching YCSB-workload and
// sharded-engine configurations to the YCSB runner.
func Run(cfg Config) (Result, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.Workload != "" || cfg.Shards > 0 {
		return RunYCSB(cfg)
	}
	s, mem, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	Prefill(s, mem, cfg)
	return Measure(s, mem, cfg), nil
}

// Measure runs the timed phase on an already-prefilled structure. It can
// be called repeatedly on the same structure (steady-state measurement).
func Measure(s Target, mem *pmem.Memory, cfg Config) Result {
	mem.ResetStats()
	dur := EffectiveDuration(cfg.Duration)
	var stop atomic.Bool
	var total atomic.Uint64
	threads := mem.Threads()
	hists := make([]*Histogram, cfg.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		// Reuse registered threads beyond the prefill workers.
		var th *pmem.Thread
		if i < len(threads) {
			th = threads[i]
		} else {
			th = mem.NewThread()
		}
		hists[i] = &Histogram{}
		wg.Add(1)
		go func(th *pmem.Thread, h *Histogram) {
			defer wg.Done()
			var ops uint64
			// Do-while: even if the stop flag wins the race with this
			// goroutine's first schedule (tiny CI durations), every thread
			// contributes at least one block, so no run measures zero ops.
			for {
				for j := 0; j < 32; j++ {
					k := th.Rand()%cfg.Range + 1
					r := int(th.Rand() % 100)
					sample := ops&latSampleMask == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					switch {
					case r < cfg.UpdatePct/2:
						s.Insert(th, k, k)
					case r < cfg.UpdatePct:
						s.Delete(th, k)
					default:
						s.Find(th, k)
					}
					if sample {
						h.Record(time.Since(t0))
					}
					ops++
				}
				if stop.Load() {
					break
				}
			}
			total.Add(ops)
		}(th, hists[i])
	}
	timer := time.NewTimer(dur)
	<-timer.C
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	st := mem.Stats()
	ops := total.Load()
	lat := &Histogram{}
	for _, h := range hists {
		lat.Merge(h)
	}
	res := Result{
		Config:  cfg,
		Ops:     ops,
		Mops:    float64(ops) / elapsed.Seconds() / 1e6,
		Elapsed: elapsed,
		Lat:     lat,
	}
	if ops > 0 {
		res.FlushPerOp = float64(st.Flushes) / float64(ops)
		res.ElidePerOp = float64(st.FlushesElided) / float64(ops)
		res.FencePerOp = float64(st.Fences) / float64(ops)
	}
	return res
}

// wl is the workload column value ("-" for the paper's uniform mix).
func (r Result) wl() string {
	if r.Workload == "" {
		return "-"
	}
	return r.Workload
}

// nshards is the shard column value ("-" for a plain structure, so a
// single structure and a one-shard engine stay distinguishable).
func (r Result) nshards() string {
	if r.Shards == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", r.Shards)
}

// Row renders a result as an aligned table row.
func (r Result) Row() string {
	return fmt.Sprintf("%-9s %-12s %-6s %4d %9d %5d%% %-3s %3s %9.3f %8.2f %8.2f %8.2f",
		r.Kind, r.Policy, r.Profile.Name, r.Threads, r.Range, r.UpdatePct,
		r.wl(), r.nshards(), r.Mops, r.FlushPerOp, r.ElidePerOp, r.FencePerOp)
}

// Header is the table header matching Row.
func Header() string {
	h := fmt.Sprintf("%-9s %-12s %-6s %4s %9s %6s %-3s %3s %9s %8s %8s %8s",
		"struct", "policy", "mem", "thr", "range", "upd", "wl", "sh",
		"Mops/s", "flush/op", "elide/op", "fence/op")
	return h + "\n" + strings.Repeat("-", len(h))
}

// CSV renders a result as a CSV line (for plotting). The shards column is
// 0 for a plain structure, the engine's shard count otherwise.
func (r Result) CSV() string {
	return fmt.Sprintf("%s,%s,%s,%d,%d,%d,%s,%d,%.4f,%.3f,%.3f,%.3f",
		r.Kind, r.Policy, r.Profile.Name, r.Threads, r.Range, r.UpdatePct,
		r.wl(), r.Shards, r.Mops, r.FlushPerOp, r.ElidePerOp, r.FencePerOp)
}

// CSVHeader matches CSV.
func CSVHeader() string {
	return "struct,policy,mem,threads,range,update_pct,workload,shards,mops,flush_per_op,elide_per_op,fence_per_op"
}

// DefaultThreads caps a paper thread count at something sensible for the
// host (oversubscribing a bit is fine; 10x is noise).
func DefaultThreads(paper []int) []int {
	max := 4 * runtime.NumCPU()
	var out []int
	for _, t := range paper {
		if t <= max {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	sort.Ints(out)
	return out
}

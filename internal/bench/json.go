// JSON baseline harness: a small fixed panel of throughput rows that is
// cheap enough to run on every change, written as a machine-readable
// document (BENCH_N.json) so perf PRs can quote measured speedups against a
// baseline captured with the *same harness* at the previous commit, and CI
// can archive the trajectory as a workflow artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

// JSONRow is one benchmark row of a BenchDoc.
type JSONRow struct {
	Panel      string  `json:"panel"`
	Kind       string  `json:"kind"`
	Policy     string  `json:"policy"`
	Profile    string  `json:"profile"`
	Threads    int     `json:"threads"`
	Range      uint64  `json:"range,omitempty"`
	Workload   string  `json:"workload,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	FlushPerOp float64 `json:"flush_per_op"`
	ElidePerOp float64 `json:"elide_per_op"`
	FencePerOp float64 `json:"fence_per_op"`
}

// SpeedupRow compares one panel row against the same row of a baseline doc.
type SpeedupRow struct {
	Panel         string  `json:"panel"`
	BaseOpsPerSec float64 `json:"base_ops_per_sec"`
	NewOpsPerSec  float64 `json:"new_ops_per_sec"`
	Speedup       float64 `json:"speedup"`
}

// BenchDoc is the on-disk format of a benchmark capture (BENCH_N.json).
// When the capture was compared against a baseline, the baseline's rows and
// the per-panel speedups are embedded so the document is self-contained.
type BenchDoc struct {
	Schema    int          `json:"schema"`
	Label     string       `json:"label,omitempty"`
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Rows      []JSONRow    `json:"rows"`
	Baseline  []JSONRow    `json:"baseline,omitempty"`
	Speedups  []SpeedupRow `json:"speedups,omitempty"`
}

// rowFromResult flattens a Result into a JSONRow under a panel id.
func rowFromResult(panel string, r Result) JSONRow {
	return JSONRow{
		Panel:      panel,
		Kind:       string(r.Kind),
		Policy:     r.Policy,
		Profile:    r.Profile.Name,
		Threads:    r.Threads,
		Range:      r.Range,
		Workload:   r.Workload,
		Shards:     r.Shards,
		Ops:        r.Ops,
		OpsPerSec:  r.Mops * 1e6,
		FlushPerOp: r.FlushPerOp,
		ElidePerOp: r.ElidePerOp,
		FencePerOp: r.FencePerOp,
	}
}

// BaselineConfig is one named row of the baseline suite.
type BaselineConfig struct {
	Panel string
	Cfg   Config // ignored when Tracked
	// Tracked rows run the TrackedThroughput proxy instead of a workload.
	Tracked bool
}

// BaselineSuite is the fixed panel behind nvbench -json: a read-heavy
// fast-mode row (the stats-bound hot path), a write-heavy row, the paper's
// small-list row (fence-bound), an engine row, and the tracked-mode torture
// throughput proxy (the lock-bound path). dur is the measurement time per
// row (NVBENCH_DUR still overrides).
func BaselineSuite(dur time.Duration) []BaselineConfig {
	return []BaselineConfig{
		{Panel: "fastC-skip8", Cfg: Config{
			Kind: core.KindSkiplist, Policy: "nvtraverse", Profile: pmem.ProfileZero,
			Threads: 8, Range: 1 << 16, Workload: "C", Duration: dur,
		}},
		{Panel: "fastA-hash4", Cfg: Config{
			Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileNVRAM,
			Threads: 4, Range: 1 << 16, Workload: "A", Duration: dur,
		}},
		{Panel: "list-nvram4", Cfg: Config{
			Kind: core.KindList, Policy: "nvtraverse", Profile: pmem.ProfileNVRAM,
			Threads: 4, Range: 1024, UpdatePct: 20, Duration: dur,
		}},
		{Panel: "engineC-4sh", Cfg: Config{
			Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
			Threads: 4, Range: 1 << 16, Workload: "C", Shards: 4, Duration: dur,
		}},
		{Panel: "tracked-4t", Cfg: Config{Threads: 4, Duration: dur}, Tracked: true},
	}
}

// RunBaseline executes the baseline suite and returns its rows. progress,
// when non-nil, receives one line per completed row.
func RunBaseline(dur time.Duration, progress func(string)) ([]JSONRow, error) {
	var rows []JSONRow
	for _, bc := range BaselineSuite(dur) {
		var (
			res Result
			err error
		)
		if bc.Tracked {
			res = TrackedThroughput(bc.Cfg.Threads, bc.Cfg.Duration)
		} else {
			res, err = Run(bc.Cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: baseline row %s: %w", bc.Panel, err)
		}
		row := rowFromResult(bc.Panel, res)
		rows = append(rows, row)
		if progress != nil {
			progress(fmt.Sprintf("%-12s %10.0f ops/s  flush/op %.2f  elide/op %.2f  fence/op %.2f",
				row.Panel, row.OpsPerSec, row.FlushPerOp, row.ElidePerOp, row.FencePerOp))
		}
	}
	return rows, nil
}

// NewBenchDoc assembles a document from captured rows.
func NewBenchDoc(label string, rows []JSONRow) *BenchDoc {
	return &BenchDoc{
		Schema:    1,
		Label:     label,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
}

// Compare embeds base's rows into doc and computes per-panel speedups
// (new ops/s divided by base ops/s, matched by panel id).
func (d *BenchDoc) Compare(base *BenchDoc) {
	d.Baseline = base.Rows
	byPanel := make(map[string]JSONRow, len(base.Rows))
	for _, r := range base.Rows {
		byPanel[r.Panel] = r
	}
	d.Speedups = d.Speedups[:0]
	for _, r := range d.Rows {
		b, ok := byPanel[r.Panel]
		if !ok || b.OpsPerSec <= 0 {
			continue
		}
		d.Speedups = append(d.Speedups, SpeedupRow{
			Panel:         r.Panel,
			BaseOpsPerSec: b.OpsPerSec,
			NewOpsPerSec:  r.OpsPerSec,
			Speedup:       r.OpsPerSec / b.OpsPerSec,
		})
	}
}

// Verify checks the structural invariants bench-smoke asserts: at least one
// row, and every row measured a nonzero throughput.
func (d *BenchDoc) Verify() error {
	if d.Schema != 1 {
		return fmt.Errorf("bench: unknown BenchDoc schema %d", d.Schema)
	}
	if len(d.Rows) == 0 {
		return fmt.Errorf("bench: BenchDoc has no rows")
	}
	for _, r := range d.Rows {
		if r.OpsPerSec <= 0 || r.Ops == 0 {
			return fmt.Errorf("bench: row %s has zero throughput (ops=%d)", r.Panel, r.Ops)
		}
	}
	return nil
}

// WriteFile writes the document as indented JSON.
func (d *BenchDoc) WriteFile(path string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// LoadBenchDoc reads a document written by WriteFile.
func LoadBenchDoc(path string) (*BenchDoc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d BenchDoc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &d, nil
}

// JSON baseline harness: a small fixed panel of throughput rows that is
// cheap enough to run on every change, written as a machine-readable
// document (BENCH_N.json) so perf PRs can quote measured speedups against a
// baseline captured with the *same harness* at the previous commit, and CI
// can archive the trajectory as a workflow artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

// JSONRow is one benchmark row of a BenchDoc. The latency percentile
// fields (schema 2) are in microseconds and come from an HDR-style sampled
// histogram (see Histogram); they are zero/omitted on rows whose harness
// recorded no samples, and on documents captured before schema 2.
type JSONRow struct {
	Panel      string  `json:"panel"`
	Kind       string  `json:"kind"`
	Policy     string  `json:"policy"`
	Profile    string  `json:"profile"`
	Threads    int     `json:"threads"`
	Range      uint64  `json:"range,omitempty"`
	Workload   string  `json:"workload,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	FlushPerOp float64 `json:"flush_per_op"`
	ElidePerOp float64 `json:"elide_per_op"`
	FencePerOp float64 `json:"fence_per_op"`
	LatSamples uint64  `json:"lat_samples,omitempty"`
	P50us      float64 `json:"p50_us,omitempty"`
	P95us      float64 `json:"p95_us,omitempty"`
	P99us      float64 `json:"p99_us,omitempty"`
	P999us     float64 `json:"p999_us,omitempty"`
	// ReplayRecords/ReplayBytes (schema 3) are set on recovery rows: the
	// WAL records and bytes replayed during a file-backed cold start. On
	// such rows Ops counts replayed records and OpsPerSec is records/s.
	ReplayRecords uint64 `json:"replay_records,omitempty"`
	ReplayBytes   uint64 `json:"replay_bytes,omitempty"`
	// OfferedOpsPerSec (schema 4) is set on server rows whose latency
	// percentiles come from an open-loop run: the rate the load generator
	// actually offered, independent of how fast the server answered. On
	// such rows the percentiles are free of coordinated omission; the
	// throughput fields still come from the closed-loop capacity run.
	OfferedOpsPerSec float64 `json:"offered_ops_per_sec,omitempty"`
}

// SpeedupRow compares one panel row against the same row of a baseline doc.
type SpeedupRow struct {
	Panel         string  `json:"panel"`
	BaseOpsPerSec float64 `json:"base_ops_per_sec"`
	NewOpsPerSec  float64 `json:"new_ops_per_sec"`
	Speedup       float64 `json:"speedup"`
}

// BenchDoc is the on-disk format of a benchmark capture (BENCH_N.json).
// When the capture was compared against a baseline, the baseline's rows and
// the per-panel speedups are embedded so the document is self-contained.
type BenchDoc struct {
	Schema    int          `json:"schema"`
	Label     string       `json:"label,omitempty"`
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Rows      []JSONRow    `json:"rows"`
	Baseline  []JSONRow    `json:"baseline,omitempty"`
	Speedups  []SpeedupRow `json:"speedups,omitempty"`
	// BaselineNumCPU and BaselineGo record the compared document's machine
	// (set by Compare): absolute ops/s only gate meaningfully between
	// comparable machines, so mismatches are surfaced next to the speedups.
	BaselineNumCPU int    `json:"baseline_num_cpu,omitempty"`
	BaselineGo     string `json:"baseline_go_version,omitempty"`
}

// MachineMismatch reports a human-readable capture/baseline machine
// difference, or "" when the machines look comparable. Callers print it
// next to gate results so a cross-machine comparison can't fail silently
// confusingly.
func (d *BenchDoc) MachineMismatch() string {
	if d.BaselineNumCPU != 0 && d.BaselineNumCPU != d.NumCPU {
		return fmt.Sprintf("baseline captured with %d CPUs, this capture has %d — absolute ops/s are not comparable",
			d.BaselineNumCPU, d.NumCPU)
	}
	return ""
}

// RowFromResult flattens a Result into a JSONRow under a panel id, so
// external harnesses (the server load generator) land in the same document
// schema as the in-process panels.
func RowFromResult(panel string, r Result) JSONRow {
	row := JSONRow{
		Panel:      panel,
		Kind:       string(r.Kind),
		Policy:     r.Policy,
		Profile:    r.Profile.Name,
		Threads:    r.Threads,
		Range:      r.Range,
		Workload:   r.Workload,
		Shards:     r.Shards,
		Ops:        r.Ops,
		OpsPerSec:  r.Mops * 1e6,
		FlushPerOp: r.FlushPerOp,
		ElidePerOp: r.ElidePerOp,
		FencePerOp: r.FencePerOp,
	}
	if r.Lat != nil && r.Lat.Count() > 0 {
		row.LatSamples = r.Lat.Count()
		row.P50us = float64(r.Lat.Quantile(0.50)) / 1e3
		row.P95us = float64(r.Lat.Quantile(0.95)) / 1e3
		row.P99us = float64(r.Lat.Quantile(0.99)) / 1e3
		row.P999us = float64(r.Lat.Quantile(0.999)) / 1e3
	}
	row.OfferedOpsPerSec = r.Offered
	return row
}

// BaselineConfig is one named row of the baseline suite.
type BaselineConfig struct {
	Panel string
	Cfg   Config // ignored when Tracked or Recovery
	// Tracked rows run the TrackedThroughput proxy instead of a workload.
	Tracked bool
	// Recovery rows run RecoveryRow: write a file-backed store, reopen it,
	// and report WAL replay throughput instead of a workload.
	Recovery bool
}

// BaselineSuite is the fixed panel behind nvbench -json: a read-heavy
// fast-mode row (the stats-bound hot path), a write-heavy row, the paper's
// small-list row (fence-bound), an engine row, and the tracked-mode torture
// throughput proxy (the lock-bound path). dur is the measurement time per
// row (NVBENCH_DUR still overrides).
func BaselineSuite(dur time.Duration) []BaselineConfig {
	return []BaselineConfig{
		{Panel: "fastC-skip8", Cfg: Config{
			Kind: core.KindSkiplist, Policy: "nvtraverse", Profile: pmem.ProfileZero,
			Threads: 8, Range: 1 << 16, Workload: "C", Duration: dur,
		}},
		{Panel: "fastA-hash4", Cfg: Config{
			Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileNVRAM,
			Threads: 4, Range: 1 << 16, Workload: "A", Duration: dur,
		}},
		{Panel: "list-nvram4", Cfg: Config{
			Kind: core.KindList, Policy: "nvtraverse", Profile: pmem.ProfileNVRAM,
			Threads: 4, Range: 1024, UpdatePct: 20, Duration: dur,
		}},
		{Panel: "engineC-4sh", Cfg: Config{
			Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
			Threads: 4, Range: 1 << 16, Workload: "C", Shards: 4, Duration: dur,
		}},
		{Panel: "tracked-4t", Cfg: Config{Threads: 4, Duration: dur}, Tracked: true},
		{Panel: "recovery", Recovery: true},
	}
}

// RunBaseline executes the baseline suite and returns its rows. progress,
// when non-nil, receives one line per completed row.
func RunBaseline(dur time.Duration, progress func(string)) ([]JSONRow, error) {
	var rows []JSONRow
	for _, bc := range BaselineSuite(dur) {
		if bc.Recovery {
			r, err := RecoveryRow(bc.Panel)
			if err != nil {
				return nil, fmt.Errorf("bench: baseline row %s: %w", bc.Panel, err)
			}
			rows = append(rows, r)
			if progress != nil {
				progress(fmt.Sprintf("%-12s %10.0f rec/s  replayed %d records / %d bytes",
					r.Panel, r.OpsPerSec, r.ReplayRecords, r.ReplayBytes))
			}
			continue
		}
		var (
			res Result
			err error
		)
		if bc.Tracked {
			res = TrackedThroughput(bc.Cfg.Threads, bc.Cfg.Duration)
		} else {
			res, err = Run(bc.Cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: baseline row %s: %w", bc.Panel, err)
		}
		row := RowFromResult(bc.Panel, res)
		rows = append(rows, row)
		if progress != nil {
			progress(fmt.Sprintf("%-12s %10.0f ops/s  flush/op %.2f  elide/op %.2f  fence/op %.2f  p50 %.1fµs  p99 %.1fµs",
				row.Panel, row.OpsPerSec, row.FlushPerOp, row.ElidePerOp, row.FencePerOp, row.P50us, row.P99us))
		}
	}
	return rows, nil
}

// CurrentSchema is the BenchDoc schema this harness writes. Schema 2 added
// the latency percentile fields; schema 3 added the recovery-replay fields
// (ReplayRecords/ReplayBytes); schema 4 added OfferedOpsPerSec and makes
// server-row percentiles open-loop (intended-send-time) measurements —
// percentiles on server rows are not comparable across that boundary.
// Older documents still load and compare (throughput gating is unaffected).
const CurrentSchema = 4

// NewBenchDoc assembles a document from captured rows.
func NewBenchDoc(label string, rows []JSONRow) *BenchDoc {
	return &BenchDoc{
		Schema:    CurrentSchema,
		Label:     label,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
}

// Compare embeds base's rows into doc and computes per-panel speedups
// (new ops/s divided by base ops/s, matched by panel id).
func (d *BenchDoc) Compare(base *BenchDoc) {
	d.Baseline = base.Rows
	d.BaselineNumCPU = base.NumCPU
	d.BaselineGo = base.GoVersion
	byPanel := make(map[string]JSONRow, len(base.Rows))
	for _, r := range base.Rows {
		byPanel[r.Panel] = r
	}
	d.Speedups = d.Speedups[:0]
	for _, r := range d.Rows {
		b, ok := byPanel[r.Panel]
		if !ok || b.OpsPerSec <= 0 {
			continue
		}
		d.Speedups = append(d.Speedups, SpeedupRow{
			Panel:         r.Panel,
			BaseOpsPerSec: b.OpsPerSec,
			NewOpsPerSec:  r.OpsPerSec,
			Speedup:       r.OpsPerSec / b.OpsPerSec,
		})
	}
}

// Verify checks the structural invariants bench-smoke asserts: at least one
// row, every row measured a nonzero throughput, and — on schema-2 documents
// — rows that recorded latency samples carry monotone percentiles.
func (d *BenchDoc) Verify() error {
	if d.Schema < 1 || d.Schema > CurrentSchema {
		return fmt.Errorf("bench: unknown BenchDoc schema %d", d.Schema)
	}
	if len(d.Rows) == 0 {
		return fmt.Errorf("bench: BenchDoc has no rows")
	}
	for _, r := range d.Rows {
		if r.OpsPerSec <= 0 || r.Ops == 0 {
			return fmt.Errorf("bench: row %s has zero throughput (ops=%d)", r.Panel, r.Ops)
		}
		if r.LatSamples > 0 {
			if r.P50us <= 0 || r.P50us > r.P95us || r.P95us > r.P99us || r.P99us > r.P999us {
				return fmt.Errorf("bench: row %s has non-monotone latency percentiles (%.2f/%.2f/%.2f/%.2f µs)",
					r.Panel, r.P50us, r.P95us, r.P99us, r.P999us)
			}
		}
	}
	return nil
}

// GateRegressions is the CI bench-regression gate: after Compare, every
// pinned panel — the zero-profile rows, whose throughput is CPU-bound
// rather than dominated by the calibrated spin costs — must not have
// regressed by more than tolerance (0.35 fails below 0.65x). Rows present
// on only one side gate nothing (new panels are allowed to appear).
func (d *BenchDoc) GateRegressions(tolerance float64) error {
	if len(d.Speedups) == 0 {
		return fmt.Errorf("bench: regression gate needs a compared document (run with -cmp)")
	}
	profile := make(map[string]string, len(d.Rows))
	for _, r := range d.Rows {
		profile[r.Panel] = r.Profile
	}
	var failures []string
	for _, s := range d.Speedups {
		if profile[s.Panel] != "zero" {
			continue
		}
		if s.Speedup < 1-tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f -> %.0f ops/s (%.2fx, floor %.2fx)",
				s.Panel, s.BaseOpsPerSec, s.NewOpsPerSec, s.Speedup, 1-tolerance))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: throughput regression beyond %.0f%% tolerance:\n  %s",
			tolerance*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// WriteFile writes the document as indented JSON.
func (d *BenchDoc) WriteFile(path string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// LoadBenchDoc reads a document written by WriteFile.
func LoadBenchDoc(path string) (*BenchDoc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d BenchDoc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &d, nil
}

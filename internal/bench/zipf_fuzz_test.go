package bench

// Fuzz coverage for the Zipf generator: Next must stay inside [1, n] for
// any (n, theta, r) and must be a pure function of its inputs (the YCSB
// runners rely on determinism for reproducible workloads). The seed corpus
// runs as a plain test in CI (`go test` executes fuzz seeds without
// -fuzz), so the distribution invariants cannot silently rot.

import (
	"math"
	"testing"
)

func FuzzZipfNext(f *testing.F) {
	f.Add(uint64(1), 0.0, uint64(0))
	f.Add(uint64(1), 0.99, ^uint64(0))
	f.Add(uint64(2), 0.5, uint64(12345))
	f.Add(uint64(1000), 0.99, uint64(0x9e3779b97f4a7c15))
	f.Add(uint64(1000), 0.0, uint64(7))
	f.Add(uint64(1<<16), 0.9, uint64(1<<63))
	f.Add(uint64(1<<22+3), 0.99, uint64(42)) // Euler–Maclaurin zeta path
	f.Add(uint64(3), 0.999, uint64(1))
	f.Fuzz(func(t *testing.T, n uint64, theta float64, r uint64) {
		if n == 0 || n > 1<<24 {
			n = n%(1<<24) + 1
		}
		if math.IsNaN(theta) || theta < 0 || theta >= 1 {
			theta = math.Mod(math.Abs(theta), 1)
			if math.IsNaN(theta) {
				theta = 0
			}
		}
		z := NewZipf(n, theta)
		k := z.Next(r)
		if k < 1 || k > n {
			t.Fatalf("Next(n=%d, theta=%v, r=%d) = %d out of [1, %d]", n, theta, r, k, n)
		}
		if again := z.Next(r); again != k {
			t.Fatalf("Next not deterministic: %d then %d", k, again)
		}
		if other := NewZipf(n, theta).Next(r); other != k {
			t.Fatalf("fresh generator disagrees: %d vs %d", other, k)
		}
	})
}

func TestZipfDeterministicAcrossGenerators(t *testing.T) {
	a, b := NewZipf(4096, 0.99), NewZipf(4096, 0.99)
	for r := uint64(0); r < 4096; r++ {
		x := r * 0x9e3779b97f4a7c15
		if a.Next(x) != b.Next(x) {
			t.Fatalf("generators diverge at r=%d", r)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	// theta=0.99 must put far more mass on the head of the range than
	// theta=0 (the property the YCSB workloads depend on).
	const n, draws = 1024, 20000
	count := func(theta float64) int {
		z := NewZipf(n, theta)
		head := 0
		r := uint64(1)
		for i := 0; i < draws; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			if z.Next(r) <= n/16 {
				head++
			}
		}
		return head
	}
	skewed, uniform := count(0.99), count(0)
	if skewed < 2*uniform {
		t.Fatalf("skew not concentrating: head hits %d (theta=.99) vs %d (theta=0)", skewed, uniform)
	}
}

package bench

import (
	"path/filepath"
	"testing"
	"time"
)

func TestBenchDocRoundTripAndCompare(t *testing.T) {
	rows := []JSONRow{
		{Panel: "a", Kind: "list", OpsPerSec: 100, Ops: 10},
		{Panel: "b", Kind: "hash", OpsPerSec: 400, Ops: 40},
	}
	base := NewBenchDoc("base", rows)
	doc := NewBenchDoc("next", []JSONRow{
		{Panel: "a", Kind: "list", OpsPerSec: 250, Ops: 25},
		{Panel: "c", Kind: "skiplist", OpsPerSec: 50, Ops: 5}, // no counterpart
	})
	doc.Compare(base)
	if len(doc.Speedups) != 1 {
		t.Fatalf("speedups = %d, want 1 (unmatched panels skipped)", len(doc.Speedups))
	}
	s := doc.Speedups[0]
	if s.Panel != "a" || s.Speedup < 2.49 || s.Speedup > 2.51 {
		t.Fatalf("speedup row = %+v, want panel a at 2.5x", s)
	}
	if len(doc.Baseline) != 2 {
		t.Fatalf("baseline not embedded: %d rows", len(doc.Baseline))
	}

	path := filepath.Join(t.TempDir(), "doc.json")
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "next" || len(got.Rows) != 2 || len(got.Speedups) != 1 {
		t.Fatalf("roundtrip mangled doc: %+v", got)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("valid doc fails verification: %v", err)
	}
}

func TestBenchDocVerifyRejects(t *testing.T) {
	if err := (&BenchDoc{Schema: 1}).Verify(); err == nil {
		t.Fatal("empty doc verified")
	}
	if err := (&BenchDoc{Schema: 2, Rows: []JSONRow{{Panel: "a", OpsPerSec: 1, Ops: 1}}}).Verify(); err == nil {
		t.Fatal("unknown schema verified")
	}
	bad := &BenchDoc{Schema: 1, Rows: []JSONRow{{Panel: "a", OpsPerSec: 0, Ops: 0}}}
	if err := bad.Verify(); err == nil {
		t.Fatal("zero-throughput row verified")
	}
}

func TestTrackedThroughputProxy(t *testing.T) {
	res := TrackedThroughput(2, 20*time.Millisecond)
	if res.Ops == 0 || res.Mops <= 0 {
		t.Fatalf("tracked proxy measured nothing: %+v", res)
	}
	// The proxy's op shape is fixed: two private-line stores + flush, one
	// shared CAS + flush, one fence. Flush and fence rates are therefore
	// pinned by construction (elision can only reduce issued flushes).
	if res.FencePerOp < 0.99 || res.FencePerOp > 1.01 {
		t.Fatalf("fence/op = %v, want 1", res.FencePerOp)
	}
	if sum := res.FlushPerOp + res.ElidePerOp; sum < 1.99 || sum > 2.01 {
		t.Fatalf("flush+elide per op = %v, want 2", sum)
	}
}

func TestRunBaselineSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every baseline row")
	}
	var lines []string
	rows, err := RunBaseline(10*time.Millisecond, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BaselineSuite(0)) || len(lines) != len(rows) {
		t.Fatalf("rows=%d progress=%d, want %d", len(rows), len(lines), len(BaselineSuite(0)))
	}
	doc := NewBenchDoc("smoke", rows)
	if err := doc.Verify(); err != nil {
		t.Fatal(err)
	}
}

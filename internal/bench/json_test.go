package bench

import (
	"path/filepath"
	"testing"
	"time"
)

func TestBenchDocRoundTripAndCompare(t *testing.T) {
	rows := []JSONRow{
		{Panel: "a", Kind: "list", OpsPerSec: 100, Ops: 10},
		{Panel: "b", Kind: "hash", OpsPerSec: 400, Ops: 40},
	}
	base := NewBenchDoc("base", rows)
	doc := NewBenchDoc("next", []JSONRow{
		{Panel: "a", Kind: "list", OpsPerSec: 250, Ops: 25},
		{Panel: "c", Kind: "skiplist", OpsPerSec: 50, Ops: 5}, // no counterpart
	})
	doc.Compare(base)
	if len(doc.Speedups) != 1 {
		t.Fatalf("speedups = %d, want 1 (unmatched panels skipped)", len(doc.Speedups))
	}
	s := doc.Speedups[0]
	if s.Panel != "a" || s.Speedup < 2.49 || s.Speedup > 2.51 {
		t.Fatalf("speedup row = %+v, want panel a at 2.5x", s)
	}
	if len(doc.Baseline) != 2 {
		t.Fatalf("baseline not embedded: %d rows", len(doc.Baseline))
	}

	path := filepath.Join(t.TempDir(), "doc.json")
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "next" || len(got.Rows) != 2 || len(got.Speedups) != 1 {
		t.Fatalf("roundtrip mangled doc: %+v", got)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("valid doc fails verification: %v", err)
	}
}

func TestBenchDocVerifyRejects(t *testing.T) {
	if err := (&BenchDoc{Schema: 1}).Verify(); err == nil {
		t.Fatal("empty doc verified")
	}
	if err := (&BenchDoc{Schema: CurrentSchema + 1, Rows: []JSONRow{{Panel: "a", OpsPerSec: 1, Ops: 1}}}).Verify(); err == nil {
		t.Fatal("unknown schema verified")
	}
	// Schema 1 documents (pre-percentile captures, e.g. BENCH_4.json) must
	// keep verifying.
	if err := (&BenchDoc{Schema: 1, Rows: []JSONRow{{Panel: "a", OpsPerSec: 1, Ops: 1}}}).Verify(); err != nil {
		t.Fatalf("schema-1 doc rejected: %v", err)
	}
	bad := &BenchDoc{Schema: 1, Rows: []JSONRow{{Panel: "a", OpsPerSec: 0, Ops: 0}}}
	if err := bad.Verify(); err == nil {
		t.Fatal("zero-throughput row verified")
	}
	scrambled := &BenchDoc{Schema: 2, Rows: []JSONRow{
		{Panel: "a", OpsPerSec: 1, Ops: 1, LatSamples: 10, P50us: 9, P95us: 5, P99us: 6, P999us: 7},
	}}
	if err := scrambled.Verify(); err == nil {
		t.Fatal("non-monotone percentiles verified")
	}
}

// TestGateRegressions pins the CI regression gate: only zero-profile panels
// participate, and only drops beyond the tolerance fail.
func TestGateRegressions(t *testing.T) {
	base := NewBenchDoc("base", []JSONRow{
		{Panel: "zfast", Profile: "zero", OpsPerSec: 1000, Ops: 10},
		{Panel: "nvram", Profile: "nvram", OpsPerSec: 1000, Ops: 10},
	})
	mk := func(zops, nops float64) *BenchDoc {
		d := NewBenchDoc("next", []JSONRow{
			{Panel: "zfast", Profile: "zero", OpsPerSec: zops, Ops: 10},
			{Panel: "nvram", Profile: "nvram", OpsPerSec: nops, Ops: 10},
		})
		d.Compare(base)
		return d
	}
	if err := mk(700, 1000).GateRegressions(0.35); err != nil {
		t.Fatalf("0.7x on a zero panel is within a 35%% tolerance: %v", err)
	}
	if err := mk(600, 1000).GateRegressions(0.35); err == nil {
		t.Fatal("0.6x on a zero panel passed a 35% tolerance gate")
	}
	// A collapse on a latency-profile panel does not gate.
	if err := mk(1000, 100).GateRegressions(0.35); err != nil {
		t.Fatalf("non-zero-profile panels must not gate: %v", err)
	}
	if err := NewBenchDoc("x", nil).GateRegressions(0.35); err == nil {
		t.Fatal("gate without a comparison must fail loudly")
	}
}

// TestMachineMismatch: Compare records the baseline machine, and a CPU
// count difference is surfaced.
func TestMachineMismatch(t *testing.T) {
	base := NewBenchDoc("base", []JSONRow{{Panel: "a", OpsPerSec: 1, Ops: 1}})
	doc := NewBenchDoc("next", []JSONRow{{Panel: "a", OpsPerSec: 1, Ops: 1}})
	doc.Compare(base)
	if doc.BaselineNumCPU != base.NumCPU || doc.BaselineGo != base.GoVersion {
		t.Fatalf("baseline machine not recorded: %+v", doc)
	}
	if doc.MachineMismatch() != "" {
		t.Fatalf("same machine flagged: %s", doc.MachineMismatch())
	}
	doc.BaselineNumCPU = doc.NumCPU + 4
	if doc.MachineMismatch() == "" {
		t.Fatal("CPU-count mismatch not flagged")
	}
}

func TestTrackedThroughputProxy(t *testing.T) {
	res := TrackedThroughput(2, 20*time.Millisecond)
	if res.Ops == 0 || res.Mops <= 0 {
		t.Fatalf("tracked proxy measured nothing: %+v", res)
	}
	// The proxy's op shape is fixed: two private-line stores + flush, one
	// shared CAS + flush, one fence. Flush and fence rates are therefore
	// pinned by construction (elision can only reduce issued flushes).
	if res.FencePerOp < 0.99 || res.FencePerOp > 1.01 {
		t.Fatalf("fence/op = %v, want 1", res.FencePerOp)
	}
	if sum := res.FlushPerOp + res.ElidePerOp; sum < 1.99 || sum > 2.01 {
		t.Fatalf("flush+elide per op = %v, want 2", sum)
	}
}

func TestRunBaselineSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every baseline row")
	}
	var lines []string
	rows, err := RunBaseline(10*time.Millisecond, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BaselineSuite(0)) || len(lines) != len(rows) {
		t.Fatalf("rows=%d progress=%d, want %d", len(rows), len(lines), len(BaselineSuite(0)))
	}
	doc := NewBenchDoc("smoke", rows)
	if err := doc.Verify(); err != nil {
		t.Fatal(err)
	}
}

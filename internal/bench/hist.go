package bench

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: durations are
// bucketed by their binary magnitude, with histSubCount linear sub-buckets
// per power of two, so relative quantization error is bounded by
// 1/histSubCount (~3%) across the whole range — nanoseconds to hours — in a
// fixed 15 KiB of counters. Recording is one bit-scan plus two adds and
// never allocates, so workers can record on the measurement path; Merge
// folds per-worker histograms into one for quantile extraction.
//
// A Histogram is not safe for concurrent use: give each worker its own and
// Merge after the workers have joined.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	min    int64
	max    int64
	sum    int64
}

const (
	// histSubBits gives 2^histSubBits linear sub-buckets per power of two.
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histGroups counts the log groups above the linear prefix: one per
	// leading-bit position from histSubBits to 63.
	histGroups  = 64 - histSubBits
	histBuckets = histSubCount * (histGroups + 1)
)

// histIndex maps a nanosecond value to its bucket: values below
// histSubCount land in the exact linear prefix; above, the group is the
// leading-bit position and the histSubBits bits after the leading bit pick
// the sub-bucket, giving contiguous indexes.
func histIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // position of the leading bit, ≥ histSubBits
	sub := int(v>>uint(e-histSubBits)) & (histSubCount - 1)
	return (e-histSubBits+1)*histSubCount + sub
}

// histValue returns the inclusive upper bound of a bucket (conservative for
// quantiles; callers clamp to the exact observed max).
func histValue(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	g := idx/histSubCount - 1 // 0-based log group; width 2^g
	sub := idx % histSubCount
	return int64(uint64(histSubCount+sub+1)<<uint(g)) - 1
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if h.total == 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.sum += ns
	h.total++
	h.counts[histIndex(ns)]++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.sum += o.sum
	h.total += o.total
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Min reports the exact smallest observation (no quantization).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max reports the exact largest observation (no quantization).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean reports the exact mean (tracked outside the buckets).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Quantile returns the latency at quantile q in [0, 1]: the upper bound of
// the bucket holding the q-th observation, clamped to the exact extrema.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := histValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Summary renders the standard percentile set on one line.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return "no latency samples"
	}
	return fmt.Sprintf("lat p50 %v  p95 %v  p99 %v  p99.9 %v  max %v (%d samples)",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Quantile(0.999),
		h.Max(), h.total)
}

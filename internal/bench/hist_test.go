package bench

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistIndexMonotonic pins the bucket layout: indexes are monotone in the
// value, contiguous, and in range for the whole int64 span.
func TestHistIndexMonotonic(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1000, 1e6, 1e9, 1e12, 1 << 62} {
		idx := histIndex(ns)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", ns, idx)
		}
		if idx < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d", ns, idx, prev)
		}
		prev = idx
	}
	if histIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// TestHistValueBounds pins the inverse: every value falls into a bucket
// whose upper bound is ≥ the value and within ~1/histSubCount of it.
func TestHistValueBounds(t *testing.T) {
	for _, ns := range []int64{0, 1, 31, 32, 63, 64, 1000, 12345, 1e6, 1e9 + 7} {
		idx := histIndex(ns)
		hi := histValue(idx)
		if hi < ns {
			t.Fatalf("value %d: bucket upper bound %d below the value", ns, hi)
		}
		if ns >= histSubCount && float64(hi-ns) > float64(ns)/float64(histSubCount)+1 {
			t.Fatalf("value %d: bucket upper bound %d too loose", ns, hi)
		}
	}
}

// TestHistQuantiles compares histogram quantiles against exact order
// statistics of a random sample: each must match within the bucket's
// relative width.
func TestHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]int64, 10000)
	for i := range vals {
		v := int64(rng.ExpFloat64() * 50_000) // ~50µs exponential
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Fatalf("q%.3f: histogram %d below exact %d", q, got, exact)
		}
		if float64(got-exact) > float64(exact)/histSubCount+1 {
			t.Fatalf("q%.3f: histogram %d too far above exact %d", q, got, exact)
		}
	}
	if h.Count() != 10000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Duration(vals[0]) || h.Max() != time.Duration(vals[len(vals)-1]) {
		t.Fatalf("min/max %v/%v want %d/%d", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
	}
}

// TestHistMerge verifies merged histograms equal one histogram fed the
// union of the samples.
func TestHistMerge(t *testing.T) {
	var a, b, both Histogram
	for i := 0; i < 1000; i++ {
		d := time.Duration(i * 997)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatalf("merge mismatch: %v vs %v", a.Summary(), both.Summary())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q%.2f: %v vs %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

// TestHistEmpty pins zero-value behavior.
func TestHistEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Summary() != "no latency samples" {
		t.Fatalf("summary %q", h.Summary())
	}
}

package ellenbst

import (
	"repro/internal/kv"
	"repro/internal/pmem"
)

// Update atomically read-modify-writes the value of key in place with a CAS
// on the leaf's value word. Returns the installed value and true, or
// (0, false) if key is absent.
//
// Leaves are immutable in every field Ellen et al.'s algorithm reasons
// about (Key, Leaf, the child links); the value word is user data that no
// coordination step reads, so an in-place CAS cannot interfere with a
// concurrent insert or delete. A delete that disconnects the leaf while
// the CAS is in flight overlaps this operation, so the update may be
// linearized before the deletion (the same argument as list.Update; the
// epoch critical section keeps the leaf's slot from being recycled until
// this operation exits). Persistence follows Protocol 2 with WroteData
// flushing the new value before the commit fence.
func (tr *Tree) Update(t *pmem.Thread, key uint64, fn func(old uint64) uint64) (uint64, bool) {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	for {
		tr.traverse(t, key, sr)
		pol.PostTraverse(t, sr.cells)
		lN := tr.node(sr.l)
		if t.Load(&lN.Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		old := t.Load(&lN.Value)
		pol.ReadData(t, &lN.Value)
		newv := fn(old)
		pol.BeforeCAS(t)
		if t.CAS(&lN.Value, old, newv) {
			pol.WroteData(t, &lN.Value)
			pol.BeforeReturn(t)
			t.CountOp()
			return newv, true
		}
		pol.BeforeReturn(t) // lost a value race: retraverse and retry
	}
}

// RangeScan visits every present key in [lo, hi] in ascending order,
// calling fn(key, value) until fn returns false or the range is exhausted.
//
// The scan is a pruned in-order walk: internal keys route exactly as the
// search does (left subtree < key <= right subtree), so subtrees wholly
// outside [lo, hi] are never entered and leaves arrive in key order. The
// whole walk is traversal-phase — child links are read with TraverseRead
// (no persistence under NVTraverse) and collected, then one PostTraverse
// persists every link of the visited region (the scan's returned node set)
// before the commit fence. Sentinel leaves (keys >= Inf1) are never in
// range. See list.RangeScan for the consistency contract.
func (tr *Tree) RangeScan(t *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error {
	lo, hi, ok := kv.ClampKeyRange(lo, hi)
	if !ok {
		return nil
	}
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	sr.cells = sr.cells[:0]
	stopped := false
	var walk func(idx uint64)
	walk = func(idx uint64) {
		if stopped {
			return
		}
		n := tr.node(idx)
		if t.Load(&n.Leaf) == 1 {
			k := t.Load(&n.Key)
			if k >= lo && k <= hi {
				v := t.Load(&n.Value)
				pol.ReadData(t, &n.Value)
				if !fn(k, v) {
					stopped = true
				}
			}
			return
		}
		k := t.Load(&n.Key)
		if lo < k {
			child := t.Load(&n.Left)
			pol.TraverseRead(t, &n.Left)
			sr.cells = append(sr.cells, &n.Left)
			if c := pmem.RefIndex(child); c != 0 {
				walk(c)
			}
		}
		if hi >= k {
			child := t.Load(&n.Right)
			pol.TraverseRead(t, &n.Right)
			sr.cells = append(sr.cells, &n.Right)
			if c := pmem.RefIndex(child); c != 0 {
				walk(c)
			}
		}
	}
	walk(tr.root)
	pol.PostTraverse(t, sr.cells)
	pol.BeforeReturn(t)
	t.CountOp()
	return nil
}

package ellenbst

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newTree(pol persist.Policy) (*Tree, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	tr := New(mem, pol)
	return tr, mem.NewThread()
}

func TestBasicOps(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			tr, th := newTree(pol)
			if _, ok := tr.Find(th, 10); ok {
				t.Fatalf("empty tree finds 10")
			}
			if !tr.Insert(th, 10, 100) || tr.Insert(th, 10, 101) {
				t.Fatalf("insert semantics broken")
			}
			if v, ok := tr.Find(th, 10); !ok || v != 100 {
				t.Fatalf("Find(10) = %d,%v", v, ok)
			}
			if !tr.Delete(th, 10) || tr.Delete(th, 10) {
				t.Fatalf("delete semantics broken")
			}
			if _, ok := tr.Find(th, 10); ok {
				t.Fatalf("deleted key found")
			}
			if err := tr.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInOrderContents(t *testing.T) {
	tr, th := newTree(persist.NVTraverse{})
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(1000)
	for _, k := range perm {
		if !tr.Insert(th, uint64(k)+1, uint64(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	got := tr.Contents(th)
	if len(got) != 1000 {
		t.Fatalf("size = %d", len(got))
	}
	for i := range got {
		if got[i] != uint64(i)+1 {
			t.Fatalf("contents[%d] = %d", i, got[i])
		}
	}
	if err := tr.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			tr, th := newTree(pol)
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(300)) + 1
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64() & ((1 << 32) - 1)
					_, exp := oracle[k]
					if tr.Insert(th, k, v) == exp {
						t.Fatalf("op %d: Insert(%d) disagreed", i, k)
					}
					if !exp {
						oracle[k] = v
					}
				case 1:
					_, exp := oracle[k]
					if tr.Delete(th, k) != exp {
						t.Fatalf("op %d: Delete(%d) disagreed", i, k)
					}
					delete(oracle, k)
				default:
					ev, exp := oracle[k]
					gv, ok := tr.Find(th, k)
					if ok != exp || (ok && gv != ev) {
						t.Fatalf("op %d: Find(%d) = %d,%v disagreed", i, k, gv, ok)
					}
				}
			}
			if err := tr.Validate(th); err != nil {
				t.Fatal(err)
			}
			if got := tr.Contents(th); len(got) != len(oracle) {
				t.Fatalf("size %d, oracle %d", len(got), len(oracle))
			}
		})
	}
}

func TestQuickOracle(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		tr, th := newTree(persist.NVTraverse{})
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key%89) + 1
			switch o.Kind % 3 {
			case 0:
				if tr.Insert(th, k, k) == oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if tr.Delete(th, k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if _, ok := tr.Find(th, k); ok != oracle[k] {
					return false
				}
			}
		}
		return tr.Validate(th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, pol := range []persist.Policy{persist.None{}, persist.NVTraverse{}, persist.Izraelevitz{}, persist.LinkAndPersist{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
			tr := New(mem, pol)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				th := mem.NewThread()
				wg.Add(1)
				go func(th *pmem.Thread) {
					defer wg.Done()
					for j := 0; j < 4000; j++ {
						k := th.Rand()%256 + 1
						switch th.Rand() % 3 {
						case 0:
							tr.Insert(th, k, k)
						case 1:
							tr.Delete(th, k)
						default:
							tr.Find(th, k)
						}
					}
				}(th)
			}
			wg.Wait()
			th := mem.NewThread()
			if err := tr.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	tr := New(mem, persist.NVTraverse{})
	const threads = 6
	var wg sync.WaitGroup
	fail := make(chan string, threads)
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		base := uint64(i*10000 + 1)
		wg.Add(1)
		go func(th *pmem.Thread, base uint64) {
			defer wg.Done()
			for k := base; k < base+300; k++ {
				if !tr.Insert(th, k, k) {
					fail <- "insert failed"
					return
				}
			}
			for k := base; k < base+300; k += 2 {
				if !tr.Delete(th, k) {
					fail <- "delete failed"
					return
				}
			}
			for k := base; k < base+300; k++ {
				_, ok := tr.Find(th, k)
				if want := (k-base)%2 == 1; ok != want {
					fail <- "find wrong"
					return
				}
			}
		}(th, base)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	th := mem.NewThread()
	if err := tr.Validate(th); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Contents(th)); got != threads*150 {
		t.Fatalf("size %d, want %d", got, threads*150)
	}
}

func TestFlushesLogarithmicNotLinear(t *testing.T) {
	// NVTraverse on a BST: O(1) flushes per op even though the traversal
	// visits O(log n) nodes; Izraelevitz flushes every step.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 8192; k++ {
		tr.Insert(th, k, k)
	}
	before := mem.Stats()
	tr.Find(th, 8000)
	d := mem.Stats().Sub(before)
	if d.Flushes > 6 {
		t.Fatalf("find flushed %d cells, want <= 6", d.Flushes)
	}
	if d.Fences > 2 {
		t.Fatalf("find fenced %d times", d.Fences)
	}
}

func TestMemoryReclamation(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for i := 0; i < 20000; i++ {
		k := uint64(i%8) + 1
		tr.Insert(th, k, k)
		tr.Delete(th, k)
	}
	if hw := tr.Nodes().HighWater(); hw > 8192 {
		t.Fatalf("node arena grew to %d handles over an 8-key churn", hw)
	}
	if hw := tr.infos.HighWater(); hw > 8192 {
		t.Fatalf("info arena grew to %d handles over an 8-key churn", hw)
	}
}

func TestRecoverCompletesInFlightOps(t *testing.T) {
	// Handcraft the three interrupted states (IFLAG, DFLAG, MARK) and check
	// recovery drives each to completion.
	t.Run("iflag", func(t *testing.T) {
		mem := pmem.NewTracked()
		tr := New(mem, persist.NVTraverse{})
		th := mem.NewThread()
		tr.Insert(th, 50, 500)
		// Stage an insert of 30 stopped right after the iflag CAS.
		var sr search
		tr.traverse(th, 30, &sr)
		newLeaf := tr.newLeaf(th, 30, 300)
		ni := tr.nodes.Alloc(th.ID)
		niN := tr.node(ni)
		lKey := th.Load(&tr.node(sr.l).Key)
		th.Store(&niN.Key, lKey)
		th.Store(&niN.Leaf, 0)
		th.Store(&niN.Left, pmem.MakeRef(newLeaf))
		th.Store(&niN.Right, pmem.MakeRef(sr.l))
		th.Store(&niN.Update, mkUpdate(stClean, 0))
		idx := tr.infos.Alloc(th.ID)
		inf := tr.info(idx)
		th.Store(&inf.Kind, kindInsert)
		th.Store(&inf.P, pmem.MakeRef(sr.p))
		th.Store(&inf.L, pmem.MakeRef(sr.l))
		th.Store(&inf.NewInternal, pmem.MakeRef(ni))
		if !th.CAS(&tr.node(sr.p).Update, sr.pUpdate, mkUpdate(stIFlag, idx)) {
			t.Fatalf("staging iflag failed")
		}
		mem.PersistAll() // pretend everything so far persisted
		tr.Recover(th)
		if _, ok := tr.Find(th, 30); !ok {
			t.Fatalf("recovery did not complete the flagged insert")
		}
		if err := tr.Validate(th); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("dflag", func(t *testing.T) {
		mem := pmem.NewTracked()
		tr := New(mem, persist.NVTraverse{})
		th := mem.NewThread()
		for _, k := range []uint64{20, 40, 60} {
			tr.Insert(th, k, k)
		}
		var sr search
		tr.traverse(th, 40, &sr)
		idx := tr.infos.Alloc(th.ID)
		inf := tr.info(idx)
		th.Store(&inf.Kind, kindDelete)
		th.Store(&inf.GP, pmem.MakeRef(sr.gp))
		th.Store(&inf.P, pmem.MakeRef(sr.p))
		th.Store(&inf.L, pmem.MakeRef(sr.l))
		th.Store(&inf.PUpdate, pmem.Dirty(sr.pUpdate))
		if !th.CAS(&tr.node(sr.gp).Update, sr.gpUpdate, mkUpdate(stDFlag, idx)) {
			t.Fatalf("staging dflag failed")
		}
		mem.PersistAll()
		tr.Recover(th)
		if _, ok := tr.Find(th, 40); ok {
			t.Fatalf("recovery did not complete the flagged delete")
		}
		if tr.CountMarked(th) != 0 {
			t.Fatalf("marked nodes survive recovery")
		}
		if err := tr.Validate(th); err != nil {
			t.Fatal(err)
		}
		for _, k := range []uint64{20, 60} {
			if _, ok := tr.Find(th, k); !ok {
				t.Fatalf("recovery lost key %d", k)
			}
		}
	})
}

func TestKeyRangePanics(t *testing.T) {
	tr, th := newTree(persist.None{})
	for _, bad := range []uint64{0, Inf1, Inf2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("key %d accepted", bad)
				}
			}()
			tr.Insert(th, bad, 0)
		}()
	}
}

package ellenbst

// Table-driven recovery tests: for every operation in the table, crash at
// every fence point of its execution (pmem.Memory.CrashAtFence aborts the
// k-th fence before it persists anything), run Recover, and check that the
// tree validates, carries no leftover operation flags, and shows a key set
// some linearization explains — the interrupted operation took effect
// fully or not at all, and no other key moved.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

type fenceScenario struct {
	name    string
	prefill []uint64
	op      func(*Tree, *pmem.Thread) bool
	key     uint64 // the key the op targets
	insert  bool   // op adds key (else removes); finds use key with insert=false+present prefill
}

func fenceScenarios() []fenceScenario {
	base := []uint64{10, 20, 30, 40}
	return []fenceScenario{
		{"insert-new", base, func(tr *Tree, t *pmem.Thread) bool { return tr.Insert(t, 25, 25) }, 25, true},
		{"insert-dup", base, func(tr *Tree, t *pmem.Thread) bool { return tr.Insert(t, 20, 99) }, 20, true},
		{"delete-present", base, func(tr *Tree, t *pmem.Thread) bool { return tr.Delete(t, 30) }, 30, false},
		{"delete-absent", base, func(tr *Tree, t *pmem.Thread) bool { return tr.Delete(t, 35) }, 35, false},
		{"find", base, func(tr *Tree, t *pmem.Thread) bool { _, ok := tr.Find(t, 20); return ok }, 20, false},
	}
}

// buildFence constructs a fresh persisted tree with the scenario's prefill.
func buildFence(sc fenceScenario) (*pmem.Memory, *Tree, *pmem.Thread) {
	mem := pmem.NewTracked()
	tr := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for _, k := range sc.prefill {
		tr.Insert(th, k, k)
	}
	mem.PersistAll()
	return mem, tr, th
}

// opFences counts the fences one clean execution of the op issues.
func opFences(sc fenceScenario) int {
	mem, tr, th := buildFence(sc)
	before := mem.Stats().Fences
	sc.op(tr, th)
	return int(mem.Stats().Fences - before)
}

func TestRecoveryAtEveryFencePoint(t *testing.T) {
	for _, sc := range fenceScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			fences := opFences(sc)
			if fences == 0 {
				t.Fatalf("scenario issues no fences; nothing to schedule")
			}
			// k = fences+1 runs untrapped: the op completes.
			for k := 1; k <= fences+1; k++ {
				mem, tr, th := buildFence(sc)
				if k <= fences {
					mem.CrashAtFence(k)
				}
				crashed := pmem.RunOp(func() { sc.op(tr, th) })
				if crashed != (k <= fences) {
					t.Fatalf("fence %d/%d: crashed=%v", k, fences, crashed)
				}
				if crashed {
					mem.FinishCrash(0, int64(k))
					mem.Restart()
				}
				rec := mem.NewThread()
				tr.Recover(rec)
				if err := tr.Validate(rec); err != nil {
					t.Fatalf("fence %d/%d: invalid tree after recovery: %v", k, fences, err)
				}
				if n := tr.CountMarked(rec); n != 0 {
					t.Fatalf("fence %d/%d: %d marked nodes survive recovery", k, fences, n)
				}
				if err := checkFenceContents(sc, tr, rec, !crashed); err != nil {
					t.Fatalf("fence %d/%d: %v", k, fences, err)
				}
				// The recovered tree accepts new operations.
				if !tr.Insert(rec, 999, 999) {
					t.Fatalf("fence %d/%d: post-recovery insert failed", k, fences)
				}
			}
		})
	}
}

// checkFenceContents verifies the surviving key set: every non-target
// prefill key intact, no foreign keys, and the target in a state some
// linearization of the (possibly interrupted) operation explains.
func checkFenceContents(sc fenceScenario, tr *Tree, rec *pmem.Thread, completed bool) error {
	got := map[uint64]bool{}
	for _, k := range tr.Contents(rec) {
		got[k] = true
	}
	preTarget := false
	for _, k := range sc.prefill {
		if k == sc.key {
			preTarget = true
			continue
		}
		if !got[k] {
			return fmt.Errorf("prefilled key %d lost", k)
		}
		delete(got, k)
	}
	targetNow, hasTarget := got[sc.key]
	delete(got, sc.key)
	if len(got) != 0 {
		extra := make([]uint64, 0, len(got))
		for k := range got {
			extra = append(extra, k)
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		return fmt.Errorf("foreign keys present: %v", extra)
	}
	targetPresent := hasTarget && targetNow
	var want []bool
	switch {
	case completed && sc.insert:
		want = []bool{true}
	case completed && !sc.insert && sc.name != "find":
		want = []bool{false}
	case completed: // find
		want = []bool{preTarget}
	case sc.name == "find":
		// Interrupted find: lookups never change membership.
		want = []bool{preTarget}
	default:
		// Interrupted mutation: effect or no effect are both explainable.
		if sc.insert {
			want = []bool{preTarget, true}
		} else {
			want = []bool{preTarget, false}
		}
	}
	for _, w := range want {
		if targetPresent == w {
			return nil
		}
	}
	return fmt.Errorf("target %d present=%v, allowed %v (prefilled=%v)",
		sc.key, targetPresent, want, preTarget)
}

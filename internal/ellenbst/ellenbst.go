// Package ellenbst implements the non-blocking external binary search tree
// of Ellen, Fatourou, Ruppert and van Breugel (PODC'10) in the traversal
// form of the NVTraverse paper.
//
// The tree is leaf-oriented: internal nodes route by key, leaves hold the
// set's elements. Updates coordinate through per-internal-node update words
// holding a state (CLEAN / IFLAG / DFLAG / MARK) and a pointer to an Info
// record describing the operation, so any thread can help any pending
// operation to completion (lock-freedom).
//
// Traversal form: the search from the root down to a leaf is the traverse
// method — it routes only on immutable keys and stops at the (immutable)
// leaf flag, returning (gp, p, l) along with the update words it read, so
// Protocol 1 flushes exactly those update words and the path links into the
// returned nodes. Everything from helping onward is the critical method
// under Protocol 2.
//
// MARK on p.Update is the paper's Definition 1 mark: once set, no field of
// p changes and the unique disconnection instruction (Property 5) is the
// gp-child CAS recorded in the Info record.
package ellenbst

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Update-word states (low two bits).
const (
	stClean uint64 = 0
	stIFlag uint64 = 1
	stDFlag uint64 = 2
	stMark  uint64 = 3

	stateMask uint64 = 3
	infoShift        = 2
)

// Sentinel keys: every user key must be < Inf1.
const (
	Inf1 = uint64(1) << 61
	Inf2 = Inf1 + 1
)

func state(u uint64) uint64   { return u & stateMask }
func infoIdx(u uint64) uint64 { return (u &^ pmem.PersistBit) >> infoShift }
func mkUpdate(st, info uint64) uint64 {
	return st | info<<infoShift
}

// Node is a tree node. Key and Leaf are immutable after initialization;
// Left/Right are the child links of internal nodes; Update is the
// coordination word; Value holds the element's value in leaves.
type Node struct {
	Key    pmem.Cell
	Leaf   pmem.Cell // 1 = leaf, 0 = internal
	Value  pmem.Cell
	Left   pmem.Cell
	Right  pmem.Cell
	Update pmem.Cell
	_      [16]byte // pad to one 64-byte line (line-granular persistence)
}

// Info is an operation descriptor. Kind and all fields are immutable after
// initialization (persisted before the flag CAS publishes the record).
type Info struct {
	Kind        pmem.Cell // 0 = insert, 1 = delete
	GP          pmem.Cell // delete only
	P           pmem.Cell
	L           pmem.Cell
	NewInternal pmem.Cell // insert only
	PUpdate     pmem.Cell // delete only: p.Update value read by the search
	_           [16]byte  // pad to one 64-byte line (line-granular persistence)
}

const (
	kindInsert = 0
	kindDelete = 1
)

// Tree is the set.
type Tree struct {
	mem   *pmem.Memory
	dom   *epoch.Domain
	nodes *arena.Arena[Node]
	infos *arena.Arena[Info]
	pol   persist.Policy
	root  uint64

	trs []paddedSearch
}

type paddedSearch struct {
	sr search
	_  [64]byte
}

// search is the traverse method's result.
type search struct {
	gp, p, l          uint64 // gp may be 0 (p is the root)
	gpUpdate, pUpdate uint64 // raw update words as read
	intoGP, intoP     *pmem.Cell
	intoL             *pmem.Cell
	cells             []*pmem.Cell
}

// New creates an empty tree (root internal with two sentinel leaves).
func New(mem *pmem.Memory, pol persist.Policy) *Tree {
	dom := epoch.New(mem.MaxThreads())
	tr := &Tree{
		mem:   mem,
		dom:   dom,
		nodes: arena.New[Node](dom, mem.MaxThreads()),
		infos: arena.New[Info](dom, mem.MaxThreads()),
		pol:   pol,
		trs:   make([]paddedSearch, mem.MaxThreads()),
	}
	// Fixed registration order (nodes, then infos) keeps on-disk space IDs
	// stable across boots.
	tr.nodes.Persist(mem.NewSpace())
	tr.infos.Persist(mem.NewSpace())
	t := mem.NewThread()
	l1 := tr.newLeaf(t, Inf1, 0)
	l2 := tr.newLeaf(t, Inf2, 0)
	r := tr.nodes.Alloc(t.ID)
	n := tr.nodes.Get(r)
	t.Store(&n.Key, Inf2)
	t.Store(&n.Leaf, 0)
	t.Store(&n.Value, 0)
	t.Store(&n.Left, pmem.MakeRef(l1))
	t.Store(&n.Right, pmem.MakeRef(l2))
	t.Store(&n.Update, mkUpdate(stClean, 0))
	t.Flush(&n.Key)
	t.Flush(&n.Left)
	t.Flush(&n.Right)
	t.Flush(&n.Update)
	t.Fence()
	tr.root = r
	return tr
}

func (tr *Tree) node(idx uint64) *Node { return tr.nodes.Get(idx) }
func (tr *Tree) info(idx uint64) *Info { return tr.infos.Get(idx) }

// Nodes exposes the node arena (tests, recovery sweeps).
func (tr *Tree) Nodes() *arena.Arena[Node] { return tr.nodes }

// Root returns the root handle (tests, recovery).
func (tr *Tree) Root() uint64 { return tr.root }

func (tr *Tree) newLeaf(t *pmem.Thread, key, value uint64) uint64 {
	idx := tr.nodes.Alloc(t.ID)
	n := tr.nodes.Get(idx)
	t.Store(&n.Key, key)
	t.Store(&n.Leaf, 1)
	t.Store(&n.Value, value)
	t.Store(&n.Left, pmem.NilRef)
	t.Store(&n.Right, pmem.NilRef)
	t.Store(&n.Update, mkUpdate(stClean, 0))
	// Every field is flushed before publication: arena slots are recycled,
	// so an unpersisted field would roll back to the previous occupant's
	// value on a crash (e.g. a Leaf flag flipping back to "internal").
	tr.pol.InitWrite(t, &n.Key)
	tr.pol.InitWrite(t, &n.Leaf)
	tr.pol.InitWrite(t, &n.Value)
	tr.pol.InitWrite(t, &n.Left)
	tr.pol.InitWrite(t, &n.Right)
	tr.pol.InitWrite(t, &n.Update)
	return idx
}

// traverse is the search of Ellen et al.: route down by key comparisons
// (immutable), reading each internal node's update word before following
// its child link, until a leaf. No shared memory is modified.
func (tr *Tree) traverse(t *pmem.Thread, k uint64, sr *search) {
	pol := tr.pol
	var gp, p uint64
	var gpUpdate, pUpdate uint64
	var intoGP, intoP, intoL *pmem.Cell
	l := tr.root
	for {
		n := tr.node(l)
		if t.Load(&n.Leaf) == 1 {
			break
		}
		gp, gpUpdate, intoGP = p, pUpdate, intoP
		p = l
		pUpdate = t.Load(&n.Update)
		pol.TraverseRead(t, &n.Update)
		intoP = intoL
		if k < t.Load(&n.Key) {
			l = pmem.RefIndex(t.Load(&n.Left))
			pol.TraverseRead(t, &n.Left)
			intoL = &n.Left
		} else {
			l = pmem.RefIndex(t.Load(&n.Right))
			pol.TraverseRead(t, &n.Right)
			intoL = &n.Right
		}
	}
	sr.gp, sr.p, sr.l = gp, p, l
	sr.gpUpdate, sr.pUpdate = gpUpdate, pUpdate
	sr.intoGP, sr.intoP, sr.intoL = intoGP, intoP, intoL
	// Protocol 1 cell set: ensureReachable is the link into the topmost
	// returned node (gp if present, else p); makePersistent covers the
	// fields read in gp, p and l — their update words and the path links.
	sr.cells = sr.cells[:0]
	if sr.intoGP != nil {
		sr.cells = append(sr.cells, sr.intoGP)
	}
	if sr.gp != 0 {
		sr.cells = append(sr.cells, &tr.node(sr.gp).Update)
	}
	if sr.intoP != nil {
		sr.cells = append(sr.cells, sr.intoP)
	}
	sr.cells = append(sr.cells, &tr.node(sr.p).Update)
	if sr.intoL != nil {
		sr.cells = append(sr.cells, sr.intoL)
	}
}

// cas2 performs a CAS whose expected value was constructed rather than
// read: under the link-and-persist policy a concurrent flush may have set
// the persist tag on the word, so both the plain and the tagged variant of
// the expectation must be tried. The new value is dirty by construction.
func (tr *Tree) cas2(t *pmem.Thread, c *pmem.Cell, expected, newv uint64) bool {
	if t.CAS(c, expected, newv) {
		return true
	}
	return t.CAS(c, expected|pmem.PersistBit, newv)
}

// childCellToward returns p's child cell on the side where key belongs.
func (tr *Tree) childCellToward(t *pmem.Thread, p uint64, key uint64) *pmem.Cell {
	n := tr.node(p)
	if key < t.Load(&n.Key) {
		return &n.Left
	}
	return &n.Right
}

// help advances whatever operation the update word u describes (critical
// method work, Protocol 2 persistence).
func (tr *Tree) help(t *pmem.Thread, u uint64) {
	switch state(u) {
	case stIFlag:
		tr.helpInsert(t, infoIdx(u))
	case stMark:
		tr.helpMarked(t, infoIdx(u))
	case stDFlag:
		tr.helpDelete(t, infoIdx(u))
	}
}

// helpInsert completes an insert described by info idx: swing p's child
// from l to newInternal (ichild), then unflag p.
func (tr *Tree) helpInsert(t *pmem.Thread, idx uint64) {
	inf := tr.info(idx)
	p := pmem.RefIndex(t.Load(&inf.P))
	l := pmem.RefIndex(t.Load(&inf.L))
	ni := pmem.RefIndex(t.Load(&inf.NewInternal))
	// Info fields and node keys are immutable: no flush after reading.
	lKey := t.Load(&tr.node(l).Key)
	cell := tr.childCellToward(t, p, lKey)
	pol := tr.pol
	pol.BeforeCAS(t)
	tr.cas2(t, cell, pmem.MakeRef(l), pmem.MakeRef(ni)) // ichild
	pol.Wrote(t, cell)
	pU := &tr.node(p).Update
	pol.BeforeCAS(t)
	tr.cas2(t, pU, mkUpdate(stIFlag, idx), mkUpdate(stClean, idx)) // iunflag
	pol.Wrote(t, pU)
}

// helpDelete tries to mark p (the parent of the doomed leaf). Returns true
// when the deletion went through (p marked and spliced), false when it had
// to back off (gp was unflagged instead).
func (tr *Tree) helpDelete(t *pmem.Thread, idx uint64) bool {
	inf := tr.info(idx)
	p := pmem.RefIndex(t.Load(&inf.P))
	gp := pmem.RefIndex(t.Load(&inf.GP))
	pUpdateExp := t.Load(&inf.PUpdate)
	pol := tr.pol
	pU := &tr.node(p).Update
	pol.BeforeCAS(t)
	res := tr.cas2(t, pU, pmem.Dirty(pUpdateExp), mkUpdate(stMark, idx)) // mark
	pol.Wrote(t, pU)
	cur := t.Load(pU)
	pol.Read(t, pU)
	if res || pmem.Dirty(cur) == mkUpdate(stMark, idx) {
		tr.helpMarked(t, idx)
		return true
	}
	// Someone else got in: help them, then back out of the dflag.
	tr.help(t, pmem.Dirty(cur))
	gpU := &tr.node(gp).Update
	pol.BeforeCAS(t)
	tr.cas2(t, gpU, mkUpdate(stDFlag, idx), mkUpdate(stClean, idx)) // backtrack
	pol.Wrote(t, gpU)
	return false
}

// helpMarked splices p (marked) and its doomed leaf out by swinging gp's
// child to l's sibling (dchild), then unflags gp. This is the unique
// disconnection instruction of Property 5.
func (tr *Tree) helpMarked(t *pmem.Thread, idx uint64) {
	inf := tr.info(idx)
	p := pmem.RefIndex(t.Load(&inf.P))
	gp := pmem.RefIndex(t.Load(&inf.GP))
	l := pmem.RefIndex(t.Load(&inf.L))
	pol := tr.pol
	pn := tr.node(p)
	left := t.Load(&pn.Left)
	pol.Read(t, &pn.Left)
	var sibling uint64
	if pmem.RefIndex(left) == l {
		sibling = t.Load(&pn.Right)
		pol.Read(t, &pn.Right)
	} else {
		sibling = left
	}
	pKey := t.Load(&pn.Key)
	cell := tr.childCellToward(t, gp, pKey)
	pol.BeforeCAS(t)
	tr.cas2(t, cell, pmem.MakeRef(p), pmem.ClearTags(sibling)) // dchild
	pol.Wrote(t, cell)
	gpU := &tr.node(gp).Update
	pol.BeforeCAS(t)
	tr.cas2(t, gpU, mkUpdate(stDFlag, idx), mkUpdate(stClean, idx)) // dunflag
	pol.Wrote(t, gpU)
}

// Insert adds key with value; false if present.
func (tr *Tree) Insert(t *pmem.Thread, key, value uint64) bool {
	_, inserted := tr.insertGet(t, key, value, false)
	return inserted
}

// GetOrInsert atomically returns the present value of key (inserted=false)
// or inserts value and returns it (inserted=true).
func (tr *Tree) GetOrInsert(t *pmem.Thread, key, value uint64) (v uint64, inserted bool) {
	return tr.insertGet(t, key, value, true)
}

// insertGet is the shared critical section of Insert and GetOrInsert; see
// list.insertGet for the wantValue contract.
func (tr *Tree) insertGet(t *pmem.Thread, key, value uint64, wantValue bool) (uint64, bool) {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	for {
		tr.traverse(t, key, sr)
		pol.PostTraverse(t, sr.cells)
		lN := tr.node(sr.l)
		if t.Load(&lN.Key) == key {
			var v uint64
			if wantValue {
				v = t.Load(&lN.Value)
				pol.ReadData(t, &lN.Value)
			}
			pol.BeforeReturn(t)
			t.CountOp()
			return v, false
		}
		if state(sr.pUpdate) != stClean {
			tr.help(t, pmem.Dirty(sr.pUpdate))
			continue
		}
		// Build the replacement subtree: newInternal over (new leaf, l).
		lKey := t.Load(&lN.Key)
		newLeaf := tr.newLeaf(t, key, value)
		ni := tr.nodes.Alloc(t.ID)
		niN := tr.node(ni)
		maxKey := key
		if lKey > maxKey {
			maxKey = lKey
		}
		t.Store(&niN.Key, maxKey)
		t.Store(&niN.Leaf, 0)
		t.Store(&niN.Value, 0)
		if key < lKey {
			t.Store(&niN.Left, pmem.MakeRef(newLeaf))
			t.Store(&niN.Right, pmem.MakeRef(sr.l))
		} else {
			t.Store(&niN.Left, pmem.MakeRef(sr.l))
			t.Store(&niN.Right, pmem.MakeRef(newLeaf))
		}
		t.Store(&niN.Update, mkUpdate(stClean, 0))
		pol.InitWrite(t, &niN.Key)
		pol.InitWrite(t, &niN.Leaf)
		pol.InitWrite(t, &niN.Value)
		pol.InitWrite(t, &niN.Left)
		pol.InitWrite(t, &niN.Right)
		pol.InitWrite(t, &niN.Update)
		idx := tr.infos.Alloc(t.ID)
		inf := tr.info(idx)
		t.Store(&inf.Kind, kindInsert)
		t.Store(&inf.GP, pmem.NilRef)
		t.Store(&inf.P, pmem.MakeRef(sr.p))
		t.Store(&inf.L, pmem.MakeRef(sr.l))
		t.Store(&inf.NewInternal, pmem.MakeRef(ni))
		t.Store(&inf.PUpdate, 0)
		pol.InitWrite(t, &inf.Kind)
		pol.InitWrite(t, &inf.GP)
		pol.InitWrite(t, &inf.P)
		pol.InitWrite(t, &inf.L)
		pol.InitWrite(t, &inf.NewInternal)
		pol.InitWrite(t, &inf.PUpdate)
		pU := &tr.node(sr.p).Update
		pol.BeforeCAS(t)
		ok := t.CAS(pU, sr.pUpdate, mkUpdate(stIFlag, idx)) // iflag
		pol.Wrote(t, pU)
		if ok {
			tr.helpInsert(t, idx)
			pol.BeforeReturn(t)
			// The unflag is persisted; nobody dereferences a CLEAN
			// word's info pointer, so the record may be recycled.
			tr.infos.Retire(t.ID, idx)
			t.CountOp()
			return value, true
		}
		// Flag failed: recycle the never-published allocations, help
		// whoever beat us, retry.
		tr.nodes.Free(t.ID, newLeaf)
		tr.nodes.Free(t.ID, ni)
		tr.infos.Free(t.ID, idx)
		cur := t.Load(pU)
		pol.Read(t, pU)
		tr.help(t, pmem.Dirty(cur))
	}
}

// Delete removes key; false if absent.
func (tr *Tree) Delete(t *pmem.Thread, key uint64) bool {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	for {
		tr.traverse(t, key, sr)
		pol.PostTraverse(t, sr.cells)
		if t.Load(&tr.node(sr.l).Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return false
		}
		if state(sr.gpUpdate) != stClean {
			tr.help(t, pmem.Dirty(sr.gpUpdate))
			continue
		}
		if state(sr.pUpdate) != stClean {
			tr.help(t, pmem.Dirty(sr.pUpdate))
			continue
		}
		idx := tr.infos.Alloc(t.ID)
		inf := tr.info(idx)
		t.Store(&inf.Kind, kindDelete)
		t.Store(&inf.GP, pmem.MakeRef(sr.gp))
		t.Store(&inf.P, pmem.MakeRef(sr.p))
		t.Store(&inf.L, pmem.MakeRef(sr.l))
		t.Store(&inf.NewInternal, pmem.NilRef)
		t.Store(&inf.PUpdate, pmem.Dirty(sr.pUpdate))
		pol.InitWrite(t, &inf.Kind)
		pol.InitWrite(t, &inf.GP)
		pol.InitWrite(t, &inf.P)
		pol.InitWrite(t, &inf.L)
		pol.InitWrite(t, &inf.NewInternal)
		pol.InitWrite(t, &inf.PUpdate)
		gpU := &tr.node(sr.gp).Update
		pol.BeforeCAS(t)
		ok := t.CAS(gpU, sr.gpUpdate, mkUpdate(stDFlag, idx)) // dflag
		pol.Wrote(t, gpU)
		if ok {
			if tr.helpDelete(t, idx) {
				pol.BeforeReturn(t)
				// Disconnection persisted (the fence above): the
				// spliced internal node, its leaf, and the info
				// record may be recycled by the operation owner.
				tr.nodes.Retire(t.ID, sr.p)
				tr.nodes.Retire(t.ID, sr.l)
				tr.infos.Retire(t.ID, idx)
				t.CountOp()
				return true
			}
			continue
		}
		tr.infos.Free(t.ID, idx)
		cur := t.Load(gpU)
		pol.Read(t, gpU)
		tr.help(t, pmem.Dirty(cur))
	}
}

// Find reports membership and value.
func (tr *Tree) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	checkKey(key)
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	pol := tr.pol
	sr := &tr.trs[t.ID].sr
	tr.traverse(t, key, sr)
	pol.PostTraverse(t, sr.cells)
	lN := tr.node(sr.l)
	if t.Load(&lN.Key) != key {
		pol.BeforeReturn(t)
		t.CountOp()
		return 0, false
	}
	v := t.Load(&lN.Value)
	pol.ReadData(t, &lN.Value)
	pol.BeforeReturn(t)
	t.CountOp()
	return v, true
}

func checkKey(key uint64) {
	if key == 0 || key >= Inf1 {
		panic(fmt.Sprintf("ellenbst: key %d out of range [1, 2^61)", key))
	}
}

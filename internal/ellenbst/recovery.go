package ellenbst

import (
	"fmt"

	"repro/internal/pmem"
)

// Recover implements the paper's recovery phase: complete or roll forward
// every operation whose flag survived the crash, which in particular
// executes the unique disconnection instruction for every marked node
// (Supplement 1's disconnect). A persisted flag implies a persisted Info
// record — records are flushed and fenced before the flag CAS — so the
// descriptor is always intact. Single-threaded; every repair is persisted.
//
//nvcheck:ignore fencereturn -- single-threaded recovery: each repair fences where it happens (recoverNode), and repair-free paths have nothing to persist, so no trailing fence is wanted
func (tr *Tree) Recover(t *pmem.Thread) {
	tr.dom.Enter(t.ID)
	defer tr.dom.Exit(t.ID)
	tr.recoverNode(t, tr.root)
}

func (tr *Tree) recoverNode(t *pmem.Thread, idx uint64) {
	n := tr.node(idx)
	if t.Load(&n.Leaf) == 1 {
		return
	}
	u := pmem.Dirty(t.Load(&n.Update))
	switch state(u) {
	case stIFlag:
		tr.helpInsert(t, infoIdx(u))
		t.Fence()
	case stDFlag:
		tr.helpDelete(t, infoIdx(u))
		t.Fence()
	case stMark:
		// p is marked: its gp still carries the DFLAG (marking precedes
		// splicing); completing from the descriptor splices p out.
		tr.helpMarked(t, infoIdx(u))
		t.Fence()
	}
	// Children may have changed by the repairs above: read them after.
	left := pmem.RefIndex(t.Load(&n.Left))
	right := pmem.RefIndex(t.Load(&n.Right))
	if left != 0 {
		tr.recoverNode(t, left)
	}
	if right != 0 {
		tr.recoverNode(t, right)
	}
}

// Contents returns the user keys of all leaves, in order (quiescent use).
func (tr *Tree) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	tr.walkLeaves(t, tr.root, func(idx uint64) {
		k := t.Load(&tr.node(idx).Key)
		if k < Inf1 {
			out = append(out, k)
		}
	})
	return out
}

func (tr *Tree) walkLeaves(t *pmem.Thread, idx uint64, f func(uint64)) {
	n := tr.node(idx)
	if t.Load(&n.Leaf) == 1 {
		f(idx)
		return
	}
	if l := pmem.RefIndex(t.Load(&n.Left)); l != 0 {
		tr.walkLeaves(t, l, f)
	}
	if r := pmem.RefIndex(t.Load(&n.Right)); r != 0 {
		tr.walkLeaves(t, r, f)
	}
}

// Validate checks the external-BST invariants (quiescent use): every
// internal node has two children; left-subtree keys < node key <= right-
// subtree keys; leaf keys strictly increase left to right; both sentinel
// leaves are in place.
func (tr *Tree) Validate(t *pmem.Thread) error {
	var last uint64
	var count int
	var err error
	var walk func(idx uint64, lo, hi uint64)
	walk = func(idx uint64, lo, hi uint64) {
		if err != nil {
			return
		}
		count++
		if count > 1<<22 {
			err = fmt.Errorf("ellenbst: cycle suspected")
			return
		}
		n := tr.node(idx)
		k := t.Load(&n.Key)
		if t.Load(&n.Leaf) == 1 {
			if k < lo || k >= hi {
				err = fmt.Errorf("ellenbst: leaf key %d outside (%d, %d]", k, lo, hi)
				return
			}
			if count > 1 && k < last {
				err = fmt.Errorf("ellenbst: leaf keys out of order: %d after %d", k, last)
				return
			}
			last = k
			return
		}
		left := pmem.RefIndex(t.Load(&n.Left))
		right := pmem.RefIndex(t.Load(&n.Right))
		if left == 0 || right == 0 {
			err = fmt.Errorf("ellenbst: internal node %d missing a child", idx)
			return
		}
		walk(left, lo, k)
		walk(right, k, hi)
	}
	walk(tr.root, 0, ^uint64(0))
	return err
}

// CountMarked counts reachable internal nodes whose update word is MARK
// (0 after recovery: marked nodes are disconnected). Quiescent use.
func (tr *Tree) CountMarked(t *pmem.Thread) int {
	n := 0
	var walk func(idx uint64)
	walk = func(idx uint64) {
		nd := tr.node(idx)
		if t.Load(&nd.Leaf) == 1 {
			return
		}
		if state(pmem.Dirty(t.Load(&nd.Update))) == stMark {
			n++
		}
		if l := pmem.RefIndex(t.Load(&nd.Left)); l != 0 {
			walk(l)
		}
		if r := pmem.RefIndex(t.Load(&nd.Right)); r != 0 {
			walk(r)
		}
	}
	walk(tr.root)
	return n
}

// LiveHandles accumulates every reachable node handle for the post-crash
// arena sweep.
func (tr *Tree) LiveHandles(t *pmem.Thread, live map[uint64]bool) {
	var walk func(idx uint64)
	walk = func(idx uint64) {
		live[idx] = true
		n := tr.node(idx)
		if t.Load(&n.Leaf) == 1 {
			return
		}
		if l := pmem.RefIndex(t.Load(&n.Left)); l != 0 {
			walk(l)
		}
		if r := pmem.RefIndex(t.Load(&n.Right)); r != 0 {
			walk(r)
		}
	}
	walk(tr.root)
}

// Package onefile implements the persistent transactional memory baseline
// the paper compares against (Ramalhete et al.'s OneFile). This is a
// simplified PTM that reproduces the two properties the evaluation
// depends on, rather than OneFile's full wait-free machinery:
//
//   - update transactions serialize through a single writer at a time and
//     pay a redo-log round trip (log writes → persist log → mark committed
//     → apply in place → persist → clear), which is why PTM throughput
//     stays flat as threads increase and trails NVTraverse on update-heavy
//     workloads by the factors the paper reports;
//   - read-only transactions are optimistic (seqlock validation), touch no
//     persistence instruction at all, and therefore excel at 0% updates —
//     the paper's observation that "OneFile does extremely well in
//     read-only workloads ... because OneFile is optimized for such
//     workloads".
//
// Crash behaviour: the redo log and its committed flag live in simulated
// persistent memory; if a crash lands between commit-mark and the final
// clear, recovery replays the log. Log targets are kept as cell pointers,
// which in this simulation stand in for the pool offsets a real PTM would
// store (the simulated crash keeps process memory, so pointers remain
// meaningful — see DESIGN.md's substitution table).
package onefile

import (
	"fmt"
	"sync"

	"repro/internal/pmem"
)

// MaxWriteSet bounds the write set of one transaction.
const MaxWriteSet = 128

// TM is the transactional memory. One TM instance guards one structure.
type TM struct {
	mem *pmem.Memory

	wmu sync.Mutex
	seq pmem.Cell // even = stable; odd = update transaction in progress

	logVals   []pmem.Cell // persistent redo values
	logCount  pmem.Cell   // persistent entry count
	committed pmem.Cell   // persistent commit mark
	targets   []*pmem.Cell
}

// NewTM creates a TM on mem.
func NewTM(mem *pmem.Memory) *TM {
	return &TM{
		mem:     mem,
		logVals: make([]pmem.Cell, MaxWriteSet),
		targets: make([]*pmem.Cell, MaxWriteSet),
	}
}

// Tx is an update transaction: reads see own writes; writes are buffered
// until commit so the redo log is complete before the first in-place
// store.
type Tx struct {
	tm *TM
	t  *pmem.Thread
	wc []*pmem.Cell
	wv []uint64
}

// Load reads a cell through the transaction.
func (tx *Tx) Load(c *pmem.Cell) uint64 {
	for i := len(tx.wc) - 1; i >= 0; i-- {
		if tx.wc[i] == c {
			return tx.wv[i]
		}
	}
	return tx.t.Load(c)
}

// Store buffers a write.
func (tx *Tx) Store(c *pmem.Cell, v uint64) {
	for i := len(tx.wc) - 1; i >= 0; i-- {
		if tx.wc[i] == c {
			tx.wv[i] = v
			return
		}
	}
	if len(tx.wc) >= MaxWriteSet {
		panic(fmt.Sprintf("onefile: write set exceeds %d", MaxWriteSet))
	}
	tx.wc = append(tx.wc, c)
	tx.wv = append(tx.wv, v)
}

// Update runs fn as a durable update transaction.
func (tm *TM) Update(t *pmem.Thread, fn func(tx *Tx)) {
	tm.wmu.Lock()
	defer tm.wmu.Unlock()
	s := t.Load(&tm.seq)
	t.Store(&tm.seq, s+1) // odd: readers will retry
	tx := &Tx{tm: tm, t: t}
	fn(tx)
	// Phase 1: persist the complete redo log, then the commit mark.
	for i, c := range tx.wc {
		t.Store(&tm.logVals[i], tx.wv[i])
		t.Flush(&tm.logVals[i])
		tm.targets[i] = c
	}
	t.Store(&tm.logCount, uint64(len(tx.wc)))
	t.Flush(&tm.logCount)
	t.Fence()
	t.Store(&tm.committed, 1)
	t.Flush(&tm.committed)
	t.Fence()
	// Phase 2: apply in place and persist the home locations.
	for i, c := range tx.wc {
		t.Store(c, tx.wv[i])
		t.Flush(c)
	}
	t.Fence()
	// Phase 3: retire the log.
	t.Store(&tm.committed, 0)
	t.Flush(&tm.committed)
	t.Fence()
	t.Store(&tm.seq, s+2)
	t.CountOp()
}

// Read runs fn as an optimistic read-only transaction: no flushes, no
// fences, retried until it observes a stable sequence number.
func (tm *TM) Read(t *pmem.Thread, fn func(t *pmem.Thread)) {
	for {
		s1 := t.Load(&tm.seq)
		if s1&1 == 1 {
			continue
		}
		fn(t)
		if t.Load(&tm.seq) == s1 {
			t.CountOp()
			return
		}
	}
}

// Recover replays a committed-but-unapplied redo log after a crash.
// Single-threaded.
func (tm *TM) Recover(t *pmem.Thread) {
	if t.Load(&tm.committed) == 1 {
		n := t.Load(&tm.logCount)
		for i := uint64(0); i < n; i++ {
			c := tm.targets[i]
			if c == nil {
				continue
			}
			t.Store(c, t.Load(&tm.logVals[i]))
			t.Flush(c)
		}
		t.Fence()
		t.Store(&tm.committed, 0)
		t.Flush(&tm.committed)
		t.Fence()
	}
	// The seq word is volatile coordination state.
	t.Store(&tm.seq, 0)
}

package onefile

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

func TestTxReadOwnWrites(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	tm := NewTM(mem)
	th := mem.NewThread()
	var a, b pmem.Cell
	tm.Update(th, func(tx *Tx) {
		tx.Store(&a, 1)
		if tx.Load(&a) != 1 {
			t.Errorf("tx does not see own write")
		}
		tx.Store(&a, 2)
		tx.Store(&b, tx.Load(&a)+1)
	})
	if th.Load(&a) != 2 || th.Load(&b) != 3 {
		t.Fatalf("committed values: a=%d b=%d", th.Load(&a), th.Load(&b))
	}
}

func TestUpdateIsDurable(t *testing.T) {
	mem := pmem.NewTracked()
	tm := NewTM(mem)
	th := mem.NewThread()
	var a pmem.Cell
	tm.Update(th, func(tx *Tx) { tx.Store(&a, 42) })
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	tm.Recover(th)
	if th.Load(&a) != 42 {
		t.Fatalf("committed update lost: %d", th.Load(&a))
	}
}

func TestRecoveryReplaysCommittedLog(t *testing.T) {
	// Simulate a crash between the commit mark and the in-place apply:
	// write the log by hand, set committed, crash, recover.
	mem := pmem.NewTracked()
	tm := NewTM(mem)
	th := mem.NewThread()
	var a, b pmem.Cell
	th.Store(&a, 1)
	th.Store(&b, 2)
	mem.PersistAll()
	th.Store(&tm.logVals[0], 10)
	th.Flush(&tm.logVals[0])
	th.Store(&tm.logVals[1], 20)
	th.Flush(&tm.logVals[1])
	tm.targets[0], tm.targets[1] = &a, &b
	th.Store(&tm.logCount, 2)
	th.Flush(&tm.logCount)
	th.Fence()
	th.Store(&tm.committed, 1)
	th.Flush(&tm.committed)
	th.Fence()
	// In-place apply "happened" only volatilely: gets rolled back.
	th.Store(&a, 10)
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	tm.Recover(th)
	if th.Load(&a) != 10 || th.Load(&b) != 20 {
		t.Fatalf("redo incomplete: a=%d b=%d", th.Load(&a), th.Load(&b))
	}
	if th.Load(&tm.committed) != 0 {
		t.Fatalf("commit mark not cleared")
	}
}

func TestUncommittedTxLeavesNoTrace(t *testing.T) {
	// Crash before the commit mark: the update must vanish entirely.
	mem := pmem.NewTracked()
	tm := NewTM(mem)
	th := mem.NewThread()
	var a pmem.Cell
	th.Store(&a, 1)
	mem.PersistAll()
	th.Store(&tm.logVals[0], 99)
	th.Flush(&tm.logVals[0])
	tm.targets[0] = &a
	th.Store(&tm.logCount, 1)
	// No commit mark, no fence on it.
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	tm.Recover(th)
	if th.Load(&a) != 1 {
		t.Fatalf("uncommitted tx leaked: a=%d", th.Load(&a))
	}
}

func TestListSetOracle(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 8})
	l := NewListSet(mem)
	th := mem.NewThread()
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(200)) + 1
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64() & 0xffffffff
			_, exp := oracle[k]
			if l.Insert(th, k, v) == exp {
				t.Fatalf("op %d: Insert(%d) disagreed", i, k)
			}
			if !exp {
				oracle[k] = v
			}
		case 1:
			_, exp := oracle[k]
			if l.Delete(th, k) != exp {
				t.Fatalf("op %d: Delete(%d) disagreed", i, k)
			}
			delete(oracle, k)
		default:
			ev, exp := oracle[k]
			gv, ok := l.Find(th, k)
			if ok != exp || (ok && gv != ev) {
				t.Fatalf("op %d: Find(%d) disagreed", i, k)
			}
		}
	}
	if got := l.Contents(th); len(got) != len(oracle) {
		t.Fatalf("size %d, oracle %d", len(got), len(oracle))
	}
}

func TestBSTSetOracle(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 8})
	b := NewBSTSet(mem)
	th := mem.NewThread()
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(300)) + 1
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64() & 0xffffffff
			_, exp := oracle[k]
			if b.Insert(th, k, v) == exp {
				t.Fatalf("op %d: Insert(%d) disagreed", i, k)
			}
			if !exp {
				oracle[k] = v
			}
		case 1:
			_, exp := oracle[k]
			if b.Delete(th, k) != exp {
				t.Fatalf("op %d: Delete(%d) disagreed", i, k)
			}
			delete(oracle, k)
		default:
			ev, exp := oracle[k]
			gv, ok := b.Find(th, k)
			if ok != exp || (ok && gv != ev) {
				t.Fatalf("op %d: Find(%d) disagreed", i, k)
			}
		}
	}
	got := b.Contents(th)
	if len(got) != len(oracle) {
		t.Fatalf("size %d, oracle %d", len(got), len(oracle))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("BST order broken at %d", i)
		}
	}
}

func TestQuickBSTSet(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
		b := NewBSTSet(mem)
		th := mem.NewThread()
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key%67) + 1
			switch o.Kind % 3 {
			case 0:
				if b.Insert(th, k, k) == oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if b.Delete(th, k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if _, ok := b.Find(th, k); ok != oracle[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	l := NewListSet(mem)
	setup := mem.NewThread()
	for k := uint64(2); k <= 400; k += 2 {
		l.Insert(setup, k, k)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th := mem.NewThread()
		wg.Add(1)
		go func(th *pmem.Thread) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				k := th.Rand()%400 + 1
				switch th.Rand() % 4 {
				case 0:
					l.Insert(th, k, k)
				case 1:
					l.Delete(th, k)
				default:
					l.Find(th, k)
				}
			}
		}(th)
	}
	wg.Wait()
	got := l.Contents(mem.NewThread())
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("list order broken")
		}
	}
}

func TestReadOnlyTransactionsAreFree(t *testing.T) {
	// The property behind the paper's 0%-update observation: OneFile reads
	// execute no persistence instructions.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := NewListSet(mem)
	th := mem.NewThread()
	for k := uint64(1); k <= 100; k++ {
		l.Insert(th, k, k)
	}
	before := mem.Stats()
	for k := uint64(1); k <= 100; k++ {
		l.Find(th, k)
	}
	d := mem.Stats().Sub(before)
	if d.Flushes != 0 || d.Fences != 0 {
		t.Fatalf("read-only transactions persisted: %+v", d)
	}
}

func TestWriteSetOverflowPanics(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	tm := NewTM(mem)
	th := mem.NewThread()
	cells := make([]pmem.Cell, MaxWriteSet+1)
	defer func() {
		if recover() == nil {
			t.Fatalf("oversized write set accepted")
		}
	}()
	tm.Update(th, func(tx *Tx) {
		for i := range cells {
			tx.Store(&cells[i], 1)
		}
	})
}

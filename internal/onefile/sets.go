package onefile

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/pmem"
)

// LNode is a list-set node.
type LNode struct {
	Key   pmem.Cell
	Value pmem.Cell
	Next  pmem.Cell
	_     [40]byte // pad to one 64-byte line (line-granular persistence)
}

// ListSet is a sorted linked-list set written as *sequential* code inside
// transactions — the programming-model upside of a PTM the paper
// acknowledges ("ease of programming at the cost of lower performance").
type ListSet struct {
	tm   *TM
	ar   *arena.Arena[LNode]
	dom  *epoch.Domain
	head uint64
}

// NewListSet creates an empty transactional list set.
func NewListSet(mem *pmem.Memory) *ListSet {
	dom := epoch.New(mem.MaxThreads())
	l := &ListSet{
		tm:  NewTM(mem),
		ar:  arena.New[LNode](dom, mem.MaxThreads()),
		dom: dom,
	}
	t := mem.NewThread()
	h := l.ar.Alloc(t.ID)
	n := l.ar.Get(h)
	t.Store(&n.Key, 0)
	t.Store(&n.Next, pmem.NilRef)
	t.Flush(&n.Key)
	t.Flush(&n.Next)
	t.Fence()
	l.head = h
	return l
}

func (l *ListSet) node(idx uint64) *LNode { return l.ar.Get(idx) }

// locate returns (pred, cur) with cur the first node whose key >= key,
// reading through the transaction.
func (l *ListSet) locate(tx *Tx, key uint64) (pred, cur uint64) {
	pred = l.head
	cur = pmem.RefIndex(tx.Load(&l.node(pred).Next))
	for cur != 0 && tx.Load(&l.node(cur).Key) < key {
		pred = cur
		cur = pmem.RefIndex(tx.Load(&l.node(cur).Next))
	}
	return
}

// Insert adds key; false if present.
func (l *ListSet) Insert(t *pmem.Thread, key, value uint64) bool {
	checkKey(key)
	ok := false
	l.tm.Update(t, func(tx *Tx) {
		pred, cur := l.locate(tx, key)
		if cur != 0 && tx.Load(&l.node(cur).Key) == key {
			return
		}
		idx := l.ar.Alloc(t.ID)
		n := l.node(idx)
		tx.Store(&n.Key, key)
		tx.Store(&n.Value, value)
		tx.Store(&n.Next, pmem.MakeRef(cur))
		tx.Store(&l.node(pred).Next, pmem.MakeRef(idx))
		ok = true
	})
	return ok
}

// Delete removes key; false if absent.
func (l *ListSet) Delete(t *pmem.Thread, key uint64) bool {
	checkKey(key)
	ok := false
	l.tm.Update(t, func(tx *Tx) {
		pred, cur := l.locate(tx, key)
		if cur == 0 || tx.Load(&l.node(cur).Key) != key {
			return
		}
		tx.Store(&l.node(pred).Next, tx.Load(&l.node(cur).Next))
		ok = true
		// Node reclamation: transactional structures free eagerly under
		// the writer lock; optimistic readers may still walk the node,
		// but its Next still points into the list and the seqlock makes
		// them retry, so reuse before their validation is benign for
		// membership answers (they are discarded).
		l.ar.Retire(t.ID, cur)
	})
	return ok
}

// Find reports membership and value via an optimistic read transaction.
func (l *ListSet) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	checkKey(key)
	var v uint64
	var ok bool
	l.tm.Read(t, func(t *pmem.Thread) {
		v, ok = 0, false
		cur := pmem.RefIndex(t.Load(&l.node(l.head).Next))
		// The step cap guards against cycles through eagerly-reused
		// nodes: hitting it implies a writer ran, so the seqlock
		// validation fails and the read retries on a stable snapshot.
		for steps := 0; cur != 0 && steps < 1<<22; steps++ {
			k := t.Load(&l.node(cur).Key)
			if k >= key {
				if k == key {
					v, ok = t.Load(&l.node(cur).Value), true
				}
				return
			}
			cur = pmem.RefIndex(t.Load(&l.node(cur).Next))
		}
	})
	return v, ok
}

// Recover replays the TM log.
func (l *ListSet) Recover(t *pmem.Thread) { l.tm.Recover(t) }

// Contents returns the keys in order (quiescent use only).
func (l *ListSet) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next))
	for cur != 0 {
		out = append(out, t.Load(&l.node(cur).Key))
		cur = pmem.RefIndex(t.Load(&l.node(cur).Next))
	}
	return out
}

// BNode is a BST-set node (internal BST: every node carries an element).
type BNode struct {
	Key   pmem.Cell
	Value pmem.Cell
	Left  pmem.Cell
	Right pmem.Cell
	_     [32]byte // pad to one 64-byte line (line-granular persistence)
}

// BSTSet is an unbalanced internal BST written sequentially inside
// transactions (the paper's Figure 5(e) PTM comparator).
type BSTSet struct {
	tm   *TM
	ar   *arena.Arena[BNode]
	dom  *epoch.Domain
	root pmem.Cell // ref to root node (0 when empty)
}

// NewBSTSet creates an empty transactional BST set.
func NewBSTSet(mem *pmem.Memory) *BSTSet {
	dom := epoch.New(mem.MaxThreads())
	b := &BSTSet{
		tm:  NewTM(mem),
		ar:  arena.New[BNode](dom, mem.MaxThreads()),
		dom: dom,
	}
	t := mem.NewThread()
	t.Store(&b.root, pmem.NilRef)
	t.Flush(&b.root)
	t.Fence()
	return b
}

func (b *BSTSet) node(idx uint64) *BNode { return b.ar.Get(idx) }

// Insert adds key; false if present.
func (b *BSTSet) Insert(t *pmem.Thread, key, value uint64) bool {
	checkKey(key)
	ok := false
	b.tm.Update(t, func(tx *Tx) {
		cell := &b.root
		for {
			r := pmem.RefIndex(tx.Load(cell))
			if r == 0 {
				break
			}
			k := tx.Load(&b.node(r).Key)
			if k == key {
				return
			}
			if key < k {
				cell = &b.node(r).Left
			} else {
				cell = &b.node(r).Right
			}
		}
		idx := b.ar.Alloc(t.ID)
		n := b.node(idx)
		tx.Store(&n.Key, key)
		tx.Store(&n.Value, value)
		tx.Store(&n.Left, pmem.NilRef)
		tx.Store(&n.Right, pmem.NilRef)
		tx.Store(cell, pmem.MakeRef(idx))
		ok = true
	})
	return ok
}

// Delete removes key; false if absent. Classic internal-BST deletion: a
// two-child node is replaced by its in-order successor's key/value.
func (b *BSTSet) Delete(t *pmem.Thread, key uint64) bool {
	checkKey(key)
	ok := false
	b.tm.Update(t, func(tx *Tx) {
		cell := &b.root
		r := pmem.RefIndex(tx.Load(cell))
		for r != 0 {
			k := tx.Load(&b.node(r).Key)
			if k == key {
				break
			}
			if key < k {
				cell = &b.node(r).Left
			} else {
				cell = &b.node(r).Right
			}
			r = pmem.RefIndex(tx.Load(cell))
		}
		if r == 0 {
			return
		}
		n := b.node(r)
		left := pmem.RefIndex(tx.Load(&n.Left))
		right := pmem.RefIndex(tx.Load(&n.Right))
		switch {
		case left == 0:
			tx.Store(cell, pmem.MakeRef(right))
			b.ar.Retire(t.ID, r)
		case right == 0:
			tx.Store(cell, pmem.MakeRef(left))
			b.ar.Retire(t.ID, r)
		default:
			// Two children: splice the in-order successor up.
			scell := &n.Right
			s := right
			for {
				l := pmem.RefIndex(tx.Load(&b.node(s).Left))
				if l == 0 {
					break
				}
				scell = &b.node(s).Left
				s = l
			}
			sn := b.node(s)
			tx.Store(&n.Key, tx.Load(&sn.Key))
			tx.Store(&n.Value, tx.Load(&sn.Value))
			tx.Store(scell, tx.Load(&sn.Right))
			b.ar.Retire(t.ID, s)
		}
		ok = true
	})
	return ok
}

// Find reports membership and value via an optimistic read transaction.
func (b *BSTSet) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	checkKey(key)
	var v uint64
	var ok bool
	b.tm.Read(t, func(t *pmem.Thread) {
		v, ok = 0, false
		r := pmem.RefIndex(t.Load(&b.root))
		for steps := 0; r != 0 && steps < 1<<22; steps++ {
			k := t.Load(&b.node(r).Key)
			if k == key {
				v, ok = t.Load(&b.node(r).Value), true
				return
			}
			if key < k {
				r = pmem.RefIndex(t.Load(&b.node(r).Left))
			} else {
				r = pmem.RefIndex(t.Load(&b.node(r).Right))
			}
		}
	})
	return v, ok
}

// Recover replays the TM log.
func (b *BSTSet) Recover(t *pmem.Thread) { b.tm.Recover(t) }

// Contents returns the keys in order (quiescent use only).
func (b *BSTSet) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	var walk func(idx uint64)
	walk = func(idx uint64) {
		if idx == 0 {
			return
		}
		n := b.node(idx)
		walk(pmem.RefIndex(t.Load(&n.Left)))
		out = append(out, t.Load(&n.Key))
		walk(pmem.RefIndex(t.Load(&n.Right)))
	}
	walk(pmem.RefIndex(t.Load(&b.root)))
	return out
}

func checkKey(key uint64) {
	if key == 0 || key >= 1<<61 {
		panic(fmt.Sprintf("onefile: key %d out of range [1, 2^61)", key))
	}
}

package pmem

// lineSet is the per-thread pending-flush line set: an open-addressed hash
// set keyed by line (real line key in tracked mode, version-table slot in
// fast mode) holding the write version each line had when it was last
// captured. It answers the only question Flush asks — "is this line already
// pending, unchanged?" — in O(1), replacing the O(pending) linear scan over
// the flush slice that made Flush quadratic inside large Apply batches.
//
// Reset is a generation bump, not a clear: a slot belongs to the set iff its
// gen field equals the set's current generation, so Fence invalidates every
// entry by incrementing gen — O(1), no memory traffic over the table. Stale
// slots double as tombstone-free empties: a probe chain ends at the first
// slot whose gen is not current, which is exactly the open-addressing
// invariant because entries are only ever added within one generation (the
// table never deletes individual keys).
//
// The set is owned by a single Thread and is never accessed concurrently.
type lineSet struct {
	slots []lineSetSlot
	mask  uintptr
	gen   uint64
	n     int
}

type lineSetSlot struct {
	gen  uint64
	line uintptr
	ver  uint64
}

// lineSetMinSlots is the initial table size: large enough that typical
// operations (a handful of distinct lines between fences) never grow it,
// small enough to stay cache-resident.
const lineSetMinSlots = 64

// put records that line is pending at write version ver. It returns false —
// flush elided — iff the line is already pending at exactly that version;
// otherwise (absent, or pending at an older version) it inserts or updates
// the capture and returns true.
func (s *lineSet) put(line uintptr, ver uint64) bool {
	if s.slots == nil {
		s.slots = make([]lineSetSlot, lineSetMinSlots)
		s.mask = lineSetMinSlots - 1
		s.gen = 1
	}
	i := s.probe(line)
	for {
		sl := &s.slots[i]
		if sl.gen != s.gen {
			*sl = lineSetSlot{gen: s.gen, line: line, ver: ver}
			s.n++
			if s.n*2 > len(s.slots) {
				s.grow()
			}
			return true
		}
		if sl.line == line {
			if sl.ver == ver {
				return false
			}
			sl.ver = ver
			return true
		}
		i = (i + 1) & s.mask
	}
}

// reset empties the set in O(1) by moving to the next generation.
func (s *lineSet) reset() {
	s.gen++
	s.n = 0
}

// probe returns the starting probe index for a line key (Fibonacci hashing;
// line keys are shifted addresses, so low bits alone cluster badly).
func (s *lineSet) probe(line uintptr) uintptr {
	h := uint64(line) * 0x9e3779b97f4a7c15
	return uintptr(h>>32) & s.mask
}

// grow doubles the table and re-inserts the current generation's entries.
// Growth is rare (a thread must flush > slots/2 distinct lines inside one
// fence window) and amortizes to zero allocations at steady state.
func (s *lineSet) grow() {
	old := s.slots
	oldGen := s.gen
	s.slots = make([]lineSetSlot, 2*len(old))
	s.mask = uintptr(len(s.slots) - 1)
	s.gen = 1
	s.n = 0
	for i := range old {
		if old[i].gen != oldGen {
			continue
		}
		j := s.probe(old[i].line)
		for s.slots[j].gen == s.gen {
			j = (j + 1) & s.mask
		}
		s.slots[j] = lineSetSlot{gen: s.gen, line: old[i].line, ver: old[i].ver}
		s.n++
	}
}

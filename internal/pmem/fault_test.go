package pmem

// Disk-fault injection tests for the durable backend: the vfs/errfs seam
// misbehaves under it — fsync failures, ENOSPC, torn renames, checkpoint
// faults, mid-log corruption — and the backend must hold the fail-stop
// contract: the first write/fsync failure latches permanent damage, no
// later write is ever trusted, and a clean reopen recovers exactly the
// acknowledged history.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/pmem/vfs"
)

// openDurableFS is openDurable with an injected FS and SyncFence control.
func openDurableFS(t *testing.T, dir string, fs vfs.FS, syncFence bool, n int) (*Memory, *Thread, [][]Cell) {
	t.Helper()
	m := New(Config{Mode: ModeFast, Profile: ProfileZero, Dir: dir, SyncFence: syncFence, FS: fs})
	sp := m.NewSpace()
	lines := sp.Lines(0, n)
	if _, err := m.RecoverFiles(); err != nil {
		t.Fatalf("RecoverFiles: %v", err)
	}
	return m, m.NewThread(), lines
}

func mustErrFS(t *testing.T, schedule string) *vfs.ErrFS {
	t.Helper()
	efs, err := vfs.NewErrFS(vfs.OS, schedule, 1)
	if err != nil {
		t.Fatalf("NewErrFS(%q): %v", schedule, err)
	}
	return efs
}

// TestFaultStickyFsync is the fsyncgate test: the first failed fsync at a
// commit fence latches the backend damaged forever — no retry-and-trust —
// and a clean reopen recovers every commit acknowledged before the latch
// while writes issued after it never resurface.
func TestFaultStickyFsync(t *testing.T) {
	dir := t.TempDir()
	efs := mustErrFS(t, "sync~wal@5=eio")
	m, th, lines := openDurableFS(t, dir, efs, true, 10)

	acked, failed := -1, -1
	for i := 0; i < 8; i++ {
		commitCell(th, &lines[i][0], uint64(100+i))
		if th.DurableErr() != nil {
			failed = i
			break
		}
		acked = i
	}
	if failed < 0 {
		t.Fatalf("schedule never fired (acked through %d, injected %v)", acked, efs.Injected())
	}
	if !errors.Is(m.DurableErr(), syscall.EIO) {
		t.Fatalf("DurableErr = %v, want wrapped EIO", m.DurableErr())
	}
	first := m.DurableErr().Error()

	// Sticky: later commits neither clear nor replace the latch, and their
	// appends are dropped rather than written to a disk we cannot trust.
	commitCell(th, &lines[9][0], 999)
	if got := m.DurableErr(); got == nil || got.Error() != first {
		t.Fatalf("damage latch moved: %v -> %v", first, got)
	}
	if err := m.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a damaged backend succeeded")
	}
	if err := m.Close(); err == nil {
		t.Fatal("Close on a damaged backend returned nil")
	}

	// Clean reopen: replied ⇒ durable must hold for every acked commit.
	m2, th2, lines2 := openDurable(t, dir, ModeFast, 10)
	defer m2.Close()
	for i := 0; i <= acked; i++ {
		if got := th2.Load(&lines2[i][0]); got != uint64(100+i) {
			t.Fatalf("acked commit %d lost: got %d want %d", i, got, 100+i)
		}
	}
	if got := th2.Load(&lines2[9][0]); got == 999 {
		t.Fatal("write issued after the damage latch resurfaced on recovery")
	}
}

// TestFaultENOSPCWrite fills the disk mid-append: the WAL flush error
// latches and a clean reopen shows exactly the acknowledged prefix.
func TestFaultENOSPCWrite(t *testing.T) {
	dir := t.TempDir()
	efs := mustErrFS(t, "write~wal@b8192=enospc")
	m, th, lines := openDurableFS(t, dir, efs, false, 1)
	c := &lines[0][0]

	var acked, failedAt uint64
	for v := uint64(1); v <= 4096; v++ {
		commitCell(th, c, v)
		if th.DurableErr() != nil {
			failedAt = v
			break
		}
		acked = v
	}
	if failedAt == 0 {
		t.Fatal("ENOSPC never fired")
	}
	if !errors.Is(m.DurableErr(), syscall.ENOSPC) {
		t.Fatalf("DurableErr = %v, want wrapped ENOSPC", m.DurableErr())
	}
	// The disk stays full: the byte trigger latches on, so even a retry
	// that somehow bypassed the damage latch would fail again.
	if err := m.Close(); err == nil {
		t.Fatal("Close on a damaged backend returned nil")
	}

	m2, th2, lines2 := openDurable(t, dir, ModeFast, 1)
	defer m2.Close()
	if got := th2.Load(&lines2[0][0]); got != acked {
		t.Fatalf("recovered %d, want last acked value %d (failed at %d)", got, acked, failedAt)
	}
}

// TestFaultCheckpointMatrix drives Checkpoint into every pre-commit-point
// failure: the tmp dump write, its fsync, the tmp→snap rename (torn), and
// the CURRENT flip. Each must fail the checkpoint WITHOUT latching damage
// — the old generation stays fully live — and a clean reopen must recover
// every acknowledged commit, including ones made after the failed attempt.
func TestFaultCheckpointMatrix(t *testing.T) {
	cases := []struct{ name, schedule string }{
		{"tmp-write-eio", "write~snap.tmp@1=eio"},
		{"tmp-sync-eio", "sync~snap.tmp@1=eio"},
		{"rename-torn", "rename~snap.tmp@1=torn"},
		// CURRENT is also written once at first open; @2 is the flip.
		{"current-write-eio", "writefile~CURRENT@2=eio"},
		{"current-rename-eio", "rename~CURRENT@2=eio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			efs := mustErrFS(t, tc.schedule)
			m, th, lines := openDurableFS(t, dir, efs, false, 4)
			for i := 0; i < 4; i++ {
				commitCell(th, &lines[i][0], uint64(10+i))
			}
			if err := m.Checkpoint(); err == nil {
				t.Fatalf("Checkpoint succeeded despite %q (injected %v)", tc.schedule, efs.Injected())
			}
			if efs.InjectedCount() == 0 {
				t.Fatalf("schedule %q never fired", tc.schedule)
			}
			if err := m.DurableErr(); err != nil {
				t.Fatalf("pre-flip checkpoint failure latched damage: %v", err)
			}
			// Old generation still live: commits keep landing.
			commitCell(th, &lines[0][0], 99)
			if err := m.Close(); err != nil {
				t.Fatalf("Close after failed checkpoint: %v", err)
			}

			m2, th2, lines2 := openDurable(t, dir, ModeFast, 4)
			defer m2.Close()
			if got := th2.Load(&lines2[0][0]); got != 99 {
				t.Fatalf("post-failure commit lost: got %d want 99", got)
			}
			for i := 1; i < 4; i++ {
				if got := th2.Load(&lines2[i][0]); got != uint64(10+i) {
					t.Fatalf("commit %d lost across failed checkpoint: got %d want %d", i, got, 10+i)
				}
			}
		})
	}
}

// TestFaultMidLogCorruptionRefused pins the torn-tail / corruption
// distinction: a bad frame with an intact frame AFTER it cannot be a torn
// tail (appends are sequential), so recovery must refuse with
// ErrWALCorrupt instead of silently truncating committed history.
func TestFaultMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeFast, 2)
	commitCell(th, &lines[0][0], 1)
	commitCell(th, &lines[1][0], 2)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	wal := filepath.Join(dir, "wal-1.log")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	// Corrupt a payload byte of the FIRST frame (magic is 8 bytes, then
	// the frame header); the second frame stays intact behind it.
	b[8+walFrameHeader+2] ^= 0xff
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatalf("write WAL: %v", err)
	}

	m2 := New(Config{Mode: ModeFast, Profile: ProfileZero, Dir: dir})
	m2.NewSpace().Lines(0, 2)
	if _, err := m2.RecoverFiles(); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("RecoverFiles = %v, want ErrWALCorrupt", err)
	}
}

// TestFaultReplayReadError: an IO error while reading the log back is a
// real error, not a torn tail — silently truncating on EIO would drop
// acknowledged history just because the disk hiccuped during recovery.
func TestFaultReplayReadError(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeFast, 1)
	commitCell(th, &lines[0][0], 7)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	efs := mustErrFS(t, "read~wal@1=eio")
	m2 := New(Config{Mode: ModeFast, Profile: ProfileZero, Dir: dir, FS: efs})
	m2.NewSpace().Lines(0, 1)
	_, err := m2.RecoverFiles()
	if err == nil {
		t.Fatal("RecoverFiles swallowed an injected read error")
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("RecoverFiles = %v, want wrapped EIO", err)
	}
}

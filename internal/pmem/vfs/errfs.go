package vfs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// ErrFS wraps an FS with scripted and probabilistic failpoints, driven by
// a schedule string so CI matrices and command lines can describe faults
// without code. The grammar is comma-separated rules of the form
//
//	op[~pathsub]@trigger=effect
//
//	op       which call to target: write, sync, close, rename, create,
//	         open, read, truncate, remove, mkdir, dirsync, readfile,
//	         writefile
//	~pathsub optional: only calls whose path contains the substring
//	trigger  N   fire on the Nth matching call (1-based), once
//	         bK  fire on every matching call once K cumulative bytes have
//	             been written through the FS (a full disk stays full)
//	         pF  fire each matching call with probability F in [0,1],
//	             from the seeded deterministic generator
//	effect   eio    error wrapping syscall.EIO
//	         enospc error wrapping syscall.ENOSPC
//	         short  (write) write half the buffer, io.ErrShortWrite
//	         flip   (read/readfile) flip one bit in the data read
//	         torn   (rename) remove the source, create nothing, EIO
//
// Examples: "sync@3=eio" fails the third fsync anywhere; "write~wal@b8192=
// enospc" makes WAL appends hit a full disk after 8 KiB; "rename~CURRENT@
// 1=eio" fails the first CURRENT flip; "read@p0.01=flip" flips a bit in
// 1% of reads. Counters are process-lifetime for the ErrFS instance, so a
// reopen through the same instance continues the same schedule.
type ErrFS struct {
	inner FS

	mu      sync.Mutex
	rules   []*rule
	rng     uint64
	written uint64 // cumulative bytes written through Write/WriteFile
	log     []string
}

type trigKind int

const (
	trigNth trigKind = iota
	trigBytes
	trigProb
)

type effect int

const (
	effEIO effect = iota
	effENOSPC
	effShort
	effFlip
	effTorn
)

var effNames = map[string]effect{
	"eio": effEIO, "enospc": effENOSPC, "short": effShort,
	"flip": effFlip, "torn": effTorn,
}

type rule struct {
	op      string
	pathSub string
	trig    trigKind
	n       uint64
	prob    float64
	eff     effect
	calls   uint64
	fired   uint64
}

var validOps = map[string]bool{
	"write": true, "sync": true, "close": true, "rename": true,
	"create": true, "open": true, "read": true, "truncate": true,
	"remove": true, "mkdir": true, "dirsync": true,
	"readfile": true, "writefile": true,
}

// NewErrFS parses schedule and wraps inner. An empty schedule is valid
// (pure passthrough). seed drives the probabilistic triggers.
func NewErrFS(inner FS, schedule string, seed int64) (*ErrFS, error) {
	e := &ErrFS{inner: inner, rng: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	for _, spec := range strings.Split(schedule, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		r, err := parseRule(spec)
		if err != nil {
			return nil, err
		}
		e.rules = append(e.rules, r)
	}
	return e, nil
}

func parseRule(spec string) (*rule, error) {
	opPart, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return nil, fmt.Errorf("errfs: rule %q: missing @trigger", spec)
	}
	trigPart, effPart, ok := strings.Cut(rest, "=")
	if !ok {
		return nil, fmt.Errorf("errfs: rule %q: missing =effect", spec)
	}
	r := &rule{}
	r.op, r.pathSub, _ = strings.Cut(opPart, "~")
	if !validOps[r.op] {
		return nil, fmt.Errorf("errfs: rule %q: unknown op %q", spec, r.op)
	}
	eff, ok := effNames[effPart]
	if !ok {
		return nil, fmt.Errorf("errfs: rule %q: unknown effect %q", spec, effPart)
	}
	r.eff = eff
	switch {
	case strings.HasPrefix(trigPart, "b"):
		n, err := strconv.ParseUint(trigPart[1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("errfs: rule %q: bad byte trigger: %v", spec, err)
		}
		r.trig, r.n = trigBytes, n
	case strings.HasPrefix(trigPart, "p"):
		p, err := strconv.ParseFloat(trigPart[1:], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("errfs: rule %q: bad probability trigger", spec)
		}
		r.trig, r.prob = trigProb, p
	default:
		n, err := strconv.ParseUint(trigPart, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("errfs: rule %q: bad call trigger (1-based)", spec)
		}
		r.trig, r.n = trigNth, n
	}
	return r, nil
}

// Injected returns a copy of the fault log: one "op path effect" line per
// injected fault, in injection order.
func (e *ErrFS) Injected() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.log...)
}

// InjectedCount reports how many faults have fired.
func (e *ErrFS) InjectedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.log)
}

func (e *ErrFS) rand() uint64 {
	e.rng += 0x9e3779b97f4a7c15
	z := e.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// check consults the schedule for one call. It returns the rule that
// fires, or nil. Only one rule fires per call (first match in schedule
// order).
func (e *ErrFS) check(op, path string) *rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		if r.op != op || (r.pathSub != "" && !strings.Contains(path, r.pathSub)) {
			continue
		}
		r.calls++
		fire := false
		switch r.trig {
		case trigNth:
			fire = r.calls == r.n
		case trigBytes:
			fire = e.written >= r.n
		case trigProb:
			fire = float64(e.rand()>>11)/(1<<53) < r.prob
		}
		if !fire {
			continue
		}
		r.fired++
		e.log = append(e.log, fmt.Sprintf("%s %s %s", op, path, effString(r.eff)))
		return r
	}
	return nil
}

func effString(eff effect) string {
	for s, v := range effNames {
		if v == eff {
			return s
		}
	}
	return "?"
}

func (e *ErrFS) addWritten(n int) {
	e.mu.Lock()
	e.written += uint64(n)
	e.mu.Unlock()
}

// inject builds the error for a fired rule.
func inject(op, path string, eff effect) error {
	switch eff {
	case effENOSPC:
		return fmt.Errorf("errfs: injected %s on %s %q: %w", effString(eff), op, path, syscall.ENOSPC)
	case effShort:
		return fmt.Errorf("errfs: injected short write on %s %q: %w", op, path, io.ErrShortWrite)
	default:
		return fmt.Errorf("errfs: injected %s on %s %q: %w", effString(eff), op, path, syscall.EIO)
	}
}

// flipBit XORs one bit in the middle of b (no-op on empty data).
func flipBit(b []byte) {
	if len(b) == 0 {
		return
	}
	b[len(b)/2] ^= 0x40
}

func (e *ErrFS) Create(name string) (File, error) {
	if r := e.check("create", name); r != nil {
		return nil, inject("create", name, r.eff)
	}
	f, err := e.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f, name: name}, nil
}

func (e *ErrFS) Open(name string) (File, error) {
	if r := e.check("open", name); r != nil {
		return nil, inject("open", name, r.eff)
	}
	f, err := e.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f, name: name}, nil
}

func (e *ErrFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := e.check("open", name); r != nil {
		return nil, inject("open", name, r.eff)
	}
	f, err := e.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f, name: name}, nil
}

func (e *ErrFS) ReadFile(name string) ([]byte, error) {
	r := e.check("readfile", name)
	if r != nil && r.eff != effFlip {
		return nil, inject("readfile", name, r.eff)
	}
	b, err := e.inner.ReadFile(name)
	if err == nil && r != nil {
		flipBit(b)
	}
	return b, err
}

func (e *ErrFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if r := e.check("writefile", name); r != nil {
		return inject("writefile", name, r.eff)
	}
	err := e.inner.WriteFile(name, data, perm)
	if err == nil {
		e.addWritten(len(data))
	}
	return err
}

func (e *ErrFS) Rename(oldpath, newpath string) error {
	if r := e.check("rename", oldpath+"->"+newpath); r != nil {
		if r.eff == effTorn {
			// A torn rename: the source is gone and the destination never
			// appeared — the worst crash-adjacent outcome a journaling
			// filesystem could leave behind.
			e.inner.Remove(oldpath)
		}
		return inject("rename", oldpath, r.eff)
	}
	return e.inner.Rename(oldpath, newpath)
}

func (e *ErrFS) Remove(name string) error {
	if r := e.check("remove", name); r != nil {
		return inject("remove", name, r.eff)
	}
	return e.inner.Remove(name)
}

func (e *ErrFS) MkdirAll(path string, perm os.FileMode) error {
	if r := e.check("mkdir", path); r != nil {
		return inject("mkdir", path, r.eff)
	}
	return e.inner.MkdirAll(path, perm)
}

func (e *ErrFS) ReadDir(name string) ([]os.DirEntry, error) {
	return e.inner.ReadDir(name)
}

func (e *ErrFS) SyncDir(dir string) error {
	if r := e.check("dirsync", dir); r != nil {
		return inject("dirsync", dir, r.eff)
	}
	return e.inner.SyncDir(dir)
}

// errFile routes per-file operations back through the schedule.
type errFile struct {
	fs   *ErrFS
	f    File
	name string
}

func (f *errFile) Read(p []byte) (int, error) {
	r := f.fs.check("read", f.name)
	if r != nil && r.eff != effFlip {
		return 0, inject("read", f.name, r.eff)
	}
	n, err := f.f.Read(p)
	if r != nil && n > 0 {
		flipBit(p[:n])
	}
	return n, err
}

func (f *errFile) ReadAt(p []byte, off int64) (int, error) {
	r := f.fs.check("read", f.name)
	if r != nil && r.eff != effFlip {
		return 0, inject("read", f.name, r.eff)
	}
	n, err := f.f.ReadAt(p, off)
	if r != nil && n > 0 {
		flipBit(p[:n])
	}
	return n, err
}

func (f *errFile) Write(p []byte) (int, error) {
	if r := f.fs.check("write", f.name); r != nil {
		if r.eff == effShort && len(p) > 1 {
			n, err := f.f.Write(p[: len(p)/2 : len(p)/2])
			if err == nil {
				f.fs.addWritten(n)
				err = inject("write", f.name, effShort)
			}
			return n, err
		}
		return 0, inject("write", f.name, r.eff)
	}
	n, err := f.f.Write(p)
	f.fs.addWritten(n)
	return n, err
}

func (f *errFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *errFile) Truncate(size int64) error {
	if r := f.fs.check("truncate", f.name); r != nil {
		return inject("truncate", f.name, r.eff)
	}
	return f.f.Truncate(size)
}

func (f *errFile) Sync() error {
	if r := f.fs.check("sync", f.name); r != nil {
		return inject("sync", f.name, r.eff)
	}
	return f.f.Sync()
}

func (f *errFile) Close() error {
	if r := f.fs.check("close", f.name); r != nil {
		f.f.Close()
		return inject("close", f.name, r.eff)
	}
	return f.f.Close()
}

func (f *errFile) Name() string { return f.name }

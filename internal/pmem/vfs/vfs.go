// Package vfs is the file-operations seam between the durable pmem
// backend and the operating system. Everything wal.go and durable.go do
// to a directory — create, append, fsync, rename, truncate, read back,
// directory sync — goes through the FS interface, so a test can swap in
// a fault-injecting implementation (see ErrFS) and exercise the exact
// failure the kernel would hand back: the Nth fsync fails, the disk
// fills mid-append, a rename tears, a read returns flipped bits.
//
// The default implementation, OS, is a zero-cost veneer over package os.
// Injected errors wrap syscall.EIO / syscall.ENOSPC so callers can
// classify them with errors.Is, and real os errors pass through
// untouched — in particular errors.Is(err, os.ErrNotExist) keeps working,
// which recovery depends on to distinguish a fresh directory from a
// damaged one.
package vfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the durable backend uses. Writes may be
// wrapped in a bufio.Writer by the caller; Sync must reach the disk (or
// the injected failure standing in for it).
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
	Name() string
}

// FS is the file-operations surface of a durable directory. All paths are
// passed through verbatim; implementations must preserve os error
// sentinels (os.ErrNotExist in particular) for errors they do not inject.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir opens the directory and fsyncs it — the metadata barrier
	// after a rename or file creation.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) SyncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = df.Sync()
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	return err
}

package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func newFS(t *testing.T, schedule string) *ErrFS {
	t.Helper()
	fs, err := NewErrFS(OS, schedule, 42)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestScheduleParseErrors(t *testing.T) {
	for _, bad := range []string{
		"sync=eio",         // no trigger
		"sync@1",           // no effect
		"bogus@1=eio",      // unknown op
		"sync@1=explode",   // unknown effect
		"sync@0=eio",       // triggers are 1-based
		"sync@bx=eio",      // bad byte count
		"sync@p1.5=eio",    // probability out of range
		"write@1=eio,@2=x", // second rule malformed
	} {
		if _, err := NewErrFS(OS, bad, 0); err == nil {
			t.Errorf("schedule %q: expected parse error", bad)
		}
	}
	// Empty and whitespace schedules are passthrough.
	if fs, err := NewErrFS(OS, " , ", 0); err != nil || len(fs.rules) != 0 {
		t.Fatalf("empty schedule: %v", err)
	}
}

func TestNthSyncFails(t *testing.T) {
	fs := newFS(t, "sync@2=eio")
	f, err := fs.Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("second sync: want EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync (Nth fires once): %v", err)
	}
	if n := fs.InjectedCount(); n != 1 {
		t.Fatalf("injected %d faults, want 1: %v", n, fs.Injected())
	}
}

func TestByteTriggerENOSPC(t *testing.T) {
	fs := newFS(t, "write@b10=enospc")
	f, err := fs.Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 10)); err != nil {
		t.Fatalf("below threshold: %v", err)
	}
	// The disk is now full and stays full.
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("y")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d past threshold: want ENOSPC, got %v", i, err)
		}
	}
}

func TestShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	fs := newFS(t, "write@1=short")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "01234" {
		t.Fatalf("file holds %q, want the short prefix", b)
	}
}

func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	src, dst := filepath.Join(dir, "src"), filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := newFS(t, "rename@1=torn")
	if err := fs.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn rename: want EIO, got %v", err)
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatal("torn rename left the source behind")
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatal("torn rename created the destination")
	}
}

func TestBitFlipOnRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	if err := os.WriteFile(path, []byte{0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := newFS(t, "readfile@1=flip")
	b, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, c := range b {
		if c != 0 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("want exactly one flipped byte, got %d (%v)", flipped, b)
	}
	// Second read is clean.
	if b, _ := fs.ReadFile(path); b[len(b)/2] != 0 {
		t.Fatal("flip fired twice")
	}
}

func TestPathFilterAndPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := newFS(t, "sync~wal@1=eio")
	other, err := fs.Create(filepath.Join(dir, "ckpt.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("non-matching path must pass: %v", err)
	}
	wal, err := fs.Create(filepath.Join(dir, "wal-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching path must fail: %v", err)
	}
	// os sentinel errors pass through for non-injected calls.
	if _, err := fs.Open(filepath.Join(dir, "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ErrNotExist not preserved: %v", err)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) int {
		fs, err := NewErrFS(OS, "sync@p0.5=eio", seed)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(filepath.Join(t.TempDir(), "x"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		fails := 0
		for i := 0; i < 64; i++ {
			if f.Sync() != nil {
				fails++
			}
		}
		return fails
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different outcomes: %d vs %d", a, b)
	}
	if a == 0 || a == 64 {
		t.Fatalf("p=0.5 fired %d/64 times", a)
	}
}

package pmem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRefTagging(t *testing.T) {
	r := MakeRef(42)
	if RefIndex(r) != 42 {
		t.Fatalf("RefIndex(MakeRef(42)) = %d", RefIndex(r))
	}
	if Marked(r) || Tagged(r) || IsNil(r) {
		t.Fatalf("fresh ref has unexpected bits: %x", r)
	}
	m := WithMark(r)
	if !Marked(m) || RefIndex(m) != 42 {
		t.Fatalf("WithMark broken: %x", m)
	}
	if Marked(ClearMark(m)) {
		t.Fatalf("ClearMark broken")
	}
	g := WithTag(m)
	if !Tagged(g) || !Marked(g) || RefIndex(g) != 42 {
		t.Fatalf("WithTag broken: %x", g)
	}
	p := g | PersistBit
	if RefIndex(p) != 42 {
		t.Fatalf("persist bit leaks into index: %d", RefIndex(p))
	}
	if ClearTags(p) != MakeRef(42) {
		t.Fatalf("ClearTags broken: %x", ClearTags(p))
	}
	if Dirty(p)&PersistBit != 0 {
		t.Fatalf("Dirty keeps persist bit")
	}
	if !SameNode(p, r) || SameNode(r, MakeRef(43)) {
		t.Fatalf("SameNode broken")
	}
	if !IsNil(NilRef) || !IsNil(WithMark(NilRef)) {
		t.Fatalf("IsNil broken")
	}
}

func TestRefRoundTripQuick(t *testing.T) {
	f := func(idx uint64, mark, tag, persisted bool) bool {
		idx &= (1 << 60) - 1 // stay inside the index space
		r := MakeRef(idx)
		if mark {
			r = WithMark(r)
		}
		if tag {
			r = WithTag(r)
		}
		if persisted {
			r |= PersistBit
		}
		return RefIndex(r) == idx && Marked(r) == mark && Tagged(r) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastModeBasics(t *testing.T) {
	m := NewFast(ProfileZero)
	th := m.NewThread()
	var c Cell
	if v := th.Load(&c); v != 0 {
		t.Fatalf("zero cell = %d", v)
	}
	th.Store(&c, 7)
	if v := th.Load(&c); v != 7 {
		t.Fatalf("store/load = %d", v)
	}
	if !th.CAS(&c, 7, 9) {
		t.Fatalf("CAS(7,9) failed")
	}
	if th.CAS(&c, 7, 11) {
		t.Fatalf("CAS with stale expected succeeded")
	}
	th.Flush(&c)
	th.Fence()
	th.PublishStats()
	s := m.Stats()
	if s.Reads != 2 || s.Writes != 1 || s.CASes != 2 || s.CASFail != 1 ||
		s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsPerThreadAndReset(t *testing.T) {
	m := NewFast(ProfileZero)
	a, b := m.NewThread(), m.NewThread()
	var c Cell
	a.Flush(&c)
	a.Fence()
	b.Flush(&c)
	a.PublishStats()
	b.PublishStats()
	if a.StatsSnapshot().Flushes != 1 || b.StatsSnapshot().Flushes != 1 {
		t.Fatalf("per-thread stats wrong")
	}
	if m.Stats().Flushes != 2 {
		t.Fatalf("aggregate stats wrong: %+v", m.Stats())
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatalf("reset failed: %+v", m.Stats())
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Flushes: 5, Fences: 3, Ops: 2}
	b := Stats{Reads: 4, Flushes: 1, Fences: 1, Ops: 1}
	d := a.Sub(b)
	if d.Reads != 6 || d.Flushes != 4 || d.Fences != 2 || d.Ops != 1 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestThreadIDsDense(t *testing.T) {
	m := NewFast(ProfileZero)
	for i := 0; i < 5; i++ {
		if th := m.NewThread(); th.ID != i {
			t.Fatalf("thread %d got ID %d", i, th.ID)
		}
	}
	if len(m.Threads()) != 5 {
		t.Fatalf("Threads() = %d", len(m.Threads()))
	}
}

func TestThreadLimit(t *testing.T) {
	m := New(Config{Mode: ModeFast, Profile: ProfileZero, MaxThreads: 1})
	m.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on thread limit")
		}
	}()
	m.NewThread()
}

func TestRandDistinctPerThread(t *testing.T) {
	m := NewFast(ProfileZero)
	a, b := m.NewThread(), m.NewThread()
	if a.Rand() == b.Rand() {
		t.Fatalf("thread RNGs collide on first draw")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.Rand()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("rng repeats within 1000 draws: %d distinct", len(seen))
	}
}

// --- tracked mode ---

func TestTrackedCrashRollsBackUnflushed(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 1)
	th.Flush(&c)
	th.Fence() // 1 is persistent
	th.Store(&c, 2)
	// 2 was never flushed+fenced.
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := th.Load(&c); v != 1 {
		t.Fatalf("after crash: %d, want 1", v)
	}
}

func TestTrackedFlushWithoutFenceIsNotPersistent(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 1)
	th.Flush(&c) // no fence
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := th.Load(&c); v != 0 {
		t.Fatalf("flush without fence persisted: %d", v)
	}
}

func TestTrackedFencePersistsFlushTimeValue(t *testing.T) {
	// clwb semantics: the fence persists the value the line held at flush
	// time, not the value at fence time.
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 1)
	th.Flush(&c)
	th.Store(&c, 2) // after the flush
	th.Fence()
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := th.Load(&c); v != 1 {
		t.Fatalf("after crash: %d, want flush-time value 1", v)
	}
}

func TestTrackedCASBaseline(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 5)
	th.Flush(&c)
	th.Fence()
	if !th.CAS(&c, 5, 6) {
		t.Fatal("CAS failed")
	}
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := th.Load(&c); v != 5 {
		t.Fatalf("CAS rolled back to %d, want 5", v)
	}
}

func TestTrackedFailedCASLeavesClean(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 5)
	th.Flush(&c)
	th.Fence()
	if m.DirtyCells() != 0 {
		t.Fatalf("dirty after persist: %d", m.DirtyCells())
	}
	if th.CAS(&c, 4, 6) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if m.DirtyCells() != 0 {
		t.Fatalf("failed CAS dirtied cell: %d", m.DirtyCells())
	}
}

func TestTrackedEvictionPersistsVolatile(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 3) // dirty, never flushed
	m.Crash()
	m.FinishCrash(1.0, 42) // everything evicts
	m.Restart()
	if v := th.Load(&c); v != 3 {
		t.Fatalf("eviction lost the volatile value: %d", v)
	}
}

func TestPersistAllBaselines(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 9)
	m.PersistAll()
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := th.Load(&c); v != 9 {
		t.Fatalf("PersistAll did not baseline: %d", v)
	}
}

func TestPersistedValueHook(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	th.Store(&c, 1)
	th.Flush(&c)
	th.Fence()
	th.Store(&c, 2)
	if got := m.PersistedValue(&c); got != 1 {
		t.Fatalf("PersistedValue = %d, want 1", got)
	}
	if got := th.Load(&c); got != 2 {
		t.Fatalf("volatile = %d, want 2", got)
	}
}

func TestCrashPanicsAccessors(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	var c Cell
	m.Crash()
	crashed := RunOp(func() { th.Load(&c) })
	if !crashed {
		t.Fatalf("Load during crash did not raise the sentinel")
	}
	crashed = RunOp(func() { th.Store(&c, 1) })
	if !crashed {
		t.Fatalf("Store during crash did not raise the sentinel")
	}
	m.FinishCrash(0, 1)
	m.Restart()
	if crashed := RunOp(func() { th.Store(&c, 1) }); crashed {
		t.Fatalf("Store after restart raised the sentinel")
	}
}

func TestRunOpPassesThroughOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("RunOp swallowed a non-crash panic: %v", r)
		}
	}()
	RunOp(func() { panic("boom") })
}

// Property: with no eviction, the value surviving a crash is always exactly
// the last value that was flushed-then-fenced (or the initial value).
func TestQuickPersistedIsLastFenced(t *testing.T) {
	type step struct {
		Val   uint64
		Flush bool
		Fence bool
	}
	f := func(steps []step) bool {
		m := NewTracked()
		th := m.NewThread()
		var c Cell
		want := uint64(0)
		var flushed *uint64
		for _, s := range steps {
			th.Store(&c, s.Val)
			if s.Flush {
				v := s.Val
				flushed = &v
				th.Flush(&c)
			}
			if s.Fence {
				th.Fence()
				if flushed != nil {
					want = *flushed
					flushed = nil
				}
			}
		}
		m.Crash()
		m.FinishCrash(0, 1)
		m.Restart()
		return th.Load(&c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackedConcurrentStores(t *testing.T) {
	// Concurrent tracked stores must not race (the model serializes them)
	// and a crash must roll back to the persisted baseline.
	m := NewTracked()
	var c Cell
	th0 := m.NewThread()
	th0.Store(&c, 100)
	m.PersistAll()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th := m.NewThread()
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				RunOp(func() { th.Store(&c, th.Rand()) })
			}
		}(th)
	}
	wg.Wait()
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := th0.Load(&c); v != 100 {
		t.Fatalf("rollback to %d, want 100", v)
	}
}

func TestSpinZeroIsFast(t *testing.T) {
	spin(0) // must not hang or panic
	spin(10)
}

func TestModeAccessors(t *testing.T) {
	m := NewFast(ProfileNVRAM)
	if m.Mode() != ModeFast || m.Tracked() {
		t.Fatalf("fast memory misreports mode")
	}
	if m.Profile().Name != "nvram" {
		t.Fatalf("profile = %q", m.Profile().Name)
	}
	tm := NewTracked()
	if tm.Mode() != ModeTracked || !tm.Tracked() {
		t.Fatalf("tracked memory misreports mode")
	}
	if m.MaxThreads() != DefaultMaxThreads {
		t.Fatalf("default max threads = %d", m.MaxThreads())
	}
}

// TestStaleFenceCannotRegressPersistence is the regression test for a
// subtle simulation bug: thread A flushes (capturing value v1), thread B
// then writes v2, flushes and fences (v2 persistent), and finally A's
// stale fence lands. Real hardware cannot un-persist v2 with A's older
// writeback; the model's per-cell write versions must agree.
func TestStaleFenceCannotRegressPersistence(t *testing.T) {
	m := NewTracked()
	a, b := m.NewThread(), m.NewThread()
	var c Cell
	a.Store(&c, 1)
	a.Flush(&c) // A captures v=1
	b.Store(&c, 2)
	b.Flush(&c)
	b.Fence() // v=2 is persistent
	a.Fence() // stale: must NOT regress to v=1
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if v := a.Load(&c); v != 2 {
		t.Fatalf("stale fence regressed persistence: %d, want 2", v)
	}
}

func TestDirtyCellsCountsOnlyUnpersisted(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	// Distinct lines: persistence is line-granular, so the two cells must
	// not share one (adjacent local variables often would).
	lines := AllocLines(2)
	a, b := &lines[0][0], &lines[1][0]
	th.Store(a, 1)
	th.Store(b, 2)
	if m.DirtyCells() != 2 {
		t.Fatalf("dirty = %d, want 2", m.DirtyCells())
	}
	if m.DirtyLines() != 2 {
		t.Fatalf("dirty lines = %d, want 2", m.DirtyLines())
	}
	th.Flush(a)
	th.Fence()
	if m.DirtyCells() != 1 {
		t.Fatalf("dirty after persisting one = %d, want 1", m.DirtyCells())
	}
	if m.DirtyLines() != 1 {
		t.Fatalf("dirty lines after persisting one = %d, want 1", m.DirtyLines())
	}
}

// --- line granularity ---

func TestAllocLinesPlacement(t *testing.T) {
	lines := AllocLines(3)
	if len(lines) != 3 {
		t.Fatalf("AllocLines(3) = %d groups", len(lines))
	}
	for i, ln := range lines {
		if len(ln) != CellsPerLine {
			t.Fatalf("group %d has %d cells", i, len(ln))
		}
		for j := 1; j < len(ln); j++ {
			if !SameLine(&ln[0], &ln[j]) {
				t.Fatalf("group %d: cells 0 and %d on different lines", i, j)
			}
		}
	}
	if SameLine(&lines[0][0], &lines[1][0]) || SameLine(&lines[1][7], &lines[2][0]) {
		t.Fatalf("distinct groups share a line")
	}
}

func TestLineFlushPersistsWholeLine(t *testing.T) {
	// clwb semantics: flushing any cell of a line writes back the whole
	// line, so a sibling cell's unflushed write persists with it.
	m := NewTracked()
	th := m.NewThread()
	ln := AllocLines(1)[0]
	a, b := &ln[0], &ln[1]
	th.Store(a, 1)
	th.Store(b, 2)
	th.Flush(a) // never mentions b
	th.Fence()
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if got := th.Load(b); got != 2 {
		t.Fatalf("sibling cell did not persist with its line: %d, want 2", got)
	}
}

func TestLineCrashIsAtomic(t *testing.T) {
	// A dirty line rolls back as a unit: no crash state splits a line.
	m := NewTracked()
	th := m.NewThread()
	ln := AllocLines(1)[0]
	a, b := &ln[0], &ln[1]
	th.Store(a, 1)
	th.Store(b, 2)
	th.Flush(a)
	th.Fence() // line image {a:1, b:2} persistent
	th.Store(a, 10)
	th.Store(b, 20) // dirty on top
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	av, bv := th.Load(a), th.Load(b)
	if av != 1 || bv != 2 {
		t.Fatalf("line split in crash: a=%d b=%d, want 1 2", av, bv)
	}
}

func TestLineEvictionIsAtomic(t *testing.T) {
	// Eviction keeps a whole line's volatile content, never a subset.
	m := NewTracked()
	th := m.NewThread()
	ln := AllocLines(1)[0]
	a, b := &ln[0], &ln[1]
	th.Store(a, 10)
	th.Store(b, 20) // dirty, never flushed
	m.Crash()
	m.FinishCrash(1.0, 42) // every dirty line evicts
	m.Restart()
	if th.Load(a) != 10 || th.Load(b) != 20 {
		t.Fatalf("evicted line lost cells: a=%d b=%d", th.Load(a), th.Load(b))
	}
}

func TestFlushCoalescing(t *testing.T) {
	// Repeat flushes of an unchanged line coalesce; a write un-coalesces.
	for _, mk := range []func() *Memory{NewTracked, func() *Memory { return NewFast(ProfileZero) }} {
		m := mk()
		th := m.NewThread()
		ln := AllocLines(1)[0]
		a, b := &ln[0], &ln[1]
		th.Store(a, 1)
		th.Flush(a)
		th.Flush(a) // same line, unchanged: elided
		th.Flush(b) // same line via sibling: elided
		th.PublishStats()
		s := m.Stats()
		if s.Flushes != 1 || s.FlushesElided != 2 {
			t.Fatalf("mode %v: flushes=%d elided=%d, want 1/2", m.Mode(), s.Flushes, s.FlushesElided)
		}
		th.Store(b, 2) // writes the line: next flush must re-issue
		th.Flush(a)
		th.PublishStats()
		s = m.Stats()
		if s.Flushes != 2 {
			t.Fatalf("mode %v: flush after write elided: %+v", m.Mode(), s)
		}
		th.Fence() // fence closes the window
		th.Flush(a)
		th.PublishStats()
		s = m.Stats()
		if s.Flushes != 3 {
			t.Fatalf("mode %v: flush after fence elided: %+v", m.Mode(), s)
		}
	}
}

func TestCoalescedFlushStillDurable(t *testing.T) {
	// An elided flush must lose nothing: the pending capture it coalesced
	// into persists the same content at the next fence.
	m := NewTracked()
	th := m.NewThread()
	ln := AllocLines(1)[0]
	a, b := &ln[0], &ln[1]
	th.Store(a, 7)
	th.Store(b, 8)
	th.Flush(a)
	th.Flush(b) // elided: same line, same version
	th.Fence()
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if th.Load(a) != 7 || th.Load(b) != 8 {
		t.Fatalf("coalesced flush lost data: a=%d b=%d", th.Load(a), th.Load(b))
	}
}

func TestCrashAtFence(t *testing.T) {
	m := NewTracked()
	th := m.NewThread()
	ln := AllocLines(2)
	a, b := &ln[0][0], &ln[1][0]
	m.CrashAtFence(2)
	th.Store(a, 1)
	th.Flush(a)
	th.Fence() // fence #1: runs
	crashed := RunOp(func() {
		th.Store(b, 2)
		th.Flush(b)
		th.Fence() // fence #2: trapped, never persists
	})
	if !crashed {
		t.Fatalf("fence trap did not fire")
	}
	m.FinishCrash(0, 1)
	m.Restart()
	if th.Load(a) != 1 {
		t.Fatalf("fence #1 did not persist: a=%d", th.Load(a))
	}
	if th.Load(b) != 0 {
		t.Fatalf("trapped fence persisted: b=%d", th.Load(b))
	}
	// Trap is disarmed: fences run normally again.
	th.Store(b, 3)
	th.Flush(b)
	th.Fence()
	if m.PersistedValue(b) != 3 {
		t.Fatalf("fence after disarm did not persist")
	}
}

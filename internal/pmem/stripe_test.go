package pmem

import (
	"sync"
	"sync/atomic"
	"testing"
)

// The striped tracked model must preserve the single-lock model's semantics
// under concurrency: per-line atomicity (cells of one line persist and roll
// back together), monotonic persistence (a line's persisted state never
// moves backwards), and exact quiescent accounting (a fully fenced memory
// has no dirty lines). These tests run in the -race suite: the stress
// shapes are chosen so every pair of stripes, and both the one-stripe and
// all-stripe lock paths, are exercised concurrently.

// TestStripedModelConcurrentStress hammers private and shared lines from
// many goroutines with Store/CAS/Flush/Fence while a checker concurrently
// asserts the monotonic-persistence invariant through PersistedValue and
// DirtyLines/DirtyCells (the all-stripe lock path). At quiescence every
// write has been fenced, so the model must report a fully clean memory.
func TestStripedModelConcurrentStress(t *testing.T) {
	const (
		workers       = 8
		privPerWorker = 4
		sharedCount   = 6
		iters         = 400
	)
	m := NewTracked()
	priv := make([][][]Cell, workers)
	for w := range priv {
		priv[w] = AllocLines(privPerWorker)
	}
	shared := AllocLines(sharedCount)
	m.PersistAll()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := m.NewThread()
		mine := priv[w]
		wg.Add(1)
		go func(w int, th *Thread) {
			defer wg.Done()
			for i := 1; i <= iters; i++ {
				ln := mine[i%privPerWorker]
				// Private line: both cells carry the same monotonically
				// increasing sequence number, persisted as a unit.
				th.Store(&ln[0], uint64(i))
				th.Store(&ln[1], uint64(i))
				th.Flush(&ln[0])
				// Shared line: CAS increment, crossing stripes with the
				// other workers.
				sc := &shared[(w+i)%sharedCount][0]
				for {
					old := th.Load(sc)
					if th.CAS(sc, old, old+1) {
						break
					}
				}
				th.Flush(sc)
				th.Fence()
				th.CountOp()
			}
		}(w, th)
	}

	// Checker: monotonic persistence per private line, plus the whole-
	// memory accounting path, concurrently with the mutators.
	checker := make([][]uint64, workers)
	for w := range checker {
		checker[w] = make([]uint64, privPerWorker)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			for w := 0; w < workers; w++ {
				for j := 0; j < privPerWorker; j++ {
					pv := m.PersistedValue(&priv[w][j][0])
					if pv < checker[w][j] {
						t.Errorf("persisted value of worker %d line %d went backwards: %d -> %d",
							w, j, checker[w][j], pv)
						return
					}
					checker[w][j] = pv
				}
			}
			if m.DirtyLines() < 0 || m.DirtyCells() < 0 {
				t.Error("negative dirty accounting")
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-done

	// Quiescent: every worker's last action on every line it touched was
	// flush+fence, and fences apply monotonically, so nothing may be dirty.
	if n := m.DirtyLines(); n != 0 {
		t.Fatalf("quiescent fenced memory has %d dirty lines", n)
	}
	for w := 0; w < workers; w++ {
		for j := 0; j < privPerWorker; j++ {
			c0, c1 := &priv[w][j][0], &priv[w][j][1]
			if pv := m.PersistedValue(c0); pv != c0.raw() {
				t.Fatalf("worker %d line %d: persisted %d != volatile %d", w, j, pv, c0.raw())
			}
			if c0.raw() != c1.raw() {
				t.Fatalf("worker %d line %d: cells diverged: %d vs %d", w, j, c0.raw(), c1.raw())
			}
		}
	}
	for i := range shared {
		sc := &shared[i][0]
		if pv := m.PersistedValue(sc); pv != sc.raw() {
			t.Fatalf("shared line %d: persisted %d != volatile %d", i, pv, sc.raw())
		}
	}
}

// TestStripedModelCrashAtFence drives the same concurrent mix under
// deterministic crash-at-fence-k schedules and checks, after rollback, the
// invariants durable linearizability demands of the substrate: cells of one
// line never part ways, no fenced write is ever lost, and no value that was
// never stored can materialize.
func TestStripedModelCrashAtFence(t *testing.T) {
	const (
		workers       = 4
		privPerWorker = 3
		iters         = 200
	)
	for _, fenceK := range []int{1, 3, 17, 101, 399} {
		m := NewTracked()
		priv := make([][][]Cell, workers)
		for w := range priv {
			priv[w] = AllocLines(privPerWorker)
		}
		m.PersistAll()
		m.CrashAtFence(fenceK)

		// durable[w][j] is the newest sequence number whose fence returned.
		// last[w][j] is the newest sequence number stored at all.
		durable := make([][]uint64, workers)
		last := make([][]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			durable[w] = make([]uint64, privPerWorker)
			last[w] = make([]uint64, privPerWorker)
			th := m.NewThread()
			mine := priv[w]
			wg.Add(1)
			go func(w int, th *Thread) {
				defer wg.Done()
				for i := 1; i <= iters; i++ {
					j := i % privPerWorker
					ln := mine[j]
					crashed := RunOp(func() {
						th.Store(&ln[0], uint64(i))
						th.Store(&ln[1], uint64(i))
						last[w][j] = uint64(i)
						th.Flush(&ln[0])
						th.Fence()
						durable[w][j] = uint64(i)
					})
					if crashed {
						return
					}
				}
			}(w, th)
		}
		wg.Wait()
		m.FinishCrash(0, int64(fenceK))
		m.Restart()

		th := m.NewThread()
		for w := 0; w < workers; w++ {
			for j := 0; j < privPerWorker; j++ {
				v0 := th.Load(&priv[w][j][0])
				v1 := th.Load(&priv[w][j][1])
				if v0 != v1 {
					t.Fatalf("k=%d: worker %d line %d split in crash: %d vs %d",
						fenceK, w, j, v0, v1)
				}
				if v0 < durable[w][j] {
					t.Fatalf("k=%d: worker %d line %d lost fenced write: have %d, fenced %d",
						fenceK, w, j, v0, durable[w][j])
				}
				if v0 > last[w][j] {
					t.Fatalf("k=%d: worker %d line %d holds never-stored value %d (last stored %d)",
						fenceK, w, j, v0, last[w][j])
				}
			}
		}
		if n := m.DirtyLines(); n != 0 {
			t.Fatalf("k=%d: %d dirty lines after FinishCrash", fenceK, n)
		}
	}
}

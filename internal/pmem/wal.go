package pmem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/pmem/vfs"
)

// ErrWALCorrupt reports a bad WAL frame with intact frames after it:
// in-place corruption of committed history, as opposed to a torn tail
// (nothing valid after the tear), which is truncated silently. Recovery
// refuses to open rather than drop acknowledged records.
var ErrWALCorrupt = errors.New("pmem: WAL corrupted mid-log")

// On-disk layout of a durable Memory's directory:
//
//	CURRENT            "v1 <gen> <boot>\n" — names the live generation and
//	                   the boot counter; replaced atomically (tmp + rename)
//	wal-<gen>.log      walMagic, then framed records appended at fences
//	ckpt-<gen>.snap    ckptMagic + full region dump, written at Checkpoint
//
// A WAL record frame is
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// and the payload is
//
//	u64 boot | u32 entryCount | entryCount × 88-byte entries
//	entry: u64 tag | u32 lineIdx | u32 mask | u64 ver | 8 × u64 cell values
//
// all little-endian. The length/checksum framing is the torn-write defense:
// a crash mid-append leaves a frame that is short or fails its checksum, and
// replay stops cleanly at the first such frame, truncating it away — every
// acknowledged record necessarily lies before it (acknowledgement waits for
// the flush of its record).
//
// A checkpoint (current format, v2) is
//
//	ckptMagic2 | u32 regionCount | u64 boot | regionCount × (u64 tag |
//	u64 size | (size/64) × (u64 ver | 64 content bytes)) |
//	u32 crc32(everything after the magic)
//
// written to a temp file, fsynced and renamed, then a fresh empty WAL for
// the next generation is created before CURRENT flips — so a crash anywhere
// in the sequence leaves either the old generation fully live or the new
// one, never a mix. The per-line versions (read before the line content,
// the same ordering captureFast relies on) let recovery seed the replay
// guard: a WAL record that captured a line at a version the checkpoint
// already covers is skipped, which is what makes checkpointing safe under
// live traffic — a thread that captured a line before the checkpoint but
// fenced after it cannot roll the line back (see Checkpoint). The v1
// format (no versions, quiesced-only) is still read for old directories.

const (
	walMagic   = "NVTWAL1\n"
	ckptMagic  = "NVTCKP1\n"
	ckptMagic2 = "NVTCKP2\n"

	walEntryBytes  = 88
	walFrameHeader = 8
	// maxFrameLen bounds a frame's declared payload length during replay, so
	// a corrupt length field cannot provoke a giant allocation. One record
	// holds one thread's between-fences line set; 1<<24 is ~190k lines.
	maxFrameLen = 1 << 24
)

// appendRecordBytes serializes one record (frame header + payload) into buf.
func appendRecordBytes(buf []byte, boot uint64, entries []walEntry) []byte {
	payloadLen := 12 + len(entries)*walEntryBytes
	need := walFrameHeader + payloadLen
	start := len(buf)
	if cap(buf)-start < need {
		nb := make([]byte, start, start+need)
		copy(nb, buf)
		buf = nb
	}
	buf = buf[:start+need]
	payload := buf[start+walFrameHeader:]
	binary.LittleEndian.PutUint64(payload[0:], boot)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(entries)))
	off := 12
	for i := range entries {
		e := &entries[i]
		binary.LittleEndian.PutUint64(payload[off:], e.tag)
		binary.LittleEndian.PutUint32(payload[off+8:], e.idx)
		binary.LittleEndian.PutUint32(payload[off+12:], uint32(e.mask))
		binary.LittleEndian.PutUint64(payload[off+16:], e.ver)
		for s := 0; s < CellsPerLine; s++ {
			binary.LittleEndian.PutUint64(payload[off+24+8*s:], e.vals[s])
		}
		off += walEntryBytes
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

func currentPath(dir string) string { return filepath.Join(dir, "CURRENT") }
func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}
func ckptPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%d.snap", gen))
}

// readCurrent parses CURRENT; ok=false when the file does not exist (fresh
// directory).
func readCurrent(fs vfs.FS, dir string) (gen, boot uint64, ok bool, err error) {
	b, err := fs.ReadFile(currentPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	var v int
	if _, err := fmt.Sscanf(strings.TrimSpace(string(b)), "v%d %d %d", &v, &gen, &boot); err != nil || v != 1 {
		return 0, 0, false, fmt.Errorf("pmem: malformed CURRENT %q", string(b))
	}
	return gen, boot, true, nil
}

// writeCurrent atomically replaces CURRENT (tmp + rename + dir sync).
func writeCurrent(fs vfs.FS, dir string, gen, boot uint64) error {
	tmp := currentPath(dir) + ".tmp"
	if err := fs.WriteFile(tmp, []byte(fmt.Sprintf("v1 %d %d\n", gen, boot)), 0o644); err != nil {
		return err
	}
	if err := fs.Rename(tmp, currentPath(dir)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// lineGuard keys the replay version guard: one entry per replayed line.
type lineGuard struct {
	tag uint64
	idx uint32
}

// storeLine writes one replayed line image into its registered region
// (masked slots only), via atomic stores so tracked-mode construction state
// and concurrent readers (there are none during recovery, but the cells are
// atomics) stay well-defined.
func (d *durableMem) storeLine(r *region, idx uint32, mask uint8, vals *[CellsPerLine]uint64) bool {
	off := uintptr(idx) << lineShift
	if off+LineSize > r.size {
		return false
	}
	p := unsafe.Add(r.ptr, off)
	for s := 0; s < CellsPerLine; s++ {
		if mask&(1<<s) != 0 {
			(*atomic.Uint64)(unsafe.Add(p, s*8)).Store(vals[s])
		}
	}
	return true
}

// loadCheckpoint reads and applies ckpt-<gen>.snap; missing file is fine
// (no checkpoint taken yet in this generation). A v2 checkpoint seeds the
// replay guard with its per-line versions, so WAL records that captured a
// line the checkpoint already covers are skipped — the other half of the
// live-checkpoint safety argument (see Checkpoint). A v1 checkpoint (taken
// quiesced, its WAL necessarily empty at the flip) seeds nothing.
func (d *durableMem) loadCheckpoint(gen uint64, guard map[lineGuard][2]uint64, seen map[uint64]bool, st *ReplayStats) error {
	b, err := d.fs.ReadFile(ckptPath(d.dir, gen))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(b) < len(ckptMagic)+8 {
		return fmt.Errorf("pmem: checkpoint %s: bad magic", ckptPath(d.dir, gen))
	}
	v2 := string(b[:len(ckptMagic2)]) == ckptMagic2
	if !v2 && string(b[:len(ckptMagic)]) != ckptMagic {
		return fmt.Errorf("pmem: checkpoint %s: bad magic", ckptPath(d.dir, gen))
	}
	body, sum := b[len(ckptMagic):len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("pmem: checkpoint %s: checksum mismatch", ckptPath(d.dir, gen))
	}
	if len(body) < 4 {
		return fmt.Errorf("pmem: checkpoint %s: short header", ckptPath(d.dir, gen))
	}
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	var ckptBoot uint64
	if v2 {
		if len(body) < 8 {
			return fmt.Errorf("pmem: checkpoint %s: short header", ckptPath(d.dir, gen))
		}
		ckptBoot = binary.LittleEndian.Uint64(body)
		body = body[8:]
	}
	var full [CellsPerLine]uint64
	for i := uint32(0); i < n; i++ {
		if len(body) < 16 {
			return fmt.Errorf("pmem: checkpoint %s: short region header", ckptPath(d.dir, gen))
		}
		tag := binary.LittleEndian.Uint64(body)
		size := binary.LittleEndian.Uint64(body[8:])
		body = body[16:]
		stride := uint64(LineSize)
		if v2 {
			stride += 8 // u64 version prefix per line
		}
		if size%LineSize != 0 || uint64(len(body)) < size/LineSize*stride {
			return fmt.Errorf("pmem: checkpoint %s: bad region size %d", ckptPath(d.dir, gen), size)
		}
		raw := body[:size/LineSize*stride]
		body = body[size/LineSize*stride:]
		d.provided(tag, seen)
		d.regMu.Lock()
		r := d.byTag[tag]
		d.regMu.Unlock()
		if r == nil {
			return fmt.Errorf("pmem: checkpoint region (space %d, sub %d) has no registration — structure layout mismatch",
				uint32(tag>>32), uint32(tag))
		}
		if uintptr(size) != r.size {
			return fmt.Errorf("pmem: checkpoint region (space %d, sub %d) size %d != registered %d",
				uint32(tag>>32), uint32(tag), size, r.size)
		}
		for line := uintptr(0); line < r.size/LineSize; line++ {
			off := line * uintptr(stride)
			if v2 {
				ver := binary.LittleEndian.Uint64(raw[off:])
				// Seed every line, version 0 included: the checkpoint content
				// was read after the version, so a record at a version the
				// seed covers carries nothing the content lacks — while
				// applying it could roll the line back below the snapshot.
				guard[lineGuard{tag: tag, idx: uint32(line)}] = [2]uint64{ckptBoot, ver}
				off += 8
			}
			for s := 0; s < CellsPerLine; s++ {
				full[s] = binary.LittleEndian.Uint64(raw[off+uintptr(s)*8:])
			}
			d.storeLine(r, uint32(line), 0xff, &full)
		}
	}
	st.CheckpointBytes += uint64(len(b))
	return nil
}

// replayWAL streams wal-<gen>.log, applying each intact record under the
// boot-scoped monotonic-version guard, and returns the offset just past the
// last good frame. A torn TAIL — a bad frame with nothing valid after it,
// the signature of a crash mid-append — stops replay cleanly and is
// reported via st.Truncated for the caller to truncate away. A bad frame
// with intact frames AFTER it is in-place corruption of committed history:
// replay refuses with ErrWALCorrupt instead of silently truncating
// acknowledged records (truncate is the caller's copy of the log, not the
// operator's decision to take).
func (d *durableMem) replayWAL(gen uint64, guard map[lineGuard][2]uint64, seen map[uint64]bool, st *ReplayStats) (lastGood int64, err error) {
	f, err := d.fs.Open(walPath(d.dir, gen))
	if errors.Is(err, os.ErrNotExist) {
		return -1, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	// torn marks a bad frame at lastGood: torn tail if nothing intact
	// follows, ErrWALCorrupt otherwise.
	torn := func(lastGood int64) (int64, error) {
		if err := d.scanPastBadFrame(f, lastGood); err != nil {
			return 0, err
		}
		st.Truncated = true
		return lastGood, nil
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		// Even the magic is bad (crash during the very first write to a
		// fresh log): recover to an empty log — unless intact frames follow
		// the damaged header, which no crash mid-append can produce.
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return 0, err // real read failure, not a short file
		}
		return torn(0)
	}
	lastGood = int64(len(walMagic))
	var hdr [walFrameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return lastGood, nil // clean end on a frame boundary
			}
			if err != io.ErrUnexpectedEOF {
				return 0, err
			}
			return torn(lastGood)
		}
		plen := binary.LittleEndian.Uint32(hdr[:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if plen < 12 || plen > maxFrameLen || (plen-12)%walEntryBytes != 0 {
			return torn(lastGood)
		}
		if uint32(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return 0, err
			}
			return torn(lastGood)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return torn(lastGood)
		}
		boot := binary.LittleEndian.Uint64(payload)
		count := binary.LittleEndian.Uint32(payload[8:])
		if uint64(len(payload)) != 12+uint64(count)*walEntryBytes {
			return torn(lastGood)
		}
		off := 12
		var vals [CellsPerLine]uint64
		for i := uint32(0); i < count; i++ {
			tag := binary.LittleEndian.Uint64(payload[off:])
			idx := binary.LittleEndian.Uint32(payload[off+8:])
			mask := uint8(binary.LittleEndian.Uint32(payload[off+12:]))
			ver := binary.LittleEndian.Uint64(payload[off+16:])
			for s := 0; s < CellsPerLine; s++ {
				vals[s] = binary.LittleEndian.Uint64(payload[off+24+8*s:])
			}
			off += walEntryBytes
			d.provided(tag, seen)
			key := lineGuard{tag: tag, idx: idx}
			if g, ok := guard[key]; ok && (g[0] > boot || (g[0] == boot && g[1] >= ver)) {
				continue // an already-applied image is at least as new
			}
			d.regMu.Lock()
			r := d.byTag[tag]
			d.regMu.Unlock()
			if r == nil {
				continue // region gone from this build's layout: skip
			}
			if d.storeLine(r, idx, mask, &vals) {
				guard[key] = [2]uint64{boot, ver}
				st.Lines++
			}
		}
		st.Records++
		lastGood += int64(walFrameHeader) + int64(plen)
		st.Bytes += uint64(walFrameHeader) + uint64(plen)
	}
}

// scanPastBadFrame distinguishes a torn tail from mid-log corruption: the
// frame at offset bad failed its structure or checksum; if any well-formed
// frame (sane length fields AND a matching checksum) exists at a LATER
// offset, the log was not torn there — appends are strictly sequential, so
// bytes after a crash point cannot exist. That is in-place damage to
// committed history, and the scan returns ErrWALCorrupt. The re-read goes
// through ReadAt on the same file handle; a transient read fault that
// corrupted the streaming pass therefore also lands here rather than
// silently truncating a healthy log.
func (d *durableMem) scanPastBadFrame(f vfs.File, bad int64) error {
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil || end <= bad+walFrameHeader {
		return nil
	}
	n := end - bad
	const scanCap = 64 << 20 // bound the diagnostic scan
	if n > scanCap {
		n = scanCap
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, bad, n), buf); err != nil {
		return nil // cannot re-read: treat as torn, the conservative default
	}
	// Offset 0 is the known-bad frame itself; every later byte offset is a
	// candidate start (a torn length field misaligns all that follows).
	for off := 1; off+walFrameHeader <= len(buf); off++ {
		plen := binary.LittleEndian.Uint32(buf[off:])
		if plen < 12 || plen > maxFrameLen || (plen-12)%walEntryBytes != 0 {
			continue
		}
		fend := off + walFrameHeader + int(plen)
		if fend > len(buf) {
			continue
		}
		if crc32.ChecksumIEEE(buf[off+walFrameHeader:fend]) == binary.LittleEndian.Uint32(buf[off+4:]) {
			return fmt.Errorf("%w: bad frame at offset %d, intact frame at offset %d in %s — refusing to truncate committed history",
				ErrWALCorrupt, bad, bad+int64(off), f.Name())
		}
	}
	return nil
}

// RecoverFiles brings the file backend online: it loads the current
// generation's checkpoint, replays its WAL under the boot-scoped
// monotonic-version guard (truncating a torn tail at the first bad frame),
// bumps the boot counter, and opens the log for appending. Until this runs,
// WAL appends are dropped — structure construction is deterministic and is
// re-executed before every recovery, so its writes need no log records and
// must not shadow recovered state. Call it exactly once, after constructing
// the memory's structures and registering their regions, while the memory
// is quiescent; repeat calls return the first call's stats.
//
// On a tracked memory, the recovered content is declared persisted
// (PersistAll) so the crash simulation and the file agree on the baseline.
func (m *Memory) RecoverFiles() (ReplayStats, error) {
	d := m.durable
	if d == nil {
		return ReplayStats{}, errors.New("pmem: RecoverFiles without Config.Dir")
	}
	d.mu.Lock()
	if d.live {
		st := d.replay
		d.mu.Unlock()
		return st, nil
	}
	start := time.Now()
	var st ReplayStats
	err := func() error {
		if err := d.fs.MkdirAll(d.dir, 0o755); err != nil {
			return err
		}
		gen, boot, ok, err := readCurrent(d.fs, d.dir)
		if err != nil {
			return err
		}
		if !ok {
			gen, boot = 1, 0
		}
		seen := make(map[uint64]bool)
		guard := make(map[lineGuard][2]uint64)
		if err := d.loadCheckpoint(gen, guard, seen, &st); err != nil {
			return err
		}
		lastGood, err := d.replayWAL(gen, guard, seen, &st)
		if err != nil {
			return err
		}
		d.boot = boot + 1
		d.gen = gen
		if err := writeCurrent(d.fs, d.dir, gen, d.boot); err != nil {
			return err
		}
		f, err := d.fs.OpenFile(walPath(d.dir, gen), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		end := lastGood
		if end < 0 { // log did not exist: fresh generation
			end = 0
		}
		if err := f.Truncate(end); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		d.f = f
		d.bw = bufio.NewWriterSize(f, 1<<16)
		if end == 0 {
			d.bw.WriteString(walMagic)
			d.dirty.Store(true)
			end = int64(len(walMagic))
		}
		d.walLen.Store(end)
		d.removeStaleGenerations()
		return nil
	}()
	if err != nil {
		d.mu.Unlock()
		return ReplayStats{}, err
	}
	st.Elapsed = time.Since(start)
	d.replay = st
	d.live = true
	d.mu.Unlock()
	if err := d.flush(); err != nil {
		return ReplayStats{}, err
	}
	if m.model != nil {
		m.PersistAll()
	}
	return st, nil
}

// removeStaleGenerations best-effort deletes wal/ckpt files of generations
// other than the live one (orphans of an interrupted Checkpoint). Caller
// holds d.mu.
func (d *durableMem) removeStaleGenerations() {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		var g uint64
		n := de.Name()
		if _, err := fmt.Sscanf(n, "wal-%d.log", &g); err == nil && g != d.gen {
			d.fs.Remove(filepath.Join(d.dir, n))
			continue
		}
		if _, err := fmt.Sscanf(n, "ckpt-%d.snap", &g); err == nil && g != d.gen {
			d.fs.Remove(filepath.Join(d.dir, n))
		}
	}
}

// Checkpoint dumps every registered region to a new-generation snapshot,
// switches the WAL to a fresh (empty) log, and retires the old generation —
// bounding replay work at the next open. It is safe under live traffic:
// holding d.mu for the duration excludes WAL appends (so every record of
// the retired log was appended by a fence that synchronized-before this
// checkpoint, and its content is therefore visible to the region scan),
// and the snapshot records each line's write version — read before the
// line content, exactly like captureFast — so recovery seeds the replay
// guard and skips any record a thread captured before the scan but fenced
// into the NEW log after it. A write the seed masks is either already in
// the snapshot content (its version bump preceded the scan's version read)
// or re-captured at a newer version by its own thread's later fence. The
// threads pay one stalled fence while the dump runs; nothing needs to
// quiesce. No-op without a file backend.
func (m *Memory) Checkpoint() error {
	d := m.durable
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.live || d.f == nil {
		return errors.New("pmem: Checkpoint before RecoverFiles")
	}
	// A damaged backend cannot checkpoint: the region scan would snapshot
	// in-memory state that includes writes whose acknowledgements were
	// withheld, promoting them to durable behind the caller's back.
	if err := d.damageErr(); err != nil {
		return err
	}
	if err := d.bw.Flush(); err != nil {
		return d.latch(err) // live-WAL flush failure: fail-stop
	}
	d.dirty.Store(false)
	newGen := d.gen + 1

	// 1. Snapshot all regions into ckpt-<newGen> (tmp + fsync + rename).
	// The regions snapshot is loaded after d.mu: a region referenced by any
	// record in the retired log was registered before the fence that wrote
	// the record, which took d.mu before we did.
	var regs []*region
	if p := d.regions.Load(); p != nil {
		regs = *p
	}
	tmp := ckptPath(d.dir, newGen) + ".tmp"
	cf, err := d.fs.Create(tmp)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(cf, crc), 1<<16)
	// The magic is outside the checksum; split the writer accordingly.
	if _, err := io.WriteString(cf, ckptMagic2); err != nil {
		cf.Close()
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(regs)))
	bw.Write(hdr[:4])
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], d.boot)
	bw.Write(word[:])
	for _, r := range regs {
		binary.LittleEndian.PutUint64(hdr[:8], r.tag)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(r.size))
		bw.Write(hdr[:])
		for off := uintptr(0); off < r.size; off += LineSize {
			// Per line: version first, then content — the capture ordering
			// the replay-guard seeding depends on.
			binary.LittleEndian.PutUint64(word[:], m.lineVersion((r.base+off)>>lineShift))
			bw.Write(word[:])
			for s := uintptr(0); s < LineSize; s += 8 {
				binary.LittleEndian.PutUint64(word[:], (*atomic.Uint64)(unsafe.Add(r.ptr, off+s)).Load())
				bw.Write(word[:])
			}
		}
	}
	if err := bw.Flush(); err != nil {
		cf.Close()
		return err
	}
	binary.LittleEndian.PutUint32(word[:4], crc.Sum32())
	if _, err := cf.Write(word[:4]); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Sync(); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, ckptPath(d.dir, newGen)); err != nil {
		return err
	}

	// 2. Fresh WAL for the new generation.
	nf, err := d.fs.Create(walPath(d.dir, newGen))
	if err != nil {
		return err
	}
	if _, err := io.WriteString(nf, walMagic); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		nf.Close()
		return err
	}

	// 3. Flip CURRENT — the commit point — then swap writers and retire the
	// old generation. Failures BEFORE the flip (everything above) leave the
	// old generation fully live and do NOT latch: serving continues, only
	// the checkpoint attempt failed. Failures on the retired log below no
	// longer threaten any acknowledged data — the new checkpoint covers it
	// — but a WAL file refusing to sync or close is a sick disk, and
	// fail-stop beats finding out on the next commit.
	if err := writeCurrent(d.fs, d.dir, newGen, d.boot); err != nil {
		nf.Close()
		return err
	}
	retireErr := d.f.Sync()
	if cerr := d.f.Close(); retireErr == nil {
		retireErr = cerr
	}
	d.f = nf
	d.bw = bufio.NewWriterSize(nf, 1<<16)
	d.walLen.Store(int64(len(walMagic)))
	d.wstats.Checkpoints++
	oldGen := d.gen
	d.gen = newGen
	d.fs.Remove(walPath(d.dir, oldGen))
	d.fs.Remove(ckptPath(d.dir, oldGen))
	if retireErr != nil {
		return d.latch(retireErr)
	}
	return nil
}

// lineVersion reads a line's current write version the same way the flush
// path does: the exact tracked counter under its stripe lock, or the
// hashed fast-mode slot (collisions only inflate the version, which at
// worst makes a replay-guard seed skip a record whose content the
// checkpoint covers anyway — the slot counter is shared and monotone).
func (m *Memory) lineVersion(key uintptr) uint64 {
	if mo := m.model; mo != nil {
		st := mo.stripeOf(key)
		st.mu.Lock()
		var ver uint64
		if ls := st.lines[key]; ls != nil {
			ver = ls.curVer
		}
		st.mu.Unlock()
		return ver
	}
	h := uint64(key) * 0x9e3779b97f4a7c15
	return m.lineVer[h>>(64-uint(m.cfg.LineTableBits))].v.Load()
}

package pmem

import "sync/atomic"

// Cell is one shared 64-bit word of simulated persistent memory. Cells are
// accessed only through a Thread so that the latency model, statistics and
// the tracked write-back model see every access.
//
// The zero Cell holds zero and is considered persisted at construction (see
// Memory.PersistAll for how initialization is baselined).
type Cell struct {
	v atomic.Uint64
}

// raw returns the current volatile value without going through a Thread.
// It is used by the tracked model and by single-threaded validators.
func (c *Cell) raw() uint64 { return c.v.Load() }

// Ref is a handle to a node in an arena, with tag bits:
//
//	bit 0:  mark bit (logical deletion; "flag" for edge-bit structures)
//	bit 1:  auxiliary bit ("tag" for Natarajan–Mittal edges)
//	bit 62: persisted tag, set only by the link-and-persist policy
//
// The arena index occupies bits 2..61. Index 0 is reserved, so a Ref of 0
// (NilRef) is the null reference.
type Ref = uint64

const (
	// NilRef is the null reference.
	NilRef Ref = 0

	// MarkBit marks a reference (logical deletion / NM "flag").
	MarkBit Ref = 1
	// TagBit is the auxiliary edge bit (NM "tag").
	TagBit Ref = 2
	// PersistBit tags a cell value as already flushed (link-and-persist).
	PersistBit Ref = 1 << 62

	refShift = 2
	tagMask  = MarkBit | TagBit | PersistBit
)

// MakeRef builds a clean reference from an arena index.
func MakeRef(idx uint64) Ref { return idx << refShift }

// RefIndex extracts the arena index, ignoring all tag bits.
func RefIndex(r Ref) uint64 { return (r &^ tagMask) >> refShift }

// IsNil reports whether the reference points to no node (index 0),
// regardless of tag bits.
func IsNil(r Ref) bool { return RefIndex(r) == 0 }

// Marked reports whether the mark bit is set.
func Marked(r Ref) bool { return r&MarkBit != 0 }

// Tagged reports whether the auxiliary tag bit is set.
func Tagged(r Ref) bool { return r&TagBit != 0 }

// WithMark returns r with the mark bit set.
func WithMark(r Ref) Ref { return r | MarkBit }

// WithTag returns r with the auxiliary tag bit set.
func WithTag(r Ref) Ref { return r | TagBit }

// ClearMark returns r with the mark bit cleared.
func ClearMark(r Ref) Ref { return r &^ MarkBit }

// ClearTags returns r with all low tag bits and the persist bit cleared:
// a clean reference carrying only the index.
func ClearTags(r Ref) Ref { return r &^ tagMask }

// Dirty strips the persist tag. Every value composed for a Store or CAS must
// go through Dirty: after a modification the cell is, by definition, no
// longer persisted, so it must not inherit a stale persisted tag from the
// value it was derived from.
func Dirty(v uint64) uint64 { return v &^ PersistBit }

// SameNode reports whether two references address the same node, ignoring
// all tag bits.
func SameNode(a, b Ref) bool { return RefIndex(a) == RefIndex(b) }

package pmem

import (
	"bufio"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/pmem/vfs"
)

// The durable file backend gives a Memory real on-disk state: every fenced
// line snapshot of a *registered region* is appended to a write-ahead log,
// and a periodic checkpoint dumps the regions whole and truncates the log.
// The simulated cost model and the line/fence accounting are untouched —
// durability rides on the same flush-set captures the simulation already
// takes — so every structure, the shard engine, the batcher and nvserver
// run unchanged against a directory instead of (only) simulated NVRAM.
//
// The commit unit is the fence. A Fence with pending captured lines appends
// exactly one WAL record (the thread's coalesced line set since its last
// fence); records from all threads interleave in a single per-Memory log,
// buffered in userspace and flushed to the OS at the points where an
// operation may be acknowledged: CommitFence outside a batch, the closing
// fence of EndBatch, and Thread.DurableSync (the link-and-persist policy's
// "some other thread already fenced my link" return path). A SIGKILL after
// an acknowledgement therefore always finds the acknowledged record in the
// file — group commit at the file layer mirrors the batcher's group commit
// at the wire. Config.SyncFence additionally fdatasyncs at those points for
// power-loss (not just process-death) durability.
//
// Addresses do not survive a process restart, so the log cannot record raw
// pointers. Instead, structures register the memory that backs their cells
// as regions with stable coordinates: a Space (numbered in deterministic
// construction order) plus a caller-chosen sub-tag (for arenas, the chunk
// index). A line is logged as (tag, line index within region, write
// version, cell values); replay maps the tag back to wherever the region
// lives in the restarted process. Lines outside every registered region
// (test scaffolding, harness-private cells) are simply not durable.
//
// Replay applies records in log order under the same monotonic-version
// guard as Fence: a record only advances a line it captured at a newer
// write version than the newest already applied. Versions are scoped by a
// boot counter (bumped on every successful open) so that version counters
// restarting from zero in a new process cannot lose to a previous boot's
// records.

// walEntry is one captured line in a WAL record: the region coordinate
// (tag, idx), the line's write version at capture time, the mask of slots
// with tracked content, and the cell values. Fast mode captures whole
// lines (mask 0xff) at Flush; tracked mode reuses the flush-set snapshots.
type walEntry struct {
	tag  uint64
	idx  uint32
	mask uint8
	ver  uint64
	vals [CellsPerLine]uint64
}

// region is one registered span of cell-backing memory: size bytes at base,
// 64-byte aligned, addressed on disk by tag.
type region struct {
	tag  uint64
	base uintptr
	size uintptr
	// ptr is the GC-visible interior pointer that both keeps the backing
	// slab alive and is the legal base for unsafe.Add arithmetic.
	ptr unsafe.Pointer
}

// WALStats counts log appends since the backend went live (reporting hook).
type WALStats struct {
	Records uint64
	Lines   uint64
	Bytes   uint64
	// Checkpoints counts Checkpoint calls that committed (WALSize resets to
	// the magic header at each).
	Checkpoints uint64
}

// ReplayStats summarizes one RecoverFiles pass (and is the source of the
// recovery-time bench row).
type ReplayStats struct {
	// Records and Lines count applied WAL records / line entries.
	Records uint64
	Lines   uint64
	// Bytes is the WAL byte count replayed; CheckpointBytes the checkpoint
	// payload loaded before it.
	Bytes           uint64
	CheckpointBytes uint64
	// Truncated reports that a torn tail was cut off at the first bad frame.
	Truncated bool
	Elapsed   time.Duration
}

// Add accumulates o into s (Elapsed keeps the maximum: shards replay in
// parallel, so the wall-clock cost is the slowest shard's).
func (s *ReplayStats) Add(o ReplayStats) {
	s.Records += o.Records
	s.Lines += o.Lines
	s.Bytes += o.Bytes
	s.CheckpointBytes += o.CheckpointBytes
	s.Truncated = s.Truncated || o.Truncated
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

// durableMem is the per-Memory file backend state.
type durableMem struct {
	dir  string
	sync bool
	fs   vfs.FS

	// Region registry. regions is the sorted-by-base lookup snapshot the
	// flush path binary-searches lock-free; regMu guards mutation.
	regMu     sync.Mutex
	regions   atomic.Pointer[[]*region]
	byTag     map[uint64]*region
	providers map[uint32]func(sub uint32)

	// Log writer state. live flips on after RecoverFiles: appends before
	// that (structure construction) are dropped — construction is
	// deterministic and replay overlays it, so logging it would only let a
	// fresh sentinel record shadow recovered state.
	mu      sync.Mutex
	live    bool
	f       vfs.File
	bw      *bufio.Writer
	gen     uint64
	boot    uint64
	scratch []byte
	wstats  WALStats
	replay  ReplayStats

	// damaged is the sticky fail-stop latch: the first WAL append, flush,
	// fsync or close error is stored here permanently and every later
	// commit point returns it. Never cleared — a failed fsync may already
	// have dropped the dirty pages (the fsyncgate lesson), so retrying and
	// trusting the next success would un-durably acknowledge writes. The
	// only way out is a process restart and recovery from what the files
	// actually hold.
	damaged atomic.Pointer[error]

	// dirty is true while the userspace buffer may hold unflushed records;
	// checked lock-free so DurableSync costs one atomic load when clean.
	dirty atomic.Bool

	// walLen is the current generation's log length in bytes (including
	// buffered records), maintained lock-free so size-threshold checkpoint
	// triggers cost one atomic load per check. ckptBusy makes concurrent
	// CheckpointIfOver callers skip instead of queueing on d.mu behind a
	// running dump.
	walLen   atomic.Int64
	ckptBusy atomic.Bool
}

func newDurableMem(dir string, syncFence bool, fs vfs.FS) *durableMem {
	if fs == nil {
		fs = vfs.OS
	}
	return &durableMem{
		dir:       dir,
		sync:      syncFence,
		fs:        fs,
		byTag:     make(map[uint64]*region),
		providers: make(map[uint32]func(sub uint32)),
	}
}

// latch records err as permanent damage (first error wins) and returns
// the latched error. nil passes through untouched.
func (d *durableMem) latch(err error) error {
	if err == nil {
		return nil
	}
	werr := fmt.Errorf("pmem: durable backend damaged: %w", err)
	if !d.damaged.CompareAndSwap(nil, &werr) {
		return *d.damaged.Load()
	}
	return werr
}

// damageErr returns the latched damage error, or nil while healthy. One
// atomic pointer load: cheap enough for every commit point.
func (d *durableMem) damageErr() error {
	if p := d.damaged.Load(); p != nil {
		return *p
	}
	return nil
}

// DurableErr reports the file backend's sticky damage state: nil while
// every commit-point flush (and fsync, under SyncFence) has succeeded,
// and the first I/O error permanently afterwards. Commit paths check it
// after their closing fence; a non-nil result means records appended
// since the last successful flush may never have reached the file, so
// the affected operations must NOT be acknowledged.
func (m *Memory) DurableErr() error {
	if m.durable == nil {
		return nil
	}
	return m.durable.damageErr()
}

// Durable reports whether the memory has a file backend configured.
func (m *Memory) Durable() bool { return m.durable != nil }

// Dir returns the file backend's directory ("" without one).
func (m *Memory) Dir() string {
	if m.durable == nil {
		return ""
	}
	return m.durable.dir
}

// WALStats reports the log appends since the backend went live.
func (m *Memory) WALStats() WALStats {
	if m.durable == nil {
		return WALStats{}
	}
	d := m.durable
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wstats
}

// Watermark reports the durable backend's replication watermark: the boot
// counter CURRENT records for the live generation (bumped on every
// successful open, so it uniquely names one process lifetime of this
// directory) and the current WAL length in bytes. Replication uses the
// boot as the primary's run identity — a replica that attached under one
// boot must full-resync after the primary restarts, because in-memory
// stream positions do not survive the restart — and the byte position as
// a coarse progress coordinate. Both are (0, 0) without a file backend.
func (m *Memory) Watermark() (boot uint64, walBytes int64) {
	if m.durable == nil {
		return 0, 0
	}
	d := m.durable
	d.mu.Lock()
	boot = d.boot
	d.mu.Unlock()
	return boot, d.walLen.Load()
}

// WALSize reports the current generation's log length in bytes, buffered
// records included (0 without a file backend). One atomic load: callable
// from hot paths as a checkpoint-threshold probe.
func (m *Memory) WALSize() int64 {
	if m.durable == nil {
		return 0
	}
	return m.durable.walLen.Load()
}

// CheckpointIfOver takes a checkpoint when the current WAL has grown to at
// least threshold bytes, bounding replay work after a kill. It returns
// whether a checkpoint ran. Concurrent callers do not pile up: whoever
// loses the busy flag skips — the winner is already resetting the log.
// Safe under live traffic (see Checkpoint).
func (m *Memory) CheckpointIfOver(threshold int64) (bool, error) {
	d := m.durable
	if d == nil || threshold <= 0 || d.walLen.Load() < threshold {
		return false, nil
	}
	if !d.ckptBusy.CompareAndSwap(false, true) {
		return false, nil
	}
	defer d.ckptBusy.Store(false)
	if d.walLen.Load() < threshold {
		return false, nil
	}
	if err := m.Checkpoint(); err != nil {
		return false, err
	}
	return true, nil
}

// ReplayStats reports the outcome of the RecoverFiles pass (zero before it
// ran, or without a file backend).
func (m *Memory) ReplayStats() ReplayStats {
	if m.durable == nil {
		return ReplayStats{}
	}
	d := m.durable
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replay
}

// Space is a registration namespace of the durable backend. Structures
// obtain one per persistent allocation domain (an arena, a root-cell slab)
// via Memory.NewSpace; because structure construction is deterministic and
// single-threaded, the n-th NewSpace call names the same domain in every
// boot, which is what makes on-disk tags stable across restarts. On a
// memory without a file backend every Space method is a cheap no-op, so
// structures register unconditionally.
type Space struct {
	m  *Memory
	id uint32
}

// NewSpace allocates the next space ID (deterministic: call order is
// construction order).
func (m *Memory) NewSpace() *Space {
	return &Space{m: m, id: m.spaceSeq.Add(1) - 1}
}

// ID returns the space's registration ID.
func (s *Space) ID() uint32 { return s.id }

// Durable reports whether the space is backed by a file backend (false on a
// plain memory, where every Space method is a no-op).
func (s *Space) Durable() bool { return s.m.durable != nil }

func spaceTag(space, sub uint32) uint64 {
	return uint64(space)<<32 | uint64(sub)
}

// Register records that size bytes at p back cells whose fenced snapshots
// should be durable, addressed on disk as (space, sub). p must be 64-byte
// aligned and size a multiple of 64: regions are line-granular. Registering
// the same (space, sub) twice, or overlapping an existing region, panics —
// both are construction bugs.
func (s *Space) Register(sub uint32, p unsafe.Pointer, size uintptr) {
	d := s.m.durable
	if d == nil {
		return
	}
	if uintptr(p)%LineSize != 0 || size == 0 || size%LineSize != 0 {
		panic("pmem: Register needs a line-aligned, line-sized region")
	}
	r := &region{tag: spaceTag(s.id, sub), base: uintptr(p), size: size, ptr: p}
	d.regMu.Lock()
	defer d.regMu.Unlock()
	if _, dup := d.byTag[r.tag]; dup {
		panic(fmt.Sprintf("pmem: region (space %d, sub %d) registered twice", s.id, sub))
	}
	old := d.regions.Load()
	var regs []*region
	if old != nil {
		regs = append(regs, *old...)
	}
	i := sort.Search(len(regs), func(i int) bool { return regs[i].base >= r.base })
	if i > 0 && regs[i-1].base+regs[i-1].size > r.base {
		panic("pmem: Register overlaps an existing region")
	}
	if i < len(regs) && r.base+r.size > regs[i].base {
		panic("pmem: Register overlaps an existing region")
	}
	regs = append(regs, nil)
	copy(regs[i+1:], regs[i:])
	regs[i] = r
	d.byTag[r.tag] = r
	d.regions.Store(&regs)
}

// Provide installs the space's region materializer: replay calls it for
// every sub-tag it encounters, and the callback must ensure the region
// (space, sub) is registered — re-allocating a chunk the previous boot had
// grown to, say — before replay writes into it. It is also called for
// already-registered tags so allocators can recover their high-water marks.
func (s *Space) Provide(provider func(sub uint32)) {
	d := s.m.durable
	if d == nil {
		return
	}
	d.regMu.Lock()
	d.providers[s.id] = provider
	d.regMu.Unlock()
}

// Lines allocates n dedicated 64-byte lines (see AllocLines) and registers
// them as the region (space, sub) — the way structures place persistent
// root cells under the file backend.
func (s *Space) Lines(sub uint32, n int) [][]Cell {
	lines := AllocLines(n)
	if s.m.durable != nil {
		s.Register(sub, unsafe.Pointer(&lines[0][0]), uintptr(n)*LineSize)
	}
	return lines
}

// lookup finds the region containing the line-aligned address, or nil.
func (d *durableMem) lookup(addr uintptr) *region {
	p := d.regions.Load()
	if p == nil {
		return nil
	}
	regs := *p
	lo, hi := 0, len(regs)
	for lo < hi {
		mid := (lo + hi) / 2
		if regs[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	if r := regs[lo-1]; addr < r.base+r.size {
		return r
	}
	return nil
}

// provided invokes the tag's space provider (replay-time materialization);
// seen dedupes so a provider runs once per tag per replay.
func (d *durableMem) provided(tag uint64, seen map[uint64]bool) {
	if seen[tag] {
		return
	}
	seen[tag] = true
	d.regMu.Lock()
	p := d.providers[uint32(tag>>32)]
	d.regMu.Unlock()
	if p != nil {
		p(uint32(tag))
	}
}

// captureFast snapshots c's whole line for the WAL (fast mode, durable
// only): called from Flush after the coalescing check admitted the line.
// Reading the version before the content is what makes replay ack-safe: a
// write's own capture (which happens after the write in program order)
// always carries a version at least as new as the write's bump, so any
// record that could shadow it during replay must itself contain the write.
func (t *Thread) captureFast(d *durableMem, c *Cell, ver uint64) {
	addr := uintptr(unsafe.Pointer(c)) &^ uintptr(LineSize-1)
	r := d.lookup(addr)
	if r == nil {
		return // unregistered line: not durable
	}
	e := walEntry{tag: r.tag, idx: uint32((addr - r.base) >> lineShift), mask: 0xff, ver: ver}
	p := unsafe.Add(r.ptr, addr-r.base)
	for i := 0; i < CellsPerLine; i++ {
		e.vals[i] = (*atomic.Uint64)(unsafe.Add(p, i*8)).Load()
	}
	t.walPend = append(t.walPend, e)
}

// entryForLine builds a WAL entry for a tracked line's current volatile
// content (used when the simulation declares a line persisted outside a
// fence: PersistAll, crash-time eviction). ok=false when the line backs no
// registered region. Caller holds the line's stripe lock.
func (d *durableMem) entryForLine(key uintptr, ls *lineState) (walEntry, bool) {
	addr := key << lineShift
	r := d.lookup(addr)
	if r == nil {
		return walEntry{}, false
	}
	e := walEntry{
		tag:  r.tag,
		idx:  uint32((addr - r.base) >> lineShift),
		mask: ls.mask,
		ver:  ls.curVer,
	}
	for slot, c := range ls.cells {
		if ls.mask&(1<<slot) != 0 {
			e.vals[slot] = c.v.Load()
		}
	}
	return e, true
}

// walFromFlushSet converts the tracked-mode flush-set snapshots into WAL
// entries (the model already captured content and version at flush time).
func (t *Thread) walFromFlushSet(d *durableMem) {
	for i := range t.flushSet {
		fe := &t.flushSet[i]
		if fe.mask == 0 {
			continue // line never written: nothing beyond construction state
		}
		addr := fe.line << lineShift
		r := d.lookup(addr)
		if r == nil {
			continue
		}
		t.walPend = append(t.walPend, walEntry{
			tag:  r.tag,
			idx:  uint32((addr - r.base) >> lineShift),
			mask: fe.mask,
			ver:  fe.ver,
			vals: fe.vals,
		})
	}
}

// DurableSync flushes any userspace-buffered WAL records to the operating
// system (and the disk, with Config.SyncFence), making everything fenced so
// far survive a process kill. CommitFence and EndBatch call it implicitly;
// it exists as an explicit call for acknowledgement paths that do not fence
// — the link-and-persist policy's return when another thread's fence
// already covered the link. No-op without a file backend: one nil check.
func (t *Thread) DurableSync() {
	if d := t.dur; d != nil {
		d.flush()
	}
}

// DurableErr is the thread-side view of Memory.DurableErr: nil while the
// file backend is healthy (or absent), the sticky damage error afterwards.
// Commit paths (the shard session's per-group EndBatch, the single-store
// batch path) consult it right after their closing fence — a non-nil
// result there means the fence's records may not be in the file and the
// group must not be acknowledged. One nil check + one atomic load.
func (t *Thread) DurableErr() error {
	if d := t.dur; d != nil {
		return d.damageErr()
	}
	return nil
}

// appendRecord serializes one fence's captured lines as a single framed
// record into the shared log buffer. Dropped silently before RecoverFiles
// (construction) and after Close; dropped with the latch set once the
// backend is damaged (the record could never be acknowledged anyway). A
// write error here latches immediately — bufio also remembers it and
// would resurface it at the next Flush, but latching at the append keeps
// the damage point exact.
func (d *durableMem) appendRecord(entries []walEntry) {
	d.mu.Lock()
	if !d.live || d.bw == nil || d.damageErr() != nil {
		d.mu.Unlock()
		return
	}
	d.scratch = appendRecordBytes(d.scratch[:0], d.boot, entries)
	if _, err := d.bw.Write(d.scratch); err != nil {
		d.latch(err)
		d.mu.Unlock()
		return
	}
	d.wstats.Records++
	d.wstats.Lines += uint64(len(entries))
	d.wstats.Bytes += uint64(len(d.scratch))
	d.walLen.Add(int64(len(d.scratch)))
	d.dirty.Store(true)
	d.mu.Unlock()
}

// flush drains the userspace buffer to the OS; with SyncFence it also
// fdatasyncs. The buffer only ever holds fenced records, so flushing at
// any point is safe; the commit points just make it mandatory. The return
// value is the commit verdict: nil means everything appended so far is in
// the file (and on disk, under SyncFence); non-nil means some record may
// be lost and the backend is latched damaged — the caller must withhold
// the acknowledgements this flush was covering.
func (d *durableMem) flush() error {
	if !d.dirty.Load() {
		return d.damageErr()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.damageErr(); err != nil {
		return err
	}
	if d.bw != nil {
		if err := d.bw.Flush(); err != nil {
			return d.latch(err)
		}
		if d.sync && d.f != nil {
			if err := d.f.Sync(); err != nil {
				return d.latch(err)
			}
		}
	}
	d.dirty.Store(false)
	return nil
}

// Close flushes and closes the file backend (no-op without one, idempotent).
// Appends after Close are dropped; the store layer closes on shutdown after
// quiescing its sessions. A flush/sync/close failure here is latched and
// returned — shutdown paths propagate it into a nonzero exit, because a
// clean-looking exit over a failed final flush would hide lost records.
func (m *Memory) Close() error {
	d := m.durable
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return d.damageErr()
	}
	err := d.damageErr()
	if d.bw != nil && err == nil {
		err = d.bw.Flush()
	}
	if e := d.f.Sync(); err == nil {
		err = e
	}
	if e := d.f.Close(); err == nil {
		err = e
	}
	d.f, d.bw, d.live = nil, nil, false
	return d.latch(err)
}

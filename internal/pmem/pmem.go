// Package pmem simulates a two-level (volatile cache / persistent NVRAM)
// memory for lock-free data structures, standing in for Intel Optane DC
// persistent memory and the clwb/sfence instructions used by the NVTraverse
// paper (Friedman et al., PLDI 2020).
//
// Every shared 64-bit word of a simulated data structure is a Cell. All
// accesses go through a per-worker Thread, which provides atomic Load, Store
// and CAS plus the persistence instructions Flush (clwb) and Fence (sfence).
//
// The memory runs in one of two modes:
//
//   - ModeFast: accesses are plain Go atomics; Flush and Fence charge a
//     calibrated spin cost from a latency Profile and bump per-thread
//     counters. This mode is used by the throughput benchmarks: the paper's
//     claims are about the count and placement of flushes and fences, and the
//     cost model exercises exactly the code paths the NVTraverse
//     transformation changes.
//
//   - ModeTracked: the memory additionally maintains, for every cell written
//     since the last full persist, the value last made persistent. Crash()
//     rolls every such cell back to its persisted value (optionally letting a
//     random subset "evict", i.e. persist on its own, as hardware caches may).
//     While the crash flag is raised, every access panics with a crash
//     sentinel so that in-flight operations stop mid-instruction, exactly as
//     a power failure would stop them. This mode powers the durable
//     linearizability crash tests.
//
// References between nodes are Ref values: arena handles with a low mark bit
// (bit 0), an auxiliary bit (bit 1, used by data structures that need two
// edge bits), and a "persisted" tag (bit 62) used by the link-and-persist
// policy. Go's garbage collector forbids tagging real pointers, and
// persistent-memory practice (PMDK) uses pool offsets rather than raw
// pointers anyway, so handles are both safe and faithful.
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode selects how the simulated memory behaves.
type Mode int

const (
	// ModeFast runs plain atomics plus the latency cost model.
	ModeFast Mode = iota
	// ModeTracked additionally tracks persisted values and supports Crash.
	ModeTracked
)

// Profile is a latency profile for the persistence instructions, expressed in
// calibrated spin-loop iterations (roughly 0.4ns each on the reference
// machine; the absolute scale is irrelevant, only the ratios matter).
type Profile struct {
	Name      string
	FlushCost int // cost of one Flush (clwb)
	FenceCost int // cost of one Fence (sfence drain)
}

// Latency profiles for the two machines in the paper's evaluation. On the
// NVRAM (Optane) machine persistence instructions are expensive; on the DRAM
// machine (clflush-to-DRAM emulation) they are cheaper.
var (
	ProfileNVRAM = Profile{Name: "nvram", FlushCost: 180, FenceCost: 520}
	ProfileDRAM  = Profile{Name: "dram", FlushCost: 90, FenceCost: 220}
	ProfileZero  = Profile{Name: "zero", FlushCost: 0, FenceCost: 0}
)

// Config configures a Memory.
type Config struct {
	Mode       Mode
	Profile    Profile
	MaxThreads int // capacity for NewThread; defaults to 64
}

// DefaultMaxThreads is used when Config.MaxThreads is zero.
const DefaultMaxThreads = 128

// Memory is one simulated persistent memory domain. All cells of a data
// structure must be used with threads of the same Memory.
type Memory struct {
	cfg     Config
	crashed atomic.Bool

	mu      sync.Mutex
	threads []*Thread

	model *model // non-nil iff ModeTracked
}

// New creates a Memory with the given configuration.
func New(cfg Config) *Memory {
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = DefaultMaxThreads
	}
	m := &Memory{cfg: cfg}
	if cfg.Mode == ModeTracked {
		m.model = newModel()
	}
	return m
}

// NewFast is shorthand for a fast-mode memory with the given profile.
func NewFast(p Profile) *Memory {
	return New(Config{Mode: ModeFast, Profile: p})
}

// NewTracked is shorthand for a tracked-mode memory (zero latency profile:
// crash tests measure correctness, not time).
func NewTracked() *Memory {
	return New(Config{Mode: ModeTracked, Profile: ProfileZero})
}

// Mode reports the memory's mode.
func (m *Memory) Mode() Mode { return m.cfg.Mode }

// Profile reports the memory's latency profile.
func (m *Memory) Profile() Profile { return m.cfg.Profile }

// MaxThreads reports the configured thread capacity.
func (m *Memory) MaxThreads() int { return m.cfg.MaxThreads }

// Tracked reports whether the memory tracks persistence (ModeTracked).
func (m *Memory) Tracked() bool { return m.model != nil }

// NewThread registers a new worker thread context. Thread IDs are dense,
// starting at zero, and are used to index per-thread arena and epoch state.
func (m *Memory) NewThread() *Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.threads) >= m.cfg.MaxThreads {
		panic(fmt.Sprintf("pmem: thread limit %d exceeded", m.cfg.MaxThreads))
	}
	t := &Thread{
		ID:  len(m.threads),
		mem: m,
		rng: uint64(len(m.threads))*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
	m.threads = append(m.threads, t)
	return t
}

// Threads returns the registered threads (for stats aggregation).
func (m *Memory) Threads() []*Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Thread(nil), m.threads...)
}

// Stats sums the per-thread statistics.
func (m *Memory) Stats() Stats {
	var s Stats
	for _, t := range m.Threads() {
		s.Add(t.StatsSnapshot())
	}
	return s
}

// ResetStats clears all per-thread counters.
func (m *Memory) ResetStats() {
	for _, t := range m.Threads() {
		t.resetStats()
	}
}

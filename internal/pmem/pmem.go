// Package pmem simulates a two-level (volatile cache / persistent NVRAM)
// memory for lock-free data structures, standing in for Intel Optane DC
// persistent memory and the clwb/sfence instructions used by the NVTraverse
// paper (Friedman et al., PLDI 2020).
//
// Every shared 64-bit word of a simulated data structure is a Cell. All
// accesses go through a per-worker Thread, which provides atomic Load, Store
// and CAS plus the persistence instructions Flush (clwb) and Fence (sfence).
//
// Persistence is cache-line accurate: cells are placed into 64-byte lines
// by their real addresses (see line.go), Flush writes back a whole line and
// coalesces repeat flushes of an unchanged line (Stats.FlushesElided), and
// a crash persists or drops whole lines atomically — cells of one line
// never part ways, exactly as on hardware.
//
// The memory runs in one of two modes:
//
//   - ModeFast: accesses are plain Go atomics; Flush and Fence charge a
//     calibrated spin cost from a latency Profile and bump per-thread
//     counters. Writes additionally bump a hashed per-line version table so
//     flush coalescing is observable in the counters. This mode is used by
//     the throughput benchmarks: the paper's claims are about the count and
//     placement of flushes and fences, and the cost model exercises exactly
//     the code paths the NVTraverse transformation changes.
//
//   - ModeTracked: the memory additionally maintains, for every line written
//     since the last full persist, the newest line image known to be
//     persistent. Crash() rolls every dirty line back to its persisted image
//     (optionally letting a random subset of lines "evict", i.e. persist on
//     their own, as hardware caches may). While the crash flag is raised,
//     every access panics with a crash sentinel so that in-flight operations
//     stop mid-instruction, exactly as a power failure would stop them. This
//     mode powers the durable linearizability crash tests.
//
// References between nodes are Ref values: arena handles with a low mark bit
// (bit 0), an auxiliary bit (bit 1, used by data structures that need two
// edge bits), and a "persisted" tag (bit 62) used by the link-and-persist
// policy. Go's garbage collector forbids tagging real pointers, and
// persistent-memory practice (PMDK) uses pool offsets rather than raw
// pointers anyway, so handles are both safe and faithful.
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pmem/vfs"
)

// Mode selects how the simulated memory behaves.
type Mode int

const (
	// ModeFast runs plain atomics plus the latency cost model.
	ModeFast Mode = iota
	// ModeTracked additionally tracks persisted values and supports Crash.
	ModeTracked
)

// Profile is a latency profile for the persistence instructions, expressed in
// calibrated spin-loop iterations (roughly 0.4ns each on the reference
// machine; the absolute scale is irrelevant, only the ratios matter).
type Profile struct {
	Name      string
	FlushCost int // cost of one Flush (clwb)
	FenceCost int // cost of one Fence (sfence drain)
}

// Latency profiles for the two machines in the paper's evaluation. On the
// NVRAM (Optane) machine persistence instructions are expensive; on the DRAM
// machine (clflush-to-DRAM emulation) they are cheaper.
var (
	ProfileNVRAM = Profile{Name: "nvram", FlushCost: 180, FenceCost: 520}
	ProfileDRAM  = Profile{Name: "dram", FlushCost: 90, FenceCost: 220}
	ProfileZero  = Profile{Name: "zero", FlushCost: 0, FenceCost: 0}
)

// Config configures a Memory.
type Config struct {
	Mode       Mode
	Profile    Profile
	MaxThreads int // capacity for NewThread; defaults to 64

	// LineTableBits sizes the fast-mode per-line write-version table at
	// 2^bits slots (defaults to DefaultLineTableBits). Lines hash into the
	// table; collisions merge write versions and only perturb the flush-
	// coalescing statistics. Tracked mode keys lines exactly and ignores
	// this.
	LineTableBits int

	// Dir, when non-empty, gives the memory a durable file backend in that
	// directory: fenced line snapshots of registered regions (see Space)
	// are appended to a write-ahead log, and RecoverFiles replays them at
	// the next open. The simulated cost model and the line/fence counters
	// are unaffected. See durable.go.
	Dir string

	// SyncFence makes the durable backend fsync at every commit point
	// (CommitFence, EndBatch, DurableSync) instead of only flushing to the
	// OS — durability against power loss rather than process death, at a
	// large throughput cost. Only meaningful with Dir.
	SyncFence bool

	// FS overrides the file operations of the durable backend (nil means
	// the real filesystem, vfs.OS). Fault-injection tests pass a vfs.ErrFS
	// here; the backend itself cannot tell the difference. Only meaningful
	// with Dir.
	FS vfs.FS
}

// DefaultMaxThreads is used when Config.MaxThreads is zero.
const DefaultMaxThreads = 128

// DefaultLineTableBits is used when Config.LineTableBits is zero: 2^14
// line-padded slots, 1 MiB per fast-mode memory. Distinct lines hashing to
// one slot merge their write versions, which only perturbs the
// flush-coalescing counters (conservatively: merged lines look dirtier, so
// fewer flushes elide).
const DefaultLineTableBits = 14

// Memory is one simulated persistent memory domain. All cells of a data
// structure must be used with threads of the same Memory.
type Memory struct {
	cfg     Config
	crashed atomic.Bool

	mu      sync.Mutex
	threads []*Thread

	// threadsPub is the published, immutable snapshot of threads, rebuilt
	// by NewThread. Threads() hands it out without locking or copying, so
	// stats aggregation inside measurement loops costs one atomic load
	// instead of a mutex plus a slice allocation per call.
	threadsPub atomic.Pointer[[]*Thread]

	model *model // non-nil iff ModeTracked

	// lineVer is the fast-mode hashed per-line write-version table (nil in
	// tracked mode, which tracks lines exactly in the model). Slots are
	// padded to one physical cache line each: the table sits on the
	// Store/CAS hot path of every benchmark, and unpadded slots would add
	// false-sharing contention to the very numbers fast mode measures.
	lineVer []paddedVer

	// fenceTrap implements the CrashAtFence deterministic crash schedule.
	fenceTrap atomic.Int64

	// durable is the file backend (nil without Config.Dir); spaceSeq
	// numbers NewSpace calls in construction order, which is what keeps
	// on-disk region tags stable across restarts.
	durable  *durableMem
	spaceSeq atomic.Uint32
}

type paddedVer struct {
	v atomic.Uint64
	_ [LineSize - 8]byte
}

// New creates a Memory with the given configuration.
func New(cfg Config) *Memory {
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = DefaultMaxThreads
	}
	if cfg.LineTableBits == 0 {
		cfg.LineTableBits = DefaultLineTableBits
	}
	if cfg.LineTableBits < 8 {
		cfg.LineTableBits = 8
	}
	if cfg.LineTableBits > 22 {
		cfg.LineTableBits = 22
	}
	m := &Memory{cfg: cfg}
	if cfg.Mode == ModeTracked {
		m.model = newModel()
	} else {
		m.lineVer = make([]paddedVer, 1<<cfg.LineTableBits)
	}
	if cfg.Dir != "" {
		// No file IO here: the backend stays inert (appends dropped) until
		// RecoverFiles opens the directory, after structures have
		// registered their regions.
		m.durable = newDurableMem(cfg.Dir, cfg.SyncFence, cfg.FS)
	}
	return m
}

// NewFast is shorthand for a fast-mode memory with the given profile.
func NewFast(p Profile) *Memory {
	return New(Config{Mode: ModeFast, Profile: p})
}

// NewTracked is shorthand for a tracked-mode memory (zero latency profile:
// crash tests measure correctness, not time).
func NewTracked() *Memory {
	return New(Config{Mode: ModeTracked, Profile: ProfileZero})
}

// Mode reports the memory's mode.
func (m *Memory) Mode() Mode { return m.cfg.Mode }

// Profile reports the memory's latency profile.
func (m *Memory) Profile() Profile { return m.cfg.Profile }

// MaxThreads reports the configured thread capacity.
func (m *Memory) MaxThreads() int { return m.cfg.MaxThreads }

// Tracked reports whether the memory tracks persistence (ModeTracked).
func (m *Memory) Tracked() bool { return m.model != nil }

// NewThread registers a new worker thread context. Thread IDs are dense,
// starting at zero, and are used to index per-thread arena and epoch state.
func (m *Memory) NewThread() *Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.threads) >= m.cfg.MaxThreads {
		panic(fmt.Sprintf("pmem: thread limit %d exceeded", m.cfg.MaxThreads))
	}
	t := &Thread{
		ID:        len(m.threads),
		mem:       m,
		rng:       uint64(len(m.threads))*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		model:     m.model,
		lineVer:   m.lineVer,
		lineShift: uint8(64 - m.cfg.LineTableBits),
		flushCost: int32(m.cfg.Profile.FlushCost),
		fenceCost: int32(m.cfg.Profile.FenceCost),
		dur:       m.durable,
	}
	m.threads = append(m.threads, t)
	snap := append([]*Thread(nil), m.threads...)
	m.threadsPub.Store(&snap)
	return t
}

// Threads returns the registered threads (for stats aggregation). The
// returned slice is a shared immutable snapshot — callers must not modify
// it.
func (m *Memory) Threads() []*Thread {
	p := m.threadsPub.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Stats sums the per-thread statistics.
func (m *Memory) Stats() Stats {
	var s Stats
	for _, t := range m.Threads() {
		s.Add(t.StatsSnapshot())
	}
	return s
}

// ResetStats clears all per-thread counters. It writes the owner-side
// counter fields directly, so it must only be called while no thread is
// mid-operation (measurement harnesses reset between runs, which is
// exactly that quiescent point).
func (m *Memory) ResetStats() {
	for _, t := range m.Threads() {
		t.resetStats()
	}
}

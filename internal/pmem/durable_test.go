package pmem

import (
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

// openDurable builds a memory over dir with one registered root region of n
// lines and brings the backend online, returning the memory, a thread, and
// the root lines.
func openDurable(t *testing.T, dir string, mode Mode, n int) (*Memory, *Thread, [][]Cell) {
	t.Helper()
	m := New(Config{Mode: mode, Profile: ProfileZero, Dir: dir})
	sp := m.NewSpace()
	lines := sp.Lines(0, n)
	if _, err := m.RecoverFiles(); err != nil {
		t.Fatalf("RecoverFiles: %v", err)
	}
	return m, m.NewThread(), lines
}

func commitCell(th *Thread, c *Cell, v uint64) {
	th.Store(c, v)
	th.Flush(c)
	th.CommitFence()
}

func TestDurableRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeFast, ModeTracked} {
		name := "fast"
		if mode == ModeTracked {
			name = "tracked"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m, th, lines := openDurable(t, dir, mode, 4)
			for i := 0; i < 4; i++ {
				for s := 0; s < CellsPerLine; s++ {
					commitCell(th, &lines[i][s], uint64(i*100+s+1))
				}
			}
			if err := m.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			m2, th2, lines2 := openDurable(t, dir, mode, 4)
			defer m2.Close()
			st := m2.ReplayStats()
			if st.Records == 0 || st.Bytes == 0 {
				t.Fatalf("replay saw no records: %+v", st)
			}
			for i := 0; i < 4; i++ {
				for s := 0; s < CellsPerLine; s++ {
					if got := th2.Load(&lines2[i][s]); got != uint64(i*100+s+1) {
						t.Fatalf("line %d slot %d: got %d want %d", i, s, got, i*100+s+1)
					}
				}
			}
		})
	}
}

// TestDurableLatestWins overwrites one cell repeatedly; recovery must see
// the last committed value, not an earlier record.
func TestDurableLatestWins(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeFast, 1)
	c := &lines[0][0]
	for v := uint64(1); v <= 100; v++ {
		commitCell(th, c, v)
	}
	m.Close()

	m2, th2, lines2 := openDurable(t, dir, ModeFast, 1)
	defer m2.Close()
	if got := th2.Load(&lines2[0][0]); got != 100 {
		t.Fatalf("got %d want 100", got)
	}
}

// TestDurableUnfencedDropped checks the commit-unit rule: a write that was
// stored (and even flushed) but never fenced must not survive, while the
// fenced write before it must.
func TestDurableUnfencedDropped(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeFast, 1)
	commitCell(th, &lines[0][0], 7)
	th.Store(&lines[0][0], 999)
	th.Flush(&lines[0][0])
	// No fence: the capture sits in walPend, never appended. Close flushes
	// only appended records.
	m.Close()

	m2, th2, lines2 := openDurable(t, dir, ModeFast, 1)
	defer m2.Close()
	if got := th2.Load(&lines2[0][0]); got != 7 {
		t.Fatalf("got %d want 7 (unfenced write must not survive)", got)
	}
}

// TestDurableRestartVersions crosses three boots, writing a smaller number
// of times each boot, so a naive unscoped version guard would prefer the
// first boot's records. The boot counter must scope versions.
func TestDurableRestartVersions(t *testing.T) {
	writes := []int{50, 3, 1}
	dir := t.TempDir()
	want := uint64(0)
	for b, n := range writes {
		m, th, lines := openDurable(t, dir, ModeFast, 1)
		for i := 0; i < n; i++ {
			want = uint64(b*1000 + i)
			commitCell(th, &lines[0][0], want)
		}
		m.Close()
	}
	m, th, lines := openDurable(t, dir, ModeFast, 1)
	defer m.Close()
	if got := th.Load(&lines[0][0]); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeFast, 2)
	commitCell(th, &lines[0][0], 11)
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// The old generation must be gone and the new WAL empty of records.
	if _, err := os.Stat(filepath.Join(dir, "wal-1.log")); !os.IsNotExist(err) {
		t.Fatalf("wal-1.log still present after checkpoint")
	}
	commitCell(th, &lines[1][0], 22)
	m.Close()

	m2, th2, lines2 := openDurable(t, dir, ModeFast, 2)
	defer m2.Close()
	st := m2.ReplayStats()
	if st.CheckpointBytes == 0 {
		t.Fatalf("no checkpoint loaded: %+v", st)
	}
	if got := th2.Load(&lines2[0][0]); got != 11 {
		t.Fatalf("checkpointed cell: got %d want 11", got)
	}
	if got := th2.Load(&lines2[1][0]); got != 22 {
		t.Fatalf("post-checkpoint cell: got %d want 22", got)
	}
}

// TestDurableTornTail truncates the WAL at every byte offset of the final
// record (and corrupts every byte of it, too): recovery must always succeed,
// always keep the first committed record, and apply the final record only
// when it is fully intact.
func TestDurableTornTail(t *testing.T) {
	build := func(dir string) {
		m, th, lines := openDurable(t, dir, ModeFast, 1)
		commitCell(th, &lines[0][0], 1) // record A: must always survive
		commitCell(th, &lines[0][0], 2) // record B: the tail under attack
		m.Close()
	}
	base := t.TempDir()
	build(base)
	wal, err := os.ReadFile(filepath.Join(base, "wal-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the final record: magic + one frame.
	frameLen := (len(wal) - len(walMagic)) / 2
	if len(walMagic)+2*frameLen != len(wal) {
		t.Fatalf("unexpected wal layout: %d bytes, frame %d", len(wal), frameLen)
	}
	tailStart := len(wal) - frameLen

	check := func(t *testing.T, dir string, intact, wantTrunc bool) {
		t.Helper()
		m, th, lines := openDurable(t, dir, ModeFast, 1)
		defer m.Close()
		got := th.Load(&lines[0][0])
		if intact && got != 2 {
			t.Fatalf("intact tail: got %d want 2", got)
		}
		if !intact && got != 1 {
			t.Fatalf("damaged tail: got %d want 1", got)
		}
		if m.ReplayStats().Truncated != wantTrunc {
			t.Fatalf("Truncated = %v, want %v", m.ReplayStats().Truncated, wantTrunc)
		}
	}

	for cut := tailStart; cut < len(wal); cut++ {
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		copyDurableDir(t, base, dir)
		if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// A cut exactly at the record boundary is a clean EOF, not a tear.
		check(t, dir, false, cut > tailStart)
	}
	for off := tailStart; off < len(wal); off++ {
		dir := t.TempDir()
		copyDurableDir(t, base, dir)
		mut := append([]byte(nil), wal...)
		mut[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, false, true)
	}
	// Control: the untouched file applies the tail.
	dir := t.TempDir()
	copyDurableDir(t, base, dir)
	check(t, dir, true, false)
}

func copyDurableDir(t *testing.T, from, to string) {
	t.Helper()
	des, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		b, err := os.ReadFile(filepath.Join(from, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableTrackedCrashEviction: in tracked durable mode, a line the
// crash simulation "evicts" (persists unflushed) must reach the file too —
// otherwise the in-memory simulation and a real reopen would disagree.
func TestDurableTrackedCrashEviction(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeTracked, 1)
	commitCell(th, &lines[0][0], 5)
	th.Store(&lines[0][0], 6) // dirty, unflushed
	m.Crash()
	m.FinishCrash(1.0, 1) // evictProb 1: the dirty line persists
	m.Restart()
	if got := m.PersistedValue(&lines[0][0]); got != 6 {
		t.Fatalf("simulation: persisted value %d want 6", got)
	}
	m.Close()

	m2, th2, lines2 := openDurable(t, dir, ModeTracked, 1)
	defer m2.Close()
	if got := th2.Load(&lines2[0][0]); got != 6 {
		t.Fatalf("file: got %d want 6 (evicted line must be durable)", got)
	}
}

// TestDurableRegisterChecks pins the registration contract panics.
func TestDurableRegisterChecks(t *testing.T) {
	m := New(Config{Mode: ModeFast, Profile: ProfileZero, Dir: t.TempDir()})
	sp := m.NewSpace()
	lines := sp.Lines(0, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("dup", func() {
		sp.Register(0, unsafe.Pointer(&lines[0][0]), LineSize)
	})
	mustPanic("overlap", func() {
		sp.Register(9, unsafe.Pointer(&lines[1][0]), LineSize)
	})
	mustPanic("misaligned", func() {
		sp.Register(10, unsafe.Pointer(&lines[0][1]), LineSize)
	})
}

// TestDurableSpaceNoopWithoutDir: structures register unconditionally, so
// the whole Space API must be free of side effects on a plain memory.
func TestDurableSpaceNoopWithoutDir(t *testing.T) {
	m := NewFast(ProfileZero)
	sp := m.NewSpace()
	lines := sp.Lines(0, 1)
	sp.Register(1, unsafe.Pointer(&lines[0][0]), LineSize) // would panic with a backend (dup base)
	sp.Provide(func(uint32) {})
	if m.Durable() {
		t.Fatal("no Dir but Durable() true")
	}
	if _, err := m.RecoverFiles(); err == nil {
		t.Fatal("RecoverFiles without Dir must error")
	}
}

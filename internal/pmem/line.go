package pmem

import "unsafe"

// The simulated memory is cache-line accurate: persistence acts on 64-byte
// lines, not on individual cells. A clwb writes back the whole line a cell
// lives in, a crash persists or drops whole lines atomically, and a flush
// of a line that is already on its way to persistent memory is a no-op
// (flush coalescing). Line identity is the cell's real address divided by
// LineSize: Go's allocator never moves heap objects, so the key is stable
// for the cell's lifetime, and cells that are adjacent in memory — fields
// of one node, neighboring slots of one array — genuinely share a line,
// exactly as they would on hardware.
const (
	// LineSize is the persistence granularity in bytes (one cache line).
	LineSize = 64
	// CellsPerLine is how many 8-byte cells fit in one line.
	CellsPerLine = LineSize / 8

	lineShift = 6
)

// lineOf returns the line key of a cell: its address divided by LineSize.
func lineOf(c *Cell) uintptr { return uintptr(unsafe.Pointer(c)) >> lineShift }

// cellSlot returns the cell's slot within its 64-byte line (0..CellsPerLine-1).
// Cells are 8-byte and 8-aligned, so slot identity is exact: one cell per
// (line, slot).
func cellSlot(c *Cell) uintptr {
	return (uintptr(unsafe.Pointer(c)) >> 3) & (CellsPerLine - 1)
}

// SameLine reports whether two cells fall into the same 64-byte line (and
// therefore persist and vanish together in a crash).
func SameLine(a, b *Cell) bool { return lineOf(a) == lineOf(b) }

// AllocLines returns n groups of CellsPerLine cells each. Every group
// exactly fills one 64-byte line, and distinct groups occupy distinct
// lines. Code that needs explicit control over line placement — tests of
// the line model, root cells that must not share a line — uses this
// instead of declaring adjacent Cell variables, whose line membership is
// up to the allocator.
func AllocLines(n int) [][]Cell {
	buf := make([]Cell, (n+1)*CellsPerLine)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%LineSize != 0 {
		off++
	}
	out := make([][]Cell, n)
	for i := range out {
		out[i] = buf[off+i*CellsPerLine : off+(i+1)*CellsPerLine]
	}
	return out
}

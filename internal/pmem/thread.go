package pmem

import "sync/atomic"

// Stats counts memory and persistence events. In fast mode each Thread keeps
// its own Stats (owner-written atomics, so snapshots from other goroutines
// are race-free); Memory.Stats sums them.
//
// Flushes counts clwb instructions actually issued; FlushesElided counts
// Flush calls coalesced away by the line model (the line was already
// captured, unchanged, in the thread's pending flush set — see
// Thread.Flush). Flushes+FlushesElided is the number of Flush calls the
// persistence policy made.
type Stats struct {
	Reads         uint64
	Writes        uint64
	CASes         uint64
	CASFail       uint64
	Flushes       uint64
	FlushesElided uint64
	Fences        uint64
	Ops           uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.CASes += o.CASes
	s.CASFail += o.CASFail
	s.Flushes += o.Flushes
	s.FlushesElided += o.FlushesElided
	s.Fences += o.Fences
	s.Ops += o.Ops
}

// Sub returns s minus o (for interval measurements).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:         s.Reads - o.Reads,
		Writes:        s.Writes - o.Writes,
		CASes:         s.CASes - o.CASes,
		CASFail:       s.CASFail - o.CASFail,
		Flushes:       s.Flushes - o.Flushes,
		FlushesElided: s.FlushesElided - o.FlushesElided,
		Fences:        s.Fences - o.Fences,
		Ops:           s.Ops - o.Ops,
	}
}

type threadStats struct {
	reads       atomic.Uint64
	writes      atomic.Uint64
	cases       atomic.Uint64
	casFail     atomic.Uint64
	flushes     atomic.Uint64
	flushElided atomic.Uint64
	fences      atomic.Uint64
	ops         atomic.Uint64
}

// Thread is a per-worker context: all cell accesses, persistence
// instructions, arena allocation and epoch entry go through a Thread. A
// Thread must be used by one goroutine at a time.
type Thread struct {
	// ID is a dense thread index within the owning Memory, used to index
	// per-thread arena free lists and epoch slots.
	ID int

	mem *Memory
	st  threadStats
	rng uint64

	// unfenced counts flushes issued since the last fence. Policies that
	// model link-and-persist use it to elide fences when nothing is
	// pending.
	unfenced int

	// batchDepth > 0 while a fence batch is open (BeginBatch/EndBatch):
	// CommitFence defers its fence to EndBatch. pendingCommit records that
	// at least one commit fence was deferred inside the open batch.
	batchDepth    int
	pendingCommit bool

	// flushSet holds one entry per line flushed since the last fence. In
	// tracked mode an entry carries a whole-line snapshot taken at flush
	// time (clwb writes back the entire line); in fast mode it carries
	// only the hashed line slot and write version, enough to coalesce
	// repeat flushes of an unchanged line.
	flushSet []flushEntry

	// Scratch slices for data-structure operations (node lists returned by
	// traversals, flush batches). Owned by the single operation currently
	// running on this thread; reused to avoid per-operation allocation.
	Scratch      []uint64
	ScratchCells []*Cell

	_ [32]byte // reduce false sharing between Thread structs
}

// flushEntry is one pending line writeback: the line key (real line in
// tracked mode, table slot in fast mode), the line's write version at
// capture time, and — tracked mode only — the snapshot of every tracked
// cell of the line.
type flushEntry struct {
	line uintptr
	ver  uint64
	vals []cellVal
}

// Memory returns the owning memory domain.
func (t *Thread) Memory() *Memory { return t.mem }

// StatsSnapshot returns this thread's counters.
func (t *Thread) StatsSnapshot() Stats {
	return Stats{
		Reads:         t.st.reads.Load(),
		Writes:        t.st.writes.Load(),
		CASes:         t.st.cases.Load(),
		CASFail:       t.st.casFail.Load(),
		Flushes:       t.st.flushes.Load(),
		FlushesElided: t.st.flushElided.Load(),
		Fences:        t.st.fences.Load(),
		Ops:           t.st.ops.Load(),
	}
}

func (t *Thread) resetStats() {
	t.st.reads.Store(0)
	t.st.writes.Store(0)
	t.st.cases.Store(0)
	t.st.casFail.Store(0)
	t.st.flushes.Store(0)
	t.st.flushElided.Store(0)
	t.st.fences.Store(0)
	t.st.ops.Store(0)
}

// CountOp records one completed high-level operation (for per-op metrics).
func (t *Thread) CountOp() { t.st.ops.Add(1) }

// Rand returns the next value of the thread's splitmix64 generator.
func (t *Thread) Rand() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Load atomically reads a cell.
func (t *Thread) Load(c *Cell) uint64 {
	t.st.reads.Add(1)
	if t.mem.model != nil {
		t.mem.checkCrash()
	}
	return c.v.Load()
}

// Store atomically writes a cell.
func (t *Thread) Store(c *Cell, v uint64) {
	t.st.writes.Add(1)
	if m := t.mem.model; m != nil {
		t.mem.checkCrash()
		m.store(c, v)
		return
	}
	c.v.Store(v)
	t.mem.lineVer[t.mem.lineSlot(c)].v.Add(1)
}

// CAS atomically compares-and-swaps a cell, returning whether it succeeded.
func (t *Thread) CAS(c *Cell, old, new uint64) bool {
	t.st.cases.Add(1)
	var ok bool
	if m := t.mem.model; m != nil {
		t.mem.checkCrash()
		ok = m.cas(c, old, new)
	} else {
		ok = c.v.CompareAndSwap(old, new)
		if ok {
			t.mem.lineVer[t.mem.lineSlot(c)].v.Add(1)
		}
	}
	if !ok {
		t.st.casFail.Add(1)
	}
	return ok
}

// Flush issues a clwb for the cell's 64-byte line: the content the line
// holds right now will be persisted — whole line, atomically — by the next
// Fence. Flush alone guarantees nothing.
//
// Flush coalesces: when the thread's pending flush set already holds this
// line at its current write version, the call is a no-op (counted in
// Stats.FlushesElided, no latency charged). This is the paper's TSO
// flush-coalescing optimization — clwb of a line that is already queued
// for writeback, unchanged, does no additional work — and it is exact: any
// write to the line bumps its version, so a changed line is always
// re-captured.
func (t *Thread) Flush(c *Cell) {
	if m := t.mem.model; m != nil {
		t.mem.checkCrash()
		e, elided := m.flush(c, t.flushSet)
		if elided {
			t.st.flushElided.Add(1)
			return
		}
		t.flushSet = append(t.flushSet, e)
	} else {
		slot := t.mem.lineSlot(c)
		cur := t.mem.lineVer[slot].v.Load()
		for i := range t.flushSet {
			if t.flushSet[i].line == slot && t.flushSet[i].ver == cur {
				t.st.flushElided.Add(1)
				return
			}
		}
		t.flushSet = append(t.flushSet, flushEntry{line: slot, ver: cur})
	}
	t.st.flushes.Add(1)
	t.unfenced++
	spin(t.mem.cfg.Profile.FlushCost)
}

// Fence issues an sfence: every line flushed by this thread since its last
// fence is persisted (tracked mode persists the flush-time snapshots).
func (t *Thread) Fence() {
	if m := t.mem.model; m != nil {
		t.mem.checkCrash()
		t.mem.checkFenceTrap()
		m.fence(t.flushSet)
	}
	t.st.fences.Add(1)
	t.unfenced = 0
	t.flushSet = t.flushSet[:0]
	spin(t.mem.cfg.Profile.FenceCost)
}

// Unfenced reports how many flushes this thread has issued since its last
// fence. Policies use it to skip provably idempotent fences. Elided
// flushes do not count: they only ever coalesce into an already-pending
// line capture, so they never make a fence necessary.
func (t *Thread) Unfenced() int { return t.unfenced }

// CommitFence is the durability fence an operation issues before returning
// ("fence before every return statement", Protocol 2 of the paper). Outside
// a batch it is a plain Fence. Inside a batch it is deferred to EndBatch:
// the batch's operations are acknowledged together, so a single fence can
// make all of them durable at once.
//
// Only the commit fence may ever be deferred. The ordering fences inside
// the persistence protocols (the fence before a CAS publishes a node, the
// post-traverse fence) must still execute: they are what make each
// individual operation all-or-nothing across a crash, so a crash in the
// middle of a batch leaves every operation of the batch either fully
// applied or fully absent — exactly the freedom durable linearizability
// grants unacknowledged operations.
func (t *Thread) CommitFence() {
	if t.batchDepth > 0 {
		t.pendingCommit = true
		return
	}
	t.Fence()
}

// BeginBatch opens a fence batch on this thread. Batches nest; only the
// outermost EndBatch issues the coalesced fence.
func (t *Thread) BeginBatch() { t.batchDepth++ }

// EndBatch closes a fence batch. If any commit fence was deferred (or
// flushes are otherwise pending), one Fence persists everything the batch
// flushed before the batch is acknowledged.
func (t *Thread) EndBatch() {
	if t.batchDepth == 0 {
		panic("pmem: EndBatch without BeginBatch")
	}
	t.batchDepth--
	if t.batchDepth == 0 && (t.pendingCommit || t.unfenced > 0) {
		t.pendingCommit = false
		t.Fence()
	}
}

// InBatch reports whether a fence batch is open on this thread.
func (t *Thread) InBatch() bool { return t.batchDepth > 0 }

var spinSink uint64

// spin burns roughly n calibrated iterations. The data dependency through x
// and the conditional publication to spinSink prevent the compiler from
// eliding the loop.
func spin(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*2862933555777941757 + 3037000493
	}
	if x == 42 {
		spinSink = x
	}
}

package pmem

import "sync/atomic"

// Stats counts memory and persistence events. Each Thread accumulates its
// counters in plain owner-written fields and publishes them to atomics only
// at operation boundaries (CountOp) or on an explicit PublishStats, so
// snapshots from other goroutines are race-free and the per-access hot path
// pays a plain add instead of an atomic RMW; Memory.Stats sums the
// published snapshots.
//
// Flushes counts clwb instructions actually issued; FlushesElided counts
// Flush calls coalesced away by the line model (the line was already
// captured, unchanged, in the thread's pending flush set — see
// Thread.Flush). Flushes+FlushesElided is the number of Flush calls the
// persistence policy made.
type Stats struct {
	Reads         uint64
	Writes        uint64
	CASes         uint64
	CASFail       uint64
	Flushes       uint64
	FlushesElided uint64
	Fences        uint64
	Ops           uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.CASes += o.CASes
	s.CASFail += o.CASFail
	s.Flushes += o.Flushes
	s.FlushesElided += o.FlushesElided
	s.Fences += o.Fences
	s.Ops += o.Ops
}

// Sub returns s minus o (for interval measurements).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:         s.Reads - o.Reads,
		Writes:        s.Writes - o.Writes,
		CASes:         s.CASes - o.CASes,
		CASFail:       s.CASFail - o.CASFail,
		Flushes:       s.Flushes - o.Flushes,
		FlushesElided: s.FlushesElided - o.FlushesElided,
		Fences:        s.Fences - o.Fences,
		Ops:           s.Ops - o.Ops,
	}
}

// localStats are the owner-written counters: only the owning goroutine
// touches them, with plain (non-atomic) adds. They become visible to other
// goroutines only as a whole, via publish.
type localStats Stats

// publishedStats is the atomically published snapshot of a thread's
// localStats. The only hot-path publication point is the operation boundary
// (CountOp): one batch of eight uncontended atomic stores per completed
// operation, instead of an atomic read-modify-write per simulated access.
// Mid-run snapshots from other goroutines are therefore at most one
// operation stale; code that reads counters outside operation boundaries
// (microbenchmarks, instruction-level tests) calls PublishStats first.
type publishedStats struct {
	reads       atomic.Uint64
	writes      atomic.Uint64
	cases       atomic.Uint64
	casFail     atomic.Uint64
	flushes     atomic.Uint64
	flushElided atomic.Uint64
	fences      atomic.Uint64
	ops         atomic.Uint64
}

// Thread is a per-worker context: all cell accesses, persistence
// instructions, arena allocation and epoch entry go through a Thread. A
// Thread must be used by one goroutine at a time.
type Thread struct {
	// ID is a dense thread index within the owning Memory, used to index
	// per-thread arena free lists and epoch slots.
	ID int

	mem *Memory
	st  localStats
	rng uint64

	// Hot-path caches of owning-Memory state, copied at registration so
	// every simulated access costs one Thread-local read instead of a
	// pointer chase through mem and its config. All are immutable for the
	// Memory's lifetime.
	model     *model      // mem.model
	lineVer   []paddedVer // mem.lineVer (fast mode)
	lineShift uint8       // 64 - LineTableBits (fast mode)
	flushCost int32       // mem.cfg.Profile.FlushCost
	fenceCost int32       // mem.cfg.Profile.FenceCost
	dur       *durableMem // mem.durable (nil without a file backend)

	// unfenced counts flushes issued since the last fence. Policies that
	// model link-and-persist use it to elide fences when nothing is
	// pending.
	unfenced int

	// batchDepth > 0 while a fence batch is open (BeginBatch/EndBatch):
	// CommitFence defers its fence to EndBatch. pendingCommit records that
	// at least one commit fence was deferred inside the open batch.
	batchDepth    int
	pendingCommit bool

	// lines is the pending flush set: every line flushed since the last
	// fence, at its capture-time write version, in an open-addressed table
	// reset by generation bump. Both modes consult it to coalesce repeat
	// flushes of an unchanged line in O(1).
	lines lineSet

	// flushSet (tracked mode only) holds one entry per issued flush in
	// order, each carrying its whole-line snapshot inline (clwb writes back
	// the entire line; a line is at most CellsPerLine cells, so the
	// snapshot is a fixed-size array and tracked-mode Flush is
	// allocation-free at steady state).
	flushSet []flushEntry

	// walPend (durable mode only) holds the WAL entries captured since the
	// last fence — the fence appends them as one record. Fast mode fills it
	// at Flush (captureFast); tracked mode converts flushSet at Fence.
	walPend []walEntry

	// Scratch slices for data-structure operations (node lists returned by
	// traversals, flush batches). Owned by the single operation currently
	// running on this thread; reused to avoid per-operation allocation.
	Scratch      []uint64
	ScratchCells []*Cell

	// lastPub mirrors the counters as of the last publish, so publish can
	// skip the atomic store for counters the operation did not move.
	lastPub localStats
	pub     publishedStats

	_ [32]byte // reduce false sharing between Thread structs
}

// flushEntry is one pending tracked-mode line writeback: the line key, the
// line's write version at capture time, and the snapshot of every tracked
// cell of the line (vals[slot] for each slot set in mask).
type flushEntry struct {
	line uintptr
	ver  uint64
	mask uint8
	vals [CellsPerLine]uint64
}

// Memory returns the owning memory domain.
func (t *Thread) Memory() *Memory { return t.mem }

// publish atomically stores the owner-written counters into the published
// snapshot, skipping counters unchanged since the last publication (the
// compares are thread-local and predictable; the atomic stores are not
// free). Owner-only.
func (t *Thread) publish() {
	if t.st.Reads != t.lastPub.Reads {
		t.pub.reads.Store(t.st.Reads)
	}
	if t.st.Writes != t.lastPub.Writes {
		t.pub.writes.Store(t.st.Writes)
	}
	if t.st.CASes != t.lastPub.CASes {
		t.pub.cases.Store(t.st.CASes)
	}
	if t.st.CASFail != t.lastPub.CASFail {
		t.pub.casFail.Store(t.st.CASFail)
	}
	if t.st.Flushes != t.lastPub.Flushes {
		t.pub.flushes.Store(t.st.Flushes)
	}
	if t.st.FlushesElided != t.lastPub.FlushesElided {
		t.pub.flushElided.Store(t.st.FlushesElided)
	}
	if t.st.Fences != t.lastPub.Fences {
		t.pub.fences.Store(t.st.Fences)
	}
	if t.st.Ops != t.lastPub.Ops {
		t.pub.ops.Store(t.st.Ops)
	}
	t.lastPub = t.st
}

// PublishStats atomically publishes the thread's counters so that
// StatsSnapshot observes every event so far. It may only be called by the
// owning goroutine. Operations publish automatically at their boundary
// (CountOp); PublishStats exists for code that drives persistence
// instructions directly and reads counters between operations.
func (t *Thread) PublishStats() { t.publish() }

// StatsSnapshot returns this thread's counters as of its last publication
// point (CountOp or PublishStats) — race-free from any goroutine, and
// exact whenever the thread is between operations.
func (t *Thread) StatsSnapshot() Stats {
	return Stats{
		Reads:         t.pub.reads.Load(),
		Writes:        t.pub.writes.Load(),
		CASes:         t.pub.cases.Load(),
		CASFail:       t.pub.casFail.Load(),
		Flushes:       t.pub.flushes.Load(),
		FlushesElided: t.pub.flushElided.Load(),
		Fences:        t.pub.fences.Load(),
		Ops:           t.pub.ops.Load(),
	}
}

// resetStats clears the thread's counters. Callers (Memory.ResetStats) must
// only invoke it while the thread is quiescent.
func (t *Thread) resetStats() {
	t.st = localStats{}
	t.publish()
}

// CountOp records one completed high-level operation (for per-op metrics)
// and publishes the thread's counters — the operation boundary is the
// canonical publication point.
func (t *Thread) CountOp() {
	t.st.Ops++
	t.publish()
}

// Rand returns the next value of the thread's splitmix64 generator.
func (t *Thread) Rand() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Load atomically reads a cell: one real atomic load plus a plain counter
// add — the fast-mode read path carries no atomic read-modify-write.
func (t *Thread) Load(c *Cell) uint64 {
	t.st.Reads++
	if t.model != nil {
		t.mem.checkCrash()
	}
	return c.v.Load()
}

// fastSlot maps a cell's line to a slot of the fast-mode line-version
// table (thread-cached shift). Distinct lines may collide; collisions merge
// their write versions, which only perturbs the flush-coalescing statistics
// (fast mode has no crash semantics), and the multiplicative hash keeps
// neighboring lines apart.
func (t *Thread) fastSlot(c *Cell) uintptr {
	h := uint64(lineOf(c)) * 0x9e3779b97f4a7c15
	return uintptr(h >> t.lineShift)
}

// Store atomically writes a cell.
func (t *Thread) Store(c *Cell, v uint64) {
	t.st.Writes++
	if m := t.model; m != nil {
		t.mem.checkCrash()
		m.store(c, v)
		return
	}
	c.v.Store(v)
	t.lineVer[t.fastSlot(c)].v.Add(1)
}

// CAS atomically compares-and-swaps a cell, returning whether it succeeded.
func (t *Thread) CAS(c *Cell, old, new uint64) bool {
	t.st.CASes++
	var ok bool
	if m := t.model; m != nil {
		t.mem.checkCrash()
		ok = m.cas(c, old, new)
	} else {
		ok = c.v.CompareAndSwap(old, new)
		if ok {
			t.lineVer[t.fastSlot(c)].v.Add(1)
		}
	}
	if !ok {
		t.st.CASFail++
	}
	return ok
}

// Flush issues a clwb for the cell's 64-byte line: the content the line
// holds right now will be persisted — whole line, atomically — by the next
// Fence. Flush alone guarantees nothing.
//
// Flush coalesces: when the thread's pending flush set already holds this
// line at its current write version, the call is a no-op (counted in
// Stats.FlushesElided, no latency charged). This is the paper's TSO
// flush-coalescing optimization — clwb of a line that is already queued
// for writeback, unchanged, does no additional work — and it is exact: any
// write to the line bumps its version, so a changed line is always
// re-captured. The pending set is an open-addressed line table (lineSet),
// so the coalescing check is O(1) regardless of how many lines a batch has
// flushed since the last fence.
func (t *Thread) Flush(c *Cell) {
	if m := t.model; m != nil {
		t.mem.checkCrash()
		if !t.flushTracked(c, m) {
			t.st.FlushesElided++
			return
		}
	} else if d := t.dur; d != nil {
		// Durable fast mode keys the pending set by the exact line (two
		// distinct lines colliding in the hashed version table must not
		// elide each other's capture) while versions still come from the
		// hashed slot: collisions merge versions monotonically, which the
		// replay guard tolerates, whereas a missed capture would lose data.
		cur := t.lineVer[t.fastSlot(c)].v.Load()
		if !t.lines.put(lineOf(c), cur) {
			t.st.FlushesElided++
			return
		}
		t.captureFast(d, c, cur)
	} else {
		slot := t.fastSlot(c)
		cur := t.lineVer[slot].v.Load()
		if !t.lines.put(slot, cur) {
			t.st.FlushesElided++
			return
		}
	}
	t.st.Flushes++
	t.unfenced++
	spin(int(t.flushCost))
}

// flushTracked records a clwb of c's line in tracked mode: under the line's
// stripe lock it reads the line's current write version, consults the
// thread's pending set, and — unless the flush coalesces (returns false) —
// captures a consistent snapshot of every tracked cell of the line inline
// in the appended flush entry.
func (t *Thread) flushTracked(c *Cell, mo *model) bool {
	key := lineOf(c)
	st := mo.stripeOf(key)
	st.mu.Lock()
	var cur uint64
	ls := st.lines[key]
	if ls != nil {
		cur = ls.curVer
	}
	if !t.lines.put(key, cur) {
		st.mu.Unlock()
		return false
	}
	e := flushEntry{line: key, ver: cur}
	if ls != nil {
		e.mask = ls.mask
		for slot, cc := range ls.cells {
			if ls.mask&(1<<slot) != 0 {
				e.vals[slot] = cc.v.Load()
			}
		}
	}
	st.mu.Unlock()
	t.flushSet = append(t.flushSet, e)
	return true
}

// Fence issues an sfence: every line flushed by this thread since its last
// fence is persisted (tracked mode persists the flush-time snapshots), and
// the pending flush set is reset (a generation bump, not a clear).
func (t *Thread) Fence() {
	if m := t.model; m != nil {
		t.mem.checkCrash()
		t.mem.checkFenceTrap()
		m.fence(t.flushSet)
		if t.dur != nil {
			t.walFromFlushSet(t.dur)
		}
		t.flushSet = t.flushSet[:0]
	}
	if d := t.dur; d != nil && len(t.walPend) > 0 {
		// The fence is the commit unit: the whole between-fences line set
		// becomes one framed WAL record (buffered; commit points flush it).
		d.appendRecord(t.walPend)
		t.walPend = t.walPend[:0]
	}
	t.st.Fences++
	t.unfenced = 0
	t.lines.reset()
	spin(int(t.fenceCost))
}

// resetFlushState discards all pending flush bookkeeping (crash rollback,
// PersistAll). Callers must ensure the thread is quiescent.
func (t *Thread) resetFlushState() {
	t.flushSet = t.flushSet[:0]
	t.walPend = t.walPend[:0] // unfenced captures die with the cache
	t.lines.reset()
	t.unfenced = 0
}

// Unfenced reports how many flushes this thread has issued since its last
// fence. Policies use it to skip provably idempotent fences. Elided
// flushes do not count: they only ever coalesce into an already-pending
// line capture, so they never make a fence necessary.
func (t *Thread) Unfenced() int { return t.unfenced }

// CommitFence is the durability fence an operation issues before returning
// ("fence before every return statement", Protocol 2 of the paper). Outside
// a batch it is a plain Fence. Inside a batch it is deferred to EndBatch:
// the batch's operations are acknowledged together, so a single fence can
// make all of them durable at once.
//
// Only the commit fence may ever be deferred. The ordering fences inside
// the persistence protocols (the fence before a CAS publishes a node, the
// post-traverse fence) must still execute: they are what make each
// individual operation all-or-nothing across a crash, so a crash in the
// middle of a batch leaves every operation of the batch either fully
// applied or fully absent — exactly the freedom durable linearizability
// grants unacknowledged operations.
func (t *Thread) CommitFence() {
	if t.batchDepth > 0 {
		t.pendingCommit = true
		return
	}
	t.Fence()
	if d := t.dur; d != nil {
		// Commit point: the operation may be acknowledged after this
		// returns, so its record must be in the file before then.
		d.flush()
	}
}

// BeginBatch opens a fence batch on this thread. Batches nest; only the
// outermost EndBatch issues the coalesced fence.
func (t *Thread) BeginBatch() { t.batchDepth++ }

// EndBatch closes a fence batch. If any commit fence was deferred (or
// flushes are otherwise pending), one Fence persists everything the batch
// flushed before the batch is acknowledged.
func (t *Thread) EndBatch() {
	if t.batchDepth == 0 {
		panic("pmem: EndBatch without BeginBatch")
	}
	t.batchDepth--
	if t.batchDepth == 0 && (t.pendingCommit || t.unfenced > 0) {
		t.pendingCommit = false
		t.Fence()
	}
	if t.batchDepth == 0 {
		if d := t.dur; d != nil {
			// Commit point for the whole batch — even when the closing
			// fence elided (earlier in-batch fences may have appended
			// records that are still only in the userspace buffer).
			d.flush()
		}
	}
}

// InBatch reports whether a fence batch is open on this thread.
func (t *Thread) InBatch() bool { return t.batchDepth > 0 }

var spinSink uint64

// spin burns roughly n calibrated iterations. The data dependency through x
// and the conditional publication to spinSink prevent the compiler from
// eliding the loop.
func spin(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*2862933555777941757 + 3037000493
	}
	if x == 42 {
		spinSink = x
	}
}

package pmem

import (
	"sync"
	"testing"
)

// TestCheckpointLiveStaleRecord is the live-checkpoint safety scenario the
// v2 format exists for: thread A captures a line into its pending set but
// fences only after a checkpoint, so its stale record lands in the NEW
// generation's WAL while the newer acknowledged value it would shadow
// survives only inside the checkpoint content. Replay must skip the stale
// record via the version-seeded guard — with the v1 format (no seeding)
// this test loses B's acknowledged write.
func TestCheckpointLiveStaleRecord(t *testing.T) {
	for _, mode := range []Mode{ModeFast, ModeTracked} {
		name := "fast"
		if mode == ModeTracked {
			name = "tracked"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m, thA, lines := openDurable(t, dir, mode, 1)
			thB := m.NewThread()
			c := &lines[0][0]

			// A stores and flushes (capture pending, no fence yet).
			thA.Store(c, 1)
			thA.Flush(c)
			// B overwrites, flushes and fences: value 2 is acknowledged.
			thB.Store(c, 2)
			thB.Flush(c)
			thB.CommitFence()
			// Checkpoint retires B's record; 2 now lives in the snapshot.
			if err := m.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			// A's late fence appends its stale capture to the fresh WAL.
			thA.CommitFence()
			m.Close()

			m2, th2, lines2 := openDurable(t, dir, mode, 1)
			defer m2.Close()
			if got := th2.Load(&lines2[0][0]); got != 2 {
				t.Fatalf("got %d want 2 (stale pre-checkpoint record must not shadow the snapshot)", got)
			}
		})
	}
}

// TestCheckpointIfOverBoundsWAL drives commits through a size-threshold
// trigger and asserts the log never grows past threshold plus one record,
// that checkpoints actually fire, and that the final state recovers.
func TestCheckpointIfOverBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	m, th, lines := openDurable(t, dir, ModeFast, 4)
	const threshold = 2048
	// A one-line record is ~100 bytes framed; generous slack for one append
	// past the threshold probe.
	const slack = 512
	last := uint64(0)
	for i := 0; i < 400; i++ {
		last = uint64(i + 1)
		commitCell(th, &lines[i%4][0], last)
		if _, err := m.CheckpointIfOver(threshold); err != nil {
			t.Fatalf("CheckpointIfOver: %v", err)
		}
		if sz := m.WALSize(); sz > threshold+slack {
			t.Fatalf("WAL grew to %d bytes despite threshold %d", sz, threshold)
		}
	}
	if ck := m.WALStats().Checkpoints; ck < 2 {
		t.Fatalf("expected repeated automatic checkpoints, got %d", ck)
	}
	m.Close()

	m2, th2, lines2 := openDurable(t, dir, ModeFast, 4)
	defer m2.Close()
	if st := m2.ReplayStats(); st.CheckpointBytes == 0 {
		t.Fatalf("no checkpoint loaded: %+v", st)
	}
	if got := th2.Load(&lines2[3][0]); got != last {
		t.Fatalf("got %d want %d after threshold-checkpointed run", got, last)
	}
}

// TestCheckpointLiveConcurrent hammers checkpoints against live committing
// threads (each owning its own line) and verifies every thread's last
// acknowledged value survives a reopen. Run under -race this also checks
// the checkpoint scan races cleanly with Store/Flush/Fence.
func TestCheckpointLiveConcurrent(t *testing.T) {
	const workers = 4
	const rounds = 300
	dir := t.TempDir()
	m, th0, lines := openDurable(t, dir, ModeFast, workers)
	var wg sync.WaitGroup
	ths := []*Thread{th0}
	for w := 1; w < workers; w++ {
		ths = append(ths, m.NewThread())
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := ths[w]
			c := &lines[w][0]
			for i := 1; i <= rounds; i++ {
				commitCell(th, c, uint64(i))
				if w == 0 && i%16 == 0 {
					if err := m.Checkpoint(); err != nil {
						t.Errorf("Checkpoint: %v", err)
						return
					}
				}
				if _, err := m.CheckpointIfOver(4096); err != nil {
					t.Errorf("CheckpointIfOver: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	m.Close()

	m2, th2, lines2 := openDurable(t, dir, ModeFast, workers)
	defer m2.Close()
	for w := 0; w < workers; w++ {
		if got := th2.Load(&lines2[w][0]); got != rounds {
			t.Fatalf("worker %d line: got %d want %d", w, got, rounds)
		}
	}
}

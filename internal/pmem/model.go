package pmem

import (
	"math/rand"
	"sync"
)

// errCrashed is the sentinel panic value raised by every memory access while
// the crash flag is up. Workers recover it at operation boundaries (see
// RunOp), which stops them mid-operation exactly as a power failure would.
type errCrashed struct{}

func (errCrashed) Error() string { return "pmem: simulated crash" }

// IsCrash reports whether a recovered panic value is the crash sentinel.
func IsCrash(r any) bool {
	_, ok := r.(errCrashed)
	return ok
}

// RunOp runs f, converting a crash-sentinel panic into crashed=true. Any
// other panic is re-raised. Data-structure operations release their epoch
// slots via defer, so unwinding through them is safe.
func RunOp(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if IsCrash(r) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

// lineState is the tracked persistence state of one 64-byte line that has
// been written since construction (or the last PersistAll): a monotonically
// increasing write version, the newest version known to have reached
// persistent memory, and the persisted value of every cell of the line that
// has ever been written. Cells of the line that were never written need no
// entry — their construction value is persisted by definition.
//
// Versioning matters for correctness of the simulation itself: a fence
// persists the snapshot each line held when it was *flushed*, but
// persistence can never move backwards — on real hardware, once a newer
// line image has been written back, a stale earlier writeback cannot
// resurrect an older one (clwb writes current line content; coherence
// orders the writebacks). Without the version guard, a thread fencing a
// stale capture after another thread persisted a newer image would regress
// the line and silently "lose" a completed, correctly-persisted operation.
type lineState struct {
	curVer       uint64
	persistedVer uint64
	persisted    map[*Cell]uint64
}

// cellVal is one cell of a whole-line flush snapshot.
type cellVal struct {
	c *Cell
	v uint64
}

// model is the tracked write-back state, keyed by line.
type model struct {
	mu    sync.Mutex
	lines map[uintptr]*lineState
}

func newModel() *model {
	return &model{lines: make(map[uintptr]*lineState)}
}

// line returns the tracked state of c's line, creating it on first write.
// Caller holds m.mu.
func (m *model) line(c *Cell) *lineState {
	key := lineOf(c)
	ls := m.lines[key]
	if ls == nil {
		ls = &lineState{persisted: make(map[*Cell]uint64)}
		m.lines[key] = ls
	}
	return ls
}

// touch baselines c within its line state: the first write of a cell
// records its pre-write value as the persisted baseline. Caller holds m.mu.
func (m *model) touch(ls *lineState, c *Cell) {
	if _, ok := ls.persisted[c]; !ok {
		ls.persisted[c] = c.v.Load()
	}
}

// store bumps the line's write version and performs the volatile write.
func (m *model) store(c *Cell, v uint64) {
	m.mu.Lock()
	ls := m.line(c)
	m.touch(ls, c)
	ls.curVer++
	c.v.Store(v)
	m.mu.Unlock()
}

func (m *model) cas(c *Cell, old, new uint64) bool {
	m.mu.Lock()
	cur := c.v.Load()
	if cur != old {
		m.mu.Unlock()
		return false
	}
	ls := m.line(c)
	m.touch(ls, c)
	ls.curVer++
	c.v.Store(new)
	m.mu.Unlock()
	return true
}

// flush records a clwb of c's line: a snapshot of every tracked cell of the
// line, read consistently under the model lock, tagged with the line's
// current write version. The flush is elided — a no-op, like clwb of a line
// the CPU already has in flight to memory — when the issuing thread's
// pending set already holds a capture of this line at the same version:
// nothing was written to the line since that capture, so the thread's next
// fence persists exactly the content this flush would have captured. The
// version check makes elision exact; a line rewritten after its capture is
// always re-flushed.
func (m *model) flush(c *Cell, pending []flushEntry) (flushEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := lineOf(c)
	var cur uint64
	ls := m.lines[key]
	if ls != nil {
		cur = ls.curVer
	}
	for i := range pending {
		if pending[i].line == key && pending[i].ver == cur {
			return flushEntry{}, true
		}
	}
	e := flushEntry{line: key, ver: cur}
	if ls != nil {
		e.vals = make([]cellVal, 0, len(ls.persisted))
		for cc := range ls.persisted {
			e.vals = append(e.vals, cellVal{c: cc, v: cc.v.Load()})
		}
	}
	return e, false
}

// fence persists every flushed line snapshot, monotonically: an entry only
// advances a line's persisted state if it captured a newer write version,
// and it advances the whole line at once — lines persist atomically.
func (m *model) fence(entries []flushEntry) {
	if len(entries) == 0 {
		return
	}
	m.mu.Lock()
	for _, e := range entries {
		ls := m.lines[e.line]
		if ls == nil {
			continue // PersistAll intervened: already fully persistent
		}
		if e.ver > ls.persistedVer {
			ls.persistedVer = e.ver
			for _, cv := range e.vals {
				ls.persisted[cv.c] = cv.v
			}
		}
	}
	m.mu.Unlock()
}

// Crash simulates a power failure on a tracked memory:
//
//  1. The crash flag is raised; from now on every access by any thread
//     panics with the crash sentinel, stopping workers mid-operation.
//     Callers must wait for all workers to have stopped before step 2
//     (Crash does not know about the caller's goroutines).
//  2. Every dirty line is rolled back — all of its cells together — to its
//     newest persisted snapshot, except that with probability evictProb
//     each dirty line is "evicted": hardware caches may write a line back
//     at any time without being asked, so a crash may persist writes the
//     program never flushed. Either way a line survives or vanishes as a
//     unit; no crash state ever splits a line.
//  3. All thread flush sets are discarded (they were in the volatile CPU).
//
// After Crash returns, the memory is still in the crashed state; call
// Restart before running recovery code.
func (m *Memory) Crash() {
	if m.model == nil {
		panic("pmem: Crash requires ModeTracked")
	}
	m.crashed.Store(true)
}

// FinishCrash performs the rollback of step 2-3 above. It must be called
// after all worker goroutines have observably stopped (e.g. via WaitGroup).
// Splitting Crash/FinishCrash keeps the stop-the-world handshake explicit.
func (m *Memory) FinishCrash(evictProb float64, seed int64) {
	if m.model == nil {
		panic("pmem: FinishCrash requires ModeTracked")
	}
	if !m.crashed.Load() {
		panic("pmem: FinishCrash without Crash")
	}
	rng := rand.New(rand.NewSource(seed))
	mo := m.model
	mo.mu.Lock()
	for _, ls := range mo.lines {
		if ls.persistedVer == ls.curVer {
			continue // fully persistent: volatile == persisted
		}
		if evictProb > 0 && rng.Float64() < evictProb {
			continue // whole line was evicted: volatile values survived
		}
		for c, pv := range ls.persisted {
			c.v.Store(pv)
		}
	}
	mo.lines = make(map[uintptr]*lineState)
	mo.mu.Unlock()
	for _, t := range m.Threads() {
		t.flushSet = t.flushSet[:0]
		t.unfenced = 0
		t.batchDepth = 0
		t.pendingCommit = false
	}
	m.fenceTrap.Store(0)
}

// Restart lowers the crash flag so recovery code (and new workers) can run.
func (m *Memory) Restart() {
	m.crashed.Store(false)
}

// Crashed reports whether the crash flag is raised.
func (m *Memory) Crashed() bool { return m.crashed.Load() }

// CrashAtFence arms a deterministic crash schedule: the n-th Fence issued
// from now on (n >= 1, counted across all threads) raises the crash flag
// and aborts before persisting anything, exactly as a power failure landing
// at that fence point would. The trap disarms after firing (or at
// FinishCrash). Single-writer test hook: arm it only while the memory is
// quiescent.
func (m *Memory) CrashAtFence(n int) {
	if m.model == nil {
		panic("pmem: CrashAtFence requires ModeTracked")
	}
	if n < 1 {
		panic("pmem: CrashAtFence needs n >= 1")
	}
	m.fenceTrap.Store(int64(n))
}

// checkFenceTrap fires the CrashAtFence schedule. Called at the top of
// Fence, before any persistence happens.
func (m *Memory) checkFenceTrap() {
	if m.fenceTrap.Load() > 0 && m.fenceTrap.Add(-1) == 0 {
		m.crashed.Store(true)
		panic(errCrashed{})
	}
}

// PersistAll declares the current volatile contents fully persisted. Use it
// after constructing a data structure's initial state, mirroring the paper's
// assumption that the initial structure resides in NVRAM before operations
// begin.
func (m *Memory) PersistAll() {
	if m.model == nil {
		return
	}
	m.model.mu.Lock()
	m.model.lines = make(map[uintptr]*lineState)
	m.model.mu.Unlock()
	for _, t := range m.Threads() {
		t.flushSet = t.flushSet[:0]
		t.unfenced = 0
	}
	// Batch state is deliberately left alone: PersistAll may run while a
	// quiescent batch is open, and an empty flush set makes EndBatch cheap.
}

// DirtyCells reports how many cells currently hold a volatile value that
// would not survive a crash (test hook).
func (m *Memory) DirtyCells() int {
	if m.model == nil {
		return 0
	}
	m.model.mu.Lock()
	defer m.model.mu.Unlock()
	n := 0
	for _, ls := range m.model.lines {
		if ls.persistedVer == ls.curVer {
			continue
		}
		for c, pv := range ls.persisted {
			if c.v.Load() != pv {
				n++
			}
		}
	}
	return n
}

// DirtyLines reports how many lines are currently unpersisted — written
// since their newest fenced flush (test and reporting hook).
func (m *Memory) DirtyLines() int {
	if m.model == nil {
		return 0
	}
	m.model.mu.Lock()
	defer m.model.mu.Unlock()
	n := 0
	for _, ls := range m.model.lines {
		if ls.persistedVer != ls.curVer {
			n++
		}
	}
	return n
}

// PersistedValue returns the value that would survive a crash for c right
// now, assuming c's line is not evicted (test hook).
func (m *Memory) PersistedValue(c *Cell) uint64 {
	if m.model == nil {
		return c.raw()
	}
	m.model.mu.Lock()
	defer m.model.mu.Unlock()
	if ls, ok := m.model.lines[lineOf(c)]; ok {
		if pv, ok := ls.persisted[c]; ok {
			return pv
		}
	}
	return c.raw()
}

func (m *Memory) checkCrash() {
	if m.crashed.Load() {
		panic(errCrashed{})
	}
}

package pmem

import (
	"math/rand"
	"sync"
)

// errCrashed is the sentinel panic value raised by every memory access while
// the crash flag is up. Workers recover it at operation boundaries (see
// RunOp), which stops them mid-operation exactly as a power failure would.
type errCrashed struct{}

func (errCrashed) Error() string { return "pmem: simulated crash" }

// IsCrash reports whether a recovered panic value is the crash sentinel.
func IsCrash(r any) bool {
	_, ok := r.(errCrashed)
	return ok
}

// RunOp runs f, converting a crash-sentinel panic into crashed=true. Any
// other panic is re-raised. Data-structure operations release their epoch
// slots via defer, so unwinding through them is safe.
func RunOp(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if IsCrash(r) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

// lineState is the tracked persistence state of one 64-byte line that has
// been written since construction (or the last PersistAll): a monotonically
// increasing write version, the newest version known to have reached
// persistent memory, and the persisted value of every cell of the line that
// has ever been written. Cells of the line that were never written need no
// entry — their construction value is persisted by definition.
//
// Versioning matters for correctness of the simulation itself: a fence
// persists the snapshot each line held when it was *flushed*, but
// persistence can never move backwards — on real hardware, once a newer
// line image has been written back, a stale earlier writeback cannot
// resurrect an older one (clwb writes current line content; coherence
// orders the writebacks). Without the version guard, a thread fencing a
// stale capture after another thread persisted a newer image would regress
// the line and silently "lose" a completed, correctly-persisted operation.
// A line holds exactly CellsPerLine cells, so the per-line state is a pair
// of fixed-size arrays indexed by the cell's slot within its line plus a
// bitmask of which slots have ever been written — no per-line map, so the
// store/flush/fence hot path of the tracked model does no hashing and no
// allocation beyond the lineState itself.
type lineState struct {
	curVer       uint64
	persistedVer uint64
	mask         uint8                // slots with a tracked baseline
	cells        [CellsPerLine]*Cell  // slot -> cell (for crash rollback)
	persisted    [CellsPerLine]uint64 // slot -> persisted value
}

// modelStripeBits sizes the stripe array at 2^bits stripes. 64 stripes keep
// the chance of two unrelated lines contending on one lock low at the
// thread counts the torture harnesses run, for a few KB of footprint.
const modelStripeBits = 6

// modelStripe is one lock stripe of the tracked write-back state: a mutex
// and the line states that hash to it. Lines map to stripes by a
// multiplicative hash of the line key, so all operations on one line —
// store, CAS, flush capture, fence application — always meet on the same
// stripe lock, which is the only mutual exclusion per-line semantics need.
type modelStripe struct {
	mu    sync.Mutex
	lines map[uintptr]*lineState
	// Pad the struct to a whole cache line (mutex 8B + map header 8B + 48B)
	// so adjacent stripes never false-share.
	_ [48]byte
}

// model is the tracked write-back state, sharded into line stripes so that
// threads touching different lines do not serialize on one global mutex.
//
// Lock ordering rule: per-line operations lock exactly one stripe.
// Whole-memory operations (FinishCrash, PersistAll, DirtyCells, DirtyLines)
// lock every stripe in index order — the single total order that makes two
// concurrent whole-memory operations deadlock-free. Fence deliberately does
// NOT take all stripes: it locks one stripe per pending entry, which
// persists each line atomically and monotonically; hardware gives no
// cross-line atomicity at an sfence either (each line writeback completes
// individually), so per-entry locking preserves the modeled semantics
// exactly.
type model struct {
	stripes [1 << modelStripeBits]modelStripe
}

func newModel() *model {
	m := &model{}
	for i := range m.stripes {
		m.stripes[i].lines = make(map[uintptr]*lineState)
	}
	return m
}

// stripeOf returns the stripe a line key hashes to.
func (m *model) stripeOf(line uintptr) *modelStripe {
	h := uint64(line) * 0x9e3779b97f4a7c15
	return &m.stripes[h>>(64-modelStripeBits)]
}

// lockAll acquires every stripe in index order (see the ordering rule on
// model); unlockAll releases them.
func (m *model) lockAll() {
	for i := range m.stripes {
		m.stripes[i].mu.Lock()
	}
}

func (m *model) unlockAll() {
	for i := range m.stripes {
		m.stripes[i].mu.Unlock()
	}
}

// line returns the tracked state of the line within its stripe, creating it
// on first write. Caller holds st.mu.
func (st *modelStripe) line(key uintptr) *lineState {
	ls := st.lines[key]
	if ls == nil {
		ls = &lineState{}
		st.lines[key] = ls
	}
	return ls
}

// markPersisted declares the line's current volatile content persisted.
// Caller holds the line's stripe lock.
func (ls *lineState) markPersisted() {
	ls.persistedVer = ls.curVer
	for slot, c := range ls.cells {
		if ls.mask&(1<<slot) != 0 {
			ls.persisted[slot] = c.v.Load()
		}
	}
}

// touch baselines c within its line state: the first write of a cell
// records its pre-write value as the persisted baseline. Caller holds the
// line's stripe lock.
func (ls *lineState) touch(c *Cell) {
	slot := cellSlot(c)
	if ls.mask&(1<<slot) == 0 {
		ls.mask |= 1 << slot
		ls.cells[slot] = c
		ls.persisted[slot] = c.v.Load()
	}
}

// store bumps the line's write version and performs the volatile write,
// under the line's stripe lock.
func (m *model) store(c *Cell, v uint64) {
	key := lineOf(c)
	st := m.stripeOf(key)
	st.mu.Lock()
	ls := st.line(key)
	ls.touch(c)
	ls.curVer++
	c.v.Store(v)
	st.mu.Unlock()
}

func (m *model) cas(c *Cell, old, new uint64) bool {
	key := lineOf(c)
	st := m.stripeOf(key)
	st.mu.Lock()
	cur := c.v.Load()
	if cur != old {
		st.mu.Unlock()
		return false
	}
	ls := st.line(key)
	ls.touch(c)
	ls.curVer++
	c.v.Store(new)
	st.mu.Unlock()
	return true
}

// fence persists every flushed line snapshot, monotonically: an entry only
// advances a line's persisted state if it captured a newer write version,
// and it advances the whole line at once — lines persist atomically. Each
// entry locks only its line's stripe; see model for why per-entry locking
// is faithful.
func (m *model) fence(entries []flushEntry) {
	for i := range entries {
		e := &entries[i]
		st := m.stripeOf(e.line)
		st.mu.Lock()
		ls := st.lines[e.line]
		if ls == nil {
			st.mu.Unlock()
			continue // PersistAll intervened: already fully persistent
		}
		if e.ver > ls.persistedVer {
			ls.persistedVer = e.ver
			for slot := 0; slot < CellsPerLine; slot++ {
				if e.mask&(1<<slot) != 0 {
					ls.persisted[slot] = e.vals[slot]
				}
			}
		}
		st.mu.Unlock()
	}
}

// Crash simulates a power failure on a tracked memory:
//
//  1. The crash flag is raised; from now on every access by any thread
//     panics with the crash sentinel, stopping workers mid-operation.
//     Callers must wait for all workers to have stopped before step 2
//     (Crash does not know about the caller's goroutines).
//  2. Every dirty line is rolled back — all of its cells together — to its
//     newest persisted snapshot, except that with probability evictProb
//     each dirty line is "evicted": hardware caches may write a line back
//     at any time without being asked, so a crash may persist writes the
//     program never flushed. Either way a line survives or vanishes as a
//     unit; no crash state ever splits a line.
//  3. All thread flush sets are discarded (they were in the volatile CPU).
//
// After Crash returns, the memory is still in the crashed state; call
// Restart before running recovery code.
func (m *Memory) Crash() {
	if m.model == nil {
		panic("pmem: Crash requires ModeTracked")
	}
	m.crashed.Store(true)
}

// FinishCrash performs the rollback of step 2-3 above. It must be called
// after all worker goroutines have observably stopped (e.g. via WaitGroup).
// Splitting Crash/FinishCrash keeps the stop-the-world handshake explicit.
func (m *Memory) FinishCrash(evictProb float64, seed int64) {
	if m.model == nil {
		panic("pmem: FinishCrash requires ModeTracked")
	}
	if !m.crashed.Load() {
		panic("pmem: FinishCrash without Crash")
	}
	rng := rand.New(rand.NewSource(seed))
	mo := m.model
	d := m.durable
	var evicted []walEntry
	mo.lockAll()
	for i := range mo.stripes {
		st := &mo.stripes[i]
		for key, ls := range st.lines {
			if ls.persistedVer == ls.curVer {
				continue // fully persistent: volatile == persisted
			}
			if evictProb > 0 && rng.Float64() < evictProb {
				// Whole line was evicted: volatile values survived. With a
				// file backend the eviction must reach the file too — an
				// evicted line is persistent by definition — so collect a
				// WAL entry and advance the persisted image.
				if d != nil {
					if e, ok := d.entryForLine(key, ls); ok {
						evicted = append(evicted, e)
					}
					ls.markPersisted()
				}
				continue
			}
			for slot, c := range ls.cells {
				if ls.mask&(1<<slot) != 0 {
					c.v.Store(ls.persisted[slot])
				}
			}
			if d != nil {
				// Volatile now equals the persisted image; align the
				// version rather than dropping the lineState — durable
				// mode must keep per-line versions monotone across the
				// whole boot, or replay could prefer a pre-crash record
				// over a post-recovery one.
				ls.curVer = ls.persistedVer
			}
		}
		if d == nil {
			st.lines = make(map[uintptr]*lineState)
		}
	}
	mo.unlockAll()
	if d != nil && len(evicted) > 0 {
		d.appendRecord(evicted)
	}
	for _, t := range m.Threads() {
		t.resetFlushState()
		t.batchDepth = 0
		t.pendingCommit = false
	}
	m.fenceTrap.Store(0)
	if d != nil {
		d.flush()
	}
}

// Restart lowers the crash flag so recovery code (and new workers) can run.
func (m *Memory) Restart() {
	m.crashed.Store(false)
}

// Crashed reports whether the crash flag is raised.
func (m *Memory) Crashed() bool { return m.crashed.Load() }

// CrashAtFence arms a deterministic crash schedule: the n-th Fence issued
// from now on (n >= 1, counted across all threads) raises the crash flag
// and aborts before persisting anything, exactly as a power failure landing
// at that fence point would. The trap disarms after firing (or at
// FinishCrash). Single-writer test hook: arm it only while the memory is
// quiescent.
func (m *Memory) CrashAtFence(n int) {
	if m.model == nil {
		panic("pmem: CrashAtFence requires ModeTracked")
	}
	if n < 1 {
		panic("pmem: CrashAtFence needs n >= 1")
	}
	m.fenceTrap.Store(int64(n))
}

// checkFenceTrap fires the CrashAtFence schedule. Called at the top of
// Fence, before any persistence happens.
func (m *Memory) checkFenceTrap() {
	if m.fenceTrap.Load() > 0 && m.fenceTrap.Add(-1) == 0 {
		m.crashed.Store(true)
		panic(errCrashed{})
	}
}

// PersistAll declares the current volatile contents fully persisted. Use it
// after constructing a data structure's initial state, mirroring the paper's
// assumption that the initial structure resides in NVRAM before operations
// begin.
func (m *Memory) PersistAll() {
	if m.model == nil {
		return
	}
	d := m.durable
	var pend []walEntry
	m.model.lockAll()
	for i := range m.model.stripes {
		st := &m.model.stripes[i]
		if d == nil {
			st.lines = make(map[uintptr]*lineState)
			continue
		}
		// Durable mode keeps the lineStates (per-line versions must stay
		// monotone for the boot) and makes the declaration true on disk:
		// every still-dirty registered line is logged at its volatile
		// content before being marked persisted.
		for key, ls := range st.lines {
			if ls.persistedVer == ls.curVer {
				continue
			}
			if e, ok := d.entryForLine(key, ls); ok {
				pend = append(pend, e)
			}
			ls.markPersisted()
		}
	}
	m.model.unlockAll()
	if d != nil && len(pend) > 0 {
		d.appendRecord(pend)
		d.flush()
	}
	for _, t := range m.Threads() {
		t.resetFlushState()
	}
	// Batch state is deliberately left alone: PersistAll may run while a
	// quiescent batch is open, and an empty flush set makes EndBatch cheap.
}

// DirtyCells reports how many cells currently hold a volatile value that
// would not survive a crash (test hook).
func (m *Memory) DirtyCells() int {
	if m.model == nil {
		return 0
	}
	m.model.lockAll()
	defer m.model.unlockAll()
	n := 0
	for i := range m.model.stripes {
		for _, ls := range m.model.stripes[i].lines {
			if ls.persistedVer == ls.curVer {
				continue
			}
			for slot, c := range ls.cells {
				if ls.mask&(1<<slot) != 0 && c.v.Load() != ls.persisted[slot] {
					n++
				}
			}
		}
	}
	return n
}

// DirtyLines reports how many lines are currently unpersisted — written
// since their newest fenced flush (test and reporting hook).
func (m *Memory) DirtyLines() int {
	if m.model == nil {
		return 0
	}
	m.model.lockAll()
	defer m.model.unlockAll()
	n := 0
	for i := range m.model.stripes {
		for _, ls := range m.model.stripes[i].lines {
			if ls.persistedVer != ls.curVer {
				n++
			}
		}
	}
	return n
}

// PersistedValue returns the value that would survive a crash for c right
// now, assuming c's line is not evicted (test hook). It locks only c's
// stripe.
func (m *Memory) PersistedValue(c *Cell) uint64 {
	if m.model == nil {
		return c.raw()
	}
	key := lineOf(c)
	st := m.model.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if ls, ok := st.lines[key]; ok {
		if slot := cellSlot(c); ls.mask&(1<<slot) != 0 {
			return ls.persisted[slot]
		}
	}
	return c.raw()
}

func (m *Memory) checkCrash() {
	if m.crashed.Load() {
		panic(errCrashed{})
	}
}

package pmem

import (
	"math/rand"
	"sync"
)

// errCrashed is the sentinel panic value raised by every memory access while
// the crash flag is up. Workers recover it at operation boundaries (see
// RunOp), which stops them mid-operation exactly as a power failure would.
type errCrashed struct{}

func (errCrashed) Error() string { return "pmem: simulated crash" }

// IsCrash reports whether a recovered panic value is the crash sentinel.
func IsCrash(r any) bool {
	_, ok := r.(errCrashed)
	return ok
}

// RunOp runs f, converting a crash-sentinel panic into crashed=true. Any
// other panic is re-raised. Data-structure operations release their epoch
// slots via defer, so unwinding through them is safe.
func RunOp(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if IsCrash(r) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

// cellState is the tracked persistence state of one cell that has been
// written since construction (or the last PersistAll): a monotonically
// increasing write version plus the newest (version, value) pair known to
// have reached persistent memory.
//
// Versioning matters for correctness of the simulation itself: a fence
// persists the value each line held when it was *flushed*, but persistence
// can never move backwards — on real hardware, once a newer value has been
// written back, a stale earlier writeback cannot resurrect an older value
// (clwb writes current line content; coherence orders the writebacks).
// Without the version guard, a thread fencing a stale capture after
// another thread persisted a newer value would regress the cell and
// silently "lose" a completed, correctly-persisted operation.
type cellState struct {
	curVer       uint64
	persistedVer uint64
	persistedVal uint64
}

// model is the tracked write-back state.
type model struct {
	mu   sync.Mutex
	base map[*Cell]*cellState
}

func newModel() *model {
	return &model{base: make(map[*Cell]*cellState)}
}

// state returns the cell's tracked state, creating it with the current
// volatile value as the persisted baseline (version 0) on first write.
// Caller holds m.mu.
func (m *model) state(c *Cell) *cellState {
	st := m.base[c]
	if st == nil {
		st = &cellState{persistedVal: c.v.Load()}
		m.base[c] = st
	}
	return st
}

// store bumps the cell's write version and performs the volatile write.
func (m *model) store(c *Cell, v uint64) {
	m.mu.Lock()
	st := m.state(c)
	st.curVer++
	c.v.Store(v)
	m.mu.Unlock()
}

func (m *model) cas(c *Cell, old, new uint64) bool {
	m.mu.Lock()
	cur := c.v.Load()
	if cur != old {
		m.mu.Unlock()
		return false
	}
	st := m.state(c)
	st.curVer++
	c.v.Store(new)
	m.mu.Unlock()
	return true
}

// capture records a flush: the cell's current (version, value) pair, read
// consistently under the model lock. Never-written cells need no entry —
// their construction value is persisted by definition.
func (m *model) capture(c *Cell) (flushEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.base[c]
	if st == nil {
		return flushEntry{}, false
	}
	return flushEntry{c: c, v: c.v.Load(), ver: st.curVer}, true
}

// fence persists every flushed entry, monotonically: an entry only
// advances a cell's persisted state if it captured a newer write.
func (m *model) fence(entries []flushEntry) {
	if len(entries) == 0 {
		return
	}
	m.mu.Lock()
	for _, e := range entries {
		st := m.base[e.c]
		if st == nil {
			continue // PersistAll intervened: already fully persistent
		}
		if e.ver > st.persistedVer {
			st.persistedVer = e.ver
			st.persistedVal = e.v
		}
	}
	m.mu.Unlock()
}

// Crash simulates a power failure on a tracked memory:
//
//  1. The crash flag is raised; from now on every access by any thread
//     panics with the crash sentinel, stopping workers mid-operation.
//     Callers must wait for all workers to have stopped before step 2
//     (Crash does not know about the caller's goroutines).
//  2. Every dirty cell is rolled back to its persisted value — except that,
//     with probability evictProb each, dirty cells are "evicted": hardware
//     caches may write a line back at any time without being asked, so a
//     crash may persist writes the program never flushed.
//  3. All thread flush sets are discarded (they were in the volatile CPU).
//
// After Crash returns, the memory is still in the crashed state; call
// Restart before running recovery code.
func (m *Memory) Crash() {
	if m.model == nil {
		panic("pmem: Crash requires ModeTracked")
	}
	m.crashed.Store(true)
}

// FinishCrash performs the rollback of step 2-3 above. It must be called
// after all worker goroutines have observably stopped (e.g. via WaitGroup).
// Splitting Crash/FinishCrash keeps the stop-the-world handshake explicit.
func (m *Memory) FinishCrash(evictProb float64, seed int64) {
	if m.model == nil {
		panic("pmem: FinishCrash requires ModeTracked")
	}
	if !m.crashed.Load() {
		panic("pmem: FinishCrash without Crash")
	}
	rng := rand.New(rand.NewSource(seed))
	mo := m.model
	mo.mu.Lock()
	for c, st := range mo.base {
		if st.persistedVer == st.curVer {
			continue // fully persistent: volatile == persisted
		}
		if evictProb > 0 && rng.Float64() < evictProb {
			continue // line was evicted: volatile value survived
		}
		c.v.Store(st.persistedVal)
	}
	mo.base = make(map[*Cell]*cellState)
	mo.mu.Unlock()
	for _, t := range m.Threads() {
		t.flushSet = t.flushSet[:0]
		t.unfenced = 0
		t.batchDepth = 0
		t.pendingCommit = false
	}
}

// Restart lowers the crash flag so recovery code (and new workers) can run.
func (m *Memory) Restart() {
	m.crashed.Store(false)
}

// Crashed reports whether the crash flag is raised.
func (m *Memory) Crashed() bool { return m.crashed.Load() }

// PersistAll declares the current volatile contents fully persisted. Use it
// after constructing a data structure's initial state, mirroring the paper's
// assumption that the initial structure resides in NVRAM before operations
// begin.
func (m *Memory) PersistAll() {
	if m.model == nil {
		return
	}
	m.model.mu.Lock()
	m.model.base = make(map[*Cell]*cellState)
	m.model.mu.Unlock()
	for _, t := range m.Threads() {
		t.flushSet = t.flushSet[:0]
		t.unfenced = 0
	}
	// Batch state is deliberately left alone: PersistAll may run while a
	// quiescent batch is open, and an empty flush set makes EndBatch cheap.
}

// DirtyCells reports how many cells are currently unpersisted (test hook).
func (m *Memory) DirtyCells() int {
	if m.model == nil {
		return 0
	}
	m.model.mu.Lock()
	defer m.model.mu.Unlock()
	n := 0
	for _, st := range m.model.base {
		if st.persistedVer != st.curVer {
			n++
		}
	}
	return n
}

// PersistedValue returns the value that would survive a crash for c right
// now (test hook).
func (m *Memory) PersistedValue(c *Cell) uint64 {
	if m.model == nil {
		return c.raw()
	}
	m.model.mu.Lock()
	defer m.model.mu.Unlock()
	if st, ok := m.model.base[c]; ok {
		return st.persistedVal
	}
	return c.raw()
}

func (m *Memory) checkCrash() {
	if m.crashed.Load() {
		panic(errCrashed{})
	}
}

package hashtable

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newTable(pol persist.Policy, buckets int) (*Table, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	h := New(mem, pol, buckets)
	return h, mem.NewThread()
}

func TestBasicOps(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			h, th := newTable(pol, 16)
			for k := uint64(1); k <= 100; k++ {
				if !h.Insert(th, k, k*2) {
					t.Fatalf("insert %d failed", k)
				}
			}
			for k := uint64(1); k <= 100; k++ {
				if v, ok := h.Find(th, k); !ok || v != k*2 {
					t.Fatalf("Find(%d) = %d,%v", k, v, ok)
				}
				if h.Insert(th, k, 0) {
					t.Fatalf("duplicate insert %d", k)
				}
			}
			for k := uint64(1); k <= 100; k += 2 {
				if !h.Delete(th, k) {
					t.Fatalf("delete %d failed", k)
				}
			}
			for k := uint64(1); k <= 100; k++ {
				_, ok := h.Find(th, k)
				if want := k%2 == 0; ok != want {
					t.Fatalf("Find(%d) = %v, want %v", k, ok, want)
				}
			}
			if err := h.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCollisionsShareBucket(t *testing.T) {
	h, th := newTable(persist.NVTraverse{}, 4)
	// Keys 1, 5, 9, 13 collide in bucket 1.
	for _, k := range []uint64{1, 5, 9, 13} {
		if !h.Insert(th, k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for _, k := range []uint64{1, 5, 9, 13} {
		if _, ok := h.Find(th, k); !ok {
			t.Fatalf("collided key %d lost", k)
		}
	}
	if !h.Delete(th, 5) || !h.Delete(th, 13) {
		t.Fatalf("delete of collided keys failed")
	}
	for _, k := range []uint64{1, 9} {
		if _, ok := h.Find(th, k); !ok {
			t.Fatalf("survivor %d lost after collided deletes", k)
		}
	}
}

func TestSequentialOracle(t *testing.T) {
	h, th := newTable(persist.NVTraverse{}, 32)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8000; i++ {
		k := uint64(rng.Intn(500)) + 1
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, exp := oracle[k]
			if h.Insert(th, k, v) == exp {
				t.Fatalf("op %d: Insert(%d) disagreed with oracle", i, k)
			}
			if !exp {
				oracle[k] = v
			}
		case 1:
			_, exp := oracle[k]
			if h.Delete(th, k) != exp {
				t.Fatalf("op %d: Delete(%d) disagreed with oracle", i, k)
			}
			delete(oracle, k)
		default:
			ev, exp := oracle[k]
			gv, ok := h.Find(th, k)
			if ok != exp || (ok && gv != ev) {
				t.Fatalf("op %d: Find(%d) disagreed with oracle", i, k)
			}
		}
	}
	if got := h.Contents(th); len(got) != len(oracle) {
		t.Fatalf("size %d, oracle %d", len(got), len(oracle))
	}
}

func TestQuickOracle(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		h, th := newTable(persist.LinkAndPersist{}, 8)
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key%61) + 1
			switch o.Kind % 3 {
			case 0:
				if h.Insert(th, k, k) == oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if h.Delete(th, k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if _, ok := h.Find(th, k); ok != oracle[k] {
					return false
				}
			}
		}
		return h.Validate(th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	h := New(mem, persist.NVTraverse{}, 64)
	const threads = 8
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		wg.Add(1)
		go func(th *pmem.Thread) {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				k := th.Rand()%512 + 1
				switch th.Rand() % 3 {
				case 0:
					h.Insert(th, k, k)
				case 1:
					h.Delete(th, k)
				default:
					h.Find(th, k)
				}
			}
		}(th)
	}
	wg.Wait()
	th := mem.NewThread()
	if err := h.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestFlushesIndependentOfTableSize(t *testing.T) {
	// With load factor ~1 the traversal is O(1); NVTraverse lookups flush
	// O(1) cells regardless of total keys.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	h := New(mem, persist.NVTraverse{}, 4096)
	th := mem.NewThread()
	for k := uint64(1); k <= 4096; k++ {
		h.Insert(th, k, k)
	}
	before := mem.Stats()
	h.Find(th, 4000)
	d := mem.Stats().Sub(before)
	if d.Flushes > 5 {
		t.Fatalf("lookup flushed %d cells", d.Flushes)
	}
}

func TestRecoverAllBuckets(t *testing.T) {
	mem := pmem.NewTracked()
	h := New(mem, persist.NVTraverse{}, 8)
	th := mem.NewThread()
	for k := uint64(1); k <= 64; k++ {
		h.Insert(th, k, k)
	}
	// Simulate lost physical deletes in several buckets by marking nodes.
	marked := 0
	for k := uint64(1); k <= 64; k += 9 {
		if h.bucket(k).DebugMark(th, k) {
			marked++
		}
	}
	if h.CountMarked(th) != marked || marked == 0 {
		t.Fatalf("marked %d, counted %d", marked, h.CountMarked(th))
	}
	h.Recover(th)
	if h.CountMarked(th) != 0 {
		t.Fatalf("marks survive recovery")
	}
	if got := len(h.Contents(th)); got != 64-marked {
		t.Fatalf("size %d after recovery, want %d", got, 64-marked)
	}
}

func TestBadBucketCountPanics(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	defer func() {
		if recover() == nil {
			t.Fatalf("nbuckets=0 accepted")
		}
	}()
	New(mem, persist.None{}, 0)
}

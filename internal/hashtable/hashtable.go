// Package hashtable implements the hash table of the paper's evaluation
// (David et al.'s design): a fixed array of buckets, each bucket a Harris
// linked list. The findEntry method hashes the key to a bucket head — the
// auxiliary entry points of Property 2 — and the rest of the operation is
// exactly the list's traverse/critical pair on that bucket.
//
// Like the paper's own implementation, the bucket index is key mod buckets
// (the paper notes David et al. use a power-of-two bitmask instead, which
// is why they win the 0%-update hash workload; we keep the paper's modulo).
package hashtable

import (
	"repro/internal/kv"
	"repro/internal/list"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Table is a fixed-size hash table of Harris lists sharing one substrate.
type Table struct {
	sh      *list.Shared
	buckets []list.List
}

// New creates a table with nbuckets buckets. A common choice is one bucket
// per expected key (load factor 1), matching the evaluation setup.
func New(mem *pmem.Memory, pol persist.Policy, nbuckets int) *Table {
	if nbuckets <= 0 {
		panic("hashtable: nbuckets must be positive")
	}
	sh := list.NewShared(mem, pol)
	t := mem.NewThread()
	tab := &Table{sh: sh, buckets: make([]list.List, nbuckets)}
	for i := range tab.buckets {
		tab.buckets[i] = *list.NewOn(sh, t)
	}
	return tab
}

// Shared exposes the substrate.
func (h *Table) Shared() *list.Shared { return h.sh }

// Buckets reports the bucket count.
func (h *Table) Buckets() int { return len(h.buckets) }

func (h *Table) bucket(key uint64) *list.List {
	return &h.buckets[key%uint64(len(h.buckets))]
}

// Insert adds key with value; false if present.
func (h *Table) Insert(t *pmem.Thread, key, value uint64) bool {
	return h.bucket(key).Insert(t, key, value)
}

// Delete removes key; false if absent.
func (h *Table) Delete(t *pmem.Thread, key uint64) bool {
	return h.bucket(key).Delete(t, key)
}

// Find reports membership and value.
func (h *Table) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	return h.bucket(key).Find(t, key)
}

// Update atomically read-modify-writes key's value in its bucket list.
func (h *Table) Update(t *pmem.Thread, key uint64, fn func(old uint64) uint64) (uint64, bool) {
	return h.bucket(key).Update(t, key, fn)
}

// GetOrInsert atomically returns the present value of key or inserts value.
func (h *Table) GetOrInsert(t *pmem.Thread, key, value uint64) (uint64, bool) {
	return h.bucket(key).GetOrInsert(t, key, value)
}

// RangeScan is unsupported: the hashed key space has no order to scan in.
// Callers that need ordered iteration pick an ordered kind (list, skiplist,
// ellenbst, nmbst).
func (h *Table) RangeScan(_ *pmem.Thread, _, _ uint64, _ func(key, value uint64) bool) error {
	return kv.ErrUnordered
}

// Recover runs the disconnect function on every bucket (paper §4 recovery).
func (h *Table) Recover(t *pmem.Thread) {
	for i := range h.buckets {
		h.buckets[i].Recover(t)
	}
}

// Contents returns all unmarked keys (quiescent use only).
func (h *Table) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	for i := range h.buckets {
		out = append(out, h.buckets[i].Contents(t)...)
	}
	return out
}

// Validate checks every bucket's invariants (quiescent use only).
func (h *Table) Validate(t *pmem.Thread) error {
	for i := range h.buckets {
		if err := h.buckets[i].Validate(t); err != nil {
			return err
		}
	}
	return nil
}

// CountMarked sums marked reachable nodes over buckets (0 after recovery).
func (h *Table) CountMarked(t *pmem.Thread) int {
	n := 0
	for i := range h.buckets {
		n += h.buckets[i].CountMarked(t)
	}
	return n
}

// LiveHandles accumulates reachable handles for the post-crash sweep.
func (h *Table) LiveHandles(t *pmem.Thread, live map[uint64]bool) {
	for i := range h.buckets {
		h.buckets[i].LiveHandles(t, live)
	}
}

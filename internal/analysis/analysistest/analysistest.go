// Package analysistest runs nvcheck analyzers over fixture packages and
// checks their diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest (which this
// module deliberately does not depend on — see internal/analysis/nvcheck).
//
// A fixture lives in testdata/src/<name>/ relative to the test's package
// directory and is an ordinary Go package that imports the module's real
// persistence packages. Expected diagnostics are trailing comments:
//
//	t.Flush(&n.Next) // want "persistence effect inside the traversal phase"
//
// Each quoted string is a regular expression that must match the message of
// a diagnostic reported on that line; several strings expect several
// diagnostics. The test fails on any unmatched expectation and on any
// diagnostic with no expectation.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis/nvcheck"
)

// The export set (compiler-produced type information for the module's
// persistence packages and their dependencies) is built once per test
// binary: every fixture type-checks against the same snapshot.
var (
	loadOnce sync.Once
	loaded   *nvcheck.LoadResult
	loadErr  error
)

func load(t *testing.T) *nvcheck.LoadResult {
	t.Helper()
	loadOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loadErr = err
			return
		}
		root, err := nvcheck.ModuleRoot(wd)
		if err != nil {
			loadErr = err
			return
		}
		loaded, loadErr = nvcheck.Load(root,
			"./internal/pmem", "./internal/persist", "./internal/arena")
	})
	if loadErr != nil {
		t.Fatalf("analysistest: loading export set: %v", loadErr)
	}
	return loaded
}

// want is one expectation: a pattern that must match a diagnostic reported
// at file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run type-checks testdata/src/<fixture> (relative to the caller's package
// directory), applies the analyzers through the same nvcheck.Run pipeline
// nvlint uses — ignore directives in fixtures are honored, and malformed
// ones reported — and verifies the diagnostics against the fixture's
// `// want "regex"` comments.
func Run(t *testing.T, fixture string, analyzers ...*nvcheck.Analyzer) {
	t.Helper()
	res := load(t)
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := res.LoadDir(fixture, dir)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", fixture, err)
	}

	out := nvcheck.Run([]*nvcheck.Package{pkg}, analyzers)
	wants := collectWants(t, pkg)

	matched := map[*want]bool{}
	for _, d := range out.Diagnostics {
		w := matchWant(wants, matched, d)
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Rule, d.Message)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// matchWant finds an unmatched expectation on the diagnostic's line whose
// pattern matches its message.
func matchWant(wants []*want, matched map[*want]bool, d nvcheck.Diagnostic) *want {
	for _, w := range wants {
		if matched[w] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// wantMarker locates the expectation list inside a comment. Matching "//"
// again lets a want ride at the end of another directive's comment (used to
// test the ignore grammar itself).
var wantMarker = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantPattern matches one Go-quoted expectation string.
var wantPattern = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, pkg *nvcheck.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantPattern.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern", pos)
				}
				for _, q := range quoted {
					expr, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

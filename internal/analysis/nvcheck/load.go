package nvcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages without golang.org/x/tools: `go list
// -export -deps -json` makes the toolchain compile every dependency into
// build-cache export data, and go/importer's gc importer reads that export
// data through a lookup function. Only the packages under analysis are
// parsed from source; everything they import — stdlib included — comes from
// the compiler's own export files, so the loader works offline, agrees with
// the build about types, and needs no third-party module.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// goList runs `go list -export -deps -json` for patterns in dir and returns
// the decoded packages.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Module",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// An ExportSet maps import paths to compiler export data files, and turns
// into a types.Importer for source type-checking.
type ExportSet map[string]string

// Importer returns a gc-export-data importer over the set.
func (e ExportSet) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := e[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// LoadResult is what Load hands to the runner: the target packages plus the
// export set they were checked against (fixture loading reuses it).
type LoadResult struct {
	Packages []*Package
	Exports  ExportSet
	Fset     *token.FileSet
}

// Load type-checks the packages matched by patterns (relative to dir, which
// must lie inside the module). Only packages of the main module become
// targets; dependencies contribute export data. Test files are not
// analyzed: the protocol code the rules police is production code, and test
// helpers drive persistence hooks in deliberately odd orders.
func Load(dir string, patterns ...string) (*LoadResult, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, p := range listed {
		if !p.Standard && p.Module != nil {
			modPath = p.Module.Path
			break
		}
	}
	exports := ExportSet{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exports.Importer(fset)
	res := &LoadResult{Exports: exports, Fset: fset}
	for _, p := range listed {
		if p.Module == nil || p.Module.Path != modPath || len(p.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, gf := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, gf))
		}
		pkg, err := checkFiles(fset, imp, p.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		res.Packages = append(res.Packages, pkg)
	}
	sort.Slice(res.Packages, func(i, j int) bool {
		return res.Packages[i].Path < res.Packages[j].Path
	})
	return res, nil
}

// LoadDir type-checks a single directory of Go files (an analysistest
// fixture) against the export set, under the given import path.
func (r *LoadResult) LoadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("nvcheck: no Go files in %s", dir)
	}
	sort.Strings(paths)
	return checkFiles(r.Fset, r.Exports.Importer(r.Fset), importPath, paths)
}

// checkFiles parses and type-checks one package from explicit file paths.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("nvcheck: no go.mod above %s", abs)
		}
		d = parent
	}
}

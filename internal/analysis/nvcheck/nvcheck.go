// Package nvcheck statically enforces the NVTraverse persistence discipline
// over this repository: the protocol that package persist documents in prose
// — nothing persists during a traversal, ensureReachable+makePersistent at
// the destination, flush-after-write and fence-before-return in the critical
// section, whole-line node layouts — becomes four analyzers that flag
// violations at the call site, before any crash-torture run has a chance to
// miss them.
//
// The four rules:
//
//	traversepure — no persistence effect may execute inside a traversal
//	               phase: between a Policy.TraverseRead call (or from the
//	               top of a //nvcheck:traverse function) and the closing
//	               Policy.PostTraverse, code must not reach
//	               pmem.Thread.Flush/Fence/CommitFence/Store/CAS or any
//	               critical-section policy hook ("no persisting is done
//	               during the traverse method", paper §4). Entering the
//	               critical section (BeforeCAS, Store, CAS) while the
//	               traversal is still open is the shape of the seed's
//	               missing-ensureReachable bug: the destination was never
//	               persisted before the link CAS depended on it.
//	fencereturn  — every return path of an exported mutating operation of a
//	               protocol package must pass through Policy.BeforeReturn /
//	               Thread.CommitFence / Thread.EndBatch / Thread.Fence
//	               ("fence before every return statement", Protocol 2).
//	writehook    — every Thread.Store/CAS in a critical section must be
//	               followed on its success path by the matching write hook
//	               (Wrote / WroteData / InitWrite) for the same cell, and
//	               every CAS must be preceded by a dominating
//	               Policy.BeforeCAS ("fence before every write/CAS",
//	               Protocol 2). This is the exact class of bug behind the
//	               LinkAndPersist.WroteData eager-flush caveat.
//	linelayout   — every arena-allocated node struct must be padded to a
//	               whole positive multiple of 64 bytes and no pmem.Cell
//	               field may straddle a line boundary: the persistence
//	               model is line-granular, so two nodes sharing a line
//	               would share a crash fate.
//
// Scope and soundness. The analyzers are per-package and largely
// per-function-body: calls through the persist.Policy interface are opaque
// by design (the policy decides what a hook does — Izraelevitz flushing
// inside TraverseRead is the algorithm, not a bug), cross-package calls are
// not followed (every Store/CAS on simulated memory lives in a structure
// package, so the rules fire where the mutation is), and dominance is
// approximated by preceding-sibling statements, which is exact for the
// goto-free straight-line protocol code this repository writes. Packages
// pmem and persist are exempt from rules 1–3: they implement the layer the
// rules police. See DESIGN.md "Static persistence checking" for the full
// decidability discussion.
//
// Violations that are deliberate carry an inline justification:
//
//	//nvcheck:ignore <rule> -- <reason>
//
// placed on, or on the line directly above, the flagged line. The reason is
// mandatory; an ignore without one is itself reported.
package nvcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one nvcheck rule. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the rules can migrate to the upstream
// framework wholesale if this module ever takes the dependency; the runner
// here is self-contained because the build must stay dependency-free.
type Analyzer struct {
	// Name is the rule name used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports this rule's findings for one package.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported protocol violation.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// A Package is one parsed, type-checked package under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// All returns the nvcheck analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		TraversePure,
		FenceReturn,
		WriteHook,
		LineLayout,
	}
}

// ByName resolves rule names to analyzers ("all" or empty selects All).
func ByName(names ...string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	var out []*Analyzer
	for _, n := range names {
		if n == "all" {
			return All(), nil
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("nvcheck: unknown rule %q", n)
		}
	}
	return out, nil
}

package nvcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lineSize mirrors pmem.LineSize: the persistence model's 64-byte
// cache-line granularity.
const lineSize = 64

// LineLayout enforces the node-layout invariant the crash model depends
// on: every struct type handed to arena.New[T] (or naming an
// arena.Arena[T]) must occupy a positive whole multiple of 64 bytes —
// arena chunks are carved line-aligned, so a padded node never shares a
// line, and two nodes sharing a line would share a crash fate (a flush of
// one would, unrealistically, persist the other) — and no pmem.Cell field
// of the node may straddle a line boundary (a straddling cell would need
// two flushes and break whole-line crash atomicity).
//
// Sizes are computed with the gc compiler's 64-bit layout (8-byte words,
// 8-byte max alignment), the layout every supported platform of this
// module uses. The check replaces the hand-maintained size table that
// arena/line_test.go used to carry: a new node type is covered the moment
// an arena of it is instantiated anywhere in the package.
var LineLayout = &Analyzer{
	Name: "linelayout",
	Doc:  "arena node structs must fill whole 64-byte lines; no cell may straddle a line",
	Run:  runLineLayout,
}

const arenaPath = "repro/internal/arena"

// gcSizes is the gc amd64/arm64 layout.
var gcSizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}

func runLineLayout(pass *Pass) {
	pkg := pass.Pkg
	// One report per node type, at its first instantiation site.
	seen := map[types.Type]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			inst, ok := pkg.Info.Instances[id]
			if !ok || inst.TypeArgs.Len() != 1 {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != arenaPath {
				return true
			}
			if obj.Name() != "New" && obj.Name() != "Arena" {
				return true
			}
			nodeT := inst.TypeArgs.At(0)
			if seen[nodeT] {
				return true
			}
			seen[nodeT] = true
			checkNodeLayout(pass, id.Pos(), nodeT)
			return true
		})
	}
}

func checkNodeLayout(pass *Pass, pos token.Pos, nodeT types.Type) {
	st, ok := nodeT.Underlying().(*types.Struct)
	if !ok {
		return // arena of a non-struct: nothing to lay out
	}
	if hasGCPointers(nodeT) {
		// The arena falls back to typed allocation for pointer-bearing
		// nodes and reports !LineAligned(); the layout contract does not
		// apply. No durable structure uses such nodes.
		return
	}
	name := nodeT.String()
	size := gcSizes.Sizeof(st)
	if size <= 0 || size%lineSize != 0 {
		pass.Reportf(pos,
			"arena node %s is %d bytes; durable nodes must fill a positive whole number of %d-byte lines (pad the struct) so no two nodes share a crash fate",
			name, size, lineSize)
		return
	}
	var walkCells func(prefix string, base int64, st *types.Struct)
	walkCells = func(prefix string, base int64, st *types.Struct) {
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := gcSizes.Offsetsof(fields)
		for i, fld := range fields {
			off := base + offsets[i]
			t := fld.Type()
			switch {
			case isPmemCell(t):
				checkCellSpan(pass, pos, name, prefix+fld.Name(), off, gcSizes.Sizeof(t))
			case isCellArray(t):
				arr := t.Underlying().(*types.Array)
				elem := gcSizes.Sizeof(arr.Elem())
				for j := int64(0); j < arr.Len(); j++ {
					checkCellSpan(pass, pos, name,
						fmt.Sprintf("%s%s[%d]", prefix, fld.Name(), j), off+j*elem, elem)
				}
			default:
				if inner, ok := t.Underlying().(*types.Struct); ok {
					walkCells(prefix+fld.Name()+".", off, inner)
				}
			}
		}
	}
	walkCells("", 0, st)
}

// checkCellSpan reports a cell whose bytes cross a line boundary.
func checkCellSpan(pass *Pass, pos token.Pos, node, field string, off, size int64) {
	if size <= 0 {
		return
	}
	if off/lineSize != (off+size-1)/lineSize {
		pass.Reportf(pos,
			"field %s of arena node %s spans bytes %d..%d, straddling a %d-byte line boundary: a flushed word must live in exactly one line",
			field, node, off, off+size-1, lineSize)
	}
}

func isPmemCell(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Cell" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pmemPath
}

func isCellArray(t types.Type) bool {
	arr, ok := t.Underlying().(*types.Array)
	return ok && isPmemCell(arr.Elem())
}

// hasGCPointers reports whether the type contains Go pointers (which force
// the arena's typed-allocation fallback).
func hasGCPointers(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasGCPointers(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return hasGCPointers(u.Elem())
	}
	return false
}

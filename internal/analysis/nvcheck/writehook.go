package nvcheck

import (
	"go/ast"
	"go/types"
)

// WriteHook enforces Protocol 2's write discipline inside critical
// sections, per function body: in any function that invokes persistence
// hooks (protocol code), every Thread.Store and Thread.CAS on a shared cell
// must be followed — on the path where the write took effect — by the
// matching policy hook for the same cell (Wrote for link words, WroteData
// for data words, InitWrite for unpublished fields), and every Thread.CAS
// must be preceded by a dominating Policy.BeforeCAS (the flush-before-CAS /
// fence-before-CAS point). A missed WroteData is the exact bug class behind
// the LinkAndPersist eager-flush caveat: the write lands, no flush covers
// it, and the commit fence acknowledges an operation whose value is not
// durable.
//
// The check is per-function-body, not interprocedural: every Store/CAS on
// simulated memory in this repository sits in the same function as its
// hook (the protocol demands adjacency — the hook takes the same cell), so
// a body-local search is sound here; helpers that mutate without any hook
// in scope are quiescent-construction code and are out of scope by the
// "invokes hooks" gate. Cells are matched syntactically (the printed
// expression), which is exact for the idiomatic `t.CAS(&n.Next, ...)` /
// `pol.Wrote(t, &n.Next)` adjacency the code base uses.
var WriteHook = &Analyzer{
	Name: "writehook",
	Doc:  "every Store/CAS in a critical section needs its matching write hook and a preceding BeforeCAS (Protocol 2)",
	Run:  runWriteHook,
}

func runWriteHook(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == pmemPath || pkg.Path == persistPath {
		return
	}
	for fn, ff := range packageFacts(pkg) {
		hasHook := false
		for k := range ff.kinds {
			if k >= hookTraverseRead && k <= hookBeforeReturn {
				hasHook = true
				break
			}
		}
		if !hasHook {
			continue
		}
		checkWriteHooks(pass, fn, ff.decl)
	}
}

func checkWriteHooks(pass *Pass, fn *types.Func, fd *ast.FuncDecl) {
	pkg := pass.Pkg

	// Paths from the body root to each node, so we can walk outward from a
	// write to its following/preceding siblings.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		k := classifyCall(pkg.Info, call)
		if k != threadStore && k != threadCAS {
			return true
		}
		cell := cellArg(call)
		if cell == "" {
			return true
		}
		if !hookFollows(pkg, parents, call, cell) {
			verb := "Store"
			if k == threadCAS {
				verb = "CAS"
			}
			pass.Reportf(call.Pos(),
				"%s of %s in %s has no matching write hook on its success path: need Policy.Wrote / WroteData / InitWrite for the same cell after the write (Protocol 2; the LinkAndPersist.WroteData caveat is this bug)",
				verb, cell, fn.Name())
		}
		if k == threadCAS && !beforeCASDominates(pkg, parents, call) {
			pass.Reportf(call.Pos(),
				"CAS of %s in %s without a dominating Policy.BeforeCAS: the pre-CAS fence orders the new node's flushed fields before the link publishes them (Protocol 2)",
				cell, fn.Name())
		}
		return true
	})
}

// cellArg returns the printed first argument of a Store/CAS call — the
// *pmem.Cell being written.
func cellArg(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	return types.ExprString(call.Args[0])
}

// enclosingStmt walks up from n to the statement that is a direct child of
// a block (or case body), returning it and its parent list context.
func enclosingStmt(parents map[ast.Node]ast.Node, n ast.Node) (ast.Stmt, ast.Node) {
	cur := n
	for {
		p := parents[cur]
		if p == nil {
			return nil, nil
		}
		if s, ok := cur.(ast.Stmt); ok {
			switch p.(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return s, p
			}
		}
		cur = p
	}
}

// stmtList returns the statement list a block-like node holds.
func stmtList(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

// callsHookOn reports whether the subtree contains a write hook call whose
// cell argument (hooks take (t, cell)) prints equal to cell.
func callsHookOn(pkg *Package, n ast.Node, cell string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isWriteHook(classifyCall(pkg.Info, call)) {
			return true
		}
		if len(call.Args) >= 2 && types.ExprString(call.Args[1]) == cell {
			found = true
			return false
		}
		// PostTraverse-style slice hooks don't occur for writes; single
		// cells only.
		return true
	})
	return found
}

// hookFollows reports whether a matching write hook appears after the
// write, scanning forward through following siblings and out through
// enclosing blocks — and, when the write sits in an if-condition or its
// statement is an assignment consumed by an immediate if, inside that if's
// body (the CAS success branch).
func hookFollows(pkg *Package, parents map[ast.Node]ast.Node, call *ast.CallExpr, cell string) bool {
	// If the call is syntactically inside an if-statement's condition, a
	// hook anywhere in the then-body counts (success-branch placement).
	for cur := ast.Node(call); cur != nil; cur = parents[cur] {
		ifst, ok := parents[cur].(*ast.IfStmt)
		if ok && cur == ast.Node(ifst.Cond) {
			if callsHookOn(pkg, ifst.Body, cell) {
				return true
			}
		}
		if _, isStmt := cur.(ast.Stmt); isStmt {
			break
		}
	}

	st, _ := enclosingStmt(parents, call)
	for st != nil {
		parent := parents[st]
		list := stmtList(parent)
		idx := -1
		for i, s := range list {
			if s == st {
				idx = i
				break
			}
		}
		if idx >= 0 {
			for _, s := range list[idx+1:] {
				if callsHookOn(pkg, s, cell) {
					return true
				}
				if terminal(s) {
					return false // path ends before any hook
				}
			}
		}
		// Continue scanning after the enclosing construct.
		next, _ := enclosingStmt(parents, parent)
		if next == st {
			break
		}
		st = next
	}
	return false
}

// terminal reports whether s unconditionally leaves the enclosing list
// (return/branch), ending the forward scan.
func terminal(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// beforeCASDominates reports whether a Policy.BeforeCAS call dominates the
// CAS: a preceding sibling (here or in an enclosing block) that always
// calls it.
func beforeCASDominates(pkg *Package, parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	isBeforeCAS := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && classifyCall(pkg.Info, c) == hookBeforeCAS {
				found = true
				return false
			}
			return true
		})
		return found
	}
	st, _ := enclosingStmt(parents, call)
	for st != nil {
		parent := parents[st]
		list := stmtList(parent)
		for i, s := range list {
			if s == st {
				break
			}
			_ = i
			if isBeforeCAS(s) {
				return true
			}
		}
		next, _ := enclosingStmt(parents, parent)
		if next == st {
			break
		}
		st = next
	}
	return false
}

package nvcheck

import (
	"go/ast"
	"go/types"
)

// Import paths of the persistence layer. Rules 1–3 exempt these packages:
// they implement the hooks and instructions the rules police.
const (
	pmemPath    = "repro/internal/pmem"
	persistPath = "repro/internal/persist"
)

// callKind classifies the calls the rules care about.
type callKind int

const (
	callOther callKind = iota

	// pmem.Thread methods.
	threadFlush
	threadFence
	threadCommitFence
	threadStore
	threadCAS
	threadLoad
	threadBeginBatch
	threadEndBatch

	// persist.Policy hooks (through the interface or a concrete policy).
	hookTraverseRead
	hookPostTraverse
	hookRead
	hookReadData
	hookInitWrite
	hookWrote
	hookWroteData
	hookBeforeCAS
	hookBeforeReturn
)

// isWriteHook reports whether k is a hook that records a completed shared
// write (the "matching policy hook" of rule 3's post-write check).
func isWriteHook(k callKind) bool {
	return k == hookWrote || k == hookWroteData || k == hookInitWrite
}

// isFence reports whether k satisfies Protocol 2's fence-before-return:
// the commit hooks, or a direct fence (strictly stronger).
func isFence(k callKind) bool {
	switch k {
	case hookBeforeReturn, threadCommitFence, threadEndBatch, threadFence:
		return true
	}
	return false
}

// bannedInTraverse reports whether k is a persistence effect or shared
// mutation that must not appear inside a traversal phase. TraverseRead and
// PostTraverse delimit the phase; ReadData is permitted because scans
// report values mid-walk — the flush it may issue is fenced by the closing
// PostTraverse, preserving "one fence at the destination".
func bannedInTraverse(k callKind) bool {
	switch k {
	case threadFlush, threadFence, threadCommitFence, threadStore, threadCAS,
		hookRead, hookInitWrite, hookWrote, hookWroteData,
		hookBeforeCAS, hookBeforeReturn:
		return true
	}
	return false
}

var threadKinds = map[string]callKind{
	"Flush":       threadFlush,
	"Fence":       threadFence,
	"CommitFence": threadCommitFence,
	"Store":       threadStore,
	"CAS":         threadCAS,
	"Load":        threadLoad,
	"BeginBatch":  threadBeginBatch,
	"EndBatch":    threadEndBatch,
}

var hookKinds = map[string]callKind{
	"TraverseRead": hookTraverseRead,
	"PostTraverse": hookPostTraverse,
	"Read":         hookRead,
	"ReadData":     hookReadData,
	"InitWrite":    hookInitWrite,
	"Wrote":        hookWrote,
	"WroteData":    hookWroteData,
	"BeforeCAS":    hookBeforeCAS,
	"BeforeReturn": hookBeforeReturn,
}

// classifyCall resolves a call expression against the persistence layer.
func classifyCall(info *types.Info, call *ast.CallExpr) callKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return callOther
	}
	var fn *types.Func
	if s, ok := info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else if obj, ok := info.Uses[sel.Sel]; ok {
		// Package-qualified call (persist.SomeFunc) — not a method.
		fn, _ = obj.(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return callOther
	}
	switch fn.Pkg().Path() {
	case pmemPath:
		if recvNamed(fn) == "Thread" {
			if k, ok := threadKinds[fn.Name()]; ok {
				return k
			}
		}
	case persistPath:
		// Policy hooks, whether invoked through the Policy interface or on
		// a concrete policy value: both resolve to a *types.Func declared
		// in package persist.
		if k, ok := hookKinds[fn.Name()]; ok && fn.Signature().Recv() != nil {
			return k
		}
	}
	return callOther
}

// recvNamed returns the name of a method's receiver type, pointers
// stripped, or "".
func recvNamed(fn *types.Func) string {
	recv := fn.Signature().Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// localCallee resolves a call to a function or method declared in the
// package under analysis, for same-package interprocedural reasoning.
// Calls through interfaces (persist.Policy above all) return nil: dynamic
// dispatch is opaque by design.
func localCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[fun]; ok {
			if s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
				return nil
			}
			obj = s.Obj()
		} else {
			obj = pkg.Info.Uses[fun.Sel]
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pkg.Types {
		return nil
	}
	return fn
}

// funcDecls maps each declared function/method of the package to its AST.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// funcFacts summarizes one function body for the interprocedural bits of
// the rules: which call kinds appear directly, and which same-package
// functions it calls.
type funcFacts struct {
	decl    *ast.FuncDecl
	kinds   map[callKind]bool
	callees map[*types.Func]bool
}

// packageFacts computes funcFacts for every function in the package.
func packageFacts(pkg *Package) map[*types.Func]*funcFacts {
	decls := funcDecls(pkg)
	facts := make(map[*types.Func]*funcFacts, len(decls))
	for fn, fd := range decls {
		ff := &funcFacts{
			decl:    fd,
			kinds:   map[callKind]bool{},
			callees: map[*types.Func]bool{},
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if k := classifyCall(pkg.Info, call); k != callOther {
				ff.kinds[k] = true
			} else if callee := localCallee(pkg, call); callee != nil {
				ff.callees[callee] = true
			}
			return true
		})
		facts[fn] = ff
	}
	return facts
}

// reaches reports whether fn (transitively, through same-package calls)
// contains a call kind satisfying pred. Dynamic dispatch and cross-package
// calls are not followed.
func reaches(facts map[*types.Func]*funcFacts, fn *types.Func, pred func(callKind) bool) bool {
	seen := map[*types.Func]bool{}
	var walk func(f *types.Func) bool
	walk = func(f *types.Func) bool {
		if seen[f] {
			return false
		}
		seen[f] = true
		ff := facts[f]
		if ff == nil {
			return false
		}
		for k := range ff.kinds {
			if pred(k) {
				return true
			}
		}
		for c := range ff.callees {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(fn)
}

package nvcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// TraversePure enforces "no persisting is done during the traverse method"
// (paper §4). A traversal phase opens at a Policy.TraverseRead call (or at
// the top of a //nvcheck:traverse function) and closes at the next
// Policy.PostTraverse — Protocol 1's ensureReachable+makePersistent. While
// the phase is open, the function must not issue persistence instructions
// (Thread.Flush/Fence/CommitFence), mutate shared memory (Thread.Store/CAS),
// invoke critical-section hooks (Read/InitWrite/Wrote/WroteData/BeforeCAS/
// BeforeReturn), or call a same-package function that transitively does any
// of those. ReadData is permitted: scans report values mid-walk, and the
// flush it may issue is fenced by the closing PostTraverse.
//
// The phase is tracked in source order within each function body, which is
// exact for the loop-free spine of every traversal here and conservative
// for the retry loops (a violation inside the loop body is textually inside
// the open phase). A Store/CAS/BeforeCAS inside an open phase is exactly
// the seed's missing-ensureReachable shape: the critical section began
// before the traversal's destination was persisted.
var TraversePure = &Analyzer{
	Name: "traversepure",
	Doc:  "no persistence effects inside a traversal phase (paper §4, Protocol 1)",
	Run:  runTraversePure,
}

// traverseEvent is one interesting call, in source order.
type traverseEvent struct {
	pos  token.Pos
	kind callKind
	call *ast.CallExpr
	fn   *types.Func // same-package callee, when kind == callOther
}

func runTraversePure(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == pmemPath || pkg.Path == persistPath {
		return
	}
	facts := packageFacts(pkg)
	for fn, ff := range facts {
		checkTraverseFn(pass, facts, fn, ff)
	}
}

func checkTraverseFn(pass *Pass, facts map[*types.Func]*funcFacts, fn *types.Func, ff *funcFacts) {
	annotated := hasTraverseDirective(ff.decl)
	if !ff.kinds[hookTraverseRead] && !annotated {
		return
	}
	pkg := pass.Pkg

	var events []traverseEvent
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		k := classifyCall(pkg.Info, call)
		ev := traverseEvent{pos: call.Pos(), kind: k, call: call}
		if k == callOther {
			ev.fn = localCallee(pkg, call)
			if ev.fn == nil {
				return true
			}
		}
		events = append(events, ev)
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	open := annotated // an annotated traverse function is one whole phase
	for _, ev := range events {
		switch {
		case ev.kind == hookTraverseRead:
			open = true
		case ev.kind == hookPostTraverse:
			open = false
		case !open:
			// Before the phase opens (node init writes) or after it closed
			// (the critical section): out of scope.
		case ev.kind == callOther:
			// Same-package call inside the phase: flag it if its body
			// transitively performs a banned effect.
			if reaches(facts, ev.fn, bannedInTraverse) {
				pass.Reportf(ev.pos,
					"call to %s inside the traversal phase of %s: the callee persists or mutates shared memory (traversals must not persist; paper §4)",
					ev.fn.Name(), fn.Name())
			}
		case bannedInTraverse(ev.kind):
			msg := "persistence effect inside the traversal phase of %s: %s (traversals must not persist; paper §4)"
			if ev.kind == threadStore || ev.kind == threadCAS || ev.kind == hookBeforeCAS {
				msg = "critical-section operation inside the traversal phase of %s: %s — missing Policy.PostTraverse (ensureReachable+makePersistent) before the critical section?"
			}
			pass.Reportf(ev.pos, msg, fn.Name(), callLabel(pkg, ev.call))
		}
	}
}

// callLabel renders a call for diagnostics, e.g. "t.Flush" or "pol.Wrote".
func callLabel(pkg *Package, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel)
	}
	return types.ExprString(call.Fun)
}

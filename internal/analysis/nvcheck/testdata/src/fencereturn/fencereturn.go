// Package fencereturn is an analysistest fixture for the fencereturn rule:
// every return path of an exported mutating operation must fence (Protocol
// 2's "fence before every return statement").
package fencereturn

import (
	"repro/internal/persist"
	"repro/internal/pmem"
)

// InsertLeaky fences its failure path but returns straight out of the CAS
// success branch.
func InsertLeaky(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, v uint64) bool {
	old := t.Load(c)
	pol.Read(t, c)
	pol.BeforeCAS(t)
	if t.CAS(c, old, v) {
		pol.Wrote(t, c)
		return true // want "without a fence on this path"
	}
	pol.Wrote(t, c)
	pol.BeforeReturn(t)
	return false
}

// InsertFenced is the same operation with both paths fenced.
func InsertFenced(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, v uint64) bool {
	old := t.Load(c)
	pol.Read(t, c)
	pol.BeforeCAS(t)
	if t.CAS(c, old, v) {
		pol.Wrote(t, c)
		pol.BeforeReturn(t)
		return true
	}
	pol.Wrote(t, c)
	pol.BeforeReturn(t)
	return false
}

// Scan returns early on an empty range before touching anything shared:
// that path is exempt, and the real path fences.
func Scan(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, from, to uint64) uint64 {
	if from > to {
		return 0
	}
	v := t.Load(c)
	pol.TraverseRead(t, c)
	cells := [...]*pmem.Cell{c}
	pol.PostTraverse(t, cells[:])
	pol.BeforeReturn(t)
	return v
}

// Remove delegates to remove, whose every return path fences; the
// delegation fixpoint accepts the chain.
func Remove(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) bool {
	return remove(t, pol, c)
}

func remove(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) bool {
	old := t.Load(c)
	pol.BeforeCAS(t)
	ok := t.CAS(c, old, 0)
	pol.Wrote(t, c)
	pol.BeforeReturn(t)
	return ok
}

// Reset fences every return through a dominating deferred fence.
func Reset(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) {
	defer pol.BeforeReturn(t)
	old := t.Load(c)
	pol.BeforeCAS(t)
	if !t.CAS(c, old, 0) {
		return
	}
	pol.Wrote(t, c)
}

// half is a trivial accessor: it has no unfenced returns only because it
// never touches shared memory, so calling it must NOT count as a fence in
// the delegation fixpoint.
func half(v uint64) uint64 { return v / 2 }

// InsertViaHelper calls a trivial local helper between the CAS and the
// unfenced success return; the helper must not bless the path.
func InsertViaHelper(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, v uint64) bool {
	pol.BeforeCAS(t)
	ok := t.CAS(c, 0, v)
	pol.Wrote(t, c)
	_ = half(v)
	if ok {
		return true // want "without a fence on this path"
	}
	pol.BeforeReturn(t)
	return false
}

// Clear mutates and then falls off the end of the function unfenced.
func Clear(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) { // want "falling off the end"
	pol.BeforeCAS(t)
	t.Store(c, 0)
	pol.Wrote(t, c)
}

// Package linelayout is an analysistest fixture for the linelayout rule:
// structs handed to the arena must occupy a positive whole number of
// 64-byte lines so that no two nodes share a crash fate.
package linelayout

import (
	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/pmem"
)

// oddNode is 9 cells = 72 bytes: one word past a line.
type oddNode struct {
	Key   pmem.Cell
	Value pmem.Cell
	Next  [7]pmem.Cell
}

// fullNode is 8 cells = exactly one 64-byte line.
type fullNode struct {
	Key   pmem.Cell
	Value pmem.Cell
	Next  [6]pmem.Cell
}

// ptrNode carries a Go pointer: the arena falls back to typed allocation
// and the line-layout contract does not apply.
type ptrNode struct {
	Key  pmem.Cell
	Meta *uint64
}

// The fixture only needs the instantiations to type-check; nothing runs.
var dom *epoch.Domain

var (
	bad  = arena.New[oddNode](dom, 1) // want "is 72 bytes"
	good = arena.New[fullNode](dom, 1)
	ptrs = arena.New[ptrNode](dom, 1)
)

// Package writehook is an analysistest fixture for the writehook rule:
// every Store/CAS in a critical section needs its matching write hook on
// the success path, and every CAS a dominating BeforeCAS. It also exercises
// the nvcheck:ignore grammar, including the malformed-directive report.
package writehook

import (
	"repro/internal/persist"
	"repro/internal/pmem"
)

// storeNoHook drops the write hook after a store: the write lands but no
// flush ever covers it.
func storeNoHook(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, v uint64) {
	pol.BeforeCAS(t)
	t.Store(c, v) // want "no matching write hook on its success path"
	pol.BeforeReturn(t)
}

// casNoBeforeCAS hooks the write but skips the pre-CAS fence that orders
// the new node's flushed fields before the link publishes them.
func casNoBeforeCAS(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, old, v uint64) bool {
	ok := t.CAS(c, old, v) // want "without a dominating Policy.BeforeCAS"
	pol.Wrote(t, c)
	pol.BeforeReturn(t)
	return ok
}

// casComplete is the full Protocol 2 shape: BeforeCAS, CAS, hook on the
// success branch. No diagnostics.
func casComplete(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, old, v uint64) bool {
	pol.BeforeCAS(t)
	if t.CAS(c, old, v) {
		pol.Wrote(t, c)
		pol.BeforeReturn(t)
		return true
	}
	pol.BeforeReturn(t)
	return false
}

// initComplete initializes an unpublished field: Store followed by
// InitWrite for the same cell. No diagnostics.
func initComplete(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, v uint64) {
	t.Store(c, v)
	pol.InitWrite(t, c)
	pol.BeforeReturn(t)
}

// volatileHint mimics the queue's tail hint: a deliberate unhooked CAS,
// suppressed with a justified directive. No diagnostics.
func volatileHint(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, old, v uint64) {
	pol.BeforeReturn(t)
	//nvcheck:ignore writehook -- volatile hint cell: recovery recomputes it, no flush wanted
	t.CAS(c, old, v)
}

// unjustifiedIgnore shows that a directive without a reason is itself a
// violation and suppresses nothing.
func unjustifiedIgnore(t *pmem.Thread, pol persist.Policy, c *pmem.Cell, v uint64) {
	pol.BeforeReturn(t)
	//nvcheck:ignore writehook // want "needs a justification"
	t.Store(c, v) // want "no matching write hook on its success path"
}

// Package traversepure is an analysistest fixture for the traversepure
// rule: no persistence effects between TraverseRead (or the top of a
// //nvcheck:traverse function) and the closing PostTraverse.
package traversepure

import (
	"repro/internal/persist"
	"repro/internal/pmem"
)

// lookupFlush persists mid-walk: the flush belongs after PostTraverse.
func lookupFlush(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) uint64 {
	v := t.Load(c)
	pol.TraverseRead(t, c)
	t.Flush(c) // want "persistence effect inside the traversal phase"
	return v
}

// casWithoutPostTraverse is the historical missing-ensureReachable shape:
// the critical section starts while the traversal phase is still open, so
// the destination of the operation was never persisted.
func casWithoutPostTraverse(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) {
	for {
		v := t.Load(c)
		pol.TraverseRead(t, c)
		pol.BeforeCAS(t)      // want "missing Policy.PostTraverse"
		if t.CAS(c, v, v+1) { // want "missing Policy.PostTraverse"
			pol.Wrote(t, c)     // want "persistence effect inside the traversal phase"
			pol.BeforeReturn(t) // want "persistence effect inside the traversal phase"
			return
		}
	}
}

// casWithPostTraverse is the same operation written correctly: the phase
// closes before the critical section. No diagnostics.
func casWithPostTraverse(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) {
	for {
		v := t.Load(c)
		pol.TraverseRead(t, c)
		cells := [...]*pmem.Cell{c}
		pol.PostTraverse(t, cells[:])
		pol.BeforeCAS(t)
		if t.CAS(c, v, v+1) {
			pol.Wrote(t, c)
			pol.BeforeReturn(t)
			return
		}
	}
}

// scanMidWalk reads a data word mid-walk: ReadData is permitted inside the
// phase (the closing PostTraverse fences whatever it flushed).
func scanMidWalk(t *pmem.Thread, pol persist.Policy, c, d *pmem.Cell) uint64 {
	pol.TraverseRead(t, c)
	v := t.Load(d)
	pol.ReadData(t, d)
	cells := [...]*pmem.Cell{c}
	pol.PostTraverse(t, cells[:])
	return v
}

// flushHelper performs a banned effect on behalf of its caller.
func flushHelper(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
}

// lookupViaHelper hides the mid-walk flush behind a same-package call.
func lookupViaHelper(t *pmem.Thread, pol persist.Policy, c *pmem.Cell) {
	pol.TraverseRead(t, c)
	flushHelper(t, c) // want "callee persists or mutates shared memory"
	cells := [...]*pmem.Cell{c}
	pol.PostTraverse(t, cells[:])
}

// walkAnnotated never calls TraverseRead itself; the directive marks the
// whole body as one traversal phase.
//
//nvcheck:traverse
func walkAnnotated(t *pmem.Thread, c *pmem.Cell) uint64 {
	v := t.Load(c)
	t.Fence() // want "persistence effect inside the traversal phase"
	return v
}

package nvcheck_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nvcheck"
)

// Each rule runs over a fixture package that imports the module's real
// persistence layer; the expected findings are `// want` comments in the
// fixture source. Every fixture contains at least one violation, so a rule
// that silently stopped reporting fails its test.

func TestTraversePure(t *testing.T) {
	analysistest.Run(t, "traversepure", nvcheck.TraversePure)
}

func TestFenceReturn(t *testing.T) {
	analysistest.Run(t, "fencereturn", nvcheck.FenceReturn)
}

func TestWriteHook(t *testing.T) {
	analysistest.Run(t, "writehook", nvcheck.WriteHook)
}

func TestLineLayout(t *testing.T) {
	analysistest.Run(t, "linelayout", nvcheck.LineLayout)
}

func TestByName(t *testing.T) {
	all, err := nvcheck.ByName("all")
	if err != nil || len(all) != len(nvcheck.All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want %d, nil", len(all), err, len(nvcheck.All()))
	}
	one, err := nvcheck.ByName("writehook")
	if err != nil || len(one) != 1 || one[0] != nvcheck.WriteHook {
		t.Fatalf("ByName(writehook) = %v, %v; want the writehook analyzer", one, err)
	}
	if _, err := nvcheck.ByName("nosuchrule"); err == nil || !strings.Contains(err.Error(), "nosuchrule") {
		t.Fatalf("ByName(nosuchrule) err = %v; want an error naming the rule", err)
	}
}

// TestRepoIsClean is the in-tree twin of `make nvlint`: the whole module
// must pass every rule (modulo its justified ignores).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := nvcheck.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := nvcheck.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	out := nvcheck.Run(res.Packages, nvcheck.All())
	if len(out.Diagnostics) > 0 {
		t.Errorf("nvcheck found %d violation(s) in the repository:\n%s",
			len(out.Diagnostics), nvcheck.Format(out.Diagnostics))
	}
	if out.Suppressed == 0 {
		t.Error("expected the repository's justified ignores to suppress at least one finding")
	}
}

package nvcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is the comment grammar for justified rule suppressions:
//
//	//nvcheck:ignore <rule> -- <reason>
//
// The directive suppresses diagnostics of <rule> reported on its own line
// (trailing comment) or on the next source line (comment on its own line).
// The reason after "--" is mandatory: an ignore without one is reported as
// a violation itself, so every suppression in the tree carries its
// justification.
const ignorePrefix = "nvcheck:ignore"

// traverseDirective marks a function declaration as a traversal method for
// rule traversepure even if it never calls Policy.TraverseRead directly:
//
//	//nvcheck:traverse
const traverseDirective = "nvcheck:traverse"

type ignore struct {
	rule string
	line int // line the directive covers
	pos  token.Position
	ok   bool // has a justification
}

// fileIgnores extracts the ignore directives of one file, resolving each to
// the line it covers.
func fileIgnores(fset *token.FileSet, f *ast.File) []ignore {
	var out []ignore
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			rule, reason, found := strings.Cut(rest, "--")
			ig := ignore{
				rule: strings.TrimSpace(rule),
				pos:  fset.Position(c.Pos()),
				ok:   found && strings.TrimSpace(reason) != "",
			}
			// A trailing comment covers its own line; a standalone comment
			// covers the next line. Column 1..N heuristic: if anything
			// other than whitespace precedes the comment on its line, it is
			// trailing. We approximate via the comment's column: column 1
			// or a comment that is the only thing on the line is treated as
			// standalone and covers line+1, but we register both lines —
			// over-covering one adjacent line is harmless for a directive
			// that already names its rule and carries a justification.
			ig.line = ig.pos.Line
			out = append(out, ig)
		}
	}
	return out
}

// hasTraverseDirective reports whether fd carries //nvcheck:traverse.
func hasTraverseDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), traverseDirective) {
			return true
		}
	}
	return false
}

// RunResult is the outcome of running analyzers over packages.
type RunResult struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts diagnostics removed by ignore directives.
	Suppressed int
}

// Run applies the analyzers to every package and filters the diagnostics
// through the packages' ignore directives. Malformed directives (missing
// justification) are reported as findings of rule "ignore".
func Run(pkgs []*Package, analyzers []*Analyzer) RunResult {
	var res RunResult
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}

		var igs []ignore
		for _, f := range pkg.Files {
			for _, ig := range fileIgnores(pkg.Fset, f) {
				if !ig.ok {
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Rule:    "ignore",
						Pos:     ig.pos,
						Message: "nvcheck:ignore needs a justification: //nvcheck:ignore <rule> -- <reason>",
					})
					continue
				}
				igs = append(igs, ig)
			}
		}
		for _, d := range raw {
			if suppressed(igs, d) {
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return res
}

// suppressed reports whether a directive covers d: same file, matching
// rule, and the diagnostic lands on the directive's line or the next one.
func suppressed(igs []ignore, d Diagnostic) bool {
	for _, ig := range igs {
		if ig.rule != d.Rule && ig.rule != "all" {
			continue
		}
		if ig.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == ig.line || d.Pos.Line == ig.line+1 {
			return true
		}
	}
	return false
}

// Format renders diagnostics the way compilers do, one per line.
func Format(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s\n", d)
	}
	return b.String()
}

package nvcheck

import (
	"go/ast"
	"go/types"
)

// FenceReturn enforces "fence before every return statement" (Protocol 2)
// on the exported operations of every protocol package: a function is a
// target when it is exported, its same-package call tree invokes
// persistence hooks (it is protocol code, not a quiescent helper or
// recovery routine), and that tree either mutates shared memory
// (Thread.Store/CAS) or persists a traversal (Policy.PostTraverse — even a
// lookup's answer may depend on an unpersisted write, so protocol reads
// fence too). Every return path of a target must pass through
// Policy.BeforeReturn, Thread.CommitFence, Thread.EndBatch or Thread.Fence
// — directly, via a dominating deferred fence, or by delegating to a
// same-package function whose own return paths all fence (computed as a
// fixpoint, so Insert → insertGet delegation chains check out). A return
// reached before the function touches shared memory at all (argument
// validation, empty key ranges) is exempt: an operation that performed no
// shared access has nothing to persist.
//
// Dominance is approximated by preceding sibling statements: in the
// goto-free bodies this repository writes, a statement earlier in the same
// or an enclosing block always executes before a return that follows it.
// The approximation is direction-safe — it can flag a fenced path (fixed
// with a refactor or a justified ignore), never bless an unfenced one,
// except for fences placed behind conditionals that the checker treats as
// non-dominating.
var FenceReturn = &Analyzer{
	Name: "fencereturn",
	Doc:  "every return path of an exported mutating op must fence (Protocol 2)",
	Run:  runFenceReturn,
}

func runFenceReturn(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == pmemPath || pkg.Path == persistPath {
		return
	}
	facts := packageFacts(pkg)

	// Fixpoint: which functions fence on every return path? Seed with
	// "fences nowhere" and re-evaluate until stable; alwaysFences of a
	// delegated call consults the current set.
	fencing := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, ff := range facts {
			if fencing[fn] {
				continue
			}
			if fencesEveryReturn(pkg, ff.decl, facts, fencing) {
				fencing[fn] = true
				changed = true
			}
		}
	}

	anyHook := func(k callKind) bool {
		switch k {
		case hookTraverseRead, hookPostTraverse, hookRead, hookReadData,
			hookInitWrite, hookWrote, hookWroteData, hookBeforeCAS,
			hookBeforeReturn:
			return true
		}
		return false
	}
	protocol := func(k callKind) bool {
		return k == threadStore || k == threadCAS || k == hookPostTraverse
	}

	for fn, ff := range facts {
		if !fn.Exported() || fencing[fn] {
			continue
		}
		if !reaches(facts, fn, anyHook) || !reaches(facts, fn, protocol) {
			continue
		}
		reportUnfencedReturns(pass, pkg, fn, ff.decl, facts, fencing)
	}
}

// fencesEveryReturn reports whether calling fd guarantees a fence: every
// termination path — explicit returns and falling off the end — passes
// through one, given the current set of known-fencing delegates. This is
// the delegation fixpoint's predicate, and it is strict: the
// untouched-return exemption that reporting applies does NOT count here,
// or a trivial accessor (all of whose returns are exempt because it never
// touches shared memory) would be classified as fencing and a call to it
// would bless every statement after it in its callers.
func fencesEveryReturn(pkg *Package, fd *ast.FuncDecl, facts map[*types.Func]*funcFacts, fencing map[*types.Func]bool) bool {
	ok := true
	walkReturns(pkg, fd, facts, fencing, true, func(ret ast.Node) { ok = false })
	return ok
}

// reportUnfencedReturns emits a diagnostic per unfenced return path of fd.
func reportUnfencedReturns(pass *Pass, pkg *Package, fn *types.Func, fd *ast.FuncDecl, facts map[*types.Func]*funcFacts, fencing map[*types.Func]bool) {
	walkReturns(pkg, fd, facts, fencing, false, func(ret ast.Node) {
		what := "return"
		if _, implicit := ret.(*ast.BlockStmt); implicit {
			what = "falling off the end"
		}
		pass.Reportf(ret.Pos(),
			"%s of exported mutating op %s without a fence on this path: need Policy.BeforeReturn / Thread.CommitFence / Thread.EndBatch before returning (Protocol 2)",
			what, fn.Name())
	})
}

// walkReturns visits fd's body tracking the fenced-so-far and
// touched-shared-memory-so-far states, and calls report for every return
// (or implicit fall-off) that lacks a dominating fence. In report mode
// (strict=false) returns before the first shared access are exempt — an
// operation that performed no access has nothing to persist — and a
// fall-off end only counts after a shared access. In strict mode (the
// delegation fixpoint) every unfenced termination path is reported, so
// that fencing[fn] means "calling fn performs a fence", not merely "fn has
// no violations of its own".
func walkReturns(pkg *Package, fd *ast.FuncDecl, facts map[*types.Func]*funcFacts, fencing map[*types.Func]bool, strict bool, report func(ast.Node)) {
	// hasEffect reports whether the subtree touches the persistence layer
	// (any Thread method or policy hook, directly or via a same-package
	// callee that transitively does).
	hasEffect := func(root ast.Node) bool {
		found := false
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if classifyCall(pkg.Info, call) != callOther {
				found = true
				return false
			}
			if callee := localCallee(pkg, call); callee != nil {
				if reaches(facts, callee, func(callKind) bool { return true }) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	type state struct{ fenced, touched bool }
	var visitStmts func(stmts []ast.Stmt, st state) state
	var visitStmt func(s ast.Stmt, st state)

	// alwaysFences reports whether executing s to normal completion
	// guarantees a fence happened (or, for defer, will happen at return).
	var alwaysFences func(s ast.Stmt) bool
	exprFences := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFence(classifyCall(pkg.Info, call)) {
				found = true
				return false
			}
			if callee := localCallee(pkg, call); callee != nil && fencing[callee] {
				found = true
				return false
			}
			return true
		})
		return found
	}
	alwaysFences = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.ExprStmt:
			return exprFences(st.X)
		case *ast.AssignStmt:
			for _, r := range st.Rhs {
				if exprFences(r) {
					return true
				}
			}
		case *ast.DeferStmt:
			// A dominating deferred fence fences every later return.
			return exprFences(st.Call)
		case *ast.BlockStmt:
			for _, c := range st.List {
				if alwaysFences(c) {
					return true
				}
			}
		case *ast.IfStmt:
			if st.Else == nil {
				return false
			}
			return alwaysFences(st.Body) && alwaysFences(st.Else)
		}
		return false
	}

	visitStmts = func(stmts []ast.Stmt, st state) state {
		for _, s := range stmts {
			visitStmt(s, st)
			if alwaysFences(s) {
				st.fenced = true
			}
			if !st.touched && hasEffect(s) {
				st.touched = true
			}
		}
		return st
	}
	visitStmt = func(s ast.Stmt, st state) {
		switch t := s.(type) {
		case *ast.ReturnStmt:
			if st.fenced {
				return
			}
			for _, r := range t.Results {
				if exprFences(r) {
					return
				}
			}
			if !strict && !st.touched {
				// Nothing shared was touched before this return; if the
				// result expressions are effect-free too, there is nothing
				// to persist (argument validation, empty ranges).
				eff := false
				for _, r := range t.Results {
					if hasEffect(r) {
						eff = true
						break
					}
				}
				if !eff {
					return
				}
			}
			report(t)
		case *ast.BlockStmt:
			visitStmts(t.List, st)
		case *ast.IfStmt:
			if t.Init != nil && hasEffect(t.Init) || hasEffect(t.Cond) {
				st.touched = true
			}
			visitStmt(t.Body, st)
			if t.Else != nil {
				visitStmt(t.Else, st)
			}
		case *ast.ForStmt:
			// Effects anywhere in a loop may precede a return on a later
			// iteration, so the whole loop is treated as touching first.
			if hasEffect(t) {
				st.touched = true
			}
			visitStmt(t.Body, st)
		case *ast.RangeStmt:
			if hasEffect(t) {
				st.touched = true
			}
			visitStmt(t.Body, st)
		case *ast.SwitchStmt:
			if t.Init != nil && hasEffect(t.Init) || t.Tag != nil && hasEffect(t.Tag) {
				st.touched = true
			}
			for _, c := range t.Body.List {
				visitStmts(c.(*ast.CaseClause).Body, st)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range t.Body.List {
				visitStmts(c.(*ast.CaseClause).Body, st)
			}
		case *ast.SelectStmt:
			for _, c := range t.Body.List {
				visitStmts(c.(*ast.CommClause).Body, st)
			}
		case *ast.LabeledStmt:
			visitStmt(t.Stmt, st)
		}
	}

	end := visitStmts(fd.Body.List, state{})

	// Implicit return at the end of a void function that can fall off.
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		if (strict || end.touched) && !end.fenced && fallsOffEnd(fd.Body.List) {
			report(fd.Body)
		}
	}
}

// fallsOffEnd reports whether control can reach the end of the statement
// list: false when the list ends in a return, a panic, or an infinite for.
func fallsOffEnd(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return true
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ForStmt:
		// `for { ... }` without condition only exits via return (the
		// protocol retry loop); a break inside would make this wrong, so
		// check for one.
		if last.Cond == nil && !hasLoopBreak(last.Body) {
			return false
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	}
	return true
}

// hasLoopBreak reports whether body contains a break binding to this loop.
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok.String() == "break" {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // breaks inside bind to the inner statement
		}
		return !found
	}
	ast.Inspect(body, walk)
	return found
}

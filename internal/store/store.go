// Package store is the unified durable-store surface of the repository —
// Store API v2. One Store interface is satisfied by both backends:
//
//   - a bare traversal structure (one pmem.Memory, one core.Set), and
//   - the hash-sharded engine (shard.Engine).
//
// Callers hold a Session — the per-goroutine operation handle — and never
// need to know which backend they were given: benchmarks, CLIs, examples
// and the typed Map facade all target Session. A bare structure's session
// binds a pmem.Thread to the structure; an engine's session is exactly
// shard.Session (which satisfies the interface structurally). Batched
// Apply, atomic read-modify-write and ordered range scans work on both;
// the engine's Scan k-way merges the per-shard ordered streams.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/pmem/vfs"
	"repro/internal/shard"
)

// Op and OpResult are the batched-operation vocabulary, shared with the
// engine (a bare structure's Apply honors the same contract, with the whole
// batch as one fence group).
type (
	Op       = shard.Op
	OpResult = shard.OpResult
)

// Session is the per-goroutine handle on a Store. One goroutine at a time;
// scans' fn must not re-enter the same session.
type Session interface {
	// Get looks up a key.
	Get(key uint64) (uint64, bool)
	// Put upserts atomically: afterwards the key maps to value.
	Put(key, value uint64)
	// Insert adds key with value; false if the key is already present.
	Insert(key, value uint64) bool
	// Delete removes a key; false if absent.
	Delete(key uint64) bool
	// Update atomically read-modify-writes key's value in place; see
	// core.Set.Update.
	Update(key uint64, fn func(old uint64) uint64) (uint64, bool)
	// GetOrInsert atomically returns the present value or inserts value.
	GetOrInsert(key, value uint64) (v uint64, inserted bool)
	// Scan visits every present key in [lo, hi] ascending; ErrUnordered on
	// kinds without a key order. See core.Set.RangeScan for consistency.
	Scan(lo, hi uint64, fn func(key, value uint64) bool) error
	// Apply executes a batch with one commit fence per fence group.
	Apply(ops []Op, dst []OpResult) []OpResult
	// MultiGet batch-reads keys.
	MultiGet(keys []uint64, dst []OpResult) []OpResult
	// Rand draws from the session's per-goroutine RNG.
	Rand() uint64
}

// AsyncSession is the completion-callback extension of Session that the
// group-commit batcher (internal/batcher) builds on: ApplyCommitted
// executes a batch like Apply but invokes committed(idxs, err) the moment
// the results at those batch indexes are safe to acknowledge — once per
// fence group, right after that group's commit fence lands, and once for
// scans (reads need no fence). A non-nil err means the group's commit
// could not be made durable (the backend latched a sticky disk failure,
// see Store.DurableErr) and the results at idxs must not be acknowledged.
// idxs aliases internal scratch and is valid only during the callback.
// Both backends implement AsyncSession; it is a separate interface only so
// Session stays implementable by test doubles.
type AsyncSession interface {
	Session
	ApplyCommitted(ops []Op, dst []OpResult, committed func(idxs []int, err error)) []OpResult
}

// ReplRole names a store's position in a replication topology.
type ReplRole uint8

const (
	// RoleNone: the store is not part of a replication topology.
	RoleNone ReplRole = iota
	// RolePrimary: the store accepts writes and streams committed fence
	// groups to attached replicas.
	RolePrimary
	// RoleReplica: the store applies a primary's stream and serves reads.
	RoleReplica
)

// ReplStats is the replication view of a store. The zero value is what an
// unreplicated store reports, so callers never branch on topology: lag is
// zero, no replicas are connected, no quorum is required. A store serving
// as a replication primary or replica reports live figures (the repl
// package attaches itself through SetReplSource on the concrete types).
type ReplStats struct {
	// Role is the store's current topology role.
	Role ReplRole
	// Replicas counts connected replicas on a primary; on a replica it is
	// 1 while the upstream link is live and 0 after it failed.
	Replicas int
	// WaitReplicas is the configured write quorum K (0 = acks never wait
	// for replication).
	WaitReplicas int
	// MaxLagGroups and MaxLagBytes are the largest per-replica backlog of
	// streamed-but-unacknowledged fence groups (and their encoded bytes)
	// across connected replicas; both are 0 when every replica is caught
	// up. On a replica they report its own backlog behind the primary.
	MaxLagGroups uint64
	MaxLagBytes  uint64
	// LastAckSeq is the highest fence-group sequence any replica has
	// acknowledged (primary), or the highest applied sequence (replica) —
	// the last-acknowledged watermark, summed across shards.
	LastAckSeq uint64
	// AppliedGroups and AppliedOps count the stream batches and operations
	// a replica has applied (0 on a primary).
	AppliedGroups uint64
	AppliedOps    uint64
}

// Store is one durable key-value store, bare or sharded.
type Store interface {
	// NewSession registers a per-goroutine handle.
	NewSession() Session
	// Kind reports the underlying structure kind.
	Kind() core.Kind
	// Shards reports the shard count; 0 means a bare structure.
	Shards() int
	// Ordered reports whether Scan works on this store.
	Ordered() bool
	// Recover runs the paper's recovery phase (after a crash, before any
	// other operation; quiescent).
	Recover()
	// Contents returns every present key (quiescent use only).
	Contents() []uint64
	// Stats aggregates the persistence-instruction counters.
	Stats() pmem.Stats
	// ResetStats clears the counters. Call it only while no session is
	// mid-operation (between measurement runs).
	ResetStats()
	// Durable reports whether the store is file-backed (Config.Dir).
	Durable() bool
	// DurableErr reports the sticky damage state of the durable backend:
	// nil while healthy (or on a non-durable store), and the first
	// write/fsync failure forever after. A damaged store keeps serving
	// reads but must not acknowledge writes; only a restart plus recovery
	// clears the condition (see pmem.Memory.DurableErr).
	DurableErr() error
	// ReplayStats reports the cost of the file recovery Open performed
	// (zero on non-durable stores).
	ReplayStats() pmem.ReplayStats
	// ShardFor reports which shard a key routes to (always 0 on a bare
	// structure). Shard-affine callers — the batcher's worker pool — use it
	// to keep a key's operations on the worker that owns its shard group.
	ShardFor(key uint64) int
	// Repl reports the store's replication view: the zero ReplStats value
	// on an unreplicated store, live topology figures when the store
	// serves as a replication primary or replica (see ReplStats).
	Repl() ReplStats
	// Boot reports the durable backend's boot counter (0 on non-durable
	// stores): a value that uniquely names this process lifetime of the
	// data directory, bumped on every successful open. Replication uses it
	// as the primary's run identity in the catch-up watermark.
	Boot() uint64
	// Checkpoint snapshots the store's memories and truncates their WALs.
	// Safe under live traffic (fences stall for the duration of a shard's
	// dump; see pmem.Memory.Checkpoint); no-op on non-durable stores.
	Checkpoint() error
	// MaybeCheckpoint checkpoints every memory whose WAL has reached
	// Config.CkptBytes, returning how many checkpoints ran. No-op (0, nil)
	// when CkptBytes is unset or the store is not durable; cheap enough to
	// call after every group commit (one atomic load per shard when under
	// the threshold).
	MaybeCheckpoint() (int, error)
	// Close flushes and closes the backing files (no-op on non-durable
	// stores; safe to call twice; quiescent use).
	Close() error
}

// Config parameterizes Open. The zero value opens a bare NVTraverse hash
// table on a fast NVRAM-profile memory.
type Config struct {
	// Kind is the structure kind (default core.KindHash).
	Kind core.Kind
	// Policy is the persistence transformation (default persist.NVTraverse).
	Policy persist.Policy
	// Profile is the latency profile for fast-mode memories.
	Profile pmem.Profile
	// SizeHint is the expected key-range size.
	SizeHint int
	// Buckets overrides the hash bucket count (hash kind only).
	Buckets int
	// Tracked builds tracked memories (crash testing) instead of fast ones.
	Tracked bool
	// Shards > 0 opens the sharded engine instead of a bare structure.
	Shards int
	// MaxSessions bounds NewSession calls (default 64).
	MaxSessions int
	// Dir, when non-empty, backs the store with the durable file backend
	// (WAL + checkpoint per memory; shard i journals under Dir/shard-i).
	// Open writes a MANIFEST.json recording the layout-determining
	// parameters on first use and refuses to open a directory whose
	// manifest disagrees — replay writes into deterministically
	// reconstructed regions, so kind/shards/buckets must match exactly.
	// Open recovers the files before returning; the store is immediately
	// consistent with every previously acknowledged operation.
	Dir string
	// SyncFence makes every commit fence fsync the WAL (durability against
	// power loss, not just process death). Only meaningful with Dir.
	SyncFence bool
	// CkptBytes, when > 0, is the per-memory WAL size at which
	// MaybeCheckpoint takes an automatic checkpoint, bounding replay work
	// after a kill. Not layout-determining (absent from the manifest): a
	// directory may be reopened with a different threshold. Only meaningful
	// with Dir.
	CkptBytes int64
	// FS overrides the durable backend's file operations (nil = the real
	// filesystem). Fault-injection tests pass a vfs.ErrFS here. Not
	// layout-determining (absent from the manifest). Only meaningful with
	// Dir.
	FS vfs.FS
	// WaitReplicas records the configured write quorum K for serving
	// layers to pick up (surfaced through Repl().WaitReplicas): a write
	// acknowledged under WAIT mode has been confirmed by K replicas. The
	// store itself does not enforce it — the replication primary the
	// server wires into the group-commit pool does. Not
	// layout-determining.
	WaitReplicas int
}

// manifest is the on-disk record of the layout-determining Config fields.
type manifest struct {
	Version  int    `json:"version"`
	Kind     string `json:"kind"`
	Policy   string `json:"policy"`
	Shards   int    `json:"shards"`
	SizeHint int    `json:"size_hint"`
	Buckets  int    `json:"buckets"`
}

const manifestName = "MANIFEST.json"

// checkManifest writes cfg's manifest into dir on first open, and on later
// opens verifies the directory was built with the same layout parameters.
func checkManifest(dir string, cfg Config) error {
	want := manifest{
		Version:  1,
		Kind:     string(cfg.Kind),
		Policy:   cfg.Policy.Name(),
		Shards:   cfg.Shards,
		SizeHint: cfg.SizeHint,
		Buckets:  cfg.Buckets,
	}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		buf, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return fmt.Errorf("store: manifest: %w", err)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("store: manifest: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("store: manifest: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	var got manifest
	if err := json.Unmarshal(data, &got); err != nil {
		return fmt.Errorf("store: manifest %s: %w", path, err)
	}
	if got != want {
		return fmt.Errorf("store: %s was built with %+v; refusing to open as %+v", dir, got, want)
	}
	return nil
}

// Open builds a Store for cfg: a bare structure when cfg.Shards == 0, the
// sharded engine otherwise.
func Open(cfg Config) (Store, error) {
	if cfg.Kind == "" {
		cfg.Kind = core.KindHash
	}
	if cfg.Policy == nil {
		cfg.Policy = persist.NVTraverse{}
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Dir != "" {
		if err := checkManifest(cfg.Dir, cfg); err != nil {
			return nil, err
		}
	}
	if cfg.Shards > 0 {
		eng, err := shard.New(shard.Config{
			Shards:      cfg.Shards,
			Kind:        cfg.Kind,
			Policy:      cfg.Policy,
			Profile:     cfg.Profile,
			Tracked:     cfg.Tracked,
			MaxSessions: cfg.MaxSessions,
			Params:      core.Params{SizeHint: cfg.SizeHint, Buckets: cfg.Buckets},
			Dir:         cfg.Dir,
			SyncFence:   cfg.SyncFence,
			FS:          cfg.FS,
		})
		if err != nil {
			return nil, err
		}
		replay, err := eng.RecoverFiles()
		if err != nil {
			return nil, fmt.Errorf("store: recover %s: %w", cfg.Dir, err)
		}
		st := &EngineStore{eng: eng, admin: eng.NewSession(), replay: replay, ckptBytes: cfg.CkptBytes}
		st.repl.waitK = cfg.WaitReplicas
		if eng.Durable() {
			// The paper's recovery phase runs on every durable open: on a
			// fresh directory it is a no-op scan, after a crash it rebuilds
			// the auxiliary state the replayed image needs.
			st.Recover()
		}
		return st, nil
	}
	mode := pmem.ModeFast
	if cfg.Tracked {
		mode = pmem.ModeTracked
	}
	mem := pmem.New(pmem.Config{
		Mode:    mode,
		Profile: cfg.Profile,
		// +2: the structure constructor registers a thread, plus the
		// store's admin thread.
		MaxThreads: cfg.MaxSessions + 2,
		Dir:        cfg.Dir,
		SyncFence:  cfg.SyncFence,
		FS:         cfg.FS,
	})
	set, err := core.NewSet(cfg.Kind, mem, cfg.Policy, core.Params{
		SizeHint: cfg.SizeHint, Buckets: cfg.Buckets,
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var replay pmem.ReplayStats
	if mem.Durable() {
		replay, err = mem.RecoverFiles()
		if err != nil {
			return nil, fmt.Errorf("store: recover %s: %w", cfg.Dir, err)
		}
	}
	st := &Single{mem: mem, set: set, kind: cfg.Kind, admin: mem.NewThread(), replay: replay, ckptBytes: cfg.CkptBytes}
	st.repl.waitK = cfg.WaitReplicas
	if mem.Durable() {
		st.Recover()
	}
	return st, nil
}

// replSource is the shared live-stats indirection behind Repl(): the repl
// package attaches a primary's or replica's stats function through
// SetReplSource, and until one is attached Repl reports the zero value
// (plus the configured quorum). Held by both backends.
type replSource struct {
	waitK int
	fn    atomic.Pointer[func() ReplStats]
}

func (r *replSource) set(fn func() ReplStats) { r.fn.Store(&fn) }

func (r *replSource) stats() ReplStats {
	if p := r.fn.Load(); p != nil {
		st := (*p)()
		if st.WaitReplicas == 0 {
			st.WaitReplicas = r.waitK
		}
		return st
	}
	return ReplStats{WaitReplicas: r.waitK}
}

// Single is the bare-structure backend: one memory, one structure.
type Single struct {
	mem       *pmem.Memory
	set       core.Set
	kind      core.Kind
	admin     *pmem.Thread
	replay    pmem.ReplayStats
	ckptBytes int64
	repl      replSource
}

// NewSingle wraps an existing structure and memory as a Store (migration
// path for callers that built via core.NewSet).
func NewSingle(mem *pmem.Memory, set core.Set, kind core.Kind) *Single {
	return &Single{mem: mem, set: set, kind: kind, admin: mem.NewThread()}
}

// Memory exposes the backing memory (crash testing, stats).
func (s *Single) Memory() *pmem.Memory { return s.mem }

// Set exposes the backing structure (tests, recovery inspection).
func (s *Single) Set() core.Set { return s.set }

func (s *Single) NewSession() Session {
	return &singleSession{set: s.set, th: s.mem.NewThread()}
}

func (s *Single) Kind() core.Kind               { return s.kind }
func (s *Single) Shards() int                   { return 0 }
func (s *Single) Ordered() bool                 { return core.Ordered(s.kind) }
func (s *Single) Recover()                      { s.set.Recover(s.admin) }
func (s *Single) Contents() []uint64            { return s.set.Contents(s.admin) }
func (s *Single) Stats() pmem.Stats             { return s.mem.Stats() }
func (s *Single) ResetStats()                   { s.mem.ResetStats() }
func (s *Single) Durable() bool                 { return s.mem.Durable() }
func (s *Single) DurableErr() error             { return s.mem.DurableErr() }
func (s *Single) ReplayStats() pmem.ReplayStats { return s.replay }
func (s *Single) ShardFor(uint64) int           { return 0 }
func (s *Single) Repl() ReplStats               { return s.repl.stats() }
func (s *Single) Boot() uint64 {
	boot, _ := s.mem.Watermark()
	return boot
}

// SetReplSource attaches a live replication stats source (internal/repl).
func (s *Single) SetReplSource(fn func() ReplStats) { s.repl.set(fn) }
func (s *Single) Checkpoint() error {
	if !s.mem.Durable() {
		return nil
	}
	return s.mem.Checkpoint()
}
func (s *Single) MaybeCheckpoint() (int, error) {
	if s.ckptBytes <= 0 || !s.mem.Durable() {
		return 0, nil
	}
	ran, err := s.mem.CheckpointIfOver(s.ckptBytes)
	if ran {
		return 1, err
	}
	return 0, err
}
func (s *Single) Close() error { return s.mem.Close() }

// singleSession binds one thread to a bare structure.
type singleSession struct {
	set       core.Set
	th        *pmem.Thread
	scanIdxs  []int // scratch: batch op indexes holding scans
	keyedIdxs []int // scratch: the rest of the batch
}

func (s *singleSession) Get(key uint64) (uint64, bool) { return s.set.Find(s.th, key) }
func (s *singleSession) Insert(key, value uint64) bool { return s.set.Insert(s.th, key, value) }
func (s *singleSession) Delete(key uint64) bool        { return s.set.Delete(s.th, key) }
func (s *singleSession) Rand() uint64                  { return s.th.Rand() }

func (s *singleSession) Put(key, value uint64) {
	core.Upsert(s.set, s.th, key, value)
}

func (s *singleSession) Update(key uint64, fn func(old uint64) uint64) (uint64, bool) {
	return s.set.Update(s.th, key, fn)
}

func (s *singleSession) GetOrInsert(key, value uint64) (uint64, bool) {
	return s.set.GetOrInsert(s.th, key, value)
}

func (s *singleSession) Scan(lo, hi uint64, fn func(key, value uint64) bool) error {
	return s.set.RangeScan(s.th, lo, hi, fn)
}

// Apply executes the batch as one fence group: a bare structure has a
// single memory, so the whole batch shares one commit fence (the engine
// pays one per shard group). Matching the engine's Apply, OpScan
// operations run before the batch's keyed operations — the two backends
// must return identical results for the same batch.
func (s *singleSession) Apply(ops []Op, dst []OpResult) []OpResult {
	return s.ApplyCommitted(ops, dst, nil)
}

// ApplyCommitted is the AsyncSession surface on a bare structure: the whole
// keyed batch is one fence group, so committed fires once for the scans
// (before the group, mirroring the engine) and once for everything else
// after the group's commit fence.
func (s *singleSession) ApplyCommitted(ops []Op, dst []OpResult, committed func(idxs []int, err error)) []OpResult {
	if cap(dst) < len(ops) {
		dst = make([]OpResult, len(ops))
	}
	dst = dst[:len(ops)]
	s.scanIdxs = s.scanIdxs[:0]
	s.keyedIdxs = s.keyedIdxs[:0]
	for i := range ops {
		if ops[i].Kind == shard.OpScan {
			dst[i] = s.execScan(ops[i])
			s.scanIdxs = append(s.scanIdxs, i)
		} else {
			s.keyedIdxs = append(s.keyedIdxs, i)
		}
	}
	if committed != nil && len(s.scanIdxs) > 0 {
		committed(s.scanIdxs, nil)
	}
	s.th.BeginBatch()
	for _, i := range s.keyedIdxs {
		dst[i] = s.exec(ops[i])
	}
	s.th.EndBatch()
	// Publish after the batch fence so Stats read at the acknowledgement
	// point include it (see shard.Session.ApplyCommitted).
	s.th.PublishStats()
	if committed != nil && len(s.keyedIdxs) > 0 {
		committed(s.keyedIdxs, s.th.DurableErr())
	}
	return dst
}

func (s *singleSession) execScan(op Op) OpResult {
	var count uint64
	err := s.set.RangeScan(s.th, op.Key, op.Hi, func(uint64, uint64) bool {
		count++
		return true
	})
	return OpResult{Value: count, OK: err == nil}
}

func (s *singleSession) exec(op Op) OpResult {
	switch op.Kind {
	case shard.OpGet:
		v, ok := s.set.Find(s.th, op.Key)
		return OpResult{Value: v, OK: ok}
	case shard.OpInsert:
		return OpResult{Value: op.Value, OK: s.set.Insert(s.th, op.Key, op.Value)}
	case shard.OpDelete:
		return OpResult{OK: s.set.Delete(s.th, op.Key)}
	case shard.OpUpdate:
		nv, ok := core.ApplyUpdate(s.set, s.th, op.Key, op.Fn, op.Value)
		return OpResult{Value: nv, OK: ok}
	default: // shard.OpPut
		s.Put(op.Key, op.Value)
		return OpResult{Value: op.Value, OK: true}
	}
}

func (s *singleSession) MultiGet(keys []uint64, dst []OpResult) []OpResult {
	if cap(dst) < len(keys) {
		dst = make([]OpResult, len(keys))
	}
	dst = dst[:len(keys)]
	s.th.BeginBatch()
	for i, k := range keys {
		v, ok := s.set.Find(s.th, k)
		dst[i] = OpResult{Value: v, OK: ok}
	}
	s.th.EndBatch()
	return dst
}

// EngineStore is the sharded backend.
type EngineStore struct {
	eng       *shard.Engine
	admin     *shard.Session
	replay    pmem.ReplayStats
	ckptBytes int64
	repl      replSource
}

// NewEngineStore wraps an existing engine as a Store (migration path for
// callers that built via shard.New).
func NewEngineStore(eng *shard.Engine) *EngineStore {
	return &EngineStore{eng: eng, admin: eng.NewSession()}
}

// Engine exposes the backing engine (crash testing, per-shard inspection).
func (s *EngineStore) Engine() *shard.Engine { return s.eng }

func (s *EngineStore) NewSession() Session           { return s.eng.NewSession() }
func (s *EngineStore) Kind() core.Kind               { return s.eng.Kind() }
func (s *EngineStore) Shards() int                   { return s.eng.NumShards() }
func (s *EngineStore) Ordered() bool                 { return core.Ordered(s.eng.Kind()) }
func (s *EngineStore) Recover()                      { s.eng.Recover(s.admin) }
func (s *EngineStore) Contents() []uint64            { return s.eng.Contents(s.admin) }
func (s *EngineStore) Stats() pmem.Stats             { return s.eng.Stats().Total }
func (s *EngineStore) ResetStats()                   { s.eng.ResetStats() }
func (s *EngineStore) Durable() bool                 { return s.eng.Durable() }
func (s *EngineStore) DurableErr() error             { return s.eng.DurableErr() }
func (s *EngineStore) ReplayStats() pmem.ReplayStats { return s.replay }
func (s *EngineStore) ShardFor(key uint64) int       { return s.eng.ShardFor(key) }
func (s *EngineStore) Repl() ReplStats               { return s.repl.stats() }
func (s *EngineStore) Boot() uint64                  { return s.eng.Boot() }

// SetReplSource attaches a live replication stats source (internal/repl).
func (s *EngineStore) SetReplSource(fn func() ReplStats) { s.repl.set(fn) }
func (s *EngineStore) Checkpoint() error                 { return s.eng.Checkpoint() }
func (s *EngineStore) MaybeCheckpoint() (int, error) {
	if s.ckptBytes <= 0 || !s.eng.Durable() {
		return 0, nil
	}
	ran := 0
	for i := 0; i < s.eng.NumShards(); i++ {
		ok, err := s.eng.ShardMemory(i).CheckpointIfOver(s.ckptBytes)
		if ok {
			ran++
		}
		if err != nil {
			return ran, err
		}
	}
	return ran, nil
}
func (s *EngineStore) Close() error { return s.eng.Close() }

// Interface conformance: the engine's session is a store Session as-is,
// and both backends' sessions carry the async completion surface.
var (
	_ Session      = (*shard.Session)(nil)
	_ AsyncSession = (*shard.Session)(nil)
	_ AsyncSession = (*singleSession)(nil)
)

package store

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/persist"
	"repro/internal/shard"
)

// driveStore exercises the whole Session surface against one backend; the
// same body runs for the bare structure and the engine, which is the point
// of the unified interface.
func driveStore(t *testing.T, st Store) {
	t.Helper()
	h := st.NewSession()
	for k := uint64(1); k <= 100; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if v, ok := h.Get(50); !ok || v != 50 {
		t.Fatalf("Get(50) = %d,%v", v, ok)
	}
	h.Put(50, 500)
	if v, _ := h.Get(50); v != 500 {
		t.Fatalf("Put: Get(50) = %d", v)
	}
	if nv, ok := h.Update(50, func(old uint64) uint64 { return old + 1 }); !ok || nv != 501 {
		t.Fatalf("Update = %d,%v", nv, ok)
	}
	if v, ins := h.GetOrInsert(50, 9); ins || v != 501 {
		t.Fatalf("GetOrInsert present = %d,%v", v, ins)
	}
	if v, ins := h.GetOrInsert(200, 9); !ins || v != 9 {
		t.Fatalf("GetOrInsert absent = %d,%v", v, ins)
	}
	h.Delete(200)
	if !st.Ordered() {
		if err := h.Scan(1, 100, func(uint64, uint64) bool { return true }); !errors.Is(err, kv.ErrUnordered) {
			t.Fatalf("Scan on unordered = %v", err)
		}
	} else {
		last := uint64(9)
		n := 0
		if err := h.Scan(10, 20, func(k, v uint64) bool {
			if k <= last || k > 20 {
				t.Fatalf("scan key %d after %d", k, last)
			}
			last = k
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != 11 {
			t.Fatalf("scan saw %d keys in [10,20], want 11", n)
		}
	}
	res := h.Apply([]Op{
		{Kind: shard.OpGet, Key: 50},
		{Kind: shard.OpUpdate, Key: 50, Fn: func(old uint64) uint64 { return old * 2 }},
		{Kind: shard.OpInsert, Key: 300, Value: 3},
		{Kind: shard.OpDelete, Key: 300},
		{Kind: shard.OpScan, Key: 1, Hi: 100},
	}, nil)
	if !res[0].OK || res[0].Value != 501 {
		t.Fatalf("Apply get = %+v", res[0])
	}
	if !res[1].OK || res[1].Value != 1002 {
		t.Fatalf("Apply update = %+v", res[1])
	}
	if !res[2].OK || !res[3].OK {
		t.Fatalf("Apply insert/delete = %+v %+v", res[2], res[3])
	}
	if st.Ordered() {
		if !res[4].OK || res[4].Value != 100 {
			t.Fatalf("Apply scan = %+v, want 100 keys", res[4])
		}
		// Scans run before the batch's keyed operations on every backend:
		// the insert in the same batch must not be visible to the scan.
		res2 := h.Apply([]Op{
			{Kind: shard.OpInsert, Key: 400, Value: 4},
			{Kind: shard.OpScan, Key: 400, Hi: 400},
		}, nil)
		if !res2[0].OK || res2[1].Value != 0 {
			t.Fatalf("Apply scan ordering: %+v", res2)
		}
		h.Delete(400)
	} else if res[4].OK {
		t.Fatalf("Apply scan on unordered reported OK")
	}
	mg := h.MultiGet([]uint64{1, 2, 999}, nil)
	if !mg[0].OK || !mg[1].OK || mg[2].OK {
		t.Fatalf("MultiGet = %+v", mg)
	}
	if got := len(st.Contents()); got != 100 {
		t.Fatalf("Contents = %d keys, want 100", got)
	}
	if st.Stats().Ops == 0 {
		t.Fatal("stats did not count ops")
	}
	st.ResetStats()
	st.Recover() // quiescent no-crash recovery must be a safe no-op
	if v, ok := h.Get(50); !ok || v != 1002 {
		t.Fatalf("post-recover Get(50) = %d,%v", v, ok)
	}
}

func TestStoreBackends(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single-skiplist", Config{Kind: core.KindSkiplist}},
		{"single-hash", Config{Kind: core.KindHash, SizeHint: 256}},
		{"single-list-logfree", Config{Kind: core.KindList, Policy: persist.LinkAndPersist{}}},
		{"engine-skiplist-4", Config{Kind: core.KindSkiplist, Shards: 4}},
		{"engine-hash-4", Config{Kind: core.KindHash, Shards: 4, SizeHint: 256}},
		{"engine-nmbst-3", Config{Kind: core.KindNMBST, Shards: 3}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			st, err := Open(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantShards := c.cfg.Shards
			if st.Shards() != wantShards {
				t.Fatalf("Shards() = %d, want %d", st.Shards(), wantShards)
			}
			driveStore(t, st)
		})
	}
}

func TestOpenRejectsUnknownKind(t *testing.T) {
	if _, err := Open(Config{Kind: core.Kind("btree")}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Open(Config{Kind: core.Kind("btree"), Shards: 4}); err == nil {
		t.Fatal("unknown sharded kind accepted")
	}
}

// TestNewSingleWrapsExisting covers the migration path for callers that
// built via core.NewSet.
func TestNewSingleWrapsExisting(t *testing.T) {
	st, err := Open(Config{Kind: core.KindList})
	if err != nil {
		t.Fatal(err)
	}
	single := st.(*Single)
	wrapped := NewSingle(single.Memory(), single.Set(), core.KindList)
	h := wrapped.NewSession()
	h.Insert(7, 70)
	if v, ok := st.NewSession().Get(7); !ok || v != 70 {
		t.Fatalf("wrapped store diverged: %d,%v", v, ok)
	}
}

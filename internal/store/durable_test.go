package store_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/store"
)

// TestStoreDurableReopen round-trips both backends through the file
// backend: open with Dir, write, close, reopen the same directory, and
// require every key back with its value (plus scan agreement on ordered
// kinds).
func TestStoreDurableReopen(t *testing.T) {
	cases := []struct {
		name string
		cfg  store.Config
	}{
		{"single-hash", store.Config{Kind: core.KindHash, SizeHint: 1 << 10}},
		{"single-skiplist", store.Config{Kind: core.KindSkiplist, SizeHint: 1 << 10}},
		{"engine-skiplist", store.Config{Kind: core.KindSkiplist, Shards: 4, SizeHint: 1 << 10}},
		{"engine-hash-tracked", store.Config{Kind: core.KindHash, Shards: 2, Tracked: true, SizeHint: 1 << 10}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Dir = t.TempDir()
			st, err := store.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Durable() {
				t.Fatal("store not durable with Dir set")
			}
			s := st.NewSession()
			const n = 500
			for k := uint64(1); k <= n; k++ {
				s.Put(k, k*3)
			}
			for k := uint64(1); k <= n; k += 3 {
				s.Delete(k)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			st2, err := store.Open(cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer st2.Close()
			if rs := st2.ReplayStats(); rs.Records == 0 && rs.CheckpointBytes == 0 {
				t.Fatalf("reopen replayed nothing: %+v", rs)
			}
			s2 := st2.NewSession()
			for k := uint64(1); k <= n; k++ {
				v, ok := s2.Get(k)
				if k%3 == 1 {
					if ok {
						t.Fatalf("deleted key %d present after reopen", k)
					}
					continue
				}
				if !ok || v != k*3 {
					t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, v, ok, k*3)
				}
			}
			if st2.Ordered() {
				var count int
				if err := s2.Scan(1, n, func(k, v uint64) bool {
					if k%3 == 1 || v != k*3 {
						t.Fatalf("scan saw (%d,%d)", k, v)
					}
					count++
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if want := int(n) - (int(n)+2)/3; count != want {
					t.Fatalf("scan found %d keys, want %d", count, want)
				}
			}
		})
	}
}

// TestStoreDurableCheckpointReopen checkpoints mid-stream and verifies the
// post-checkpoint writes land on top of the snapshot after reopen.
func TestStoreDurableCheckpointReopen(t *testing.T) {
	cfg := store.Config{Kind: core.KindHash, Shards: 2, SizeHint: 1 << 10, Dir: t.TempDir()}
	st, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := st.NewSession()
	for k := uint64(1); k <= 200; k++ {
		s.Put(k, k)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for k := uint64(201); k <= 400; k++ {
		s.Put(k, k)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if rs := st2.ReplayStats(); rs.CheckpointBytes == 0 {
		t.Fatalf("no checkpoint loaded: %+v", rs)
	}
	s2 := st2.NewSession()
	for k := uint64(1); k <= 400; k++ {
		if v, ok := s2.Get(k); !ok || v != k {
			t.Fatalf("key %d: got (%d,%v)", k, v, ok)
		}
	}
}

// TestStoreManifestMismatch pins the layout guard: reopening a directory
// with different layout-determining parameters must fail loudly, not
// corrupt the replay.
func TestStoreManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Kind: core.KindHash, Shards: 2, SizeHint: 512, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st.NewSession().Put(1, 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []store.Config{
		{Kind: core.KindSkiplist, Shards: 2, SizeHint: 512, Dir: dir},
		{Kind: core.KindHash, Shards: 4, SizeHint: 512, Dir: dir},
		{Kind: core.KindHash, Shards: 2, SizeHint: 1024, Dir: dir},
		{Kind: core.KindHash, Shards: 2, SizeHint: 512, Dir: dir, Policy: persist.Izraelevitz{}},
	} {
		if _, err := store.Open(bad); err == nil || !strings.Contains(err.Error(), "refusing to open") {
			t.Fatalf("config %+v: want manifest mismatch, got %v", bad, err)
		}
	}
	// The matching config still opens.
	st2, err := store.Open(store.Config{Kind: core.KindHash, Shards: 2, SizeHint: 512, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := st2.NewSession().Get(1); !ok || v != 1 {
		t.Fatalf("key 1 lost: (%d,%v)", v, ok)
	}
	st2.Close()
}

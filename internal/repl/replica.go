package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/shard"
	"repro/internal/store"
)

// ReplicaConfig tunes a replication replica.
type ReplicaConfig struct {
	// Primary is the primary server's address ("unix:/path",
	// "tcp:host:port", or bare "host:port").
	Primary string
	// DialTimeout bounds each (re)connection attempt (default 5s).
	DialTimeout time.Duration
	// Reconnect is the pause between attach attempts after a link
	// failure (default 250ms). The replica keeps serving reads from its
	// last applied state while disconnected — that is the staleness
	// contract.
	Reconnect time.Duration
	// WatermarkPath, when non-empty, persists the replica's stream
	// position (primary run identity + per-shard acknowledged sequences)
	// so a restarted replica can tail instead of full-resyncing. Written
	// with ordinary file I/O after applied batches; losing it only costs
	// a snapshot, never correctness, because batch application is
	// idempotent.
	WatermarkPath string
	// ApplyBatch caps how many snapshot effects apply under one fence
	// group during bootstrap (default 256).
	ApplyBatch int
}

// Replica tails a primary's replication stream into a local store and
// keeps it applying across link failures until Close. Reads against the
// store observe every batch whose fence group has been applied — stale by
// up to the link's current lag, never torn mid-group.
type Replica struct {
	st   store.Store
	sess store.Session
	cfg  ReplicaConfig

	mu       sync.Mutex
	conn     net.Conn
	closed   bool
	linkUp   bool
	runID    uint64
	acked    []uint64
	groups   uint64
	opsCount uint64
	lastErr  error

	done chan struct{}
	wg   sync.WaitGroup
}

// StartReplica opens the replication loop applying cfg.Primary's stream
// into st. It returns immediately; the first attach (and any snapshot)
// happens in the background while st serves possibly-empty reads.
// StartReplica attaches itself as st's replication stats source when the
// store supports it.
func StartReplica(st store.Store, cfg ReplicaConfig) (*Replica, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: replica needs a primary address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Reconnect <= 0 {
		cfg.Reconnect = 250 * time.Millisecond
	}
	if cfg.ApplyBatch <= 0 {
		cfg.ApplyBatch = 256
	}
	r := &Replica{
		st:   st,
		sess: st.NewSession(),
		cfg:  cfg,
		done: make(chan struct{}),
	}
	r.loadWatermark()
	if src, ok := st.(interface{ SetReplSource(func() store.ReplStats) }); ok {
		src.SetReplSource(r.Stats)
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// Close stops the replication loop, persists the watermark, and leaves
// the store serving whatever it has applied — which is exactly what
// promotion wants. Idempotent.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
	r.saveWatermark()
}

// Stats reports the replica's live replication view (store.ReplStats).
func (r *Replica) Stats() store.ReplStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := store.ReplStats{
		Role:          store.RoleReplica,
		AppliedGroups: r.groups,
		AppliedOps:    r.opsCount,
	}
	if r.linkUp {
		st.Replicas = 1
	}
	for _, s := range r.acked {
		st.LastAckSeq += s
	}
	return st
}

// LinkErr reports the most recent link failure (nil while the link is
// healthy or before the first attach finished).
func (r *Replica) LinkErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.linkUp {
		return nil
	}
	return r.lastErr
}

// run is the attach/apply loop: dial, PSYNC, apply until the link dies,
// back off, repeat.
func (r *Replica) run() {
	defer r.wg.Done()
	for {
		err := r.attachOnce()
		r.mu.Lock()
		r.linkUp = false
		r.conn = nil
		if err != nil && !r.closed {
			r.lastErr = err
		}
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		select {
		case <-r.done:
			return
		case <-time.After(r.cfg.Reconnect):
		}
	}
}

// attachOnce runs one connection lifetime: handshake, optional snapshot,
// stream application.
func (r *Replica) attachOnce() error {
	network, address := splitAddr(r.cfg.Primary)
	c, err := net.DialTimeout(network, address, r.cfg.DialTimeout)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return ErrClosed
	}
	r.conn = c
	runID := r.runID
	acked := append([]uint64(nil), r.acked...)
	r.mu.Unlock()
	defer c.Close()

	bw := bufio.NewWriterSize(c, 32<<10)
	br := bufio.NewReaderSize(c, 64<<10)
	// Binary-protocol preamble plus the PSYNC request frame; after the
	// server hands the connection to its primary, only replication
	// channel frames flow.
	bw.Write([]byte{0x80, 0x01})
	psync := PSyncPayload(runID, acked)
	var req [5]byte
	binary.LittleEndian.PutUint32(req[:4], uint32(1+len(psync)))
	req[4] = OpPSync
	bw.Write(req[:])
	bw.Write(psync)
	if err := bw.Flush(); err != nil {
		return err
	}

	var buf []byte
	op, payload, buf, err := readFrame(br, buf)
	if err != nil {
		return err
	}
	if op != frameHello || len(payload) != 13 {
		return errors.New("repl: bad HELLO from primary")
	}
	helloRun := binary.LittleEndian.Uint64(payload)
	shards := int(binary.LittleEndian.Uint32(payload[8:]))
	full := payload[12] == 1
	if shards < 1 || shards > 1<<16 {
		return fmt.Errorf("repl: primary reports %d shards", shards)
	}
	if full {
		if err := r.wipe(); err != nil {
			return err
		}
		r.mu.Lock()
		r.runID = helloRun
		r.acked = make([]uint64, shards)
		r.groups, r.opsCount = 0, 0
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.linkUp = true
	r.lastErr = nil
	r.mu.Unlock()

	var ops []store.Op
	var res []store.OpResult
	for {
		op, payload, buf, err = readFrame(br, buf)
		if err != nil {
			return err
		}
		switch op {
		case frameSnapKV:
			if len(payload) < 4 {
				return errors.New("repl: malformed snapshot frame")
			}
			n := int(binary.LittleEndian.Uint32(payload))
			if len(payload) != 4+16*n {
				return errors.New("repl: malformed snapshot frame")
			}
			ops = ops[:0]
			for i := 0; i < n; i++ {
				ops = append(ops, store.Op{
					Kind:  shard.OpPut,
					Key:   binary.LittleEndian.Uint64(payload[4+16*i:]),
					Value: binary.LittleEndian.Uint64(payload[12+16*i:]),
				})
			}
			if err := r.apply(ops, &res); err != nil {
				return err
			}
		case frameSnapEnd:
			if len(payload) < 4 {
				return errors.New("repl: malformed snapshot cut")
			}
			n := int(binary.LittleEndian.Uint32(payload))
			if n != shards || len(payload) != 4+8*n {
				return errors.New("repl: malformed snapshot cut")
			}
			r.mu.Lock()
			for i := 0; i < n; i++ {
				r.acked[i] = binary.LittleEndian.Uint64(payload[4+8*i:])
			}
			r.mu.Unlock()
			r.saveWatermark()
			// Confirm the bootstrap position so the primary's lag and
			// quorum accounting see this replica as caught up to the cut.
			for sh := 0; sh < shards; sh++ {
				if err := r.sendAck(bw, sh); err != nil {
					return err
				}
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case frameBatch:
			if len(payload) < 16 {
				return errors.New("repl: malformed batch frame")
			}
			sh := int(binary.LittleEndian.Uint32(payload))
			seq := binary.LittleEndian.Uint64(payload[4:])
			n := int(binary.LittleEndian.Uint32(payload[12:]))
			if sh < 0 || sh >= shards || len(payload) != 16+17*n {
				return errors.New("repl: malformed batch frame")
			}
			ops = ops[:0]
			for i := 0; i < n; i++ {
				e := payload[16+17*i:]
				k := store.Op{Key: binary.LittleEndian.Uint64(e[1:]), Value: binary.LittleEndian.Uint64(e[9:])}
				if e[0] == effectDel {
					k.Kind = shard.OpDelete
				} else {
					k.Kind = shard.OpPut
				}
				ops = append(ops, k)
			}
			if err := r.apply(ops, &res); err != nil {
				return err
			}
			r.mu.Lock()
			if seq > r.acked[sh] {
				r.acked[sh] = seq
			}
			r.groups++
			r.opsCount += uint64(n)
			persistDue := r.groups%64 == 0
			r.mu.Unlock()
			if err := r.sendAck(bw, sh); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			if persistDue {
				r.saveWatermark()
			}
		case framePing:
			// Keepalive only.
		default:
			return fmt.Errorf("repl: unexpected frame %d from primary", op)
		}
	}
}

// apply runs one batch through the replica store's ordinary session
// surface — fences and durability verdicts included, exactly like any
// local writer — and refuses to continue (and thus to ack) when the
// replica's own backend went degraded.
func (r *Replica) apply(ops []store.Op, res *[]store.OpResult) error {
	if len(ops) == 0 {
		return nil
	}
	*res = r.sess.Apply(ops, *res)
	if err := r.st.DurableErr(); err != nil {
		return fmt.Errorf("repl: replica store degraded: %w", err)
	}
	return nil
}

// sendAck queues a cumulative ack for shard's current position.
func (r *Replica) sendAck(bw *bufio.Writer, sh int) error {
	r.mu.Lock()
	seq := r.acked[sh]
	r.mu.Unlock()
	var body [12]byte
	binary.LittleEndian.PutUint32(body[:4], uint32(sh))
	binary.LittleEndian.PutUint64(body[4:], seq)
	frame := writeFrame(nil, frameAck, body[:])
	_, err := bw.Write(frame)
	return err
}

// wipe deletes everything the store currently holds (full-resync
// bootstrap on a non-empty store: stale state from an earlier primary
// run must not survive under the new image).
func (r *Replica) wipe() error {
	keys := r.st.Contents()
	var res []store.OpResult
	ops := make([]store.Op, 0, r.cfg.ApplyBatch)
	for start := 0; start < len(keys); start += r.cfg.ApplyBatch {
		end := start + r.cfg.ApplyBatch
		if end > len(keys) {
			end = len(keys)
		}
		ops = ops[:0]
		for _, k := range keys[start:end] {
			ops = append(ops, store.Op{Kind: shard.OpDelete, Key: k})
		}
		if err := r.apply(ops, &res); err != nil {
			return err
		}
	}
	return nil
}

// Watermark file: "v1 <runID> <n> <seq0> <seq1> ...\n", written
// atomically via rename. Losing or corrupting it costs a full resync,
// nothing more, so plain os file I/O is fine here (and the vfs fault
// matrix does not need to cover it).
func (r *Replica) saveWatermark() {
	path := r.cfg.WatermarkPath
	if path == "" {
		return
	}
	r.mu.Lock()
	var sb strings.Builder
	sb.WriteString("v1 ")
	sb.WriteString(strconv.FormatUint(r.runID, 10))
	sb.WriteString(" ")
	sb.WriteString(strconv.Itoa(len(r.acked)))
	for _, s := range r.acked {
		sb.WriteString(" ")
		sb.WriteString(strconv.FormatUint(s, 10))
	}
	sb.WriteString("\n")
	r.mu.Unlock()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}

func (r *Replica) loadWatermark() {
	path := r.cfg.WatermarkPath
	if path == "" {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	fields := strings.Fields(string(data))
	if len(fields) < 3 || fields[0] != "v1" {
		return
	}
	runID, err1 := strconv.ParseUint(fields[1], 10, 64)
	n, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || n < 0 || len(fields) != 3+n {
		return
	}
	acked := make([]uint64, n)
	for i := range acked {
		if acked[i], err = strconv.ParseUint(fields[3+i], 10, 64); err != nil {
			return
		}
	}
	r.runID, r.acked = runID, acked
}

// splitAddr mirrors server.SplitAddr without importing the server package
// (the server imports repl).
func splitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):]
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):]
	default:
		return "tcp", addr
	}
}

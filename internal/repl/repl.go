// Package repl is primary–replica replication over the serving stack's
// wire protocol, built on the fence group — the commit unit the whole
// repository is organized around. The group-commit pool acknowledges a
// write only after the commit fence covering its shard group has landed
// (reply ⇒ durable); this package taps that exact point through
// batcher.GroupSink: when a group's fence is down, the primary appends
// the group's committed effects to a per-shard replication log and
// streams them to attached replicas. Replicas apply each batch through
// the store's ordinary session surface — the same hooked ApplyCommitted
// path every other writer uses, so the persistence discipline nvlint
// checks is never bypassed — and acknowledge the group's (shard, seq)
// back to the primary.
//
// # Stream unit and watermark
//
// The stream unit is one committed fence group per shard, numbered by a
// per-shard sequence the primary assigns at the commit point. A replica's
// position is the vector of acknowledged sequences per primary shard,
// qualified by the primary's run identity: the durable boot counter the
// WAL layer maintains (pmem.Memory.Watermark), or a random nonce on a
// non-durable primary. A replica reconnecting under the same run tails
// the stream from its recorded vector when the per-shard logs still
// retain it; otherwise — first attach, primary restart, or a replica so
// far behind its position fell off the bounded log — the primary ships a
// full snapshot (a recovery-style scan of the live store) cut at a known
// log position and the replica resumes tailing from the cut.
//
// # Replicated effects
//
// The log records a group's effects, not its requests: an upsert or a
// confirmed insert/update becomes Put(key, resulting value), a confirmed
// delete becomes Del(key), and operations that did not change state
// (failed inserts, absent-key deletes, reads) are dropped. Effects are
// deterministic and idempotent, so a replica may safely re-apply a batch
// that straddled a snapshot cut or a reconnect.
//
// # WAIT quorum
//
// With WaitReplicas K > 0 the primary takes ownership of each group's
// write completions (GroupSink contract) and releases them only once K
// replicas have acknowledged the group — replied ⇒ replicated. When the
// quorum cannot confirm within WaitTimeout (replica death, a falling-
// behind replica, a broken link), the waiting writes fail with the typed
// ErrQuorum instead of blocking forever: the same degraded-mode shape the
// disk-fault machinery uses — writes fail typed while the primary itself
// keeps serving, reads never wait — but deliberately non-sticky, because
// unlike a lying disk a lagging replica heals: once a replica catches up,
// WAIT writes succeed again. Every gated write was already durable on the
// primary when it failed typed; ErrQuorum reports "not yet replicated",
// never "lost".
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/shard"
	"repro/internal/store"
)

// OpPSync is the binary-protocol request opcode a replica sends to turn a
// server connection into a replication channel. It lives in the same
// opcode space as the regular request opcodes (internal/server/binary.go)
// but far above them, leaving room for ordinary commands. Payload:
//
//	u64 runID | u32 nshards | nshards × u64 ackedSeq
//
// runID 0 (and nshards 0) is a first attach with no position. The server
// replies nothing through its normal reply path: it hands the connection
// to the primary, which answers with a HELLO frame and owns the
// connection until it closes.
const OpPSync = 0x20

// Replication channel frames (both directions after the PSYNC handoff)
// reuse the binary protocol's shape — u32 length | u8 opcode | payload,
// little-endian, length counting the opcode byte.
const (
	// frameHello (primary → replica): u64 runID | u32 nshards | u8 full.
	// full=1 announces a full resync: the replica wipes its store and
	// expects snapshot frames before the stream.
	frameHello = 1
	// frameSnapKV (primary → replica): u32 n | n × (u64 key, u64 value).
	frameSnapKV = 2
	// frameSnapEnd (primary → replica): u32 nshards | nshards × u64
	// cutSeq — the per-shard log positions the snapshot includes; the
	// stream resumes after them.
	frameSnapEnd = 3
	// frameBatch (primary → replica): u32 shard | u64 seq | u32 n |
	// n × (u8 effect, u64 key, u64 value) — one committed fence group.
	frameBatch = 4
	// framePing (primary → replica): empty keepalive.
	framePing = 5
	// frameAck (replica → primary): u32 shard | u64 seq — every group up
	// to seq on shard is applied (acks are cumulative per shard).
	frameAck = 6
)

// Effect kinds inside a frameBatch.
const (
	effectPut = 0
	effectDel = 1
)

// maxFrame bounds a replication frame, mirroring the binary protocol's
// request bound: a desynced stream must not drive huge allocations.
const maxFrame = 1 << 20

// snapChunk is how many key/value pairs one snapshot frame carries.
const snapChunk = 512

var (
	// ErrQuorum fails a WAIT-mode write whose fence group was not
	// confirmed by WaitReplicas replicas within WaitTimeout. The write IS
	// durable on the primary — only the replication confirmation is
	// missing — and the condition is not sticky: writes succeed again
	// once enough replicas catch up.
	ErrQuorum = errors.New("repl: write not confirmed by replica quorum")
	// ErrClosed reports use of a closed primary or replica.
	ErrClosed = errors.New("repl: closed")
)

// Effect is one replicated state change (see the package comment): a Put
// carries the key's resulting value, a Del only the key.
type Effect struct {
	Kind  uint8 // effectPut or effectDel
	Key   uint64
	Value uint64
}

// effectsOf extracts the replicable effects of a committed fence group
// into dst: only operations that changed state, rewritten to their
// idempotent form.
func effectsOf(dst []Effect, ops []store.Op, res []store.OpResult, idxs []int) []Effect {
	for _, i := range idxs {
		switch ops[i].Kind {
		case shard.OpPut:
			dst = append(dst, Effect{Kind: effectPut, Key: ops[i].Key, Value: ops[i].Value})
		case shard.OpInsert:
			if res[i].OK {
				dst = append(dst, Effect{Kind: effectPut, Key: ops[i].Key, Value: ops[i].Value})
			}
		case shard.OpUpdate:
			if res[i].OK {
				dst = append(dst, Effect{Kind: effectPut, Key: ops[i].Key, Value: res[i].Value})
			}
		case shard.OpDelete:
			if res[i].OK {
				dst = append(dst, Effect{Kind: effectDel, Key: ops[i].Key})
			}
		}
	}
	return dst
}

// isWriteOp reports whether a batch operation needs a replication
// acknowledgement before a WAIT-mode reply (mirrors the batcher's
// read/write split).
func isWriteOp(op store.Op) bool {
	switch op.Kind {
	case shard.OpGet, shard.OpScan:
		return false
	}
	return true
}

// writeFrame appends one channel frame to buf.
func writeFrame(buf []byte, op byte, payload ...[]byte) []byte {
	n := 1
	for _, p := range payload {
		n += len(p)
	}
	var h [5]byte
	binary.LittleEndian.PutUint32(h[:4], uint32(n))
	h[4] = op
	buf = append(buf, h[:]...)
	for _, p := range payload {
		buf = append(buf, p...)
	}
	return buf
}

// readFrame reads one channel frame into buf (reused), returning the
// opcode and payload.
func readFrame(r io.Reader, buf []byte) (op byte, payload, nbuf []byte, err error) {
	var h [5]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(h[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, buf, fmt.Errorf("repl: frame length %d out of range", n)
	}
	need := int(n) - 1
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	payload = buf[:need]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, err
	}
	return h[4], payload, buf, nil
}

func putU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func putU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// PSyncPayload encodes the attach request a replica sends as the payload
// of an OpPSync request frame.
func PSyncPayload(runID uint64, acked []uint64) []byte {
	buf := make([]byte, 0, 12+8*len(acked))
	buf = putU64(buf, runID)
	buf = putU32(buf, uint32(len(acked)))
	for _, s := range acked {
		buf = putU64(buf, s)
	}
	return buf
}

// parsePSync decodes an OpPSync payload.
func parsePSync(p []byte) (runID uint64, acked []uint64, err error) {
	if len(p) < 12 {
		return 0, nil, errors.New("repl: short PSYNC payload")
	}
	runID = binary.LittleEndian.Uint64(p)
	n := int(binary.LittleEndian.Uint32(p[8:]))
	if n < 0 || len(p) != 12+8*n {
		return 0, nil, errors.New("repl: PSYNC payload length mismatch")
	}
	acked = make([]uint64, n)
	for i := range acked {
		acked[i] = binary.LittleEndian.Uint64(p[12+8*i:])
	}
	return runID, acked, nil
}

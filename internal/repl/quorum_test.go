package repl

// Deterministic WAIT-quorum tests: the primary's commit hook and ack path
// driven directly, with stub feeders standing in for replica links — no
// sockets, no timing races beyond the quorum timeout itself.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/batcher"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/store"
)

func quorumStore(t *testing.T, shards int) store.Store {
	t.Helper()
	st, err := store.Open(store.Config{
		Kind: "hash", Policy: persist.NVTraverse{}, Profile: pmem.ProfileZero,
		Shards: shards, SizeHint: 1 << 10, MaxSessions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// stubC is one write's completion: the error (nil = acked) lands in ch.
type stubC struct{ ch chan error }

func (c *stubC) Complete(_ store.OpResult, err error) { c.ch <- err }

// attachStub registers a fake replica link; acks are injected via onAck.
func attachStub(p *Primary) *feeder {
	f := &feeder{
		acked: make([]uint64, len(p.logs)),
		next:  make([]uint64, len(p.logs)),
		wake:  make(chan struct{}, 1),
	}
	p.mu.Lock()
	p.feeds[f] = struct{}{}
	p.mu.Unlock()
	return f
}

func detachStub(p *Primary, f *feeder) {
	p.mu.Lock()
	f.gone = true
	delete(p.feeds, f)
	p.mu.Unlock()
}

// commitPut pushes one single-put fence group through the commit hook and
// returns the withheld completion (the test fails if the group was not
// gated).
func commitPut(t *testing.T, p *Primary, key uint64) *stubC {
	t.Helper()
	c := &stubC{ch: make(chan error, 1)}
	ops := []store.Op{{Kind: shard.OpPut, Key: key, Value: key}}
	res := []store.OpResult{{}}
	if !p.CommittedGroup(ops, res, []int{0}, []batcher.Completer{c}) {
		t.Fatal("WAIT-mode put was not gated")
	}
	return c
}

func waitErr(t *testing.T, c *stubC, within time.Duration) error {
	t.Helper()
	select {
	case err := <-c.ch:
		return err
	case <-time.After(within):
		t.Fatal("completion never arrived")
		return nil
	}
}

func TestQuorumReverseOrderAck(t *testing.T) {
	st := quorumStore(t, 2)
	p := NewPrimary(st, PrimaryConfig{WaitReplicas: 1, WaitTimeout: 5 * time.Second})
	defer p.Close()
	f := attachStub(p)

	// Three groups on one shard; acks are cumulative, so confirming the
	// newest position must release all three gates, oldest first.
	cs := []*stubC{commitPut(t, p, 42), commitPut(t, p, 42), commitPut(t, p, 42)}
	sh := st.ShardFor(42)
	select {
	case <-cs[0].ch:
		t.Fatal("gate released before any ack")
	default:
	}
	p.onAck(f, sh, 3)
	for i, c := range cs {
		if err := waitErr(t, c, time.Second); err != nil {
			t.Fatalf("gate %d: %v", i, err)
		}
	}
	if s := p.Stats(); s.LastAckSeq != 3 || s.Replicas != 1 {
		t.Fatalf("stats after acks: %+v", s)
	}
}

func TestQuorumSlowReplicaTimesOutThenHeals(t *testing.T) {
	st := quorumStore(t, 1)
	p := NewPrimary(st, PrimaryConfig{WaitReplicas: 1, WaitTimeout: 30 * time.Millisecond})
	defer p.Close()
	f := attachStub(p)

	// The replica is too slow: the gate must fail typed, not hang.
	c := commitPut(t, p, 7)
	if err := waitErr(t, c, 2*time.Second); !errors.Is(err, ErrQuorum) {
		t.Fatalf("slow replica: got %v, want ErrQuorum", err)
	}
	// The late ack lands on an empty gate queue: harmless.
	p.onAck(f, st.ShardFor(7), 1)

	// NOT sticky: the next write succeeds once the replica keeps up.
	c2 := commitPut(t, p, 7)
	p.onAck(f, st.ShardFor(7), 2)
	if err := waitErr(t, c2, 2*time.Second); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestQuorumReplicaDeathMidBatch(t *testing.T) {
	st := quorumStore(t, 1)
	p := NewPrimary(st, PrimaryConfig{WaitReplicas: 2, WaitTimeout: 30 * time.Millisecond})
	defer p.Close()
	f1 := attachStub(p)
	f2 := attachStub(p)

	c := commitPut(t, p, 9)
	sh := st.ShardFor(9)
	p.onAck(f1, sh, 1)
	// The second replica dies before confirming: quorum 2 is unreachable
	// and the gate must fail typed once the deadline passes.
	detachStub(p, f2)
	if err := waitErr(t, c, 2*time.Second); !errors.Is(err, ErrQuorum) {
		t.Fatalf("replica death: got %v, want ErrQuorum", err)
	}
	if s := p.Stats(); s.Replicas != 1 {
		t.Fatalf("replicas after death: %+v", s)
	}
}

func TestNoListenersSkipsLogAndGate(t *testing.T) {
	st := quorumStore(t, 1)
	p := NewPrimary(st, PrimaryConfig{}) // K = 0, nobody attached
	defer p.Close()
	c := &stubC{ch: make(chan error, 1)}
	ops := []store.Op{{Kind: shard.OpPut, Key: 1, Value: 1}}
	if p.CommittedGroup(ops, []store.OpResult{{}}, []int{0}, []batcher.Completer{c}) {
		t.Fatal("unreplicated group was gated")
	}
	p.mu.Lock()
	head := p.logs[0].head()
	p.mu.Unlock()
	if head != 0 {
		t.Fatalf("log grew with no listeners: head %d", head)
	}

	// With a feeder attached the log grows, but K=0 still never gates.
	attachStub(p)
	if p.CommittedGroup(ops, []store.OpResult{{}}, []int{0}, []batcher.Completer{c}) {
		t.Fatal("K=0 group was gated")
	}
	p.mu.Lock()
	head = p.logs[0].head()
	p.mu.Unlock()
	if head != 1 {
		t.Fatalf("log head %d with a feeder attached, want 1", head)
	}
}

func TestCloseFailsPendingGates(t *testing.T) {
	st := quorumStore(t, 1)
	p := NewPrimary(st, PrimaryConfig{WaitReplicas: 1, WaitTimeout: time.Hour})
	attachStub(p)
	c := commitPut(t, p, 3)
	p.Close()
	if err := waitErr(t, c, 2*time.Second); !errors.Is(err, ErrQuorum) {
		t.Fatalf("close: got %v, want ErrQuorum", err)
	}
	p.Close() // idempotent
}

func TestReadOnlyGroupNotGated(t *testing.T) {
	st := quorumStore(t, 1)
	p := NewPrimary(st, PrimaryConfig{WaitReplicas: 1})
	defer p.Close()
	attachStub(p)
	ops := []store.Op{{Kind: shard.OpGet, Key: 1}}
	if p.CommittedGroup(ops, []store.OpResult{{}}, []int{0}, nil) {
		t.Fatal("read-only group was gated")
	}
}

package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/batcher"
	"repro/internal/store"
)

// PrimaryConfig tunes a replication primary.
type PrimaryConfig struct {
	// WaitReplicas is the write quorum K: with K > 0 every write
	// acknowledgement waits until K replicas confirmed its fence group
	// (replied ⇒ replicated); 0 streams best-effort and never delays an
	// ack.
	WaitReplicas int
	// WaitTimeout bounds how long a WAIT-mode write waits for its quorum
	// before failing with ErrQuorum (default 2s).
	WaitTimeout time.Duration
	// LogGroups is the per-shard replication log retention in fence
	// groups (default 1024): a replica that falls further behind than
	// this must full-resync.
	LogGroups int
	// PingEvery is the keepalive interval on idle replica links
	// (default 1s).
	PingEvery time.Duration
}

// Primary owns the per-shard replication logs and the attached replica
// links of one serving store. It implements batcher.GroupSink: the
// group-commit pool hands it every committed fence group at the commit
// point. One Primary serves any number of replicas; with none attached
// and no quorum configured it is a cheap no-op sink.
type Primary struct {
	st  store.Store
	cfg PrimaryConfig
	// runID names this primary instance in replica watermarks: the
	// durable boot counter when the store is file-backed (stream
	// positions die with the process, and so does the boot), a random
	// nonce otherwise.
	runID uint64

	mu     sync.Mutex
	logs   []*shardLog
	feeds  map[*feeder]struct{}
	gates  [][]*gate // per shard, FIFO in sequence order
	closed bool

	// gateWake kicks the timeout monitor when the first gate registers.
	gateWake chan struct{}
	done     chan struct{}

	lastAck uint64 // highest summed ack vector any replica reached
}

// gate is one fence group's withheld write acknowledgements: the
// completers and results of every write in the group, released when
// WaitReplicas replicas acknowledge (shard, seq) or the deadline passes.
type gate struct {
	seq      uint64
	cs       []batcher.Completer
	res      []store.OpResult
	deadline time.Time
}

// feeder is one attached replica link, owned by its ServeConn call.
type feeder struct {
	conn  net.Conn
	acked []uint64 // per-shard acknowledged position, under p.mu
	next  []uint64 // per-shard next position to stream, writer-side only
	wake  chan struct{}
	gone  bool
}

// NewPrimary builds the primary side over st. Wire it into the serving
// pool via batcher.PoolConfig.OnCommit, and hand attaching replica
// connections to ServeConn. NewPrimary attaches itself as st's
// replication stats source when the store supports it.
func NewPrimary(st store.Store, cfg PrimaryConfig) *Primary {
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = 2 * time.Second
	}
	if cfg.LogGroups <= 0 {
		cfg.LogGroups = 1024
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = time.Second
	}
	shards := st.Shards()
	if shards < 1 {
		shards = 1
	}
	p := &Primary{
		st:       st,
		cfg:      cfg,
		runID:    st.Boot(),
		logs:     make([]*shardLog, shards),
		feeds:    make(map[*feeder]struct{}),
		gates:    make([][]*gate, shards),
		gateWake: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	for i := range p.logs {
		p.logs[i] = newShardLog(cfg.LogGroups)
	}
	if p.runID == 0 {
		// Non-durable primary: no boot counter to borrow, so a random
		// nonzero nonce names this run (any restart loses the in-memory
		// logs, and a changed runID is exactly what forces replicas to
		// full-resync).
		for p.runID == 0 {
			p.runID = rand.Uint64()
		}
	}
	if src, ok := st.(interface{ SetReplSource(func() store.ReplStats) }); ok {
		src.SetReplSource(p.Stats)
	}
	go p.expireGates()
	return p
}

// Close fails every pending WAIT gate with ErrQuorum, disconnects every
// replica link and stops the monitor. Idempotent.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var pending []*gate
	for sh := range p.gates {
		pending = append(pending, p.gates[sh]...)
		p.gates[sh] = nil
	}
	for f := range p.feeds {
		f.gone = true
		if f.conn != nil {
			f.conn.Close()
		}
	}
	p.mu.Unlock()
	close(p.done)
	for _, g := range pending {
		g.fail(ErrQuorum)
	}
}

// CommittedGroup is the batcher.GroupSink surface: called at each fence
// group's commit point. It appends the group's effects to the owning
// shard's log, wakes the streaming feeders, and under WAIT mode takes
// ownership of the group's write completions (see package comment).
func (p *Primary) CommittedGroup(ops []store.Op, res []store.OpResult, idxs []int, cs []batcher.Completer) bool {
	// A fence group holds one shard's keys by construction; scans-only
	// callbacks carry no writes and nothing to replicate.
	firstWrite := -1
	for _, i := range idxs {
		if isWriteOp(ops[i]) {
			firstWrite = i
			break
		}
	}
	if firstWrite < 0 {
		return false
	}
	shardOf := p.st.ShardFor(ops[firstWrite].Key)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	stream := len(p.feeds) > 0 || p.cfg.WaitReplicas > 0
	if !stream {
		// Nobody is listening and no quorum is required: return before
		// extracting effects so an unreplicated server's write path stays
		// allocation-free. A replica attaching later full-resyncs anyway
		// (the empty log cannot be tailed).
		p.mu.Unlock()
		return false
	}
	// Extracted under the mutex: the log must append in commit order, and
	// the slice is retained by the log, so it is a fresh allocation.
	effects := effectsOf(nil, ops, res, idxs)
	seq := p.logs[shardOf].append(effects)
	for f := range p.feeds {
		select {
		case f.wake <- struct{}{}:
		default:
		}
	}
	k := p.cfg.WaitReplicas
	if k <= 0 {
		p.mu.Unlock()
		return false
	}
	if len(effects) == 0 {
		// Nothing changed state (failed inserts, absent deletes): there
		// is nothing for a replica to confirm, so the group counts as
		// trivially replicated and the pool acks it now.
		p.mu.Unlock()
		return false
	}
	g := &gate{seq: seq, deadline: time.Now().Add(p.cfg.WaitTimeout)}
	for _, i := range idxs {
		if isWriteOp(ops[i]) {
			g.cs = append(g.cs, cs[i])
			g.res = append(g.res, res[i])
		}
	}
	// Acks are cumulative per shard, so a replica that already confirmed
	// this position (possible when the committed callback raced an eager
	// ack) counts immediately.
	if p.ackCountLocked(shardOf, seq) >= k {
		p.mu.Unlock()
		g.release()
		return true
	}
	p.gates[shardOf] = append(p.gates[shardOf], g)
	select {
	case p.gateWake <- struct{}{}:
	default:
	}
	p.mu.Unlock()
	return true
}

// release completes every withheld write with its committed result.
func (g *gate) release() {
	for i, c := range g.cs {
		c.Complete(g.res[i], nil)
	}
}

// fail completes every withheld write with err (the write is durable on
// the primary; only the replication confirmation is missing).
func (g *gate) fail(err error) {
	for _, c := range g.cs {
		c.Complete(store.OpResult{}, err)
	}
}

// ackCountLocked counts replicas that acknowledged shard through seq.
func (p *Primary) ackCountLocked(shardOf int, seq uint64) int {
	n := 0
	for f := range p.feeds {
		if !f.gone && f.acked[shardOf] >= seq {
			n++
		}
	}
	return n
}

// onAck records a replica's cumulative acknowledgement and releases every
// gate the new quorum covers. Gates release strictly in per-shard
// sequence order — acks are cumulative, so a later gate's quorum implies
// the earlier one's.
func (p *Primary) onAck(f *feeder, shardOf int, seq uint64) {
	p.mu.Lock()
	if shardOf < 0 || shardOf >= len(p.logs) {
		p.mu.Unlock()
		return
	}
	if seq > f.acked[shardOf] {
		f.acked[shardOf] = seq
	}
	var sum uint64
	for _, s := range f.acked {
		sum += s
	}
	if sum > p.lastAck {
		p.lastAck = sum
	}
	var ready []*gate
	k := p.cfg.WaitReplicas
	q := p.gates[shardOf]
	for len(q) > 0 && p.ackCountLocked(shardOf, q[0].seq) >= k {
		ready = append(ready, q[0])
		q = q[1:]
	}
	p.gates[shardOf] = q
	p.mu.Unlock()
	for _, g := range ready {
		g.release()
	}
}

// expireGates is the quorum timeout monitor: a single goroutine that
// fails overdue gates with ErrQuorum. Deadlines are monotone per shard
// (gates register in commit order with a fixed timeout), so expiry pops
// from the front like release does.
func (p *Primary) expireGates() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		p.mu.Lock()
		var next time.Time
		for _, q := range p.gates {
			if len(q) > 0 && (next.IsZero() || q[0].deadline.Before(next)) {
				next = q[0].deadline
			}
		}
		p.mu.Unlock()
		if next.IsZero() {
			select {
			case <-p.gateWake:
				continue
			case <-p.done:
				return
			}
		}
		d := time.Until(next)
		if d < 0 {
			d = 0
		}
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-p.gateWake:
			if !timer.Stop() {
				<-timer.C
			}
			continue
		case <-p.done:
			return
		}
		now := time.Now()
		var overdue []*gate
		p.mu.Lock()
		for sh, q := range p.gates {
			n := 0
			for n < len(q) && !q[n].deadline.After(now) {
				n++
			}
			if n > 0 {
				overdue = append(overdue, q[:n]...)
				p.gates[sh] = q[n:]
			}
		}
		p.mu.Unlock()
		for _, g := range overdue {
			g.fail(ErrQuorum)
		}
	}
}

// Stats reports the primary's live replication view (store.ReplStats).
func (p *Primary) Stats() store.ReplStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := store.ReplStats{
		Role:         store.RolePrimary,
		WaitReplicas: p.cfg.WaitReplicas,
		LastAckSeq:   p.lastAck,
	}
	for f := range p.feeds {
		if f.gone {
			continue
		}
		st.Replicas++
		var lagGroups, lagBytes uint64
		for sh, l := range p.logs {
			if h := l.head(); h > f.acked[sh] {
				lagGroups += h - f.acked[sh]
				lagBytes += l.bytesBetween(f.acked[sh], h)
			}
		}
		if lagGroups > st.MaxLagGroups {
			st.MaxLagGroups = lagGroups
		}
		if lagBytes > st.MaxLagBytes {
			st.MaxLagBytes = lagBytes
		}
	}
	return st
}

// RunID exposes the primary's run identity (tests).
func (p *Primary) RunID() uint64 { return p.runID }

// ServeConn owns one replica connection after the server recognized its
// PSYNC request: psync is the request payload, br the connection's read
// side (it may hold buffered bytes), sess a store session ServeConn may
// use for snapshot reads for as long as it runs. It blocks until the link
// fails or the primary closes, and always leaves the connection closed.
func (p *Primary) ServeConn(c net.Conn, br *bufio.Reader, sess store.Session, psync []byte) error {
	defer c.Close()
	runID, acked, err := parsePSync(psync)
	if err != nil {
		return err
	}
	// The replication channel manages its own liveness (pings +
	// TCP/socket teardown); any idle deadline the request loop armed
	// must not fire mid-stream.
	c.SetReadDeadline(time.Time{})

	f := &feeder{
		conn: c,
		wake: make(chan struct{}, 1),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	shards := len(p.logs)
	full := runID != p.runID || len(acked) != shards
	if !full {
		for sh, l := range p.logs {
			if !l.canTail(acked[sh]) {
				full = true
				break
			}
		}
	}
	if full {
		// Positions are assigned during the snapshot below; park the
		// feeder at "caught up to nothing" so lag accounting stays sane
		// meanwhile.
		f.acked = make([]uint64, shards)
		f.next = make([]uint64, shards)
	} else {
		f.acked = append([]uint64(nil), acked...)
		f.next = make([]uint64, shards)
		for sh := range f.next {
			f.next[sh] = acked[sh] + 1
		}
	}
	p.feeds[f] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		f.gone = true
		delete(p.feeds, f)
		p.mu.Unlock()
	}()

	bw := bufio.NewWriterSize(c, 64<<10)
	var buf []byte
	var hello [13]byte
	binary.LittleEndian.PutUint64(hello[:8], p.runID)
	binary.LittleEndian.PutUint32(hello[8:12], uint32(shards))
	if full {
		hello[12] = 1
	}
	buf = writeFrame(buf[:0], frameHello, hello[:])
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if full {
		if err := p.sendSnapshot(bw, sess, f); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Split: this goroutine reads cumulative acks, a writer goroutine
	// streams batches as the logs grow.
	errc := make(chan error, 2)
	go func() { errc <- p.streamTo(bw, f) }()
	go func() { errc <- p.readAcks(br, f) }()
	err = <-errc
	c.Close() // unblocks the other side
	<-errc
	return err
}

// sendSnapshot ships the store's live contents cut at the current log
// head: every effect at or below the cut is in the snapshot, effects
// above it re-apply idempotently from the stream. The cut doubles as the
// replica's starting position.
func (p *Primary) sendSnapshot(bw *bufio.Writer, sess store.Session, f *feeder) error {
	p.mu.Lock()
	cut := make([]uint64, len(p.logs))
	for sh, l := range p.logs {
		cut[sh] = l.head()
	}
	p.mu.Unlock()

	keys := p.st.Contents()
	var res []store.OpResult
	var buf []byte
	for start := 0; start < len(keys); start += snapChunk {
		end := start + snapChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[start:end]
		res = sess.MultiGet(chunk, res)
		body := make([]byte, 0, 4+16*len(chunk))
		n := 0
		for i, k := range chunk {
			if !res[i].OK {
				continue // deleted since Contents; the stream will say so
			}
			n++
			body = putU64(body, k)
			body = putU64(body, res[i].Value)
		}
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(n))
		buf = writeFrame(buf[:0], frameSnapKV, cnt[:], body)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	body := make([]byte, 0, 4+8*len(cut))
	body = putU32(body, uint32(len(cut)))
	for _, s := range cut {
		body = putU64(body, s)
	}
	buf = writeFrame(buf[:0], frameSnapEnd, body)
	if _, err := bw.Write(buf); err != nil {
		return err
	}

	p.mu.Lock()
	copy(f.acked, cut)
	for sh := range f.next {
		f.next[sh] = cut[sh] + 1
	}
	p.mu.Unlock()
	return nil
}

// streamTo is a feeder's writer loop: encode and send every log group
// past the feeder's positions, then sleep on the wake channel (with a
// keepalive ping on idle).
func (p *Primary) streamTo(bw *bufio.Writer, f *feeder) error {
	var pending []logGroup
	var buf []byte
	ping := time.NewTicker(p.cfg.PingEvery)
	defer ping.Stop()
	for {
		sent := false
		for sh := range f.next {
			p.mu.Lock()
			if !p.logs[sh].canTail(f.next[sh] - 1) {
				p.mu.Unlock()
				// The replica fell off the bounded log: it cannot be
				// served from here. Drop the link; it will reconnect
				// and full-resync.
				return errors.New("repl: replica fell behind the log window")
			}
			pending = p.logs[sh].from(f.next[sh]-1, pending[:0])
			p.mu.Unlock()
			for _, g := range pending {
				body := make([]byte, 0, 16+17*len(g.effects))
				body = putU32(body, uint32(sh))
				body = putU64(body, g.seq)
				body = putU32(body, uint32(len(g.effects)))
				for _, e := range g.effects {
					body = append(body, e.Kind)
					body = putU64(body, e.Key)
					body = putU64(body, e.Value)
				}
				buf = writeFrame(buf[:0], frameBatch, body)
				if _, err := bw.Write(buf); err != nil {
					return err
				}
				f.next[sh] = g.seq + 1
				sent = true
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if sent {
			continue // the logs may have grown while we were writing
		}
		select {
		case <-f.wake:
		case <-ping.C:
			buf = writeFrame(buf[:0], framePing)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-p.done:
			return ErrClosed
		}
	}
}

// readAcks is a feeder's reader loop: cumulative ack frames drive quorum
// release and lag accounting.
func (p *Primary) readAcks(br *bufio.Reader, f *feeder) error {
	var buf []byte
	for {
		op, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			return err
		}
		if op != frameAck || len(payload) != 12 {
			return errors.New("repl: unexpected frame from replica")
		}
		sh := int(binary.LittleEndian.Uint32(payload))
		seq := binary.LittleEndian.Uint64(payload[4:])
		p.onAck(f, sh, seq)
	}
}

var _ batcher.GroupSink = (*Primary)(nil)

package repl

import (
	"bytes"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
)

func TestShardLogAppendTrimTail(t *testing.T) {
	l := newShardLog(4)
	if l.head() != 0 {
		t.Fatalf("empty head = %d", l.head())
	}
	if !l.canTail(0) {
		t.Fatal("empty log must be tailable from 0")
	}
	for i := 0; i < 10; i++ {
		seq := l.append([]Effect{{Kind: effectPut, Key: uint64(i), Value: 1}})
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if l.head() != 10 {
		t.Fatalf("head = %d, want 10", l.head())
	}
	// Retention 4: groups 7..10 retained, positions before 6 fell off.
	if l.canTail(5) {
		t.Fatal("position 5 fell off the window but canTail said yes")
	}
	if !l.canTail(6) {
		t.Fatal("position 6 is the window edge and must be tailable")
	}
	if !l.canTail(10) || !l.canTail(11) {
		t.Fatal("at-or-past head must be tailable")
	}
	got := l.from(8, nil)
	if len(got) != 2 || got[0].seq != 9 || got[1].seq != 10 {
		t.Fatalf("from(8) = %+v", got)
	}
	if got[0].effects[0].Key != 8 {
		t.Fatalf("group 9 carries key %d", got[0].effects[0].Key)
	}
	if n := len(l.from(10, nil)); n != 0 {
		t.Fatalf("from(head) returned %d groups", n)
	}
}

func TestShardLogLagBytes(t *testing.T) {
	l := newShardLog(8)
	l.append([]Effect{{Kind: effectPut, Key: 1, Value: 1}})                            // 17 bytes
	l.append([]Effect{{Kind: effectPut, Key: 2, Value: 2}, {Kind: effectDel, Key: 1}}) // 34
	l.append(nil)                                                                      // 0
	if got := l.bytesBetween(0, 3); got != 51 {
		t.Fatalf("bytesBetween(0,3) = %d, want 51", got)
	}
	if got := l.bytesBetween(1, 3); got != 34 {
		t.Fatalf("bytesBetween(1,3) = %d, want 34", got)
	}
	if got := l.bytesBetween(3, 3); got != 0 {
		t.Fatalf("bytesBetween(3,3) = %d, want 0", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frame := writeFrame(nil, frameBatch, []byte{1, 2}, []byte{3})
	op, payload, _, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if op != frameBatch || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("round trip: op %d payload %v", op, payload)
	}
	// Oversized length must be refused, not allocated.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, _, err := readFrame(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestPSyncPayloadRoundTrip(t *testing.T) {
	p := PSyncPayload(7, []uint64{3, 0, 9})
	runID, acked, err := parsePSync(p)
	if err != nil {
		t.Fatal(err)
	}
	if runID != 7 || len(acked) != 3 || acked[0] != 3 || acked[2] != 9 {
		t.Fatalf("parsed runID %d acked %v", runID, acked)
	}
	if _, _, err := parsePSync(p[:len(p)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestEffectsOf(t *testing.T) {
	ops := []store.Op{
		{Kind: shard.OpPut, Key: 1, Value: 10},
		{Kind: shard.OpInsert, Key: 2, Value: 20},
		{Kind: shard.OpInsert, Key: 3, Value: 30}, // failed insert
		{Kind: shard.OpUpdate, Key: 4, Value: 40},
		{Kind: shard.OpUpdate, Key: 5, Value: 50}, // absent key
		{Kind: shard.OpDelete, Key: 6},
		{Kind: shard.OpDelete, Key: 7}, // absent key
		{Kind: shard.OpGet, Key: 8},
	}
	res := []store.OpResult{
		{}, {OK: true}, {OK: false}, {OK: true, Value: 40}, {OK: false},
		{OK: true}, {OK: false}, {OK: true, Value: 99},
	}
	idxs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got := effectsOf(nil, ops, res, idxs)
	want := []Effect{
		{Kind: effectPut, Key: 1, Value: 10},
		{Kind: effectPut, Key: 2, Value: 20},
		{Kind: effectPut, Key: 4, Value: 40},
		{Kind: effectDel, Key: 6},
	}
	if len(got) != len(want) {
		t.Fatalf("effects %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("effect %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

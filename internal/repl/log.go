package repl

// shardLog is one shard's bounded replication log: committed fence groups in
// sequence order, trimmed from the front once the retention cap is
// reached. A replica whose position fell off the front cannot tail any
// more and must full-resync — bounded memory is the deliberate trade; the
// snapshot path is the backstop. The caller (Primary) serializes access
// under its own mutex.
//
// Sequence numbers start at 1; position 0 means "nothing acknowledged".
type shardLog struct {
	groups   []logGroup
	firstSeq uint64 // seq of groups[0]; meaningful only when len > 0
	nextSeq  uint64 // seq the next append receives
	cumBytes uint64 // encoded bytes ever appended (monotone)
	max      int
}

// logGroup is one appended fence group. Effects are immutable after
// append, so feeders may encode them outside the primary's mutex.
type logGroup struct {
	seq     uint64
	effects []Effect
	// cum is the log's cumulative encoded byte count through this group;
	// the difference of two groups' cum values is the stream bytes
	// between them, which is what per-replica lag-bytes accounting needs
	// without walking the log.
	cum uint64
}

func newShardLog(max int) *shardLog {
	if max <= 0 {
		max = 1024
	}
	return &shardLog{nextSeq: 1, max: max}
}

// head reports the latest appended sequence (0 when nothing ever was).
func (l *shardLog) head() uint64 { return l.nextSeq - 1 }

// append adds one group's effects (which must not be mutated afterwards)
// and returns its sequence.
func (l *shardLog) append(effects []Effect) uint64 {
	seq := l.nextSeq
	l.nextSeq++
	l.cumBytes += uint64(17 * len(effects)) // 1 kind + 8 key + 8 value
	if len(l.groups) == 0 {
		l.firstSeq = seq
	}
	l.groups = append(l.groups, logGroup{seq: seq, effects: effects, cum: l.cumBytes})
	if len(l.groups) > l.max {
		// Trim from the front; shift rather than reslice so the backing
		// array does not grow without bound.
		n := copy(l.groups, l.groups[len(l.groups)-l.max:])
		for i := n; i < len(l.groups); i++ {
			l.groups[i] = logGroup{}
		}
		l.groups = l.groups[:n]
		l.firstSeq = l.groups[0].seq
	}
	return seq
}

// canTail reports whether the log still retains everything after position
// from (i.e. a replica acknowledged through from can resume without a
// snapshot).
func (l *shardLog) canTail(from uint64) bool {
	if from >= l.head() {
		return true // nothing to serve: trivially tailable
	}
	return len(l.groups) > 0 && l.firstSeq <= from+1
}

// from appends to dst every retained group with seq > from, in order.
func (l *shardLog) from(from uint64, dst []logGroup) []logGroup {
	if len(l.groups) == 0 || l.head() <= from {
		return dst
	}
	start := 0
	if from+1 > l.firstSeq {
		start = int(from + 1 - l.firstSeq)
	}
	return append(dst, l.groups[start:]...)
}

// bytesBetween reports the encoded stream bytes between positions a and b
// (a ≤ b), using the cumulative counters; positions older than the
// retained window count from the window's start.
func (l *shardLog) bytesBetween(a, b uint64) uint64 {
	return l.cumAt(b) - l.cumAt(a)
}

// cumAt reports the cumulative byte counter at position seq (clamped to
// the retained window).
func (l *shardLog) cumAt(seq uint64) uint64 {
	if len(l.groups) == 0 || seq < l.firstSeq {
		if len(l.groups) == 0 {
			return l.cumBytes
		}
		return l.groups[0].cum - uint64(17*len(l.groups[0].effects))
	}
	if seq >= l.head() {
		return l.cumBytes
	}
	return l.groups[seq-l.firstSeq].cum
}

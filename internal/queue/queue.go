// Package queue implements the Michael–Scott lock-free queue (PODC'96) in
// the traversal form of the NVTraverse paper, plus the hand-tuned
// DurableQueue of Friedman et al. (PPoPP'18) — the one prior durable
// structure with a published correctness proof, which the paper cites as
// its only proven predecessor.
//
// Traversal-form mapping (the paper lists queues among traversal
// structures): the core tree is the chain of nodes hanging off a
// persistent anchor (the current dummy node); the tail pointer is an
// auxiliary entry point (Property 2) that findEntry uses as a shortcut and
// recovery recomputes. Enqueue traverses from the tail hint to the last
// node, then links under Protocol 2; dequeue's traversal is the two reads
// (anchor, dummy.next) and its critical method swings the anchor —
// disconnecting the old dummy, the unique disconnection instruction.
package queue

import (
	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Node is one queue node; Value is immutable after initialization. Padded
// to a full 64-byte line: the persistence model is line-granular, and
// nodes must not share their crash fate (see list.Node).
type Node struct {
	Value pmem.Cell
	Next  pmem.Cell
	_     [48]byte
}

// Queue is the NVTraverse-transformable Michael–Scott queue.
type Queue struct {
	mem *pmem.Memory
	dom *epoch.Domain
	ar  *arena.Arena[Node]
	pol persist.Policy

	// Root cells live on dedicated registered lines (not embedded in the Go
	// struct) so the durable backend can address them on disk; they get one
	// line each, as the previous embedded layout's padding arranged.
	anchor *pmem.Cell // persistent: ref to the current dummy node
	tail   *pmem.Cell // auxiliary: hint to a node near the end
}

// New creates an empty queue (a single persisted dummy node).
func New(mem *pmem.Memory, pol persist.Policy) *Queue {
	dom := epoch.New(mem.MaxThreads())
	q := &Queue{
		mem: mem,
		dom: dom,
		ar:  arena.New[Node](dom, mem.MaxThreads()),
		pol: pol,
	}
	roots := mem.NewSpace()
	lines := roots.Lines(0, 2)
	q.anchor, q.tail = &lines[0][0], &lines[1][0]
	q.ar.Persist(mem.NewSpace())
	t := mem.NewThread()
	d := q.ar.Alloc(t.ID)
	n := q.ar.Get(d)
	t.Store(&n.Value, 0)
	t.Store(&n.Next, pmem.NilRef)
	t.Store(q.anchor, pmem.MakeRef(d))
	t.Store(q.tail, pmem.MakeRef(d))
	t.Flush(&n.Value)
	t.Flush(&n.Next)
	t.Flush(q.anchor)
	t.Fence()
	return q
}

func (q *Queue) node(idx uint64) *Node { return q.ar.Get(idx) }

// Enqueue appends value.
func (q *Queue) Enqueue(t *pmem.Thread, value uint64) {
	q.dom.Enter(t.ID)
	defer q.dom.Exit(t.ID)
	pol := q.pol
	idx := q.ar.Alloc(t.ID)
	n := q.node(idx)
	t.Store(&n.Value, value)
	t.Store(&n.Next, pmem.NilRef)
	pol.InitWrite(t, &n.Value)
	pol.InitWrite(t, &n.Next)
	for {
		// findEntry: the tail hint (auxiliary, may lag). The hint is only
		// ever written after the link reaching its target was fenced, so
		// the hint's target is persistently reachable.
		last := pmem.RefIndex(t.Load(q.tail))
		// traverse: walk to the actual last node, remembering the link the
		// walk followed into it.
		lastN := q.node(last)
		var reach *pmem.Cell
		next := t.Load(&lastN.Next)
		pol.TraverseRead(t, &lastN.Next)
		for !pmem.IsNil(next) {
			reach = &lastN.Next
			last = pmem.RefIndex(next)
			lastN = q.node(last)
			next = t.Load(&lastN.Next)
			pol.TraverseRead(t, &lastN.Next)
		}
		// Protocol 1: ensureReachable flushes the link that made the
		// destination reachable (§4.1: the current parent's link — links
		// earlier on the path were fenced by the enqueuers whose CASes
		// created their successors, so only the newest link can be
		// unpersisted); makePersistent flushes the destination's next
		// field, which the link CAS depends on. Omitting the reach link
		// loses completed enqueues that linked behind an in-flight
		// enqueue whose own link CAS was still unfenced at the crash:
		// rolling that one link back severs every later node. Caught by
		// crashtest.RunQueue torture.
		t.Scratch = t.Scratch[:0]
		if reach != nil {
			cells := [...]*pmem.Cell{reach, &lastN.Next}
			pol.PostTraverse(t, cells[:])
		} else {
			cells := [...]*pmem.Cell{&lastN.Next}
			pol.PostTraverse(t, cells[:])
		}
		// critical: link, persist, then (volatile) advance the tail hint.
		pol.BeforeCAS(t)
		ok := t.CAS(&lastN.Next, next, pmem.MakeRef(idx))
		pol.Wrote(t, &lastN.Next)
		pol.BeforeReturn(t)
		if ok {
			//nvcheck:ignore writehook -- q.tail is the volatile tail hint (Property 2): never flushed by design, Recover recomputes it from the durable chain
			t.CAS(q.tail, pmem.Dirty(pmem.MakeRef(last)), pmem.MakeRef(idx))
			t.CountOp()
			return
		}
	}
}

// Dequeue removes and returns the oldest value; ok=false when empty.
func (q *Queue) Dequeue(t *pmem.Thread) (value uint64, ok bool) {
	q.dom.Enter(t.ID)
	defer q.dom.Exit(t.ID)
	pol := q.pol
	for {
		av := t.Load(q.anchor)
		pol.TraverseRead(t, q.anchor)
		dummy := pmem.RefIndex(av)
		dN := q.node(dummy)
		next := t.Load(&dN.Next)
		pol.TraverseRead(t, &dN.Next)
		cells := [...]*pmem.Cell{q.anchor, &dN.Next}
		pol.PostTraverse(t, cells[:])
		if pmem.IsNil(next) {
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		// Never disconnect the node the tail hint points at without
		// moving the hint forward first (the classic Michael–Scott
		// help): once the anchor passes a node while the hint still
		// names it, a stalled enqueuer's delayed hint-CAS could later
		// re-install the by-then retired (and recyclable) node into the
		// hint, and the next enqueue would traverse reclaimed memory.
		// Advancing the hint here changes its value, so every such
		// delayed CAS fails its expectation.
		if tv := t.Load(q.tail); pmem.RefIndex(tv) == dummy {
			//nvcheck:ignore writehook -- q.tail is the volatile tail hint (Property 2): never flushed by design, Recover recomputes it from the durable chain
			t.CAS(q.tail, tv, pmem.ClearTags(next))
		}
		v := t.Load(&q.node(pmem.RefIndex(next)).Value) // immutable: no flush
		pol.BeforeCAS(t)
		swung := t.CAS(q.anchor, av, pmem.ClearTags(next))
		pol.Wrote(t, q.anchor)
		pol.BeforeReturn(t)
		if swung {
			// Point the (volatile) tail hint away from the old dummy
			// before retiring it: a thread entering a *later* epoch
			// section must never read a hint to a reusable node.
			tv := t.Load(q.tail)
			if pmem.RefIndex(tv) == dummy {
				//nvcheck:ignore writehook -- q.tail is the volatile tail hint (Property 2): never flushed by design, Recover recomputes it from the durable chain
				t.CAS(q.tail, tv, pmem.ClearTags(next))
			}
			// The disconnection of the old dummy is persistent.
			q.ar.Retire(t.ID, dummy)
			t.CountOp()
			return v, true
		}
	}
}

// Recover recomputes the auxiliary tail from the persistent chain and
// persists nothing further (the anchor and links are already durable).
func (q *Queue) Recover(t *pmem.Thread) {
	q.dom.Enter(t.ID)
	defer q.dom.Exit(t.ID)
	last := pmem.RefIndex(t.Load(q.anchor))
	for {
		next := t.Load(&q.node(last).Next)
		if pmem.IsNil(next) {
			break
		}
		last = pmem.RefIndex(next)
	}
	t.Store(q.tail, pmem.MakeRef(last))
}

// Contents returns the queued values front to back (quiescent use only).
func (q *Queue) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	cur := pmem.RefIndex(t.Load(&q.node(pmem.RefIndex(t.Load(q.anchor))).Next))
	for cur != 0 {
		out = append(out, t.Load(&q.node(cur).Value))
		cur = pmem.RefIndex(t.Load(&q.node(cur).Next))
	}
	return out
}

// Len counts the queued values (quiescent use only).
func (q *Queue) Len(t *pmem.Thread) int { return len(q.Contents(t)) }

package queue

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newQueue(pol persist.Policy) (*Queue, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	q := New(mem, pol)
	return q, mem.NewThread()
}

func TestFIFO(t *testing.T) {
	for _, pol := range persist.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			q, th := newQueue(pol)
			if _, ok := q.Dequeue(th); ok {
				t.Fatalf("empty queue dequeued")
			}
			for v := uint64(1); v <= 100; v++ {
				q.Enqueue(th, v)
			}
			for v := uint64(1); v <= 100; v++ {
				got, ok := q.Dequeue(th)
				if !ok || got != v {
					t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
				}
			}
			if _, ok := q.Dequeue(th); ok {
				t.Fatalf("drained queue dequeued")
			}
		})
	}
}

func TestQuickFIFOAgainstSlice(t *testing.T) {
	type op struct {
		Enq bool
		Val uint16
	}
	f := func(ops []op) bool {
		q, th := newQueue(persist.NVTraverse{})
		var model []uint64
		for _, o := range ops {
			if o.Enq {
				q.Enqueue(th, uint64(o.Val)+1)
				model = append(model, uint64(o.Val)+1)
			} else {
				got, ok := q.Dequeue(th)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Len(th) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	q := New(mem, persist.NVTraverse{})
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	var wg, prodWG sync.WaitGroup
	var got sync.Map
	var consumed [consumers]int
	for p := 0; p < producers; p++ {
		th := mem.NewThread()
		wg.Add(1)
		prodWG.Add(1)
		go func(p int, th *pmem.Thread) {
			defer wg.Done()
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				q.Enqueue(th, uint64(p*perProd+i)+1)
			}
		}(p, th)
	}
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		th := mem.NewThread()
		wg.Add(1)
		go func(c int, th *pmem.Thread) {
			defer wg.Done()
			for {
				v, ok := q.Dequeue(th)
				if ok {
					if _, dup := got.LoadOrStore(v, c); dup {
						t.Errorf("value %d dequeued twice", v)
						return
					}
					consumed[c]++
					continue
				}
				select {
				case <-done:
					// Drain what's left after producers stopped.
					for {
						v, ok := q.Dequeue(th)
						if !ok {
							return
						}
						if _, dup := got.LoadOrStore(v, c); dup {
							t.Errorf("value %d dequeued twice", v)
							return
						}
						consumed[c]++
					}
				default:
				}
			}
		}(c, th)
	}
	// Consumers may only switch into drain-and-exit mode once no further
	// enqueue can arrive; closing done any earlier lets every consumer
	// exit on a momentarily-empty queue and strands the rest.
	go func() {
		prodWG.Wait()
		close(done)
	}()
	wg.Wait()
	total := 0
	for _, c := range consumed {
		total += c
	}
	if total != producers*perProd {
		t.Fatalf("consumed %d, want %d", total, producers*perProd)
	}
}

func TestTraversalQueueFlushCounts(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	q := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	q.Enqueue(th, 1)
	mem.ResetStats()
	q.Enqueue(th, 2)
	s := mem.Stats()
	if s.Flushes == 0 || s.Flushes > 6 {
		t.Fatalf("enqueue flushed %d cells", s.Flushes)
	}
	mem.ResetStats()
	q.Dequeue(th)
	s = mem.Stats()
	if s.Flushes == 0 || s.Flushes > 6 {
		t.Fatalf("dequeue flushed %d cells", s.Flushes)
	}
}

func TestRecoverRebuildsTail(t *testing.T) {
	mem := pmem.NewTracked()
	q := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for v := uint64(1); v <= 10; v++ {
		q.Enqueue(th, v)
	}
	// Wreck the volatile tail hint the way a crash would.
	th.Store(q.tail, th.Load(q.anchor))
	q.Recover(th)
	q.Enqueue(th, 11)
	want := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	got := q.Contents(th)
	if len(got) != len(want) {
		t.Fatalf("contents = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCrashDurability(t *testing.T) {
	// Completed enqueues and dequeues survive a crash; the queue remains a
	// contiguous segment of the enqueued sequence.
	for seed := int64(1); seed <= 5; seed++ {
		mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 8})
		q := New(mem, persist.NVTraverse{})
		th := mem.NewThread()
		var enqueued, dequeued uint64
		for v := uint64(1); v <= 50; v++ {
			q.Enqueue(th, v)
			enqueued = v
		}
		for i := 0; i < 20; i++ {
			if _, ok := q.Dequeue(th); ok {
				dequeued++
			}
		}
		mem.Crash()
		mem.FinishCrash(0, seed)
		mem.Restart()
		rec := mem.NewThread()
		q.Recover(rec)
		got := q.Contents(rec)
		if uint64(len(got)) != enqueued-dequeued {
			t.Fatalf("seed %d: %d values after crash, want %d", seed, len(got), enqueued-dequeued)
		}
		for i, v := range got {
			if v != dequeued+uint64(i)+1 {
				t.Fatalf("seed %d: contents[%d] = %d, want %d", seed, i, v, dequeued+uint64(i)+1)
			}
		}
	}
}

// --- DurableQueue ---

func TestDurableQueueFIFO(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	q := NewDurable(mem)
	th := mem.NewThread()
	if _, ok := q.Dequeue(th); ok {
		t.Fatalf("empty queue dequeued")
	}
	for v := uint64(1); v <= 100; v++ {
		q.Enqueue(th, v)
	}
	for v := uint64(1); v <= 100; v++ {
		got, ok := q.Dequeue(th)
		if !ok || got != v {
			t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
		}
		if r := q.Returned(th, th.ID); r != v {
			t.Fatalf("returned slot = %d, want %d", r, v)
		}
	}
}

func TestDurableQueueConcurrent(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	q := NewDurable(mem)
	const threads = 6
	var wg sync.WaitGroup
	var got sync.Map
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		wg.Add(1)
		go func(i int, th *pmem.Thread) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				q.Enqueue(th, uint64(i*1000+j)+1)
				if v, ok := q.Dequeue(th); ok {
					if _, dup := got.LoadOrStore(v, i); dup {
						t.Errorf("value %d dequeued twice", v)
					}
				}
			}
		}(i, th)
	}
	wg.Wait()
}

func TestDurableQueueCrashExactlyOnce(t *testing.T) {
	// A dequeue whose claim persisted is visible after the crash both in
	// the per-thread result slot and as a consumed node.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 8})
	q := NewDurable(mem)
	th := mem.NewThread()
	for v := uint64(1); v <= 10; v++ {
		q.Enqueue(th, v)
	}
	v, ok := q.Dequeue(th)
	if !ok || v != 1 {
		t.Fatalf("dequeue = %d,%v", v, ok)
	}
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	rec := mem.NewThread()
	q.Recover(rec)
	if r := q.Returned(rec, th.ID); r != 1 {
		t.Fatalf("returned slot lost: %d", r)
	}
	got := q.Contents(rec)
	if len(got) != 9 || got[0] != 2 {
		t.Fatalf("contents after crash = %v", got)
	}
	// The queue keeps operating after recovery.
	q.Enqueue(rec, 11)
	if v, ok := q.Dequeue(rec); !ok || v != 2 {
		t.Fatalf("post-recovery dequeue = %d,%v", v, ok)
	}
}

package queue_test

// Crash torture for both queues under the line-granular crash model: random
// concurrent enqueues/dequeues, a crash at an arbitrary point (with random
// whole-line evictions), recovery, then the FIFO durable-linearizability
// check of crashtest.RunQueue. External test package: the harness factory
// takes the queue through its exported surface, same as nvcrash does.

import (
	"testing"

	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/queue"
)

func tortureRounds(t *testing.T) int {
	if testing.Short() {
		return 3
	}
	return 8
}

func runQueueTorture(t *testing.T, name string, factory func(mem *pmem.Memory) crashtest.QueueTarget) {
	t.Helper()
	for r := 0; r < tortureRounds(t); r++ {
		res := crashtest.RunQueue(crashtest.OrderOptions{
			Workers:        4,
			OpsBeforeCrash: 300,
			AddRatio:       60,
			Prefill:        16,
			EvictProb:      0.25,
			Seed:           int64(r) + 1,
		}, factory)
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				t.Errorf("%s round %d: %s", name, r, v)
			}
			t.Fatalf("%s round %d: %d violations (completed=%d inflight=%d survivors=%d)",
				name, r, len(res.Violations), res.Completed, res.InFlight, res.Survivors)
		}
		if res.Completed < 300 {
			t.Fatalf("%s round %d: only %d ops completed", name, r, res.Completed)
		}
	}
}

// runQueueTortureFile repeats the rounds against the WAL-backed file
// directory: the crash abandons the memory (SIGKILL semantics — unflushed
// userspace buffers die), and the checker runs on a structure reopened
// from the files.
func runQueueTortureFile(t *testing.T, name string, factory func(mem *pmem.Memory) crashtest.QueueTarget) {
	t.Helper()
	for r := 0; r < tortureRounds(t); r++ {
		res := crashtest.RunQueue(crashtest.OrderOptions{
			Workers:        4,
			OpsBeforeCrash: 300,
			AddRatio:       60,
			Prefill:        16,
			Seed:           int64(r) + 1,
			Dir:            t.TempDir(),
		}, factory)
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				t.Errorf("%s round %d: %s", name, r, v)
			}
			t.Fatalf("%s round %d: %d violations (completed=%d inflight=%d survivors=%d)",
				name, r, len(res.Violations), res.Completed, res.InFlight, res.Survivors)
		}
		if res.Completed < 300 {
			t.Fatalf("%s round %d: only %d ops completed", name, r, res.Completed)
		}
	}
}

func TestCrashTortureTraversalQueue(t *testing.T) {
	runQueueTorture(t, "nvtraverse", func(mem *pmem.Memory) crashtest.QueueTarget {
		return queue.New(mem, persist.NVTraverse{})
	})
}

func TestCrashTortureTraversalQueueFile(t *testing.T) {
	runQueueTortureFile(t, "nvtraverse-file", func(mem *pmem.Memory) crashtest.QueueTarget {
		return queue.New(mem, persist.NVTraverse{})
	})
}

func TestCrashTortureTraversalQueueIzraelevitz(t *testing.T) {
	runQueueTorture(t, "izraelevitz", func(mem *pmem.Memory) crashtest.QueueTarget {
		return queue.New(mem, persist.Izraelevitz{})
	})
}

func TestCrashTortureDurableQueue(t *testing.T) {
	runQueueTorture(t, "durable", func(mem *pmem.Memory) crashtest.QueueTarget {
		return queue.NewDurable(mem)
	})
}

package queue

import (
	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/pmem"
)

// DurableQueue is the hand-tuned durable lock-free queue of Friedman,
// Herlihy, Marathe and Petrank (PPoPP'18) — the paper's cited "only
// previously known durable algorithm that was proven correct". Unlike the
// policy-driven Michael–Scott queue in this package, its flushes are
// placed by expert reasoning rather than by a transformation:
//
//   - enqueue persists the new node and the link that publishes it;
//   - dequeue claims a node by CASing a per-node dequeuer ID, persists the
//     claim and the per-thread returned value *before* advancing the head,
//     giving exactly-once semantics across crashes;
//   - the head pointer itself is persisted lazily — recovery re-derives it
//     by skipping claimed nodes.
type DurableQueue struct {
	mem *pmem.Memory
	dom *epoch.Domain
	ar  *arena.Arena[DNode]

	head pmem.Cell
	_    [pmem.LineSize - 8]byte // head and tail persist independently
	tail pmem.Cell
	// returned[tid] is the persistent per-thread result slot (the paper's
	// returnedValues array): after a crash, each thread can learn the
	// value its last dequeue returned. One line per slot, as the paper's
	// implementation pads them: the slots are per-thread persistence
	// state and must not share a crash fate (or a writeback) with a
	// neighbor's slot.
	returned []returnedSlot
}

type returnedSlot struct {
	v pmem.Cell
	_ [pmem.LineSize - 8]byte
}

// DNode is a DurableQueue node. DeqTID is 0 while unclaimed; a dequeuer
// claims the node by CASing its thread ID + 1 into it. Padded to one line
// (see list.Node).
type DNode struct {
	Value  pmem.Cell
	Next   pmem.Cell
	DeqTID pmem.Cell
	_      [40]byte
}

// EmptyMarker is stored in a thread's returned slot when its dequeue
// observed an empty queue (distinguishable from any claimed value slot).
const EmptyMarker = ^uint64(0)

// NewDurable creates an empty DurableQueue.
func NewDurable(mem *pmem.Memory) *DurableQueue {
	dom := epoch.New(mem.MaxThreads())
	q := &DurableQueue{
		mem:      mem,
		dom:      dom,
		ar:       arena.New[DNode](dom, mem.MaxThreads()),
		returned: make([]returnedSlot, mem.MaxThreads()),
	}
	t := mem.NewThread()
	d := q.ar.Alloc(t.ID)
	n := q.ar.Get(d)
	t.Store(&n.Value, 0)
	t.Store(&n.Next, pmem.NilRef)
	t.Store(&n.DeqTID, 1) // the dummy counts as claimed
	t.Store(&q.head, pmem.MakeRef(d))
	t.Store(&q.tail, pmem.MakeRef(d))
	t.Flush(&n.Value)
	t.Flush(&n.Next)
	t.Flush(&n.DeqTID)
	t.Flush(&q.head)
	t.Fence()
	return q
}

func (q *DurableQueue) node(idx uint64) *DNode { return q.ar.Get(idx) }

// Enqueue appends value.
func (q *DurableQueue) Enqueue(t *pmem.Thread, value uint64) {
	q.dom.Enter(t.ID)
	defer q.dom.Exit(t.ID)
	idx := q.ar.Alloc(t.ID)
	n := q.node(idx)
	t.Store(&n.Value, value)
	t.Store(&n.Next, pmem.NilRef)
	t.Store(&n.DeqTID, 0)
	t.Flush(&n.Value)
	t.Flush(&n.Next)
	t.Flush(&n.DeqTID)
	t.Fence()
	for {
		lv := t.Load(&q.tail)
		last := pmem.RefIndex(lv)
		lastN := q.node(last)
		next := t.Load(&lastN.Next)
		if lv != t.Load(&q.tail) {
			continue
		}
		if pmem.IsNil(next) {
			if t.CAS(&lastN.Next, next, pmem.MakeRef(idx)) {
				t.Flush(&lastN.Next)
				t.Fence()
				t.CAS(&q.tail, lv, pmem.MakeRef(idx))
				t.CountOp()
				return
			}
		} else {
			// Help: the lagging link must be persistent before the tail
			// moves past it.
			t.Flush(&lastN.Next)
			t.Fence()
			t.CAS(&q.tail, lv, pmem.ClearTags(next))
		}
	}
}

// Dequeue removes and returns the oldest value; ok=false when empty. The
// claim and the per-thread result slot are persistent before the head
// moves, so a crash can neither lose nor duplicate a dequeued value.
func (q *DurableQueue) Dequeue(t *pmem.Thread) (value uint64, ok bool) {
	q.dom.Enter(t.ID)
	defer q.dom.Exit(t.ID)
	for {
		hv := t.Load(&q.head)
		first := pmem.RefIndex(hv)
		lv := t.Load(&q.tail)
		firstN := q.node(first)
		next := t.Load(&firstN.Next)
		if hv != t.Load(&q.head) {
			continue
		}
		if first == pmem.RefIndex(lv) {
			if pmem.IsNil(next) {
				t.Store(&q.returned[t.ID].v, EmptyMarker)
				t.Flush(&q.returned[t.ID].v)
				t.Fence()
				t.CountOp()
				return 0, false
			}
			t.Flush(&firstN.Next)
			t.Fence()
			t.CAS(&q.tail, lv, pmem.ClearTags(next))
			continue
		}
		nextIdx := pmem.RefIndex(next)
		nextN := q.node(nextIdx)
		v := t.Load(&nextN.Value)
		if t.CAS(&nextN.DeqTID, 0, uint64(t.ID)+1) {
			t.Flush(&nextN.DeqTID)
			t.Store(&q.returned[t.ID].v, v)
			t.Flush(&q.returned[t.ID].v)
			t.Fence()
			if t.CAS(&q.head, hv, pmem.ClearTags(next)) {
				t.Flush(&q.head)
				t.Fence()
				q.ar.Retire(t.ID, first)
			}
			t.CountOp()
			return v, true
		}
		// Help the claimer: persist its claim, then advance the head.
		if t.Load(&q.head) == hv {
			t.Flush(&nextN.DeqTID)
			t.Fence()
			if t.CAS(&q.head, hv, pmem.ClearTags(next)) {
				t.Flush(&q.head)
				t.Fence()
				q.ar.Retire(t.ID, first)
			}
		}
	}
}

// Returned exposes a thread's persistent result slot (crash tests).
func (q *DurableQueue) Returned(t *pmem.Thread, tid int) uint64 {
	return t.Load(&q.returned[tid].v)
}

// Recover re-derives head and tail: the persisted head may lag, so skip
// every claimed node; the persisted claim bits are the source of truth.
func (q *DurableQueue) Recover(t *pmem.Thread) {
	q.dom.Enter(t.ID)
	defer q.dom.Exit(t.ID)
	cur := pmem.RefIndex(t.Load(&q.head))
	for {
		next := t.Load(&q.node(cur).Next)
		ni := pmem.RefIndex(next)
		if ni == 0 || t.Load(&q.node(ni).DeqTID) == 0 {
			break
		}
		cur = ni
	}
	t.Store(&q.head, pmem.MakeRef(cur))
	t.Flush(&q.head)
	t.Fence()
	last := cur
	for {
		next := t.Load(&q.node(last).Next)
		if pmem.IsNil(next) {
			break
		}
		last = pmem.RefIndex(next)
	}
	t.Store(&q.tail, pmem.MakeRef(last))
}

// Contents returns the unclaimed values front to back (quiescent use).
func (q *DurableQueue) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	cur := pmem.RefIndex(t.Load(&q.head))
	for {
		next := t.Load(&q.node(cur).Next)
		ni := pmem.RefIndex(next)
		if ni == 0 {
			return out
		}
		if t.Load(&q.node(ni).DeqTID) == 0 {
			out = append(out, t.Load(&q.node(ni).Value))
		}
		cur = ni
	}
}

package batcher

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
	"repro/internal/store"
)

// Pool is the shard-affine generation of the group-commit stage: instead of
// one central batcher funnelling every connection's writes through a single
// session, the pool runs one worker per shard group, each owning its own
// store session and running its own group-commit loop. Connections hand
// decoded operations to a worker through a bounded ring (a buffered channel
// of by-value requests — no allocation per submission), routed by the key's
// shard, so an operation reaches the session that owns its shard without
// crossing a central queue or a shared pending list. The group-commit rule
// per worker is backlog-driven: a worker flushes whatever its ring holds
// (capped at MaxBatch), so batches form naturally from what queued during
// the previous flush; only a lonely request — one with an empty ring behind
// it — waits up to MaxDelay for a companion before paying a fence alone.
//
// Correctness is unchanged — reply-after-fence per fence group — and
// read-your-writes across workers is the caller's (the server connection's)
// WaitGroup over all its outstanding submissions, which is worker-agnostic:
// a completion from any worker counts it down. After every flush a worker
// probes the store's automatic checkpoint threshold (MaybeCheckpoint), so
// on durable stores the WAL stays bounded under live traffic with no
// background ticker.

// Completer receives a submitted operation's completion exactly once: after
// the commit fence covering the operation landed, or with ErrClosed /
// ErrCrashed when it never will. Implementations must be quick and must not
// call back into the pool; Complete normally runs on a worker goroutine but
// runs on the submitter's goroutine when the pool is already closed or
// crashed at Submit time. The interface (rather than a callback func) is
// what keeps the submit path allocation-free: callers hand in a reusable
// object, not a fresh closure.
type Completer interface {
	Complete(res store.OpResult, err error)
}

// GroupSink observes every durably committed fence group, called on the
// worker goroutine right after the group's commit fence landed and before
// any of the group's completions fire — the same instant the WAL covering
// the group is on disk, which is what makes it the replication stream's
// commit point. ops, res and idxs alias worker scratch and are valid only
// during the call; a sink that needs them later must copy. cs holds the
// group's completers parallel to ops.
//
// CommittedGroup returns true to take ownership of the group's WRITE
// completions (reply-after-replication): the pool then completes only the
// group's reads, and the sink must eventually call Complete exactly once
// on every cs[i] whose ops[i] is a write, with res[i] on success or a
// typed error when replication could not confirm the group. Returning
// false leaves completion with the pool (reply-after-fence, as without a
// sink). Groups whose fence failed (degraded path) never reach the sink.
type GroupSink interface {
	CommittedGroup(ops []store.Op, res []store.OpResult, idxs []int, cs []Completer) bool
}

// PoolConfig tunes the worker pool.
type PoolConfig struct {
	// Workers is the number of shard-affine workers (default: the store's
	// shard count, at least 1). Each owns one session; keys route to
	// workers by shard, so more workers than shards gains nothing.
	Workers int
	// Ring is each worker's bounded ring capacity (default 1024). A full
	// ring applies backpressure: Submit blocks until the worker drains.
	Ring int
	// MaxBatch caps one flush (default 64); MaxDelay is how long a lonely
	// request waits for a companion before flushing alone (default 50µs).
	// Batches otherwise form from ring backlog with no delay.
	MaxBatch int
	MaxDelay time.Duration
	// OnCommit, when non-nil, observes every durable fence group at its
	// commit point and may defer the group's write acknowledgements until
	// replication confirms it (see GroupSink). The replication primary
	// (internal/repl) is the production sink.
	OnCommit GroupSink
}

// poolReq is one submitted operation in a worker's ring, held by value.
type poolReq struct {
	op store.Op
	c  Completer
}

// poolWorker owns one store session and one ring.
type poolWorker struct {
	p     *Pool
	sess  store.Session
	async store.AsyncSession
	ring  chan poolReq

	// Flush scratch, reused across batches; committedFn and flushFn are
	// built once so a flush allocates nothing.
	reqs        []poolReq
	ops         []store.Op
	dst         []store.OpResult
	cs          []Completer
	committedFn func(idxs []int, err error)
	flushFn     func()
	crashed     bool
}

// Pool is the shard-affine group-commit stage. Submit from any goroutine.
type Pool struct {
	st  store.Store // nil when built over explicit sessions
	cfg PoolConfig

	// shardFor routes keys to workers (modulo the worker count); nil routes
	// everything to worker 0.
	shardFor func(key uint64) int

	workers []*poolWorker
	wg      sync.WaitGroup

	// mu guards closed against the rings closing: Submit sends while
	// holding the read side, Close flips closed under the write side before
	// closing any ring, so a send on a closed ring is impossible.
	mu      sync.RWMutex
	closed  bool
	crashed atomic.Bool

	ops     atomic.Uint64
	flushes atomic.Uint64
	groups  atomic.Uint64
	ckptErr atomic.Pointer[error]

	// degraded latches the first non-durable group commit (wrapped in
	// ErrDegraded) and never clears: writes fail fast from then on while
	// reads keep flowing (see ErrDegraded).
	degraded atomic.Pointer[error]
}

// NewPool starts a pool over st with one new session per worker.
func NewPool(st store.Store, cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = st.Shards()
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	sessions := make([]store.Session, cfg.Workers)
	for i := range sessions {
		sessions[i] = st.NewSession()
	}
	return newPool(st, sessions, cfg)
}

// NewSessionPool starts a single-worker pool that owns sess — the
// session-injection constructor tests use to pair the pool with a stub
// session. The caller must not use sess afterwards.
func NewSessionPool(sess store.Session, cfg PoolConfig) *Pool {
	cfg.Workers = 1
	return newPool(nil, []store.Session{sess}, cfg)
}

// NewSessionsPool starts one worker per provided session, routing key k to
// worker shardFor(k) % len(sessions) (nil shardFor routes everything to
// worker 0). Test seam for multi-worker ordering scenarios over stub
// sessions; NewPool is the production constructor.
func NewSessionsPool(sessions []store.Session, shardFor func(key uint64) int, cfg PoolConfig) *Pool {
	cfg.Workers = len(sessions)
	p := newPool(nil, sessions, cfg)
	p.shardFor = shardFor
	return p
}

func newPool(st store.Store, sessions []store.Session, cfg PoolConfig) *Pool {
	if cfg.Ring <= 0 {
		cfg.Ring = 1024
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Microsecond
	}
	p := &Pool{st: st, cfg: cfg}
	if st != nil {
		p.shardFor = st.ShardFor
	}
	for _, sess := range sessions {
		w := &poolWorker{
			p:    p,
			sess: sess,
			ring: make(chan poolReq, cfg.Ring),
		}
		w.async, _ = sess.(store.AsyncSession)
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go w.run()
	}
	return p
}

// Workers reports the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Submit enqueues one operation onto its key's shard-affine worker ring,
// blocking when the ring is full (bounded-queue backpressure). c.Complete
// runs exactly once; see Completer for where.
func (p *Pool) Submit(op store.Op, c Completer) {
	if err := p.DegradedErr(); err != nil && !isReadOp(op) {
		// Fail-fast for writes on a degraded store; reads still ride the
		// workers — a degraded store keeps serving them.
		c.Complete(store.OpResult{}, err)
		return
	}
	p.mu.RLock()
	if p.closed || p.crashed.Load() {
		closed := p.closed
		p.mu.RUnlock()
		if closed {
			c.Complete(store.OpResult{}, ErrClosed)
		} else {
			c.Complete(store.OpResult{}, ErrCrashed)
		}
		return
	}
	w := p.workers[0]
	if len(p.workers) > 1 && p.shardFor != nil {
		w = p.workers[p.shardFor(op.Key)%len(p.workers)]
	}
	// The send happens under the read lock: Close cannot close the ring
	// before every in-flight Submit has released it. A blocked send drains
	// eventually — the worker consumes its ring until the ring closes, even
	// after a crash.
	w.ring <- poolReq{op: op, c: c}
	p.mu.RUnlock()
}

// Do submits op and blocks for its result (synchronous convenience).
func (p *Pool) Do(op store.Op) (store.OpResult, error) {
	d := &doCompleter{ch: make(chan struct{})}
	p.Submit(op, d)
	<-d.ch
	return d.res, d.err
}

type doCompleter struct {
	ch  chan struct{}
	res store.OpResult
	err error
}

func (d *doCompleter) Complete(res store.OpResult, err error) {
	d.res, d.err = res, err
	close(d.ch)
}

// Close flushes every worker's pending requests, stops the workers, and
// fails later submissions with ErrClosed. It returns once every worker has
// exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, w := range p.workers {
		close(w.ring)
	}
	p.wg.Wait()
}

// Stats snapshots the activity counters, summed across workers.
func (p *Pool) Stats() Stats {
	return Stats{
		Ops:     p.ops.Load(),
		Flushes: p.flushes.Load(),
		Groups:  p.groups.Load(),
	}
}

// CheckpointErr reports the first error an automatic post-flush checkpoint
// returned (nil normally). The store remains consistent after a failed
// checkpoint — the old generation stays live — but the WAL is no longer
// being bounded, which the server surfaces at shutdown.
func (p *Pool) CheckpointErr() error {
	if e := p.ckptErr.Load(); e != nil {
		return *e
	}
	return nil
}

// DegradedErr reports the sticky degraded state: nil while every group
// commit has been durable, and the first ErrDegraded-wrapped failure
// forever after.
func (p *Pool) DegradedErr() error {
	if e := p.degraded.Load(); e != nil {
		return *e
	}
	return nil
}

// degrade latches err as the pool's permanent degraded state and returns
// the canonical wrapped error (first caller wins, so every completion
// carries the root cause).
func (p *Pool) degrade(err error) error {
	werr := fmt.Errorf("%w: %v", ErrDegraded, err)
	if p.degraded.CompareAndSwap(nil, &werr) {
		return werr
	}
	return *p.degraded.Load()
}

// run is one worker's loop: take the first request (blocking), drain the
// ring without blocking, flush, probe the checkpoint threshold. Batches are
// sized by backlog, not by timer: whatever queued in the ring while the
// previous flush ran becomes the next batch, so a saturated worker batches
// naturally and an idle worker never stalls a request behind a delay it
// cannot fill. The one exception is a lonely request — a drain that finds
// the ring empty — which waits up to MaxDelay for a companion before
// flushing alone: that wait is the classic group-commit amortization for
// trickle traffic (several slow clients landing within the window share
// one fence), and it costs nothing under load because a busy ring never
// drains to one. After a crash the worker stays on the ring failing
// everything with ErrCrashed until Close, so submitters blocked on a full
// ring always make progress.
func (w *poolWorker) run() {
	defer w.p.wg.Done()
	maxBatch := w.p.cfg.MaxBatch
	var timer *time.Timer
	for {
		r, ok := <-w.ring
		if !ok {
			return
		}
		if w.crashed {
			r.c.Complete(store.OpResult{}, ErrCrashed)
			continue
		}
		w.reqs = append(w.reqs[:0], r)
		open := w.drain(maxBatch)
		if len(w.reqs) == 1 && open {
			// Lonely request: wait for company. The timer is reused across
			// batches (no allocation per flush).
			if timer == nil {
				timer = time.NewTimer(w.p.cfg.MaxDelay)
			} else {
				timer.Reset(w.p.cfg.MaxDelay)
			}
			select {
			case r, ok := <-w.ring:
				if ok {
					w.reqs = append(w.reqs, r)
					w.drain(maxBatch)
				}
			case <-timer.C:
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		if !w.flush() {
			w.crashed = true
			w.p.crashed.Store(true)
			continue
		}
		if st := w.p.st; st != nil {
			if _, err := st.MaybeCheckpoint(); err != nil {
				// Copy before taking the address: &err directly would make
				// the variable escape and cost one allocation per flush even
				// on the nil path.
				e := err
				w.p.ckptErr.CompareAndSwap(nil, &e)
			}
		}
	}
}

// drain moves queued requests from the ring into the batch without
// blocking, up to maxBatch; it reports whether the ring is still open.
func (w *poolWorker) drain(maxBatch int) bool {
	for len(w.reqs) < maxBatch {
		select {
		case r, ok := <-w.ring:
			if !ok {
				return false
			}
			w.reqs = append(w.reqs, r)
		default:
			return true
		}
	}
	return true
}

// flush applies the worker's gathered batch through its own session and
// completes requests per fence group (reply-after-fence). Returns false
// when the memory crashed mid-batch: already-completed requests were
// acknowledged by fences that landed, the rest complete with ErrCrashed.
func (w *poolWorker) flush() bool {
	p := w.p
	ops := w.ops[:0]
	cs := w.cs[:0]
	for i := range w.reqs {
		ops = append(ops, w.reqs[i].op)
		cs = append(cs, w.reqs[i].c)
	}
	w.ops = ops
	w.cs = cs
	// Pre-size dst so ApplyCommitted cannot reallocate it out from under
	// the committed callback.
	if cap(w.dst) < len(ops) {
		w.dst = make([]store.OpResult, len(ops))
	}
	w.dst = w.dst[:len(ops)]
	if w.flushFn == nil {
		w.committedFn = func(idxs []int, err error) {
			w.p.groups.Add(1)
			var gerr error
			if err != nil {
				gerr = w.p.degrade(err)
			}
			gated := false
			if sink := w.p.cfg.OnCommit; sink != nil && gerr == nil {
				// The group's fence is down: hand it to the replication
				// sink. A true return moves the write acknowledgements to
				// the sink (reply-after-replication); reads never wait on
				// replication and complete below either way.
				gated = sink.CommittedGroup(w.ops, w.dst, idxs, w.cs)
			}
			for _, i := range idxs {
				c := w.reqs[i].c
				if c == nil {
					continue
				}
				if gated && !isReadOp(w.reqs[i].op) {
					// The sink owns this completion now.
					w.reqs[i].c = nil
					continue
				}
				w.reqs[i].c = nil
				if gerr != nil && !isReadOp(w.reqs[i].op) {
					// The group's fence did not reach the disk: withhold
					// the acknowledgement. Reads never needed it.
					c.Complete(store.OpResult{}, gerr)
					continue
				}
				c.Complete(w.dst[i], nil)
			}
		}
		w.flushFn = func() {
			if w.async != nil {
				w.async.ApplyCommitted(w.ops, w.dst, w.committedFn)
				return
			}
			// Fallback for sessions without the async surface: ask the
			// store for the durability verdict when one is available (stub
			// sessions without a store carry none).
			w.sess.Apply(w.ops, w.dst)
			var derr error
			if w.p.st != nil {
				derr = w.p.st.DurableErr()
			}
			idxs := make([]int, len(w.reqs))
			for i := range idxs {
				idxs[i] = i
			}
			w.committedFn(idxs, derr)
		}
	}
	crashed := pmem.RunOp(w.flushFn)
	p.flushes.Add(1)
	p.ops.Add(uint64(len(w.reqs)))
	if crashed {
		for i := range w.reqs {
			if c := w.reqs[i].c; c != nil {
				w.reqs[i].c = nil
				c.Complete(store.OpResult{}, ErrCrashed)
			}
		}
		return false
	}
	return true
}

// Package batcher is the group-commit stage between a network front end
// and a store.Store: writes submitted by many connections are collected
// into one batch and applied through a single session's ApplyCommitted, so
// the commit fence that durable linearizability demands before every
// acknowledgement is paid once per shard group per flush instead of once
// per request — the same amortization shard.Session.Apply performs for one
// caller's batch, extended across callers.
//
// The batching rule is the classic group-commit tradeoff: a flush happens
// when the pending batch reaches Config.MaxBatch requests, or when the
// oldest pending request has waited Config.MaxDelay, whichever comes first.
// A larger batch amortizes the fence further; the delay bounds the latency
// a lonely request pays for the amortization.
//
// Correctness is the reply-after-fence rule: a request's callback runs only
// after the commit fence covering its operation has landed (ApplyCommitted
// fires per fence group), so a reply implies durability — a crash can only
// lose requests that were never acknowledged. One worker goroutine owns the
// session and applies batches in submission order, so requests on one key
// are applied in the order they were submitted.
//
// Two generations live here. Batcher is the original central stage: one
// worker, one session, one pending list every connection contends on. Pool
// is the shard-affine generation the server uses: one worker per shard
// group, each with its own session and bounded submission ring, so decoded
// operations route by key straight to the session that owns their shard —
// no central queue, no cross-worker coordination, and an allocation-free
// submit path (see Completer). Batcher remains for single-session callers
// and as the simpler reference implementation of the same commit rule.
package batcher

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/store"
)

// Errors a request callback may receive.
var (
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("batcher: closed")
	// ErrCrashed completes requests whose covering fence never landed
	// because the memory crashed: the request was not acknowledged and may
	// or may not have taken effect (in-flight under durable linearizability).
	ErrCrashed = errors.New("batcher: store crashed before commit")
	// ErrDegraded completes writes whose commit fence could not be made
	// durable: the store's disk backend latched a sticky write/fsync
	// failure (see store.Store.DurableErr). The write was not acknowledged
	// and must be treated as lost — it may be in process memory but is not
	// on disk, and only what recovery replays after a restart survives.
	// The condition is permanent for the process: every later write fails
	// the same way, while reads keep completing normally.
	ErrDegraded = errors.New("batcher: store degraded, write not durable")
)

// isReadOp reports whether op needs no durability to acknowledge. Reads
// keep serving on a degraded store; everything else is a write whose
// acknowledgement would promise durability the disk can no longer provide.
func isReadOp(op store.Op) bool {
	return op.Kind == shard.OpGet || op.Kind == shard.OpScan
}

// Config tunes the group-commit policy.
type Config struct {
	// MaxBatch flushes as soon as this many requests are pending
	// (default 64).
	MaxBatch int
	// MaxDelay flushes once the oldest pending request has waited this
	// long (default 50µs). Zero keeps the default; group commit without a
	// latency bound would strand lonely requests.
	MaxDelay time.Duration
}

// Stats counts batcher activity (monotone, read with atomic snapshots).
type Stats struct {
	// Ops is the number of requests applied.
	Ops uint64
	// Flushes is the number of batches applied.
	Flushes uint64
	// Groups is the number of completion groups (one per shard fence group
	// per flush, plus one per flush that carried scans).
	Groups uint64
}

// request is one submitted operation and its completion callback.
type request struct {
	op store.Op
	cb func(store.OpResult, error)
}

// Batcher is the group-commit stage. Submit from any goroutine; one
// internal worker owns the store session and applies batches.
type Batcher struct {
	sess  store.Session
	async store.AsyncSession // non-nil when the session supports ApplyCommitted
	cfg   Config

	mu      sync.Mutex
	pending []*request
	firstAt time.Time // submission time of the oldest pending request
	closed  bool
	crashed bool

	kick chan struct{} // size-1 worker wakeup
	done chan struct{} // closed when the worker exits

	ops     atomic.Uint64
	flushes atomic.Uint64
	groups  atomic.Uint64

	// degraded latches the first non-durable group commit (wrapped in
	// ErrDegraded) and never clears: once the disk has refused a write or
	// an fsync, no later write may be acknowledged (see ErrDegraded).
	degraded atomic.Pointer[error]
}

// New starts a batcher over one new session of st.
func New(st store.Store, cfg Config) *Batcher {
	return NewSession(st.NewSession(), cfg)
}

// NewSession starts a batcher that owns sess: the caller must not use sess
// afterwards (sessions are single-goroutine, and the worker is that
// goroutine now).
func NewSession(sess store.Session, cfg Config) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Microsecond
	}
	b := &Batcher{
		sess: sess,
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	b.async, _ = sess.(store.AsyncSession)
	go b.worker()
	return b
}

// Submit enqueues one operation. cb is invoked exactly once, after the
// commit fence covering op has landed or with an error if the batcher
// closed or the store crashed first. It normally runs on the worker
// goroutine, but when the batcher is already closed or crashed at Submit
// time the rejection runs synchronously on the caller's goroutine — so cb
// must be quick, must not call back into the batcher, and must not assume
// worker-goroutine context (e.g. it may run under any locks the caller
// holds across Submit).
func (b *Batcher) Submit(op store.Op, cb func(store.OpResult, error)) {
	if err := b.DegradedErr(); err != nil && !isReadOp(op) {
		// Fail-fast for writes on a degraded store: the outcome is already
		// known, so don't spend a flush discovering it again. Reads still
		// ride the worker — a degraded store keeps serving them.
		cb(store.OpResult{}, err)
		return
	}
	r := &request{op: op, cb: cb}
	b.mu.Lock()
	if b.closed || b.crashed {
		err := ErrClosed
		if b.crashed {
			err = ErrCrashed
		}
		b.mu.Unlock()
		cb(store.OpResult{}, err)
		return
	}
	b.pending = append(b.pending, r)
	n := len(b.pending)
	if n == 1 {
		b.firstAt = time.Now()
	}
	b.mu.Unlock()
	// Wake the worker on the first request (to arm the delay) and when the
	// batch fills (to flush early). A full kick channel means a wakeup is
	// already on the way.
	if n == 1 || n >= b.cfg.MaxBatch {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
}

// Do submits op and blocks for its result: the synchronous convenience
// wrapper (tests, simple clients). The calling goroutine rides the next
// group commit.
func (b *Batcher) Do(op store.Op) (store.OpResult, error) {
	type outcome struct {
		res store.OpResult
		err error
	}
	ch := make(chan outcome, 1)
	b.Submit(op, func(res store.OpResult, err error) { ch <- outcome{res, err} })
	o := <-ch
	return o.res, o.err
}

// Close flushes the pending batch, stops the worker, and fails later
// submissions with ErrClosed. It returns once the worker has exited.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	<-b.done
}

// Stats snapshots the activity counters.
func (b *Batcher) Stats() Stats {
	return Stats{
		Ops:     b.ops.Load(),
		Flushes: b.flushes.Load(),
		Groups:  b.groups.Load(),
	}
}

// DegradedErr reports the sticky degraded state: nil while every group
// commit has been durable, and the first ErrDegraded-wrapped failure
// forever after.
func (b *Batcher) DegradedErr() error {
	if e := b.degraded.Load(); e != nil {
		return *e
	}
	return nil
}

// degrade latches err as the batcher's permanent degraded state and
// returns the canonical wrapped error (first caller wins; later callers
// get the original latch, so every completion carries the root cause).
func (b *Batcher) degrade(err error) error {
	werr := fmt.Errorf("%w: %v", ErrDegraded, err)
	if b.degraded.CompareAndSwap(nil, &werr) {
		return werr
	}
	return *b.degraded.Load()
}

// worker is the single goroutine that owns the session: it waits for
// pending requests, applies the group-commit rule, and flushes.
func (b *Batcher) worker() {
	defer close(b.done)
	var reqs []*request
	var ops []store.Op
	var dst []store.OpResult
	for {
		b.mu.Lock()
		for len(b.pending) == 0 {
			if b.closed {
				b.mu.Unlock()
				return
			}
			b.mu.Unlock()
			<-b.kick
			b.mu.Lock()
		}
		// Group-commit rule: flush on a full batch, on close, or once the
		// oldest request has waited MaxDelay; otherwise sleep until one of
		// those can happen (a kick means the batch may have filled).
		if len(b.pending) < b.cfg.MaxBatch && !b.closed {
			wait := b.cfg.MaxDelay - time.Since(b.firstAt)
			if wait > 0 {
				b.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-b.kick:
				case <-timer.C:
				}
				timer.Stop()
				b.mu.Lock()
				if len(b.pending) < b.cfg.MaxBatch && !b.closed &&
					time.Since(b.firstAt) < b.cfg.MaxDelay {
					b.mu.Unlock()
					continue
				}
			}
		}
		reqs = append(reqs[:0], b.pending...)
		b.pending = b.pending[:0]
		b.mu.Unlock()
		if !b.flush(reqs, &ops, &dst) {
			b.abort(reqs)
			return
		}
	}
}

// flush applies one batch and completes its requests per fence group.
// Returns false when the memory crashed mid-batch: completed requests were
// already acknowledged (their fences landed before the crash), the rest are
// failed by abort, and the worker must stop — the store needs recovery.
func (b *Batcher) flush(reqs []*request, opsp *[]store.Op, dstp *[]store.OpResult) bool {
	ops := (*opsp)[:0]
	for _, r := range reqs {
		ops = append(ops, r.op)
	}
	*opsp = ops
	// Pre-size dst so ApplyCommitted cannot reallocate it out from under
	// the committed callback.
	dst := *dstp
	if cap(dst) < len(ops) {
		dst = make([]store.OpResult, len(ops))
	}
	dst = dst[:len(ops)]
	*dstp = dst
	committed := func(idxs []int, err error) {
		b.groups.Add(1)
		var gerr error
		if err != nil {
			gerr = b.degrade(err)
		}
		for _, i := range idxs {
			r := reqs[i]
			if r == nil {
				continue
			}
			reqs[i] = nil
			if gerr != nil && !isReadOp(r.op) {
				// The group's fence did not reach the disk: withhold the
				// acknowledgement. Reads in the group are still good — they
				// never needed the fence.
				r.cb(store.OpResult{}, gerr)
				continue
			}
			r.cb(dst[i], nil)
		}
	}
	crashed := pmem.RunOp(func() {
		if b.async != nil {
			b.async.ApplyCommitted(ops, dst, committed)
		} else {
			// Fallback for sessions without the async surface: the whole
			// batch acknowledges together when Apply returns. Plain sessions
			// carry no durability verdict, so the fallback reports none.
			b.sess.Apply(ops, dst)
			idxs := make([]int, len(reqs))
			for i := range idxs {
				idxs[i] = i
			}
			committed(idxs, nil)
		}
	})
	b.flushes.Add(1)
	b.ops.Add(uint64(len(reqs)))
	return !crashed
}

// abort fails every request that was never acknowledged — the rest of the
// crashed batch plus everything still pending — with ErrCrashed, and marks
// the batcher crashed so later submissions fail fast.
func (b *Batcher) abort(reqs []*request) {
	b.mu.Lock()
	b.crashed = true
	rest := b.pending
	b.pending = nil
	b.mu.Unlock()
	for _, r := range reqs {
		if r != nil {
			r.cb(store.OpResult{}, ErrCrashed)
		}
	}
	for _, r := range rest {
		r.cb(store.OpResult{}, ErrCrashed)
	}
}

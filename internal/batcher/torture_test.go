package batcher

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/store"
)

// storeView adapts a recovered store to the crashtest.Set surface. The
// thread argument of each method is ignored: the sessions carry their own
// threads.
type storeView struct {
	st   store.Store
	sess store.Session
}

func (v storeView) Insert(_ *pmem.Thread, key, value uint64) bool { return v.sess.Insert(key, value) }
func (v storeView) Delete(_ *pmem.Thread, key uint64) bool        { return v.sess.Delete(key) }
func (v storeView) Find(_ *pmem.Thread, key uint64) (uint64, bool) {
	return v.sess.Get(key)
}
func (v storeView) Recover(_ *pmem.Thread)           { v.st.Recover() }
func (v storeView) Contents(_ *pmem.Thread) []uint64 { return v.st.Contents() }

// TestBatcherCrashTorture is the server-path crash torture: concurrent
// clients pipeline windows of operations through the group-commit batcher
// against a tracked engine, the engine crashes mid-traffic, and the
// crashtest checker verifies durable linearizability of the recovered
// state against the recorded histories. The load-bearing property is the
// reply-after-fence rule: every request whose callback reported success was
// covered by a commit fence before the crash, so it must have survived —
// replied ⇒ durable. Requests that got ErrCrashed were never acknowledged
// and are in-flight: the checker allows them to have taken effect or not.
func TestBatcherCrashTorture(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		evict := []float64{0, 0.5, 1}[round%3]
		tortureRound(t, round, evict, false)
	}
}

// TestPoolCrashTorture runs the same torture through the shard-affine
// worker pool: the reply-after-fence rule must hold per worker, and a crash
// must fail every unacknowledged request across all workers' rings.
func TestPoolCrashTorture(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		evict := []float64{0, 0.5, 1}[round%3]
		tortureRound(t, round, evict, true)
	}
}

// cbCompleter adapts a callback to the pool's Completer surface (tests
// only; the server uses reusable slot objects).
type cbCompleter struct{ fn func(store.OpResult, error) }

func (c cbCompleter) Complete(res store.OpResult, err error) { c.fn(res, err) }

func tortureRound(t *testing.T, seed int, evictProb float64, usePool bool) {
	const (
		workers        = 4
		window         = 4
		keys           = 128
		opsBeforeCrash = 400
	)
	st, err := store.Open(store.Config{
		Kind:        core.KindHash,
		Policy:      persist.NVTraverse{},
		Shards:      4,
		Tracked:     true,
		SizeHint:    keys,
		MaxSessions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := st.(*store.EngineStore).Engine()

	setup := st.NewSession()
	prefilled := map[uint64]uint64{}
	for k := uint64(1); k <= keys; k += 2 {
		setup.Insert(k, k*3)
		prefilled[k] = k * 3
	}
	eng.PersistAll()

	var submit func(op store.Op, cb func(store.OpResult, error))
	var closeStage func()
	if usePool {
		p := NewPool(st, PoolConfig{Workers: 2, MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
		submit = func(op store.Op, cb func(store.OpResult, error)) { p.Submit(op, cbCompleter{fn: cb}) }
		closeStage = p.Close
	} else {
		b := NewSession(st.NewSession(), Config{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
		submit = b.Submit
		closeStage = b.Close
	}
	var completed atomic.Uint64
	histories := make([]*crashtest.History, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hist := &crashtest.History{}
		histories[w] = hist
		wg.Add(1)
		go func(w int, hist *crashtest.History) {
			defer wg.Done()
			rng := uint64(seed*1000003 + w*7919)
			rand := func() uint64 {
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			type slot struct {
				op   store.Op
				res  store.OpResult
				err  error
				done chan struct{}
			}
			for {
				// Pipeline one window of operations, then collect replies in
				// submission order — the shape of a pipelining connection.
				slots := make([]*slot, window)
				for i := range slots {
					k := rand()%keys + 1
					kind := shard.OpGet
					switch r := rand() % 100; {
					case r < 30:
						kind = shard.OpInsert
					case r < 60:
						kind = shard.OpDelete
					}
					sl := &slot{
						op:   store.Op{Kind: kind, Key: k, Value: rand() & ((1 << 32) - 1)},
						done: make(chan struct{}),
					}
					slots[i] = sl
					submit(sl.op, func(res store.OpResult, err error) {
						sl.res, sl.err = res, err
						close(sl.done)
					})
				}
				crashed := false
				for _, sl := range slots {
					<-sl.done
					kind := crashtest.OpFind
					switch sl.op.Kind {
					case shard.OpInsert:
						kind = crashtest.OpInsert
					case shard.OpDelete:
						kind = crashtest.OpDelete
					}
					if sl.err != nil {
						// Never acknowledged: in flight at the crash — the
						// operation may or may not have taken effect.
						hist.InFlight(kind, sl.op.Key, sl.op.Value)
						crashed = true
						continue
					}
					// Acknowledged: the covering commit fence landed, so the
					// effect must survive the crash.
					hist.Completed(kind, sl.op.Key, sl.op.Value, sl.res.OK)
					completed.Add(1)
				}
				if crashed {
					return
				}
			}
		}(w, hist)
	}

	for completed.Load() < opsBeforeCrash {
		runtime.Gosched()
	}
	eng.Crash()
	wg.Wait()
	closeStage()
	eng.FinishCrash(evictProb, int64(seed))
	eng.Restart()

	st.Recover()
	rec := st.NewSession()
	violations, survivors := crashtest.Check(
		storeView{st: st, sess: rec}, nil, histories,
		crashtest.CheckConfig{Prefilled: prefilled})
	if len(violations) > 0 {
		for _, v := range violations {
			t.Errorf("seed %d evict %.1f: %s", seed, evictProb, v)
		}
		t.Fatalf("seed %d: %d durable-linearizability violations (replied ops lost or resurrected)",
			seed, len(violations))
	}
	if completed.Load() < opsBeforeCrash {
		t.Fatalf("seed %d: only %d ops completed before crash", seed, completed.Load())
	}
	if survivors == 0 {
		t.Fatalf("seed %d: nothing survived recovery", seed)
	}
}

package batcher

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/store"
)

// TestPoolBasicOps round-trips the operation vocabulary through Pool.Do on
// both backends (one worker on the bare structure, one per shard on the
// engine).
func TestPoolBasicOps(t *testing.T) {
	for _, shards := range []int{0, 4} {
		st, err := store.Open(store.Config{
			Kind: core.KindSkiplist, Profile: pmem.ProfileZero,
			Shards: shards, SizeHint: 1024, MaxSessions: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := NewPool(st, PoolConfig{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})
		if res, err := p.Do(store.Op{Kind: shard.OpInsert, Key: 10, Value: 100}); err != nil || !res.OK {
			t.Fatalf("shards=%d insert: %+v %v", shards, res, err)
		}
		if res, _ := p.Do(store.Op{Kind: shard.OpInsert, Key: 10, Value: 101}); res.OK {
			t.Fatalf("shards=%d duplicate insert succeeded", shards)
		}
		if res, _ := p.Do(store.Op{Kind: shard.OpGet, Key: 10}); !res.OK || res.Value != 100 {
			t.Fatalf("shards=%d get: %+v", shards, res)
		}
		if res, _ := p.Do(store.Op{Kind: shard.OpPut, Key: 11, Value: 42}); !res.OK {
			t.Fatalf("shards=%d put: %+v", shards, res)
		}
		if res, _ := p.Do(store.Op{Kind: shard.OpUpdate, Key: 11, Fn: func(o uint64) uint64 { return o + 1 }}); !res.OK || res.Value != 43 {
			t.Fatalf("shards=%d update: %+v", shards, res)
		}
		if res, _ := p.Do(store.Op{Kind: shard.OpDelete, Key: 10}); !res.OK {
			t.Fatalf("shards=%d delete: %+v", shards, res)
		}
		p.Close()
		if _, err := p.Do(store.Op{Kind: shard.OpGet, Key: 10}); err != ErrClosed {
			t.Fatalf("shards=%d submit after close: %v", shards, err)
		}
		sess := st.NewSession()
		if v, ok := sess.Get(11); !ok || v != 43 {
			t.Fatalf("shards=%d store state after close: %d %v", shards, v, ok)
		}
	}
}

// TestPoolConcurrentRings hammers the per-worker rings from many goroutines
// (run under -race as part of the race target) and verifies exact op
// accounting, every write landing, and actual batching.
func TestPoolConcurrentRings(t *testing.T) {
	st := openEngine(t, 4, 12)
	p := NewPool(st, PoolConfig{MaxBatch: 16, Ring: 64, MaxDelay: 50 * time.Microsecond})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i + 1)
				if res, err := p.Do(store.Op{Kind: shard.OpPut, Key: k, Value: k * 2}); err != nil || !res.OK {
					t.Errorf("put %d: %+v %v", k, res, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	p.Close()
	sess := st.NewSession()
	for k := uint64(1); k <= workers*per; k++ {
		if v, ok := sess.Get(k); !ok || v != k*2 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
	}
	ps := p.Stats()
	if ps.Ops != workers*per {
		t.Fatalf("pool ops %d, want %d", ps.Ops, workers*per)
	}
	if ps.Flushes >= ps.Ops {
		t.Fatalf("no batching happened: %d flushes for %d ops", ps.Flushes, ps.Ops)
	}
}

// orderSession is a stub session that records the keys applied to it, for
// asserting shard affinity and per-ring FIFO order.
type orderSession struct {
	mu   sync.Mutex
	keys []uint64
	m    map[uint64]uint64
}

func newOrderSession() *orderSession { return &orderSession{m: map[uint64]uint64{}} }

func (s *orderSession) Get(key uint64) (uint64, bool) { v, ok := s.m[key]; return v, ok }
func (s *orderSession) Put(key, value uint64) {
	s.mu.Lock()
	s.keys = append(s.keys, key)
	s.m[key] = value
	s.mu.Unlock()
}
func (s *orderSession) Insert(key, value uint64) bool { s.Put(key, value); return true }
func (s *orderSession) Delete(key uint64) bool        { delete(s.m, key); return true }
func (s *orderSession) Update(key uint64, fn func(uint64) uint64) (uint64, bool) {
	return 0, false
}
func (s *orderSession) GetOrInsert(key, value uint64) (uint64, bool) { return 0, false }
func (s *orderSession) Scan(lo, hi uint64, fn func(uint64, uint64) bool) error {
	return nil
}
func (s *orderSession) Apply(ops []store.Op, dst []store.OpResult) []store.OpResult {
	if cap(dst) < len(ops) {
		dst = make([]store.OpResult, len(ops))
	}
	dst = dst[:len(ops)]
	for i, op := range ops {
		s.Put(op.Key, op.Value)
		dst[i] = store.OpResult{Value: op.Value, OK: true}
	}
	return dst
}
func (s *orderSession) MultiGet(keys []uint64, dst []store.OpResult) []store.OpResult {
	return dst
}
func (s *orderSession) Rand() uint64 { return 0 }

// TestPoolShardAffinityAndOrder submits interleaved keys from several
// goroutines through a two-worker pool routed by key parity: every key must
// be applied by exactly the worker that owns its parity, and each
// goroutine's per-key sequence must be applied in submission order (the
// ring is FIFO and a worker applies batches in ring order).
func TestPoolShardAffinityAndOrder(t *testing.T) {
	s0, s1 := newOrderSession(), newOrderSession()
	p := NewSessionsPool(
		[]store.Session{s0, s1},
		func(key uint64) int { return int(key % 2) },
		PoolConfig{MaxBatch: 8, MaxDelay: 50 * time.Microsecond},
	)
	const writers, per = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Key encodes (writer, seq, parity); value encodes seq.
				k := uint64(w)<<32 | uint64(i)<<1 | uint64(w%2)
				if res, err := p.Do(store.Op{Kind: shard.OpPut, Key: k, Value: uint64(i)}); err != nil || !res.OK {
					t.Errorf("put %x: %+v %v", k, res, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	p.Close()
	for parity, s := range []*orderSession{s0, s1} {
		if len(s.keys) != writers/2*per {
			t.Fatalf("worker %d applied %d keys, want %d", parity, len(s.keys), writers/2*per)
		}
		lastSeq := map[uint64]int{}
		for _, k := range s.keys {
			if int(k%2) != parity {
				t.Fatalf("worker %d applied key %x of parity %d: affinity broken", parity, k, k%2)
			}
			w := k >> 32
			seq := int(k>>1) & ((1 << 31) - 1)
			if prev, ok := lastSeq[w]; ok && seq <= prev {
				t.Fatalf("worker %d saw writer %d seq %d after %d: ring order broken", parity, w, seq, prev)
			}
			lastSeq[w] = seq
		}
	}
}

// gateSession blocks Apply until the test releases it, so a test can build
// a known ring backlog while the worker is mid-flush. entered receives once
// per Apply call, on entry; gate receives the release.
type gateSession struct {
	*orderSession
	entered chan struct{}
	gate    chan struct{}
	batches []int // len(ops) per Apply call
}

func (s *gateSession) Apply(ops []store.Op, dst []store.OpResult) []store.OpResult {
	s.entered <- struct{}{}
	<-s.gate
	s.batches = append(s.batches, len(ops))
	return s.orderSession.Apply(ops, dst)
}

type countCompleter struct{ wg *sync.WaitGroup }

func (c countCompleter) Complete(store.OpResult, error) { c.wg.Done() }

// TestPoolGroupCommit pins the backlog-driven group-commit rule: every
// request that queues in the ring while a flush is running rides the next
// flush as one batch — one fence for all of them, however many there are.
func TestPoolGroupCommit(t *testing.T) {
	const K = 8
	s := &gateSession{
		orderSession: newOrderSession(),
		entered:      make(chan struct{}),
		gate:         make(chan struct{}),
	}
	// Tiny MaxDelay: op 1 is lonely and must flush on its own promptly so
	// the test can build the backlog behind it.
	p := NewSessionPool(s, PoolConfig{MaxBatch: 2 * K, MaxDelay: time.Microsecond})
	var wg sync.WaitGroup
	wg.Add(K + 1)
	p.Submit(store.Op{Kind: shard.OpPut, Key: 1, Value: 1}, countCompleter{&wg})
	<-s.entered // worker is mid-flush holding exactly op 1
	for i := 2; i <= K+1; i++ {
		p.Submit(store.Op{Kind: shard.OpPut, Key: uint64(i), Value: uint64(i)}, countCompleter{&wg})
	}
	s.gate <- struct{}{} // release flush 1
	<-s.entered          // flush 2 must carry the whole backlog
	s.gate <- struct{}{}
	wg.Wait()
	ps := p.Stats()
	p.Close()
	if ps.Ops != K+1 || ps.Flushes != 2 {
		t.Fatalf("ops %d flushes %d, want %d ops in 2 flushes", ps.Ops, ps.Flushes, K+1)
	}
	if len(s.batches) != 2 || s.batches[0] != 1 || s.batches[1] != K {
		t.Fatalf("batch sizes %v, want [1 %d]", s.batches, K)
	}
}

// TestPoolLonelyDelay pins the lonely-request rule: with an unreachable
// MaxDelay, a request that arrives to an empty ring waits for a companion
// instead of paying a fence alone, so two spaced submissions share one
// flush.
func TestPoolLonelyDelay(t *testing.T) {
	s := &gateSession{
		orderSession: newOrderSession(),
		entered:      make(chan struct{}, 4),
		gate:         make(chan struct{}, 4),
	}
	s.gate <- struct{}{} // never block Apply in this test
	s.gate <- struct{}{}
	p := NewSessionPool(s, PoolConfig{MaxDelay: time.Hour})
	var wg sync.WaitGroup
	wg.Add(2)
	p.Submit(store.Op{Kind: shard.OpPut, Key: 1, Value: 1}, countCompleter{&wg})
	time.Sleep(5 * time.Millisecond) // let the worker reach the lonely wait
	p.Submit(store.Op{Kind: shard.OpPut, Key: 2, Value: 2}, countCompleter{&wg})
	wg.Wait()
	ps := p.Stats()
	p.Close()
	if ps.Ops != 2 || ps.Flushes != 1 {
		t.Fatalf("ops %d flushes %d, want both ops in one flush", ps.Ops, ps.Flushes)
	}
}

package batcher

// The acceptance regression for replied ⇒ durable under disk faults: a
// store whose WAL fsync fails mid-load must stop acknowledging writes at
// the batching layer — callers see ErrDegraded, never a false OK — while
// reads keep serving, and a clean reopen recovers every write that WAS
// acknowledged. On pre-fault-injection code every Do returned nil and the
// unsynced tail was lost, so the "acked key missing" assertion below is
// the line that fails there.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pmem/vfs"
	"repro/internal/shard"
	"repro/internal/store"
)

func openFaultStore(t *testing.T, dir, schedule string, shards int) store.Store {
	t.Helper()
	efs, err := vfs.NewErrFS(vfs.OS, schedule, 1)
	if err != nil {
		t.Fatalf("NewErrFS(%q): %v", schedule, err)
	}
	st, err := store.Open(store.Config{
		Kind: core.KindSkiplist, Profile: pmem.ProfileZero,
		Shards: shards, SizeHint: 1024, MaxSessions: 8,
		Dir: dir, SyncFence: true, FS: efs,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

// driveUntilDegraded issues sequential puts (key k → k*10) until one is
// refused, returning the last acked key and the refusal.
func driveUntilDegraded(t *testing.T, do func(store.Op) (store.OpResult, error)) (acked uint64, derr error) {
	t.Helper()
	for k := uint64(1); k <= 500; k++ {
		res, err := do(store.Op{Kind: shard.OpPut, Key: k, Value: k * 10})
		if err != nil {
			return acked, err
		}
		if !res.OK {
			t.Fatalf("put %d: not OK without error", k)
		}
		acked = k
	}
	t.Fatal("fsync fault never surfaced: 500 puts all acked")
	return
}

func checkDegraded(t *testing.T, st store.Store, acked uint64, derr error,
	do func(store.Op) (store.OpResult, error), dir string) {
	t.Helper()
	if !errors.Is(derr, ErrDegraded) {
		t.Fatalf("refusal is %v, want ErrDegraded", derr)
	}
	if acked == 0 {
		t.Fatal("no write acked before the fault")
	}
	if st.DurableErr() == nil {
		t.Fatal("store does not report the damage")
	}

	// Degraded is sticky: the next write fails fast with the same class.
	if _, err := do(store.Op{Kind: shard.OpPut, Key: 9999, Value: 1}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write after degradation: %v, want ErrDegraded", err)
	}
	// Reads keep serving from the intact in-memory structure.
	if res, err := do(store.Op{Kind: shard.OpGet, Key: 1}); err != nil || !res.OK || res.Value != 10 {
		t.Fatalf("read on degraded store: %+v %v", res, err)
	}

	// Clean reopen: every acked write must be there; the store never
	// acked anything it could not recover.
	st2, err := store.Open(store.Config{
		Kind: core.KindSkiplist, Profile: pmem.ProfileZero,
		SizeHint: 1024, MaxSessions: 8, Dir: dir,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	sess := st2.NewSession()
	for k := uint64(1); k <= acked; k++ {
		if v, ok := sess.Get(k); !ok || v != k*10 {
			t.Fatalf("acked key %d lost across restart (ok=%v v=%d)", k, ok, v)
		}
	}
	st2.Close()
}

func TestPoolDegradedOnFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	st := openFaultStore(t, dir, "sync~wal@8=eio", 0)
	p := NewPool(st, PoolConfig{MaxBatch: 4, MaxDelay: 50 * time.Microsecond})
	acked, derr := driveUntilDegraded(t, p.Do)
	if p.DegradedErr() == nil {
		t.Fatal("pool does not report degradation")
	}
	checkDegraded(t, st, acked, derr, p.Do, dir)
	p.Close()
	st.Close()
}

func TestBatcherDegradedOnFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	st := openFaultStore(t, dir, "sync~wal@8=eio", 0)
	b := New(st, Config{MaxBatch: 4, MaxDelay: 50 * time.Microsecond})
	acked, derr := driveUntilDegraded(t, b.Do)
	if b.DegradedErr() == nil {
		t.Fatal("batcher does not report degradation")
	}
	checkDegraded(t, st, acked, derr, b.Do, dir)
	b.Close()
	st.Close()
}

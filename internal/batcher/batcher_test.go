package batcher

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/store"
)

func openEngine(t *testing.T, shards, sessions int) store.Store {
	t.Helper()
	st, err := store.Open(store.Config{
		Kind:        core.KindHash,
		Policy:      persist.NVTraverse{},
		Profile:     pmem.ProfileZero,
		Shards:      shards,
		SizeHint:    4096,
		MaxSessions: sessions,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBatcherBasicOps round-trips the operation vocabulary through Do on
// both backends.
func TestBatcherBasicOps(t *testing.T) {
	for _, shards := range []int{0, 4} {
		st, err := store.Open(store.Config{
			Kind: core.KindSkiplist, Profile: pmem.ProfileZero,
			Shards: shards, SizeHint: 1024, MaxSessions: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		b := New(st, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})
		if res, err := b.Do(store.Op{Kind: shard.OpInsert, Key: 10, Value: 100}); err != nil || !res.OK {
			t.Fatalf("shards=%d insert: %+v %v", shards, res, err)
		}
		if res, _ := b.Do(store.Op{Kind: shard.OpInsert, Key: 10, Value: 101}); res.OK {
			t.Fatalf("shards=%d duplicate insert succeeded", shards)
		}
		if res, _ := b.Do(store.Op{Kind: shard.OpGet, Key: 10}); !res.OK || res.Value != 100 {
			t.Fatalf("shards=%d get: %+v", shards, res)
		}
		if res, _ := b.Do(store.Op{Kind: shard.OpPut, Key: 11, Value: 42}); !res.OK {
			t.Fatalf("shards=%d put: %+v", shards, res)
		}
		if res, _ := b.Do(store.Op{Kind: shard.OpUpdate, Key: 11, Fn: func(o uint64) uint64 { return o + 1 }}); !res.OK || res.Value != 43 {
			t.Fatalf("shards=%d update: %+v", shards, res)
		}
		if res, _ := b.Do(store.Op{Kind: shard.OpScan, Key: 1, Hi: 100}); !res.OK || res.Value != 2 {
			t.Fatalf("shards=%d scan: %+v", shards, res)
		}
		if res, _ := b.Do(store.Op{Kind: shard.OpDelete, Key: 10}); !res.OK {
			t.Fatalf("shards=%d delete: %+v", shards, res)
		}
		b.Close()
		if _, err := b.Do(store.Op{Kind: shard.OpGet, Key: 10}); err != ErrClosed {
			t.Fatalf("shards=%d submit after close: %v", shards, err)
		}
		st2 := st.NewSession()
		if v, ok := st2.Get(11); !ok || v != 43 {
			t.Fatalf("shards=%d store state after close: %d %v", shards, v, ok)
		}
	}
}

// TestBatcherConcurrentWriters hammers the batcher from many goroutines and
// verifies every write landed.
func TestBatcherConcurrentWriters(t *testing.T) {
	st := openEngine(t, 4, 8)
	b := New(st, Config{MaxBatch: 16, MaxDelay: 50 * time.Microsecond})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i + 1)
				if res, err := b.Do(store.Op{Kind: shard.OpPut, Key: k, Value: k * 2}); err != nil || !res.OK {
					t.Errorf("put %d: %+v %v", k, res, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	sess := st.NewSession()
	for k := uint64(1); k <= workers*per; k++ {
		if v, ok := sess.Get(k); !ok || v != k*2 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
	}
	bs := b.Stats()
	if bs.Ops != workers*per {
		t.Fatalf("batcher ops %d, want %d", bs.Ops, workers*per)
	}
	if bs.Flushes >= bs.Ops {
		t.Fatalf("no batching happened: %d flushes for %d ops", bs.Flushes, bs.Ops)
	}
}

// TestBatcherLatencyBudget: a lone request must not wait for a full batch —
// the MaxDelay flush must release it.
func TestBatcherLatencyBudget(t *testing.T) {
	st := openEngine(t, 2, 4)
	b := New(st, Config{MaxBatch: 1 << 20, MaxDelay: 200 * time.Microsecond})
	defer b.Close()
	done := make(chan struct{})
	go func() {
		b.Do(store.Op{Kind: shard.OpPut, Key: 1, Value: 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lone request stuck: MaxDelay flush never happened")
	}
}

// TestGroupCommitFenceAccounting is the fence-accounting pin for group
// commit: K concurrent writers issue R rounds of one fresh-key insert each
// through the batcher (MaxBatch = K, effectively unbounded delay, so each
// round is exactly one flush), and the identical operation stream replays
// unbatched on an identical engine. A successful NVTraverse insert issues a
// fixed set of unconditional ordering fences plus exactly one commit fence,
// so the two runs differ only in commit fences: the unbatched run pays K
// per round, the batched run exactly one per shard group per flush. The
// test asserts that difference exactly, and that the batched run's commit
// fences per round are at most K/2 (≥2x group-commit amortization at K=8
// concurrent writers over 4 shards).
func TestGroupCommitFenceAccounting(t *testing.T) {
	const K, R, shards = 8, 25, 4
	batched := openEngine(t, shards, K+4)
	unbatched := openEngine(t, shards, K+4)
	eng := batched.(*store.EngineStore).Engine()

	b := NewSession(batched.NewSession(), Config{MaxBatch: K, MaxDelay: time.Hour})
	key := func(r, w int) uint64 { return uint64(r*K+w) + 1 }

	// Expected fence groups: per round, one commit fence per distinct shard
	// among the round's keys.
	expectGroups := 0
	for r := 0; r < R; r++ {
		distinct := map[int]bool{}
		for w := 0; w < K; w++ {
			distinct[eng.ShardFor(key(r, w))] = true
		}
		expectGroups += len(distinct)
	}

	batched.ResetStats()
	for r := 0; r < R; r++ {
		var wg sync.WaitGroup
		for w := 0; w < K; w++ {
			wg.Add(1)
			go func(k uint64) {
				defer wg.Done()
				if res, err := b.Do(store.Op{Kind: shard.OpInsert, Key: k, Value: k}); err != nil || !res.OK {
					t.Errorf("insert %d: %+v %v", k, res, err)
				}
			}(key(r, w))
		}
		wg.Wait()
	}
	fBatched := batched.Stats().Fences
	b.Close()

	us := unbatched.NewSession()
	unbatched.ResetStats()
	for r := 0; r < R; r++ {
		for w := 0; w < K; w++ {
			if !us.Insert(key(r, w), key(r, w)) {
				t.Fatalf("unbatched insert %d failed", key(r, w))
			}
		}
	}
	fUnbatched := unbatched.Stats().Fences

	// Sanity: the per-insert fence count is a constant (ordering fences are
	// unconditional and uncontended inserts take one CAS).
	if fUnbatched%uint64(R*K) != 0 {
		t.Fatalf("per-insert fence count not constant: %d fences / %d inserts", fUnbatched, R*K)
	}
	perOp := fUnbatched / uint64(R*K)

	// Calibrate the split of perOp into ordering fences and commit fences:
	// a one-op batch pays the ordering fences plus exactly one group fence.
	cal := openEngine(t, shards, 4)
	cb := NewSession(cal.NewSession(), Config{MaxBatch: 1, MaxDelay: time.Hour})
	cal.ResetStats()
	if res, err := cb.Do(store.Op{Kind: shard.OpInsert, Key: 1, Value: 1}); err != nil || !res.OK {
		t.Fatalf("calibration insert: %+v %v", res, err)
	}
	ordering := cal.Stats().Fences - 1
	cb.Close()
	commitPerOp := perOp - ordering
	if commitPerOp == 0 {
		t.Fatalf("calibration says inserts carry no commit fence (perOp=%d ordering=%d)", perOp, ordering)
	}

	// Exactly one commit fence per shard group per flush: beyond the
	// unavoidable ordering fences, the batched run paid precisely one fence
	// per nonempty shard group.
	batchedCommit := fBatched - uint64(R*K)*ordering
	if batchedCommit != uint64(expectGroups) {
		t.Fatalf("batched commit fences %d (total %d, ordering/op %d), want exactly one per shard group: %d",
			batchedCommit, fBatched, ordering, expectGroups)
	}
	// Strictly fewer commit fences than K per round, with ≥2x amortization:
	// the unbatched run paid commitPerOp*K per round, the batched run at
	// most K/2.
	unbatchedCommit := uint64(R*K) * commitPerOp
	if 2*batchedCommit > unbatchedCommit {
		t.Fatalf("commit fences %d batched vs %d unbatched: less than 2x group-commit amortization",
			batchedCommit, unbatchedCommit)
	}
	if 2*expectGroups > R*K {
		t.Fatalf("groups %d over %d rounds of %d writers: batching produced no amortization",
			expectGroups, R, K)
	}
	bs := b.Stats()
	if bs.Flushes != R {
		t.Fatalf("flushes %d, want one per round (%d)", bs.Flushes, R)
	}
	if bs.Groups != uint64(expectGroups) {
		t.Fatalf("completion groups %d, want %d", bs.Groups, expectGroups)
	}
	if bs.Ops != R*K {
		t.Fatalf("ops %d, want %d", bs.Ops, R*K)
	}
}

package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

// TestRangeScanAfterCrash is the scan half of durable linearizability:
// after a crash (with cache-eviction noise) and recovery, the full-range
// scan must observe every durably committed key — each acknowledged insert
// that no later operation deleted — and must agree exactly with the
// recovered contents. Workers own disjoint key ranges, so "durably
// committed and still present" is per-worker sequential and unambiguous.
func TestRangeScanAfterCrash(t *testing.T) {
	const (
		workers        = 4
		span           = 64 // keys per worker
		opsBeforeCrash = 600
	)
	for _, kind := range OrderedKinds() {
		for _, pol := range []persist.Policy{persist.NVTraverse{}, persist.Izraelevitz{}, persist.LinkAndPersist{}} {
			kind, pol := kind, pol
			t.Run(string(kind)+"/"+pol.Name(), func(t *testing.T) {
				mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero,
					MaxThreads: workers + 4})
				s, err := NewSet(kind, mem, pol, Params{SizeHint: workers * span})
				if err != nil {
					t.Fatal(err)
				}
				mem.PersistAll()

				// mustHave[w] tracks worker w's keys whose last acknowledged
				// operation was a successful insert (no in-flight op on the
				// key afterwards): these are durably committed and present.
				mustHave := make([]map[uint64]uint64, workers)
				var completed atomic.Uint64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					th := mem.NewThread()
					mine := map[uint64]uint64{}
					mustHave[w] = mine
					lo := uint64(w*span + 1)
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for !mem.Crashed() {
							k := lo + th.Rand()%span
							v := th.Rand() & ((1 << 32) - 1)
							ins := th.Rand()%3 != 0 // 2/3 inserts, 1/3 deletes
							var ok bool
							crashed := pmem.RunOp(func() {
								if ins {
									ok = s.Insert(th, k, v)
								} else {
									ok = s.Delete(th, k)
								}
							})
							if crashed {
								// In flight at the crash: the op may land
								// either way, so the key proves nothing.
								delete(mine, k)
								return
							}
							if ins && ok {
								mine[k] = v
							} else if !ins && ok {
								delete(mine, k)
							}
							completed.Add(1)
						}
					}(w)
				}
				for completed.Load() < opsBeforeCrash {
					runtime.Gosched()
				}
				mem.Crash()
				wg.Wait()
				mem.FinishCrash(0.3, int64(len(kind))*7919)
				mem.Restart()

				rec := mem.NewThread()
				s.Recover(rec)

				scanned := map[uint64]uint64{}
				var order []uint64
				if err := s.RangeScan(rec, 1, workers*span, func(k, v uint64) bool {
					scanned[k] = v
					order = append(order, k)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
					t.Fatalf("post-recovery scan out of order: %v", order)
				}
				for w := range mustHave {
					for k, v := range mustHave[w] {
						got, ok := scanned[k]
						if !ok {
							t.Fatalf("durably committed key %d missing from post-recovery scan", k)
						}
						if got != v {
							t.Fatalf("durably committed key %d: scan value %d, want %d", k, got, v)
						}
					}
				}
				// Scan/contents agreement.
				contents := SortedContents(s, rec)
				if len(contents) != len(order) {
					t.Fatalf("scan found %d keys, contents %d", len(order), len(contents))
				}
				for i := range contents {
					if contents[i] != order[i] {
						t.Fatalf("scan/contents diverge at %d: %d vs %d", i, order[i], contents[i])
					}
				}
			})
		}
	}
}

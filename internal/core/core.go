// Package core ties the NVTraverse reproduction together: it defines the
// common surface of all traversal data structures in this repository and a
// registry that builds any (structure, persistence policy) combination the
// paper evaluates. The benchmark harness, the crash-test CLI and the
// examples all construct structures through this package.
//
// The paper's primary contribution is a transformation, not a single data
// structure: take a lock-free structure in traversal form (findEntry →
// traverse → critical; Properties 1–5 of §3) and inject flushes and fences
// per Protocols 1 and 2 of §4 to obtain a durably linearizable structure.
// In this codebase the transformation is the persist.Policy interface —
// each structure is written once against the policy hooks, and choosing
// persist.NVTraverse{} *is* applying the paper's transformation, just as
// persist.Izraelevitz{} applies the baseline transformation to the same
// code. See the persist package for the hook-to-protocol mapping and each
// structure package for how its traverse method satisfies Properties 2–5.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ellenbst"
	"repro/internal/hashtable"
	"repro/internal/kv"
	"repro/internal/list"
	"repro/internal/nmbst"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/skiplist"
)

// Set is the common surface of every traversal set/map structure: a map
// from uint64 keys (in [1, 2^61)) to uint64 values with set-style inserts,
// atomic read-modify-write, and — on ordered kinds — range scans. This is
// the Store API v2 contract; the shard engine and the store package
// compose it into thread-free handles.
type Set interface {
	// Insert adds key with value; false if the key is already present.
	Insert(t *pmem.Thread, key, value uint64) bool
	// Delete removes key; false if absent.
	Delete(t *pmem.Thread, key uint64) bool
	// Find reports membership and the associated value.
	Find(t *pmem.Thread, key uint64) (uint64, bool)
	// Update atomically read-modify-writes key's value in place (a CAS on
	// the value word in the structure's critical section), returning the
	// installed value, or (0, false) if key is absent. fn may be called
	// several times under contention and must be pure.
	Update(t *pmem.Thread, key uint64, fn func(old uint64) uint64) (uint64, bool)
	// GetOrInsert atomically returns the present value of key
	// (inserted=false) or inserts value and returns it (inserted=true).
	GetOrInsert(t *pmem.Thread, key, value uint64) (v uint64, inserted bool)
	// RangeScan visits every present key in [lo, hi] ascending, calling
	// fn(key, value) until fn returns false or the range is exhausted.
	// Unordered kinds return ErrUnordered. The scan is not an atomic
	// snapshot: each key's presence is decided when its link is read, so
	// keys mutated concurrently may or may not appear, while untouched
	// keys are reported exactly. fn must not call operations of this
	// structure on the same thread.
	RangeScan(t *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error
	// Recover is the paper's §4 recovery phase: run after a crash, before
	// any other operation.
	Recover(t *pmem.Thread)
	// Contents returns the present keys (quiescent use only).
	Contents(t *pmem.Thread) []uint64
}

// ErrUnordered is returned by RangeScan on kinds without a key order.
var ErrUnordered = kv.ErrUnordered

// Validator is implemented by structures with a structural self-check.
type Validator interface {
	Validate(t *pmem.Thread) error
}

// Kind names a data structure of the paper's evaluation.
type Kind string

// The five structures evaluated in §5.
const (
	KindList     Kind = "list"
	KindHash     Kind = "hash"
	KindEllenBST Kind = "ellenbst"
	KindNMBST    Kind = "nmbst"
	KindSkiplist Kind = "skiplist"
)

// Kinds lists every structure kind in evaluation order.
func Kinds() []Kind {
	return []Kind{KindList, KindHash, KindEllenBST, KindNMBST, KindSkiplist}
}

// Ordered reports whether the kind maintains a key order — i.e. whether
// RangeScan works on it. Four of the five kinds are ordered; only the hash
// table is not.
func Ordered(kind Kind) bool {
	return kind != KindHash
}

// OrderedKinds lists the kinds that support RangeScan, in evaluation order.
func OrderedKinds() []Kind {
	var out []Kind
	for _, k := range Kinds() {
		if Ordered(k) {
			out = append(out, k)
		}
	}
	return out
}

// Params tunes structure construction.
type Params struct {
	// Buckets is the hash-table bucket count (default: SizeHint, load
	// factor 1, as in the paper's setup).
	Buckets int
	// SizeHint is the expected key-range size.
	SizeHint int
}

// NewSet builds a structure of the given kind on mem with the policy.
func NewSet(kind Kind, mem *pmem.Memory, pol persist.Policy, p Params) (Set, error) {
	switch kind {
	case KindList:
		return list.New(mem, pol), nil
	case KindHash:
		b := p.Buckets
		if b == 0 {
			b = p.SizeHint
		}
		if b == 0 {
			b = 1 << 16
		}
		return hashtable.New(mem, pol, b), nil
	case KindEllenBST:
		return ellenbst.New(mem, pol), nil
	case KindNMBST:
		return nmbst.New(mem, pol), nil
	case KindSkiplist:
		return skiplist.New(mem, pol), nil
	}
	return nil, fmt.Errorf("core: unknown structure kind %q", kind)
}

// Interface conformance checks: every structure is a Set and a Validator.
var (
	_ Set       = (*list.List)(nil)
	_ Set       = (*hashtable.Table)(nil)
	_ Set       = (*ellenbst.Tree)(nil)
	_ Set       = (*nmbst.Tree)(nil)
	_ Set       = (*skiplist.List)(nil)
	_ Validator = (*list.List)(nil)
	_ Validator = (*hashtable.Table)(nil)
	_ Validator = (*ellenbst.Tree)(nil)
	_ Validator = (*nmbst.Tree)(nil)
	_ Validator = (*skiplist.List)(nil)
)

// constFn is a reusable "return this constant" Update closure. A literal
// closure capturing value would escape into the Update interface call and
// cost one heap allocation per upsert on the hottest write path; pooled
// boxes make Upsert allocation-free at steady state (the alloc-guard tests
// pin this).
type constFn struct {
	v  uint64
	fn func(uint64) uint64
}

var constFnPool = sync.Pool{New: func() any {
	b := &constFn{}
	b.fn = func(uint64) uint64 { return b.v }
	return b
}}

// Upsert sets key to value atomically: an in-place Update when the key is
// present, a GetOrInsert when it is not, looping across the race between
// the two. The key never transiently disappears and concurrent upserts
// leave exactly one racing value in place. Every upsert path in the
// repository (engine Put, store Put, bench workloads) goes through here.
func Upsert(s Set, t *pmem.Thread, key, value uint64) {
	b := constFnPool.Get().(*constFn)
	b.v = value
	for {
		if _, ok := s.Update(t, key, b.fn); ok {
			break
		}
		if _, inserted := s.GetOrInsert(t, key, value); inserted {
			break
		}
	}
	constFnPool.Put(b)
}

// ApplyUpdate runs Update with fn, treating a nil fn as the batched-op
// convention "set to value if present" (shard.Op.Fn).
func ApplyUpdate(s Set, t *pmem.Thread, key uint64, fn func(old uint64) uint64, value uint64) (uint64, bool) {
	if fn == nil {
		fn = func(uint64) uint64 { return value }
	}
	return s.Update(t, key, fn)
}

// SortedContents returns the structure's contents sorted ascending,
// normalizing structures that do not guarantee a global order (the hash
// table concatenates per-bucket orders).
func SortedContents(s Set, t *pmem.Thread) []uint64 {
	c := s.Contents(t)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

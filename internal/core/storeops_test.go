package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newSetOrDie(t *testing.T, kind Kind, pol persist.Policy, threads int) (Set, *pmem.Memory) {
	t.Helper()
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: threads})
	s, err := NewSet(kind, mem, pol, Params{SizeHint: 256})
	if err != nil {
		t.Fatalf("%s/%s: %v", kind, pol.Name(), err)
	}
	return s, mem
}

// TestRangeScanMatchesSortedContents checks the quiescent contract on every
// kind × policy: the scan of [lo, hi] is exactly the filtered sorted
// contents, in order; the hash table reports ErrUnordered.
func TestRangeScanMatchesSortedContents(t *testing.T) {
	keys := []uint64{2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610}
	for _, kind := range Kinds() {
		for _, pol := range persist.All() {
			s, mem := newSetOrDie(t, kind, pol, 8)
			th := mem.NewThread()
			for _, k := range keys {
				s.Insert(th, k, k*10)
			}
			if !Ordered(kind) {
				err := s.RangeScan(th, 1, 1000, func(uint64, uint64) bool { return true })
				if !errors.Is(err, ErrUnordered) {
					t.Fatalf("%s/%s: RangeScan err = %v, want ErrUnordered", kind, pol.Name(), err)
				}
				continue
			}
			for _, r := range [][2]uint64{{1, 1000}, {5, 100}, {6, 88}, {90, 143}, {700, 900}} {
				lo, hi := r[0], r[1]
				var got [][2]uint64
				if err := s.RangeScan(th, lo, hi, func(k, v uint64) bool {
					got = append(got, [2]uint64{k, v})
					return true
				}); err != nil {
					t.Fatalf("%s/%s: RangeScan: %v", kind, pol.Name(), err)
				}
				var want []uint64
				for _, k := range SortedContents(s, th) {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s [%d,%d]: scan %v, want keys %v", kind, pol.Name(), lo, hi, got, want)
				}
				for i := range want {
					if got[i][0] != want[i] || got[i][1] != want[i]*10 {
						t.Fatalf("%s/%s [%d,%d]: scan[%d] = %v, want key %d value %d",
							kind, pol.Name(), lo, hi, i, got[i], want[i], want[i]*10)
					}
				}
			}
			// Early stop: fn returning false ends the scan.
			seen := 0
			s.RangeScan(th, 1, 1000, func(uint64, uint64) bool {
				seen++
				return seen < 3
			})
			if seen != 3 {
				t.Fatalf("%s/%s: early stop saw %d keys, want 3", kind, pol.Name(), seen)
			}
		}
	}
}

// TestRangeScanConcurrent is the cross-kind × policy property test: with
// mutators churning odd keys, every concurrent scan must report the stable
// even keys exactly (with their values), in ascending order, and never
// report a key outside the populated space.
func TestRangeScanConcurrent(t *testing.T) {
	const (
		rangeMax = 512
		mutators = 3
		scanners = 2
		rounds   = 300
	)
	for _, kind := range OrderedKinds() {
		for _, pol := range persist.All() {
			kind, pol := kind, pol
			t.Run(string(kind)+"/"+pol.Name(), func(t *testing.T) {
				s, mem := newSetOrDie(t, kind, pol, mutators+scanners+4)
				setup := mem.NewThread()
				stable := map[uint64]bool{}
				for k := uint64(2); k <= rangeMax; k += 2 {
					s.Insert(setup, k, k)
					stable[k] = true
				}
				var stop atomic.Bool
				var mwg, swg sync.WaitGroup
				for w := 0; w < mutators; w++ {
					th := mem.NewThread()
					mwg.Add(1)
					go func() {
						defer mwg.Done()
						for i := 0; i < rounds; i++ {
							k := th.Rand()%(rangeMax/2)*2 + 1 // odd keys only
							switch th.Rand() % 3 {
							case 0:
								s.Insert(th, k, k)
							case 1:
								s.Delete(th, k)
							default:
								s.Update(th, k, func(old uint64) uint64 { return old + 2 })
							}
						}
					}()
				}
				errs := make(chan error, scanners)
				for w := 0; w < scanners; w++ {
					th := mem.NewThread()
					swg.Add(1)
					go func() {
						defer swg.Done()
						for {
							last := uint64(0)
							seenStable := 0
							var scanErr error
							err := s.RangeScan(th, 1, rangeMax, func(k, v uint64) bool {
								switch {
								case k <= last:
									scanErr = fmt.Errorf("keys out of order: %d after %d", k, last)
								case k > rangeMax:
									scanErr = fmt.Errorf("alien key %d", k)
								case stable[k] && v != k:
									scanErr = fmt.Errorf("stable key %d has value %d", k, v)
								}
								if scanErr != nil {
									return false
								}
								last = k
								if stable[k] {
									seenStable++
								}
								return true
							})
							if err == nil && scanErr == nil && seenStable != len(stable) {
								scanErr = fmt.Errorf("scan saw %d stable keys, want %d", seenStable, len(stable))
							}
							if err != nil {
								scanErr = err
							}
							if scanErr != nil {
								errs <- scanErr
								return
							}
							if stop.Load() {
								return // one final pass ran after the mutators quiesced
							}
						}
					}()
				}
				mwg.Wait()
				stop.Store(true)
				swg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestUpdateAtomicIncrement hammers one key set with concurrent atomic
// increments; the final sums must account for every increment exactly.
func TestUpdateAtomicIncrement(t *testing.T) {
	const (
		workers = 4
		perKey  = 400
	)
	keys := []uint64{7, 99, 1024}
	for _, kind := range Kinds() {
		for _, pol := range persist.All() {
			s, mem := newSetOrDie(t, kind, pol, workers+4)
			setup := mem.NewThread()
			for _, k := range keys {
				s.Insert(setup, k, 0)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				th := mem.NewThread()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perKey; i++ {
						for _, k := range keys {
							if _, ok := s.Update(th, k, func(old uint64) uint64 { return old + 1 }); !ok {
								t.Errorf("%s/%s: Update(%d) missed a present key", kind, pol.Name(), k)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			th := mem.NewThread()
			for _, k := range keys {
				v, ok := s.Find(th, k)
				if !ok || v != workers*perKey {
					t.Fatalf("%s/%s: key %d = %d,%v want %d", kind, pol.Name(), k, v, ok, workers*perKey)
				}
			}
		}
	}
}

// TestUpdateAbsent: Update of an absent key reports false and installs
// nothing.
func TestUpdateAbsent(t *testing.T) {
	for _, kind := range Kinds() {
		s, mem := newSetOrDie(t, kind, persist.NVTraverse{}, 4)
		th := mem.NewThread()
		if _, ok := s.Update(th, 42, func(old uint64) uint64 { return old + 1 }); ok {
			t.Fatalf("%s: Update of absent key succeeded", kind)
		}
		if _, ok := s.Find(th, 42); ok {
			t.Fatalf("%s: Update materialized an absent key", kind)
		}
	}
}

// TestGetOrInsertSingleWinner races GetOrInsert on one key: exactly one
// worker inserts, and everyone observes the winner's value.
func TestGetOrInsertSingleWinner(t *testing.T) {
	const workers = 8
	for _, kind := range Kinds() {
		for _, pol := range persist.All() {
			s, mem := newSetOrDie(t, kind, pol, workers+4)
			var inserted atomic.Uint64
			values := make([]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				th := mem.NewThread()
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					v, ins := s.GetOrInsert(th, 77, uint64(1000+w))
					if ins {
						inserted.Add(1)
					}
					values[w] = v
				}()
			}
			wg.Wait()
			if n := inserted.Load(); n != 1 {
				t.Fatalf("%s/%s: %d workers inserted, want exactly 1", kind, pol.Name(), n)
			}
			th := mem.NewThread()
			winner, ok := s.Find(th, 77)
			if !ok {
				t.Fatalf("%s/%s: key vanished", kind, pol.Name())
			}
			for w, v := range values {
				if v != winner {
					t.Fatalf("%s/%s: worker %d saw value %d, winner wrote %d", kind, pol.Name(), w, v, winner)
				}
			}
		}
	}
}

// TestGetOrInsertSequential: present keys are returned, absent inserted.
func TestGetOrInsertSequential(t *testing.T) {
	for _, kind := range Kinds() {
		s, mem := newSetOrDie(t, kind, persist.NVTraverse{}, 4)
		th := mem.NewThread()
		if v, ins := s.GetOrInsert(th, 5, 50); !ins || v != 50 {
			t.Fatalf("%s: first GetOrInsert = %d,%v", kind, v, ins)
		}
		if v, ins := s.GetOrInsert(th, 5, 99); ins || v != 50 {
			t.Fatalf("%s: second GetOrInsert = %d,%v", kind, v, ins)
		}
	}
}

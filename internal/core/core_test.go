package core

import (
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func TestNewSetAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		for _, pol := range persist.All() {
			mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 8})
			s, err := NewSet(kind, mem, pol, Params{SizeHint: 64})
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, pol.Name(), err)
			}
			th := mem.NewThread()
			if !s.Insert(th, 5, 50) {
				t.Fatalf("%s: insert failed", kind)
			}
			if v, ok := s.Find(th, 5); !ok || v != 50 {
				t.Fatalf("%s: Find = %d,%v", kind, v, ok)
			}
			if !s.Delete(th, 5) {
				t.Fatalf("%s: delete failed", kind)
			}
			if got := s.Contents(th); len(got) != 0 {
				t.Fatalf("%s: contents = %v", kind, got)
			}
			if v, ok := s.(Validator); !ok {
				t.Fatalf("%s: no Validator", kind)
			} else if err := v.Validate(th); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestNewSetUnknownKind(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	if _, err := NewSet(Kind("btree"), mem, persist.None{}, Params{}); err == nil {
		t.Fatalf("unknown kind accepted")
	}
}

func TestSortedContents(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 8})
	s, err := NewSet(KindHash, mem, persist.None{}, Params{SizeHint: 4})
	if err != nil {
		t.Fatal(err)
	}
	th := mem.NewThread()
	for _, k := range []uint64{9, 2, 7, 4} {
		s.Insert(th, k, k)
	}
	got := SortedContents(s, th)
	want := []uint64{2, 4, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedContents = %v", got)
		}
	}
}

func TestKindsStable(t *testing.T) {
	if len(Kinds()) != 5 {
		t.Fatalf("Kinds() = %v", Kinds())
	}
}

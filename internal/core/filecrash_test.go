package core

// File-backend crash torture: the same durable-linearizability rounds the
// tracked simulation runs, but against the WAL-backed pmem directory. The
// crash uses SIGKILL semantics — the crashed memory is abandoned outright
// (its unflushed userspace WAL buffer dies with it, no FinishCrash), and a
// fresh memory + structure reopen the directory, replay the log, and
// recover. Every acknowledged operation must still be visible: each
// policy's BeforeReturn commit fence flushes the record before the op
// returns, so acked state is on disk by the time the history records it.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
)

func fileTortureRounds(t *testing.T) int {
	if testing.Short() {
		return 1
	}
	return 3
}

func runFileTorture(t *testing.T, kind Kind, pol persist.Policy) {
	t.Helper()
	for r := 0; r < fileTortureRounds(t); r++ {
		res := crashtest.Run(crashtest.Options{
			Workers:        4,
			Keys:           256,
			Disjoint:       true,
			PrefillEvery:   4,
			OpsBeforeCrash: 300,
			Seed:           int64(r)*7919 + int64(len(kind)),
			Dir:            t.TempDir(),
		}, func(mem *pmem.Memory) crashtest.Set {
			s, err := NewSet(kind, mem, pol, Params{SizeHint: 256})
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				t.Errorf("round %d: %s", r, v)
			}
			t.Fatalf("round %d: %d violations (completed=%d inflight=%d survivors=%d)",
				r, len(res.Violations), res.Completed, res.InFlight, res.Survivors)
		}
		if res.Completed < 300 {
			t.Fatalf("round %d: only %d ops completed", r, res.Completed)
		}
	}
}

func TestFileBackendCrashTorture(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			runFileTorture(t, kind, persist.NVTraverse{})
		})
	}
}

// LinkAndPersist acks some operations without a commit fence (the link tag
// defers the flush), closing that window through DurableSync instead — worth
// its own torture pass over a structure that exercises the tagged-link path.
func TestFileBackendCrashTortureLinkAndPersist(t *testing.T) {
	runFileTorture(t, KindList, persist.LinkAndPersist{})
}

// TestFileBackendFencePoints crashes one operation at every fence of its
// execution against the file backend: build + prefill on a durable tracked
// memory, arm CrashAtFence(k), run the op, abandon the crashed memory
// without ceremony, reopen the directory with a fresh memory + structure,
// and require the recovered key set to be one some linearization of the
// interrupted operation explains — prefill intact, target either way.
func TestFileBackendFencePoints(t *testing.T) {
	prefill := []uint64{10, 20, 30, 40}
	scenarios := []struct {
		name   string
		key    uint64
		insert bool
	}{
		{"insert-new", 25, true},
		{"insert-dup", 20, true},
		{"delete-present", 30, false},
		{"delete-absent", 35, false},
	}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			for _, sc := range scenarios {
				dir := t.TempDir()
				cfg := pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero,
					MaxThreads: 4, Dir: dir}
				build := func() (*pmem.Memory, Set, *pmem.Thread) {
					mem := pmem.New(cfg)
					s, err := NewSet(kind, mem, persist.NVTraverse{}, Params{SizeHint: 64})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := mem.RecoverFiles(); err != nil {
						t.Fatalf("%s: recover: %v", sc.name, err)
					}
					return mem, s, mem.NewThread()
				}

				// Count the fences one clean execution issues (fresh dir so
				// the counting round leaves no state behind for the real one).
				fences := func() int {
					cnt := cfg
					cnt.Dir = t.TempDir()
					mem := pmem.New(cnt)
					s, err := NewSet(kind, mem, persist.NVTraverse{}, Params{SizeHint: 64})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := mem.RecoverFiles(); err != nil {
						t.Fatal(err)
					}
					th := mem.NewThread()
					for _, k := range prefill {
						s.Insert(th, k, k)
					}
					before := mem.Stats().Fences
					runOp(s, th, sc.key, sc.insert)
					n := int(mem.Stats().Fences - before)
					mem.Close()
					return n
				}()
				if fences == 0 {
					t.Fatalf("%s: op issues no fences", sc.name)
				}

				for k := 1; k <= fences; k++ {
					mem, s, th := build()
					for _, key := range prefill {
						s.Insert(th, key, key)
					}
					mem.CrashAtFence(k)
					crashed := pmem.RunOp(func() { runOp(s, th, sc.key, sc.insert) })
					if !crashed {
						t.Fatalf("%s: fence %d/%d did not crash", sc.name, k, fences)
					}
					// SIGKILL semantics: abandon mem, reopen from the files.
					mem2, s2, rec := build()
					s2.Recover(rec)
					if v, ok := s2.(Validator); ok {
						if err := v.Validate(rec); err != nil {
							t.Fatalf("%s: fence %d/%d: invalid after file recovery: %v",
								sc.name, k, fences, err)
						}
					}
					if err := checkFileFenceContents(s2, rec, prefill, sc.key, sc.insert); err != nil {
						t.Fatalf("%s: fence %d/%d: %v", sc.name, k, fences, err)
					}
					// The recovered structure accepts new operations.
					if !s2.Insert(rec, 999, 999) {
						t.Fatalf("%s: fence %d/%d: post-recovery insert failed", sc.name, k, fences)
					}
					mem2.Close()
					// Fresh directory for the next fence point.
					dir = t.TempDir()
					cfg.Dir = dir
				}
			}
		})
	}
}

func runOp(s Set, th *pmem.Thread, key uint64, insert bool) {
	if insert {
		s.Insert(th, key, key)
	} else {
		s.Delete(th, key)
	}
}

// checkFileFenceContents verifies prefill keys survive (except possibly the
// target), no foreign keys appear, and the target's presence is explainable
// by the interrupted operation landing fully or not at all.
func checkFileFenceContents(s Set, rec *pmem.Thread, prefill []uint64, target uint64, insert bool) error {
	got := map[uint64]bool{}
	for _, k := range s.Contents(rec) {
		got[k] = true
	}
	preTarget := false
	for _, k := range prefill {
		if k == target {
			preTarget = true
			continue
		}
		if !got[k] {
			return fmt.Errorf("prefilled key %d lost", k)
		}
		delete(got, k)
	}
	targetPresent := got[target]
	delete(got, target)
	if len(got) != 0 {
		extra := make([]uint64, 0, len(got))
		for k := range got {
			extra = append(extra, k)
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		return fmt.Errorf("foreign keys present: %v", extra)
	}
	// Interrupted mutation: pre-state or post-state both explain the set.
	allowed := []bool{preTarget}
	if insert {
		allowed = append(allowed, true)
	} else {
		allowed = append(allowed, false)
	}
	for _, w := range allowed {
		if targetPresent == w {
			return nil
		}
	}
	return fmt.Errorf("target %d present=%v, allowed %v (prefilled=%v)",
		target, targetPresent, allowed, preTarget)
}

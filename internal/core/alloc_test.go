package core

import (
	"fmt"
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

// Zero-allocation guards for the fast-mode point-op hot path: Get (Find),
// Put (Upsert of an existing key), and the raw persistence instructions
// Flush/Fence. A single heap allocation per operation costs more than the
// whole simulated access on these paths and silently poisons every
// throughput panel, so any regression must fail loudly here.
func TestFastModeHotPathAllocs(t *testing.T) {
	for _, kind := range []Kind{KindList, KindSkiplist} {
		t.Run(string(kind), func(t *testing.T) {
			mem := pmem.NewFast(pmem.ProfileZero)
			pol, _ := persist.ByName("nvtraverse")
			s, err := NewSet(kind, mem, pol, Params{SizeHint: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			th := mem.NewThread()
			const key = 321
			for k := uint64(1); k <= 1024; k += 2 {
				s.Insert(th, k, k)
			}
			// Warm up scratch buffers, the pending-line set, and the
			// upsert closure pool before measuring.
			for i := 0; i < 64; i++ {
				s.Find(th, key)
				Upsert(s, th, key, uint64(i))
			}

			if avg := testing.AllocsPerRun(200, func() {
				s.Find(th, key)
			}); avg != 0 {
				t.Errorf("%s Get: %v allocs/op, want 0", kind, avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				Upsert(s, th, key, 7)
			}); avg != 0 {
				t.Errorf("%s Put: %v allocs/op, want 0", kind, avg)
			}
		})
	}
}

func TestFastModeFlushFenceAllocs(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	th := mem.NewThread()
	lines := pmem.AllocLines(16)
	flushAll := func() {
		for i := range lines {
			th.Flush(&lines[i][0])
		}
		th.Fence()
	}
	flushAll() // warm up the line set
	if avg := testing.AllocsPerRun(200, flushAll); avg != 0 {
		t.Errorf("Flush+Fence: %v allocs per 16-line batch, want 0", avg)
	}
}

// The guard would be vacuous if AllocsPerRun could not see allocations on
// this path at all, so prove the harness bites: an allocating Update
// closure must register.
func TestAllocGuardDetectsAllocations(t *testing.T) {
	mem := pmem.NewFast(pmem.ProfileZero)
	pol, _ := persist.ByName("nvtraverse")
	s, err := NewSet(KindList, mem, pol, Params{SizeHint: 64})
	if err != nil {
		t.Fatal(err)
	}
	th := mem.NewThread()
	s.Insert(th, 1, 1)
	sink := uint64(0)
	if avg := testing.AllocsPerRun(50, func() {
		v := th.Rand()
		fn := func(uint64) uint64 { return v } // escapes: fresh closure
		s.Update(th, 1, fn)
		r := fmt.Sprintf("%d", v) // definitely allocates
		sink += uint64(len(r))
	}); avg == 0 {
		t.Fatalf("alloc harness saw 0 allocs on an allocating path (sink=%d)", sink)
	}
}

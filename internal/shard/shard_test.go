package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
)

func newFast(t *testing.T, shards int, kind core.Kind) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:  shards,
		Kind:    kind,
		Policy:  persist.NVTraverse{},
		Profile: pmem.ProfileZero,
		Params:  core.Params{SizeHint: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestShardForIsDeterministicAndInRange(t *testing.T) {
	e := newFast(t, 16, core.KindHash)
	counts := make([]int, 16)
	for k := uint64(1); k <= 10000; k++ {
		i := e.ShardFor(k)
		if i != e.ShardFor(k) {
			t.Fatalf("ShardFor(%d) not deterministic", k)
		}
		if i < 0 || i >= 16 {
			t.Fatalf("ShardFor(%d) = %d out of range", k, i)
		}
		counts[i]++
	}
	// The splitmix finalizer should spread sequential keys roughly evenly:
	// each shard expects 625 of 10000 keys.
	for i, c := range counts {
		if c < 400 || c > 900 {
			t.Fatalf("shard %d got %d of 10000 keys: hash is badly skewed (%v)", i, c, counts)
		}
	}
}

func TestEngineBasicOps(t *testing.T) {
	for _, kind := range core.Kinds() {
		e := newFast(t, 4, kind)
		s := e.NewSession()
		for k := uint64(1); k <= 200; k++ {
			if !s.Insert(k, k*10) {
				t.Fatalf("%s: Insert(%d) failed", kind, k)
			}
		}
		if s.Insert(7, 1) {
			t.Fatalf("%s: duplicate insert succeeded", kind)
		}
		for k := uint64(1); k <= 200; k++ {
			if v, ok := s.Get(k); !ok || v != k*10 {
				t.Fatalf("%s: Get(%d) = %d,%v", kind, k, v, ok)
			}
		}
		s.Put(7, 999) // upsert over an existing key
		if v, ok := s.Get(7); !ok || v != 999 {
			t.Fatalf("%s: Put did not replace: %d,%v", kind, v, ok)
		}
		s.Put(1000, 1) // upsert of an absent key
		if _, ok := s.Get(1000); !ok {
			t.Fatalf("%s: Put of absent key lost", kind)
		}
		if !s.Delete(5) || s.Delete(5) {
			t.Fatalf("%s: delete semantics wrong", kind)
		}
		if got := len(e.Contents(s)); got != 200 { // 200 inserted - 1 deleted + 1 put
			t.Fatalf("%s: Contents = %d keys, want 200", kind, got)
		}
		if err := e.Validate(s); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestApplyAndMultiGetAlignment(t *testing.T) {
	e := newFast(t, 8, core.KindHash)
	s := e.NewSession()
	ops := make([]Op, 0, 64)
	for k := uint64(1); k <= 64; k++ {
		ops = append(ops, Op{Kind: OpInsert, Key: k, Value: k + 100})
	}
	res := s.Apply(ops, nil)
	for i, r := range res {
		if !r.OK {
			t.Fatalf("batched insert %d failed", i)
		}
	}
	keys := []uint64{64, 1, 33, 999, 17}
	got := s.MultiGet(keys, nil)
	want := []OpResult{{164, true}, {101, true}, {133, true}, {0, false}, {117, true}}
	for i := range keys {
		if got[i] != want[i] {
			t.Fatalf("MultiGet[%d] (key %d) = %+v, want %+v", i, keys[i], got[i], want[i])
		}
	}
	// Mixed batch: results stay positionally aligned across shards.
	mixed := []Op{
		{Kind: OpDelete, Key: 3},
		{Kind: OpGet, Key: 3},
		{Kind: OpPut, Key: 3, Value: 42},
		{Kind: OpGet, Key: 999},
	}
	mres := s.Apply(mixed, res)
	if !mres[0].OK || mres[1].OK != false || !mres[2].OK || mres[3].OK {
		t.Fatalf("mixed batch results wrong: %+v", mres)
	}
}

func TestBatchingSavesFences(t *testing.T) {
	const n = 512
	run := func(batch bool) pmem.Stats {
		e := newFast(t, 2, core.KindHash)
		s := e.NewSession()
		ops := make([]Op, 0, n)
		for k := uint64(1); k <= n; k++ {
			ops = append(ops, Op{Kind: OpInsert, Key: k, Value: k})
		}
		e.ResetStats()
		if batch {
			s.Apply(ops, nil)
		} else {
			for _, op := range ops {
				s.Insert(op.Key, op.Value)
			}
		}
		return e.Stats().Total
	}
	single := run(false)
	batched := run(true)
	// The policies make the same Flush calls either way; batching only
	// lengthens the fence windows, so it may coalesce MORE of them away
	// (line flush coalescing), never issue extra.
	if batched.Flushes+batched.FlushesElided != single.Flushes+single.FlushesElided {
		t.Fatalf("batching changed flush calls: %d+%d vs %d+%d",
			batched.Flushes, batched.FlushesElided, single.Flushes, single.FlushesElided)
	}
	if batched.Flushes > single.Flushes {
		t.Fatalf("batching issued more flushes: %d vs %d", batched.Flushes, single.Flushes)
	}
	// Batching defers the commit fence (one per op) into one fence per
	// shard group: with 2 shards and one Apply, ~n commit fences collapse
	// into 2. The ordering fences remain, so the saving is about n.
	saved := int64(single.Fences) - int64(batched.Fences)
	if saved < n/2 {
		t.Fatalf("batching saved only %d fences (single=%d batched=%d)",
			saved, single.Fences, batched.Fences)
	}
}

func TestStatsSurfaceFlushCoalescing(t *testing.T) {
	// The per-line flush accounting must flow through the engine's
	// aggregated stats: inserts flush several fields of one freshly
	// initialized node, which share its cache line, so some flushes
	// coalesce.
	e := newFast(t, 2, core.KindHash)
	s := e.NewSession()
	for k := uint64(1); k <= 256; k++ {
		s.Insert(k, k)
	}
	st := e.Stats()
	if st.Total.Flushes == 0 || st.Total.FlushesElided == 0 {
		t.Fatalf("flush accounting not surfaced: %+v", st.Total)
	}
	var sum uint64
	for _, ps := range st.PerShard {
		sum += ps.FlushesElided
	}
	if sum != st.Total.FlushesElided {
		t.Fatalf("per-shard elided %d != total %d", sum, st.Total.FlushesElided)
	}
}

func TestStatsAggregation(t *testing.T) {
	e := newFast(t, 4, core.KindHash)
	s := e.NewSession()
	for k := uint64(1); k <= 100; k++ {
		s.Insert(k, k)
	}
	st := e.Stats()
	if len(st.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries", len(st.PerShard))
	}
	var sum pmem.Stats
	touched := 0
	for _, ps := range st.PerShard {
		sum.Add(ps)
		if ps.Writes > 0 {
			touched++
		}
	}
	if sum != st.Total {
		t.Fatalf("Total %+v != sum of shards %+v", st.Total, sum)
	}
	if touched < 3 {
		t.Fatalf("only %d/4 shards touched by 100 keys", touched)
	}
	e.ResetStats()
	if got := e.Stats().Total; got.Writes != 0 || got.Flushes != 0 {
		t.Fatalf("ResetStats left %+v", got)
	}
}

func TestEngineCrashRecoverRoundTrip(t *testing.T) {
	e, err := New(Config{
		Shards:  8,
		Kind:    core.KindSkiplist,
		Policy:  persist.NVTraverse{},
		Tracked: true,
		Params:  core.Params{SizeHint: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	for k := uint64(1); k <= 512; k++ {
		s.Insert(k, k*7)
	}
	// Every insert was acknowledged (commit-fenced), so every key must
	// survive the crash even with no eviction luck.
	e.Crash()
	e.FinishCrash(0, 42)
	e.Restart()
	rec := e.NewSession()
	e.Recover(rec)
	for k := uint64(1); k <= 512; k++ {
		if v, ok := rec.Get(k); !ok || v != k*7 {
			t.Fatalf("key %d lost or corrupted across crash: %d,%v", k, v, ok)
		}
	}
	if err := e.Validate(rec); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsAndParamsSplit(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumShards() != 1 || e.Kind() != core.KindHash {
		t.Fatalf("defaults wrong: shards=%d kind=%s", e.NumShards(), e.Kind())
	}
	if _, err := New(Config{Kind: core.Kind("bogus")}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Session.Get is the engine's hottest call — one hash, one shard pick, one
// structure Find — and it sits inside every YCSB read loop. Pin it at zero
// allocations so the engine's read path cannot silently regress.
func TestSessionGetAllocs(t *testing.T) {
	pol, _ := persist.ByName("nvtraverse")
	eng, err := New(Config{
		Shards:  4,
		Kind:    core.KindHash,
		Policy:  pol,
		Profile: pmem.ProfileZero,
		Params:  core.Params{SizeHint: 1 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession()
	for k := uint64(1); k <= 1024; k += 2 {
		s.Insert(k, k)
	}
	for i := 0; i < 64; i++ { // warm up
		s.Get(uint64(2*i + 1))
	}
	if avg := testing.AllocsPerRun(200, func() {
		s.Get(321)
		s.Get(844) // absent key: miss path must be clean too
	}); avg != 0 {
		t.Errorf("Session.Get: %v allocs per 2 gets, want 0", avg)
	}
}

package shard

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/persist"
)

func newEngine(t *testing.T, shards int, kind core.Kind) *Engine {
	t.Helper()
	eng, err := New(Config{Shards: shards, Kind: kind, Policy: persist.NVTraverse{},
		MaxSessions: 16, Params: core.Params{SizeHint: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestScanMergesShards: the merged engine scan must return the same
// globally ordered sequence a single structure would, with keys scattered
// over shards by the hash.
func TestScanMergesShards(t *testing.T) {
	for _, shards := range []int{1, 4, 7} {
		eng := newEngine(t, shards, core.KindSkiplist)
		s := eng.NewSession()
		var want []uint64
		for k := uint64(1); k <= 500; k += 3 {
			s.Insert(k, k*2)
			want = append(want, k)
		}
		var got []uint64
		err := s.Scan(1, 1000, func(k, v uint64) bool {
			if v != k*2 {
				t.Fatalf("shards=%d: key %d value %d", shards, k, v)
			}
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: scan %d keys, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: scan[%d] = %d, want %d", shards, i, got[i], want[i])
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("shards=%d: merged scan out of order", shards)
		}
		// Bounded sub-range with early stop.
		count := 0
		s.Scan(100, 200, func(k, v uint64) bool {
			if k < 100 || k > 200 {
				t.Fatalf("key %d outside [100, 200]", k)
			}
			count++
			return count < 5
		})
		if count != 5 {
			t.Fatalf("early stop saw %d keys", count)
		}
	}
}

// TestScanUnorderedEngine: a hash-sharded hash engine has no key order.
func TestScanUnorderedEngine(t *testing.T) {
	eng := newEngine(t, 4, core.KindHash)
	s := eng.NewSession()
	s.Insert(1, 1)
	err := s.Scan(1, 10, func(uint64, uint64) bool { return true })
	if !errors.Is(err, kv.ErrUnordered) {
		t.Fatalf("Scan err = %v, want ErrUnordered", err)
	}
}

// TestApplyUpdateAndScan drives the new batched op kinds through Apply.
func TestApplyUpdateAndScan(t *testing.T) {
	eng := newEngine(t, 4, core.KindList)
	s := eng.NewSession()
	for k := uint64(10); k <= 20; k++ {
		s.Insert(k, k)
	}
	res := s.Apply([]Op{
		{Kind: OpUpdate, Key: 10, Fn: func(old uint64) uint64 { return old + 5 }},
		{Kind: OpUpdate, Key: 99, Fn: func(old uint64) uint64 { return old + 5 }}, // absent
		{Kind: OpUpdate, Key: 11, Value: 111},                                     // nil Fn: conditional overwrite
		{Kind: OpScan, Key: 10, Hi: 20},
		{Kind: OpGet, Key: 10},
	}, nil)
	if !res[0].OK || res[0].Value != 15 {
		t.Fatalf("OpUpdate = %+v, want value 15", res[0])
	}
	if res[1].OK {
		t.Fatalf("OpUpdate on absent key reported OK")
	}
	if !res[2].OK || res[2].Value != 111 {
		t.Fatalf("OpUpdate overwrite = %+v", res[2])
	}
	if !res[3].OK || res[3].Value != 11 {
		t.Fatalf("OpScan = %+v, want 11 keys", res[3])
	}
	if !res[4].OK || res[4].Value != 15 {
		t.Fatalf("OpGet = %+v, want updated value 15", res[4])
	}
}

// TestPutAtomic: concurrent Puts of one key must leave exactly one racing
// value, and the key must never transiently vanish (the old delete+insert
// upsert violated both).
func TestPutAtomic(t *testing.T) {
	eng := newEngine(t, 2, core.KindSkiplist)
	setup := eng.NewSession()
	setup.Put(5, 1)
	const (
		writers = 4
		puts    = 300
	)
	var stop atomic.Bool
	var missed atomic.Bool
	var readers, writersWG sync.WaitGroup
	readers.Add(1)
	go func() { // reader: the key must always be present
		defer readers.Done()
		s := eng.NewSession()
		for !stop.Load() {
			if _, ok := s.Get(5); !ok {
				missed.Store(true)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		s := eng.NewSession()
		w := w
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < puts; i++ {
				s.Put(5, uint64(w*1000+i))
			}
		}()
	}
	writersWG.Wait()
	stop.Store(true)
	readers.Wait()
	if missed.Load() {
		t.Fatal("key transiently absent during concurrent Put")
	}
	v, ok := setup.Get(5)
	if !ok {
		t.Fatal("key absent after Puts")
	}
	if v >= writers*1000+puts || v%1000 >= puts {
		t.Fatalf("final value %d was never written", v)
	}
}

package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// TortureOptions configures one engine crash round.
type TortureOptions struct {
	Shards         int
	Kind           core.Kind      // default hash
	Policy         persist.Policy // default NVTraverse
	Workers        int            // concurrent sessions (default 4)
	Keys           uint64         // keys drawn from [1, Keys] (default 256)
	PrefillEvery   uint64         // prefill every n-th key (0 = none)
	OpsBeforeCrash uint64         // crash once this many ops completed
	BatchSize      int            // ops per Apply batch; <=1 issues single ops
	EvictProb      float64        // unpersisted-line survival probability
	Seed           int64
	UpdateRatio    int // percent updates, split insert/delete (default 60)
	// Dir runs the round against the durable file backend with SIGKILL
	// semantics: the crashed engine is abandoned outright (unflushed WAL
	// buffers die with it) and a fresh engine reopens the per-shard files
	// for the check. EvictProb is ignored.
	Dir string
}

// Torture runs one whole-engine crash round: concurrent sessions issue
// single and batched operations, the engine crashes mid-traffic (so some
// sessions die inside an unacknowledged batch), recovery runs in parallel
// across shards, and the crashtest checker verifies durable
// linearizability of the union state. Because the key space partitions
// over shards, the union check is exactly the conjunction of the per-shard
// checks; Torture additionally validates each shard structurally and
// verifies that no key surfaced on a shard it does not hash to.
func Torture(o TortureOptions) crashtest.Result {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.UpdateRatio == 0 {
		o.UpdateRatio = 60
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	cfg := Config{
		Shards:      o.Shards,
		Kind:        o.Kind,
		Policy:      o.Policy,
		Tracked:     true,
		MaxSessions: o.Workers + 2,
		Params:      core.Params{SizeHint: int(o.Keys)},
		Dir:         o.Dir,
	}
	eng, err := New(cfg)
	if err != nil {
		return crashtest.Result{Violations: []crashtest.Violation{{Detail: err.Error()}}}
	}
	if _, err := eng.RecoverFiles(); err != nil {
		return crashtest.Result{Violations: []crashtest.Violation{{Detail: err.Error()}}}
	}

	setup := eng.NewSession()
	prefilled := map[uint64]uint64{}
	if o.PrefillEvery > 0 {
		for k := uint64(1); k <= o.Keys; k += o.PrefillEvery {
			v := k * 3
			setup.Insert(k, v)
			prefilled[k] = v
		}
	}
	eng.PersistAll()

	var completed atomic.Uint64
	histories := make([]*crashtest.History, o.Workers)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		sess := eng.NewSession()
		hist := &crashtest.History{}
		histories[w] = hist
		wg.Add(1)
		go func(sess *Session, hist *crashtest.History) {
			defer wg.Done()
			ops := make([]Op, 0, o.BatchSize)
			var results []OpResult
			for !eng.ShardMemory(0).Crashed() {
				n := 1
				if o.BatchSize > 1 {
					n = o.BatchSize
				}
				ops = ops[:0]
				for j := 0; j < n; j++ {
					k := sess.Rand()%o.Keys + 1
					r := int(sess.Rand() % 100)
					kind := OpGet
					switch {
					case r < o.UpdateRatio/2:
						kind = OpInsert
					case r < o.UpdateRatio:
						kind = OpDelete
					}
					ops = append(ops, Op{Kind: kind, Key: k, Value: sess.Rand() & ((1 << 32) - 1)})
				}
				crashed := pmem.RunOp(func() {
					results = sess.Apply(ops, results)
				})
				if crashed {
					// Nothing in this batch was acknowledged: every
					// operation is in flight — each may have taken effect
					// (its shard group's fence may have run) or not.
					for _, op := range ops {
						hist.InFlight(opKindFor(op.Kind), op.Key, op.Value)
					}
					return
				}
				for i, op := range ops {
					hist.Completed(opKindFor(op.Kind), op.Key, op.Value, results[i].OK)
				}
				completed.Add(uint64(len(ops)))
			}
		}(sess, hist)
	}

	for completed.Load() < o.OpsBeforeCrash {
		runtime.Gosched()
	}
	eng.Crash()
	wg.Wait()
	if o.Dir == "" {
		eng.FinishCrash(o.EvictProb, o.Seed)
		eng.Restart()
	} else {
		// SIGKILL semantics: abandon the crashed engine (no FinishCrash —
		// its unflushed userspace buffers are gone) and reopen the
		// per-shard files with a fresh engine.
		eng2, err := New(cfg)
		if err != nil {
			return crashtest.Result{Violations: []crashtest.Violation{{Detail: err.Error()}}}
		}
		if _, err := eng2.RecoverFiles(); err != nil {
			return crashtest.Result{Violations: []crashtest.Violation{{Detail: err.Error()}}}
		}
		eng = eng2
	}

	rec := eng.NewSession()
	eng.Recover(rec)

	res := crashtest.Result{Completed: completed.Load()}
	var violations []crashtest.Violation
	violations, res.Survivors = crashtest.Check(
		engineView{sess: rec}, nil, histories, crashtest.CheckConfig{Prefilled: prefilled})
	res.Violations = violations
	for _, h := range histories {
		res.InFlight += h.InFlightCount()
	}

	// Shard isolation: every surviving key must live on the shard it
	// hashes to (Contents of shard i only).
	for i := 0; i < eng.NumShards(); i++ {
		for _, k := range eng.ShardSet(i).Contents(rec.Thread(i)) {
			if eng.ShardFor(k) != i {
				res.Violations = append(res.Violations, crashtest.Violation{
					Key:    k,
					Detail: fmt.Sprintf("recovered on shard %d but hashes to shard %d", i, eng.ShardFor(k)),
				})
			}
		}
	}
	return res
}

func opKindFor(k OpKind) crashtest.OpKind {
	switch k {
	case OpInsert:
		return crashtest.OpInsert
	case OpDelete:
		return crashtest.OpDelete
	default:
		return crashtest.OpFind
	}
}

// engineView adapts a recovered engine session to the crashtest.Set
// surface. The thread argument of each method is ignored: the session
// carries the per-shard threads.
type engineView struct{ sess *Session }

func (v engineView) Insert(_ *pmem.Thread, key, value uint64) bool { return v.sess.Insert(key, value) }
func (v engineView) Delete(_ *pmem.Thread, key uint64) bool        { return v.sess.Delete(key) }
func (v engineView) Find(_ *pmem.Thread, key uint64) (uint64, bool) {
	return v.sess.Get(key)
}
func (v engineView) Recover(_ *pmem.Thread)           { v.sess.eng.Recover(v.sess) }
func (v engineView) Contents(_ *pmem.Thread) []uint64 { return v.sess.eng.Contents(v.sess) }

// RangeScan lets the checker cross-validate the merged engine scan against
// the recovered contents (ordered kinds only; hash engines report
// ErrUnordered and the checker skips the comparison).
func (v engineView) RangeScan(_ *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error {
	return v.sess.Scan(lo, hi, fn)
}

// Validate lets the checker run every shard's structural self-check.
func (v engineView) Validate(_ *pmem.Thread) error { return v.sess.eng.Validate(v.sess) }

// Package shard composes the single-structure building blocks of this
// repository into a hash-sharded durable key-value engine: N independent
// (pmem.Memory, core.Set) shards behind one Engine.
//
// Sharding serves two system goals the paper's single-structure
// microbenchmarks do not exercise. First, scale: each shard is its own
// persistence domain with its own arena and epoch domain, so shards share
// no cache lines and no fences — throughput scales with shard count until
// the workload's skew concentrates traffic on few shards. Second,
// batching: a Session executes a batch of operations grouped per shard
// with pmem.Thread.BeginBatch/EndBatch around each shard group, so the
// fence-before-return that durable linearizability demands is paid once
// per shard group rather than once per operation (see
// pmem.Thread.CommitFence for why only that fence may be deferred). The
// batch is acknowledged only after every group's closing fence, so the
// engine remains durably linearizable at batch granularity: a crash
// mid-batch leaves each unacknowledged operation either fully applied or
// fully absent, which internal/shard's torture harness verifies with the
// crashtest checker.
//
// A whole-engine Crash/Recover mirrors a machine failure: every shard's
// memory crashes together, and recovery runs the per-structure recovery
// procedures of all shards in parallel.
package shard

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/pmem/vfs"
)

// Config configures an Engine.
type Config struct {
	// Shards is the shard count (default 1).
	Shards int
	// Kind is the per-shard structure (default core.KindHash).
	Kind core.Kind
	// Policy is the persistence transformation (default persist.NVTraverse).
	Policy persist.Policy
	// Profile is the latency profile for fast-mode engines.
	Profile pmem.Profile
	// Tracked builds tracked memories (crash testing) instead of fast ones.
	Tracked bool
	// MaxSessions bounds NewSession calls (each session registers one
	// thread per shard). Default 64.
	MaxSessions int
	// Params tunes the per-shard structures. Params.SizeHint is the
	// engine-wide expected key-range size; it is divided by the shard count
	// before reaching each structure.
	Params core.Params
	// Dir, when non-empty, backs every shard with the durable file backend:
	// shard i journals into Dir/shard-i (WAL + checkpoint, see
	// internal/pmem). Call RecoverFiles after New and Close on shutdown.
	Dir string
	// SyncFence makes every commit fence fsync its shard's WAL (durability
	// against power loss, not just process death). Only meaningful with Dir.
	SyncFence bool
	// FS overrides the durable backend's file operations (nil = the real
	// filesystem). Shared by every shard: fault-injection schedules see one
	// stream of calls. Only meaningful with Dir.
	FS vfs.FS
}

type engineShard struct {
	mem *pmem.Memory
	set core.Set
}

// Engine is a hash-sharded durable key-value store.
type Engine struct {
	cfg    Config
	shards []engineShard
}

// New builds an engine of cfg.Shards independent shards.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Kind == "" {
		cfg.Kind = core.KindHash
	}
	if cfg.Policy == nil {
		cfg.Policy = persist.NVTraverse{}
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	params := cfg.Params
	if params.SizeHint > 0 {
		params.SizeHint /= cfg.Shards
		if params.SizeHint < 64 {
			params.SizeHint = 64
		}
	}
	if params.Buckets > 0 {
		params.Buckets /= cfg.Shards
		if params.Buckets < 64 {
			params.Buckets = 64
		}
	}
	e := &Engine{cfg: cfg, shards: make([]engineShard, cfg.Shards)}
	mode := pmem.ModeFast
	if cfg.Tracked {
		mode = pmem.ModeTracked
	}
	for i := range e.shards {
		dir := ""
		if cfg.Dir != "" {
			dir = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d", i))
		}
		mem := pmem.New(pmem.Config{
			Mode:    mode,
			Profile: cfg.Profile,
			// +2: the structure constructor registers a thread of its own,
			// and leave one spare for ad-hoc inspection.
			MaxThreads: cfg.MaxSessions + 2,
			Dir:        dir,
			SyncFence:  cfg.SyncFence,
			FS:         cfg.FS,
		})
		set, err := core.NewSet(cfg.Kind, mem, cfg.Policy, params)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e.shards[i] = engineShard{mem: mem, set: set}
	}
	return e, nil
}

// Durable reports whether the engine is file-backed (Config.Dir was set).
func (e *Engine) Durable() bool { return e.cfg.Dir != "" }

// DurableErr reports the first shard's sticky durable-backend damage, or
// nil if every shard is healthy. A non-nil result is permanent for the
// life of the process: the engine must stop acknowledging writes (see
// pmem.Memory.DurableErr).
func (e *Engine) DurableErr() error {
	for i := range e.shards {
		if err := e.shards[i].mem.DurableErr(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// RecoverFiles loads every shard's checkpoint and replays its WAL, in
// parallel (the per-shard files are independent). It must run after New
// and before any session touches a file-backed engine; on a non-durable
// engine it is a no-op. The returned stats aggregate all shards
// (ReplayStats.Elapsed keeps the slowest shard — replay is parallel, so
// the wall-clock cost is the maximum, not the sum).
func (e *Engine) RecoverFiles() (pmem.ReplayStats, error) {
	if !e.Durable() {
		return pmem.ReplayStats{}, nil
	}
	stats := make([]pmem.ReplayStats, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i := range e.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = e.shards[i].mem.RecoverFiles()
		}(i)
	}
	wg.Wait()
	var total pmem.ReplayStats
	for i := range e.shards {
		if errs[i] != nil {
			return total, fmt.Errorf("shard %d: %w", i, errs[i])
		}
		total.Add(stats[i])
	}
	return total, nil
}

// Boot reports shard 0's durable boot counter (0 on a non-durable
// engine). Every shard's boot advances in lockstep — RecoverFiles bumps
// them all on the same open — so shard 0 stands for the engine: one
// value uniquely naming this process lifetime of the data directory,
// which replication uses as the primary's run identity.
func (e *Engine) Boot() uint64 {
	if len(e.shards) == 0 || !e.Durable() {
		return 0
	}
	boot, _ := e.shards[0].mem.Watermark()
	return boot
}

// ReplayStats re-reports the aggregate of the last RecoverFiles.
func (e *Engine) ReplayStats() pmem.ReplayStats {
	var total pmem.ReplayStats
	for i := range e.shards {
		total.Add(e.shards[i].mem.ReplayStats())
	}
	return total
}

// Checkpoint snapshots every shard and truncates its WAL (see
// pmem.Memory.Checkpoint). Shards checkpoint in parallel; the first error
// wins, but every shard is attempted — a failed checkpoint leaves that
// shard on its old generation, still recoverable.
func (e *Engine) Checkpoint() error {
	if !e.Durable() {
		return nil
	}
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i := range e.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.shards[i].mem.Checkpoint()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes and closes every shard's files. The engine must be
// quiescent. Safe on non-durable engines and safe to call twice.
func (e *Engine) Close() error {
	var first error
	for i := range e.shards {
		if err := e.shards[i].mem.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// NumShards reports the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Kind reports the per-shard structure kind.
func (e *Engine) Kind() core.Kind { return e.cfg.Kind }

// ShardMemory returns shard i's memory (tests, per-shard inspection).
func (e *Engine) ShardMemory(i int) *pmem.Memory { return e.shards[i].mem }

// ShardSet returns shard i's structure (tests, per-shard inspection).
func (e *Engine) ShardSet(i int) core.Set { return e.shards[i].set }

// mix is the splitmix64 finalizer: full-avalanche, so consecutive keys
// spread across shards.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// ShardFor maps a key to its shard (deterministic across restarts).
func (e *Engine) ShardFor(key uint64) int {
	if len(e.shards) == 1 {
		return 0
	}
	// fastrange on the mixed high word: uniform without division.
	return int((mix(key) >> 32) * uint64(len(e.shards)) >> 32)
}

// Stats aggregates the per-shard memory statistics.
type Stats struct {
	Total    pmem.Stats
	PerShard []pmem.Stats
}

// Stats sums every shard's per-thread counters.
func (e *Engine) Stats() Stats {
	s := Stats{PerShard: make([]pmem.Stats, len(e.shards))}
	for i := range e.shards {
		st := e.shards[i].mem.Stats()
		s.PerShard[i] = st
		s.Total.Add(st)
	}
	return s
}

// ResetStats clears every shard's counters. Call it only while no
// session is mid-operation (see pmem.Memory.ResetStats).
func (e *Engine) ResetStats() {
	for i := range e.shards {
		e.shards[i].mem.ResetStats()
	}
}

// PersistAll declares every shard's current contents fully persistent
// (tracked engines; the pre-history baseline of a crash test).
func (e *Engine) PersistAll() {
	for i := range e.shards {
		e.shards[i].mem.PersistAll()
	}
}

// Crash raises the crash flag on every shard: a whole-machine power
// failure. Workers must be joined before FinishCrash.
func (e *Engine) Crash() {
	for i := range e.shards {
		e.shards[i].mem.Crash()
	}
}

// FinishCrash rolls every shard back to its persisted state, with
// per-shard derived seeds for the eviction lottery.
func (e *Engine) FinishCrash(evictProb float64, seed int64) {
	for i := range e.shards {
		e.shards[i].mem.FinishCrash(evictProb, seed+int64(i)*1000003)
	}
}

// Restart lowers every shard's crash flag.
func (e *Engine) Restart() {
	for i := range e.shards {
		e.shards[i].mem.Restart()
	}
}

// Recover runs every shard's recovery procedure in parallel, using the
// session's per-shard threads. Run it after Restart, before any other
// operation; the session must not be used concurrently.
func (e *Engine) Recover(s *Session) {
	var wg sync.WaitGroup
	for i := range e.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.shards[i].set.Recover(s.th[i])
		}(i)
	}
	wg.Wait()
}

// Contents returns every present key across all shards (quiescent use).
func (e *Engine) Contents(s *Session) []uint64 {
	var out []uint64
	for i := range e.shards {
		out = append(out, e.shards[i].set.Contents(s.th[i])...)
	}
	return out
}

// Validate runs every shard's structural self-check.
func (e *Engine) Validate(s *Session) error {
	for i := range e.shards {
		if v, ok := e.shards[i].set.(core.Validator); ok {
			if err := v.Validate(s.th[i]); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return nil
}

// OpKind names a Session operation.
type OpKind uint8

// The engine's operation vocabulary. OpPut is an atomic upsert; OpInsert
// and OpDelete keep the underlying structures' set semantics (fail if
// present/absent), which is what the crash-test checker models. OpUpdate
// is the atomic read-modify-write (Op.Fn, or "set to Op.Value if present"
// when Fn is nil); OpScan counts the keys of [Op.Key, Op.Hi] across all
// shards.
const (
	OpGet OpKind = iota
	OpPut
	OpInsert
	OpDelete
	OpUpdate
	OpScan
)

// Op is one operation of a batch.
type Op struct {
	Kind       OpKind
	Key, Value uint64
	// Hi is OpScan's inclusive upper bound ([Key, Hi]).
	Hi uint64
	// Fn is OpUpdate's transform over the present value. A nil Fn makes
	// OpUpdate a conditional overwrite: set to Value if the key is present.
	Fn func(old uint64) uint64
}

// OpResult is the outcome of one batch operation: the value for gets, and
// whether the operation succeeded (found / inserted / deleted).
type OpResult struct {
	Value uint64
	OK    bool
}

// Session is a per-goroutine handle on the engine, carrying one
// pmem.Thread per shard. A Session must be used by one goroutine at a
// time.
type Session struct {
	eng      *Engine
	th       []*pmem.Thread
	groups   [][]int    // scratch: batch op indexes grouped per shard
	scanIdxs []int      // scratch: batch op indexes holding scans
	bufs     [][]kvPair // scratch: per-shard scan collection buffers
	heads    []int      // scratch: per-shard merge cursors
}

// kvPair is one collected scan result during a merged engine scan.
type kvPair struct {
	key, value uint64
}

// NewSession registers a session (one thread on every shard's memory).
func (e *Engine) NewSession() *Session {
	s := &Session{
		eng:    e,
		th:     make([]*pmem.Thread, len(e.shards)),
		groups: make([][]int, len(e.shards)),
	}
	for i := range e.shards {
		s.th[i] = e.shards[i].mem.NewThread()
	}
	return s
}

// Thread returns the session's thread on shard i.
func (s *Session) Thread(i int) *pmem.Thread { return s.th[i] }

// Rand returns a value from the session's per-goroutine RNG.
func (s *Session) Rand() uint64 { return s.th[0].Rand() }

// Get looks up a key.
func (s *Session) Get(key uint64) (uint64, bool) {
	i := s.eng.ShardFor(key)
	return s.eng.shards[i].set.Find(s.th[i], key)
}

// Insert adds key with value; false if the key is already present.
func (s *Session) Insert(key, value uint64) bool {
	i := s.eng.ShardFor(key)
	return s.eng.shards[i].set.Insert(s.th[i], key, value)
}

// Delete removes a key; false if absent.
func (s *Session) Delete(key uint64) bool {
	i := s.eng.ShardFor(key)
	return s.eng.shards[i].set.Delete(s.th[i], key)
}

// Put upserts atomically (core.Upsert): afterwards the key maps to value.
func (s *Session) Put(key, value uint64) {
	i := s.eng.ShardFor(key)
	core.Upsert(s.eng.shards[i].set, s.th[i], key, value)
}

// Update atomically read-modify-writes key's value on its shard; see
// core.Set.Update for the contract.
func (s *Session) Update(key uint64, fn func(old uint64) uint64) (uint64, bool) {
	i := s.eng.ShardFor(key)
	return s.eng.shards[i].set.Update(s.th[i], key, fn)
}

// GetOrInsert atomically returns the present value of key or inserts value.
func (s *Session) GetOrInsert(key, value uint64) (v uint64, inserted bool) {
	i := s.eng.ShardFor(key)
	return s.eng.shards[i].set.GetOrInsert(s.th[i], key, value)
}

// Scan visits every present key in [lo, hi] ascending across all shards,
// calling fn(key, value) until fn returns false or the range is exhausted.
// Keys are hash-partitioned, so each shard's RangeScan yields an ordered
// disjoint stream; the session collects the per-shard streams and k-way
// merges them into one globally ordered sequence. The collection phase
// always scans the full [lo, hi] on every shard (an early fn stop saves the
// merge, not the shard scans) — callers bound hi accordingly. Returns
// core.ErrUnordered when the engine's kind has no key order.
func (s *Session) Scan(lo, hi uint64, fn func(key, value uint64) bool) error {
	e := s.eng
	if len(e.shards) == 1 {
		return e.shards[0].set.RangeScan(s.th[0], lo, hi, fn)
	}
	if s.bufs == nil {
		s.bufs = make([][]kvPair, len(e.shards))
		s.heads = make([]int, len(e.shards))
	}
	for i := range e.shards {
		buf := s.bufs[i][:0]
		err := e.shards[i].set.RangeScan(s.th[i], lo, hi, func(k, v uint64) bool {
			buf = append(buf, kvPair{k, v})
			return true
		})
		s.bufs[i] = buf
		if err != nil {
			return err
		}
		s.heads[i] = 0
	}
	for {
		best := -1
		var bestKey uint64
		for i := range s.bufs {
			if s.heads[i] >= len(s.bufs[i]) {
				continue
			}
			if k := s.bufs[i][s.heads[i]].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return nil
		}
		p := s.bufs[best][s.heads[best]]
		s.heads[best]++
		if !fn(p.key, p.value) {
			return nil
		}
	}
}

func (s *Session) exec(i int, op Op) OpResult {
	set, th := s.eng.shards[i].set, s.th[i]
	switch op.Kind {
	case OpGet:
		v, ok := set.Find(th, op.Key)
		return OpResult{Value: v, OK: ok}
	case OpInsert:
		return OpResult{Value: op.Value, OK: set.Insert(th, op.Key, op.Value)}
	case OpDelete:
		return OpResult{OK: set.Delete(th, op.Key)}
	case OpUpdate:
		nv, ok := core.ApplyUpdate(set, th, op.Key, op.Fn, op.Value)
		return OpResult{Value: nv, OK: ok}
	default: // OpPut
		core.Upsert(set, th, op.Key, op.Value)
		return OpResult{Value: op.Value, OK: true}
	}
}

// Apply executes a batch: keyed operations are grouped by shard and each
// shard group runs inside BeginBatch/EndBatch, so the whole group shares
// one commit fence instead of fencing per operation. OpScan operations
// touch every shard, so they run up front through Session.Scan (their
// OpResult carries the number of keys in [Key, Hi] and OK reports scan
// support). Results are positionally aligned with ops (dst is reused when
// it has capacity). The batch is durable when Apply returns; a crash
// during Apply may leave any subset of the batch's individual operations
// applied.
func (s *Session) Apply(ops []Op, dst []OpResult) []OpResult {
	return s.ApplyCommitted(ops, dst, nil)
}

// ApplyCommitted executes a batch like Apply, additionally invoking
// committed(idxs, err) the moment the results at those batch indexes become
// safe to acknowledge: once per shard group, immediately after the group's
// commit fence lands, and once for the batch's scans (reads need no fence).
// This is the asynchronous submission surface the group-commit batcher
// builds on — a caller multiplexing requests from many clients can release
// each request as its shard group commits instead of holding every reply
// until the whole batch returns. A non-nil err reports that the group's
// commit fence could not be made durable (the shard's backend latched a
// sticky write/fsync failure, see Engine.DurableErr): the results at idxs
// MUST NOT be acknowledged as durable. Scans always pass a nil err. idxs
// aliases internal scratch: it is valid only during the callback. A nil
// committed makes ApplyCommitted exactly Apply.
func (s *Session) ApplyCommitted(ops []Op, dst []OpResult, committed func(idxs []int, err error)) []OpResult {
	if cap(dst) < len(ops) {
		dst = make([]OpResult, len(ops))
	}
	dst = dst[:len(ops)]
	for i := range s.groups {
		s.groups[i] = s.groups[i][:0]
	}
	s.scanIdxs = s.scanIdxs[:0]
	for i := range ops {
		if ops[i].Kind == OpScan {
			var count uint64
			err := s.Scan(ops[i].Key, ops[i].Hi, func(uint64, uint64) bool {
				count++
				return true
			})
			dst[i] = OpResult{Value: count, OK: err == nil}
			s.scanIdxs = append(s.scanIdxs, i)
			continue
		}
		sh := s.eng.ShardFor(ops[i].Key)
		s.groups[sh] = append(s.groups[sh], i)
	}
	if committed != nil && len(s.scanIdxs) > 0 {
		committed(s.scanIdxs, nil)
	}
	for sh := range s.groups {
		g := s.groups[sh]
		if len(g) == 0 {
			continue
		}
		th := s.th[sh]
		th.BeginBatch()
		for _, i := range g {
			dst[i] = s.exec(sh, ops[i])
		}
		th.EndBatch()
		// The group's commit fence lands after its last operation's CountOp,
		// so publish here: acknowledgement time is a stats observation point
		// (the batcher's fence-accounting tests read Stats at batch
		// boundaries).
		th.PublishStats()
		if committed != nil {
			// The fence has landed in process memory either way; whether it
			// also landed on disk is the backend's damage latch — checked
			// here, after EndBatch, so the verdict covers this group's flush.
			committed(g, th.DurableErr())
		}
	}
	return dst
}

// MultiGet batch-reads keys, one commit fence per shard group. The results
// align with keys; dst is reused when it has capacity.
func (s *Session) MultiGet(keys []uint64, dst []OpResult) []OpResult {
	if cap(dst) < len(keys) {
		dst = make([]OpResult, len(keys))
	}
	dst = dst[:len(keys)]
	for i := range s.groups {
		s.groups[i] = s.groups[i][:0]
	}
	for i, k := range keys {
		sh := s.eng.ShardFor(k)
		s.groups[sh] = append(s.groups[sh], i)
	}
	for sh := range s.groups {
		g := s.groups[sh]
		if len(g) == 0 {
			continue
		}
		th := s.th[sh]
		th.BeginBatch()
		for _, i := range g {
			v, ok := s.eng.shards[sh].set.Find(th, keys[i])
			dst[i] = OpResult{Value: v, OK: ok}
		}
		th.EndBatch()
	}
	return dst
}

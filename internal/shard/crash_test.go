package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

// TestTortureDurableAcrossShardCounts is the engine-level durable-
// linearizability test: crash the whole engine mid-traffic (including
// mid-batch), recover all shards in parallel, and check every shard's
// surviving state against the recorded history.
func TestTortureDurableAcrossShardCounts(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for _, shards := range []int{1, 4, 8} {
		for r := 0; r < rounds; r++ {
			res := Torture(TortureOptions{
				Shards:         shards,
				Kind:           core.KindHash,
				Policy:         persist.NVTraverse{},
				Workers:        4,
				Keys:           256,
				PrefillEvery:   2,
				OpsBeforeCrash: 400,
				EvictProb:      0.25,
				Seed:           int64(shards*100 + r),
			})
			if len(res.Violations) > 0 {
				t.Fatalf("shards=%d round=%d: %d violations, first: %s",
					shards, r, len(res.Violations), res.Violations[0])
			}
			if res.Completed < 400 {
				t.Fatalf("shards=%d round=%d: only %d ops completed", shards, r, res.Completed)
			}
		}
	}
}

// TestTortureMidBatch crashes sessions inside Apply batches: a batch's
// commit fences are deferred to each shard group's EndBatch, so a crash
// mid-batch leaves many operations in flight at once — all of which must
// still be individually all-or-nothing.
func TestTortureMidBatch(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for _, kind := range []core.Kind{core.KindHash, core.KindSkiplist, core.KindList} {
		for r := 0; r < rounds; r++ {
			res := Torture(TortureOptions{
				Shards:         4,
				Kind:           kind,
				Policy:         persist.NVTraverse{},
				Workers:        4,
				Keys:           192,
				PrefillEvery:   2,
				OpsBeforeCrash: 300,
				BatchSize:      8,
				EvictProb:      0.25,
				Seed:           int64(9000 + r),
			})
			if len(res.Violations) > 0 {
				t.Fatalf("%s round %d: %d violations, first: %s",
					kind, r, len(res.Violations), res.Violations[0])
			}
		}
	}
}

// TestTortureFileBackend runs the engine torture against the durable file
// backend: the crash abandons the whole engine (SIGKILL semantics — every
// shard's unflushed WAL buffer dies) and a fresh engine reopens the
// per-shard files for the check, exercising parallel per-shard replay
// under concurrent batched traffic.
func TestTortureFileBackend(t *testing.T) {
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for _, kind := range []core.Kind{core.KindHash, core.KindSkiplist} {
		for r := 0; r < rounds; r++ {
			res := Torture(TortureOptions{
				Shards:         4,
				Kind:           kind,
				Policy:         persist.NVTraverse{},
				Workers:        4,
				Keys:           256,
				PrefillEvery:   2,
				OpsBeforeCrash: 300,
				BatchSize:      8,
				Seed:           int64(4200 + r),
				Dir:            t.TempDir(),
			})
			if len(res.Violations) > 0 {
				t.Fatalf("%s round %d: %d violations, first: %s",
					kind, r, len(res.Violations), res.Violations[0])
			}
			if res.Completed < 300 {
				t.Fatalf("%s round %d: only %d ops completed", kind, r, res.Completed)
			}
		}
	}
}

// TestTortureCatchesNonDurablePolicy proves the engine-level checker has
// teeth: with the persistence-free policy and no eviction luck, completed
// operations are rolled back wholesale and the checker must notice.
func TestTortureCatchesNonDurablePolicy(t *testing.T) {
	res := Torture(TortureOptions{
		Shards:         4,
		Kind:           core.KindHash,
		Policy:         persist.None{},
		Workers:        4,
		Keys:           256,
		PrefillEvery:   0, // nothing prefilled: survivors can only come from ops
		OpsBeforeCrash: 600,
		EvictProb:      0,
		Seed:           5,
	})
	if len(res.Violations) == 0 {
		t.Fatal("policy=none survived an engine crash test: checker is blind")
	}
}

// TestTortureAllPolicies: every durable policy must pass engine torture.
func TestTortureAllPolicies(t *testing.T) {
	for _, pol := range []persist.Policy{persist.NVTraverse{}, persist.Izraelevitz{}, persist.LinkAndPersist{}} {
		res := Torture(TortureOptions{
			Shards:         4,
			Kind:           core.KindHash,
			Policy:         pol,
			Workers:        4,
			Keys:           256,
			PrefillEvery:   2,
			OpsBeforeCrash: 300,
			BatchSize:      4,
			EvictProb:      0.25,
			Seed:           77,
		})
		if len(res.Violations) > 0 {
			t.Fatalf("%s: %d violations, first: %s", pol.Name(), len(res.Violations), res.Violations[0])
		}
	}
}

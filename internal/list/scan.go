package list

import (
	"repro/internal/kv"
	"repro/internal/pmem"
)

// Update atomically read-modify-writes the value of key in place: it loads
// the current value, applies fn, and installs the result with a CAS on the
// node's value word, retrying until the CAS lands on an unchanged value.
// Returns the installed value and true, or (0, false) if key is absent.
//
// Linearization: the value CAS is the linearization point. The pre-CAS mark
// check makes a successful CAS on a node that a concurrent Delete is
// removing legal — the two operations overlap, so the update may be ordered
// before the deletion. Persistence follows Protocol 2: the traversal
// destination is persisted by PostTraverse, the new value is flushed by
// WroteData, and the commit fence precedes the return.
func (l *List) Update(t *pmem.Thread, key uint64, fn func(old uint64) uint64) (uint64, bool) {
	checkKey(key)
	l.sh.Dom.Enter(t.ID)
	defer l.sh.Dom.Exit(t.ID)
	pol := l.sh.Pol
	tr := l.acquireTraversal(t)
	for {
		l.traverse(t, l.head, key, tr)
		pol.PostTraverse(t, tr.cells)
		if tr.right == 0 || t.Load(&l.node(tr.right).Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return 0, false
		}
		rightN := l.node(tr.right)
		for {
			nx := t.Load(&rightN.Next)
			pol.Read(t, &rightN.Next)
			if pmem.Marked(nx) {
				break // logically deleted under us: retraverse and re-decide
			}
			old := t.Load(&rightN.Value)
			pol.ReadData(t, &rightN.Value)
			newv := fn(old)
			pol.BeforeCAS(t)
			if t.CAS(&rightN.Value, old, newv) {
				pol.WroteData(t, &rightN.Value)
				pol.BeforeReturn(t)
				t.CountOp()
				return newv, true
			}
			// Lost a value race with another updater: reload and retry.
		}
		pol.BeforeReturn(t)
	}
}

// RangeScan visits every present key in [lo, hi] in ascending order,
// calling fn(key, value) until fn returns false or the range is exhausted.
//
// The scan extends the traversal phase: it positions on lo with the usual
// traverse, then keeps walking — reading links with TraverseRead, which
// persists nothing under NVTraverse — and treats the entire visited range
// as the returned node set, so a single PostTraverse at the end persists
// every link the answer depends on (ensureReachable + makePersistent, one
// fence), followed by the commit fence. The scan never writes: marked nodes
// are skipped, not trimmed.
//
// Consistency: each key's presence is decided at the moment its link is
// read (the scan is not an atomic snapshot); keys untouched by concurrent
// mutators are reported exactly. fn must not call operations of this
// structure on the same thread.
func (l *List) RangeScan(t *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error {
	lo, hi, ok := kv.ClampKeyRange(lo, hi)
	if !ok {
		return nil
	}
	l.sh.Dom.Enter(t.ID)
	defer l.sh.Dom.Exit(t.ID)
	pol := l.sh.Pol
	tr := l.acquireTraversal(t)
	l.traverse(t, l.head, lo, tr)
	// tr.cells already covers the entry region (parent link, left, marked,
	// right); the walk below appends every further link it reads.
	cur := tr.right
	for cur != 0 {
		n := l.node(cur)
		k := t.Load(&n.Key)
		if k > hi {
			break
		}
		nx := t.Load(&n.Next)
		pol.TraverseRead(t, &n.Next)
		tr.cells = append(tr.cells, &n.Next)
		if !pmem.Marked(nx) {
			v := t.Load(&n.Value)
			pol.ReadData(t, &n.Value)
			if !fn(k, v) {
				break
			}
		}
		cur = pmem.RefIndex(nx)
	}
	pol.PostTraverse(t, tr.cells)
	pol.BeforeReturn(t)
	t.CountOp()
	return nil
}

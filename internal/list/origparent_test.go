package list

import (
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func TestOriginalParentModeSemantics(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 8})
	l := NewWithOriginalParent(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 200; k++ {
		if !l.Insert(th, k, k*3) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= 200; k += 3 {
		if !l.Delete(th, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k <= 200; k++ {
		v, ok := l.Find(th, k)
		want := k%3 != 1
		if ok != want || (ok && v != k*3) {
			t.Fatalf("Find(%d) = %d,%v want present=%v", k, v, ok, want)
		}
	}
	if err := l.Validate(th); err != nil {
		t.Fatal(err)
	}
}

// TestOriginalParentEnsureReachable replays the ensureReachable ablation
// scenario (see ablation_test.go) against the Supplement 2 mechanism: B's
// insert lands under a node whose incoming link is unpersisted, and the
// OrigParent field must route the flush to that link.
func TestOriginalParentEnsureReachable(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 8})
	l := NewWithOriginalParent(mem, persist.NVTraverse{})
	setup := mem.NewThread()
	l.Insert(setup, 10, 10)
	l.Insert(setup, 30, 30)
	mem.PersistAll()

	// Thread A: insert(20) executed through its link CAS (with OrigParent
	// recorded and persisted, as its critical method requires) but crashed
	// before flushing the link itself.
	a := mem.NewThread()
	tr := l.acquireTraversal(a)
	l.traverse(a, l.head, 20, tr)
	idx := l.sh.Ar.Alloc(a.ID)
	n := l.node(idx)
	a.Store(&n.Key, 20)
	a.Store(&n.Value, 20)
	a.Store(&n.Next, pmem.Dirty(pmem.MakeRef(tr.right)))
	a.Store(&n.OrigParent, pmem.MakeRef(tr.left))
	a.Flush(&n.Key)
	a.Flush(&n.Value)
	a.Flush(&n.Next)
	a.Flush(&n.OrigParent)
	a.Fence()
	if !a.CAS(&l.node(tr.left).Next, tr.leftNext, pmem.Dirty(pmem.MakeRef(idx))) {
		t.Fatalf("staging CAS failed")
	}

	// Thread B: complete insert(25); its traversal's left node is 20.
	b := mem.NewThread()
	if !l.Insert(b, 25, 25) {
		t.Fatalf("B's insert failed")
	}
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	rec := mem.NewThread()
	l.Recover(rec)
	if _, ok := l.Find(rec, 25); !ok {
		t.Fatalf("originalParent ensureReachable lost a completed insert")
	}
}

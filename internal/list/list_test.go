package list

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/persist"
	"repro/internal/pmem"
)

func newList(pol persist.Policy) (*List, *pmem.Thread) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	l := New(mem, pol)
	return l, mem.NewThread()
}

func policies() []persist.Policy { return persist.All() }

func TestInsertFindDelete(t *testing.T) {
	for _, pol := range policies() {
		t.Run(pol.Name(), func(t *testing.T) {
			l, th := newList(pol)
			if _, ok := l.Find(th, 5); ok {
				t.Fatalf("empty list finds 5")
			}
			if !l.Insert(th, 5, 50) {
				t.Fatalf("insert 5 failed")
			}
			if l.Insert(th, 5, 51) {
				t.Fatalf("duplicate insert succeeded")
			}
			if v, ok := l.Find(th, 5); !ok || v != 50 {
				t.Fatalf("Find(5) = %d,%v", v, ok)
			}
			if !l.Delete(th, 5) {
				t.Fatalf("delete 5 failed")
			}
			if l.Delete(th, 5) {
				t.Fatalf("double delete succeeded")
			}
			if _, ok := l.Find(th, 5); ok {
				t.Fatalf("deleted key found")
			}
		})
	}
}

func TestSortedOrder(t *testing.T) {
	l, th := newList(persist.NVTraverse{})
	keys := []uint64{9, 3, 7, 1, 5, 8, 2, 6, 4}
	for _, k := range keys {
		if !l.Insert(th, k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	got := l.Contents(th)
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("contents = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("contents[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if err := l.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	for _, pol := range policies() {
		t.Run(pol.Name(), func(t *testing.T) {
			l, th := newList(pol)
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(200)) + 1
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64()
					_, exp := oracle[k]
					if got := l.Insert(th, k, v); got == exp {
						t.Fatalf("op %d: Insert(%d) = %v, oracle has=%v", i, k, got, exp)
					}
					if !exp {
						oracle[k] = v
					}
				case 1:
					_, exp := oracle[k]
					if got := l.Delete(th, k); got != exp {
						t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, exp)
					}
					delete(oracle, k)
				default:
					ev, exp := oracle[k]
					gv, got := l.Find(th, k)
					if got != exp || (got && gv != ev) {
						t.Fatalf("op %d: Find(%d) = %d,%v want %d,%v", i, k, gv, got, ev, exp)
					}
				}
			}
			if err := l.Validate(th); err != nil {
				t.Fatal(err)
			}
			if got := l.Contents(th); len(got) != len(oracle) {
				t.Fatalf("size %d, oracle %d", len(got), len(oracle))
			}
		})
	}
}

func TestQuickMatchesMapSemantics(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		l, th := newList(persist.NVTraverse{})
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key%97) + 1
			switch o.Kind % 3 {
			case 0:
				if l.Insert(th, k, k) == oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if l.Delete(th, k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if _, ok := l.Find(th, k); ok != oracle[k] {
					return false
				}
			}
		}
		return l.Validate(th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRangePanics(t *testing.T) {
	l, th := newList(persist.None{})
	for _, bad := range []uint64{0, 1 << 61, 1<<61 + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("key %d accepted", bad)
				}
			}()
			l.Insert(th, bad, 0)
		}()
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, pol := range policies() {
		t.Run(pol.Name(), func(t *testing.T) {
			mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
			l := New(mem, pol)
			const (
				threads = 8
				ops     = 4000
				keys    = 128
			)
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				th := mem.NewThread()
				wg.Add(1)
				go func(th *pmem.Thread) {
					defer wg.Done()
					for j := 0; j < ops; j++ {
						k := th.Rand()%keys + 1
						switch th.Rand() % 3 {
						case 0:
							l.Insert(th, k, k)
						case 1:
							l.Delete(th, k)
						default:
							l.Find(th, k)
						}
					}
				}(th)
			}
			wg.Wait()
			th := mem.NewThread()
			if err := l.Validate(th); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentDisjointKeys: each thread owns a key range, so every op's
// result is predictable even under concurrency.
func TestConcurrentDisjointKeys(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 16})
	l := New(mem, persist.NVTraverse{})
	const threads = 6
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for i := 0; i < threads; i++ {
		th := mem.NewThread()
		base := uint64(i*1000 + 1)
		wg.Add(1)
		go func(th *pmem.Thread, base uint64) {
			defer wg.Done()
			for k := base; k < base+200; k++ {
				if !l.Insert(th, k, k) {
					errs <- errf("insert %d failed", k)
					return
				}
			}
			for k := base; k < base+200; k += 2 {
				if !l.Delete(th, k) {
					errs <- errf("delete %d failed", k)
					return
				}
			}
			for k := base; k < base+200; k++ {
				_, ok := l.Find(th, k)
				if want := (k-base)%2 == 1; ok != want {
					errs <- errf("find %d = %v, want %v", k, ok, want)
					return
				}
			}
		}(th, base)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	th := mem.NewThread()
	if got, want := len(l.Contents(th)), threads*100; got != want {
		t.Fatalf("final size %d, want %d", got, want)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func TestMemoryReclamation(t *testing.T) {
	// Insert/delete churn over a tiny key space must not grow the arena
	// unboundedly: retired nodes must come back.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for i := 0; i < 20000; i++ {
		k := uint64(i%8) + 1
		l.Insert(th, k, k)
		l.Delete(th, k)
	}
	if hw := l.Shared().Ar.HighWater(); hw > 4096 {
		t.Fatalf("arena grew to %d handles over an 8-key churn", hw)
	}
}

// --- persistence placement ---

func TestNVTraverseFlushCountsConstantPerFind(t *testing.T) {
	// The headline claim: a lookup flushes O(1) cells no matter how long
	// the traversal is.
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 2000; k++ {
		l.Insert(th, k, k)
	}
	mem.ResetStats()
	before := mem.Stats()
	l.Find(th, 2000) // traverses 2000 nodes
	d := mem.Stats().Sub(before)
	if d.Flushes > 4 {
		t.Fatalf("NVTraverse find flushed %d cells, want <= 4", d.Flushes)
	}
	if d.Fences > 2 {
		t.Fatalf("NVTraverse find fenced %d times, want <= 2", d.Fences)
	}
}

func TestIzraelevitzFlushCountsLinearPerFind(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.Izraelevitz{})
	th := mem.NewThread()
	for k := uint64(1); k <= 500; k++ {
		l.Insert(th, k, k)
	}
	mem.ResetStats()
	before := mem.Stats()
	l.Find(th, 500)
	d := mem.Stats().Sub(before)
	if d.Flushes < 400 {
		t.Fatalf("Izraelevitz find flushed only %d cells over a 500-node traversal", d.Flushes)
	}
}

func TestNonePolicyNeverFlushes(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.None{})
	th := mem.NewThread()
	mem.ResetStats()
	for k := uint64(1); k <= 100; k++ {
		l.Insert(th, k, k)
		l.Find(th, k)
		l.Delete(th, k)
	}
	s := mem.Stats()
	if s.Flushes != 0 || s.Fences != 0 {
		t.Fatalf("None policy persisted: %+v", s)
	}
}

func TestLinkAndPersistSavesRepeatFlushes(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeFast, Profile: pmem.ProfileZero, MaxThreads: 4})
	l := New(mem, persist.LinkAndPersist{})
	th := mem.NewThread()
	for k := uint64(1); k <= 100; k++ {
		l.Insert(th, k, k)
	}
	// First lookup flushes and tags; repeats hit the tag.
	l.Find(th, 100)
	before := mem.Stats()
	for i := 0; i < 10; i++ {
		l.Find(th, 100)
	}
	d := mem.Stats().Sub(before)
	if d.Flushes != 0 {
		t.Fatalf("repeat lookups still flushed %d times", d.Flushes)
	}
}

// --- recovery ---

func TestRecoverTrimsMarkedNodes(t *testing.T) {
	mem := pmem.NewTracked()
	l := New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	for k := uint64(1); k <= 20; k++ {
		l.Insert(th, k, k)
	}
	// Mark a few nodes by hand: simulate deletes whose physical phase was
	// lost in a crash.
	for _, k := range []uint64{3, 7, 11} {
		idx := findHandle(t, l, th, k)
		n := l.node(idx)
		nx := th.Load(&n.Next)
		if !th.CAS(&n.Next, nx, pmem.WithMark(nx)) {
			t.Fatalf("marking %d failed", k)
		}
	}
	if l.CountMarked(th) != 3 {
		t.Fatalf("marked = %d", l.CountMarked(th))
	}
	l.Recover(th)
	if l.CountMarked(th) != 0 {
		t.Fatalf("marked nodes survive recovery: %d", l.CountMarked(th))
	}
	got := l.Contents(th)
	if len(got) != 17 {
		t.Fatalf("size after recovery = %d, want 17", len(got))
	}
	for _, k := range got {
		if k == 3 || k == 7 || k == 11 {
			t.Fatalf("marked key %d survives recovery", k)
		}
	}
}

func findHandle(t *testing.T, l *List, th *pmem.Thread, key uint64) uint64 {
	t.Helper()
	cur := pmem.RefIndex(th.Load(&l.node(l.head).Next))
	for cur != 0 {
		if th.Load(&l.node(cur).Key) == key {
			return cur
		}
		cur = pmem.RefIndex(th.Load(&l.node(cur).Next))
	}
	t.Fatalf("key %d not reachable", key)
	return 0
}

func TestLiveHandles(t *testing.T) {
	l, th := newList(persist.NVTraverse{})
	for k := uint64(1); k <= 5; k++ {
		l.Insert(th, k, k)
	}
	live := map[uint64]bool{}
	l.LiveHandles(th, live)
	if len(live) != 6 { // 5 keys + head sentinel
		t.Fatalf("live = %d, want 6", len(live))
	}
}

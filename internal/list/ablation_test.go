package list

// Ablation tests: §4.3 of the paper argues the prescribed flushes and
// fences are necessary — "removing any of them could violate the
// correctness of some NVTraverse data structure". These tests construct
// the violating schedules deterministically: each stages a concurrent
// operation stopped at its vulnerable point, runs a complete operation
// under either the full NVTraverse policy or an ablated variant, crashes,
// and shows that the full policy survives while the ablated one loses a
// completed operation's effect.

import (
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem"
)

// dropEnsureReachable is NVTraverse without Protocol 1's ensureReachable:
// PostTraverse flushes the fields read in the returned nodes but not the
// parent link of the topmost returned node (cells[0] by construction).
type dropEnsureReachable struct{ persist.NVTraverse }

func (dropEnsureReachable) Name() string { return "nvtraverse-minus-ensurereachable" }

func (dropEnsureReachable) PostTraverse(t *pmem.Thread, cells []*pmem.Cell) {
	for _, c := range cells[1:] {
		t.Flush(c)
	}
	t.Fence()
}

// dropMakePersistent is NVTraverse without Protocol 1 entirely: nothing is
// persisted between traverse and critical.
type dropMakePersistent struct{ persist.NVTraverse }

func (dropMakePersistent) Name() string { return "nvtraverse-minus-posttraverse" }

func (dropMakePersistent) PostTraverse(t *pmem.Thread, cells []*pmem.Cell) {}

// stageUnpersistedInsert hand-executes an insert of key k1 up to and
// including its link CAS but *stops before its flush and fence*, exactly
// like a thread suspended mid-critical-method: node k1 is reachable in
// volatile memory but the link that reaches it is not persistent.
func stageUnpersistedInsert(t *testing.T, l *List, th *pmem.Thread, k1 uint64) {
	t.Helper()
	tr := l.acquireTraversal(th)
	l.traverse(th, l.head, k1, tr)
	if len(tr.marked) != 0 {
		t.Fatalf("staging: unexpected marked nodes")
	}
	idx := l.sh.Ar.Alloc(th.ID)
	n := l.node(idx)
	th.Store(&n.Key, k1)
	th.Store(&n.Value, k1)
	th.Store(&n.Next, pmem.Dirty(pmem.MakeRef(tr.right)))
	// The in-flight inserter did flush its node fields and fence before
	// the CAS (that part of its critical method already ran)...
	th.Flush(&n.Key)
	th.Flush(&n.Value)
	th.Flush(&n.Next)
	th.Fence()
	if !th.CAS(&l.node(tr.left).Next, tr.leftNext, pmem.Dirty(pmem.MakeRef(idx))) {
		t.Fatalf("staging: link CAS failed")
	}
	// ...but crashed before flushing the link CAS: left.Next -> k1 is
	// volatile only.
}

// runEnsureReachableScenario returns whether key k2 survived the crash.
//
// Schedule: keys {10, 30} persisted; thread A's insert(20) is in flight,
// stopped right after its link CAS (10 -> 20 volatile only); thread B then
// runs a complete Insert(25) under the given policy. B's traversal stops
// at left=20: B's link CAS writes into node 20, whose own reachability
// hinges on A's unpersisted link. ensureReachable makes B flush the
// parent link (10.Next) before B's critical method; without it, B returns
// "inserted" while 25 hangs off an unreachable node.
func runEnsureReachableScenario(t *testing.T, pol persist.Policy) bool {
	t.Helper()
	mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 8})
	l := New(mem, pol)
	setup := mem.NewThread()
	l.Insert(setup, 10, 10)
	l.Insert(setup, 30, 30)
	mem.PersistAll()

	a := mem.NewThread()
	stageUnpersistedInsert(t, l, a, 20)

	b := mem.NewThread()
	if !l.Insert(b, 25, 25) {
		t.Fatalf("B's insert failed")
	}
	// B's insert COMPLETED. Crash now.
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	rec := mem.NewThread()
	l.Recover(rec)
	if err := l.Validate(rec); err != nil {
		t.Fatalf("structure invalid after crash: %v", err)
	}
	_, ok := l.Find(rec, 25)
	return ok
}

func TestEnsureReachableIsNecessary(t *testing.T) {
	if !runEnsureReachableScenario(t, persist.NVTraverse{}) {
		t.Fatalf("full NVTraverse lost a completed insert")
	}
	if runEnsureReachableScenario(t, dropEnsureReachable{}) {
		t.Fatalf("ablated policy unexpectedly survived: the scenario no longer demonstrates necessity")
	}
}

// runMakePersistentScenario returns whether the crash-surviving state is
// consistent with B's completed Find.
//
// Schedule: key 20 persisted; thread A's delete(20) is in flight, stopped
// right after its (unflushed) mark CAS; thread B then runs a complete
// Find(20) under the given policy and observes "absent" (it saw the mark).
// B's answer depends on A's unpersisted mark: makePersistent makes B flush
// the marked link before returning. Without it, the crash rolls the mark
// back and 20 is present again — contradicting B's completed operation.
func runMakePersistentScenario(t *testing.T, pol persist.Policy) bool {
	t.Helper()
	mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 8})
	l := New(mem, pol)
	setup := mem.NewThread()
	l.Insert(setup, 10, 10)
	l.Insert(setup, 20, 20)
	l.Insert(setup, 30, 30)
	mem.PersistAll()

	// Thread A: logical delete of 20 (mark CAS), no flush, no fence.
	a := mem.NewThread()
	idx := findHandle(t, l, a, 20)
	n := l.node(idx)
	nx := a.Load(&n.Next)
	if !a.CAS(&n.Next, nx, pmem.WithMark(nx)) {
		t.Fatalf("staging: mark CAS failed")
	}

	// Thread B: a complete Find(20) must answer "absent".
	b := mem.NewThread()
	if _, ok := l.Find(b, 20); ok {
		t.Fatalf("B did not observe the mark")
	}
	mem.Crash()
	mem.FinishCrash(0, 1)
	mem.Restart()
	rec := mem.NewThread()
	l.Recover(rec)
	_, present := l.Find(rec, 20)
	// Consistent iff 20 stayed deleted (B's completed answer holds).
	return !present
}

func TestMakePersistentIsNecessary(t *testing.T) {
	if !runMakePersistentScenario(t, persist.NVTraverse{}) {
		t.Fatalf("full NVTraverse: a completed find's observation was lost")
	}
	if runMakePersistentScenario(t, dropMakePersistent{}) {
		t.Fatalf("ablated policy unexpectedly survived: the scenario no longer demonstrates necessity")
	}
}

// dropCriticalFlushes is NVTraverse without Protocol 2's flush-after-CAS:
// updates reach volatile memory and are fenced, but nothing was flushed,
// so the fences have nothing to persist.
type dropCriticalFlushes struct{ persist.NVTraverse }

func (dropCriticalFlushes) Name() string                           { return "nvtraverse-minus-wrote" }
func (dropCriticalFlushes) Wrote(t *pmem.Thread, c *pmem.Cell)     {}
func (dropCriticalFlushes) InitWrite(t *pmem.Thread, c *pmem.Cell) {}

func TestCriticalFlushesAreNecessary(t *testing.T) {
	run := func(pol persist.Policy) bool {
		mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 4})
		l := New(mem, pol)
		th := mem.NewThread()
		mem.PersistAll()
		if !l.Insert(th, 7, 7) { // a completed insert
			t.Fatalf("insert failed")
		}
		mem.Crash()
		mem.FinishCrash(0, 1)
		mem.Restart()
		rec := mem.NewThread()
		l.Recover(rec)
		_, ok := l.Find(rec, 7)
		return ok
	}
	if !run(persist.NVTraverse{}) {
		t.Fatalf("full NVTraverse lost a completed insert")
	}
	if run(dropCriticalFlushes{}) {
		t.Fatalf("ablated policy unexpectedly survived")
	}
}

// dropFences is NVTraverse without any fence: flushes are issued but never
// forced to persistent memory, so in the simulated clwb/sfence semantics
// nothing ever persists.
type dropFences struct{ persist.NVTraverse }

func (dropFences) Name() string { return "nvtraverse-minus-fences" }

func (dropFences) PostTraverse(t *pmem.Thread, cells []*pmem.Cell) {
	for _, c := range cells {
		t.Flush(c)
	}
}
func (dropFences) BeforeCAS(t *pmem.Thread)    {}
func (dropFences) BeforeReturn(t *pmem.Thread) {}

func TestFencesAreNecessary(t *testing.T) {
	run := func(pol persist.Policy) bool {
		mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 4})
		l := New(mem, pol)
		th := mem.NewThread()
		mem.PersistAll()
		if !l.Insert(th, 7, 7) {
			t.Fatalf("insert failed")
		}
		mem.Crash()
		mem.FinishCrash(0, 1)
		mem.Restart()
		rec := mem.NewThread()
		l.Recover(rec)
		_, ok := l.Find(rec, 7)
		return ok
	}
	if !run(persist.NVTraverse{}) {
		t.Fatalf("full NVTraverse lost a completed insert")
	}
	if run(dropFences{}) {
		t.Fatalf("ablated policy unexpectedly survived")
	}
}

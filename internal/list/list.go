// Package list implements Harris's lock-free sorted linked list (DISC'01)
// in the traversal form of the NVTraverse paper (its running example,
// Algorithms 3 and 4), parameterized by a persistence policy.
//
// The structure is a sorted list of nodes with an immutable key, a mutable
// value and a next link whose low bit is the deletion mark. Operations are
// findEntry (return the head), traverse (find left/right plus the marked
// nodes between them, reading only), and critical (trim marked nodes, then
// insert / mark-and-unlink / decide membership). ensureReachable uses the
// paper's optimization (§4.1): insert links a single node, so the traversal
// returns the current parent of the left node and its next field is flushed
// instead of maintaining an originalParent field in every node.
//
// Keys must lie in [1, 2^61): key 0 is reserved for the head sentinel and
// the tag bits of arena handles bound the index space.
package list

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Node is one list node. Key is immutable after initialization; Value is
// mutable user data; Next holds a pmem.Ref with the mark bit as the logical
// deletion mark (Definition 1 of the paper: once the mark is set, no field
// of the node changes again). OrigParent implements Supplement 2: the
// handle of the node whose Next pointer linked this node into the list,
// recorded before the link CAS (lists always link through a Next field, so
// a node handle identifies the pointer's location). It is only maintained
// when the list runs in original-parent mode.
// Node is padded to one full 64-byte line (pmem allocators hand out whole
// lines; PMDK's minimum allocation is a line): the persistence model is
// line-granular, so without the padding two nodes would share a line and a
// flush of one would — unrealistically — persist the other's links, hiding
// protocol bugs the crash tests exist to catch.
type Node struct {
	Key        pmem.Cell
	Value      pmem.Cell
	Next       pmem.Cell
	OrigParent pmem.Cell
	_          [32]byte
}

// Shared bundles the substrate a list (or a hash table of lists) lives on.
type Shared struct {
	Mem *pmem.Memory
	Dom *epoch.Domain
	Ar  *arena.Arena[Node]
	Pol persist.Policy

	// trs holds one reusable traversal record per thread (indexed by
	// pmem.Thread.ID) so the operation hot path allocates nothing.
	trs []paddedTraversal
}

type paddedTraversal struct {
	tr traversal
	_  [64]byte
}

// NewShared builds the substrate on a memory with the given policy.
func NewShared(mem *pmem.Memory, pol persist.Policy) *Shared {
	dom := epoch.New(mem.MaxThreads())
	sh := &Shared{
		Mem: mem,
		Dom: dom,
		Ar:  arena.New[Node](dom, mem.MaxThreads()),
		Pol: pol,
		trs: make([]paddedTraversal, mem.MaxThreads()),
	}
	// All persistent state (head sentinels included) lives in arena nodes,
	// so registering the arena is all the durable backend needs.
	sh.Ar.Persist(mem.NewSpace())
	return sh
}

// List is one sorted list: a head sentinel handle plus the shared substrate.
// In original-parent mode (Supplement 2) ensureReachable flushes the link
// recorded in the destination node's OrigParent field; otherwise it uses
// the paper's §4.1 optimization and flushes the current parent's link
// returned by the traversal. Both are durably linearizable; the paper
// notes the field costs a word per node and may delay reclamation.
type List struct {
	sh         *Shared
	head       uint64
	origParent bool
}

// New creates a list with its own substrate, using the §4.1
// ensureReachable optimization (no originalParent field maintenance).
func New(mem *pmem.Memory, pol persist.Policy) *List {
	return NewOn(NewShared(mem, pol), mem.NewThread())
}

// NewWithOriginalParent creates a list that maintains Supplement 2's
// originalParent field and uses it for ensureReachable.
func NewWithOriginalParent(mem *pmem.Memory, pol persist.Policy) *List {
	l := NewOn(NewShared(mem, pol), mem.NewThread())
	l.origParent = true
	return l
}

// NewOn creates a list on an existing substrate (hash table buckets). The
// head sentinel is allocated and persisted with t.
func NewOn(sh *Shared, t *pmem.Thread) *List {
	h := sh.Ar.Alloc(t.ID)
	n := sh.Ar.Get(h)
	t.Store(&n.Key, 0)
	t.Store(&n.Value, 0)
	t.Store(&n.Next, pmem.NilRef)
	t.Store(&n.OrigParent, pmem.NilRef)
	t.Flush(&n.Key)
	t.Flush(&n.Value)
	t.Flush(&n.Next)
	t.Fence()
	return &List{sh: sh, head: h}
}

// Shared exposes the substrate (tests, recovery, hash table).
func (l *List) Shared() *Shared { return l.sh }

// Head returns the head sentinel handle.
func (l *List) Head() uint64 { return l.head }

func (l *List) node(idx uint64) *Node { return l.sh.Ar.Get(idx) }

// traversal is the result of the traverse method: the current parent of the
// left node (ensureReachable optimization), the suffix of the path from the
// left node through any marked nodes to the right node, and the raw link
// values needed as CAS expectations by the critical method.
type traversal struct {
	parent    uint64 // current parent of left (may equal head)
	left      uint64
	right     uint64 // 0 means "past the end" (+infinity)
	leftNext  uint64 // raw value of left.Next as read
	rightNext uint64 // raw value of right.Next as read (right != 0)
	// marked[i] are the handles strictly between left and right, in order.
	marked []uint64
	// cells collects, for Protocol 1, the parent link plus every mutable
	// field the traversal read in the returned nodes.
	cells []*pmem.Cell
}

// traverse implements the traverse method (Algorithm 4 lines 8–36): walk
// from entry, tracking the last unmarked node (left) and collecting marked
// nodes, until the first unmarked node with key >= k (right). It reads
// shared memory but never modifies it.
func (l *List) traverse(t *pmem.Thread, entry uint64, k uint64, tr *traversal) {
	pol := l.sh.Pol
	for {
		tr.marked = tr.marked[:0]
		leftParent := entry
		left := entry
		pred := entry
		curr := entry
		currN := l.node(curr)
		succ := t.Load(&currN.Next)
		pol.TraverseRead(t, &currN.Next)
		leftNext := succ
		for pmem.Marked(succ) || t.Load(&currN.Key) < k {
			if !pmem.Marked(succ) {
				tr.marked = tr.marked[:0]
				leftParent = pred
				left = curr
				leftNext = succ
			} else {
				tr.marked = append(tr.marked, curr)
			}
			pred = curr
			curr = pmem.RefIndex(succ)
			if curr == 0 {
				break
			}
			currN = l.node(curr)
			succ = t.Load(&currN.Next)
			pol.TraverseRead(t, &currN.Next)
		}
		right := curr
		var rightNext uint64
		if right != 0 {
			rightNext = t.Load(&l.node(right).Next)
			pol.TraverseRead(t, &l.node(right).Next)
			if pmem.Marked(rightNext) {
				continue // right got marked: restart the traversal
			}
		}
		tr.parent, tr.left, tr.right = leftParent, left, right
		tr.leftNext, tr.rightNext = leftNext, rightNext
		// Protocol 1 cell set: ensureReachable flushes the parent link
		// of the topmost returned node — the location recorded in its
		// OrigParent field (Supplement 2) or, under the §4.1
		// optimization, the current parent's link; makePersistent
		// flushes every field the traversal read in the returned nodes
		// (the next links; keys are immutable and need no flush).
		tr.cells = tr.cells[:0]
		reach := &l.node(leftParent).Next
		if l.origParent && left != l.head {
			// OrigParent is immutable after the node is linked, so
			// reading it needs no flush.
			if op := pmem.RefIndex(t.Load(&l.node(left).OrigParent)); op != 0 {
				reach = &l.node(op).Next
			}
		}
		tr.cells = append(tr.cells, reach)
		tr.cells = append(tr.cells, &l.node(left).Next)
		for _, m := range tr.marked {
			tr.cells = append(tr.cells, &l.node(m).Next)
		}
		if right != 0 {
			tr.cells = append(tr.cells, &l.node(right).Next)
		}
		return
	}
}

// trimMarked is deleteMarkedNodes (Algorithm 4 lines 40–57): physically
// disconnect the marked nodes between left and right with one CAS. Returns
// false when the critical method must restart. A fence is issued before
// returning, so callers need not fence again immediately after.
func (l *List) trimMarked(t *pmem.Thread, tr *traversal) bool {
	pol := l.sh.Pol
	if len(tr.marked) == 0 {
		pol.BeforeReturn(t)
		return true
	}
	leftN := l.node(tr.left)
	newNext := pmem.Dirty(pmem.MakeRef(tr.right))
	pol.BeforeCAS(t)
	ok := t.CAS(&leftN.Next, tr.leftNext, newNext)
	pol.Wrote(t, &leftN.Next)
	if !ok {
		pol.BeforeReturn(t)
		return false
	}
	tr.leftNext = newNext
	rightStillClean := true
	if tr.right != 0 {
		rn := t.Load(&l.node(tr.right).Next)
		pol.Read(t, &l.node(tr.right).Next)
		rightStillClean = !pmem.Marked(rn)
	}
	pol.BeforeReturn(t)
	// The disconnection is now persisted (the fence above); the trimmed
	// nodes may enter the limbo queue regardless of whether the critical
	// method must restart because right got marked.
	for _, m := range tr.marked {
		l.sh.Ar.Retire(t.ID, m)
	}
	tr.marked = tr.marked[:0]
	return rightStillClean
}

// Insert adds key with value, returning false if the key is already
// present. It is the operation layout of Algorithm 2: findEntry, traverse,
// ensureReachable+makePersistent, critical.
func (l *List) Insert(t *pmem.Thread, key, value uint64) bool {
	_, inserted := l.insertGet(t, key, value, false)
	return inserted
}

// GetOrInsert atomically returns the present value of key (inserted=false)
// or inserts value and returns it (inserted=true). It is Insert's critical
// section with the found branch reading the value instead of discarding it.
func (l *List) GetOrInsert(t *pmem.Thread, key, value uint64) (v uint64, inserted bool) {
	return l.insertGet(t, key, value, true)
}

// insertGet is the shared critical section of Insert and GetOrInsert.
// wantValue selects whether the found branch loads (and persists reading)
// the present value; Insert skips the load so its flush profile is
// unchanged.
func (l *List) insertGet(t *pmem.Thread, key, value uint64, wantValue bool) (uint64, bool) {
	checkKey(key)
	l.sh.Dom.Enter(t.ID)
	defer l.sh.Dom.Exit(t.ID)
	pol := l.sh.Pol
	tr := l.acquireTraversal(t)
	for {
		l.traverse(t, l.head, key, tr)
		pol.PostTraverse(t, tr.cells)
		// critical (Algorithm 3, insertCritical):
		if !l.trimMarked(t, tr) {
			continue
		}
		if tr.right != 0 && t.Load(&l.node(tr.right).Key) == key {
			var v uint64
			if wantValue {
				rightN := l.node(tr.right)
				v = t.Load(&rightN.Value)
				pol.ReadData(t, &rightN.Value)
			}
			pol.BeforeReturn(t)
			t.CountOp()
			return v, false
		}
		idx := l.sh.Ar.Alloc(t.ID)
		n := l.node(idx)
		t.Store(&n.Key, key)
		t.Store(&n.Value, value)
		t.Store(&n.Next, pmem.Dirty(pmem.MakeRef(tr.right)))
		pol.InitWrite(t, &n.Key)
		pol.InitWrite(t, &n.Value)
		pol.InitWrite(t, &n.Next)
		if l.origParent {
			// Supplement 2: record the location of the pointer that
			// will link this node, before it is linked.
			t.Store(&n.OrigParent, pmem.MakeRef(tr.left))
			pol.InitWrite(t, &n.OrigParent)
		}
		leftN := l.node(tr.left)
		pol.BeforeCAS(t)
		ok := t.CAS(&leftN.Next, tr.leftNext, pmem.Dirty(pmem.MakeRef(idx)))
		pol.Wrote(t, &leftN.Next)
		pol.BeforeReturn(t)
		if ok {
			t.CountOp()
			return value, true
		}
		l.sh.Ar.Free(t.ID, idx) // never published
	}
}

// Delete removes key, returning false if it is absent. Logical deletion
// marks the node's next link; physical deletion swings the left node's
// link past it (Algorithm 3, deleteCritical).
func (l *List) Delete(t *pmem.Thread, key uint64) bool {
	checkKey(key)
	l.sh.Dom.Enter(t.ID)
	defer l.sh.Dom.Exit(t.ID)
	pol := l.sh.Pol
	tr := l.acquireTraversal(t)
	for {
		l.traverse(t, l.head, key, tr)
		pol.PostTraverse(t, tr.cells)
		if !l.trimMarked(t, tr) {
			continue
		}
		if tr.right == 0 || t.Load(&l.node(tr.right).Key) != key {
			pol.BeforeReturn(t)
			t.CountOp()
			return false
		}
		rightN := l.node(tr.right)
		rNext := t.Load(&rightN.Next)
		pol.Read(t, &rightN.Next)
		if !pmem.Marked(rNext) {
			pol.BeforeCAS(t)
			ok := t.CAS(&rightN.Next, rNext, pmem.WithMark(pmem.Dirty(rNext)))
			pol.Wrote(t, &rightN.Next)
			pol.BeforeCAS(t)
			if ok {
				// Logical deletion took effect and is persisted
				// (the fence above). Physical deletion is best
				// effort; a failure leaves the node for the next
				// traversal to trim.
				leftN := l.node(tr.left)
				phys := t.CAS(&leftN.Next, tr.leftNext, pmem.ClearTags(rNext))
				pol.Wrote(t, &leftN.Next)
				pol.BeforeReturn(t)
				if phys {
					l.sh.Ar.Retire(t.ID, tr.right)
				}
				t.CountOp()
				return true
			}
		}
		pol.BeforeReturn(t)
	}
}

// Find reports whether key is present and returns its value (Algorithm 4,
// findCritical). Even a lookup must persist the traversal destination
// before returning: its answer may depend on an insert or delete that is
// not yet persistent.
func (l *List) Find(t *pmem.Thread, key uint64) (uint64, bool) {
	checkKey(key)
	l.sh.Dom.Enter(t.ID)
	defer l.sh.Dom.Exit(t.ID)
	pol := l.sh.Pol
	tr := l.acquireTraversal(t)
	l.traverse(t, l.head, key, tr)
	pol.PostTraverse(t, tr.cells)
	if tr.right == 0 || t.Load(&l.node(tr.right).Key) != key {
		pol.BeforeReturn(t)
		t.CountOp()
		return 0, false
	}
	v := t.Load(&l.node(tr.right).Value)
	pol.ReadData(t, &l.node(tr.right).Value)
	pol.BeforeReturn(t)
	t.CountOp()
	return v, true
}

func checkKey(key uint64) {
	if key == 0 || key >= 1<<61 {
		panic(fmt.Sprintf("list: key %d out of range [1, 2^61)", key))
	}
}

// acquireTraversal returns the thread's reusable traversal record.
func (l *List) acquireTraversal(t *pmem.Thread) *traversal {
	return &l.sh.trs[t.ID].tr
}

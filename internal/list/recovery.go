package list

import (
	"fmt"

	"repro/internal/pmem"
)

// Recover implements the paper's recovery phase (§4): execute the
// disconnect(root) function of Supplement 1, physically removing every
// marked node, persisting each disconnection. It must run after
// Memory.FinishCrash + Restart and before any other operation; it may run
// single-threaded (the paper also allows running it concurrently with new
// operations, which Recover supports by using CAS).
func (l *List) Recover(t *pmem.Thread) {
	l.sh.Dom.Enter(t.ID)
	defer l.sh.Dom.Exit(t.ID)
	l.disconnectFrom(t, l.head)
}

// disconnectFrom trims all marked nodes reachable from head. Exported to
// the hash table, which runs it per bucket.
func (l *List) disconnectFrom(t *pmem.Thread, head uint64) {
	prev := head
	for {
		prevN := l.node(prev)
		pn := t.Load(&prevN.Next)
		cur := pmem.RefIndex(pn)
		if cur == 0 {
			return
		}
		curN := l.node(cur)
		cn := t.Load(&curN.Next)
		if !pmem.Marked(cn) {
			prev = cur
			continue
		}
		// cur is marked: splice it out and persist the splice. prev is
		// unmarked (we only advance past unmarked nodes), so this is the
		// unique disconnection instruction of Property 5.
		if t.CAS(&prevN.Next, pn, pmem.ClearTags(cn)) {
			t.Flush(&prevN.Next)
			t.Fence()
		}
		// Re-examine prev's next either way (more marked nodes may
		// follow, or a concurrent recovery thread moved first).
	}
}

// Contents returns the unmarked keys in list order. Quiescent use only
// (tests and checkers).
func (l *List) Contents(t *pmem.Thread) []uint64 {
	var out []uint64
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next))
	for cur != 0 {
		n := l.node(cur)
		nx := t.Load(&n.Next)
		if !pmem.Marked(nx) {
			out = append(out, t.Load(&n.Key))
		}
		cur = pmem.RefIndex(nx)
	}
	return out
}

// LiveHandles adds every handle reachable from the head (marked or not,
// plus the head itself) to live; used by the post-crash arena sweep.
func (l *List) LiveHandles(t *pmem.Thread, live map[uint64]bool) {
	cur := l.head
	for cur != 0 {
		live[cur] = true
		cur = pmem.RefIndex(t.Load(&l.node(cur).Next))
	}
}

// Validate checks structural invariants: strictly sorted unmarked keys and
// termination (no cycles within 2*highwater steps). Quiescent use only.
func (l *List) Validate(t *pmem.Thread) error {
	limit := 2 * l.sh.Ar.HighWater()
	var steps uint64
	var last uint64 // head key is 0; user keys start at 1
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next))
	for cur != 0 {
		if steps++; steps > limit {
			return fmt.Errorf("list: cycle suspected after %d steps", steps)
		}
		n := l.node(cur)
		nx := t.Load(&n.Next)
		k := t.Load(&n.Key)
		if !pmem.Marked(nx) {
			if k <= last {
				return fmt.Errorf("list: keys out of order: %d after %d", k, last)
			}
			last = k
		}
		cur = pmem.RefIndex(nx)
	}
	return nil
}

// CountMarked returns how many reachable nodes are marked (0 after a
// successful recovery). Quiescent use only.
func (l *List) CountMarked(t *pmem.Thread) int {
	n := 0
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next))
	for cur != 0 {
		nx := t.Load(&l.node(cur).Next)
		if pmem.Marked(nx) {
			n++
		}
		cur = pmem.RefIndex(nx)
	}
	return n
}

// DebugMark sets the deletion mark on key's node without physically
// deleting it, simulating a delete whose physical phase was lost in a
// crash. Test hook; quiescent use only. Returns false if key is absent.
func (l *List) DebugMark(t *pmem.Thread, key uint64) bool {
	cur := pmem.RefIndex(t.Load(&l.node(l.head).Next))
	for cur != 0 {
		n := l.node(cur)
		nx := t.Load(&n.Next)
		if t.Load(&n.Key) == key && !pmem.Marked(nx) {
			return t.CAS(&n.Next, nx, pmem.WithMark(nx))
		}
		cur = pmem.RefIndex(nx)
	}
	return false
}

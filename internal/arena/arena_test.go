package arena

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
)

type testNode struct {
	a, b uint64
}

func newArena(threads int) (*Arena[testNode], *epoch.Domain) {
	d := epoch.New(threads)
	return New[testNode](d, threads), d
}

func TestAllocDistinctHandles(t *testing.T) {
	a, _ := newArena(1)
	seen := map[uint64]bool{}
	for i := 0; i < 3*ChunkSize; i++ { // cross chunk boundaries
		idx := a.Alloc(0)
		if idx == 0 {
			t.Fatalf("Alloc returned the nil handle")
		}
		if seen[idx] {
			t.Fatalf("handle %d allocated twice", idx)
		}
		seen[idx] = true
	}
}

func TestGetStable(t *testing.T) {
	a, _ := newArena(1)
	idx := a.Alloc(0)
	n := a.Get(idx)
	n.a = 7
	// Allocating more (growing chunks) must not move existing nodes.
	for i := 0; i < 2*ChunkSize; i++ {
		a.Alloc(0)
	}
	if a.Get(idx) != n || n.a != 7 {
		t.Fatalf("node moved or lost its value")
	}
}

func TestFreeReuses(t *testing.T) {
	a, _ := newArena(1)
	idx := a.Alloc(0)
	a.Free(0, idx)
	if got := a.Alloc(0); got != idx {
		t.Fatalf("freed handle not reused: got %d want %d", got, idx)
	}
}

func TestRetireRespectsGracePeriod(t *testing.T) {
	a, d := newArena(2)
	idx := a.Alloc(0)
	d.Enter(1) // a reader pins the current epoch
	a.Retire(0, idx)
	// Drain the allocator's own free list, then force collection attempts:
	// the retired handle must not come back while thread 1 is pinned.
	for i := 0; i < 4*collectInterval; i++ {
		other := a.Alloc(0)
		if other == idx {
			t.Fatalf("retired handle reused during reader's critical section")
		}
		dummy := a.Alloc(0)
		_ = dummy
		a.Retire(0, dummy)
		_ = other
	}
	d.Exit(1)
	for i := 0; i < 3; i++ {
		d.TryAdvance()
	}
	a.collect(0)
	_, free, _ := a.Stats()
	if free == 0 {
		t.Fatalf("nothing reclaimed after quiescence")
	}
}

func TestStats(t *testing.T) {
	a, d := newArena(1)
	i1 := a.Alloc(0)
	i2 := a.Alloc(0)
	a.Free(0, i1)
	a.Retire(0, i2)
	alloc, free, limbo := a.Stats()
	if alloc != 2 || free != 1 || limbo != 1 {
		t.Fatalf("Stats = %d %d %d", alloc, free, limbo)
	}
	_ = d
}

func TestRebuildFreeLists(t *testing.T) {
	a, _ := newArena(2)
	var handles []uint64
	for i := 0; i < 10; i++ {
		handles = append(handles, a.Alloc(i%2))
	}
	live := map[uint64]bool{handles[0]: true, handles[3]: true, handles[7]: true}
	a.RebuildFreeLists(live)
	_, free, limbo := a.Stats()
	if limbo != 0 {
		t.Fatalf("limbo survives rebuild: %d", limbo)
	}
	if free != 7 {
		t.Fatalf("free after rebuild = %d, want 7", free)
	}
	// Everything reallocated must be a dead handle.
	for i := 0; i < 7; i++ {
		idx := a.Alloc(0)
		if live[idx] {
			t.Fatalf("live handle %d re-allocated", idx)
		}
	}
}

func TestConcurrentAllocRetire(t *testing.T) {
	const threads = 4
	a, d := newArena(threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var held []uint64
			for i := 0; i < 5000; i++ {
				d.Enter(tid)
				idx := a.Alloc(tid)
				n := a.Get(idx)
				n.a = uint64(tid)
				n.b = uint64(i)
				held = append(held, idx)
				if len(held) > 8 {
					a.Retire(tid, held[0])
					held = held[1:]
				}
				d.Exit(tid)
			}
		}(tid)
	}
	wg.Wait()
	alloc, _, _ := a.Stats()
	if alloc == 0 {
		t.Fatalf("nothing allocated")
	}
}

// Property: alternating alloc/free of arbitrary batch sizes never yields the
// nil handle or a double allocation among simultaneously-held handles.
func TestQuickAllocFree(t *testing.T) {
	f := func(batches []uint8) bool {
		a, _ := newArena(1)
		held := map[uint64]bool{}
		var order []uint64
		for _, b := range batches {
			n := int(b%17) + 1
			for i := 0; i < n; i++ {
				idx := a.Alloc(0)
				if idx == 0 || held[idx] {
					return false
				}
				held[idx] = true
				order = append(order, idx)
			}
			for i := 0; i < n/2 && len(order) > 0; i++ {
				idx := order[len(order)-1]
				order = order[:len(order)-1]
				delete(held, idx)
				a.Free(0, idx)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package arena provides chunked, handle-addressed node pools for simulated
// persistent memory, with per-thread free lists and epoch-stamped
// retirement. Handles (arena indices) are what pmem.Ref values carry;
// persistent-memory practice addresses pool offsets rather than raw
// pointers, and handles additionally give data structures tag bits that
// Go's GC would forbid on real pointers.
//
// Allocation is thread-local: each thread pops its own free list and falls
// back to bumping the shared high-water mark. Retired nodes join the
// retiring thread's limbo queue stamped with the current epoch and are
// recycled once the epoch domain has advanced twice (see package epoch).
//
// After a simulated crash the limbo/free metadata is considered lost (it
// lived in DRAM in the paper's setting too); RebuildFreeLists performs the
// mark–sweep that a recovery procedure would run to reclaim unreachable
// slots.
//
// Allocation is line-aware: the persistence model (package pmem) is
// cache-line granular, so where nodes land relative to 64-byte lines is
// semantically visible — two nodes sharing a line would persist and vanish
// together in a crash, and a flush of one would write back the other.
// Chunks of pointer-free node types (every node type in this repository)
// are therefore carved 64-byte aligned, and node types whose size is a
// multiple of 64 (see each structure's padding) get the PMDK-style
// guarantee that no two nodes ever share a line. LineAligned reports
// whether an arena provides it.
package arena

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/epoch"
	"repro/internal/pmem"
)

const (
	chunkBits = 13
	// ChunkSize is the number of nodes per chunk.
	ChunkSize = 1 << chunkBits
	chunkMask = ChunkSize - 1
	maxChunks = 1 << 18 // 2^31 nodes per arena: plenty for every benchmark
)

// collectInterval is how many retirements a thread performs between limbo
// collection attempts.
const collectInterval = 32

type retired struct {
	epoch uint64
	idx   uint64
}

type threadState struct {
	free  []uint64
	limbo []retired // epoch-ordered (appends use the non-decreasing epoch)
	nret  uint64
	_     [24]byte
}

// Arena is a chunked pool of T nodes. Index 0 is reserved (the nil handle).
type Arena[T any] struct {
	dom      *epoch.Domain
	chunks   []atomic.Pointer[[ChunkSize]T]
	next     atomic.Uint64
	grow     sync.Mutex
	ts       []threadState
	nodeSize uintptr
	carve    bool // pointer-free T: chunks carved 64-byte aligned

	// space, when non-nil, is the durable-backend registration namespace:
	// each chunk registers as region (space, chunkIndex) so its fenced line
	// snapshots reach the write-ahead log. regd (guarded by grow) tracks
	// which chunks are registered. Nil on non-durable memories — Persist
	// leaves it nil, so the allocation path carries no overhead.
	space *pmem.Space
	regd  map[uint64]bool
}

// New creates an arena attached to an epoch domain, with per-thread state
// for maxThreads threads (thread IDs must match the pmem.Thread IDs).
func New[T any](dom *epoch.Domain, maxThreads int) *Arena[T] {
	a := &Arena[T]{
		dom:      dom,
		chunks:   make([]atomic.Pointer[[ChunkSize]T], maxChunks),
		ts:       make([]threadState, maxThreads),
		nodeSize: unsafe.Sizeof(*new(T)),
	}
	a.carve = !typeHasPointers(reflect.TypeOf(*new(T)))
	a.next.Store(1) // index 0 is the nil handle
	return a
}

// NodeBytes reports the size of one node in bytes.
func (a *Arena[T]) NodeBytes() uintptr { return a.nodeSize }

// LineAligned reports whether the arena guarantees that no two nodes share
// a 64-byte line: chunks are carved line-aligned (pointer-free T) and the
// node size is a whole number of lines. Structures whose crash-atomicity
// arguments are per-node rely on this and assert it in their tests.
func (a *Arena[T]) LineAligned() bool {
	return a.carve && a.nodeSize > 0 && a.nodeSize%pmem.LineSize == 0
}

// newChunk allocates one chunk. For pointer-free node types the chunk is
// carved 64-byte aligned out of a byte slab, so node addresses — and with
// them pmem's line keys — are deterministic relative to the chunk base.
// (The returned pointer is an interior pointer; it keeps the slab alive.
// Carving is only legal for pointer-free types: a byte slab has no pointer
// map for the GC to scan.)
func (a *Arena[T]) newChunk() *[ChunkSize]T {
	if !a.carve || a.nodeSize == 0 {
		return new([ChunkSize]T)
	}
	raw := make([]byte, ChunkSize*int(a.nodeSize)+pmem.LineSize-1)
	p := unsafe.Pointer(unsafe.SliceData(raw))
	if r := uintptr(p) % pmem.LineSize; r != 0 {
		p = unsafe.Add(p, pmem.LineSize-r)
	}
	return (*[ChunkSize]T)(p)
}

// typeHasPointers reports whether values of t contain any GC-visible
// pointers.
func typeHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
		reflect.Int64, reflect.Uint, reflect.Uint8, reflect.Uint16,
		reflect.Uint32, reflect.Uint64, reflect.Uintptr, reflect.Float32,
		reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && typeHasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// Domain returns the epoch domain the arena reclaims against.
func (a *Arena[T]) Domain() *epoch.Domain { return a.dom }

// Get returns the node at handle idx. The handle must have been allocated
// and not recycled; Get performs no validation beyond bounds.
func (a *Arena[T]) Get(idx uint64) *T {
	return &a.chunks[idx>>chunkBits].Load()[idx&chunkMask]
}

// Alloc returns a fresh handle for thread tid. The node's contents are
// whatever the previous occupant left (like malloc); callers must initialize
// every field before publishing, exactly as the persistence protocol
// requires anyway.
func (a *Arena[T]) Alloc(tid int) uint64 {
	ts := &a.ts[tid]
	if n := len(ts.free); n > 0 {
		idx := ts.free[n-1]
		ts.free = ts.free[:n-1]
		return idx
	}
	a.collect(tid)
	if n := len(ts.free); n > 0 {
		idx := ts.free[n-1]
		ts.free = ts.free[:n-1]
		return idx
	}
	idx := a.next.Add(1) - 1
	ci := idx >> chunkBits
	if ci >= maxChunks {
		panic(fmt.Sprintf("arena: exhausted (%d nodes)", idx))
	}
	if a.chunks[ci].Load() == nil {
		a.grow.Lock()
		if a.chunks[ci].Load() == nil {
			a.chunks[ci].Store(a.newChunk())
			a.registerChunk(ci)
		}
		a.grow.Unlock()
	}
	return idx
}

// Persist registers the arena's node memory with the durable backend under
// sp: every chunk — existing and future — becomes the on-disk region
// (sp, chunkIndex), and replay re-materializes chunks a previous boot had
// grown to before writing recovered nodes into them. Handle addresses are
// deterministic relative to each chunk base, so a node's replayed line
// snapshots land exactly where the recovered structure's handles point.
//
// Call it once, right after New, during deterministic construction (the
// space numbering depends on construction order). No-op on a memory
// without a file backend. Requires a pointer-free node type (carved,
// line-aligned chunks): registration is meaningless for GC-managed chunks.
func (a *Arena[T]) Persist(sp *pmem.Space) {
	if sp == nil || !sp.Durable() {
		return
	}
	if !a.carve || a.nodeSize == 0 {
		panic("arena: Persist requires a pointer-free node type")
	}
	a.grow.Lock()
	defer a.grow.Unlock()
	if a.space != nil {
		panic("arena: Persist called twice")
	}
	a.space = sp
	a.regd = make(map[uint64]bool)
	for ci := uint64(0); ci < maxChunks; ci++ {
		if a.chunks[ci].Load() == nil {
			continue
		}
		a.registerChunk(ci)
	}
	sp.Provide(func(sub uint32) { a.ensureChunk(uint64(sub)) })
}

// registerChunk registers chunk ci with the durable backend (idempotent).
// Caller holds a.grow. ChunkSize is a multiple of 64, so the chunk's byte
// size is always line-sized regardless of the node type.
func (a *Arena[T]) registerChunk(ci uint64) {
	if a.space == nil || a.regd[ci] {
		return
	}
	a.regd[ci] = true
	p := unsafe.Pointer(a.chunks[ci].Load())
	a.space.Register(uint32(ci), p, ChunkSize*a.nodeSize)
}

// ensureChunk is the replay-time provider: it materializes chunk ci if this
// boot has not grown to it yet, registers it, and advances the high-water
// mark past it so post-recovery allocations can never collide with replayed
// live nodes. The skipped slots are reclaimed by the structure's
// RebuildFreeLists pass after recovery.
func (a *Arena[T]) ensureChunk(ci uint64) {
	if ci >= maxChunks {
		return
	}
	a.grow.Lock()
	if a.chunks[ci].Load() == nil {
		a.chunks[ci].Store(a.newChunk())
	}
	a.registerChunk(ci)
	a.grow.Unlock()
	end := (ci + 1) * ChunkSize
	for {
		cur := a.next.Load()
		if cur >= end || a.next.CompareAndSwap(cur, end) {
			return
		}
	}
}

// Free returns a never-published handle directly to the thread's free list
// (e.g. a node allocated for an insert whose CAS failed). Published nodes
// must use Retire instead.
func (a *Arena[T]) Free(tid int, idx uint64) {
	a.ts[tid].free = append(a.ts[tid].free, idx)
}

// Retire places an unlinked node in the limbo queue. The caller must
// guarantee the node is unreachable from the structure's roots and — for
// durability — that the disconnection has already been flushed and fenced:
// recycling a slot whose unlink could be undone by a crash would corrupt
// the persistent structure.
func (a *Arena[T]) Retire(tid int, idx uint64) {
	ts := &a.ts[tid]
	ts.limbo = append(ts.limbo, retired{epoch: a.dom.Epoch(), idx: idx})
	ts.nret++
	if ts.nret%collectInterval == 0 {
		a.dom.TryAdvance()
		a.collect(tid)
	}
}

// collect moves reclaimable limbo entries to the free list. Limbo is
// epoch-ordered, so only a prefix moves.
func (a *Arena[T]) collect(tid int) {
	ts := &a.ts[tid]
	i := 0
	for i < len(ts.limbo) && a.dom.SafeToReclaim(ts.limbo[i].epoch) {
		ts.free = append(ts.free, ts.limbo[i].idx)
		i++
	}
	if i > 0 {
		ts.limbo = append(ts.limbo[:0], ts.limbo[i:]...)
	}
}

// Stats reports allocator occupancy (test and reporting hook).
func (a *Arena[T]) Stats() (allocated, free, limbo uint64) {
	allocated = a.next.Load() - 1
	for i := range a.ts {
		free += uint64(len(a.ts[i].free))
		limbo += uint64(len(a.ts[i].limbo))
	}
	return
}

// HighWater returns one past the largest handle ever allocated.
func (a *Arena[T]) HighWater() uint64 { return a.next.Load() }

// RebuildFreeLists is the post-crash mark–sweep: given the set of handles
// reachable from the structure's persistent roots, every other allocated
// slot becomes free again. Must run single-threaded (recovery). All limbo
// state is discarded — it was volatile.
func (a *Arena[T]) RebuildFreeLists(live map[uint64]bool) {
	for i := range a.ts {
		a.ts[i].free = a.ts[i].free[:0]
		a.ts[i].limbo = a.ts[i].limbo[:0]
		a.ts[i].nret = 0
	}
	hw := a.next.Load()
	ts := &a.ts[0]
	for idx := uint64(1); idx < hw; idx++ {
		if !live[idx] {
			ts.free = append(ts.free, idx)
		}
	}
}

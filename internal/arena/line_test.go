package arena_test

// Runtime line-layout tests: the persistence model is 64-byte-line
// granular, so arena chunks must be carved line-aligned and padded nodes
// must never share a line at their actual addresses. The static half of
// the contract — every node type handed to an arena fills whole lines —
// is enforced per instantiation site by nvcheck's linelayout rule (`make
// nvlint`), which replaced the hand-maintained size table that used to
// live here.

import (
	"testing"
	"unsafe"

	"repro/internal/arena"
	"repro/internal/epoch"
	"repro/internal/list"
	"repro/internal/pmem"
)

func TestArenaNodesNeverShareALine(t *testing.T) {
	a := arena.New[list.Node](epoch.New(1), 1)
	if !a.LineAligned() {
		t.Fatalf("arena of padded nodes not line-aligned (node %d bytes)", a.NodeBytes())
	}
	seen := map[uintptr]uint64{}
	for i := 0; i < 3*arena.ChunkSize/2; i++ { // spill into a second chunk
		idx := a.Alloc(0)
		n := a.Get(idx)
		addr := uintptr(unsafe.Pointer(n))
		if addr%pmem.LineSize != 0 {
			t.Fatalf("node %d at %#x: not line-aligned", idx, addr)
		}
		line := addr / pmem.LineSize
		if prev, dup := seen[line]; dup {
			t.Fatalf("nodes %d and %d share line %#x", prev, idx, line)
		}
		seen[line] = idx
	}
}

func TestArenaUnpaddedStillLineAlignedBase(t *testing.T) {
	// A pointer-free node that does not fill a line: the arena still carves
	// chunks line-aligned (deterministic line keys), but cannot promise
	// one-node-per-line and must say so.
	type small struct{ k, v uint64 }
	a := arena.New[small](epoch.New(1), 1)
	if a.LineAligned() {
		t.Fatalf("16-byte nodes reported line-aligned")
	}
	idx := a.Alloc(0)
	addr := uintptr(unsafe.Pointer(a.Get(idx)))
	// Handle 1 sits one node past the chunk base; the base itself is
	// aligned.
	if (addr-unsafe.Sizeof(small{}))%pmem.LineSize != 0 {
		t.Fatalf("chunk base not line-aligned (node 1 at %#x)", addr)
	}
}

func TestArenaPointerNodesFallBack(t *testing.T) {
	// Nodes with GC-visible pointers cannot live in a byte-carved chunk;
	// the arena must fall back to a typed allocation and keep working.
	type ptrNode struct{ p *int }
	a := arena.New[ptrNode](epoch.New(1), 1)
	if a.LineAligned() {
		t.Fatalf("pointer-bearing nodes reported line-aligned")
	}
	x := 7
	idx := a.Alloc(0)
	a.Get(idx).p = &x
	if *a.Get(idx).p != 7 {
		t.Fatalf("pointer node broken")
	}
}

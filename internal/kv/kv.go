// Package kv holds the small shared vocabulary of the durable-store
// surface: sentinel errors and key-space constants that both the structure
// packages and their composites (core, shard, store) need. It sits below
// every other package in the repository — structures return these values,
// core re-exports them — so it must not import anything but the standard
// library.
package kv

import "errors"

// ErrUnordered is returned by RangeScan on structures without a key order
// (the hash table): a range query over a hashed key space would have to
// visit every bucket and still could not stream keys in order.
var ErrUnordered = errors.New("kv: structure kind is unordered: range scans are unsupported")

// Key-space bounds shared by every structure: user keys live in
// [MinKey, MaxKey]. Key 0 is reserved for head/root sentinels and keys at
// or above 2^61 collide with the sentinel keys and handle tag bits.
const (
	MinKey uint64 = 1
	MaxKey uint64 = 1<<61 - 1
)

// ClampKeyRange normalizes a [lo, hi] scan request against the key space:
// lo is raised to MinKey, hi lowered to MaxKey. The second return is false
// when the normalized interval is empty (nothing to scan).
func ClampKeyRange(lo, hi uint64) (uint64, uint64, bool) {
	if lo < MinKey {
		lo = MinKey
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	return lo, hi, lo <= hi
}

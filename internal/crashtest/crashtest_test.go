package crashtest

import (
	"testing"

	"repro/internal/ellenbst"
	"repro/internal/hashtable"
	"repro/internal/list"
	"repro/internal/nmbst"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/skiplist"
)

func listFactory(pol persist.Policy) func(mem *pmem.Memory) Set {
	return func(mem *pmem.Memory) Set { return list.New(mem, pol) }
}

func tableFactory(pol persist.Policy, buckets int) func(mem *pmem.Memory) Set {
	return func(mem *pmem.Memory) Set { return hashtable.New(mem, pol, buckets) }
}

func runRounds(t *testing.T, rounds int, opts Options, f func(mem *pmem.Memory) Set) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		opts.Seed = int64(r + 1)
		res := Run(opts, f)
		if res.Completed < opts.OpsBeforeCrash {
			t.Fatalf("round %d: only %d ops completed", r, res.Completed)
		}
		for _, v := range res.Violations {
			t.Errorf("round %d: %s", r, v)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

func TestListNVTraverseDurable(t *testing.T) {
	runRounds(t, 8, Options{
		Workers: 4, Keys: 64, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80,
	}, listFactory(persist.NVTraverse{}))
}

func TestListNVTraverseDurableWithEviction(t *testing.T) {
	// Random cache evictions persist extra writes; durability must hold
	// regardless (evictions only ever persist more, never less).
	runRounds(t, 6, Options{
		Workers: 4, Keys: 64, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80, EvictProb: 0.5,
	}, listFactory(persist.NVTraverse{}))
}

func TestListIzraelevitzDurable(t *testing.T) {
	runRounds(t, 6, Options{
		Workers: 4, Keys: 64, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, listFactory(persist.Izraelevitz{}))
}

func TestListLinkAndPersistDurable(t *testing.T) {
	runRounds(t, 6, Options{
		Workers: 4, Keys: 64, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, listFactory(persist.LinkAndPersist{}))
}

func TestListDisjointValuesDurable(t *testing.T) {
	runRounds(t, 6, Options{
		Workers: 4, Keys: 64, PrefillEvery: 2, Disjoint: true,
		OpsBeforeCrash: 400, UpdateRatio: 80,
	}, listFactory(persist.NVTraverse{}))
}

func TestHashTableNVTraverseDurable(t *testing.T) {
	runRounds(t, 6, Options{
		Workers: 4, Keys: 256, PrefillEvery: 2,
		OpsBeforeCrash: 500, UpdateRatio: 80,
	}, tableFactory(persist.NVTraverse{}, 32))
}

func TestHashTableLinkAndPersistDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 256, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80,
	}, tableFactory(persist.LinkAndPersist{}, 32))
}

// TestNonePolicyCaught is the negative control: without any persistence the
// checker must detect lost completed operations. This demonstrates the
// checker has teeth — the durable-policy tests above are not vacuous.
func TestNonePolicyCaught(t *testing.T) {
	caught := false
	for r := 0; r < 5 && !caught; r++ {
		res := Run(Options{
			Workers: 4, Keys: 64, PrefillEvery: 4,
			OpsBeforeCrash: 500, UpdateRatio: 100, Seed: int64(r),
		}, listFactory(persist.None{}))
		caught = len(res.Violations) > 0
	}
	if !caught {
		t.Fatalf("500 completed unpersisted updates survived a crash undetected")
	}
}

func TestResultFields(t *testing.T) {
	res := Run(Options{
		Workers: 2, Keys: 32, PrefillEvery: 1,
		OpsBeforeCrash: 50, UpdateRatio: 50, Seed: 9,
	}, listFactory(persist.NVTraverse{}))
	if res.Completed < 50 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Survivors == 0 {
		t.Fatalf("no survivors despite full prefill")
	}
	if res.InFlight > 2 {
		t.Fatalf("more in-flight ops than workers: %d", res.InFlight)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Key: 7, Detail: "lost"}
	if v.String() != "key 7: lost" {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestAllowedStates(t *testing.T) {
	cases := []struct {
		name                string
		s                   keyState
		pre                 bool
		absentOK, presentOK bool
		feasible            bool
	}{
		{"untouched-absent", keyState{}, false, true, false, true},
		{"untouched-present", keyState{}, true, false, true, true},
		{"one-insert", keyState{inserts: 1}, false, false, true, true},
		{"insert-delete", keyState{inserts: 1, deletes: 1}, false, true, false, true},
		{"pre-one-delete", keyState{deletes: 1}, true, true, false, true},
		{"pre-delete-insert", keyState{deletes: 1, inserts: 1}, true, false, true, true},
		{"infeasible", keyState{inserts: 3}, false, false, false, false},
		{"inflight-insert", keyState{inflightIns: 1}, false, true, true, true},
		{"inflight-delete-pre", keyState{inflightDel: 1}, true, true, true, true},
		// A completed delete on an absent key is only explainable if the
		// in-flight insert took effect first.
		{"delete-enabled-by-inflight", keyState{deletes: 1, inflightIns: 1}, false, true, false, true},
	}
	for _, c := range cases {
		a, p, f := c.s.allowedStates(c.pre)
		if a != c.absentOK || p != c.presentOK || f != c.feasible {
			t.Errorf("%s: allowedStates = %v,%v,%v want %v,%v,%v",
				c.name, a, p, f, c.absentOK, c.presentOK, c.feasible)
		}
	}
}

func skipFactory(pol persist.Policy) func(mem *pmem.Memory) Set {
	return func(mem *pmem.Memory) Set { return skiplist.New(mem, pol) }
}

func TestSkiplistNVTraverseDurable(t *testing.T) {
	runRounds(t, 6, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80,
	}, skipFactory(persist.NVTraverse{}))
}

func TestSkiplistIzraelevitzDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, skipFactory(persist.Izraelevitz{}))
}

func TestSkiplistLinkAndPersistDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, skipFactory(persist.LinkAndPersist{}))
}

func TestSkiplistNonePolicyCaught(t *testing.T) {
	caught := false
	for r := 0; r < 5 && !caught; r++ {
		res := Run(Options{
			Workers: 4, Keys: 64, PrefillEvery: 4,
			OpsBeforeCrash: 500, UpdateRatio: 100, Seed: int64(r),
		}, skipFactory(persist.None{}))
		caught = len(res.Violations) > 0
	}
	if !caught {
		t.Fatalf("unpersisted skiplist updates survived undetected")
	}
}

func ellenFactory(pol persist.Policy) func(mem *pmem.Memory) Set {
	return func(mem *pmem.Memory) Set { return ellenbst.New(mem, pol) }
}

func TestEllenBSTNVTraverseDurable(t *testing.T) {
	runRounds(t, 8, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80,
	}, ellenFactory(persist.NVTraverse{}))
}

func TestEllenBSTNVTraverseDurableWithEviction(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80, EvictProb: 0.5,
	}, ellenFactory(persist.NVTraverse{}))
}

func TestEllenBSTIzraelevitzDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, ellenFactory(persist.Izraelevitz{}))
}

func TestEllenBSTLinkAndPersistDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, ellenFactory(persist.LinkAndPersist{}))
}

func TestEllenBSTNonePolicyCaught(t *testing.T) {
	caught := false
	for r := 0; r < 5 && !caught; r++ {
		res := Run(Options{
			Workers: 4, Keys: 64, PrefillEvery: 4,
			OpsBeforeCrash: 500, UpdateRatio: 100, Seed: int64(r),
		}, ellenFactory(persist.None{}))
		caught = len(res.Violations) > 0
	}
	if !caught {
		t.Fatalf("unpersisted BST updates survived undetected")
	}
}

func nmFactory(pol persist.Policy) func(mem *pmem.Memory) Set {
	return func(mem *pmem.Memory) Set { return nmbst.New(mem, pol) }
}

func TestNMBSTNVTraverseDurable(t *testing.T) {
	runRounds(t, 8, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80,
	}, nmFactory(persist.NVTraverse{}))
}

func TestNMBSTNVTraverseDurableWithEviction(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 400, UpdateRatio: 80, EvictProb: 0.5,
	}, nmFactory(persist.NVTraverse{}))
}

func TestNMBSTIzraelevitzDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, nmFactory(persist.Izraelevitz{}))
}

func TestNMBSTLinkAndPersistDurable(t *testing.T) {
	runRounds(t, 4, Options{
		Workers: 4, Keys: 128, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, nmFactory(persist.LinkAndPersist{}))
}

func TestNMBSTNonePolicyCaught(t *testing.T) {
	caught := false
	for r := 0; r < 5 && !caught; r++ {
		res := Run(Options{
			Workers: 4, Keys: 64, PrefillEvery: 4,
			OpsBeforeCrash: 500, UpdateRatio: 100, Seed: int64(r),
		}, nmFactory(persist.None{}))
		caught = len(res.Violations) > 0
	}
	if !caught {
		t.Fatalf("unpersisted NM BST updates survived undetected")
	}
}

func TestListOriginalParentDurable(t *testing.T) {
	runRounds(t, 6, Options{
		Workers: 4, Keys: 64, PrefillEvery: 2,
		OpsBeforeCrash: 300, UpdateRatio: 80,
	}, func(mem *pmem.Memory) Set {
		return list.NewWithOriginalParent(mem, persist.NVTraverse{})
	})
}

// TestRepeatedCrashRecoverCycles drives one structure through several
// crash / recover / resume cycles on the same memory: recovery itself is
// persisted, so a second crash right after recovery must not undo it.
func TestRepeatedCrashRecoverCycles(t *testing.T) {
	mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero, MaxThreads: 16})
	ds := list.New(mem, persist.NVTraverse{})
	th := mem.NewThread()
	acked := map[uint64]bool{}
	for k := uint64(1); k <= 32; k++ {
		ds.Insert(th, k, k)
		acked[k] = true
	}
	mem.PersistAll()
	for cycle := 0; cycle < 5; cycle++ {
		// Some more completed work on a fresh thread each cycle.
		w := mem.NewThread()
		base := uint64(100*(cycle+1) + 1)
		for k := base; k < base+10; k++ {
			if ds.Insert(w, k, k) {
				acked[k] = true
			}
		}
		if ds.Delete(w, uint64(cycle)+1) {
			delete(acked, uint64(cycle)+1)
		}
		mem.Crash()
		mem.FinishCrash(0.3, int64(cycle))
		mem.Restart()
		rec := mem.NewThread()
		ds.Recover(rec)
		for k := range acked {
			if _, ok := ds.Find(rec, k); !ok {
				t.Fatalf("cycle %d: acknowledged key %d lost", cycle, k)
			}
		}
		if err := ds.Validate(rec); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

package crashtest

// Fault-schedule tortures: the usual crash round, but the crash is not a
// clean SIGKILL — the disk itself misbehaves mid-load through an injected
// vfs.ErrFS. The round ends when the backend latches damage (workers stop
// acking), the crashed memory is abandoned, and recovery on the same
// directory must still explain every acknowledged operation. DurableErr in
// the result proves the injection actually fired; zero violations proves
// no acked write was lost to the misbehaving disk.

import (
	"testing"

	"repro/internal/persist"
	"repro/internal/pmem/vfs"
)

func runFaultRounds(t *testing.T, rounds int, schedule string, syncFence bool) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		efs, err := vfs.NewErrFS(vfs.OS, schedule, int64(r+1))
		if err != nil {
			t.Fatalf("NewErrFS(%q): %v", schedule, err)
		}
		res := Run(Options{
			Workers: 4, Keys: 64, UpdateRatio: 80,
			// The fault ends the round, not the op count: set it out of
			// reach so workers only stop when the damage latch trips.
			OpsBeforeCrash: 1 << 20,
			Seed:           int64(r + 1),
			Dir:            t.TempDir(),
			FS:             efs,
			SyncFence:      syncFence,
		}, listFactory(persist.NVTraverse{}))
		if res.DurableErr == nil {
			t.Fatalf("round %d: schedule %q never fired (completed=%d, injected %v)",
				r, schedule, res.Completed, efs.Injected())
		}
		if res.Completed == 0 {
			t.Fatalf("round %d: no operation acked before the fault", r)
		}
		// No InFlight floor: under NVTraverse even finds flush and fence,
		// so the latch can trip during a read, which completes normally.
		// The real property — no acked write lost — is the checker's job.
		for _, v := range res.Violations {
			t.Errorf("round %d: %s", r, v)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestFaultTortureFsyncEIO is the headline acceptance torture: an fsync
// failure injected mid-load must withhold acks — the op in flight at the
// failure is never acknowledged — and recovery loses zero acked writes.
func TestFaultTortureFsyncEIO(t *testing.T) {
	runFaultRounds(t, 3, "sync~wal@25=eio", true)
}

// TestFaultTortureWriteEIO: the WAL append itself fails once (transient
// EIO); the latch must still be permanent for that process lifetime.
func TestFaultTortureWriteEIO(t *testing.T) {
	runFaultRounds(t, 3, "write~wal@60=eio", false)
}

// TestFaultTortureENOSPC: the disk fills after 16 KiB of log and STAYS
// full — the byte trigger latches on, so recovery replay runs against the
// same full disk (reads are unaffected; any post-recovery append would
// fail again).
func TestFaultTortureENOSPC(t *testing.T) {
	runFaultRounds(t, 3, "write~wal@b16384=enospc", false)
}

// TestFaultTortureShortWrite: a torn userspace write (half the buffer
// lands); bufio surfaces io.ErrShortWrite and the backend must treat it
// exactly like any other append failure.
func TestFaultTortureShortWrite(t *testing.T) {
	runFaultRounds(t, 3, "write~wal@45=short", false)
}

package crashtest

// Crash torture for the ordered containers (queue, stack). The set checker
// in this package reasons per key; queues and stacks need order-aware
// checking instead. Every pushed/enqueued value is unique (producer id in
// the high bits, a per-producer sequence number in the low bits), which
// lets the checker verify, after crash + recovery:
//
//   - no value survives twice, and nothing survives that was never added;
//   - a value removed by a *completed* dequeue/pop is gone for good (its
//     removal was acknowledged, so it is durable);
//   - per producer, the survivors appear in add order: a producer's later
//     value is never reachable "behind" an earlier one, in either
//     container. (Stronger shape claims — FIFO survivors form a contiguous
//     suffix, LIFO survivors an exact prefix — are NOT sound: a value
//     removed while it was momentarily at the container's open end leaves
//     no trace among the survivors, and the DurableQueue's per-node claims
//     let an in-flight dequeue punch a hole mid-queue.) The producer's
//     in-flight add, if it survived, must sit at the open end;
//   - values that disappeared without a completed removal are charged to
//     in-flight removals, at most one each.
//
// This is durable linearizability specialized to FIFO/LIFO order: completed
// operations survive, in-flight operations take effect fully or not at all,
// and the surviving order is one some linearization produces.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
)

// QueueTarget is the surface the queue torture drives.
type QueueTarget interface {
	Enqueue(t *pmem.Thread, v uint64)
	Dequeue(t *pmem.Thread) (uint64, bool)
	Recover(t *pmem.Thread)
	// Contents returns the surviving values front to back (quiescent).
	Contents(t *pmem.Thread) []uint64
}

// StackTarget is the surface the stack torture drives.
type StackTarget interface {
	Push(t *pmem.Thread, v uint64)
	Pop(t *pmem.Thread) (uint64, bool)
	Recover(t *pmem.Thread)
	// Contents returns the surviving values top to bottom (quiescent).
	Contents(t *pmem.Thread) []uint64
}

// OrderOptions configures one ordered-container crash round.
type OrderOptions struct {
	Workers        int     // concurrent worker goroutines
	OpsBeforeCrash uint64  // crash once this many operations completed
	AddRatio       int     // percent of ops that add (rest remove); default 60
	Prefill        int     // values added (and persisted) before the history
	EvictProb      float64 // probability an unpersisted line survives anyway
	Seed           int64

	// Dir runs the round against the durable file backend with SIGKILL
	// reopen semantics (see Options.Dir).
	Dir string
}

func (o *OrderOptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.AddRatio == 0 {
		o.AddRatio = 60
	}
	if o.OpsBeforeCrash == 0 {
		o.OpsBeforeCrash = 400
	}
}

// mkVal encodes (producer, seq) as a unique value. Producer ids stay small
// (workers + the prefill pseudo-producer).
func mkVal(producer int, seq uint64) uint64 { return uint64(producer)<<32 | seq }

func valProducer(v uint64) int  { return int(v >> 32) }
func valSeq(v uint64) uint64    { return v & (1<<32 - 1) }
func valString(v uint64) string { return fmt.Sprintf("p%d#%d", valProducer(v), valSeq(v)) }

// orderKind distinguishes the removal order of the container under check.
type orderKind int

const (
	fifo orderKind = iota // queue: removals take each producer's oldest
	lifo                  // stack: removals take each producer's newest
)

// orderWorker is one worker's recorded history.
type orderWorker struct {
	added       []uint64 // completed adds, in order
	removed     []uint64 // values returned by completed removals
	inflightAdd uint64   // 0 = none (sequence numbers start at 1)
	inflightRem bool
}

// runOrder drives one crash round over an abstract add/remove surface.
// reopened is the post-crash surface a file-backed round recovers into: the
// rebuilt container's recovery/contents plus a recovery thread of the fresh
// memory.
type reopened struct {
	recoverFn func(t *pmem.Thread)
	contents  func(t *pmem.Thread) []uint64
	rec       *pmem.Thread
}

func runOrder(opts OrderOptions, prefill func(t *pmem.Thread, v uint64),
	add func(t *pmem.Thread, v uint64), remove func(t *pmem.Thread) (uint64, bool),
	recoverFn func(t *pmem.Thread), contents func(t *pmem.Thread) []uint64,
	mem *pmem.Memory, kind orderKind, reopen func() reopened) Result {

	setup := mem.NewThread()
	prefillProducer := opts.Workers // producer id for prefilled values
	var prefilled []uint64
	for i := 1; i <= opts.Prefill; i++ {
		v := mkVal(prefillProducer, uint64(i))
		prefill(setup, v)
		prefilled = append(prefilled, v)
	}
	mem.PersistAll()

	workers := make([]*orderWorker, opts.Workers)
	ths := make([]*pmem.Thread, opts.Workers)
	for i := range workers {
		workers[i] = &orderWorker{}
		ths[i] = mem.NewThread()
	}
	var completed atomic.Uint64
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(id int, w *orderWorker, th *pmem.Thread) {
			defer wg.Done()
			seq := uint64(0)
			for !mem.Crashed() {
				if int(th.Rand()%100) < opts.AddRatio {
					seq++
					v := mkVal(id, seq)
					w.inflightAdd = v
					if pmem.RunOp(func() { add(th, v) }) {
						return // in flight at the crash
					}
					w.inflightAdd = 0
					w.added = append(w.added, v)
				} else {
					var v uint64
					var ok bool
					w.inflightRem = true
					if pmem.RunOp(func() { v, ok = remove(th) }) {
						return
					}
					w.inflightRem = false
					if ok {
						w.removed = append(w.removed, v)
					}
				}
				completed.Add(1)
			}
		}(i, workers[i], ths[i])
	}
	for completed.Load() < opts.OpsBeforeCrash {
		runtime.Gosched()
	}
	mem.Crash()
	wg.Wait()
	var rec *pmem.Thread
	if reopen == nil {
		mem.FinishCrash(opts.EvictProb, opts.Seed)
		mem.Restart()
		rec = mem.NewThread()
	} else {
		ro := reopen()
		recoverFn, contents, rec = ro.recoverFn, ro.contents, ro.rec
	}
	recoverFn(rec)

	res := Result{Completed: completed.Load()}
	for _, w := range workers {
		if w.inflightAdd != 0 {
			res.InFlight++
		}
		if w.inflightRem {
			res.InFlight++
		}
	}
	surv := contents(rec)
	res.Survivors = len(surv)
	res.Violations = checkOrder(kind, workers, prefilled, prefillProducer, surv)
	return res
}

// checkOrder verifies the surviving values against the recorded histories.
// surv is in container order: front-to-back for a queue, top-to-bottom for
// a stack.
func checkOrder(kind orderKind, workers []*orderWorker, prefilled []uint64,
	prefillProducer int, surv []uint64) []Violation {

	var violations []Violation
	bad := func(v uint64, format string, args ...any) {
		violations = append(violations,
			Violation{Key: v, Detail: valString(v) + ": " + fmt.Sprintf(format, args...)})
	}

	// Index every value that legitimately exists.
	type valState struct {
		producer  int
		pos       int // index within the producer's completed sequence
		inflight  bool
		removedBy int // completed removals returning it (must be <= 1)
	}
	vals := map[uint64]*valState{}
	seqs := make([][]uint64, len(workers)+1) // completed adds per producer
	seqs[prefillProducer] = prefilled
	for i, v := range prefilled {
		vals[v] = &valState{producer: prefillProducer, pos: i}
	}
	inflightRemovals := 0
	for id, w := range workers {
		seqs[id] = w.added
		for i, v := range w.added {
			vals[v] = &valState{producer: id, pos: i}
		}
		if w.inflightAdd != 0 {
			vals[w.inflightAdd] = &valState{producer: id, inflight: true}
		}
		if w.inflightRem {
			inflightRemovals++
		}
	}
	for _, w := range workers {
		for _, v := range w.removed {
			st := vals[v]
			if st == nil {
				bad(v, "completed removal returned a value never added")
				continue
			}
			st.removedBy++
			if st.removedBy > 1 {
				bad(v, "removed by %d completed operations", st.removedBy)
			}
		}
	}

	// Survivors: known, unique, not durably removed.
	seen := map[uint64]bool{}
	survByProducer := make([][]uint64, len(workers)+1)
	for _, v := range surv {
		if seen[v] {
			bad(v, "survives twice")
			continue
		}
		seen[v] = true
		st := vals[v]
		if st == nil {
			bad(v, "survives but was never added")
			continue
		}
		if st.removedBy > 0 {
			bad(v, "resurfaced after a completed removal")
			continue
		}
		p := st.producer
		if p < 0 || p >= len(survByProducer) {
			continue
		}
		survByProducer[p] = append(survByProducer[p], v)
	}

	// Per-producer order and accounting of unexplained disappearances.
	extraMissing := 0
	for p, seq := range seqs {
		sv := survByProducer[p]
		if kind == lifo {
			// Contents are top-to-bottom = newest-first; flip to oldest-
			// first so both kinds check "ascending positions".
			for i, j := 0, len(sv)-1; i < j; i, j = i+1, j-1 {
				sv[i], sv[j] = sv[j], sv[i]
			}
		}
		// The in-flight add, if it survived, must sit at the open end
		// (newest); peel it off.
		if n := len(sv); n > 0 {
			if st := vals[sv[n-1]]; st != nil && st.inflight {
				sv = sv[:n-1]
			}
		}
		for _, v := range sv {
			if st := vals[v]; st != nil && st.inflight {
				bad(v, "in-flight add survived out of order")
			}
		}
		// Survivors must appear in add order (a subsequence of the
		// producer's completed sequence); every completed value that
		// neither survives nor was removed by a completed operation needs
		// an in-flight removal to explain its disappearance.
		last := -1
		for _, v := range sv {
			st := vals[v]
			if st == nil {
				continue
			}
			if st.pos <= last {
				bad(v, "survives out of order (pos %d after %d)", st.pos, last)
			}
			last = st.pos
		}
		for _, v := range seq {
			if !seen[v] && vals[v].removedBy == 0 {
				extraMissing++
			}
		}
	}
	if extraMissing > inflightRemovals {
		violations = append(violations, Violation{Key: 0, Detail: fmt.Sprintf(
			"%d completed adds vanished with only %d in-flight removals to explain them",
			extraMissing, inflightRemovals)})
	}
	return violations
}

// RunQueue executes one crash round against a queue built by factory on a
// fresh tracked memory and checks FIFO durable linearizability.
func RunQueue(opts OrderOptions, factory func(mem *pmem.Memory) QueueTarget) Result {
	opts.defaults()
	cfg := pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero,
		MaxThreads: opts.Workers + 8, Dir: opts.Dir}
	mem := pmem.New(cfg)
	q := factory(mem)
	mustRecoverFiles(mem)
	var reopen func() reopened
	if opts.Dir != "" {
		reopen = func() reopened {
			m2 := pmem.New(cfg)
			q2 := factory(m2)
			mustRecoverFiles(m2)
			return reopened{recoverFn: q2.Recover, contents: q2.Contents, rec: m2.NewThread()}
		}
	}
	return runOrder(opts,
		func(t *pmem.Thread, v uint64) { q.Enqueue(t, v) },
		func(t *pmem.Thread, v uint64) { q.Enqueue(t, v) },
		func(t *pmem.Thread) (uint64, bool) { return q.Dequeue(t) },
		q.Recover, q.Contents, mem, fifo, reopen)
}

// RunStack executes one crash round against a stack built by factory on a
// fresh tracked memory and checks LIFO durable linearizability.
func RunStack(opts OrderOptions, factory func(mem *pmem.Memory) StackTarget) Result {
	opts.defaults()
	cfg := pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero,
		MaxThreads: opts.Workers + 8, Dir: opts.Dir}
	mem := pmem.New(cfg)
	s := factory(mem)
	mustRecoverFiles(mem)
	var reopen func() reopened
	if opts.Dir != "" {
		reopen = func() reopened {
			m2 := pmem.New(cfg)
			s2 := factory(m2)
			mustRecoverFiles(m2)
			return reopened{recoverFn: s2.Recover, contents: s2.Contents, rec: m2.NewThread()}
		}
	}
	return runOrder(opts,
		func(t *pmem.Thread, v uint64) { s.Push(t, v) },
		func(t *pmem.Thread, v uint64) { s.Push(t, v) },
		func(t *pmem.Thread) (uint64, bool) { return s.Pop(t) },
		s.Recover, s.Contents, mem, lifo, reopen)
}

// Package crashtest is the durable-linearizability test harness: it runs
// concurrent workers against a tracked pmem.Memory, injects a crash at an
// arbitrary point inside operations, rolls back unpersisted writes (with
// optional random cache evictions), runs the structure's recovery
// procedure, and then checks that the surviving state is explainable by
// some linearization of the pre-crash history (Izraelevitz et al.'s
// durable linearizability, the paper's correctness criterion):
//
//   - the effect of every completed operation must have survived, and
//   - operations in flight at the crash either took full effect or none.
//
// For set data structures the per-key check is exact: in any linearization
// the successful inserts and deletes of one key alternate, so the final
// membership of key k is determined by the initial state and the counts of
// completed successful inserts (I) and deletes (D) — present iff
// initially-absent ? I == D+1 : I == D — unless some operation on k was in
// flight at the crash, in which case that operation may additionally have
// taken effect.
package crashtest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
)

// Set is the data-structure surface the harness exercises.
type Set interface {
	Insert(t *pmem.Thread, key, value uint64) bool
	Delete(t *pmem.Thread, key uint64) bool
	Find(t *pmem.Thread, key uint64) (uint64, bool)
	// Recover is the paper's recovery phase (disconnect + auxiliary
	// rebuild); it runs after FinishCrash/Restart, before checking.
	Recover(t *pmem.Thread)
	// Contents returns the unmarked keys (quiescent use).
	Contents(t *pmem.Thread) []uint64
}

// Validator is an optional structural self-check (sortedness, no cycles,
// no marked nodes after recovery, ...).
type Validator interface {
	Validate(t *pmem.Thread) error
}

// Options configures one crash round.
type Options struct {
	Workers        int     // concurrent worker goroutines
	Keys           uint64  // keys are drawn from [1, Keys]
	Disjoint       bool    // partition the key space per worker (enables value checking)
	PrefillEvery   uint64  // prefill every n-th key (0 = no prefill)
	OpsBeforeCrash uint64  // crash once this many operations completed
	EvictProb      float64 // probability an unpersisted line survives anyway
	Seed           int64
	UpdateRatio    int // percent of ops that are updates (rest are finds); default 60
}

// Violation is one durable-linearizability failure.
type Violation struct {
	Key    uint64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("key %d: %s", v.Key, v.Detail)
}

// Result summarizes one crash round.
type Result struct {
	Completed  uint64 // operations completed before the crash
	InFlight   int    // operations interrupted mid-flight
	Violations []Violation
	Survivors  int // keys present after recovery
}

type opKind int

const (
	opInsert opKind = iota
	opDelete
	opFind
)

type record struct {
	key   uint64
	kind  opKind
	ok    bool
	value uint64
}

type pendingOp struct {
	key   uint64
	kind  opKind
	value uint64
	valid bool
}

type worker struct {
	th      *pmem.Thread
	history []record
	pending pendingOp
}

// Run executes one crash round against a fresh structure built by factory
// on a tracked memory, and checks the outcome. The factory receives the
// memory and must build the structure and return it (prefilling is done by
// the harness).
func Run(opts Options, factory func(mem *pmem.Memory) Set) Result {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Keys == 0 {
		opts.Keys = 128
	}
	if opts.UpdateRatio == 0 {
		opts.UpdateRatio = 60
	}
	mem := pmem.New(pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero,
		MaxThreads: opts.Workers + 8})
	ds := factory(mem)

	setup := mem.NewThread()
	prefilled := map[uint64]uint64{}
	if opts.PrefillEvery > 0 {
		for k := uint64(1); k <= opts.Keys; k += opts.PrefillEvery {
			v := k * 3
			ds.Insert(setup, k, v)
			prefilled[k] = v
		}
	}
	// The initial structure resides fully in NVRAM before the measured
	// history begins (the paper's setting).
	mem.PersistAll()

	var completed atomic.Uint64
	workers := make([]*worker, opts.Workers)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{th: mem.NewThread()}
		workers[i] = w
		lo, hi := uint64(1), opts.Keys
		if opts.Disjoint {
			span := opts.Keys / uint64(opts.Workers)
			if span == 0 {
				span = 1
			}
			lo = uint64(i)*span + 1
			hi = lo + span - 1
			if hi > opts.Keys {
				hi = opts.Keys
			}
		}
		wg.Add(1)
		go func(w *worker, lo, hi uint64) {
			defer wg.Done()
			rng := w.th
			for !mem.Crashed() {
				k := lo + rng.Rand()%(hi-lo+1)
				r := int(rng.Rand() % 100)
				var kind opKind
				switch {
				case r < opts.UpdateRatio/2:
					kind = opInsert
				case r < opts.UpdateRatio:
					kind = opDelete
				default:
					kind = opFind
				}
				v := rng.Rand() & ((1 << 32) - 1)
				w.pending = pendingOp{key: k, kind: kind, value: v, valid: true}
				var ok bool
				crashed := pmem.RunOp(func() {
					switch kind {
					case opInsert:
						ok = ds.Insert(w.th, k, v)
					case opDelete:
						ok = ds.Delete(w.th, k)
					default:
						_, ok = ds.Find(w.th, k)
					}
				})
				if crashed {
					return // pending stays valid: in-flight at crash
				}
				w.history = append(w.history, record{key: k, kind: kind, ok: ok, value: v})
				w.pending.valid = false
				completed.Add(1)
			}
		}(w, lo, hi)
	}

	// Crash once enough operations completed (yield while spinning: on a
	// single-core host the workers need the CPU).
	for completed.Load() < opts.OpsBeforeCrash {
		runtime.Gosched()
	}
	mem.Crash()
	wg.Wait()
	mem.FinishCrash(opts.EvictProb, opts.Seed)
	mem.Restart()

	rec := mem.NewThread()
	ds.Recover(rec)

	return check(opts, ds, rec, workers, prefilled, completed.Load())
}

type keyState struct {
	inserts       uint64 // completed successful inserts
	deletes       uint64 // completed successful deletes
	lastInsertVal uint64
	sawInsert     bool
	inflightIns   int // in-flight inserts at the crash
	inflightDel   int // in-flight deletes at the crash
	attempted     bool
}

// allowedStates enumerates, per key, which final membership states some
// linearization permits: each in-flight operation may or may not have taken
// effect, and successful inserts/deletes of one key must alternate starting
// from the initial state. It returns (absentOK, presentOK, feasible).
func (s *keyState) allowedStates(prefilled bool) (absentOK, presentOK, feasible bool) {
	for eI := 0; eI <= s.inflightIns; eI++ {
		for eD := 0; eD <= s.inflightDel; eD++ {
			i := s.inserts + uint64(eI)
			d := s.deletes + uint64(eD)
			if prefilled {
				// Sequence starts present: deletes lead.
				if d == i || d == i+1 {
					feasible = true
					if d == i {
						presentOK = true
					} else {
						absentOK = true
					}
				}
			} else {
				if i == d || i == d+1 {
					feasible = true
					if i == d+1 {
						presentOK = true
					} else {
						absentOK = true
					}
				}
			}
		}
	}
	return
}

func check(opts Options, ds Set, rec *pmem.Thread, workers []*worker,
	prefilled map[uint64]uint64, completed uint64) Result {

	res := Result{Completed: completed}

	states := map[uint64]*keyState{}
	get := func(k uint64) *keyState {
		s := states[k]
		if s == nil {
			s = &keyState{}
			states[k] = s
		}
		return s
	}
	for _, w := range workers {
		for _, r := range w.history {
			s := get(r.key)
			s.attempted = true
			if !r.ok {
				continue
			}
			switch r.kind {
			case opInsert:
				s.inserts++
				s.lastInsertVal = r.value
				s.sawInsert = true
			case opDelete:
				s.deletes++
			}
		}
		if w.pending.valid {
			res.InFlight++
			s := get(w.pending.key)
			s.attempted = true
			switch w.pending.kind {
			case opInsert:
				s.inflightIns++
			case opDelete:
				s.inflightDel++
			}
		}
	}

	present := map[uint64]int{}
	for _, k := range ds.Contents(rec) {
		present[k]++
	}
	for k, n := range present {
		if n > 1 {
			res.Violations = append(res.Violations,
				Violation{k, fmt.Sprintf("present %d times", n)})
		}
	}

	if v, ok := ds.(Validator); ok {
		if err := v.Validate(rec); err != nil {
			res.Violations = append(res.Violations,
				Violation{0, "structural: " + err.Error()})
		}
	}

	// Per-key membership check over every key that was prefilled or touched.
	checkKey := func(k uint64) {
		s := states[k]
		_, pre := prefilled[k]
		isPresent := present[k] > 0
		if s == nil {
			// Untouched key: prefill must survive verbatim.
			if isPresent != pre {
				res.Violations = append(res.Violations,
					Violation{k, fmt.Sprintf("untouched key: present=%v, prefilled=%v", isPresent, pre)})
			}
			return
		}
		absentOK, presentOK, feasible := s.allowedStates(pre)
		if !feasible {
			res.Violations = append(res.Violations,
				Violation{k, fmt.Sprintf("history not linearizable pre-crash: prefilled=%v inserts=%d deletes=%d inflight=%d/%d",
					pre, s.inserts, s.deletes, s.inflightIns, s.inflightDel)})
			return
		}
		if (isPresent && !presentOK) || (!isPresent && !absentOK) {
			res.Violations = append(res.Violations,
				Violation{k, fmt.Sprintf("present=%v not explainable (prefilled=%v inserts=%d deletes=%d inflight=%d/%d)",
					isPresent, pre, s.inserts, s.deletes, s.inflightIns, s.inflightDel)})
		}
	}
	seen := map[uint64]bool{}
	for k := range prefilled {
		seen[k] = true
		checkKey(k)
	}
	for k := range states {
		if !seen[k] {
			seen[k] = true
			checkKey(k)
		}
	}
	// Keys present that nobody ever inserted are corruption.
	for k := range present {
		if !seen[k] {
			res.Violations = append(res.Violations,
				Violation{k, "present but never inserted"})
		}
	}

	// Value durability: in disjoint mode each key's history is sequential,
	// so a present key with no in-flight op must carry its last successful
	// insert's value (or the prefill value).
	if opts.Disjoint {
		for k := range seen {
			s := states[k]
			if present[k] == 0 {
				continue
			}
			if s != nil && (s.inflightIns > 0 || s.inflightDel > 0) {
				continue
			}
			want, okWant := prefilled[k]
			if s != nil && s.sawInsert {
				want, okWant = s.lastInsertVal, true
			}
			if !okWant {
				continue
			}
			got, ok := ds.Find(rec, k)
			if !ok {
				res.Violations = append(res.Violations,
					Violation{k, "in Contents but Find misses it"})
				continue
			}
			if got != want {
				res.Violations = append(res.Violations,
					Violation{k, fmt.Sprintf("value %d, want %d", got, want)})
			}
		}
	}

	res.Survivors = len(present)
	return res
}

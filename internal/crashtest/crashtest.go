// Package crashtest is the durable-linearizability test harness: it runs
// concurrent workers against a tracked pmem.Memory, injects a crash at an
// arbitrary point inside operations, rolls back unpersisted writes (with
// optional random cache evictions), runs the structure's recovery
// procedure, and then checks that the surviving state is explainable by
// some linearization of the pre-crash history (Izraelevitz et al.'s
// durable linearizability, the paper's correctness criterion):
//
//   - the effect of every completed operation must have survived, and
//   - operations in flight at the crash either took full effect or none.
//
// For set data structures the per-key check is exact: in any linearization
// the successful inserts and deletes of one key alternate, so the final
// membership of key k is determined by the initial state and the counts of
// completed successful inserts (I) and deletes (D) — present iff
// initially-absent ? I == D+1 : I == D — unless some operation on k was in
// flight at the crash, in which case that operation may additionally have
// taken effect.
//
// The harness comes in two layers. Run drives the whole round (one
// structure on one memory). The History/Check layer underneath is exported
// so composite systems — the sharded engine in internal/shard crashes many
// memories at once and acknowledges batched operations together — can
// record their own histories and reuse the identical checker.
package crashtest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/pmem/vfs"
)

// Set is the data-structure surface the harness exercises.
type Set interface {
	Insert(t *pmem.Thread, key, value uint64) bool
	Delete(t *pmem.Thread, key uint64) bool
	Find(t *pmem.Thread, key uint64) (uint64, bool)
	// Recover is the paper's recovery phase (disconnect + auxiliary
	// rebuild); it runs after FinishCrash/Restart, before checking.
	Recover(t *pmem.Thread)
	// Contents returns the unmarked keys (quiescent use).
	Contents(t *pmem.Thread) []uint64
}

// Validator is an optional structural self-check (sortedness, no cycles,
// no marked nodes after recovery, ...).
type Validator interface {
	Validate(t *pmem.Thread) error
}

// Scanner is the optional range-scan surface (Store API v2). When the
// structure under test implements it and the scan does not report
// "unordered", the checker additionally requires the post-recovery
// full-range scan to observe exactly the recovered contents — every
// durably committed key, no resurrected ones.
type Scanner interface {
	RangeScan(t *pmem.Thread, lo, hi uint64, fn func(key, value uint64) bool) error
}

// OpKind names an operation in a recorded history.
type OpKind int

// The operations the checker understands.
const (
	OpInsert OpKind = iota
	OpDelete
	OpFind
)

type record struct {
	key   uint64
	kind  OpKind
	ok    bool
	value uint64
}

// History accumulates one worker's operation history for the durable-
// linearizability check. It is not safe for concurrent use: give each
// worker its own and hand them all to Check after the workers have joined.
//
// Unlike the single-pending-op model Run uses internally, a History admits
// any number of in-flight operations, which is what batched engines need: a
// crash in the middle of a batch leaves every unacknowledged operation of
// the batch in flight at once.
type History struct {
	completed []record
	inflight  []record
}

// Completed records an acknowledged operation and whether it succeeded.
func (h *History) Completed(kind OpKind, key, value uint64, ok bool) {
	h.completed = append(h.completed, record{key: key, kind: kind, ok: ok, value: value})
}

// InFlight records an operation that was started but never acknowledged:
// the checker allows it to have taken effect or not.
func (h *History) InFlight(kind OpKind, key, value uint64) {
	h.inflight = append(h.inflight, record{key: key, kind: kind, value: value})
}

// InFlightCount reports how many in-flight operations were recorded.
func (h *History) InFlightCount() int { return len(h.inflight) }

// CheckConfig parameterizes Check.
type CheckConfig struct {
	// Prefilled maps the keys present (with their values) before the
	// recorded history began.
	Prefilled map[uint64]uint64
	// CheckValues additionally verifies surviving values. Only sound when
	// each key's operations were issued by a single worker (disjoint key
	// partitions): concurrent inserts of one key make "the last insert's
	// value" ambiguous.
	CheckValues bool
}

// Violation is one durable-linearizability failure.
type Violation struct {
	Key    uint64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("key %d: %s", v.Key, v.Detail)
}

// Result summarizes one crash round.
type Result struct {
	Completed  uint64 // operations completed before the crash
	InFlight   int    // operations interrupted mid-flight
	Violations []Violation
	Survivors  int // keys present after recovery

	// DurableErr is the pre-crash memory's sticky disk damage at the
	// moment of the crash (nil when the disk behaved). Fault-schedule
	// rounds assert it is non-nil to prove the injection actually fired.
	DurableErr error
}

// Options configures one crash round driven by Run.
type Options struct {
	Workers        int     // concurrent worker goroutines
	Keys           uint64  // keys are drawn from [1, Keys]
	Disjoint       bool    // partition the key space per worker (enables value checking)
	PrefillEvery   uint64  // prefill every n-th key (0 = no prefill)
	OpsBeforeCrash uint64  // crash once this many operations completed
	EvictProb      float64 // probability an unpersisted line survives anyway
	Seed           int64
	UpdateRatio    int // percent of ops that are updates (rest are finds); default 60

	// Dir, when non-empty, runs the round against the durable file backend:
	// the structure is built on a file-backed tracked memory, and the crash
	// abandons that memory outright — volatile state and unflushed userspace
	// WAL buffers die with it, exactly as SIGKILL would take them — before a
	// fresh memory + structure reopen the directory, replay the log, and
	// recover. EvictProb is ignored (the file is the only survivor).
	Dir string

	// FS overrides the durable backend's file operations (nil = the real
	// filesystem): fault-torture rounds pass a vfs.ErrFS so the disk
	// misbehaves under load. A worker whose backend latches damage records
	// its current operation as in flight — never acknowledged — and stops,
	// so the checker holds the harness to exactly the replied ⇒ durable
	// rule under disk faults. The post-crash reopen reuses the same FS:
	// one-shot (Nth-call) triggers have fired by then, while byte-count
	// and probability triggers keep applying — a schedule can deliberately
	// torment recovery too. Only meaningful with Dir.
	FS vfs.FS

	// SyncFence makes every commit fence fsync the WAL (pmem.Config's
	// knob of the same name), so sync-failure schedules fire mid-load
	// rather than only at close and checkpoint. Only meaningful with Dir.
	SyncFence bool
}

type worker struct {
	th      *pmem.Thread
	hist    History
	pending record
	valid   bool
}

// Run executes one crash round against a fresh structure built by factory
// on a tracked memory, and checks the outcome. The factory receives the
// memory and must build the structure and return it (prefilling is done by
// the harness).
func Run(opts Options, factory func(mem *pmem.Memory) Set) Result {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Keys == 0 {
		opts.Keys = 128
	}
	if opts.UpdateRatio == 0 {
		opts.UpdateRatio = 60
	}
	cfg := pmem.Config{Mode: pmem.ModeTracked, Profile: pmem.ProfileZero,
		MaxThreads: opts.Workers + 8, Dir: opts.Dir, FS: opts.FS, SyncFence: opts.SyncFence}
	mem := pmem.New(cfg)
	ds := factory(mem)
	mustRecoverFiles(mem)

	setup := mem.NewThread()
	prefilled := map[uint64]uint64{}
	if opts.PrefillEvery > 0 {
		for k := uint64(1); k <= opts.Keys; k += opts.PrefillEvery {
			v := k * 3
			ds.Insert(setup, k, v)
			prefilled[k] = v
		}
	}
	// The initial structure resides fully in NVRAM before the measured
	// history begins (the paper's setting).
	mem.PersistAll()

	var completed atomic.Uint64
	var stopped atomic.Int64
	workers := make([]*worker, opts.Workers)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{th: mem.NewThread()}
		workers[i] = w
		lo, hi := uint64(1), opts.Keys
		if opts.Disjoint {
			span := opts.Keys / uint64(opts.Workers)
			if span == 0 {
				span = 1
			}
			lo = uint64(i)*span + 1
			hi = lo + span - 1
			if hi > opts.Keys {
				hi = opts.Keys
			}
		}
		wg.Add(1)
		go func(w *worker, lo, hi uint64) {
			defer wg.Done()
			defer stopped.Add(1)
			rng := w.th
			for !mem.Crashed() && w.th.DurableErr() == nil {
				k := lo + rng.Rand()%(hi-lo+1)
				r := int(rng.Rand() % 100)
				var kind OpKind
				switch {
				case r < opts.UpdateRatio/2:
					kind = OpInsert
				case r < opts.UpdateRatio:
					kind = OpDelete
				default:
					kind = OpFind
				}
				v := rng.Rand() & ((1 << 32) - 1)
				w.pending = record{key: k, kind: kind, value: v}
				w.valid = true
				var ok bool
				crashed := pmem.RunOp(func() {
					switch kind {
					case OpInsert:
						ok = ds.Insert(w.th, k, v)
					case OpDelete:
						ok = ds.Delete(w.th, k)
					default:
						_, ok = ds.Find(w.th, k)
					}
				})
				if crashed {
					// pending stays valid: in flight at the crash.
					return
				}
				if kind != OpFind && w.th.DurableErr() != nil {
					// The write executed in memory but its commit fence
					// never reached the disk: it was never acknowledged,
					// so it is in flight — recovery may keep or drop it.
					return
				}
				w.hist.Completed(kind, k, v, ok)
				w.valid = false
				completed.Add(1)
			}
		}(w, lo, hi)
	}

	// Crash once enough operations completed (yield while spinning: on a
	// single-core host the workers need the CPU). Workers also stop on
	// their own when the backend latches disk damage, so a fault schedule
	// that fires before the target count still ends the round.
	for completed.Load() < opts.OpsBeforeCrash && stopped.Load() < int64(len(workers)) {
		runtime.Gosched()
	}
	mem.Crash()
	wg.Wait()
	durErr := mem.DurableErr()
	var rec *pmem.Thread
	if opts.Dir == "" {
		mem.FinishCrash(opts.EvictProb, opts.Seed)
		mem.Restart()
		rec = mem.NewThread()
	} else {
		// SIGKILL semantics: abandon the crashed memory without rollback or
		// Close — anything not flushed at a commit point is simply gone —
		// and rebuild from the directory. Construction is deterministic, so
		// the fresh structure's handles address the replayed lines.
		mem = pmem.New(cfg)
		ds = factory(mem)
		mustRecoverFiles(mem)
		rec = mem.NewThread()
	}
	ds.Recover(rec)

	res := Result{Completed: completed.Load(), DurableErr: durErr}
	hs := make([]*History, 0, len(workers))
	for _, w := range workers {
		if w.valid {
			w.hist.InFlight(w.pending.kind, w.pending.key, w.pending.value)
		}
		hs = append(hs, &w.hist)
	}
	res.Violations, res.Survivors = Check(ds, rec, hs, CheckConfig{
		Prefilled:   prefilled,
		CheckValues: opts.Disjoint,
	})
	for _, h := range hs {
		res.InFlight += len(h.inflight)
	}
	return res
}

// mustRecoverFiles brings a file-backed memory online (no-op otherwise).
// Harness code panics on IO errors: a broken test directory is a test bug.
func mustRecoverFiles(mem *pmem.Memory) {
	if mem.Durable() {
		if _, err := mem.RecoverFiles(); err != nil {
			panic("crashtest: " + err.Error())
		}
	}
}

type keyState struct {
	inserts       uint64 // completed successful inserts
	deletes       uint64 // completed successful deletes
	lastInsertVal uint64
	sawInsert     bool
	inflightIns   int // in-flight inserts at the crash
	inflightDel   int // in-flight deletes at the crash
	attempted     bool
}

// allowedStates enumerates, per key, which final membership states some
// linearization permits: each in-flight operation may or may not have taken
// effect, and successful inserts/deletes of one key must alternate starting
// from the initial state. It returns (absentOK, presentOK, feasible).
func (s *keyState) allowedStates(prefilled bool) (absentOK, presentOK, feasible bool) {
	for eI := 0; eI <= s.inflightIns; eI++ {
		for eD := 0; eD <= s.inflightDel; eD++ {
			i := s.inserts + uint64(eI)
			d := s.deletes + uint64(eD)
			if prefilled {
				// Sequence starts present: deletes lead.
				if d == i || d == i+1 {
					feasible = true
					if d == i {
						presentOK = true
					} else {
						absentOK = true
					}
				}
			} else {
				if i == d || i == d+1 {
					feasible = true
					if i == d+1 {
						presentOK = true
					} else {
						absentOK = true
					}
				}
			}
		}
	}
	return
}

// Check verifies that the recovered structure ds is explainable by some
// linearization of the recorded histories under durable linearizability,
// and returns the violations plus the number of surviving keys. rec must be
// a post-Restart thread of the structure's memory; ds.Recover must already
// have run.
func Check(ds Set, rec *pmem.Thread, hs []*History, cfg CheckConfig) ([]Violation, int) {
	var violations []Violation

	states := map[uint64]*keyState{}
	get := func(k uint64) *keyState {
		s := states[k]
		if s == nil {
			s = &keyState{}
			states[k] = s
		}
		return s
	}
	for _, h := range hs {
		for _, r := range h.completed {
			s := get(r.key)
			s.attempted = true
			if !r.ok {
				continue
			}
			switch r.kind {
			case OpInsert:
				s.inserts++
				s.lastInsertVal = r.value
				s.sawInsert = true
			case OpDelete:
				s.deletes++
			}
		}
		for _, r := range h.inflight {
			s := get(r.key)
			s.attempted = true
			switch r.kind {
			case OpInsert:
				s.inflightIns++
			case OpDelete:
				s.inflightDel++
			}
		}
	}

	present := map[uint64]int{}
	for _, k := range ds.Contents(rec) {
		present[k]++
	}
	for k, n := range present {
		if n > 1 {
			violations = append(violations,
				Violation{k, fmt.Sprintf("present %d times", n)})
		}
	}

	if v, ok := ds.(Validator); ok {
		if err := v.Validate(rec); err != nil {
			violations = append(violations,
				Violation{0, "structural: " + err.Error()})
		}
	}

	// Scan/contents agreement: the full-range scan of a recovered ordered
	// structure must report exactly the recovered key set, in ascending
	// order — a durably committed key missing from the scan (or a deleted
	// key resurfacing in it) is a recovery bug even when per-key membership
	// looks right.
	if sc, ok := ds.(Scanner); ok {
		var scanned []uint64
		err := sc.RangeScan(rec, 1, 1<<61-1, func(k, _ uint64) bool {
			scanned = append(scanned, k)
			return true
		})
		if err == nil {
			want := append([]uint64(nil), ds.Contents(rec)...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !sort.SliceIsSorted(scanned, func(i, j int) bool { return scanned[i] < scanned[j] }) {
				violations = append(violations, Violation{0, "scan: keys out of order"})
			}
			if len(scanned) != len(want) {
				violations = append(violations, Violation{0, fmt.Sprintf(
					"scan: %d keys, contents has %d", len(scanned), len(want))})
			} else {
				for i := range want {
					if scanned[i] != want[i] {
						violations = append(violations, Violation{want[i], fmt.Sprintf(
							"scan/contents diverge at position %d: scan %d, contents %d",
							i, scanned[i], want[i])})
						break
					}
				}
			}
		}
	}

	// Per-key membership check over every key that was prefilled or touched.
	checkKey := func(k uint64) {
		s := states[k]
		_, pre := cfg.Prefilled[k]
		isPresent := present[k] > 0
		if s == nil {
			// Untouched key: prefill must survive verbatim.
			if isPresent != pre {
				violations = append(violations,
					Violation{k, fmt.Sprintf("untouched key: present=%v, prefilled=%v", isPresent, pre)})
			}
			return
		}
		absentOK, presentOK, feasible := s.allowedStates(pre)
		if !feasible {
			violations = append(violations,
				Violation{k, fmt.Sprintf("history not linearizable pre-crash: prefilled=%v inserts=%d deletes=%d inflight=%d/%d",
					pre, s.inserts, s.deletes, s.inflightIns, s.inflightDel)})
			return
		}
		if (isPresent && !presentOK) || (!isPresent && !absentOK) {
			violations = append(violations,
				Violation{k, fmt.Sprintf("present=%v not explainable (prefilled=%v inserts=%d deletes=%d inflight=%d/%d)",
					isPresent, pre, s.inserts, s.deletes, s.inflightIns, s.inflightDel)})
		}
	}
	seen := map[uint64]bool{}
	for k := range cfg.Prefilled {
		seen[k] = true
		checkKey(k)
	}
	for k := range states {
		if !seen[k] {
			seen[k] = true
			checkKey(k)
		}
	}
	// Keys present that nobody ever inserted are corruption.
	for k := range present {
		if !seen[k] {
			violations = append(violations,
				Violation{k, "present but never inserted"})
		}
	}

	// Value durability: with per-worker key partitions each key's history is
	// sequential, so a present key with no in-flight op must carry its last
	// successful insert's value (or the prefill value).
	if cfg.CheckValues {
		for k := range seen {
			s := states[k]
			if present[k] == 0 {
				continue
			}
			if s != nil && (s.inflightIns > 0 || s.inflightDel > 0) {
				continue
			}
			want, okWant := cfg.Prefilled[k]
			if s != nil && s.sawInsert {
				want, okWant = s.lastInsertVal, true
			}
			if !okWant {
				continue
			}
			got, ok := ds.Find(rec, k)
			if !ok {
				violations = append(violations,
					Violation{k, "in Contents but Find misses it"})
				continue
			}
			if got != want {
				violations = append(violations,
					Violation{k, fmt.Sprintf("value %d, want %d", got, want)})
			}
		}
	}

	return violations, len(present)
}

// Package persist implements the persistence transformations evaluated by
// the NVTraverse paper as pluggable policies. Every data structure in this
// repository is written once, in traversal form (findEntry → traverse →
// critical), and calls policy hooks at the protocol points; choosing a
// policy chooses the transformation:
//
//   - None:          the original, non-durable lock-free algorithm.
//   - Izraelevitz:   the general transformation of Izraelevitz et al.
//     (DISC'16): flush+fence around every shared access.
//   - NVTraverse:    the paper's transformation (Protocols 1 and 2): nothing
//     during the traversal, ensureReachable+makePersistent at
//     its end, flush-after-access and fence-before-
//     write/return in the critical method.
//   - LinkAndPersist: the hand-tuned optimization of David et al. (ATC'18)
//     layered on the NVTraverse placement: link words carry
//     a "persisted" tag (pmem.PersistBit); flushing a tagged
//     word is skipped, an actual flush re-tags the word with
//     an extra CAS, and any modification implicitly clears
//     the tag. Fences with no pending flush are elided.
//
// Hook-to-protocol correspondence (NVTraverse, paper §4):
//
//	TraverseRead  — reads inside traverse: no persistence           (§4: "no persisting is done during the traverse method")
//	PostTraverse  — ensureReachable + makePersistent + one fence    (Protocol 1)
//	Read          — "flush after every read of a shared variable"   (Protocol 2)
//	InitWrite     — flush after initializing a not-yet-published field
//	Wrote         — "flush after every write/CAS"                   (Protocol 2)
//	BeforeCAS     — "fence before every write/CAS on shared"        (Protocol 2)
//	BeforeReturn  — "fence before every return statement"           (Protocol 2)
//
// BeforeReturn issues its fence via pmem.Thread.CommitFence rather than
// Fence: the fence-before-return exists only to make an operation's effects
// durable before the operation is acknowledged, so when a caller batches
// several operations and acknowledges them together (shard.Session batches),
// one fence at the end of the batch serves every operation in it. The
// ordering fences (BeforeCAS, the PostTraverse fence) are never deferred —
// they keep each operation all-or-nothing across a crash.
//
// Link-cell restriction: hooks other than InitWrite may only be passed cells
// holding pmem.Ref values (next pointers, child edges, update words), never
// raw user data — LinkAndPersist tags bit 62 of the cell value.
package persist

import "repro/internal/pmem"

// Policy is one persistence transformation. Implementations are stateless
// and safe for concurrent use.
type Policy interface {
	// Name identifies the policy in benchmark output.
	Name() string
	// Durable reports whether the policy provides durable linearizability.
	Durable() bool

	// TraverseRead is invoked after each shared read performed by the
	// traverse method.
	TraverseRead(t *pmem.Thread, c *pmem.Cell)
	// PostTraverse is invoked between traverse and critical with the
	// parent link of the first returned node followed by every field the
	// traversal read in the returned nodes (Protocol 1).
	PostTraverse(t *pmem.Thread, cells []*pmem.Cell)
	// Read is invoked after each shared read of a link word in the
	// critical method.
	Read(t *pmem.Thread, c *pmem.Cell)
	// ReadData is invoked after each shared read of a raw-data word
	// (user values) in the critical method. It must never tag the cell.
	ReadData(t *pmem.Thread, c *pmem.Cell)
	// InitWrite is invoked after initializing a field of a node that has
	// not yet been published to shared memory.
	InitWrite(t *pmem.Thread, c *pmem.Cell)
	// Wrote is invoked after each write or CAS on shared memory in the
	// critical method.
	Wrote(t *pmem.Thread, c *pmem.Cell)
	// WroteData is invoked after each write or CAS on a raw-data word (user
	// values) of an already-published node — the in-place value update of
	// the RMW operations. It must never tag the cell: the word holds user
	// data, not a link. Policies that reason "published data was persisted
	// before publication" (LinkAndPersist's ReadData) cannot apply that
	// reasoning here, because this write happens after publication; they
	// must flush (and fence) so the new value is durable before the
	// operation's commit fence acknowledges it.
	WroteData(t *pmem.Thread, c *pmem.Cell)
	// BeforeCAS is invoked before each write or CAS on shared memory.
	BeforeCAS(t *pmem.Thread)
	// BeforeReturn is invoked before the operation attempt returns or
	// restarts out of the critical method.
	BeforeReturn(t *pmem.Thread)
}

// None is the identity transformation: the original volatile algorithm.
type None struct{}

func (None) Name() string                            { return "none" }
func (None) Durable() bool                           { return false }
func (None) TraverseRead(*pmem.Thread, *pmem.Cell)   {}
func (None) PostTraverse(*pmem.Thread, []*pmem.Cell) {}
func (None) Read(*pmem.Thread, *pmem.Cell)           {}
func (None) ReadData(*pmem.Thread, *pmem.Cell)       {}
func (None) InitWrite(*pmem.Thread, *pmem.Cell)      {}
func (None) Wrote(*pmem.Thread, *pmem.Cell)          {}
func (None) WroteData(*pmem.Thread, *pmem.Cell)      {}
func (None) BeforeCAS(*pmem.Thread)                  {}
func (None) BeforeReturn(*pmem.Thread)               {}

// Izraelevitz is the general transformation: a flush and fence accompany
// every shared access, traversal included.
type Izraelevitz struct{}

func (Izraelevitz) Name() string  { return "izraelevitz" }
func (Izraelevitz) Durable() bool { return true }

func (Izraelevitz) TraverseRead(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

// PostTraverse is a no-op: every traversal read was already persisted.
func (Izraelevitz) PostTraverse(t *pmem.Thread, cells []*pmem.Cell) {}

func (Izraelevitz) Read(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

func (Izraelevitz) ReadData(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

func (Izraelevitz) InitWrite(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

func (Izraelevitz) Wrote(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

func (Izraelevitz) WroteData(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

func (Izraelevitz) BeforeCAS(t *pmem.Thread)    { t.Fence() }
func (Izraelevitz) BeforeReturn(t *pmem.Thread) { t.CommitFence() }

// NVTraverse is the paper's transformation.
type NVTraverse struct{}

func (NVTraverse) Name() string  { return "nvtraverse" }
func (NVTraverse) Durable() bool { return true }

// TraverseRead persists nothing: the destination matters, not the journey.
func (NVTraverse) TraverseRead(*pmem.Thread, *pmem.Cell) {}

// PostTraverse flushes the parent link and every field read in the returned
// nodes, then issues a single fence (ensureReachable + makePersistent).
func (NVTraverse) PostTraverse(t *pmem.Thread, cells []*pmem.Cell) {
	for _, c := range cells {
		t.Flush(c)
	}
	t.Fence()
}

func (NVTraverse) Read(t *pmem.Thread, c *pmem.Cell)      { t.Flush(c) }
func (NVTraverse) ReadData(t *pmem.Thread, c *pmem.Cell)  { t.Flush(c) }
func (NVTraverse) InitWrite(t *pmem.Thread, c *pmem.Cell) { t.Flush(c) }
func (NVTraverse) Wrote(t *pmem.Thread, c *pmem.Cell)     { t.Flush(c) }
func (NVTraverse) WroteData(t *pmem.Thread, c *pmem.Cell) { t.Flush(c) }
func (NVTraverse) BeforeCAS(t *pmem.Thread)               { t.Fence() }
func (NVTraverse) BeforeReturn(t *pmem.Thread)            { t.CommitFence() }

// LinkAndPersist models David et al.'s hand-tuned structures: NVTraverse
// flush placement, but a flush of a link word whose persisted tag is set is
// skipped, and a performed flush re-tags the word with an extra CAS. Fences
// are elided when the thread has no unfenced flush.
type LinkAndPersist struct{}

func (LinkAndPersist) Name() string  { return "logfree" }
func (LinkAndPersist) Durable() bool { return true }

// flushTagged flushes and fences c unless its current value already carries
// the persisted tag; after the fence it attempts to set the tag so later
// readers skip both flush and fence. The tag may only be set after the
// fence: a tag on an unfenced value would let a concurrent reader return
// with the value unpersisted. The tag CAS may fail (the word changed
// concurrently); that only means the next reader flushes again, which is
// safe.
func flushTagged(t *pmem.Thread, c *pmem.Cell) {
	v := t.Load(c)
	if v&pmem.PersistBit != 0 {
		return
	}
	t.Flush(c)
	t.Fence()
	t.CAS(c, v, v|pmem.PersistBit)
}

func (LinkAndPersist) TraverseRead(*pmem.Thread, *pmem.Cell) {}

func (LinkAndPersist) PostTraverse(t *pmem.Thread, cells []*pmem.Cell) {
	for _, c := range cells {
		flushTagged(t, c)
	}
	if t.Unfenced() > 0 {
		t.Fence()
	}
}

func (LinkAndPersist) Read(t *pmem.Thread, c *pmem.Cell) { flushTagged(t, c) }

// ReadData is a no-op: the hand-tuned structures reason that a data word
// published behind a link CAS was flushed and fenced before publication
// (InitWrite + the pre-CAS fence), so reading it never requires a flush.
// This is precisely the kind of expert reasoning the automatic NVTraverse
// transformation cannot perform (paper §4.3, last paragraph).
func (LinkAndPersist) ReadData(t *pmem.Thread, c *pmem.Cell) {}

// InitWrite always flushes: unpublished fields may hold raw data, which must
// not be tagged.
func (LinkAndPersist) InitWrite(t *pmem.Thread, c *pmem.Cell) { t.Flush(c) }

func (LinkAndPersist) Wrote(t *pmem.Thread, c *pmem.Cell) { flushTagged(t, c) }

// WroteData flushes and fences immediately, without tagging: an in-place
// value write invalidates the "persisted before publication" reasoning
// behind ReadData's no-op, and the untagged word gives later readers no way
// to tell. The eager fence narrows (but cannot close — see DESIGN.md) the
// window in which a concurrent ReadData returns the not-yet-persistent
// value; the automatic transformations have no such window.
func (LinkAndPersist) WroteData(t *pmem.Thread, c *pmem.Cell) {
	t.Flush(c)
	t.Fence()
}

func (LinkAndPersist) BeforeCAS(t *pmem.Thread) {
	if t.Unfenced() > 0 {
		t.Fence()
	}
}

func (LinkAndPersist) BeforeReturn(t *pmem.Thread) {
	if t.Unfenced() > 0 {
		t.CommitFence()
		return
	}
	// Nothing of ours is unfenced, but the values this operation depends on
	// may have been fenced by *another* thread whose WAL record is still in
	// the shared userspace buffer (a tagged link means "some fence covered
	// this", not "the file has it"). The operation is about to be
	// acknowledged, so push the buffer to the OS. Free without a file
	// backend, and deferred to EndBatch inside a batch.
	if !t.InBatch() {
		t.DurableSync()
	}
}

// ByName returns the policy with the given benchmark name.
func ByName(name string) (Policy, bool) {
	switch name {
	case "none":
		return None{}, true
	case "izraelevitz", "izra":
		return Izraelevitz{}, true
	case "nvtraverse", "traverse":
		return NVTraverse{}, true
	case "logfree", "linkandpersist", "lap":
		return LinkAndPersist{}, true
	}
	return nil, false
}

// All returns every policy, in the order the paper's figures list them.
func All() []Policy {
	return []Policy{None{}, NVTraverse{}, Izraelevitz{}, LinkAndPersist{}}
}

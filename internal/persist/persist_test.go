package persist

import (
	"testing"

	"repro/internal/pmem"
)

func newThread() (*pmem.Memory, *pmem.Thread) {
	m := pmem.NewFast(pmem.ProfileZero)
	return m, m.NewThread()
}

// stats publishes th's owner-written counters (these tests drive
// persistence instructions directly, between operation boundaries) and
// returns the memory's aggregate.
func stats(m *pmem.Memory, th *pmem.Thread) pmem.Stats {
	th.PublishStats()
	return m.Stats()
}

func TestByName(t *testing.T) {
	cases := map[string]string{
		"none":           "none",
		"izraelevitz":    "izraelevitz",
		"izra":           "izraelevitz",
		"nvtraverse":     "nvtraverse",
		"traverse":       "nvtraverse",
		"logfree":        "logfree",
		"lap":            "logfree",
		"linkandpersist": "logfree",
	}
	for in, want := range cases {
		p, ok := ByName(in)
		if !ok || p.Name() != want {
			t.Fatalf("ByName(%q) = %v,%v", in, p, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatalf("ByName accepted bogus")
	}
}

func TestDurabilityFlags(t *testing.T) {
	for _, p := range All() {
		want := p.Name() != "none"
		if p.Durable() != want {
			t.Fatalf("%s.Durable() = %v", p.Name(), p.Durable())
		}
	}
}

func TestNoneIsFree(t *testing.T) {
	m, th := newThread()
	var c pmem.Cell
	p := None{}
	p.TraverseRead(th, &c)
	p.PostTraverse(th, []*pmem.Cell{&c})
	p.Read(th, &c)
	p.ReadData(th, &c)
	p.InitWrite(th, &c)
	p.Wrote(th, &c)
	p.BeforeCAS(th)
	p.BeforeReturn(th)
	if s := stats(m, th); s.Flushes != 0 || s.Fences != 0 {
		t.Fatalf("None persisted: %+v", s)
	}
}

func TestIzraelevitzFlushesEveryAccess(t *testing.T) {
	m, th := newThread()
	var c pmem.Cell
	p := Izraelevitz{}
	p.TraverseRead(th, &c)
	p.Read(th, &c)
	p.Wrote(th, &c)
	s := stats(m, th)
	if s.Flushes != 3 || s.Fences != 3 {
		t.Fatalf("Izraelevitz: %+v", s)
	}
}

func TestNVTraversePlacement(t *testing.T) {
	m, th := newThread()
	// Three cells on three distinct lines, so every flush is issued rather
	// than line-coalesced (coalescing has its own tests in pmem).
	lines := pmem.AllocLines(3)
	a, b, c := &lines[0][0], &lines[1][0], &lines[2][0]
	p := NVTraverse{}
	p.TraverseRead(th, a) // free
	if s := stats(m, th); s.Flushes != 0 {
		t.Fatalf("traverse read flushed")
	}
	p.PostTraverse(th, []*pmem.Cell{a, b, c})
	s := stats(m, th)
	if s.Flushes != 3 || s.Fences != 1 {
		t.Fatalf("PostTraverse: %+v", s)
	}
	p.Read(th, a)  // flush, no fence (fresh window: PostTraverse fenced)
	p.Wrote(th, b) // flush, no fence
	s = stats(m, th)
	if s.Flushes != 5 || s.Fences != 1 {
		t.Fatalf("critical accesses: %+v", s)
	}
	p.BeforeCAS(th)
	p.BeforeReturn(th)
	if s := stats(m, th); s.Fences != 3 {
		t.Fatalf("fences: %+v", s)
	}
}

func TestLinkAndPersistTagging(t *testing.T) {
	m, th := newThread()
	var c pmem.Cell
	th.Store(&c, pmem.MakeRef(9))
	p := LinkAndPersist{}

	p.Read(th, &c)
	if th.Load(&c)&pmem.PersistBit == 0 {
		t.Fatalf("flush did not tag the cell")
	}
	s := stats(m, th)
	if s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("first flush: %+v", s)
	}

	// Tagged: all subsequent flushes of this word are free.
	p.Read(th, &c)
	p.Wrote(th, &c)
	p.PostTraverse(th, []*pmem.Cell{&c})
	s = stats(m, th)
	if s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("tagged flushes not elided: %+v", s)
	}

	// A store clears the tag (new values are dirty by construction).
	th.Store(&c, pmem.Dirty(pmem.MakeRef(10)))
	p.Read(th, &c)
	if s := stats(m, th); s.Flushes != 2 {
		t.Fatalf("flush after store elided: %+v", s)
	}
}

func TestLinkAndPersistFenceElision(t *testing.T) {
	m, th := newThread()
	p := LinkAndPersist{}
	p.BeforeCAS(th)
	p.BeforeReturn(th)
	if s := stats(m, th); s.Fences != 0 {
		t.Fatalf("fences with nothing unfenced: %+v", s)
	}
	var c pmem.Cell
	th.Flush(&c) // raw unfenced flush
	p.BeforeCAS(th)
	if s := stats(m, th); s.Fences != 1 {
		t.Fatalf("fence with pending flush elided: %+v", s)
	}
}

func TestLinkAndPersistTagIsDurabilitySafe(t *testing.T) {
	// The tag may only appear on values that are genuinely persistent:
	// crash immediately after flushTagged and check the value survived.
	m := pmem.NewTracked()
	th := m.NewThread()
	var c pmem.Cell
	th.Store(&c, pmem.MakeRef(5))
	m.PersistAll()
	th.Store(&c, pmem.MakeRef(6))
	LinkAndPersist{}.Read(th, &c)
	if th.Load(&c)&pmem.PersistBit == 0 {
		t.Fatalf("cell not tagged")
	}
	m.Crash()
	m.FinishCrash(0, 1)
	m.Restart()
	if got := pmem.ClearTags(th.Load(&c)); got != pmem.MakeRef(6) {
		t.Fatalf("tagged value lost in crash: %x", got)
	}
}

func TestAllOrder(t *testing.T) {
	names := []string{"none", "nvtraverse", "izraelevitz", "logfree"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() = %d policies", len(all))
	}
	for i, p := range all {
		if p.Name() != names[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, p.Name(), names[i])
		}
	}
}

package epoch

import "testing"

func TestHighWaterMark(t *testing.T) {
	d := New(128)
	if got := d.hwm.Load(); got != 0 {
		t.Fatalf("fresh domain hwm = %d", got)
	}
	d.Enter(0)
	d.Exit(0)
	d.Enter(5)
	d.Exit(5)
	if got := d.hwm.Load(); got != 6 {
		t.Fatalf("hwm after tids 0,5 = %d, want 6", got)
	}
	// Advancing must still see a laggard below the mark.
	d.Enter(3)
	e := d.Epoch()
	d.TryAdvance()
	d.TryAdvance()
	if d.Epoch() > e+1 {
		t.Fatalf("epoch advanced past active thread: %d -> %d", e, d.Epoch())
	}
	d.Exit(3)
	// Reset keeps registration useful: re-entering re-registers.
	d.Reset()
	d.Enter(2)
	if got := d.hwm.Load(); got < 3 {
		t.Fatalf("hwm after reset+enter = %d, want >= 3", got)
	}
}

// benchTryAdvance measures one TryAdvance over a domain of the default
// capacity (128 slots) with `active` registered threads — the satellite
// claim: a 2-thread workload should pay for 2 slots, not 128.
func benchTryAdvance(b *testing.B, capacity, active int) {
	d := New(capacity)
	for tid := 0; tid < active; tid++ {
		d.Enter(tid)
		d.Exit(tid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TryAdvance()
	}
}

func BenchmarkTryAdvance2of128(b *testing.B)   { benchTryAdvance(b, 128, 2) }
func BenchmarkTryAdvance8of128(b *testing.B)   { benchTryAdvance(b, 128, 8) }
func BenchmarkTryAdvance128of128(b *testing.B) { benchTryAdvance(b, 128, 128) }

package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestAdvanceRequiresQuiescence(t *testing.T) {
	d := New(2)
	d.Enter(0)
	e := d.Epoch()
	// Thread 0 announced the current epoch, thread 1 is quiescent:
	// advancing is allowed.
	if got := d.TryAdvance(); got != e+1 {
		t.Fatalf("TryAdvance with all-current threads: %d, want %d", got, e+1)
	}
	// Now thread 0 is still announcing the old epoch: blocked.
	if got := d.TryAdvance(); got != e+1 {
		t.Fatalf("TryAdvance with stale active thread advanced: %d", got)
	}
	d.Exit(0)
	if got := d.TryAdvance(); got != e+2 {
		t.Fatalf("TryAdvance after exit: %d, want %d", got, e+2)
	}
}

func TestSafeToReclaim(t *testing.T) {
	d := New(1)
	e := d.Epoch()
	if d.SafeToReclaim(e) {
		t.Fatalf("retire epoch %d safe at epoch %d", e, e)
	}
	d.TryAdvance()
	if d.SafeToReclaim(e) {
		t.Fatalf("safe after one advance")
	}
	d.TryAdvance()
	if !d.SafeToReclaim(e) {
		t.Fatalf("not safe after two advances")
	}
}

func TestActive(t *testing.T) {
	d := New(1)
	if d.Active(0) {
		t.Fatalf("fresh slot active")
	}
	d.Enter(0)
	if !d.Active(0) {
		t.Fatalf("entered slot inactive")
	}
	d.Exit(0)
	if d.Active(0) {
		t.Fatalf("exited slot active")
	}
}

func TestReset(t *testing.T) {
	d := New(2)
	d.Enter(0)
	d.Exit(0)
	d.TryAdvance()
	d.TryAdvance()
	d.Reset()
	if d.Epoch() != 0 || d.Active(0) || d.Active(1) {
		t.Fatalf("Reset incomplete: epoch=%d", d.Epoch())
	}
}

// TestGracePeriodInvariant stress-checks the EBR contract: a "node" retired
// in epoch e and freed only when SafeToReclaim(e) is never freed while a
// reader that observed it live is still inside its critical section.
func TestGracePeriodInvariant(t *testing.T) {
	const (
		readers = 4
		rounds  = 2000
	)
	d := New(readers + 1)
	var live atomic.Int64  // the "node": 1 = linked, 0 = unlinked, -1 = freed
	var inUse atomic.Int64 // readers currently holding the node
	var violation atomic.Bool
	live.Store(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Enter(tid)
				if live.Load() == 1 {
					inUse.Add(1)
					if live.Load() == -1 {
						violation.Store(true)
					}
					inUse.Add(-1)
				}
				d.Exit(tid)
			}
		}(r)
	}

	writer := readers
	for i := 0; i < rounds; i++ {
		d.Enter(writer)
		live.Store(0) // unlink
		retireEpoch := d.Epoch()
		d.Exit(writer)
		for !d.SafeToReclaim(retireEpoch) {
			d.TryAdvance()
		}
		if inUse.Load() != 0 {
			// A reader still using the node after the grace period
			// would be a use-after-free in a real allocator. It can
			// only happen if it observed live==1, which it cannot
			// after the unlink + two advances.
			violation.Store(true)
		}
		live.Store(-1) // free
		live.Store(1)  // reallocate for the next round
	}
	close(stop)
	wg.Wait()
	if violation.Load() {
		t.Fatalf("EBR grace-period violation detected")
	}
}

func TestEnterPacesAdvance(t *testing.T) {
	d := New(1)
	start := d.Epoch()
	for i := 0; i < 10*advanceInterval; i++ {
		d.Enter(0)
		d.Exit(0)
	}
	if d.Epoch() == start {
		t.Fatalf("epoch never advanced over %d enters", 10*advanceInterval)
	}
}

// Package epoch implements three-epoch based memory reclamation (EBR), the
// same discipline as the ssmem allocator used by the NVTraverse paper's
// evaluation. Threads announce the global epoch on entering an operation;
// the global epoch only advances when every active thread has observed it;
// a node retired in epoch e may be reused once the global epoch reaches e+2.
//
// EBR also provides the ABA protection the arena-handle scheme relies on: a
// handle cannot be recycled while any thread that might still compare
// against it is inside an operation.
package epoch

import "sync/atomic"

// Domain is one reclamation domain, shared by all structures that share an
// arena. Thread IDs index announcement slots and must be dense in
// [0, maxThreads).
type Domain struct {
	global atomic.Uint64
	// hwm is the registered-thread high-water mark: one past the highest
	// thread ID that has ever entered. TryAdvance scans only slots[:hwm],
	// so a domain sized for DefaultMaxThreads costs what its *occupancy*
	// costs, not what its capacity costs.
	hwm   atomic.Int64
	slots []slot
}

type slot struct {
	// val encodes (epoch+1)<<1 | 1 when active, 0 when quiescent.
	val atomic.Uint64
	// enters counts Enter calls by the owning thread (owner-only access)
	// to pace TryAdvance.
	enters uint64
	_      [40]byte // avoid false sharing between slots
}

// advanceInterval is how many Enter calls a thread performs between
// attempts to advance the global epoch.
const advanceInterval = 64

// New creates a Domain for up to maxThreads threads.
func New(maxThreads int) *Domain {
	return &Domain{slots: make([]slot, maxThreads)}
}

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.global.Load() }

// Enter marks thread tid active in the current epoch. It must be paired
// with Exit (typically via defer, so that crash-sentinel panics unwind
// cleanly through data-structure operations).
func (d *Domain) Enter(tid int) {
	s := &d.slots[tid]
	if s.enters == 0 {
		// First Enter of this slot (or first after Reset): raise the
		// high-water mark before announcing, so any TryAdvance that could
		// matter to this thread's references scans its slot. A scan that
		// loads hwm before this CAS can only miss announcements made after
		// its own start — the same benign race a scan loading the slot just
		// before the announcement always had.
		for {
			h := d.hwm.Load()
			if int64(tid) < h || d.hwm.CompareAndSwap(h, int64(tid)+1) {
				break
			}
		}
	}
	e := d.global.Load()
	s.val.Store((e+1)<<1 | 1)
	s.enters++
	if s.enters%advanceInterval == 0 {
		d.TryAdvance()
	}
}

// Exit marks thread tid quiescent.
func (d *Domain) Exit(tid int) {
	d.slots[tid].val.Store(0)
}

// Active reports whether thread tid is inside an operation (test hook).
func (d *Domain) Active(tid int) bool {
	return d.slots[tid].val.Load()&1 == 1
}

// TryAdvance advances the global epoch iff every active thread has announced
// the current epoch. It returns the (possibly new) global epoch. Only the
// slots up to the registered high-water mark are scanned: threads that never
// entered cannot be active, and threads that could hold references from
// before an advance are registered before they announce.
func (d *Domain) TryAdvance() uint64 {
	e := d.global.Load()
	n := int(d.hwm.Load())
	for i := 0; i < n; i++ {
		v := d.slots[i].val.Load()
		if v&1 == 1 && (v>>1)-1 != e {
			return e // someone is still in an older epoch
		}
	}
	d.global.CompareAndSwap(e, e+1)
	return d.global.Load()
}

// SafeToReclaim reports whether a node retired in epoch e can be reused:
// two full advances have happened since, so no active thread can hold a
// reference that predates the retirement.
func (d *Domain) SafeToReclaim(retireEpoch uint64) bool {
	return d.global.Load() >= retireEpoch+2
}

// Reset returns the domain to its initial state. Only for post-crash
// recovery, when no thread is active: all announcement state was volatile.
// The high-water mark resets too — surviving threads re-register on their
// next Enter (enters was zeroed), so a smaller post-crash worker set scans
// only its own prefix.
func (d *Domain) Reset() {
	d.global.Store(0)
	d.hwm.Store(0)
	for i := range d.slots {
		d.slots[i].val.Store(0)
		d.slots[i].enters = 0
	}
}
